/**
 * @file
 * Experiment E1 — paper Table 1: capacity and IDR model validation against
 * thirteen real SCSI drives (1999-2002), plus the zone-count sensitivity
 * ablation (the paper assumes 30 zones for all drives).
 *
 * Usage: bench_table1_validation [--csv dir]
 */
#include <cmath>
#include <iostream>

#include "hdd/capacity.h"
#include "hdd/drive_catalog.h"
#include "harness/bench.h"
#include "util/table.h"

using namespace hddtherm;

int
main(int argc, char** argv)
{
    harness::Bench bench("bench_table1_validation", argc, argv,
                         "Table 1: capacity / IDR model validation.");
    bench.parse();
    const std::string csv_dir = bench.csvDir();

    std::cout << "Table 1: capacity / IDR model validation "
                 "(nzones = 30)\n\n";

    util::TableWriter table({"Model", "Year", "RPM", "Cap GB", "Model Cap",
                             "Paper Cap", "Cap err%", "IDR", "Model IDR",
                             "Paper IDR", "IDR err%"});
    double worst_cap = 0.0, worst_idr = 0.0;
    for (const auto& d : hdd::table1Drives()) {
        const auto layout = d.layout();
        const auto cap = hdd::computeCapacity(layout);
        const double idr = hdd::internalDataRateMBps(layout, d.rpm);
        const double cap_err =
            100.0 * (cap.userGB - d.datasheetCapacityGB) /
            d.datasheetCapacityGB;
        const double idr_err =
            100.0 * (idr - d.datasheetIdrMBps) / d.datasheetIdrMBps;
        worst_cap = std::max(worst_cap, std::fabs(cap_err));
        worst_idr = std::max(worst_idr, std::fabs(idr_err));
        table.addRow({d.model, util::TableWriter::num((long long)d.year),
                      util::TableWriter::num(d.rpm, 0),
                      util::TableWriter::num(d.datasheetCapacityGB, 1),
                      util::TableWriter::num(cap.userGB, 1),
                      util::TableWriter::num(d.paperModelCapacityGB, 1),
                      util::TableWriter::num(cap_err, 1),
                      util::TableWriter::num(d.datasheetIdrMBps, 1),
                      util::TableWriter::num(idr, 1),
                      util::TableWriter::num(d.paperModelIdrMBps, 1),
                      util::TableWriter::num(idr_err, 1)});
    }
    table.print(std::cout);
    std::cout << "\nworst |capacity error| vs datasheet: "
              << util::TableWriter::num(worst_cap, 1)
              << "%  (paper reports 'within 12% for most disks')\n"
              << "worst |IDR error| vs datasheet: "
              << util::TableWriter::num(worst_idr, 1)
              << "%  (paper reports 'within 15% for most disks')\n\n";
    if (!csv_dir.empty())
        table.writeCsv(csv_dir + "/table1.csv");

    // Ablation: sensitivity of the modeled values to the assumed zone
    // count (older drives used 10-15 zones).
    std::cout << "Ablation: zone-count sensitivity "
                 "(Seagate Cheetah 15K.3)\n\n";
    util::TableWriter zones({"zones", "user GB", "IDR MB/s"});
    const auto drive = *hdd::findDrive("Seagate Cheetah 15K.3");
    for (int z : {1, 5, 10, 15, 30, 50, 100}) {
        const auto layout = drive.layout(z);
        zones.addRow({util::TableWriter::num((long long)z),
                      util::TableWriter::num(
                          hdd::computeCapacity(layout).userGB, 1),
                      util::TableWriter::num(
                          hdd::internalDataRateMBps(layout, drive.rpm),
                          1)});
    }
    zones.print(std::cout);
    if (!csv_dir.empty())
        zones.writeCsv(csv_dir + "/table1_zone_ablation.csv");
    return bench.finish();
}
