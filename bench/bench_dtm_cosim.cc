/**
 * @file
 * Experiment E12 — DTM co-simulation (the §5 headline made closed-loop):
 * 2.6" drives designed for average-case behaviour run above the
 * envelope-design speed of 15,020 RPM under the Search-Engine workload,
 * while the closed-loop throttler keeps the internal air inside the
 * 45.22 C envelope.  The paper's claim: the 5-15K RPM bought by DTM
 * improves response times 30-60%.
 *
 * The final row runs the very aggressive 37,001/22,001 two-speed design.
 * Because its VCM-off temperature still exceeds the envelope at full
 * speed, it can only serve sub-second bursts (Figure 7(b)); under a
 * sustained workload the gate thrashes and the queue grows without
 * bound — precisely the paper's observation that keeping utilization
 * above 50% needs sub-second throttling granularity.
 *
 * Usage: bench_dtm_cosim [requests] [--csv dir]
 */
#include <iostream>

#include "dtm/cosim.h"
#include "harness/run_builder.h"
#include "harness/bench.h"
#include "thermal/reliability.h"
#include "util/log.h"
#include "util/table.h"

using namespace hddtherm;

int
main(int argc, char** argv)
{
    harness::Bench bench("bench_dtm_cosim", argc, argv,
                         "DTM co-simulation: closed-loop throttling on average-case drives (paper 5).",
                         util::LogLevel::Quiet);
    harness::RunSpec spec;
    spec.scenario = "Search-Engine";
    spec.requests = 150000;
    // Report steady behaviour: the first third of the run warms the
    // slow thermal state into each policy's operating point.
    spec.warmupFraction = 0.35;
    spec.maxSimulatedSec = 600.0; // cap runaway (thrashing) cases
    bench.flags().addPositionalSizeT(
        "requests", &spec.requests, "workload request count");
    bench.parse();
    const std::string csv_dir = bench.csvDir();
    const std::size_t requests = spec.requests;

    // The Search-Engine array rebuilt from 2.6" average-case drives.  The
    // DTM headroom exists because typical operation keeps the VCM duty
    // well below the worst-case 100% the envelope was designed for
    // (paper §5.2).  Multi-speed transitions are the idealized fast ones
    // the throttling analysis assumes.
    harness::RunBuilder builder(spec, [](core::ExperimentSpec& e) {
        e.system.disk.geometry.diameterInches = 2.6;
        e.system.disk.geometry.platters = 1;
        e.workload.arrivalRatePerSec = 600.0;
        e.system.disk.rpmChangeSecPerKrpm = 0.02;
    });
    auto trace = builder.makeTrace();

    struct Case
    {
        const char* label;
        double rpm;
        dtm::DtmPolicy policy;
        double lowRpm;
    };
    const Case cases[] = {
        {"envelope design, 15,020 RPM", 15020.0, dtm::DtmPolicy::None,
         0.0},
        {"average-case 24,534 RPM, no DTM guard", 24534.0,
         dtm::DtmPolicy::None, 0.0},
        {"average-case 24,534 RPM + gate-VCM DTM", 24534.0,
         dtm::DtmPolicy::GateRequests, 0.0},
        {"average-case 24,534 RPM + speed governor", 24534.0,
         dtm::DtmPolicy::GovernSpeed, 0.0},
        {"aggressive 37,001/22,001 RPM + gate+low-RPM DTM", 37001.0,
         dtm::DtmPolicy::GateAndLowRpm, 22001.0},
    };

    std::cout << "DTM co-simulation: Search-Engine workload on 2.6\" "
                 "1-platter drives, " << requests << " requests\n"
              << "(thermal envelope " << thermal::kThermalEnvelopeC
              << " C; temperatures from the calibrated drive model)\n\n";

    util::TableWriter table({"Configuration", "mean ms", "vs envelope",
                             "max temp C", ">envelope s", "gated s",
                             "gates", "VCM duty", "AFR factor"});
    double baseline_mean = 0.0;
    for (const auto& c : cases) {
        dtm::CoSimConfig cfg = builder.cosim();
        cfg.system.disk.rpm = c.rpm;
        cfg.policy = c.policy;
        cfg.lowRpm = c.lowRpm;
        if (c.policy == dtm::DtmPolicy::GovernSpeed) {
            cfg.rpmLadder = {15020.0, 18000.0, 21000.0, 24534.0};
        }
        dtm::CoSimulation cosim(cfg);
        const auto result = cosim.run(trace);
        if (baseline_mean == 0.0)
            baseline_mean = result.metrics.meanMs();

        const bool finished = result.simulatedSec < cfg.maxSimulatedSec;
        const std::string mean =
            finished ? util::TableWriter::num(result.metrics.meanMs())
                     : "(unsustainable)";
        const std::string gain =
            finished ? util::TableWriter::num(
                           100.0 * (1.0 - result.metrics.meanMs() /
                                              baseline_mean),
                           1) + "%"
                     : "-";
        table.addRow(
            {c.label, mean, gain,
             util::TableWriter::num(result.maxTempC),
             util::TableWriter::num(result.envelopeExceededSec, 1),
             util::TableWriter::num(result.gatedSec, 1),
             util::TableWriter::num((long long)result.gateEvents),
             util::TableWriter::num(result.meanVcmDuty, 3),
             util::TableWriter::num(
                 thermal::failureRateFactor(result.meanTempC), 2)});
    }
    table.print(std::cout);
    std::cout << "\npaper: +10K RPM worth of DTM headroom improves "
                 "response times 30-60%; two-speed designs whose VCM-off\n"
                 "temperature still violates the envelope need sub-second "
                 "throttling granularity (Fig. 7) and thrash here.\n"
                 "AFR factor: relative failure rate at the mean operating "
                 "temperature (x2 per +15 C, paper §1)\n";
    if (!csv_dir.empty())
        table.writeCsv(csv_dir + "/dtm_cosim.csv");
    return bench.finish();
}
