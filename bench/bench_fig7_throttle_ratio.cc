/**
 * @file
 * Experiment E11 — paper Figure 7: throttling ratio (t_heat / t_cool) as a
 * function of the cooling time for both throttling scenarios, plus the
 * hysteresis ablation from DESIGN.md (how the achievable ratio moves if
 * throttling triggers slightly below the envelope).
 *
 * Usage: bench_fig7_throttle_ratio [--csv dir]
 */
#include <iostream>

#include "dtm/throttle.h"
#include "harness/bench.h"
#include "util/table.h"

using namespace hddtherm;

namespace {

const std::vector<double> kTcools = {0.25, 0.5, 1.0, 2.0, 3.0,
                                     4.0,  5.0, 6.0, 7.0, 8.0};

void
runSweep(const char* title, const dtm::ThrottleConfig& cfg,
         const std::string& csv_path)
{
    const dtm::ThrottleExperiment experiment(cfg);
    std::cout << "-- " << title << "\n";
    util::TableWriter table({"tcool (s)", "theat (s)", "ratio",
                             "utilization", "min temp C"});
    for (const auto& r : experiment.sweep(kTcools)) {
        table.addRow({util::TableWriter::num(r.tcoolSec, 2),
                      util::TableWriter::num(r.theatSec, 2),
                      util::TableWriter::num(r.ratio(), 3),
                      util::TableWriter::num(r.utilization(), 3),
                      util::TableWriter::num(r.minTempC, 3)});
    }
    table.print(std::cout);
    std::cout << '\n';
    if (!csv_path.empty())
        table.writeCsv(csv_path);
}

} // namespace

int
main(int argc, char** argv)
{
    harness::Bench bench("bench_fig7_throttle_ratio", argc, argv,
                         "Figure 7: throttling ratios vs cooling time.");
    bench.parse();
    const std::string csv_dir = bench.csvDir();

    std::cout << "Figure 7: throttling ratios vs cooling time "
                 "(2.6\", 1 platter)\n"
              << "paper: ratios ~0.4-1.8, with >1 requiring sub-second "
                 "throttling granularity\n\n";

    dtm::ThrottleConfig vcm_only;
    vcm_only.fullRpm = 24534.0;
    runSweep("(a) VCM-alone, 24,534 RPM", vcm_only,
             csv_dir.empty() ? "" : csv_dir + "/fig7a.csv");

    dtm::ThrottleConfig vcm_rpm;
    vcm_rpm.fullRpm = 37001.0;
    vcm_rpm.lowRpm = 22001.0;
    runSweep("(b) VCM + lower RPM, 37,001/22,001 RPM", vcm_rpm,
             csv_dir.empty() ? "" : csv_dir + "/fig7b.csv");

    // Ablation: trigger the cool phase early (margin below the envelope).
    std::cout << "Ablation: throttling margin below the envelope "
                 "(VCM-alone scenario, tcool = 1 s)\n\n";
    util::TableWriter margin_table({"margin C", "theat (s)", "ratio"});
    for (const double margin : {0.0, 0.1, 0.25, 0.5}) {
        dtm::ThrottleConfig cfg = vcm_only;
        cfg.envelopeC -= margin;
        const dtm::ThrottleExperiment experiment(cfg);
        const auto r = experiment.run(1.0);
        margin_table.addRow({util::TableWriter::num(margin, 2),
                             util::TableWriter::num(r.theatSec, 2),
                             util::TableWriter::num(r.ratio(), 3)});
    }
    margin_table.print(std::cout);
    if (!csv_dir.empty())
        margin_table.writeCsv(csv_dir + "/fig7_margin_ablation.csv");
    return bench.finish();
}
