/**
 * @file
 * Experiment E14 (extension of paper §5.4): mirrored-disk DTM.
 *
 * The paper suggests mirrored disks as a throttling mechanism that never
 * stops service: reads go to one member while the other cools, swapping
 * near the limit.  With identical members, steering conserves the
 * time-averaged read duty, so the interesting case is an *asymmetric*
 * pair: member 0 sits in a hotter chassis slot (+2 C ambient).  Balanced
 * steering drives the hot member over the envelope; thermal steering
 * shifts read seeks toward the cooler member, trading a little response
 * time for envelope compliance — without gating a single request.
 *
 * Usage: bench_mirror_dtm [requests] [--csv dir]
 */
#include <iostream>

#include "dtm/mirror.h"
#include "harness/bench.h"
#include "trace/synth.h"
#include "util/log.h"
#include "util/table.h"

using namespace hddtherm;

int
main(int argc, char** argv)
{
    harness::Bench bench("bench_mirror_dtm", argc, argv,
                         "Mirrored-disk DTM: thermal-aware read steering (paper 5.4).",
                         util::LogLevel::Warn);
    std::size_t requests = 30000;
    bench.flags().addPositionalSizeT(
        "requests", &requests, "workload request count");
    bench.parse();
    const std::string csv_dir = bench.csvDir();

    sim::SystemConfig system;
    system.disk.geometry.diameterInches = 2.6;
    system.disk.geometry.platters = 1;
    system.disk.tech = {533e3, 64e3};
    system.disk.rpm = 21200.0; // above the 15,020 RPM envelope design
    system.disks = 2;
    system.raid = sim::RaidLevel::Raid1;

    // Member 0 sits in a hotter chassis slot.
    const std::vector<double> ambients = {30.0, 28.0};

    trace::WorkloadSpec spec;
    spec.name = "mirror-read-mostly";
    spec.devices = 1;
    spec.requests = requests;
    spec.arrivalRatePerSec = 140.0;
    spec.readFraction = 0.95;
    spec.meanSectors = 16;
    spec.sequentialFraction = 0.15;
    spec.zipfTheta = 0.4;
    spec.seed = 0x313;

    const auto workload = [&] {
        const trace::SyntheticWorkload gen(spec);
        const sim::StorageSystem probe(system);
        return gen.generate(probe.logicalSectors()).toRequests();
    }();

    std::cout << "Mirrored-disk DTM (paper §5.4): 2 x 2.6\" drives at "
              << system.disk.rpm << " RPM, " << requests
              << " requests, 95% reads; member 0 ambient "
              << ambients[0] << " C, member 1 ambient " << ambients[1]
              << " C\n\n";

    util::TableWriter table({"Steering", "mean ms", "peak T0 C",
                             "peak T1 C", "duty0", "duty1",
                             ">envelope s", "swaps"});
    for (const auto policy :
         {dtm::MirrorPolicy::Balanced, dtm::MirrorPolicy::ThermalSteer}) {
        dtm::MirrorDtmConfig cfg;
        cfg.system = system;
        cfg.policy = policy;
        cfg.memberAmbientC = ambients;
        dtm::MirrorDtmSimulation sim(cfg);
        const auto result = sim.run(workload);
        table.addRow(
            {dtm::mirrorPolicyName(policy),
             util::TableWriter::num(result.metrics.meanMs()),
             util::TableWriter::num(result.maxTempC[0]),
             util::TableWriter::num(result.maxTempC[1]),
             util::TableWriter::num(result.meanDuty[0], 3),
             util::TableWriter::num(result.meanDuty[1], 3),
             util::TableWriter::num(result.envelopeExceededSec, 1),
             util::TableWriter::num((long long)result.swaps)});
    }
    table.print(std::cout);
    std::cout << "\n(writes hit both members either way; steering only "
                 "redistributes read seeks)\n";
    if (!csv_dir.empty())
        table.writeCsv(csv_dir + "/mirror_dtm.csv");
    return bench.finish();
}
