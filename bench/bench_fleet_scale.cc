/**
 * @file
 * Fleet scaling benchmark: drives x executor-threads sweep.
 *
 * Runs the rack-scale co-simulation over growing fleets and thread
 * counts, emitting one JSON object per configuration on stdout:
 * wall-clock time, speedup over the single-threaded run of the same
 * fleet, executor steal counts, and a determinism fingerprint (mean/P95
 * latency, peak temperature, throttle events) that must be bit-identical
 * across thread counts for the same fleet.
 *
 * The speedup target (>= 3x at 4 threads on a 64-drive fleet) is a
 * property of the host: it needs at least 4 physical cores.  The
 * fingerprint columns hold on any host.
 *
 * Usage: bench_fleet_scale [--drives 16,64] [--threads 1,2,4]
 *                          [--requests N] [--seed S] [--csv dir]
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "fleet/fleet_sim.h"
#include "harness/bench.h"
#include "util/log.h"

using namespace hddtherm;

namespace {

/// A 64-bay fleet = 2 racks x 4 chassis x (drives/8) bays, shrunk for
/// smaller sweeps while keeping at least one rack of two chassis.
fleet::FleetConfig
fleetOf(int drives, std::size_t requests, std::uint64_t seed)
{
    fleet::FleetConfig cfg;
    cfg.racks = drives >= 32 ? 2 : 1;
    cfg.rack.chassisCount = drives >= 16 ? 4 : 2;
    cfg.chassis.bays =
        std::max(1, drives / (cfg.racks * cfg.rack.chassisCount));
    // A 27 C cold aisle keeps the hot drive *feasible* (its VCM-off
    // steady state cools below the resume threshold even after the
    // chassis air warms up) while the full-duty steady state still tops
    // the envelope, so DTM gating fires under bursts instead of wedging.
    cfg.rack.inletC = 27.0;
    cfg.bay.system.disk.geometry.diameterInches = 2.6;
    cfg.bay.system.disk.geometry.platters = 1;
    cfg.bay.system.disk.tech = {500e3, 60e3};
    cfg.bay.system.disk.rpm = 24534.0; // hot: DTM throttles under load
    cfg.bay.policy = dtm::DtmPolicy::GateRequests;
    cfg.workload.requests = requests;
    cfg.workload.arrivalRatePerSec = 100.0;
    cfg.epochSec = 0.5;
    cfg.maxSimulatedSec = 3600.0;
    cfg.seed = seed;
    return cfg;
}

} // namespace

int
main(int argc, char** argv)
{
    harness::Bench bench("bench_fleet_scale", argc, argv,
                         "Fleet scaling: drives x executor-threads sweep "
                         "with a determinism fingerprint.",
                         util::LogLevel::Quiet);
    std::vector<int> drives = {16, 64};
    std::vector<int> threads = {1, 2, 4};
    std::size_t requests = 4000;
    std::uint64_t seed = 42;
    bench.flags().addIntList("--drives", &drives, "D1,D2,...",
                             "fleet sizes to sweep");
    bench.flags().addIntList("--threads", &threads, "T1,T2,...",
                             "executor thread counts to sweep");
    bench.flags().addSizeT("--requests", &requests, "N",
                           "requests per drive");
    bench.flags().addUint64("--seed", &seed, "S", "fleet workload seed");
    bench.parse();
    bench.run().setSeed(seed);
    bench.run().setConfig("requests=" + std::to_string(requests));

    std::printf("{\"host_hardware_threads\": %u}\n",
                std::thread::hardware_concurrency());
    for (const int d : drives) {
        double base_sec = 0.0;
        for (const int t : threads) {
            const auto cfg = fleetOf(d, requests, seed);
            fleet::FleetSimulation sim(cfg);
            const auto t0 = std::chrono::steady_clock::now();
            const auto result = sim.run(t);
            const auto t1 = std::chrono::steady_clock::now();
            const double sec =
                std::chrono::duration<double>(t1 - t0).count();
            if (t == threads.front())
                base_sec = sec;
            std::printf(
                "{\"drives\": %d, \"threads\": %d, \"wall_sec\": %.3f, "
                "\"speedup\": %.2f, \"steals\": %llu, "
                "\"epochs\": %llu, \"requests\": %llu, "
                "\"mean_ms\": %.17g, \"p95_ms\": %.17g, "
                "\"peak_temp_c\": %.17g, \"gate_events\": %llu}\n",
                result.shards, t, sec,
                sec > 0.0 ? base_sec / sec : 0.0,
                static_cast<unsigned long long>(result.executor.steals),
                static_cast<unsigned long long>(result.epochs),
                static_cast<unsigned long long>(result.metrics.count()),
                result.meanLatencyMs, result.p95LatencyMs,
                result.maxDriveTempC,
                static_cast<unsigned long long>(result.gateEvents));
            std::fflush(stdout);
        }
    }
    return bench.finish();
}
