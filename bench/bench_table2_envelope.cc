/**
 * @file
 * Experiment E3 — paper Table 2: rated maximum operating temperatures of
 * four catalog drives vs the model's steady state.  The paper's argument:
 * adding the ~10 °C contributed by on-board electronics (not modeled) to
 * the modeled air temperature approximates the rated envelope, and the
 * envelope itself barely varies across years/RPMs.
 *
 * Usage: bench_table2_envelope [--csv dir]
 */
#include <iostream>

#include "hdd/drive_catalog.h"
#include "harness/bench.h"
#include "thermal/envelope.h"
#include "util/table.h"

using namespace hddtherm;

namespace {

/// Electronics add roughly this much to drive-internal temperature
/// (Huang & Chung 2002, cited in paper §3.3).
constexpr double kElectronicsDeltaC = 10.0;

} // namespace

int
main(int argc, char** argv)
{
    harness::Bench bench("bench_table2_envelope", argc, argv,
                         "Table 2: rated thermal envelopes vs modeled steady state.");
    bench.parse();
    const std::string csv_dir = bench.csvDir();

    std::cout << "Table 2: rated thermal envelopes vs modeled steady "
                 "state\n(model excludes electronics; +10 C added for "
                 "comparison)\n\n";

    util::TableWriter table({"Model", "Year", "RPM", "Wet-bulb C",
                             "Rated max C", "Model air C",
                             "Model + elec C"});
    for (const auto& rating : hdd::table2Ratings()) {
        const auto drive = hdd::findDrive(rating.model);
        thermal::DriveThermalConfig cfg;
        if (drive) {
            cfg.geometry = drive->geometry();
        }
        cfg.rpm = rating.rpm;
        cfg.ambientC = rating.wetBulbTempC;
        cfg.coolingScale =
            thermal::coolingScaleForPlatters(cfg.geometry.platters);
        const double air = thermal::steadyAirTempC(cfg);
        table.addRow({rating.model,
                      util::TableWriter::num((long long)rating.year),
                      util::TableWriter::num(rating.rpm, 0),
                      util::TableWriter::num(rating.wetBulbTempC, 1),
                      util::TableWriter::num(rating.maxOperatingTempC, 1),
                      util::TableWriter::num(air, 2),
                      util::TableWriter::num(air + kElectronicsDeltaC,
                                             2)});
    }
    table.print(std::cout);
    std::cout << "\nCheetah anchor: modeled 45.22 C + 10 C electronics = "
                 "55.22 C vs 55 C rated (paper §3.3)\n";
    if (!csv_dir.empty())
        table.writeCsv(csv_dir + "/table2.csv");
    return bench.finish();
}
