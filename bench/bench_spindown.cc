/**
 * @file
 * Experiment E18 (context for §2): why spin-down power management fails
 * on server workloads — and hence why the paper reaches for DTM.
 *
 * Each Figure 4 workload is replayed with idle-gap recording; a sweep of
 * spin-down timeouts is scored by energy saved vs latency imposed.  The
 * expected shape (Gurumurthi et al., ISPASS'03): server idle gaps are
 * too short — aggressive timeouts thrash the spindle (negative savings,
 * seconds of added stall), conservative ones never engage.
 *
 * Usage: bench_spindown [requests] [--csv dir]
 */
#include <iostream>

#include "core/scenarios.h"
#include "dtm/spindown.h"
#include "harness/bench.h"
#include "util/table.h"

using namespace hddtherm;

int
main(int argc, char** argv)
{
    harness::Bench bench("bench_spindown", argc, argv,
                         "Spin-down power management on server workloads (paper 2 context).");
    std::size_t requests = 30000;
    bench.flags().addPositionalSizeT(
        "requests", &requests, "workload request count");
    bench.parse();
    const std::string csv_dir = bench.csvDir();

    std::cout << "Spin-down power management on server workloads "
                 "(paper §2 context; " << requests
              << " requests per workload)\n\n";

    util::TableWriter table({"workload", "timeout s", "spin-downs",
                             "energy saved", "added stall s",
                             "mean gap ms"});
    for (const auto& base : core::figure4Scenarios(requests)) {
        sim::SystemConfig cfg = base.system;
        cfg.disk.recordIdleGaps = true;
        sim::StorageSystem array(cfg);
        const trace::SyntheticWorkload gen(base.workload);
        array.run(gen.generate(array.logicalSectors()).toRequests());

        const auto& gaps = array.disk(0).idleGaps();
        double gap_sum = 0.0;
        for (const double g : gaps)
            gap_sum += g;
        const double mean_gap_ms =
            gaps.empty() ? 0.0 : 1e3 * gap_sum / double(gaps.size());

        for (const double timeout : {1.0, 10.0, 60.0}) {
            dtm::SpindownParams params;
            params.timeoutSec = timeout;
            const auto r = dtm::evaluateSpindown(
                gaps, cfg.disk.geometry, cfg.disk.rpm, params);
            table.addRow(
                {base.name, util::TableWriter::num(timeout, 0),
                 util::TableWriter::num((long long)r.spinDowns),
                 util::TableWriter::num(100.0 * r.savedFraction(), 1) +
                     "%",
                 util::TableWriter::num(r.addedLatencySec, 1),
                 util::TableWriter::num(mean_gap_ms, 1)});
        }
    }
    // Contrast: a laptop-like think-time workload, where spin-down is
    // the right tool (the §2 literature it was designed for).
    {
        sim::SystemConfig cfg;
        cfg.disk.geometry.diameterInches = 2.6;
        cfg.disk.tech = {533e3, 64e3};
        cfg.disk.rpm = 5400.0;
        cfg.disk.recordIdleGaps = true;
        trace::WorkloadSpec spec;
        spec.name = "laptop-like";
        spec.requests = std::min<std::size_t>(requests, 2000);
        spec.arrivalRatePerSec = 0.05; // bursts every ~20 s of thinking
        spec.burstiness = 0.8;
        spec.sequentialFraction = 0.5;
        spec.seed = 0x1A9;
        sim::StorageSystem array(cfg);
        const trace::SyntheticWorkload gen(spec);
        array.run(gen.generate(array.logicalSectors()).toRequests());
        const auto& gaps = array.disk(0).idleGaps();
        double gap_sum = 0.0;
        for (const double g : gaps)
            gap_sum += g;
        for (const double timeout : {1.0, 10.0, 60.0}) {
            dtm::SpindownParams params;
            params.timeoutSec = timeout;
            const auto r = dtm::evaluateSpindown(
                gaps, cfg.disk.geometry, cfg.disk.rpm, params);
            table.addRow(
                {spec.name, util::TableWriter::num(timeout, 0),
                 util::TableWriter::num((long long)r.spinDowns),
                 util::TableWriter::num(100.0 * r.savedFraction(), 1) +
                     "%",
                 util::TableWriter::num(r.addedLatencySec, 1),
                 util::TableWriter::num(
                     gaps.empty() ? 0.0
                                  : 1e3 * gap_sum / double(gaps.size()),
                     1)});
        }
    }

    table.print(std::cout);
    std::cout << "\nserver idle gaps are milliseconds long: spin-down "
                 "either never engages or thrashes — the motivation for "
                 "thermal (not power-mode) management of server disks\n";
    if (!csv_dir.empty())
        table.writeCsv(csv_dir + "/spindown.csv");
    return bench.finish();
}
