/**
 * @file
 * Experiment E15 (extension of paper §5.4): the cache-disk hierarchy.
 *
 * "We could use two disks, each with a different platter size.  The larger
 * disk, due to its thermal limitations, would have a lower IDR than the
 * smaller one ... allows the smaller disk to serve as a cache for the
 * larger one."  Both members run at their own envelope-limited speeds; a
 * skewed workload is compared on the big disk alone vs the hierarchy.
 *
 * Usage: bench_cache_disk [requests] [--csv dir]
 */
#include <iostream>

#include "harness/bench.h"
#include "sim/hybrid.h"
#include "thermal/envelope.h"
#include "trace/synth.h"
#include "util/table.h"

using namespace hddtherm;

int
main(int argc, char** argv)
{
    harness::Bench bench("bench_cache_disk", argc, argv,
                         "Cache-disk hierarchy: small fast platter fronting a capacity drive (paper 5.4).");
    std::size_t requests = 30000;
    bench.flags().addPositionalSizeT(
        "requests", &requests, "workload request count");
    bench.parse();
    const std::string csv_dir = bench.csvDir();

    // Envelope-limited speeds for the two members: a 4-platter 2.6"
    // capacity drive (with the roadmap's per-count cooling budget) and a
    // single small 1.6" platter, which thermals allow to spin far faster.
    auto envelope_rpm = [](double diameter, int platters) {
        thermal::DriveThermalConfig cfg;
        cfg.geometry.diameterInches = diameter;
        cfg.geometry.platters = platters;
        cfg.coolingScale = thermal::coolingScaleForPlatters(platters);
        cfg.rpm = 10000.0;
        return thermal::maxRpmWithinEnvelope(cfg);
    };
    const double big_rpm = envelope_rpm(2.6, 4);
    const double small_rpm = envelope_rpm(1.6, 1);

    sim::HybridConfig cfg;
    cfg.primary.geometry.diameterInches = 2.6;
    cfg.primary.geometry.platters = 4;
    cfg.primary.tech = {533e3, 64e3};
    cfg.primary.rpm = big_rpm;
    cfg.cacheDisk.geometry.diameterInches = 1.6;
    cfg.cacheDisk.tech = {533e3, 64e3};
    cfg.cacheDisk.rpm = small_rpm;
    cfg.extentSectors = 512; // 256 KB promotion extents

    std::cout << "Cache-disk hierarchy (paper §5.4): 4-platter 2.6\" "
                 "primary at "
              << util::TableWriter::num(big_rpm, 0)
              << " RPM fronted by a 1.6\" cache disk at "
              << util::TableWriter::num(small_rpm, 0)
              << " RPM (both at their thermal envelopes)\n\n";

    trace::WorkloadSpec spec;
    spec.name = "skewed-read";
    spec.devices = 1;
    spec.requests = requests;
    spec.arrivalRatePerSec = 110.0;
    spec.readFraction = 0.90;
    spec.meanSectors = 16;
    spec.sequentialFraction = 0.2;
    spec.regions = 512;
    spec.zipfTheta = 1.1; // hot set -> cacheable working set
    spec.seed = 0xCD;

    sim::HybridSystem probe(cfg);
    const trace::SyntheticWorkload gen(spec);
    const auto workload =
        gen.generate(probe.primary().totalSectors()).toRequests();

    util::TableWriter table({"Configuration", "mean ms", "p95 ms",
                             "hit ratio", "promotions"});

    // Baseline: the large disk alone (promotion disabled, so the cache
    // member never serves data).
    {
        sim::HybridConfig alone = cfg;
        alone.promoteOnMiss = false;
        sim::HybridSystem sys(alone);
        const auto metrics = sys.run(workload);
        table.addRow({"2.6\" x4 primary alone",
                      util::TableWriter::num(metrics.meanMs()),
                      util::TableWriter::num(
                          metrics.histogram().quantile(0.95), 1),
                      "-", "-"});
    }
    // The hierarchy.
    {
        sim::HybridSystem sys(cfg);
        const auto metrics = sys.run(workload);
        table.addRow({"hierarchy (1.6\" cache disk)",
                      util::TableWriter::num(metrics.meanMs()),
                      util::TableWriter::num(
                          metrics.histogram().quantile(0.95), 1),
                      util::TableWriter::num(sys.stats().hitRatio(), 3),
                      util::TableWriter::num(
                          (long long)sys.stats().promotions)});
    }
    table.print(std::cout);
    std::cout << "\nboth configurations respect the 45.22 C envelope; the "
                 "hierarchy converts the small platter's thermal headroom "
                 "into lower service times on the hot set\n";
    if (!csv_dir.empty())
        table.writeCsv(csv_dir + "/cache_disk.csv");
    return bench.finish();
}
