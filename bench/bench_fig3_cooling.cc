/**
 * @file
 * Experiment E6 — paper Figure 3: effect of a better cooling system
 * (ambient lowered by 5 C and 10 C) on the 1-platter IDR roadmap.
 *
 * Usage: bench_fig3_cooling [--csv dir]
 */
#include <iostream>

#include "harness/bench.h"
#include "roadmap/roadmap.h"
#include "util/table.h"

using namespace hddtherm;

int
main(int argc, char** argv)
{
    harness::Bench bench("bench_fig3_cooling", argc, argv,
                         "Figure 3: cooling-system improvements.");
    bench.parse();
    const std::string csv_dir = bench.csvDir();

    std::cout << "Figure 3: cooling-system improvements "
                 "(1 platter; achievable IDR in MB/s; * = below target)\n\n";

    roadmap::RoadmapOptions base;
    roadmap::RoadmapOptions cooler5 = base;
    cooler5.ambientC -= 5.0;
    roadmap::RoadmapOptions cooler10 = base;
    cooler10.ambientC -= 10.0;
    const roadmap::RoadmapEngine engines[] = {
        roadmap::RoadmapEngine(base), roadmap::RoadmapEngine(cooler5),
        roadmap::RoadmapEngine(cooler10)};
    static const char* kLabels[] = {"28 C (baseline)", "23 C (5 C cooler)",
                                    "18 C (10 C cooler)"};

    for (const double d : {2.6, 2.1, 1.6}) {
        std::cout << "-- " << d << "\" platter\n";
        util::TableWriter table({"Year", "target", kLabels[0], kLabels[1],
                                 kLabels[2]});
        for (int year = 2002; year <= 2012; ++year) {
            std::vector<std::string> row;
            row.push_back(util::TableWriter::num((long long)year));
            row.push_back(util::TableWriter::num(
                engines[0].timeline().targetIdrMBps(year), 1));
            for (const auto& engine : engines) {
                const auto p = engine.evaluate(year, d, 1);
                std::string idr =
                    util::TableWriter::num(p.achievableIdr, 1);
                if (!p.meetsTarget)
                    idr += "*";
                row.push_back(std::move(idr));
            }
            table.addRow(std::move(row));
        }
        table.print(std::cout);
        std::cout << "   last on-target year: ";
        for (std::size_t i = 0; i < 3; ++i) {
            std::cout << kLabels[i] << " -> "
                      << engines[i].lastYearOnTarget(d, 1)
                      << (i < 2 ? ", " : "\n\n");
        }
        if (!csv_dir.empty()) {
            char name[64];
            std::snprintf(name, sizeof(name), "/fig3_%.1fin.csv", d);
            table.writeCsv(csv_dir + name);
        }
    }
    return bench.finish();
}
