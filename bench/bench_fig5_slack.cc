/**
 * @file
 * Experiment E9 — paper Figure 5: exploiting thermal slack.  (a) the
 * maximum RPM per platter size with the VCM on (envelope design) vs off
 * (slack exploited); (b) the revised 1-platter IDR roadmap at those
 * speeds.  Paper anchors: 2.6" rises from 15,020 to 26,750 RPM; the slack
 * shrinks with platter size as VCM power falls (3.9 / 2.28 / 0.618 W).
 *
 * Usage: bench_fig5_slack [--csv dir]
 */
#include <iostream>

#include "dtm/slack.h"
#include "harness/bench.h"
#include "util/table.h"

using namespace hddtherm;

int
main(int argc, char** argv)
{
    harness::Bench bench("bench_fig5_slack", argc, argv,
                         "Figure 5: thermal-design slack and the revised IDR roadmap.");
    bench.parse();
    const std::string csv_dir = bench.csvDir();

    const roadmap::RoadmapEngine engine;

    std::cout << "Figure 5(a): thermal-design slack, 1-platter disks\n\n";
    util::TableWriter slack_table({"platter", "VCM W", "envelope RPM",
                                   "VCM-off RPM", "gain RPM"});
    for (const double d : {2.6, 2.1, 1.6}) {
        const auto s = dtm::analyzeSlack(d, 1, engine);
        char label[16];
        std::snprintf(label, sizeof(label), "%.1f\"", d);
        slack_table.addRow({label, util::TableWriter::num(s.vcmPowerW, 3),
                            util::TableWriter::num(s.envelopeRpm, 0),
                            util::TableWriter::num(s.slackRpm, 0),
                            util::TableWriter::num(s.rpmGain(), 0)});
    }
    slack_table.print(std::cout);
    std::cout << "paper anchors: 2.6\" 15,020 -> 26,750 RPM; slack "
                 "shrinks with platter size\n\n";
    if (!csv_dir.empty())
        slack_table.writeCsv(csv_dir + "/fig5a.csv");

    std::cout << "Figure 5(b): revised 1-platter IDR roadmap "
                 "(MB/s; * = below target)\n\n";
    util::TableWriter idr_table({"Year", "target",
                                 "2.6 env", "2.6 slack",
                                 "2.1 env", "2.1 slack",
                                 "1.6 env", "1.6 slack"});
    std::vector<std::vector<dtm::SlackRoadmapPoint>> series;
    for (const double d : {2.6, 2.1, 1.6})
        series.push_back(dtm::slackRoadmap(d, 1, engine));
    for (std::size_t y = 0; y < series[0].size(); ++y) {
        std::vector<std::string> row;
        row.push_back(
            util::TableWriter::num((long long)series[0][y].year));
        row.push_back(util::TableWriter::num(series[0][y].targetIdr, 1));
        for (const auto& s : series) {
            auto mark = [&](double idr) {
                std::string v = util::TableWriter::num(idr, 1);
                if (idr < s[y].targetIdr)
                    v += "*";
                return v;
            };
            row.push_back(mark(s[y].envelopeIdr));
            row.push_back(mark(s[y].slackIdr));
        }
        idr_table.addRow(std::move(row));
    }
    idr_table.print(std::cout);
    std::cout << "\npaper: the 2.6\" slack design exceeds the 40% CGR "
                 "curve until ~2005-2006 and beats the non-slack 2.1\" "
                 "design\n";
    if (!csv_dir.empty())
        idr_table.writeCsv(csv_dir + "/fig5b.csv");
    return bench.finish();
}
