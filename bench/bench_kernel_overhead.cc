/**
 * @file
 * SimKernel dispatch-overhead benchmark (the refactor's perf gate).
 *
 * The engine::SimKernel replaced the seed's (time, seq)-ordered
 * sim::EventQueue under every time loop, adding per-event priority
 * tie-breaking, a domain tag, and a trace hook.  This harness prices
 * that generalization on a pure event-churn workload — a ring of
 * self-rescheduling actors with LCG-drawn delays, no storage or thermal
 * physics — where kernel bookkeeping is all that runs:
 *
 *   legacy       a local replica of the pre-refactor EventQueue
 *   kernel       SimKernel, no trace sink (the production default)
 *   kernel+ring  SimKernel streaming into a RingBufferTraceSink
 *
 * One JSON object per variant: events/sec (best of --reps) and the
 * throughput ratio against legacy.  The untraced kernel must stay
 * within 5% of legacy (vs_legacy >= 0.95); every variant must agree on
 * the checksum (same events, same order, same clock).
 *
 * Usage: bench_kernel_overhead [--events N] [--actors N] [--reps N]
 *                              [--csv dir]
 */
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <queue>
#include <vector>

#include "engine/kernel.h"
#include "engine/trace.h"
#include "harness/bench.h"
#include "obs/manifest.h"
#include "util/error.h"

using namespace hddtherm;

namespace {

/**
 * The pre-refactor sim::EventQueue, replicated verbatim (same REQUIRE
 * guard, same copy-out-before-pop dispatch): a binary heap of
 * (when, seq, callback) with insertion-sequence tie-breaking.  Kept
 * local to the benchmark so the baseline survives the refactor it
 * measures.
 */
class LegacyEventQueue
{
  public:
    using Callback = std::function<void()>;

    void schedule(double when, Callback cb)
    {
        HDDTHERM_REQUIRE(when >= now_, "cannot schedule into the past");
        heap_.push(Event{when, next_seq_++, std::move(cb)});
    }

    bool runNext()
    {
        if (heap_.empty())
            return false;
        // Copy out before pop so the callback may schedule new events.
        Event ev = heap_.top();
        heap_.pop();
        now_ = ev.when;
        ev.cb();
        return true;
    }

    void runAll()
    {
        while (runNext()) {
        }
    }

    double now() const { return now_; }

  private:
    struct Event
    {
        double when;
        std::uint64_t seq;
        Callback cb;
    };
    struct Later
    {
        bool operator()(const Event& a, const Event& b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };
    std::priority_queue<Event, std::vector<Event>, Later> heap_;
    double now_ = 0.0;
    std::uint64_t next_seq_ = 0;
};

/// Deterministic delay stream (same LCG for every variant).
struct Lcg
{
    std::uint64_t state;
    double next()
    {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        // Delays in (0, ~1 ms]: dense enough that heap order is
        // exercised, never zero so time strictly advances.
        return 1e-6 * double((state >> 33) % 1000 + 1);
    }
};

/// One run: @p actors self-rescheduling callbacks churn @p total events.
/// Returns a checksum over (fire time, actor) pairs that every variant
/// must reproduce exactly.
template <typename Queue>
std::uint64_t
churn(Queue& q, int actors, std::uint64_t total)
{
    std::uint64_t fired = 0;
    std::uint64_t checksum = 0;
    std::vector<Lcg> rng;
    rng.reserve(std::size_t(actors));
    for (int a = 0; a < actors; ++a)
        rng.push_back(Lcg{std::uint64_t(a) * 2654435761ull + 1});

    std::function<void(int)> fire = [&](int actor) {
        ++fired;
        checksum =
            checksum * 1099511628211ull ^ rng[std::size_t(actor)].state;
        if (fired + std::uint64_t(actors) <= total + 1) {
            q.schedule(q.now() + rng[std::size_t(actor)].next(),
                       [&fire, actor] { fire(actor); });
        }
    };
    for (int a = 0; a < actors; ++a)
        q.schedule(rng[std::size_t(a)].next(), [&fire, a] { fire(a); });
    q.runAll();
    return checksum ^ fired;
}

struct Sample
{
    double events_per_sec = 0.0;
    std::uint64_t checksum = 0;
};

/// One timed churn; folds the rate into @p best (best-of-reps) and
/// returns it.
template <typename MakeQueue>
double
measureOnce(MakeQueue make, int actors, std::uint64_t total, Sample& best)
{
    auto q = make();
    const auto t0 = std::chrono::steady_clock::now();
    const std::uint64_t checksum = churn(*q, actors, total);
    const auto t1 = std::chrono::steady_clock::now();
    const double sec = std::chrono::duration<double>(t1 - t0).count();
    const double rate = sec > 0.0 ? double(total) / sec : 0.0;
    if (rate > best.events_per_sec)
        best.events_per_sec = rate;
    best.checksum = checksum;
    return rate;
}

void
report(const char* variant, const Sample& s, double legacy_rate)
{
    std::printf("{\"variant\": \"%s\", \"events_per_sec\": %.0f, "
                "\"vs_legacy\": %.3f, \"checksum\": %llu}\n",
                variant, s.events_per_sec,
                legacy_rate > 0.0 ? s.events_per_sec / legacy_rate : 0.0,
                static_cast<unsigned long long>(s.checksum));
    std::fflush(stdout);
}

} // namespace

int
main(int argc, char** argv)
{
    harness::Bench bench("bench_kernel_overhead", argc, argv,
                         "SimKernel event-dispatch overhead vs the legacy ad-hoc queue.");
    std::uint64_t total = 2'000'000;
    int actors = 64;
    int reps = 5;
    bench.flags().addUint64("--events", &total, "N",
                            "events to dispatch per rep");
    bench.flags().addInt("--actors", &actors, "N", "concurrent actors");
    bench.flags().addInt("--reps", &reps, "N", "interleaved repetitions");
    bench.parse();
    bench.run().setConfig("events=" + std::to_string(total) +
                        " actors=" + std::to_string(actors) +
                        " reps=" + std::to_string(reps));

    std::printf("{\"events\": %llu, \"actors\": %d, \"reps\": %d}\n",
                static_cast<unsigned long long>(total), actors, reps);

    // Warm the allocator and instruction caches off the clock.
    {
        LegacyEventQueue lq;
        churn(lq, actors, total / 10);
        engine::SimKernel sk;
        churn(sk, actors, total / 10);
    }

    // Reps are interleaved across variants so transient host load skews
    // every variant alike, not whichever happened to run during a spike.
    Sample legacy;
    Sample kernel;
    Sample traced;
    double best_paired = 0.0;
    engine::RingBufferTraceSink ring(4096);
    for (int r = 0; r < reps; ++r) {
        const double lr = measureOnce(
            [] { return std::make_unique<LegacyEventQueue>(); }, actors,
            total, legacy);
        const double kr = measureOnce(
            [] { return std::make_unique<engine::SimKernel>(); }, actors,
            total, kernel);
        // Gate on the best back-to-back pair: a rate pair measured
        // within one rep shares the host's load window, so their ratio
        // isolates kernel overhead from machine noise.
        if (lr > 0.0)
            best_paired = std::max(best_paired, kr / lr);
        measureOnce(
            [&ring] {
                auto q = std::make_unique<engine::SimKernel>();
                q->setTraceSink(&ring);
                return q;
            },
            actors, total, traced);
    }
    report("legacy", legacy, legacy.events_per_sec);
    report("kernel", kernel, legacy.events_per_sec);
    report("kernel+ring", traced, legacy.events_per_sec);
    std::printf("{\"paired_vs_legacy\": %.3f}\n", best_paired);

    if (kernel.checksum != legacy.checksum ||
        traced.checksum != legacy.checksum) {
        std::fprintf(stderr, "checksum mismatch between variants\n");
        return 1;
    }
    // The acceptance gate: the untraced kernel within 5% of legacy on
    // the cleanest back-to-back pair.
    if (best_paired < 0.95) {
        std::fprintf(stderr,
                     "kernel dispatch regressed >5%% vs legacy "
                     "(best paired ratio %.3f)\n",
                     best_paired);
        return 1;
    }
    bench.finish();
    return 0;
}
