/**
 * @file
 * Experiment E8 — paper Figure 4: response-time CDFs and means for the
 * five server workloads as spindle speed increases in +5000 RPM steps
 * (thermal limits deliberately ignored, as in §5.1).
 *
 * Usage: bench_fig4_workloads [requests-per-scenario] [--csv dir]
 */
#include <iostream>
#include <string>

#include "core/scenarios.h"
#include "harness/bench.h"
#include "util/log.h"
#include "util/table.h"

using namespace hddtherm;

int
main(int argc, char** argv)
{
    harness::Bench bench("bench_fig4_workloads", argc, argv,
                         "Figure 4: response-time impact of faster drives on server workloads.",
                         util::LogLevel::Warn);
    std::size_t requests = 60000;
    bench.flags().addPositionalSizeT(
        "requests", &requests, "workload request count");
    bench.parse();
    const std::string csv_dir = bench.csvDir();

    std::cout << "Figure 4: performance impact of faster disk drives on "
                 "server workloads\n"
              << "(synthetic traces tuned to the paper's published "
                 "characteristics; " << requests
              << " requests per scenario)\n\n";

    for (const auto& scenario : core::figure4Scenarios(requests)) {
        std::cout << "== " << scenario.name << " ("
                  << sim::raidLevelName(scenario.system.raid) << ", "
                  << scenario.system.disks << " disks, base "
                  << scenario.baseRpm << " RPM)\n";

        util::TableWriter table({"RPM", "mean ms", "paper ms",
                                 "<=5ms", "<=20ms", "<=60ms", "<=200ms",
                                 ">200ms"});
        const auto rpms = scenario.rpmSteps();
        double base_mean = 0.0;
        for (std::size_t i = 0; i < rpms.size(); ++i) {
            const auto metrics = scenario.run(rpms[i]);
            const auto cdf = metrics.histogram().cdf();
            if (i == 0)
                base_mean = metrics.meanMs();
            table.addRow({util::TableWriter::num(rpms[i], 0),
                          util::TableWriter::num(metrics.meanMs()),
                          util::TableWriter::num(
                              scenario.paperAvgResponseMs[i]),
                          util::TableWriter::num(cdf[0], 3),
                          util::TableWriter::num(cdf[2], 3),
                          util::TableWriter::num(cdf[4], 3),
                          util::TableWriter::num(cdf[8], 3),
                          util::TableWriter::num(
                              metrics.histogram().overflowFraction(), 3)});
            if (i == 1) {
                std::cout << "   +5K RPM mean improvement: "
                          << util::TableWriter::num(
                                 100.0 * (1.0 -
                                          metrics.meanMs() / base_mean),
                                 1)
                          << "% (paper: "
                          << util::TableWriter::num(
                                 100.0 * (1.0 -
                                          scenario.paperAvgResponseMs[1] /
                                              scenario
                                                  .paperAvgResponseMs[0]),
                                 1)
                          << "%)\n";
            }
        }
        table.print(std::cout);
        if (!csv_dir.empty())
            table.writeCsv(csv_dir + "/fig4_" + scenario.name + ".csv");
        std::cout << '\n';
    }

    // Ablation: request-scheduler policy (DESIGN.md §6).  DiskSim-era
    // systems used FCFS at the driver; drive-internal reordering (SSTF /
    // LOOK) shortens seeks and therefore shifts how much a higher RPM can
    // still buy.
    std::cout << "Ablation: scheduler policy (Search-Engine, base RPM)\n\n";
    util::TableWriter sched_table({"scheduler", "mean ms",
                                   "+5K RPM mean ms", "improvement"});
    for (const auto policy :
         {sim::SchedulerPolicy::Fcfs, sim::SchedulerPolicy::Sstf,
          sim::SchedulerPolicy::Elevator}) {
        auto scenario = core::figure4Scenario("Search-Engine", requests);
        scenario.system.disk.scheduler = policy;
        const double base = scenario.run(scenario.baseRpm).meanMs();
        const double fast =
            scenario.run(scenario.baseRpm + 5000.0).meanMs();
        sched_table.addRow(
            {sim::schedulerPolicyName(policy),
             util::TableWriter::num(base), util::TableWriter::num(fast),
             util::TableWriter::num(100.0 * (1.0 - fast / base), 1) +
                 "%"});
    }
    sched_table.print(std::cout);
    if (!csv_dir.empty())
        sched_table.writeCsv(csv_dir + "/fig4_scheduler_ablation.csv");
    return bench.finish();
}
