/**
 * @file
 * Experiment E17 (robustness extension): degraded-mode RAID service.
 *
 * A member failure turns reads of the lost units into whole-row
 * reconstructions and rewires the small-write parity protocol; the extra
 * media traffic also lands as extra VCM heat on the survivors.  This
 * bench quantifies both costs on a TPC-C-class RAID-5 array and on a
 * RAID-1 pair.
 *
 * Usage: bench_degraded_raid [requests] [--csv dir]
 */
#include <iostream>

#include "core/energy.h"
#include "harness/bench.h"
#include "sim/storage_system.h"
#include "thermal/envelope.h"
#include "trace/synth.h"
#include "util/table.h"

using namespace hddtherm;

namespace {

struct Row
{
    double meanMs;
    double p95Ms;
    std::uint64_t mediaOps;
    double maxSurvivorDuty;
    double steadySurvivorC;
};

Row
replay(const sim::SystemConfig& system, int fail_disk,
       const std::vector<sim::IoRequest>& workload)
{
    sim::StorageSystem array(system);
    if (fail_disk >= 0)
        array.failDisk(fail_disk);
    const auto metrics = array.run(workload);
    const double elapsed = array.events().now();

    Row row;
    row.meanMs = metrics.meanMs();
    row.p95Ms = metrics.histogram().quantile(0.95);
    row.mediaOps = 0;
    row.maxSurvivorDuty = 0.0;
    for (int d = 0; d < array.diskCount(); ++d) {
        row.mediaOps += array.disk(d).activity().mediaAccesses;
        if (d != fail_disk && elapsed > 0.0) {
            row.maxSurvivorDuty =
                std::max(row.maxSurvivorDuty,
                         array.disk(d).activity().seekSec / elapsed);
        }
    }
    thermal::DriveThermalConfig tcfg;
    tcfg.geometry = system.disk.geometry;
    tcfg.rpm = system.disk.rpm;
    tcfg.vcmDuty = row.maxSurvivorDuty;
    row.steadySurvivorC = thermal::steadyAirTempC(tcfg);
    return row;
}

} // namespace

int
main(int argc, char** argv)
{
    harness::Bench bench("bench_degraded_raid", argc, argv,
                         "Degraded-mode RAID: performance and thermal cost of a member failure.");
    std::size_t requests = 30000;
    bench.flags().addPositionalSizeT(
        "requests", &requests, "workload request count");
    bench.parse();
    const std::string csv_dir = bench.csvDir();

    std::cout << "Degraded-mode RAID: performance and thermal cost of a "
                 "member failure (" << requests << " requests)\n\n";

    util::TableWriter table({"Array", "state", "mean ms", "p95 ms",
                             "media ops", "worst duty",
                             "survivor steady C"});

    auto run_case = [&](const char* label, sim::RaidLevel raid, int disks,
                        double read_fraction) {
        sim::SystemConfig system;
        system.disk.geometry.diameterInches = 2.6;
        system.disk.tech = {533e3, 64e3};
        system.disk.rpm = 15020.0;
        system.disks = disks;
        system.raid = raid;

        trace::WorkloadSpec spec;
        spec.name = label;
        spec.devices = 1;
        spec.requests = requests;
        spec.arrivalRatePerSec = 150.0;
        spec.readFraction = read_fraction;
        spec.meanSectors = 16;
        spec.sequentialFraction = 0.2;
        spec.zipfTheta = 0.7;
        spec.seed = 0xDE6;
        const sim::StorageSystem probe(system);
        const auto workload = trace::SyntheticWorkload(spec)
                                  .generate(probe.logicalSectors())
                                  .toRequests();

        const Row healthy = replay(system, -1, workload);
        const Row degraded = replay(system, 0, workload);
        auto add = [&](const char* state, const Row& r) {
            table.addRow({label, state, util::TableWriter::num(r.meanMs),
                          util::TableWriter::num(r.p95Ms, 1),
                          util::TableWriter::num((long long)r.mediaOps),
                          util::TableWriter::num(r.maxSurvivorDuty, 3),
                          util::TableWriter::num(r.steadySurvivorC)});
        };
        add("healthy", healthy);
        add("degraded", degraded);
    };

    run_case("RAID-5 x4", sim::RaidLevel::Raid5, 4, 0.65);
    run_case("RAID-1 x2", sim::RaidLevel::Raid1, 2, 0.90);
    table.print(std::cout);
    std::cout << "\ndegraded service concentrates traffic (and VCM heat) "
                 "on the survivors: reads of lost units fan out into row\n"
                 "reconstructions, while parity-lost rows degenerate to "
                 "plain writes; RAID-1 failover halves the pair's read "
                 "bandwidth\n";
    if (!csv_dir.empty())
        table.writeCsv(csv_dir + "/degraded_raid.csv");
    return bench.finish();
}
