/**
 * @file
 * Experiment E10 — paper Figure 6: temperature traces of the two dynamic
 * throttling scenarios on disks designed for average-case behaviour:
 *   (a) VCM-alone: 2.6" at 24,534 RPM (2005 target speed) — turning the
 *       VCM off brings the drive below the envelope;
 *   (b) VCM + lower RPM: 2.6" at 37,001 RPM (2007 target speed), cooling
 *       at 22,001 RPM — VCM-off alone no longer suffices.
 *
 * Usage: bench_fig6_throttle_traces [--csv dir]
 */
#include <iostream>

#include "dtm/throttle.h"
#include "harness/bench.h"
#include "util/table.h"

using namespace hddtherm;

namespace {

void
runScenario(const char* title, const dtm::ThrottleConfig& cfg,
            double tcool, const std::string& csv_path)
{
    const dtm::ThrottleExperiment experiment(cfg);
    std::cout << "-- " << title << "\n";

    const auto probe = experiment.run(tcool);
    std::cout << "   steady temps: VCM-on "
              << util::TableWriter::num(probe.hotSteadyC)
              << " C (above envelope), cooling config "
              << util::TableWriter::num(probe.coolSteadyC)
              << " C (below envelope " << cfg.envelopeC << " C)\n";

    const auto trace = experiment.temperatureTrace(tcool, 4, 0.5);
    util::TableWriter table({"t (s)", "air C", "phase"});
    for (std::size_t i = 0; i < trace.size(); i += 2) {
        table.addRow({util::TableWriter::num(trace[i].timeSec, 1),
                      util::TableWriter::num(trace[i].tempC, 3),
                      trace[i].cooling ? "cool" : "heat"});
    }
    // Print a compact excerpt; the CSV has the full trace.
    std::cout << "   trace excerpt (full series in CSV):\n";
    util::TableWriter excerpt({"t (s)", "air C", "phase"});
    for (std::size_t i = 0; i < trace.size();
         i += std::max<std::size_t>(1, trace.size() / 12)) {
        excerpt.addRow({util::TableWriter::num(trace[i].timeSec, 1),
                        util::TableWriter::num(trace[i].tempC, 3),
                        trace[i].cooling ? "cool" : "heat"});
    }
    excerpt.print(std::cout);
    std::cout << "   cycle: cool " << tcool << " s -> reheat "
              << util::TableWriter::num(probe.theatSec, 1)
              << " s (ratio "
              << util::TableWriter::num(probe.ratio(), 2) << ")\n\n";
    if (!csv_path.empty())
        table.writeCsv(csv_path);
}

} // namespace

int
main(int argc, char** argv)
{
    harness::Bench bench("bench_fig6_throttle_traces", argc, argv,
                         "Figure 6: dynamic-throttling temperature traces.");
    bench.parse();
    const std::string csv_dir = bench.csvDir();

    std::cout << "Figure 6: dynamic-throttling temperature traces "
                 "(2.6\", 1 platter)\n\n";

    dtm::ThrottleConfig vcm_only;
    vcm_only.fullRpm = 24534.0;
    runScenario("(a) VCM-alone throttling at 24,534 RPM", vcm_only, 4.0,
                csv_dir.empty() ? "" : csv_dir + "/fig6a.csv");

    dtm::ThrottleConfig vcm_rpm;
    vcm_rpm.fullRpm = 37001.0;
    vcm_rpm.lowRpm = 22001.0;
    runScenario("(b) VCM + lower-RPM throttling at 37,001/22,001 RPM",
                vcm_rpm, 4.0,
                csv_dir.empty() ? "" : csv_dir + "/fig6b.csv");
    return bench.finish();
}
