/**
 * @file
 * Experiment E19 — the paper's concluding remark: "we can use DTM just to
 * reduce the average operating temperature for enhancing reliability."
 *
 * A multi-speed drive serving a light workload sweeps its spindle speed
 * from 7 200 to the envelope-design 15 020 RPM.  Each operating point is
 * co-simulated (measured VCM duty feeding the thermal model) and scored
 * on the axes a DTM policy would navigate: response time, mean operating
 * temperature, the failure-rate factor (x2 per +15 C), and energy.
 *
 * Usage: bench_dtm_reliability [requests] [--csv dir]
 */
#include <iostream>

#include "core/energy.h"
#include "dtm/cosim.h"
#include "harness/bench.h"
#include "harness/run_builder.h"
#include "thermal/reliability.h"
#include "util/log.h"
#include "util/table.h"

using namespace hddtherm;

int
main(int argc, char** argv)
{
    harness::Bench bench("bench_dtm_reliability", argc, argv,
                         "DTM for reliability: spindle-speed trade space on a light workload (paper 6).",
                         util::LogLevel::Warn);
    harness::RunSpec spec;
    spec.scenario = "OLTP";
    spec.requests = 40000;
    spec.warmupFraction = 0.5;
    bench.flags().addPositionalSizeT(
        "requests", &spec.requests, "workload request count");
    bench.parse();
    const std::string csv_dir = bench.csvDir();
    const std::size_t requests = spec.requests;

    // A light mixed workload on one 2.6" drive: the regime where speed is
    // a choice rather than a necessity.
    harness::RunBuilder builder(spec, [](core::ExperimentSpec& e) {
        e.system.disks = 1;
        e.system.raid = sim::RaidLevel::None;
        e.system.disk.geometry.diameterInches = 2.6;
        e.system.disk.geometry.platters = 1;
        e.workload.devices = 1;
        e.workload.arrivalRatePerSec = 45.0;
    });
    const auto workload = builder.makeTrace();

    std::cout << "DTM for reliability (paper §6): spindle-speed trade "
                 "space on a light workload, " << requests
              << " requests\n(failure rate doubles per +15 C; reference "
                 "28 C ambient)\n\n";

    util::TableWriter table({"RPM", "mean ms", "mean temp C",
                             "AFR factor", "mean power W"});
    for (const double rpm : {7200.0, 10000.0, 12000.0, 15020.0}) {
        dtm::CoSimConfig cfg = builder.cosim();
        cfg.system.disk.rpm = rpm;
        cfg.startAtSteadyState = false; // cold start; report warm half
        dtm::CoSimulation cosim(cfg);
        const auto result = cosim.run(workload);

        // Energy from the drive's measured activity.
        sim::DiskActivity activity;
        activity.seekSec = result.meanVcmDuty * result.simulatedSec;
        const auto energy = core::accountEnergy(
            cfg.system.disk.geometry, rpm, activity, result.simulatedSec);

        table.addRow(
            {util::TableWriter::num(rpm, 0),
             util::TableWriter::num(result.metrics.meanMs()),
             util::TableWriter::num(result.meanTempC),
             util::TableWriter::num(
                 thermal::failureRateFactor(result.meanTempC), 2),
             util::TableWriter::num(
                 energy.meanPowerW(result.simulatedSec), 1)});
    }
    table.print(std::cout);
    std::cout << "\nat light duty the spindle loss dominates windage, so "
                 "speed alone moves the AFR modestly; the decisive\n"
                 "reliability lever is keeping peaks off the envelope — "
                 "see bench_dtm_cosim (AFR 2.48 unguarded vs 2.22 "
                 "DTM-guarded)\n";
    if (!csv_dir.empty())
        table.writeCsv(csv_dir + "/dtm_reliability.csv");
    return bench.finish();
}
