/**
 * @file
 * Metrics-layer overhead benchmark (the obs layer's perf gate).
 *
 * The obs design contract says instrumentation is near-free when
 * disabled (every site is one relaxed atomic load) and cheap when
 * enabled (lock-free counter/gauge updates).  This harness prices both
 * claims on the same pure event-churn workload bench_kernel_overhead
 * uses — a ring of self-rescheduling SimKernel actors — with an
 * instrumented fire path (one counter site, one add site, and a gauge
 * watermark per event; a histogram observation every 256 events):
 *
 *   bare       the fire path compiled with no instrumentation at all
 *   disabled   instrumented sites, metrics off (the production default)
 *   enabled    instrumented sites, metrics on
 *
 * One JSON object per variant: events/sec (best of --reps) and the
 * throughput ratio against bare.  Gates (best back-to-back pair, so a
 * load spike cannot fail the run): disabled within 2% of bare
 * (>= 0.98), enabled within 10% (>= 0.90).  Every variant must agree on
 * the checksum — instrumentation must not change what executes.
 *
 * Usage: bench_obs_overhead [--events N] [--actors N] [--reps N]
 *                           [--csv dir]
 */
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "engine/kernel.h"
#include "harness/bench.h"
#include "obs/manifest.h"
#include "obs/metrics.h"

using namespace hddtherm;

namespace {

/// Deterministic delay stream (same LCG for every variant).
struct Lcg
{
    std::uint64_t state;
    double next()
    {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        // Delays in (0, ~1 ms]: dense enough that heap order is
        // exercised, never zero so time strictly advances.
        return 1e-6 * double((state >> 33) % 1000 + 1);
    }
};

/**
 * One run: @p actors self-rescheduling callbacks churn @p total events
 * through a SimKernel.  When @p kInstrumented, the fire path carries the
 * obs sites the real simulation layers use.  Returns a checksum over the
 * RNG stream that every variant must reproduce exactly.
 */
template <bool kInstrumented>
std::uint64_t
churn(int actors, std::uint64_t total)
{
    engine::SimKernel q;
    std::uint64_t fired = 0;
    std::uint64_t checksum = 0;
    std::vector<Lcg> rng;
    rng.reserve(std::size_t(actors));
    for (int a = 0; a < actors; ++a)
        rng.push_back(Lcg{std::uint64_t(a) * 2654435761ull + 1});

    std::function<void(int)> fire = [&](int actor) {
        ++fired;
        // A deterministic model-work stand-in: real callbacks (seek
        // model, thermal step) run hundreds of nanoseconds, so a
        // zero-work fire would price instrumentation against a
        // degenerate baseline.  The serial LCG chain is unoptimizable
        // and identical across variants.
        std::uint64_t acc = rng[std::size_t(actor)].state;
        for (int w = 0; w < 96; ++w)
            acc = acc * 6364136223846793005ull + 1442695040888963407ull;
        checksum = checksum * 1099511628211ull ^ acc;
        if constexpr (kInstrumented) {
            HDDTHERM_OBS_COUNT("bench.obs_overhead.fired");
            HDDTHERM_OBS_ADD("bench.obs_overhead.work", 2);
            HDDTHERM_OBS_GAUGE_SET("bench.obs_overhead.depth", fired);
            if ((fired & 255u) == 0) {
                if (obs::enabled()) {
                    static obs::HistogramMetric& h =
                        obs::MetricsRegistry::global().histogram(
                            "bench.obs_overhead.sample_ms",
                            obs::defaultLatencyEdgesMs());
                    h.observe(double(fired & 1023u) * 0.01);
                }
            }
        }
        if (fired + std::uint64_t(actors) <= total + 1) {
            q.schedule(q.now() + rng[std::size_t(actor)].next(),
                       [&fire, actor] { fire(actor); });
        }
    };
    for (int a = 0; a < actors; ++a)
        q.schedule(rng[std::size_t(a)].next(), [&fire, a] { fire(a); });
    q.runAll();
    return checksum ^ fired;
}

struct Sample
{
    double events_per_sec = 0.0;
    std::uint64_t checksum = 0;
};

/// One timed churn; folds the rate into @p best and returns it.
template <bool kInstrumented>
double
measureOnce(int actors, std::uint64_t total, Sample& best)
{
    const auto t0 = std::chrono::steady_clock::now();
    const std::uint64_t checksum = churn<kInstrumented>(actors, total);
    const auto t1 = std::chrono::steady_clock::now();
    const double sec = std::chrono::duration<double>(t1 - t0).count();
    const double rate = sec > 0.0 ? double(total) / sec : 0.0;
    if (rate > best.events_per_sec)
        best.events_per_sec = rate;
    best.checksum = checksum;
    return rate;
}

void
report(const char* variant, const Sample& s, double bare_rate)
{
    std::printf("{\"variant\": \"%s\", \"events_per_sec\": %.0f, "
                "\"vs_bare\": %.3f, \"checksum\": %llu}\n",
                variant, s.events_per_sec,
                bare_rate > 0.0 ? s.events_per_sec / bare_rate : 0.0,
                static_cast<unsigned long long>(s.checksum));
    std::fflush(stdout);
}

} // namespace

int
main(int argc, char** argv)
{
    harness::Bench bench("bench_obs_overhead", argc, argv,
                         "Metrics/profiling layer overhead: bare vs disabled vs enabled.");
    std::uint64_t total = 2'000'000;
    int actors = 64;
    int reps = 5;
    bench.flags().addUint64("--events", &total, "N",
                            "events to dispatch per rep");
    bench.flags().addInt("--actors", &actors, "N", "concurrent actors");
    bench.flags().addInt("--reps", &reps, "N", "interleaved repetitions");
    bench.parse();
    bench.run().setConfig("events=" + std::to_string(total) +
                        " actors=" + std::to_string(actors) +
                        " reps=" + std::to_string(reps));

    std::printf("{\"events\": %llu, \"actors\": %d, \"reps\": %d}\n",
                static_cast<unsigned long long>(total), actors, reps);

    // The measured variants control the flag themselves.
    obs::setEnabled(false);

    // Warm the allocator, instruction caches, and metric registrations
    // off the clock.
    churn<false>(actors, total / 10);
    churn<true>(actors, total / 10);
    obs::setEnabled(true);
    churn<true>(actors, total / 10);
    obs::setEnabled(false);

    // Reps are interleaved across variants so transient host load skews
    // every variant alike; each gate uses the best back-to-back pair,
    // which shares one load window and isolates the obs tax from noise.
    Sample bare;
    Sample disabled;
    Sample enabled;
    double best_disabled_ratio = 0.0;
    double best_enabled_ratio = 0.0;
    for (int r = 0; r < reps; ++r) {
        const double br = measureOnce<false>(actors, total, bare);
        const double dr = measureOnce<true>(actors, total, disabled);
        obs::setEnabled(true);
        const double er = measureOnce<true>(actors, total, enabled);
        obs::setEnabled(false);
        if (br > 0.0) {
            best_disabled_ratio = std::max(best_disabled_ratio, dr / br);
            best_enabled_ratio = std::max(best_enabled_ratio, er / br);
        }
    }
    report("bare", bare, bare.events_per_sec);
    report("disabled", disabled, bare.events_per_sec);
    report("enabled", enabled, bare.events_per_sec);
    std::printf("{\"paired_disabled_vs_bare\": %.3f, "
                "\"paired_enabled_vs_bare\": %.3f}\n",
                best_disabled_ratio, best_enabled_ratio);

    int status = 0;
    if (disabled.checksum != bare.checksum ||
        enabled.checksum != bare.checksum) {
        std::fprintf(stderr, "checksum mismatch between variants\n");
        status = 1;
    }
    if (best_disabled_ratio < 0.98) {
        std::fprintf(stderr,
                     "disabled instrumentation costs >2%% vs bare "
                     "(best paired ratio %.3f)\n",
                     best_disabled_ratio);
        status = 1;
    }
    if (best_enabled_ratio < 0.90) {
        std::fprintf(stderr,
                     "enabled instrumentation costs >10%% vs bare "
                     "(best paired ratio %.3f)\n",
                     best_enabled_ratio);
        status = 1;
    }

    obs::setEnabled(true); // artifacts describe the run we just did
    bench.finish();
    return status;
}
