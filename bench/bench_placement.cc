/**
 * @file
 * Experiment E16 (extension of paper §5.4): seek-reducing data placement.
 *
 * "Techniques for co-locating data items to reduce seek overheads can
 * reduce VCM power, and further enhance the potential of throttling."
 * A skewed workload is replayed on one drive before and after an
 * organ-pipe shuffle learned from a profiling window.  Reported: mean
 * seek distance, VCM duty, response time, drive energy, the steady
 * temperature at the measured duty, and the extra RPM the reduced duty
 * unlocks within the envelope.
 *
 * Usage: bench_placement [requests] [--csv dir]
 */
#include <iostream>

#include "core/energy.h"
#include "harness/bench.h"
#include "sim/storage_system.h"
#include "thermal/envelope.h"
#include "trace/placement.h"
#include "trace/synth.h"
#include "util/table.h"

using namespace hddtherm;

namespace {

struct Outcome
{
    double meanMs;
    double meanSeekCyl;
    double vcmDuty;
    double energyJ;
    double steadyC;
    double maxRpm;
};

Outcome
replay(const sim::SystemConfig& system, const trace::Trace& tr)
{
    sim::StorageSystem array(system);
    const auto seeks =
        trace::analyzeSeeks(tr, array.disk(0).addressMap());
    const auto metrics = array.run(tr.toRequests());
    const double elapsed = array.events().now();
    const auto& activity = array.disk(0).activity();

    Outcome out;
    out.meanMs = metrics.meanMs();
    out.meanSeekCyl = seeks.meanSeekCylinders;
    out.vcmDuty = elapsed > 0.0 ? activity.seekSec / elapsed : 0.0;
    out.energyJ = core::accountEnergy(system.disk.geometry,
                                      system.disk.rpm, activity, elapsed)
                      .totalJ();

    thermal::DriveThermalConfig tcfg;
    tcfg.geometry = system.disk.geometry;
    tcfg.rpm = system.disk.rpm;
    tcfg.vcmDuty = out.vcmDuty;
    out.steadyC = thermal::steadyAirTempC(tcfg);
    out.maxRpm = thermal::maxRpmWithinEnvelope(tcfg);
    return out;
}

} // namespace

int
main(int argc, char** argv)
{
    harness::Bench bench("bench_placement", argc, argv,
                         "Data-placement ablation: organ-pipe shuffling (paper 5.4).");
    std::size_t requests = 40000;
    bench.flags().addPositionalSizeT(
        "requests", &requests, "workload request count");
    bench.parse();
    const std::string csv_dir = bench.csvDir();

    sim::SystemConfig system;
    system.disk.geometry.diameterInches = 2.6;
    system.disk.tech = {533e3, 64e3};
    system.disk.rpm = 15020.0;
    system.disks = 1;

    // Skewed random workload: hot extents scattered across the band.
    trace::WorkloadSpec spec;
    spec.name = "skewed";
    spec.requests = requests;
    spec.arrivalRatePerSec = 120.0;
    spec.readFraction = 0.8;
    spec.meanSectors = 8;
    spec.sequentialFraction = 0.05;
    spec.regions = 4096;        // fine-grained regions...
    spec.zipfTheta = 0.95;      // ...with strong popularity skew
    spec.deviceZipfTheta = 0.0;
    spec.seed = 0x9ACE;

    const sim::StorageSystem probe(system);
    const std::int64_t space = probe.logicalSectors();
    const auto tr = trace::SyntheticWorkload(spec).generate(space);

    // Learn the placement from the first half, evaluate on the whole run
    // (a production shuffler would profile a previous day).
    trace::Trace profile("profile");
    for (std::size_t i = 0; i < tr.size() / 2; ++i)
        profile.append(tr.records()[i]);
    const trace::ShuffleMap map(profile, space, 4096);
    const auto shuffled = map.apply(tr);

    std::cout << "Data-placement ablation (paper §5.4): organ-pipe "
                 "shuffle, 2.6\" drive at 15,020 RPM\n"
              << "hot-extent concentration: top 5% of extents receive "
              << util::TableWriter::num(
                     100.0 * map.accessConcentration(0.05), 1)
              << "% of accesses\n\n";

    util::TableWriter table({"Layout", "mean ms", "mean seek (cyl)",
                             "VCM duty", "energy J", "steady C",
                             "max RPM @ duty"});
    const Outcome base = replay(system, tr);
    const Outcome placed = replay(system, shuffled);
    auto row = [&table](const char* label, const Outcome& o) {
        table.addRow({label, util::TableWriter::num(o.meanMs),
                      util::TableWriter::num(o.meanSeekCyl, 0),
                      util::TableWriter::num(o.vcmDuty, 3),
                      util::TableWriter::num(o.energyJ, 0),
                      util::TableWriter::num(o.steadyC),
                      util::TableWriter::num(o.maxRpm, 0)});
    };
    row("original", base);
    row("organ-pipe shuffled", placed);
    table.print(std::cout);

    std::cout << "\nshorter seeks cut VCM heat, lowering the operating "
                 "temperature and unlocking "
              << util::TableWriter::num(placed.maxRpm - base.maxRpm, 0)
              << " extra RPM of envelope headroom\n";
    if (!csv_dir.empty())
        table.writeCsv(csv_dir + "/placement.csv");
    return bench.finish();
}
