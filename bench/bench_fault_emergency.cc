/**
 * @file
 * Fault-injection experiment: a machine-room cooling emergency (airflow
 * collapse + ambient creep + a sensor dropout while hot) replayed against
 * an unguarded drive and a DTM-guarded one.
 *
 * The paper's case for dynamic thermal management is exactly this
 * scenario: emergencies are rare, so drives should be designed for the
 * average case and *managed* through the tail.  The bench shows the
 * speed-governed drive cutting the thermal peak by ~5 C and roughly
 * halving its time above the envelope versus the unguarded drive, and
 * prices the protection as a latency penalty versus the same workload
 * fault-free.
 *
 * Usage: bench_fault_emergency [--requests N] [--csv dir]
 */
#include <iostream>
#include <string>

#include "dtm/cosim.h"
#include "harness/bench.h"
#include "harness/run_builder.h"
#include "util/log.h"
#include "util/table.h"

using namespace hddtherm;

namespace {

fault::FaultEvent
event(double at, fault::FaultKind kind, double value = 0.0,
      double duration = 0.0)
{
    fault::FaultEvent e;
    e.timeSec = at;
    e.kind = kind;
    e.value = value;
    e.durationSec = duration;
    return e;
}

/// The emergency under test.  At the 2005 roadmap operating point the
/// spindle dominates dissipation, so request gating alone cannot ride
/// out a cooling fault; the guarded drive instead runs the speed
/// governor, which steps down its RPM ladder on measured temperature
/// until the degraded airflow can carry the heat.  A mid-emergency
/// sensor dropout engages the fail-safe floor (lowest rung) on top.
fault::FaultSchedule
emergencySchedule()
{
    return fault::FaultSchedule(
        {event(60.0, fault::FaultKind::AirflowDegrade, 0.5, 600.0),
         event(90.0, fault::FaultKind::AmbientSpike, 2.0, 600.0),
         event(150.0, fault::FaultKind::SensorDropout, 0.0, 5.0)},
        2005);
}

} // namespace

int
main(int argc, char** argv)
{
    harness::Bench bench("bench_fault_emergency", argc, argv,
                         "Cooling emergency replayed against unguarded "
                         "and DTM-governed drives.",
                         util::LogLevel::Warn);
    harness::RunSpec spec;
    spec.scenario = "Search-Engine";
    spec.requests = 40000;
    spec.maxSimulatedSec = 3600.0;
    spec.rpmLadder = {24534.0, 20000.0, 15020.0, 12000.0, 10000.0};
    bench.flags().addSizeT("--requests", &spec.requests, "N",
                           "workload request count");
    bench.parse();
    const std::string csv_dir = bench.csvDir();

    harness::RunBuilder builder(spec, [](core::ExperimentSpec& e) {
        e.system.disk.geometry.diameterInches = 2.6;
        e.system.disk.geometry.platters = 1;
        e.system.disk.rpm = 24534.0;
        e.system.disk.rpmChangeSecPerKrpm = 0.02;
        // Thermal emergencies unfold over minutes; slow the arrivals so
        // the workload spans the whole fault window instead of racing
        // past it.
        e.workload.arrivalRatePerSec = 25.0;
    });
    const std::size_t requests = spec.requests;
    const dtm::CoSimConfig& base = builder.cosim();
    const auto trace = builder.makeTrace();

    std::cout << "Fault emergency: airflow halved at t=60 s for 600 s, "
                 "+2 C ambient spike\nat t=90 s for 600 s, 5 s sensor "
                 "dropout at t=150 s.\n2.6\" drive at 24,534 RPM, "
              << requests << " Search-Engine-like requests.\n\n";

    struct Run
    {
        const char* label;
        dtm::DtmPolicy policy;
        bool faulted;
        dtm::CoSimResult result;
    };
    Run runs[] = {
        {"no DTM + faults", dtm::DtmPolicy::None, true, {}},
        {"governed + faults", dtm::DtmPolicy::GovernSpeed, true, {}},
        {"governed, fault-free", dtm::DtmPolicy::GovernSpeed, false, {}},
    };
    for (auto& run : runs) {
        dtm::CoSimConfig cfg = base;
        cfg.policy = run.policy;
        if (run.faulted)
            cfg.faults = emergencySchedule();
        run.result = dtm::CoSimulation(cfg).run(trace);
    }

    util::TableWriter table({"run", "max C", "above envelope s", "gated s",
                             "fail-safe s", "invalid reads", "mean ms"});
    for (const auto& run : runs) {
        const auto& r = run.result;
        table.addRow({run.label, util::TableWriter::num(r.maxTempC, 2),
                      util::TableWriter::num(r.envelopeExceededSec, 1),
                      util::TableWriter::num(r.gatedSec, 1),
                      util::TableWriter::num(r.failSafeSec, 1),
                      util::TableWriter::num(
                          (long long)r.invalidReadings),
                      util::TableWriter::num(r.metrics.meanMs(), 3)});
    }
    table.print(std::cout);
    if (!csv_dir.empty())
        table.writeCsv(csv_dir + "/fault_emergency.csv");

    const auto& unguarded = runs[0].result;
    const auto& guarded = runs[1].result;
    const auto report =
        dtm::emergencyReport(guarded, runs[2].result);
    std::cout << "\nEmergency report, speed-governed DTM (vs fault-free "
                 "baseline):\n"
              << fault::formatEmergencyReport(report);

    std::cout << "\nDTM capped time above the envelope at "
              << util::TableWriter::num(guarded.envelopeExceededSec, 1)
              << " s vs " << util::TableWriter::num(
                     unguarded.envelopeExceededSec, 1)
              << " s unguarded";
    if (unguarded.envelopeExceededSec > 0.0)
        std::cout << " ("
                  << util::TableWriter::num(
                         100.0 * guarded.envelopeExceededSec /
                             unguarded.envelopeExceededSec, 1)
                  << "% of the exposure)";
    std::cout << ".\n";
    return bench.finish();
}
