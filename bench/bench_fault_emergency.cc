/**
 * @file
 * Fault-injection experiment: a machine-room cooling emergency (airflow
 * collapse + ambient creep + a sensor dropout while hot) replayed against
 * an unguarded drive and a DTM-guarded one.
 *
 * The paper's case for dynamic thermal management is exactly this
 * scenario: emergencies are rare, so drives should be designed for the
 * average case and *managed* through the tail.  The bench shows the
 * speed-governed drive cutting the thermal peak by ~5 C and roughly
 * halving its time above the envelope versus the unguarded drive, and
 * prices the protection as a latency penalty versus the same workload
 * fault-free.
 *
 * Usage: bench_fault_emergency [--requests N] [--csv dir]
 */
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "core/scenarios.h"
#include "dtm/cosim.h"
#include "obs/manifest.h"
#include "util/log.h"
#include "util/table.h"

using namespace hddtherm;

namespace {

fault::FaultEvent
event(double at, fault::FaultKind kind, double value = 0.0,
      double duration = 0.0)
{
    fault::FaultEvent e;
    e.timeSec = at;
    e.kind = kind;
    e.value = value;
    e.durationSec = duration;
    return e;
}

/// The emergency under test.  At the 2005 roadmap operating point the
/// spindle dominates dissipation, so request gating alone cannot ride
/// out a cooling fault; the guarded drive instead runs the speed
/// governor, which steps down its RPM ladder on measured temperature
/// until the degraded airflow can carry the heat.  A mid-emergency
/// sensor dropout engages the fail-safe floor (lowest rung) on top.
fault::FaultSchedule
emergencySchedule()
{
    return fault::FaultSchedule(
        {event(60.0, fault::FaultKind::AirflowDegrade, 0.5, 600.0),
         event(90.0, fault::FaultKind::AmbientSpike, 2.0, 600.0),
         event(150.0, fault::FaultKind::SensorDropout, 0.0, 5.0)},
        2005);
}

} // namespace

int
main(int argc, char** argv)
{
    hddtherm::obs::BenchRun bench_run("bench_fault_emergency", argc, argv);
    util::setLogLevel(util::LogLevel::Warn);
    std::size_t requests = 40000;
    std::string csv_dir;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc)
            requests = std::size_t(std::atoll(argv[++i]));
        else if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc)
            csv_dir = argv[++i];
    }

    auto scenario = core::figure4Scenario("Search-Engine", requests);
    scenario.system.disk.geometry.diameterInches = 2.6;
    scenario.system.disk.geometry.platters = 1;
    scenario.system.disk.rpm = 24534.0;
    scenario.system.disk.rpmChangeSecPerKrpm = 0.02;
    // Thermal emergencies unfold over minutes; slow the arrivals so the
    // workload spans the whole fault window instead of racing past it.
    scenario.workload.arrivalRatePerSec = 25.0;

    dtm::CoSimConfig base;
    base.system = scenario.system;
    base.maxSimulatedSec = 3600.0;
    base.rpmLadder = {24534.0, 20000.0, 15020.0, 12000.0, 10000.0};

    const trace::SyntheticWorkload gen(scenario.workload);
    const sim::StorageSystem probe(base.system);
    const auto trace = gen.generate(probe.logicalSectors()).toRequests();

    std::cout << "Fault emergency: airflow halved at t=60 s for 600 s, "
                 "+2 C ambient spike\nat t=90 s for 600 s, 5 s sensor "
                 "dropout at t=150 s.\n2.6\" drive at 24,534 RPM, "
              << requests << " Search-Engine-like requests.\n\n";

    struct Run
    {
        const char* label;
        dtm::DtmPolicy policy;
        bool faulted;
        dtm::CoSimResult result;
    };
    Run runs[] = {
        {"no DTM + faults", dtm::DtmPolicy::None, true, {}},
        {"governed + faults", dtm::DtmPolicy::GovernSpeed, true, {}},
        {"governed, fault-free", dtm::DtmPolicy::GovernSpeed, false, {}},
    };
    for (auto& run : runs) {
        dtm::CoSimConfig cfg = base;
        cfg.policy = run.policy;
        if (run.faulted)
            cfg.faults = emergencySchedule();
        run.result = dtm::CoSimulation(cfg).run(trace);
    }

    util::TableWriter table({"run", "max C", "above envelope s", "gated s",
                             "fail-safe s", "invalid reads", "mean ms"});
    for (const auto& run : runs) {
        const auto& r = run.result;
        table.addRow({run.label, util::TableWriter::num(r.maxTempC, 2),
                      util::TableWriter::num(r.envelopeExceededSec, 1),
                      util::TableWriter::num(r.gatedSec, 1),
                      util::TableWriter::num(r.failSafeSec, 1),
                      util::TableWriter::num(
                          (long long)r.invalidReadings),
                      util::TableWriter::num(r.metrics.meanMs(), 3)});
    }
    table.print(std::cout);
    if (!csv_dir.empty())
        table.writeCsv(csv_dir + "/fault_emergency.csv");

    const auto& unguarded = runs[0].result;
    const auto& guarded = runs[1].result;
    const auto report =
        dtm::emergencyReport(guarded, runs[2].result);
    std::cout << "\nEmergency report, speed-governed DTM (vs fault-free "
                 "baseline):\n"
              << fault::formatEmergencyReport(report);

    std::cout << "\nDTM capped time above the envelope at "
              << util::TableWriter::num(guarded.envelopeExceededSec, 1)
              << " s vs " << util::TableWriter::num(
                     unguarded.envelopeExceededSec, 1)
              << " s unguarded";
    if (unguarded.envelopeExceededSec > 0.0)
        std::cout << " ("
                  << util::TableWriter::num(
                         100.0 * guarded.envelopeExceededSec /
                             unguarded.envelopeExceededSec, 1)
                  << "% of the exposure)";
    std::cout << ".\n";
    bench_run.writeArtifacts(csv_dir);
    return 0;
}
