/**
 * @file
 * Checkpointing overhead benchmark (the snap layer's perf gate).
 *
 * The snap design contract says periodic checkpointing is cheap enough
 * to leave on for long-horizon runs: serialization is a linear walk over
 * live state and the write path is one atomic sink put per cadence.
 * This harness prices that claim on a DTM co-simulation workload run
 * three times per rep — bare, writing full checkpoints, and writing
 * delta+compressed checkpoints at the default cadence — and gates on
 * the best back-to-back pairs (a shared load window, so a host load
 * spike cannot fail the run):
 *
 *   full-checkpoint throughput  >= 0.95x bare at the default cadence,
 *   delta-checkpoint throughput >= 0.95x bare at the default cadence,
 *   every variant's result identical field-for-field (checkpointing
 *   must never change what executes),
 *
 * plus a size gate measured off the clock on the paper's long-horizon
 * case study — the 2.6" drive spinning above its envelope-safe speed
 * under gate-style DTM, whose checkpoints accumulate backlog and
 * history state: the mean delta+compressed container must be <= 25% of
 * the mean plain full container there.  (On a small-state sustainable
 * workload most live state — the in-flight event queue, queue metrics —
 * genuinely churns every cadence, so section-level deltas buy ~2x, not
 * 4x; the throttled run is the workload the feature is priced for, and
 * the one where checkpoint I/O actually hurts.)
 *
 * One JSON object per variant on stdout, a summary in BENCH_snap.json.
 *
 * Usage: bench_snap_overhead [--requests N] [--every SEC] [--reps N]
 *                            [--out file.json] [--csv dir]
 */
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "dtm/cosim.h"
#include "harness/bench.h"
#include "harness/run_builder.h"
#include "snap/delta.h"
#include "util/log.h"

using namespace hddtherm;

namespace {

/// Strict equality of every deterministic result field: checkpointing
/// must be a pure observer.
bool
sameResult(const dtm::CoSimResult& a, const dtm::CoSimResult& b)
{
    return a.metrics.count() == b.metrics.count() &&
           a.metrics.meanMs() == b.metrics.meanMs() &&
           a.speedChanges == b.speedChanges && a.maxTempC == b.maxTempC &&
           a.meanTempC == b.meanTempC &&
           a.envelopeExceededSec == b.envelopeExceededSec &&
           a.gatedSec == b.gatedSec && a.gateEvents == b.gateEvents &&
           a.simulatedSec == b.simulatedSec &&
           a.meanVcmDuty == b.meanVcmDuty &&
           a.invalidReadings == b.invalidReadings &&
           a.failSafeActivations == b.failSafeActivations &&
           a.failSafeSec == b.failSafeSec;
}

struct Sample
{
    double requests_per_sec = 0.0;
    dtm::CoSimResult result;
};

/// One timed end-to-end co-simulation; folds the rate into @p best.
double
measureOnce(const dtm::CoSimConfig& cfg,
            const std::vector<sim::IoRequest>& trace,
            const snap::CheckpointPolicy* checkpoints, Sample& best)
{
    const auto t0 = std::chrono::steady_clock::now();
    dtm::CoSimEngine engine(cfg);
    if (checkpoints)
        engine.enableCheckpoints(*checkpoints);
    engine.start(trace);
    engine.advanceToCompletion();
    const auto t1 = std::chrono::steady_clock::now();
    const double sec = std::chrono::duration<double>(t1 - t0).count();
    const double rate = sec > 0.0 ? double(trace.size()) / sec : 0.0;
    if (rate > best.requests_per_sec)
        best.requests_per_sec = rate;
    best.result = engine.result();
    return rate;
}

struct SizeStats
{
    std::uint64_t full_files = 0;   ///< Anchors (full containers).
    std::uint64_t delta_files = 0;
    double full_mean_bytes = 0.0;
    double delta_mean_bytes = 0.0;
};

/// Untimed run under @p policy, then classify every surviving file.
SizeStats
measureSizes(const dtm::CoSimConfig& cfg,
             const std::vector<sim::IoRequest>& trace,
             const snap::CheckpointPolicy& policy)
{
    std::filesystem::remove_all(policy.directory);
    {
        dtm::CoSimEngine engine(cfg);
        engine.enableCheckpoints(policy);
        engine.start(trace);
        engine.advanceToCompletion();
    }
    SizeStats stats;
    double full_total = 0.0;
    double delta_total = 0.0;
    for (const auto& entry :
         std::filesystem::directory_iterator(policy.directory)) {
        if (!entry.is_regular_file() ||
            entry.path().extension() != snap::kCheckpointExtension)
            continue;
        const snap::CheckpointReader reader(entry.path().string());
        const auto bytes = double(reader.containerSize());
        if (snap::isDeltaCheckpoint(reader)) {
            ++stats.delta_files;
            delta_total += bytes;
        } else {
            ++stats.full_files;
            full_total += bytes;
        }
    }
    if (stats.full_files)
        stats.full_mean_bytes = full_total / double(stats.full_files);
    if (stats.delta_files)
        stats.delta_mean_bytes = delta_total / double(stats.delta_files);
    std::filesystem::remove_all(policy.directory);
    return stats;
}

} // namespace

int
main(int argc, char** argv)
{
    harness::Bench bench("bench_snap_overhead", argc, argv,
                         "Checkpoint-cadence overhead vs a bare run.",
                         util::LogLevel::Quiet);
    std::string out_path = "BENCH_snap.json";
    // ~67 simulated seconds of traffic, checkpointed twice at the
    // default 30 s cadence (the cadence docs/checkpoint.md recommends
    // for runs measured in simulated minutes or more).
    harness::RunSpec spec;
    spec.scenario = "Search-Engine";
    spec.requests = 60000;
    spec.policy = "gate";
    spec.maxSimulatedSec = 1200.0;
    double every_sec = 30.0; // default cadence the gate is priced at
    // Paired runs drift +-10% with host load; five pairs give the
    // best-pair selection a clean window to land in.
    int reps = 5;
    bench.flags().addSizeT("--requests", &spec.requests, "N",
                           "workload request count");
    bench.flags().addDouble("--every", &every_sec, "SEC",
                            "checkpoint cadence priced by the gate");
    bench.flags().addInt("--reps", &reps, "N", "paired repetitions");
    bench.flags().addString("--out", &out_path, "FILE",
                            "BENCH_snap.json output path");
    bench.parse();
    const std::size_t requests = spec.requests;
    bench.run().setConfig("requests=" + std::to_string(requests) +
                        " every_sec=" + std::to_string(every_sec) +
                        " reps=" + std::to_string(reps));

    // The paper's Search-Engine array (6 disks at 10K RPM, 900 req/s,
    // moderate queueing) under gate-style DTM: the representative
    // steady-state long-horizon workload.  Checkpoint cost tracks *live*
    // state (in-flight requests, queues, pending events), so pricing the
    // cadence on a sustainable system is the honest measurement; an
    // oversaturated drive's ever-growing backlog is a workload property,
    // not a snap overhead (see docs/checkpoint.md for cadence guidance).
    const harness::RunBuilder builder(spec);
    const dtm::CoSimConfig& cfg = builder.cosim();
    const auto trace = builder.makeTrace();

    const auto dir = std::filesystem::temp_directory_path() /
                     "hddtherm-bench-snap-overhead";
    std::filesystem::remove_all(dir);
    snap::CheckpointPolicy policy;
    policy.directory = dir.string();
    policy.everySec = every_sec;
    policy.retain = 2;
    snap::CheckpointPolicy delta_policy = policy;
    delta_policy.directory =
        (std::filesystem::temp_directory_path() /
         "hddtherm-bench-snap-overhead-delta")
            .string();
    delta_policy.delta = true;
    delta_policy.compress = true;

    std::printf("{\"requests\": %zu, \"every_sec\": %.1f, \"reps\": %d}\n",
                requests, every_sec, reps);

    // Warm-up off the clock (allocator, lazy thermal calibration).
    {
        Sample warm;
        measureOnce(cfg, trace, nullptr, warm);
    }

    // Reps interleave bare, full-checkpointed, and delta-checkpointed
    // runs; the gates use the best back-to-back pairs.
    Sample bare;
    Sample ckpt;
    Sample delta;
    double best_ratio = 0.0;
    double best_delta_ratio = 0.0;
    for (int r = 0; r < reps; ++r) {
        const double br = measureOnce(cfg, trace, nullptr, bare);
        const double cr = measureOnce(cfg, trace, &policy, ckpt);
        const double dr = measureOnce(cfg, trace, &delta_policy, delta);
        if (br > 0.0) {
            best_ratio = std::max(best_ratio, cr / br);
            best_delta_ratio = std::max(best_delta_ratio, dr / br);
        }
    }
    const std::uint64_t checkpoints_written =
        ckpt.result.simulatedSec > 0.0
            ? std::uint64_t(ckpt.result.simulatedSec / every_sec)
            : 0;
    std::filesystem::remove_all(dir);
    std::filesystem::remove_all(delta_policy.directory);

    // Size gate, off the clock, on the throttled hot-drive scenario
    // (dtm_demo's default): the drive above its envelope-safe speed
    // accumulates gated backlog and history, so full checkpoints grow
    // toward megabytes while a delta carries only the new tail.  A
    // bounded request count keeps the untimed runs cheap while still
    // yielding a steady anchor+delta population at the 5 s cadence;
    // everything is retained so that population survives to be measured.
    harness::RunSpec hot_spec = spec;
    hot_spec.requests = 20000;
    const harness::RunBuilder hot_builder(
        hot_spec, [](core::ExperimentSpec& e) {
            e.system.disk.geometry.diameterInches = 2.6;
            e.system.disk.geometry.platters = 1;
            e.system.disk.rpm = 24534.0;
            e.system.disk.rpmChangeSecPerKrpm = 0.02;
        });
    const dtm::CoSimConfig& hot_cfg = hot_builder.cosim();
    const auto hot_trace = hot_builder.makeTrace();
    snap::CheckpointPolicy size_policy = policy;
    size_policy.everySec = 5.0;
    size_policy.retain = 100000;
    const SizeStats full_sizes =
        measureSizes(hot_cfg, hot_trace, size_policy);
    snap::CheckpointPolicy delta_size_policy = size_policy;
    delta_size_policy.directory = delta_policy.directory;
    delta_size_policy.delta = true;
    delta_size_policy.compress = true;
    const SizeStats delta_sizes =
        measureSizes(hot_cfg, hot_trace, delta_size_policy);
    const double size_ratio =
        full_sizes.full_mean_bytes > 0.0
            ? delta_sizes.delta_mean_bytes / full_sizes.full_mean_bytes
            : 1.0;

    std::printf("{\"variant\": \"bare\", \"requests_per_sec\": %.0f}\n",
                bare.requests_per_sec);
    std::printf("{\"variant\": \"checkpointed\", "
                "\"requests_per_sec\": %.0f, \"vs_bare\": %.3f, "
                "\"checkpoints\": %llu}\n",
                ckpt.requests_per_sec, best_ratio,
                static_cast<unsigned long long>(checkpoints_written));
    std::printf("{\"variant\": \"delta_compressed\", "
                "\"requests_per_sec\": %.0f, \"vs_bare\": %.3f, "
                "\"full_mean_bytes\": %.0f, \"delta_mean_bytes\": %.0f, "
                "\"delta_size_ratio\": %.3f}\n",
                delta.requests_per_sec, best_delta_ratio,
                full_sizes.full_mean_bytes, delta_sizes.delta_mean_bytes,
                size_ratio);

    int status = 0;
    if (!sameResult(bare.result, ckpt.result) ||
        !sameResult(bare.result, delta.result)) {
        std::fprintf(stderr,
                     "checkpointing changed the simulation result\n");
        status = 1;
    }
    if (best_ratio < 0.95) {
        std::fprintf(stderr,
                     "checkpointing costs >5%% vs bare at the default "
                     "cadence (best paired ratio %.3f)\n",
                     best_ratio);
        status = 1;
    }
    if (best_delta_ratio < 0.95) {
        std::fprintf(stderr,
                     "delta checkpointing costs >5%% vs bare at the "
                     "default cadence (best paired ratio %.3f)\n",
                     best_delta_ratio);
        status = 1;
    }
    if (checkpoints_written == 0) {
        std::fprintf(stderr,
                     "no checkpoint fired within the simulated horizon: "
                     "the gate measured nothing\n");
        status = 1;
    }
    if (delta_sizes.delta_files == 0 || full_sizes.full_files == 0) {
        std::fprintf(stderr,
                     "size measurement produced no %s containers: the "
                     "size gate measured nothing\n",
                     full_sizes.full_files == 0 ? "full" : "delta");
        status = 1;
    } else if (size_ratio > 0.25) {
        std::fprintf(stderr,
                     "steady-state delta checkpoints are >25%% of full "
                     "checkpoint size (ratio %.3f: %.0f vs %.0f bytes)\n",
                     size_ratio, delta_sizes.delta_mean_bytes,
                     full_sizes.full_mean_bytes);
        status = 1;
    }

    {
        std::FILE* out = std::fopen(out_path.c_str(), "w");
        if (out) {
            std::fprintf(
                out,
                "{\n  \"bench\": \"bench_snap_overhead\",\n"
                "  \"requests\": %zu,\n  \"every_sec\": %.3f,\n"
                "  \"bare_requests_per_sec\": %.0f,\n"
                "  \"checkpointed_requests_per_sec\": %.0f,\n"
                "  \"delta_requests_per_sec\": %.0f,\n"
                "  \"best_paired_ratio\": %.3f,\n"
                "  \"delta_best_paired_ratio\": %.3f,\n"
                "  \"checkpoints_per_run\": %llu,\n"
                "  \"full_checkpoint_mean_bytes\": %.0f,\n"
                "  \"delta_checkpoint_mean_bytes\": %.0f,\n"
                "  \"delta_size_ratio\": %.3f,\n"
                "  \"results_identical\": %s,\n  \"pass\": %s\n}\n",
                requests, every_sec, bare.requests_per_sec,
                ckpt.requests_per_sec, delta.requests_per_sec, best_ratio,
                best_delta_ratio,
                static_cast<unsigned long long>(checkpoints_written),
                full_sizes.full_mean_bytes, delta_sizes.delta_mean_bytes,
                size_ratio,
                sameResult(bare.result, ckpt.result) &&
                        sameResult(bare.result, delta.result)
                    ? "true"
                    : "false",
                status == 0 ? "true" : "false");
            std::fclose(out);
        } else {
            std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
            status = 1;
        }
    }

    bench.finish();
    return status;
}
