/**
 * @file
 * Experiment E13 — google-benchmark microbenchmarks of the simulator and
 * model components, documenting the cost of the building blocks every
 * experiment leans on.
 */
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "dtm/governor.h"
#include "hdd/capacity.h"
#include "hdd/drive_catalog.h"
#include "harness/bench.h"
#include "sim/cache.h"
#include "sim/disk.h"
#include "sim/event.h"
#include "sim/raid.h"
#include "thermal/drive_thermal.h"
#include "thermal/envelope.h"
#include "trace/placement.h"
#include "trace/synth.h"
#include "util/ascii_plot.h"
#include "util/random.h"
#include "util/stats.h"

using namespace hddtherm;

namespace {

thermal::DriveThermalConfig
thermalConfig()
{
    thermal::DriveThermalConfig cfg;
    cfg.geometry.diameterInches = 2.6;
    cfg.rpm = 15000.0;
    return cfg;
}

void
BM_ThermalNetworkStep(benchmark::State& state)
{
    thermal::DriveThermalModel model(thermalConfig());
    for (auto _ : state) {
        model.advance(0.1, 0.1);
        benchmark::DoNotOptimize(model.airTempC());
    }
}
BENCHMARK(BM_ThermalNetworkStep);

void
BM_ThermalSteadyState(benchmark::State& state)
{
    thermal::DriveThermalModel model(thermalConfig());
    for (auto _ : state)
        benchmark::DoNotOptimize(model.steadyAirTempC());
}
BENCHMARK(BM_ThermalSteadyState);

void
BM_MaxRpmEnvelopeSearch(benchmark::State& state)
{
    const auto cfg = thermalConfig();
    for (auto _ : state)
        benchmark::DoNotOptimize(thermal::maxRpmWithinEnvelope(cfg));
}
BENCHMARK(BM_MaxRpmEnvelopeSearch);

void
BM_ZoneLayoutBuild(benchmark::State& state)
{
    const auto drive = *hdd::findDrive("Seagate Cheetah 15K.3");
    for (auto _ : state) {
        const auto layout = drive.layout(int(state.range(0)));
        benchmark::DoNotOptimize(layout.totalUserSectors());
    }
}
BENCHMARK(BM_ZoneLayoutBuild)->Arg(10)->Arg(30)->Arg(100);

void
BM_EventQueueThroughput(benchmark::State& state)
{
    for (auto _ : state) {
        sim::EventQueue q;
        int fired = 0;
        for (int i = 0; i < 1000; ++i)
            q.schedule(double(i % 97), [&fired] { ++fired; });
        q.runAll();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueThroughput);

void
BM_DiskCacheLookup(benchmark::State& state)
{
    sim::DiskCache cache(4u << 20, 16);
    util::Rng rng(7);
    for (int i = 0; i < 16; ++i)
        cache.install(i * 100000, 512);
    for (auto _ : state) {
        const auto lba = rng.uniformInt(0, 15) * 100000 +
                         rng.uniformInt(0, 400);
        benchmark::DoNotOptimize(cache.read(lba, 8));
    }
}
BENCHMARK(BM_DiskCacheLookup);

void
BM_Raid5Striping(benchmark::State& state)
{
    util::Rng rng(11);
    for (auto _ : state) {
        const auto lba = rng.uniformInt(0, 1 << 24);
        benchmark::DoNotOptimize(
            sim::stripeRaid5Data(lba, 64, 8, 16));
    }
}
BENCHMARK(BM_Raid5Striping);

void
BM_DiskServiceRandomReads(benchmark::State& state)
{
    sim::EventQueue events;
    sim::DiskConfig cfg;
    cfg.tech = {400e3, 30e3};
    sim::SimDisk disk(events, cfg);
    util::Rng rng(13);
    std::uint64_t id = 1;
    for (auto _ : state) {
        sim::IoRequest req;
        req.id = id++;
        req.arrival = events.now();
        req.lba = rng.uniformInt(0, disk.totalSectors() - 64);
        req.sectors = 8;
        disk.submit(req);
        events.runAll();
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_DiskServiceRandomReads);

void
BM_SyntheticTraceGeneration(benchmark::State& state)
{
    trace::WorkloadSpec spec;
    spec.requests = std::size_t(state.range(0));
    spec.devices = 8;
    const trace::SyntheticWorkload gen(spec);
    for (auto _ : state)
        benchmark::DoNotOptimize(gen.generate(100'000'000).size());
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SyntheticTraceGeneration)->Arg(10000);

void
BM_GovernorDecide(benchmark::State& state)
{
    thermal::DriveThermalConfig cfg = thermalConfig();
    const dtm::SpeedGovernor gov(cfg,
                                 {15020.0, 18000.0, 21000.0, 24534.0});
    util::Rng rng(19);
    for (auto _ : state) {
        benchmark::DoNotOptimize(gov.decide(
            18000.0, rng.uniform(42.0, 45.5), rng.uniform(0.0, 0.5)));
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_GovernorDecide);

void
BM_ShuffleMapBuild(benchmark::State& state)
{
    trace::WorkloadSpec spec;
    spec.requests = 20000;
    spec.zipfTheta = 1.0;
    const auto tr =
        trace::SyntheticWorkload(spec).generate(100'000'000);
    for (auto _ : state) {
        const trace::ShuffleMap map(tr, 100'000'000, 4096);
        benchmark::DoNotOptimize(map.extents());
    }
}
BENCHMARK(BM_ShuffleMapBuild);

void
BM_AsciiPlotRender(benchmark::State& state)
{
    util::AsciiPlot plot;
    std::vector<std::pair<double, double>> pts;
    for (int i = 0; i < 100; ++i)
        pts.emplace_back(double(i), double(i * i % 997));
    plot.addSeries("series", std::move(pts));
    for (auto _ : state)
        benchmark::DoNotOptimize(plot.str().size());
}
BENCHMARK(BM_AsciiPlotRender);

void
BM_HistogramAdd(benchmark::State& state)
{
    auto h = util::Histogram::paperResponseTimeBins();
    util::Rng rng(17);
    for (auto _ : state)
        h.add(rng.uniform(0.0, 250.0));
    state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_HistogramAdd);

} // namespace

// Custom main: strip the repo-standard --csv option (google-benchmark
// rejects unknown flags) before initializing, and drop the manifest +
// metrics artifacts beside any other bench's.
int
main(int argc, char** argv)
{
    harness::Bench bench("bench_micro", argc, argv,
                         "Google-benchmark microbenchmarks; unknown "
                         "flags forward to the benchmark library.");
    // Everything the harness does not own is google-benchmark's
    // (--benchmark_filter and friends).
    bench.flags().passThroughUnknown();
    bench.parse();
    std::vector<std::string> extra = bench.flags().extraArgs();
    std::vector<char*> args;
    args.reserve(extra.size() + 1);
    args.push_back(argv[0]);
    for (auto& arg : extra)
        args.push_back(arg.data());
    int filtered = int(args.size());
    benchmark::Initialize(&filtered, args.data());
    if (benchmark::ReportUnrecognizedArguments(filtered, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return bench.finish();
}
