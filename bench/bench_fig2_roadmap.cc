/**
 * @file
 * Experiment E5 — paper Figure 2: the thermally constrained roadmap.
 * For {1, 2, 4} platters x {2.6", 2.1", 1.6"}, the maximum IDR attainable
 * inside the 45.22 C envelope and the corresponding capacity, 2002-2012,
 * against the 40% CGR target line.  Includes the ECC-transition-smoothing
 * ablation called out in DESIGN.md.
 *
 * Usage: bench_fig2_roadmap [--csv dir]
 */
#include <iostream>

#include "harness/bench.h"
#include "roadmap/planner.h"
#include "roadmap/roadmap.h"
#include "util/ascii_plot.h"
#include "util/table.h"

using namespace hddtherm;

namespace {

void
printPlatterRoadmap(const roadmap::RoadmapEngine& engine, int platters,
                    const std::string& csv_dir)
{
    static const double kSizes[] = {2.6, 2.1, 1.6};
    std::cout << "-- " << platters << "-platter roadmap (cooling scale "
              << util::TableWriter::num(
                     thermal::coolingScaleForPlatters(platters), 3)
              << ")\n";
    util::TableWriter table({"Year", "target IDR",
                             "2.6 IDR", "2.6 GB",
                             "2.1 IDR", "2.1 GB",
                             "1.6 IDR", "1.6 GB"});
    for (int year = 2002; year <= 2012; ++year) {
        std::vector<std::string> row;
        row.push_back(util::TableWriter::num((long long)year));
        row.push_back(util::TableWriter::num(
            engine.timeline().targetIdrMBps(year), 1));
        for (const double d : kSizes) {
            const auto p = engine.evaluate(year, d, platters);
            // Mark the points that fall short of the target.
            std::string idr = util::TableWriter::num(p.achievableIdr, 1);
            if (!p.meetsTarget)
                idr += "*";
            row.push_back(std::move(idr));
            row.push_back(util::TableWriter::num(p.capacityGB, 1));
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "(* = below the 40% CGR target line)\n";
    for (const double d : kSizes) {
        std::cout << "   " << d << "\" falls off the target after "
                  << engine.lastYearOnTarget(d, platters) << "\n";
    }
    std::cout << '\n';
    if (!csv_dir.empty()) {
        table.writeCsv(csv_dir + "/fig2_" + std::to_string(platters) +
                       "platter.csv");
    }
}

} // namespace

int
main(int argc, char** argv)
{
    harness::Bench bench("bench_fig2_roadmap", argc, argv,
                         "Figure 2: disk drive roadmap within the thermal envelope.");
    bench.parse();
    const std::string csv_dir = bench.csvDir();

    std::cout << "Figure 2: disk drive roadmap within the 45.22 C "
                 "thermal envelope\n\n";
    const roadmap::RoadmapEngine engine;
    for (int platters : {1, 2, 4})
        printPlatterRoadmap(engine, platters, csv_dir);

    // The 1-platter IDR roadmap as the paper draws it: log-scale IDR vs
    // year, the 40% CGR target as its own series.
    util::AsciiPlot::Options popts;
    popts.logY = true;
    popts.xLabel = "year";
    popts.yLabel = "IDR MB/s";
    util::AsciiPlot idr_plot(popts);
    {
        std::vector<std::pair<double, double>> target;
        for (int year = 2002; year <= 2012; ++year)
            target.emplace_back(double(year),
                                engine.timeline().targetIdrMBps(year));
        idr_plot.addSeries("40% CGR target", std::move(target));
        for (const double d : {2.6, 2.1, 1.6}) {
            std::vector<std::pair<double, double>> pts;
            for (const auto& point : engine.series(d, 1))
                pts.emplace_back(double(point.year),
                                 point.achievableIdr);
            char label[16];
            std::snprintf(label, sizeof(label), "%.1f\"", d);
            idr_plot.addSeries(label, std::move(pts));
        }
    }
    std::cout << "1-platter IDR roadmap (cf. paper Figure 2(a))\n";
    idr_plot.print(std::cout);
    std::cout << '\n';

    // The paper's §4 methodology as an automated walk: what a
    // manufacturer actually ships each year (hold / raise RPM / shrink /
    // shrink+add-platters), including the worked 2005 transition.
    std::cout << "Planned roadmap (paper §4 steps 1-4 automated)\n\n";
    util::TableWriter plan_table({"Year", "config", "RPM", "IDR",
                                  "target", "cap GB", "temp C",
                                  "action"});
    const roadmap::RoadmapPlanner planner(engine);
    for (const auto& step : planner.plan()) {
        char config[24];
        std::snprintf(config, sizeof(config), "%.1f\" x%d",
                      step.diameterInches, step.platters);
        std::string idr = util::TableWriter::num(step.idr, 1);
        if (!step.onTarget)
            idr += "*";
        plan_table.addRow(
            {util::TableWriter::num((long long)step.year), config,
             util::TableWriter::num(step.rpm, 0), std::move(idr),
             util::TableWriter::num(step.targetIdr, 1),
             util::TableWriter::num(step.capacityGB, 1),
             util::TableWriter::num(step.temperatureC),
             roadmap::planActionName(step.action)});
    }
    plan_table.print(std::cout);
    std::cout << "(paper §4.1 worked example: 2005 shrinks 2.1\" to "
                 "1.6\" and adds a platter, reaching ~71 GB)\n\n";
    if (!csv_dir.empty())
        plan_table.writeCsv(csv_dir + "/fig2_planned.csv");

    // Ablation: model the terabit ECC transition as a gradual ramp
    // instead of the paper's one-year step (its stated future work).
    std::cout << "Ablation: ECC step vs smoothed ramp "
                 "(1.6\", 1 platter, achievable IDR)\n\n";
    util::TableWriter ecc({"Year", "step ECC IDR", "smoothed ECC IDR"});
    const roadmap::RoadmapEngine step_engine;
    for (int year = 2008; year <= 2012; ++year) {
        // Linear ramp of ECC bits/sector from the sub-terabit 416 at 2008
        // to the terabit 1440 at 2012.
        roadmap::RoadmapOptions opts;
        opts.eccBitsOverride =
            416 + (1440 - 416) * (year - 2008) / 4;
        const roadmap::RoadmapEngine smooth_engine(opts);
        ecc.addRow({util::TableWriter::num((long long)year),
                    util::TableWriter::num(
                        step_engine.evaluate(year, 1.6, 1).achievableIdr,
                        1),
                    util::TableWriter::num(
                        smooth_engine.evaluate(year, 1.6, 1).achievableIdr,
                        1)});
    }
    ecc.print(std::cout);
    if (!csv_dir.empty())
        ecc.writeCsv(csv_dir + "/fig2_ecc_ablation.csv");

    // Ablation: ZBR aggressiveness (paper §4.2 studied it among the
    // unreported sensitivity results).  Fewer, coarser zones waste outer
    // tracks, lowering both the density IDR and the capacity — shifting
    // the whole roadmap down without moving the thermal ceiling.
    std::cout << "\nAblation: ZBR aggressiveness "
                 "(2.6\", 1 platter, year 2005)\n\n";
    util::TableWriter zbr({"zones", "density IDR", "required RPM",
                           "achievable IDR", "capacity GB"});
    for (const int zones : {5, 10, 30, 50, 100}) {
        roadmap::RoadmapOptions opts;
        opts.zones = zones;
        const roadmap::RoadmapEngine zbr_engine(opts);
        const auto p = zbr_engine.evaluate(2005, 2.6, 1);
        zbr.addRow({util::TableWriter::num((long long)zones),
                    util::TableWriter::num(p.densityIdr, 1),
                    util::TableWriter::num(p.requiredRpm, 0),
                    util::TableWriter::num(p.achievableIdr, 1),
                    util::TableWriter::num(p.capacityGB, 1)});
    }
    zbr.print(std::cout);
    if (!csv_dir.empty())
        zbr.writeCsv(csv_dir + "/fig2_zbr_ablation.csv");
    return bench.finish();
}
