/**
 * @file
 * Experiment E4 — paper Table 3: for each year 2002-2012 and platter size
 * {2.6", 2.1", 1.6"}, the RPM required to sustain the 40% IDR CGR and the
 * steady-state temperature that RPM produces (1 platter, 50 zones, 3.5"
 * enclosure, 45.22 C envelope).
 *
 * Usage: bench_table3_rpm_thermal [--csv dir]
 */
#include <iostream>

#include "harness/bench.h"
#include "roadmap/roadmap.h"
#include "thermal/reliability.h"
#include "util/table.h"

using namespace hddtherm;

int
main(int argc, char** argv)
{
    harness::Bench bench("bench_table3_rpm_thermal", argc, argv,
                         "Table 3: RPM required for the 40% IDR CGR and its thermal profile.");
    bench.parse();
    const std::string csv_dir = bench.csvDir();

    const roadmap::RoadmapEngine engine; // paper defaults: 50 zones etc.
    static const double kSizes[] = {2.6, 2.1, 1.6};

    std::cout << "Table 3: RPM required for the 40% IDR CGR and its "
                 "thermal profile\n(1 platter, nzones = 50, thermal "
                 "envelope 45.22 C)\n\n";

    util::TableWriter table({"Year",
                             "2.6 IDRd", "2.6 RPM", "2.6 T(C)",
                             "2.1 IDRd", "2.1 RPM", "2.1 T(C)",
                             "1.6 IDRd", "1.6 RPM", "1.6 T(C)",
                             "IDR req"});
    for (int year = 2002; year <= 2012; ++year) {
        std::vector<std::string> row;
        row.push_back(util::TableWriter::num((long long)year));
        double target = 0.0;
        for (const double d : kSizes) {
            const auto p = engine.evaluate(year, d, 1);
            target = p.targetIdr;
            row.push_back(util::TableWriter::num(p.densityIdr));
            row.push_back(util::TableWriter::num(p.requiredRpm, 0));
            row.push_back(util::TableWriter::num(p.requiredRpmTempC));
        }
        row.push_back(util::TableWriter::num(target));
        table.addRow(std::move(row));
    }
    table.print(std::cout);

    std::cout << "\npaper reference rows (2.6\"): 2002: 15098 RPM/45.24 C; "
                 "2005: 24534/48.26; 2009: 55819/85.04; 2012: "
                 "143470/602.98\n"
              << "viscous dissipation at the 2.6\" required RPM: 2002 "
              << util::TableWriter::num(
                     engine.evaluate(2002, 2.6, 1).viscousPowerW)
              << " W (paper 0.91), 2009 "
              << util::TableWriter::num(
                     engine.evaluate(2009, 2.6, 1).viscousPowerW)
              << " W (paper 35.55), 2012 "
              << util::TableWriter::num(
                     engine.evaluate(2012, 2.6, 1).viscousPowerW)
              << " W (paper 499.73)\n";
    // Reliability view of the same grid (paper §1: +15 C doubles the
    // failure rate) — why staying on the 40% CGR without shrinking the
    // platter is untenable long before the temperatures get absurd.
    std::cout << "\nfailure-rate factor vs 28 C ambient at the 2.6\" "
                 "required RPM: 2002 "
              << util::TableWriter::num(
                     thermal::failureRateFactor(
                         engine.evaluate(2002, 2.6, 1).requiredRpmTempC),
                     2)
              << "x, 2006 "
              << util::TableWriter::num(
                     thermal::failureRateFactor(
                         engine.evaluate(2006, 2.6, 1).requiredRpmTempC),
                     2)
              << "x, 2009 "
              << util::TableWriter::num(
                     thermal::failureRateFactor(
                         engine.evaluate(2009, 2.6, 1).requiredRpmTempC),
                     2)
              << "x\n";
    if (!csv_dir.empty())
        table.writeCsv(csv_dir + "/table3.csv");
    return bench.finish();
}
