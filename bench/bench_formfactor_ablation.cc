/**
 * @file
 * Experiment E7 — paper §4.2.2: form-factor ablation.  Housing the 2.6"
 * media in a 2.5" enclosure (3.96" x 2.75") roughly halves the
 * heat-draining case area; the paper finds the design falls off the
 * roadmap already in 2002 and needs roughly 15 C of extra ambient cooling
 * before it becomes a comparable option.
 *
 * Usage: bench_formfactor_ablation [--csv dir]
 */
#include <iostream>

#include "harness/bench.h"
#include "roadmap/roadmap.h"
#include "util/roots.h"
#include "util/table.h"

using namespace hddtherm;

namespace {

double
maxRpmAt(const hdd::FormFactor& ff, double ambient)
{
    thermal::DriveThermalConfig cfg;
    cfg.geometry.diameterInches = 2.6;
    cfg.geometry.platters = 1;
    cfg.enclosure = ff;
    cfg.ambientC = ambient;
    cfg.rpm = 15000.0;
    return thermal::maxRpmWithinEnvelope(cfg);
}

} // namespace

int
main(int argc, char** argv)
{
    harness::Bench bench("bench_formfactor_ablation", argc, argv,
                         "Form-factor ablation: enclosure and ambient vs achievable RPM.");
    bench.parse();
    const std::string csv_dir = bench.csvDir();

    std::cout << "Form-factor ablation (2.6\" media, 1 platter, envelope "
              << thermal::kThermalEnvelopeC << " C)\n\n";

    util::TableWriter table({"Enclosure", "Ambient C", "max RPM",
                             "2002 IDR", "last on-target year"});
    struct Case
    {
        const char* label;
        hdd::FormFactor ff;
        double ambient;
    };
    const Case cases[] = {
        {"3.5\" (5.75x4.00\")", hdd::FormFactor::ff35(), 28.0},
        {"2.5\" (3.96x2.75\")", hdd::FormFactor::ff25(), 28.0},
        {"2.5\" (3.96x2.75\")", hdd::FormFactor::ff25(), 18.0},
        {"2.5\" (3.96x2.75\")", hdd::FormFactor::ff25(), 13.0},
        {"2.5\" (3.96x2.75\")", hdd::FormFactor::ff25(), 8.0},
    };
    for (const auto& c : cases) {
        roadmap::RoadmapOptions opts;
        opts.enclosure = c.ff;
        opts.ambientC = c.ambient;
        const roadmap::RoadmapEngine engine(opts);
        const auto p = engine.evaluate(2002, 2.6, 1);
        table.addRow({c.label, util::TableWriter::num(c.ambient, 0),
                      util::TableWriter::num(p.maxRpm, 0),
                      util::TableWriter::num(p.achievableIdr, 1),
                      util::TableWriter::num(
                          (long long)engine.lastYearOnTarget(2.6, 1))});
    }
    table.print(std::cout);

    // How much extra cooling does the small enclosure need to match the
    // 3.5" baseline's envelope-limited speed?
    const double baseline_rpm = maxRpmAt(hdd::FormFactor::ff35(), 28.0);
    const double parity_ambient = util::bisect(
        [&](double ambient) {
            return maxRpmAt(hdd::FormFactor::ff25(), ambient) -
                   baseline_rpm;
        },
        -15.0, 28.0, {0.01, 200});
    std::cout << "\nambient needed for the 2.5\" enclosure to match the "
                 "3.5\" baseline ("
              << util::TableWriter::num(baseline_rpm, 0)
              << " RPM): " << util::TableWriter::num(parity_ambient, 1)
              << " C -> " << util::TableWriter::num(28.0 - parity_ambient,
                                                    1)
              << " C of extra cooling (paper: ~15 C)\n";
    if (!csv_dir.empty())
        table.writeCsv(csv_dir + "/formfactor.csv");
    return bench.finish();
}
