/**
 * @file
 * Experiment E2 — paper Figure 1: thermal transient of the modeled
 * Seagate Cheetah 15K.3 from a 28 °C cold start (VCM and SPM always on).
 * The paper reports ~33 °C after the first minute and a 45.22 °C steady
 * state reached after about 48 minutes.
 *
 * Usage: bench_fig1_transient [--csv dir]
 */
#include <iostream>

#include "harness/bench.h"
#include "thermal/drive_thermal.h"
#include "util/ascii_plot.h"
#include "util/table.h"

using namespace hddtherm;

int
main(int argc, char** argv)
{
    harness::Bench bench("bench_fig1_transient", argc, argv,
                         "Figure 1: Cheetah 15K.3 warm-up transient.");
    bench.parse();
    const std::string csv_dir = bench.csvDir();

    thermal::DriveThermalConfig cfg;
    cfg.geometry.diameterInches = 2.6;
    cfg.geometry.platters = 1;
    cfg.rpm = thermal::kEnvelopeRpm26;
    thermal::DriveThermalModel model(cfg);
    model.reset(28.0);

    const double steady = model.steadyAirTempC();
    std::cout << "Figure 1: Cheetah 15K.3 warm-up transient "
                 "(1x2.6\" platter, " << cfg.rpm
              << " RPM, 28 C ambient)\n"
              << "steady-state air temperature: "
              << util::TableWriter::num(steady) << " C (paper: 45.22 C)\n\n";

    util::TableWriter table({"minute", "air C", "spindle C", "base C",
                             "VCM C"});
    double settle_min = -1.0;
    for (int minute = 0; minute <= 150; ++minute) {
        if (minute > 0)
            model.advance(60.0); // paper timestep: 600 steps/minute
        const auto& net = model.network();
        if (settle_min < 0.0 && model.airTempC() >= steady - 0.05)
            settle_min = minute;
        if (minute <= 10 || minute % 10 == 0) {
            table.addRow(
                {util::TableWriter::num((long long)minute),
                 util::TableWriter::num(model.airTempC()),
                 util::TableWriter::num(
                     net.temperature(model.spindleNode())),
                 util::TableWriter::num(net.temperature(model.baseNode())),
                 util::TableWriter::num(net.temperature(model.vcmNode()))});
        }
    }
    table.print(std::cout);
    std::cout << "\nreaches steady state (within 0.05 C) after ~"
              << util::TableWriter::num(settle_min, 0)
              << " minutes (paper: ~48 minutes)\n\n";

    // The Figure 1 curve itself.
    util::AsciiPlot::Options popts;
    popts.xLabel = "minutes";
    popts.yLabel = "internal air C";
    popts.height = 12;
    util::AsciiPlot plot(popts);
    {
        thermal::DriveThermalModel curve_model(cfg);
        curve_model.reset(28.0);
        std::vector<std::pair<double, double>> pts;
        pts.emplace_back(0.0, curve_model.airTempC());
        for (int minute = 1; minute <= 80; ++minute) {
            curve_model.advance(60.0);
            pts.emplace_back(double(minute), curve_model.airTempC());
        }
        plot.addSeries("air temperature", std::move(pts));
    }
    plot.print(std::cout);

    if (!csv_dir.empty())
        table.writeCsv(csv_dir + "/fig1.csv");
    return bench.finish();
}
