/**
 * @file
 * EmergencyReport: what a thermal emergency cost.
 *
 * Summarizes one faulted run — how long the drive sat above the thermal
 * envelope, how often the fail-safe floor engaged, and what the fault-
 * induced throttling cost in performance — optionally against a fault-free
 * baseline of the same workload.  Filled from dtm::CoSimResult by
 * dtm::emergencyReport() (this header stays below the dtm layer), printed
 * by examples/dtm_demo and bench/bench_fault_emergency.
 */
#ifndef HDDTHERM_FAULT_EMERGENCY_H
#define HDDTHERM_FAULT_EMERGENCY_H

#include <cstdint>
#include <string>

namespace hddtherm::fault {

/// Outcome summary of a run under a fault schedule.
struct EmergencyReport
{
    double simulatedSec = 0.0;        ///< Span of the faulted run.
    double maxTempC = 0.0;            ///< Peak physical air temperature.
    double envelopeExceededSec = 0.0; ///< Time above the envelope.
    std::uint64_t gateEvents = 0;     ///< Throttle activations.
    double gatedSec = 0.0;            ///< Time spent throttled.
    std::uint64_t failSafeActivations = 0; ///< Fail-safe floor entries.
    double failSafeSec = 0.0;         ///< Time at the fail-safe floor.
    std::uint64_t invalidReadings = 0; ///< Dropped sensor samples.
    double meanLatencyMs = 0.0;       ///< Faulted mean response time.

    /// @name Versus the fault-free baseline (when one was run).
    /// @{
    bool hasBaseline = false;
    double baselineMeanLatencyMs = 0.0;
    double baselineEnvelopeExceededSec = 0.0;
    /// Fault-induced latency penalty (faulted minus baseline mean), ms.
    double latencyPenaltyMs = 0.0;
    /// Extra throttled time the faults caused, seconds.
    double throttlePenaltySec = 0.0;
    /// @}

    /// Fraction of the run spent throttled.
    double gatedFraction() const
    {
        return simulatedSec > 0.0 ? gatedSec / simulatedSec : 0.0;
    }

    /// Fraction of the run spent above the envelope.
    double envelopeExceededFraction() const
    {
        return simulatedSec > 0.0 ? envelopeExceededSec / simulatedSec
                                  : 0.0;
    }
};

/// Multi-line human-readable rendering (one "key: value" per line).
std::string formatEmergencyReport(const EmergencyReport& report);

} // namespace hddtherm::fault

#endif // HDDTHERM_FAULT_EMERGENCY_H
