#include "fault/fault_player.h"

#include "obs/metrics.h"
#include "snap/state.h"
#include "util/error.h"

namespace hddtherm::fault {

FaultPlayer::FaultPlayer(const FaultSchedule& schedule,
                         std::uint64_t noise_stream)
    : schedule_(schedule),
      noise_rng_(util::Rng::forStream(schedule.noiseSeed(), noise_stream)),
      stuck_latch_(schedule_.size())
{
    HDDTHERM_OBS_ADD("fault.schedule.events", schedule_.size());
}

SensorReading
FaultPlayer::sense(double t, double true_temp_c)
{
    const auto& events = schedule_.events();

    // Dropout beats everything: the wire is dead.
    for (const auto& e : events) {
        if (e.kind == FaultKind::SensorDropout && e.activeAt(t) &&
            e.appliesTo(-1)) {
            HDDTHERM_OBS_COUNT("fault.sense.dropout");
            return {0.0, false};
        }
    }

    // Stuck beats noise: the earliest active window latches the first
    // reading sampled inside it and repeats it verbatim.
    for (std::size_t i = 0; i < events.size(); ++i) {
        const auto& e = events[i];
        if (e.kind != FaultKind::SensorStuck || !e.activeAt(t) ||
            !e.appliesTo(-1))
            continue;
        if (!stuck_latch_[i])
            stuck_latch_[i] = true_temp_c;
        HDDTHERM_OBS_COUNT("fault.sense.stuck");
        return {*stuck_latch_[i], true};
    }

    // Noise: one fresh draw per active window per reading.
    double reported = true_temp_c;
    bool noisy = false;
    for (const auto& e : events) {
        if (e.kind == FaultKind::SensorNoise && e.activeAt(t) &&
            e.appliesTo(-1)) {
            reported += noise_rng_.normal(0.0, e.value);
            noisy = true;
        }
    }
    if (noisy)
        HDDTHERM_OBS_COUNT("fault.sense.noisy");
    return {reported, true};
}

void
FaultPlayer::saveState(snap::StateWriter& w) const
{
    noise_rng_.saveState(w);
    std::vector<std::uint64_t> has;
    std::vector<double> vals;
    has.reserve(stuck_latch_.size());
    vals.reserve(stuck_latch_.size());
    for (const auto& latch : stuck_latch_) {
        has.push_back(latch ? 1 : 0);
        vals.push_back(latch ? *latch : 0.0);
    }
    w.u64vec("stuck_has", has);
    w.f64vec("stuck_vals", vals);
}

void
FaultPlayer::loadState(snap::StateReader& r)
{
    noise_rng_.loadState(r);
    const auto has = r.u64vec("stuck_has");
    const auto vals = r.f64vec("stuck_vals");
    HDDTHERM_REQUIRE(has.size() == stuck_latch_.size() &&
                         vals.size() == stuck_latch_.size(),
                     "checkpoint section '" + r.section() +
                         "': stuck-latch count does not match this run's "
                         "fault schedule");
    for (std::size_t i = 0; i < stuck_latch_.size(); ++i) {
        if (has[i])
            stuck_latch_[i] = vals[i];
        else
            stuck_latch_[i].reset();
    }
}

} // namespace hddtherm::fault
