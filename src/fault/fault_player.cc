#include "fault/fault_player.h"

#include "obs/metrics.h"

namespace hddtherm::fault {

FaultPlayer::FaultPlayer(const FaultSchedule& schedule,
                         std::uint64_t noise_stream)
    : schedule_(schedule),
      noise_rng_(util::Rng::forStream(schedule.noiseSeed(), noise_stream)),
      stuck_latch_(schedule_.size())
{
    HDDTHERM_OBS_ADD("fault.schedule.events", schedule_.size());
}

SensorReading
FaultPlayer::sense(double t, double true_temp_c)
{
    const auto& events = schedule_.events();

    // Dropout beats everything: the wire is dead.
    for (const auto& e : events) {
        if (e.kind == FaultKind::SensorDropout && e.activeAt(t) &&
            e.appliesTo(-1)) {
            HDDTHERM_OBS_COUNT("fault.sense.dropout");
            return {0.0, false};
        }
    }

    // Stuck beats noise: the earliest active window latches the first
    // reading sampled inside it and repeats it verbatim.
    for (std::size_t i = 0; i < events.size(); ++i) {
        const auto& e = events[i];
        if (e.kind != FaultKind::SensorStuck || !e.activeAt(t) ||
            !e.appliesTo(-1))
            continue;
        if (!stuck_latch_[i])
            stuck_latch_[i] = true_temp_c;
        HDDTHERM_OBS_COUNT("fault.sense.stuck");
        return {*stuck_latch_[i], true};
    }

    // Noise: one fresh draw per active window per reading.
    double reported = true_temp_c;
    bool noisy = false;
    for (const auto& e : events) {
        if (e.kind == FaultKind::SensorNoise && e.activeAt(t) &&
            e.appliesTo(-1)) {
            reported += noise_rng_.normal(0.0, e.value);
            noisy = true;
        }
    }
    if (noisy)
        HDDTHERM_OBS_COUNT("fault.sense.noisy");
    return {reported, true};
}

} // namespace hddtherm::fault
