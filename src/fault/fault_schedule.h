/**
 * @file
 * Deterministic fault-injection schedules for thermal emergencies.
 *
 * The paper's case for DTM rests on thermal emergencies — degraded fans,
 * machine-room cooling loss, ambient excursions — yet a co-simulation that
 * can only vary the ambient along a smooth schedule never exercises the
 * control stack's fault paths.  A FaultSchedule is a typed, time-stamped
 * list of such events:
 *
 *   - AirflowDegrade: cooling degradation.  At drive level it scales the
 *     external convective conductance (a tired fan moves less air over the
 *     case); at fleet level it scales a chassis's cooling airflow (CFM).
 *   - AmbientStep / AmbientSpike: the external cooling boundary jumps by a
 *     delta, permanently (step) or for a bounded window (spike).
 *   - SensorStuck / SensorDropout / SensorNoise: the temperature *sensor*
 *     the DTM governor reads misbehaves while the physical model keeps
 *     integrating the truth.  Noise draws come from a split util::Rng
 *     stream so faulted runs stay bit-reproducible.
 *   - BayKill / BayRestore: a fleet drive bay loses power (stops serving
 *     and stops dissipating) and later comes back.
 *
 * Schedules are plain data: validated once, replayed deterministically by
 * a FaultPlayer (drive level) or the fleet barrier loop (chassis/bay
 * level).  An empty schedule is the contract-level no-op — engines built
 * with one are bit-identical to engines built without fault support.
 */
#ifndef HDDTHERM_FAULT_FAULT_SCHEDULE_H
#define HDDTHERM_FAULT_FAULT_SCHEDULE_H

#include <cstdint>
#include <vector>

namespace hddtherm::fault {

/// The kinds of fault events a schedule can carry.
enum class FaultKind
{
    AirflowDegrade, ///< Scale a cooling path by `value` (> 0, < 1 degrades).
    AmbientStep,    ///< Add `value` °C to the ambient from timeSec on.
    AmbientSpike,   ///< Add `value` °C for [timeSec, timeSec + durationSec).
    SensorStuck,    ///< Sensor latches its onset reading for the window.
    SensorDropout,  ///< Sensor returns invalid readings for the window.
    SensorNoise,    ///< Add N(0, value²) °C noise to readings in the window.
    BayKill,        ///< Power off fleet bay `target` at timeSec.
    BayRestore,     ///< Power fleet bay `target` back on at timeSec.
};

/// Human-readable kind name (matches the config-file spelling).
const char* faultKindName(FaultKind kind);

/// One time-stamped fault event.
struct FaultEvent
{
    double timeSec = 0.0; ///< Onset, simulated seconds.
    FaultKind kind = FaultKind::AmbientStep;
    /// Kind-specific magnitude: airflow scale factor, ambient delta °C, or
    /// noise standard deviation °C.  Unused for stuck/dropout/kill/restore.
    double value = 0.0;
    /// Window length, seconds; 0 means "until the end of the run".
    /// Ignored by BayKill/BayRestore (they are edges, not windows).
    double durationSec = 0.0;
    /**
     * Addressee.  -1 targets the schedule's own drive (the only form a
     * standalone CoSimEngine honors).  In a fleet schedule, AirflowDegrade
     * targets a global chassis index and every other kind targets a global
     * bay index; -1 broadcasts to all chassis/bays.
     */
    int target = -1;

    /// True while the event's window covers simulated time @p t.
    bool activeAt(double t) const
    {
        return t >= timeSec &&
               (durationSec <= 0.0 || t < timeSec + durationSec);
    }

    /// True if the event addresses @p index (or broadcasts).
    bool appliesTo(int index) const
    {
        return target < 0 || target == index;
    }
};

/// A validated, time-ordered list of fault events plus the noise seed.
class FaultSchedule
{
  public:
    FaultSchedule() = default;

    /// Build from events (stably sorted by onset time) and validate.
    explicit FaultSchedule(std::vector<FaultEvent> events,
                           std::uint64_t noise_seed = 0);

    /// Append one event, keeping the time ordering.
    void add(const FaultEvent& event);

    /// True when no events are scheduled (the bit-identical no-op).
    bool empty() const { return events_.empty(); }

    /// Number of events.
    std::size_t size() const { return events_.size(); }

    /// Events in onset order.
    const std::vector<FaultEvent>& events() const { return events_; }

    /// Root seed for sensor-noise streams (split per drive/bay).
    std::uint64_t noiseSeed() const { return noise_seed_; }
    void setNoiseSeed(std::uint64_t seed) { noise_seed_ = seed; }

    /// @throws util::ModelError on out-of-domain events.
    void validate() const;

    /**
     * Product of every active AirflowDegrade factor addressing @p index at
     * time @p t (1.0 when none).  Pass -1 for the drive-level view (only
     * untargeted events), a chassis index for the fleet view.
     */
    double coolingScaleAt(double t, int index = -1) const;

    /// Sum of every active ambient step/spike delta addressing @p index.
    double ambientOffsetAt(double t, int index = -1) const;

    /// Power state of bay @p index at @p t: the latest kill/restore edge
    /// at or before @p t wins; no edge means alive.
    bool bayKilledAt(double t, int index) const;

    /// True if any sensor-fault event is scheduled.
    bool hasSensorFaults() const;

    /// True if any BayKill/BayRestore edge is scheduled.
    bool hasBayPowerEvents() const;

  private:
    std::vector<FaultEvent> events_;
    std::uint64_t noise_seed_ = 0;
};

} // namespace hddtherm::fault

#endif // HDDTHERM_FAULT_FAULT_SCHEDULE_H
