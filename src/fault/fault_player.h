/**
 * @file
 * Drive-level replay of a FaultSchedule.
 *
 * A FaultPlayer turns the declarative schedule into the three per-tick
 * answers a co-simulating engine needs:
 *
 *   - coolingScaleAt(t): multiplier on the drive's external convective
 *     conductance (fan/airflow degradation);
 *   - ambientOffsetAt(t): delta on the effective external ambient;
 *   - sense(t, truth): what the temperature *sensor* reports, which is the
 *     truth unless a sensor fault window is active.
 *
 * sense() is the stateful part.  A stuck sensor latches the first reading
 * taken inside its window and repeats it; noise adds a fresh Gaussian draw
 * per reading from an Rng stream split off the schedule's noise seed, so a
 * faulted run is exactly reproducible; a dropout returns an invalid
 * reading.  When windows overlap, dropout wins over stuck, stuck over
 * noise — a dead wire beats a frozen ADC beats a noisy one.
 *
 * The player only honors events with target < 0: the fleet layer routes
 * targeted events to the right bay and clears the target before handing a
 * per-bay schedule to its engine.
 */
#ifndef HDDTHERM_FAULT_FAULT_PLAYER_H
#define HDDTHERM_FAULT_FAULT_PLAYER_H

#include <optional>
#include <vector>

#include "fault/fault_schedule.h"
#include "util/random.h"

namespace hddtherm::snap {
class StateWriter;
class StateReader;
} // namespace hddtherm::snap

namespace hddtherm::fault {

/// One sensor sample as the DTM controller sees it.
struct SensorReading
{
    double valueC = 0.0; ///< Reported temperature (garbage when invalid).
    bool valid = false;  ///< False while the sensor is dropped out.
};

/// Stateful, deterministic replay of one drive's fault schedule.
class FaultPlayer
{
  public:
    /// @param schedule the faults to replay (copied).
    /// @param noise_stream Rng sub-stream index for this drive's sensor
    ///        noise.  Callers replaying one schedule on many drives keep
    ///        the streams independent by passing distinct indices or by
    ///        pre-deriving distinct noise seeds (the fleet derives a
    ///        per-bay seed from the bay's global index).
    explicit FaultPlayer(const FaultSchedule& schedule,
                         std::uint64_t noise_stream = 0);

    /// True when the schedule carries no events.
    bool empty() const { return schedule_.empty(); }

    /// Cooling-path scale at time @p t (product of active degradations).
    double coolingScaleAt(double t) const
    {
        return schedule_.coolingScaleAt(t, -1);
    }

    /// Ambient offset at time @p t (sum of active steps/spikes), °C.
    double ambientOffsetAt(double t) const
    {
        return schedule_.ambientOffsetAt(t, -1);
    }

    /**
     * Sample the temperature sensor at time @p t given the physical
     * temperature @p true_temp_c.  Stateful: advances stuck latches and
     * the noise stream.  Call once per control tick, in time order.
     */
    SensorReading sense(double t, double true_temp_c);

    /// Schedule being replayed.
    const FaultSchedule& schedule() const { return schedule_; }

    /// Serialize the noise stream and stuck latches (the schedule itself
    /// is configuration and is not saved).
    void saveState(snap::StateWriter& w) const;

    /// Restore state written by saveState against the same schedule.
    void loadState(snap::StateReader& r);

  private:
    FaultSchedule schedule_;
    util::Rng noise_rng_;
    /// Per-event latched reading for SensorStuck windows (index-aligned
    /// with schedule_.events(); unused slots stay empty).
    std::vector<std::optional<double>> stuck_latch_;
};

} // namespace hddtherm::fault

#endif // HDDTHERM_FAULT_FAULT_PLAYER_H
