#include "fault/fault_schedule.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace hddtherm::fault {

const char*
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::AirflowDegrade:
        return "airflow_degrade";
      case FaultKind::AmbientStep:
        return "ambient_step";
      case FaultKind::AmbientSpike:
        return "ambient_spike";
      case FaultKind::SensorStuck:
        return "sensor_stuck";
      case FaultKind::SensorDropout:
        return "sensor_dropout";
      case FaultKind::SensorNoise:
        return "sensor_noise";
      case FaultKind::BayKill:
        return "bay_kill";
      case FaultKind::BayRestore:
        return "bay_restore";
    }
    return "unknown";
}

namespace {

void
validateEvent(const FaultEvent& e)
{
    HDDTHERM_REQUIRE(std::isfinite(e.timeSec) && e.timeSec >= 0.0,
                     "fault onset time must be finite and non-negative");
    HDDTHERM_REQUIRE(std::isfinite(e.durationSec) && e.durationSec >= 0.0,
                     "fault duration must be finite and non-negative");
    HDDTHERM_REQUIRE(std::isfinite(e.value), "fault value must be finite");
    switch (e.kind) {
      case FaultKind::AirflowDegrade:
        HDDTHERM_REQUIRE(e.value > 0.0,
                         "airflow scale factor must be positive");
        break;
      case FaultKind::AmbientStep:
        break;
      case FaultKind::AmbientSpike:
        HDDTHERM_REQUIRE(e.durationSec > 0.0,
                         "an ambient spike needs a bounded window");
        break;
      case FaultKind::SensorStuck:
      case FaultKind::SensorDropout:
        break;
      case FaultKind::SensorNoise:
        HDDTHERM_REQUIRE(e.value >= 0.0,
                         "sensor-noise sigma must be non-negative");
        break;
      case FaultKind::BayKill:
      case FaultKind::BayRestore:
        HDDTHERM_REQUIRE(e.target >= 0,
                         "bay kill/restore must target a bay index");
        break;
    }
}

} // namespace

FaultSchedule::FaultSchedule(std::vector<FaultEvent> events,
                             std::uint64_t noise_seed)
    : events_(std::move(events)), noise_seed_(noise_seed)
{
    std::stable_sort(events_.begin(), events_.end(),
                     [](const FaultEvent& a, const FaultEvent& b) {
                         return a.timeSec < b.timeSec;
                     });
    validate();
}

void
FaultSchedule::add(const FaultEvent& event)
{
    validateEvent(event);
    const auto pos = std::upper_bound(
        events_.begin(), events_.end(), event,
        [](const FaultEvent& a, const FaultEvent& b) {
            return a.timeSec < b.timeSec;
        });
    events_.insert(pos, event);
}

void
FaultSchedule::validate() const
{
    for (const auto& e : events_)
        validateEvent(e);
}

double
FaultSchedule::coolingScaleAt(double t, int index) const
{
    double scale = 1.0;
    for (const auto& e : events_) {
        if (e.kind == FaultKind::AirflowDegrade && e.activeAt(t) &&
            e.appliesTo(index))
            scale *= e.value;
    }
    return scale;
}

double
FaultSchedule::ambientOffsetAt(double t, int index) const
{
    double offset = 0.0;
    for (const auto& e : events_) {
        if ((e.kind == FaultKind::AmbientStep ||
             e.kind == FaultKind::AmbientSpike) &&
            e.activeAt(t) && e.appliesTo(index))
            offset += e.value;
    }
    return offset;
}

bool
FaultSchedule::bayKilledAt(double t, int index) const
{
    // Events are onset-ordered, so the last matching edge at or before t
    // decides; a bay with no edges is alive.
    bool killed = false;
    for (const auto& e : events_) {
        if (e.timeSec > t)
            break;
        if (e.target != index)
            continue;
        if (e.kind == FaultKind::BayKill)
            killed = true;
        else if (e.kind == FaultKind::BayRestore)
            killed = false;
    }
    return killed;
}

bool
FaultSchedule::hasSensorFaults() const
{
    return std::any_of(events_.begin(), events_.end(),
                       [](const FaultEvent& e) {
                           return e.kind == FaultKind::SensorStuck ||
                                  e.kind == FaultKind::SensorDropout ||
                                  e.kind == FaultKind::SensorNoise;
                       });
}

bool
FaultSchedule::hasBayPowerEvents() const
{
    return std::any_of(events_.begin(), events_.end(),
                       [](const FaultEvent& e) {
                           return e.kind == FaultKind::BayKill ||
                                  e.kind == FaultKind::BayRestore;
                       });
}

} // namespace hddtherm::fault
