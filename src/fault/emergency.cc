#include "fault/emergency.h"

#include <cstdio>

namespace hddtherm::fault {

std::string
formatEmergencyReport(const EmergencyReport& r)
{
    char line[128];
    std::string out;
    auto add = [&out, &line](int n) { out.append(line, std::size_t(n)); };

    add(std::snprintf(line, sizeof line, "simulated time: %.1f s\n",
                      r.simulatedSec));
    add(std::snprintf(line, sizeof line, "max air temp: %.2f C\n",
                      r.maxTempC));
    add(std::snprintf(line, sizeof line,
                      "time above envelope: %.1f s (%.1f%%)\n",
                      r.envelopeExceededSec,
                      100.0 * r.envelopeExceededFraction()));
    add(std::snprintf(line, sizeof line,
                      "time throttled: %.1f s (%.1f%%), %llu activations\n",
                      r.gatedSec, 100.0 * r.gatedFraction(),
                      (unsigned long long)r.gateEvents));
    add(std::snprintf(line, sizeof line,
                      "fail-safe floor: %.1f s, %llu activations\n",
                      r.failSafeSec,
                      (unsigned long long)r.failSafeActivations));
    add(std::snprintf(line, sizeof line, "invalid sensor readings: %llu\n",
                      (unsigned long long)r.invalidReadings));
    add(std::snprintf(line, sizeof line, "mean response: %.3f ms\n",
                      r.meanLatencyMs));
    if (r.hasBaseline) {
        add(std::snprintf(line, sizeof line,
                          "latency penalty vs fault-free: %+.3f ms\n",
                          r.latencyPenaltyMs));
        add(std::snprintf(line, sizeof line,
                          "extra throttled time vs fault-free: %+.1f s\n",
                          r.throttlePenaltySec));
    }
    return out;
}

} // namespace hddtherm::fault
