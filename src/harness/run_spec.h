/**
 * @file
 * Declarative run description: one spec names everything a run needs.
 *
 * A RunSpec collects what the repo's 33 entry points used to wire by
 * hand — workload and storage system (optionally seeded from a Figure 4
 * scenario), DTM policy, fleet topology, fault schedule, checkpoint
 * policy, and artifact export — into one value that can be
 *
 *   1. defaulted programmatically (each binary keeps its identity),
 *   2. overlaid from an INI file (`--spec run.ini`, core/config_io
 *      dialect, unknown sections/keys rejected), and
 *   3. overlaid again by typed CLI flags (CLI wins),
 *
 * then handed to RunBuilder for the actual trace → sim → thermal → dtm
 * → fleet wiring.  A new experiment becomes an INI file, not a new
 * main().  See docs/harness.md for the full schema; the short form:
 *
 *     [run]          scenario, requests
 *     [dtm]          policy, rpm, low_rpm, rpm_ladder, ambient_c,
 *                    control_interval, max_simulated_sec,
 *                    warmup_fraction, faults
 *     [fleet]        racks, chassis, bays, inlet_c, seed, epoch_sec,
 *                    threads
 *     [checkpoint]   every_sec, every_epochs, dir, delta, compress,
 *                    resume_from
 *     [output]       csv
 *     [disk]/[array]/[workload]   core/config_io experiment overlay
 */
#ifndef HDDTHERM_HARNESS_RUN_SPEC_H
#define HDDTHERM_HARNESS_RUN_SPEC_H

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/config_io.h"
#include "dtm/cosim.h"
#include "snap/checkpoint.h"

namespace hddtherm::harness {

class FlagParser;

/**
 * The checkpoint/resume option block dtm_demo and fleet_explorer used
 * to copy-paste, as one reusable group.  Cadence is seconds for
 * standalone co-simulations and epochs for fleet runs; addFlags() binds
 * `--checkpoint-every` to whichever the entry point asked for.
 */
struct CheckpointOptions
{
    double everySec = 0.0;          ///< Standalone cadence (0 = off).
    std::uint64_t everyEpochs = 0;  ///< Fleet cadence (0 = off).
    std::string directory = "checkpoints";
    bool delta = false;
    bool compress = false;
    std::string resumeFrom;         ///< Checkpoint file or directory.

    /// Cadence unit --checkpoint-every binds to.
    enum class Cadence { Seconds, Epochs };

    /// True once either cadence is armed.
    bool enabled() const { return everySec > 0.0 || everyEpochs > 0; }

    /// The snap policy this block describes.
    snap::CheckpointPolicy policy() const;

    /**
     * Resolve resumeFrom to a concrete checkpoint file: "" when unset,
     * the path itself when it names a file, the newest checkpoint when
     * it names a directory.
     * @throws util::ModelError if a named directory holds none.
     */
    std::string resolveResume() const;

    /// Register the `--checkpoint-every/-dir/-delta/-compress` and
    /// `--resume-from` group on @p flags.
    void addFlags(FlagParser& flags, Cadence cadence);
};

/// Everything one run needs, overlayable from INI and CLI.
struct RunSpec
{
    /// @name [run]
    /// @{
    /// Figure 4 scenario the experiment starts from ("" = the
    /// programmatic defaults in `experiment`).
    std::string scenario;
    /// Request-count override (0 = keep the scenario/workload count).
    std::size_t requests = 0;
    /// @}

    /**
     * Programmatic base system+workload, used when `scenario` is empty.
     * The raw [disk]/[array]/[workload] INI sections are kept in
     * `overlay` and applied by RunBuilder *after* scenario resolution,
     * so file keys override the scenario, and CLI flags override both.
     */
    core::ExperimentSpec experiment;
    core::ini::Document overlay;

    /// @name [dtm]
    /// @{
    std::string policy = "none"; ///< none|gate|gate-rpm|govern.
    double rpm = 0.0;            ///< Spindle override (0 = keep disk's).
    double lowRpm = 0.0;         ///< Second speed for gate-rpm.
    std::vector<double> rpmLadder; ///< Speed ladder for govern.
    double ambientC = thermal::kBaselineAmbientC;
    double controlIntervalSec = 0.1;
    double maxSimulatedSec = 86400.0;
    double warmupFraction = 0.0;
    std::string faultsPath;      ///< Fault schedule INI ("" = none).
    /// @}

    /// @name [fleet]
    /// @{
    int racks = 1;
    int chassisPerRack = 4;
    int baysPerChassis = 8;
    double inletC = thermal::kBaselineAmbientC;
    std::uint64_t seed = 1;
    double epochSec = 0.5;
    int threads = 1;
    /// @}

    CheckpointOptions checkpoint; ///< [checkpoint]

    /// @name [output]
    /// @{
    std::string csvDir; ///< Artifact directory ("" = console only).
    /// @}

    /// Backing store for the --spec flag (already consumed by the
    /// pre-scan; registered so --help documents it).
    std::string specPath;

    /// dtm::DtmPolicy named by `policy`.  @throws util::ModelError.
    dtm::DtmPolicy dtmPolicy() const;

    /// @name Flag groups
    /// Entry points register only the groups they expose.
    /// @{
    void addRunFlags(FlagParser& flags);   ///< --spec/--scenario/--requests
    void addDtmFlags(FlagParser& flags);   ///< --policy/--rpm/--low-rpm/...
    void addFleetFlags(FlagParser& flags); ///< --threads/--racks/...
    void addOutputFlags(FlagParser& flags); ///< --csv
    /// @}
};

/// Map a policy word (none|gate|gate-rpm|govern) to the enum.
/// @throws util::ModelError on anything else.
dtm::DtmPolicy parseDtmPolicy(const std::string& word);

/// The word for a policy (round-trips parseDtmPolicy).
const char* dtmPolicyWord(dtm::DtmPolicy policy);

/**
 * Overlay a parsed run document onto @p spec: the harness sections set
 * their fields ([run]/[dtm]/[fleet]/[checkpoint]/[output], present keys
 * win, absent keys keep the spec's values) and the experiment sections
 * ([disk]/[array]/[workload]) are merged into spec.overlay for
 * RunBuilder.  Unknown sections and keys are rejected.
 * @throws util::ModelError.
 */
void applyRunDocument(core::ini::Document doc, RunSpec& spec);

/// applyRunDocument() over a file.  @throws util::ModelError.
void loadRunSpec(const std::string& path, RunSpec& spec);

/// Serialize @p spec to the INI dialect (applyRunDocument round-trips).
std::string formatRunSpec(const RunSpec& spec);

/**
 * Pre-scan @p argv for `--spec FILE` / `--spec=FILE` occurrences and
 * overlay each file onto @p spec in order.  Runs before FlagParser so
 * the file is loaded first and every other CLI flag overrides it —
 * regardless of where --spec sits on the command line.
 * @throws util::ModelError on a missing value or unreadable file.
 */
void applySpecArgs(int argc, char** argv, RunSpec& spec);

} // namespace hddtherm::harness

#endif // HDDTHERM_HARNESS_RUN_SPEC_H
