#include "harness/bench.h"

#include <iostream>
#include <utility>

#include "util/error.h"

namespace hddtherm::harness {

Bench::Bench(std::string name, int argc, char** argv, std::string summary,
             util::LogLevel level)
    : run_(name, argc, argv),
      flags_(std::move(name), std::move(summary)), argc_(argc),
      argv_(argv)
{
    util::setLogLevel(level);
}

void
Bench::parse()
{
    flags_.beginGroup("output");
    flags_.addString("--csv", &csv_dir_, "DIR",
                     "write CSV tables + manifest/metrics artifacts "
                     "here");
    flags_.parseOrExit(argc_, argv_);
}

int
Bench::finish()
{
    run_.writeArtifacts(csv_dir_);
    return 0;
}

int
guarded(const std::function<int()>& body)
{
    try {
        return body();
    } catch (const util::ModelError& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}

} // namespace hddtherm::harness
