/**
 * @file
 * RunBuilder: the trace → sim → thermal → dtm → fleet wiring, once.
 *
 * Before the harness, every binary that ran a co-simulation repeated the
 * same block: resolve a Figure 4 scenario, tweak the drive, build a
 * SyntheticWorkload, probe a StorageSystem for its logical capacity,
 * generate the trace, construct a CoSimConfig (or FleetConfig), and —
 * only in the two binaries that grew the flags — arm checkpointing and
 * resume.  RunBuilder performs that wiring from a RunSpec so snapshot/
 * resume, fault injection, and artifact emission are available to every
 * run:
 *
 *     harness::RunSpec spec;
 *     spec.scenario = "Search-Engine";
 *     ... register flag groups, applySpecArgs, parseOrExit ...
 *     harness::RunBuilder run(spec);
 *     const auto trace = run.makeTrace();
 *     const auto result = run.runCoSim(trace);
 *
 * Precedence while resolving the experiment: the scenario (or the
 * spec's programmatic `experiment`) is the base, the optional tweak
 * callback stamps the binary's identity on it (e.g. dtm_demo's 2.6"
 * single-platter drive), the INI [disk]/[array]/[workload] overlay
 * applies on top, and the CLI-bound scalar fields (--rpm, --requests)
 * win last.
 */
#ifndef HDDTHERM_HARNESS_RUN_BUILDER_H
#define HDDTHERM_HARNESS_RUN_BUILDER_H

#include <functional>
#include <string>
#include <vector>

#include "dtm/cosim.h"
#include "fleet/fleet_sim.h"
#include "harness/run_spec.h"
#include "sim/request.h"

namespace hddtherm::harness {

/// Wires subsystems from a RunSpec and runs them.
class RunBuilder
{
  public:
    /// Stamp a binary's fixed identity onto the resolved base
    /// experiment, before the INI overlay and CLI fields apply.
    using BaseTweak = std::function<void(core::ExperimentSpec&)>;

    /**
     * Resolve @p spec into ready-to-run configurations.
     * @throws util::ModelError on unknown scenario/policy names, a bad
     *         fault-schedule or overlay key, or an empty resume
     *         directory.
     */
    explicit RunBuilder(const RunSpec& spec, const BaseTweak& tweak = {});

    /// The spec this builder resolved.
    const RunSpec& spec() const { return spec_; }

    /// @name Resolved configurations
    /// Mutable so entry points can apply last-mile adjustments (a bench
    /// sweeping RPM mutates cosim().system.disk.rpm between runs).
    /// @{
    dtm::CoSimConfig& cosim() { return cosim_; }
    const dtm::CoSimConfig& cosim() const { return cosim_; }
    fleet::FleetConfig& fleet() { return fleet_; }
    const fleet::FleetConfig& fleet() const { return fleet_; }
    trace::WorkloadSpec& workload() { return workload_; }
    const trace::WorkloadSpec& workload() const { return workload_; }
    /// @}

    /// Resolved resume checkpoint ("" when the run starts fresh).
    const std::string& resumePath() const { return resume_path_; }

    /// Generate the run's trace (deterministic for a fixed spec).
    std::vector<sim::IoRequest> makeTrace() const;

    /// Plain storage run, no thermal loop (Figure 4 style sweeps).
    sim::ResponseMetrics
    runStorage(const std::vector<sim::IoRequest>& trace) const;

    /**
     * Closed-loop co-simulation of @p trace under cosim(), with the
     * spec's checkpoint cadence armed and resume honored.
     */
    dtm::CoSimResult runCoSim(const std::vector<sim::IoRequest>& trace);

    /// The same run with the fault schedule cleared — the fault-free
    /// baseline emergency reports compare against.
    dtm::CoSimResult
    runBaseline(const std::vector<sim::IoRequest>& trace) const;

    /**
     * Fleet run on the spec's topology and thread count, with epoch
     * checkpointing armed and resume honored.  @p resumed, when
     * non-null, reports whether the run continued from a checkpoint.
     */
    fleet::FleetResult runFleet(engine::TraceSink* epoch_trace = nullptr);

  private:
    RunSpec spec_;
    trace::WorkloadSpec workload_;
    dtm::CoSimConfig cosim_;
    fleet::FleetConfig fleet_;
    std::string resume_path_;
};

} // namespace hddtherm::harness

#endif // HDDTHERM_HARNESS_RUN_BUILDER_H
