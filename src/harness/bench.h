/**
 * @file
 * Bench: the boilerplate every bench binary repeated, as one object.
 *
 * Each of the 24 benches used to open with the same block — construct an
 * obs::BenchRun (manifest provenance + metrics on), set the log level,
 * hand-roll an argv loop for `[requests]` and `--csv dir`, and remember
 * to call writeArtifacts() on the way out.  Bench folds that into the
 * harness so it cannot be forgotten or diverge:
 *
 *     harness::Bench bench("bench_fig4_workloads", argc, argv,
 *                          "Figure 4 response-time sweep.");
 *     std::size_t requests = 60000;
 *     bench.flags().addPositionalSizeT("requests", &requests,
 *                                      "requests per scenario");
 *     bench.parse();          // --csv registered, --help handled
 *     ...
 *     return bench.finish();  // manifest.json + metrics beside the CSVs
 *
 * Construction order matches the old hand-written mains exactly
 * (BenchRun first — it enables metric collection — then the log level),
 * so migrated benches are behavior-identical.
 */
#ifndef HDDTHERM_HARNESS_BENCH_H
#define HDDTHERM_HARNESS_BENCH_H

#include <functional>
#include <string>

#include "harness/flags.h"
#include "obs/manifest.h"
#include "util/log.h"

namespace hddtherm::harness {

/// Per-bench run context: provenance + flags + artifact emission.
class Bench
{
  public:
    /**
     * Start a bench run: BenchRun provenance (metrics on), then
     * @p level as the log level, then a FlagParser named @p name.
     */
    Bench(std::string name, int argc, char** argv, std::string summary,
          util::LogLevel level = util::LogLevel::Info);

    /// Register bench-specific options/positionals before parse().
    FlagParser& flags() { return flags_; }

    /// Register the shared `--csv DIR` option and parse argv
    /// (parseOrExit semantics: --help exits 0, bad flags exit 2).
    void parse();

    /// The --csv directory ("" = console only).
    const std::string& csvDir() const { return csv_dir_; }

    /// Provenance record (setSeed/setConfig/setResume).
    obs::BenchRun& run() { return run_; }

    /// Write manifest.json + metrics beside the CSVs (no-op without
    /// --csv).  Returns the process exit code.
    int finish();

  private:
    obs::BenchRun run_;
    FlagParser flags_;
    int argc_;
    char** argv_;
    std::string csv_dir_;
};

/**
 * Run @p body, turning an escaping util::ModelError into an error line
 * on stderr and exit code 1 — the uniform failure path for example
 * binaries (a bad spec file or an empty resume directory should not
 * read as a crash).
 */
int guarded(const std::function<int()>& body);

} // namespace hddtherm::harness

#endif // HDDTHERM_HARNESS_BENCH_H
