#include "harness/run_spec.h"

#include <filesystem>
#include <sstream>

#include "harness/flags.h"
#include "util/error.h"

namespace hddtherm::harness {

snap::CheckpointPolicy
CheckpointOptions::policy() const
{
    snap::CheckpointPolicy policy;
    policy.directory = directory;
    policy.everySec = everySec;
    policy.everyEpochs = everyEpochs;
    policy.delta = delta;
    policy.compress = compress;
    return policy;
}

std::string
CheckpointOptions::resolveResume() const
{
    if (resumeFrom.empty())
        return "";
    if (!std::filesystem::is_directory(resumeFrom))
        return resumeFrom;
    const std::string path = snap::latestCheckpoint(resumeFrom);
    HDDTHERM_REQUIRE(!path.empty(),
                     "no checkpoint found in " + resumeFrom);
    return path;
}

void
CheckpointOptions::addFlags(FlagParser& flags, Cadence cadence)
{
    flags.beginGroup("checkpointing (docs/checkpoint.md)");
    if (cadence == Cadence::Seconds) {
        flags.addDouble("--checkpoint-every", &everySec, "SEC",
                        "write a checkpoint every SEC simulated seconds");
    } else {
        flags.addUint64("--checkpoint-every", &everyEpochs, "K",
                        "write a checkpoint every K epoch barriers");
    }
    flags.addString("--checkpoint-dir", &directory, "DIR",
                    "directory checkpoints are written into");
    flags.addSwitch("--checkpoint-delta", &delta,
                    "incremental delta checkpoints between full anchors");
    flags.addSwitch("--checkpoint-compress", &compress,
                    "LZ-compress checkpoint section payloads");
    flags.addString("--resume-from", &resumeFrom, "PATH",
                    "resume from a checkpoint file (or the latest in a "
                    "directory)");
}

dtm::DtmPolicy
parseDtmPolicy(const std::string& word)
{
    if (word == "none")
        return dtm::DtmPolicy::None;
    if (word == "gate")
        return dtm::DtmPolicy::GateRequests;
    if (word == "gate-rpm")
        return dtm::DtmPolicy::GateAndLowRpm;
    if (word == "govern")
        return dtm::DtmPolicy::GovernSpeed;
    throw util::ModelError("unknown DTM policy: " + word +
                           " (expected none|gate|gate-rpm|govern)");
}

const char*
dtmPolicyWord(dtm::DtmPolicy policy)
{
    switch (policy) {
      case dtm::DtmPolicy::None:
        return "none";
      case dtm::DtmPolicy::GateRequests:
        return "gate";
      case dtm::DtmPolicy::GateAndLowRpm:
        return "gate-rpm";
      case dtm::DtmPolicy::GovernSpeed:
        return "govern";
    }
    return "none";
}

dtm::DtmPolicy
RunSpec::dtmPolicy() const
{
    return parseDtmPolicy(policy);
}

void
RunSpec::addRunFlags(FlagParser& flags)
{
    flags.beginGroup("run");
    flags.addString("--spec", &specPath, "FILE",
                    "run-spec INI overlaid under the other flags "
                    "(docs/harness.md)");
    flags.addString("--scenario", &scenario, "NAME",
                    "Figure 4 scenario the experiment starts from");
    flags.addSizeT("--requests", &requests, "N",
                   "workload request count");
}

void
RunSpec::addDtmFlags(FlagParser& flags)
{
    flags.beginGroup("thermal management");
    flags.addChoice("--policy", &policy,
                    {"none", "gate", "gate-rpm", "govern"},
                    "DTM policy: none|gate|gate-rpm|govern");
    flags.addDouble("--rpm", &rpm, "R", "spindle speed override");
    flags.addDouble("--low-rpm", &lowRpm, "R",
                    "second speed for the gate-rpm policy");
    flags.addDouble("--ambient", &ambientC, "C",
                    "external ambient temperature");
    flags.addString("--faults", &faultsPath, "FILE",
                    "fault-schedule INI to replay (docs/faults.md)");
}

void
RunSpec::addFleetFlags(FlagParser& flags)
{
    flags.beginGroup("fleet topology");
    flags.addInt("--threads", &threads, "N",
                 "executor threads (0 = hardware concurrency)");
    flags.addInt("--racks", &racks, "R", "identical racks");
    flags.addInt("--chassis", &chassisPerRack, "C", "chassis per rack");
    flags.addInt("--bays", &baysPerChassis, "B",
                 "drive bays per chassis");
    flags.addUint64("--seed", &seed, "S",
                    "root seed for per-bay workload streams");
}

void
RunSpec::addOutputFlags(FlagParser& flags)
{
    flags.beginGroup("output");
    flags.addString("--csv", &csvDir, "DIR",
                    "write CSV tables + manifest/metrics artifacts here");
}

void
applyRunDocument(core::ini::Document doc, RunSpec& spec)
{
    using core::ini::SectionReader;

    for (const auto& [section, _] : doc) {
        HDDTHERM_REQUIRE(
            section == "run" || section == "dtm" || section == "fleet" ||
                section == "checkpoint" || section == "output" ||
                section == "disk" || section == "array" ||
                section == "workload",
            "unknown section [" + section + "]");
    }

    if (doc.count("run")) {
        SectionReader run("run", doc["run"]);
        spec.scenario = run.text("scenario", spec.scenario);
        spec.requests =
            std::size_t(run.number("requests", double(spec.requests)));
        run.finish();
        doc.erase("run");
    }

    if (doc.count("dtm")) {
        SectionReader d("dtm", doc["dtm"]);
        spec.policy = d.word("policy", spec.policy);
        parseDtmPolicy(spec.policy); // validate at load time
        spec.rpm = d.number("rpm", spec.rpm);
        spec.lowRpm = d.number("low_rpm", spec.lowRpm);
        if (d.has("rpm_ladder"))
            spec.rpmLadder = parseDoubleList(
                "[dtm] rpm_ladder", d.text("rpm_ladder", ""));
        spec.ambientC = d.number("ambient_c", spec.ambientC);
        spec.controlIntervalSec =
            d.number("control_interval", spec.controlIntervalSec);
        spec.maxSimulatedSec =
            d.number("max_simulated_sec", spec.maxSimulatedSec);
        spec.warmupFraction =
            d.number("warmup_fraction", spec.warmupFraction);
        spec.faultsPath = d.text("faults", spec.faultsPath);
        d.finish();
        doc.erase("dtm");
    }

    if (doc.count("fleet")) {
        SectionReader f("fleet", doc["fleet"]);
        spec.racks = int(f.number("racks", spec.racks));
        spec.chassisPerRack =
            int(f.number("chassis", spec.chassisPerRack));
        spec.baysPerChassis = int(f.number("bays", spec.baysPerChassis));
        spec.inletC = f.number("inlet_c", spec.inletC);
        spec.seed = std::uint64_t(f.number("seed", double(spec.seed)));
        spec.epochSec = f.number("epoch_sec", spec.epochSec);
        spec.threads = int(f.number("threads", spec.threads));
        f.finish();
        doc.erase("fleet");
    }

    if (doc.count("checkpoint")) {
        SectionReader c("checkpoint", doc["checkpoint"]);
        auto& ckpt = spec.checkpoint;
        ckpt.everySec = c.number("every_sec", ckpt.everySec);
        ckpt.everyEpochs = std::uint64_t(
            c.number("every_epochs", double(ckpt.everyEpochs)));
        ckpt.directory = c.text("dir", ckpt.directory);
        ckpt.delta = c.flag("delta", ckpt.delta);
        ckpt.compress = c.flag("compress", ckpt.compress);
        ckpt.resumeFrom = c.text("resume_from", ckpt.resumeFrom);
        c.finish();
        doc.erase("checkpoint");
    }

    if (doc.count("output")) {
        SectionReader o("output", doc["output"]);
        spec.csvDir = o.text("csv", spec.csvDir);
        o.finish();
        doc.erase("output");
    }

    // What is left are experiment sections; validate their keys now (a
    // typo must fail at load time, not when RunBuilder finally applies
    // the overlay) by applying a copy to a throwaway spec.
    core::ini::Document probe = doc;
    core::ExperimentSpec scratch;
    core::applyExperimentSections(probe, scratch);
    for (auto& [section, keys] : doc) {
        for (auto& [key, value] : keys)
            spec.overlay[section][key] = value;
    }
}

void
loadRunSpec(const std::string& path, RunSpec& spec)
{
    applyRunDocument(core::ini::loadDocument(path), spec);
}

std::string
formatRunSpec(const RunSpec& spec)
{
    std::ostringstream out;
    out << "[run]\n";
    if (!spec.scenario.empty())
        out << "scenario = " << spec.scenario << "\n";
    out << "requests = " << spec.requests << "\n";

    out << "\n[dtm]\n";
    out << "policy = " << spec.policy << "\n";
    out << "rpm = " << spec.rpm << "\n";
    out << "low_rpm = " << spec.lowRpm << "\n";
    if (!spec.rpmLadder.empty()) {
        out << "rpm_ladder = ";
        for (std::size_t i = 0; i < spec.rpmLadder.size(); ++i)
            out << (i ? "," : "") << spec.rpmLadder[i];
        out << "\n";
    }
    out << "ambient_c = " << spec.ambientC << "\n";
    out << "control_interval = " << spec.controlIntervalSec << "\n";
    out << "max_simulated_sec = " << spec.maxSimulatedSec << "\n";
    out << "warmup_fraction = " << spec.warmupFraction << "\n";
    if (!spec.faultsPath.empty())
        out << "faults = " << spec.faultsPath << "\n";

    out << "\n[fleet]\n";
    out << "racks = " << spec.racks << "\n";
    out << "chassis = " << spec.chassisPerRack << "\n";
    out << "bays = " << spec.baysPerChassis << "\n";
    out << "inlet_c = " << spec.inletC << "\n";
    out << "seed = " << spec.seed << "\n";
    out << "epoch_sec = " << spec.epochSec << "\n";
    out << "threads = " << spec.threads << "\n";

    out << "\n[checkpoint]\n";
    out << "every_sec = " << spec.checkpoint.everySec << "\n";
    out << "every_epochs = " << spec.checkpoint.everyEpochs << "\n";
    out << "dir = " << spec.checkpoint.directory << "\n";
    out << "delta = " << (spec.checkpoint.delta ? "true" : "false")
        << "\n";
    out << "compress = " << (spec.checkpoint.compress ? "true" : "false")
        << "\n";
    if (!spec.checkpoint.resumeFrom.empty())
        out << "resume_from = " << spec.checkpoint.resumeFrom << "\n";

    if (!spec.csvDir.empty())
        out << "\n[output]\ncsv = " << spec.csvDir << "\n";

    for (const auto& [section, keys] : spec.overlay) {
        out << "\n[" << section << "]\n";
        for (const auto& [key, value] : keys)
            out << key << " = " << value << "\n";
    }
    return out.str();
}

void
applySpecArgs(int argc, char** argv, RunSpec& spec)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--spec") {
            HDDTHERM_REQUIRE(i + 1 < argc, "flag --spec: missing value");
            spec.specPath = argv[++i];
            loadRunSpec(spec.specPath, spec);
        } else if (arg.compare(0, 7, "--spec=") == 0) {
            spec.specPath = arg.substr(7);
            loadRunSpec(spec.specPath, spec);
        }
    }
}

} // namespace hddtherm::harness
