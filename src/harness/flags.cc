#include "harness/flags.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <sstream>

#include "util/error.h"

namespace hddtherm::harness {

namespace {

[[noreturn]] void
badValue(const std::string& what, const std::string& text,
         const char* expected)
{
    throw util::ModelError(what + ": expected " + expected + ", got '" +
                           text + "'");
}

} // namespace

double
parseDouble(const std::string& what, const std::string& text)
{
    if (text.empty())
        badValue(what, text, "a number");
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size() || errno == ERANGE ||
        !std::isfinite(value))
        badValue(what, text, "a finite number");
    return value;
}

long long
parseInt64(const std::string& what, const std::string& text)
{
    if (text.empty())
        badValue(what, text, "an integer");
    errno = 0;
    char* end = nullptr;
    const long long value = std::strtoll(text.c_str(), &end, 10);
    if (end != text.c_str() + text.size() || errno == ERANGE)
        badValue(what, text, "an integer");
    return value;
}

std::uint64_t
parseUint64(const std::string& what, const std::string& text)
{
    if (text.empty() || text.front() == '-')
        badValue(what, text, "a non-negative integer");
    errno = 0;
    char* end = nullptr;
    const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
    if (end != text.c_str() + text.size() || errno == ERANGE)
        badValue(what, text, "a non-negative integer");
    return std::uint64_t(value);
}

int
parseInt(const std::string& what, const std::string& text)
{
    const long long value = parseInt64(what, text);
    if (value < std::numeric_limits<int>::min() ||
        value > std::numeric_limits<int>::max())
        badValue(what, text, "an int-range integer");
    return int(value);
}

std::size_t
parseSizeT(const std::string& what, const std::string& text)
{
    return std::size_t(parseUint64(what, text));
}

bool
parseBool(const std::string& what, const std::string& text)
{
    if (text == "true" || text == "yes" || text == "1")
        return true;
    if (text == "false" || text == "no" || text == "0")
        return false;
    badValue(what, text, "a boolean (true/false)");
}

namespace {

template <typename T, typename Parse>
std::vector<T>
parseList(const std::string& what, const std::string& text, Parse parse)
{
    std::vector<T> out;
    std::size_t pos = 0;
    if (text.empty())
        badValue(what, text, "a comma-separated list");
    while (pos <= text.size()) {
        const std::size_t comma = text.find(',', pos);
        const std::size_t end =
            comma == std::string::npos ? text.size() : comma;
        out.push_back(parse(what, text.substr(pos, end - pos)));
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
        if (pos == text.size()) // trailing comma
            badValue(what, text, "a comma-separated list");
    }
    return out;
}

} // namespace

std::vector<int>
parseIntList(const std::string& what, const std::string& text)
{
    return parseList<int>(what, text, parseInt);
}

std::vector<double>
parseDoubleList(const std::string& what, const std::string& text)
{
    return parseList<double>(what, text, parseDouble);
}

FlagParser::FlagParser(std::string program, std::string summary)
    : program_(std::move(program)), summary_(std::move(summary))
{}

void
FlagParser::addOption(Option opt)
{
    HDDTHERM_ASSERT(find(opt.name) == nullptr);
    opt.group = group_;
    options_.push_back(std::move(opt));
}

const FlagParser::Option*
FlagParser::find(const std::string& name) const
{
    for (const auto& opt : options_) {
        if (opt.name == name)
            return &opt;
    }
    return nullptr;
}

void
FlagParser::addString(const std::string& name, std::string* out,
                      const std::string& value_name,
                      const std::string& help)
{
    addOption({name, value_name, help, {}, false,
               [out](const std::string& text) { *out = text; }, nullptr});
}

void
FlagParser::addDouble(const std::string& name, double* out,
                      const std::string& value_name,
                      const std::string& help)
{
    addOption({name, value_name, help, {}, false,
               [out, name](const std::string& text) {
                   *out = parseDouble("flag " + name, text);
               },
               nullptr});
}

void
FlagParser::addInt(const std::string& name, int* out,
                   const std::string& value_name, const std::string& help)
{
    addOption({name, value_name, help, {}, false,
               [out, name](const std::string& text) {
                   *out = parseInt("flag " + name, text);
               },
               nullptr});
}

void
FlagParser::addSizeT(const std::string& name, std::size_t* out,
                     const std::string& value_name,
                     const std::string& help)
{
    addOption({name, value_name, help, {}, false,
               [out, name](const std::string& text) {
                   *out = parseSizeT("flag " + name, text);
               },
               nullptr});
}

void
FlagParser::addUint64(const std::string& name, std::uint64_t* out,
                      const std::string& value_name,
                      const std::string& help)
{
    addOption({name, value_name, help, {}, false,
               [out, name](const std::string& text) {
                   *out = parseUint64("flag " + name, text);
               },
               nullptr});
}

void
FlagParser::addSwitch(const std::string& name, bool* out,
                      const std::string& help)
{
    addOption({name, "", help, {}, true, nullptr, out});
}

void
FlagParser::addChoice(const std::string& name, std::string* out,
                      std::vector<std::string> choices,
                      const std::string& help)
{
    addOption({name, "WHICH", help, {}, false,
               [out, name, choices = std::move(choices)](
                   const std::string& text) {
                   for (const auto& c : choices) {
                       if (text == c) {
                           *out = text;
                           return;
                       }
                   }
                   std::string valid;
                   for (const auto& c : choices)
                       valid += (valid.empty() ? "" : "|") + c;
                   throw util::ModelError("flag " + name + ": '" + text +
                                          "' is not one of " + valid);
               },
               nullptr});
}

void
FlagParser::addIntList(const std::string& name, std::vector<int>* out,
                       const std::string& value_name,
                       const std::string& help)
{
    addOption({name, value_name, help, {}, false,
               [out, name](const std::string& text) {
                   *out = parseIntList("flag " + name, text);
               },
               nullptr});
}

void
FlagParser::addDoubleList(const std::string& name,
                          std::vector<double>* out,
                          const std::string& value_name,
                          const std::string& help)
{
    addOption({name, value_name, help, {}, false,
               [out, name](const std::string& text) {
                   *out = parseDoubleList("flag " + name, text);
               },
               nullptr});
}

void
FlagParser::addPositionalString(const std::string& label, std::string* out,
                                const std::string& help)
{
    positionals_.push_back(
        {label, help, [out](const std::string& text) { *out = text; }});
}

void
FlagParser::addPositionalDouble(const std::string& label, double* out,
                                const std::string& help)
{
    positionals_.push_back({label, help,
                            [out, label](const std::string& text) {
                                *out = parseDouble("argument " + label,
                                                   text);
                            }});
}

void
FlagParser::addPositionalInt(const std::string& label, int* out,
                             const std::string& help)
{
    positionals_.push_back({label, help,
                            [out, label](const std::string& text) {
                                *out = parseInt("argument " + label, text);
                            }});
}

void
FlagParser::addPositionalSizeT(const std::string& label, std::size_t* out,
                               const std::string& help)
{
    positionals_.push_back({label, help,
                            [out, label](const std::string& text) {
                                *out = parseSizeT("argument " + label,
                                                  text);
                            }});
}

void
FlagParser::beginGroup(std::string title)
{
    group_ = std::move(title);
}

bool
FlagParser::parse(int argc, char** argv)
{
    std::vector<std::string> args;
    args.reserve(argc > 0 ? std::size_t(argc) - 1 : 0);
    for (int i = 1; i < argc; ++i)
        args.emplace_back(argv[i]);
    return parse(args);
}

bool
FlagParser::parse(const std::vector<std::string>& args)
{
    extra_.clear();
    std::size_t next_positional = 0;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string& arg = args[i];
        if (arg == "--help" || arg == "-h")
            return false;
        std::string name = arg;
        std::string inline_value;
        bool has_inline = false;
        if (arg.size() > 2 && arg.compare(0, 2, "--") == 0) {
            const auto eq = arg.find('=');
            if (eq != std::string::npos) {
                name = arg.substr(0, eq);
                inline_value = arg.substr(eq + 1);
                has_inline = true;
            }
        }
        if (const Option* opt = find(name)) {
            if (opt->is_switch) {
                if (has_inline)
                    throw util::ModelError("flag " + name +
                                           " takes no value");
                *opt->switch_out = true;
                continue;
            }
            std::string value;
            if (has_inline) {
                value = inline_value;
            } else {
                if (i + 1 >= args.size())
                    throw util::ModelError("flag " + name +
                                           ": missing value");
                value = args[++i];
            }
            opt->apply(value);
            continue;
        }
        const bool looks_like_flag =
            arg.size() > 1 && arg.front() == '-' &&
            !(std::isdigit(static_cast<unsigned char>(arg[1])) ||
              arg[1] == '.');
        if (looks_like_flag) {
            if (pass_through_) {
                extra_.push_back(arg);
                continue;
            }
            throw util::ModelError("unknown flag: " + arg);
        }
        if (next_positional < positionals_.size()) {
            positionals_[next_positional++].apply(arg);
            continue;
        }
        if (pass_through_) {
            extra_.push_back(arg);
            continue;
        }
        throw util::ModelError("unexpected argument: " + arg);
    }
    return true;
}

void
FlagParser::parseOrExit(int argc, char** argv)
{
    try {
        if (!parse(argc, argv)) {
            std::cout << helpText();
            std::exit(0);
        }
    } catch (const util::ModelError& e) {
        std::cerr << program_ << ": " << e.what() << "\n"
                  << "try '" << program_ << " --help'\n";
        std::exit(2);
    }
}

std::string
FlagParser::helpText() const
{
    std::ostringstream out;
    out << "usage: " << program_ << " [options]";
    for (const auto& p : positionals_)
        out << " [" << p.label << "]";
    out << "\n";
    if (!summary_.empty())
        out << "\n" << summary_ << "\n";
    if (!positionals_.empty()) {
        out << "\narguments:\n";
        for (const auto& p : positionals_) {
            std::string head = "  " + p.label;
            if (head.size() < 26)
                head.resize(26, ' ');
            else
                head += ' ';
            out << head << p.help << "\n";
        }
    }
    std::string group; // options before the first beginGroup()
    bool opened = false;
    auto open = [&](const std::string& title) {
        out << "\n" << (title.empty() ? "options" : title) << ":\n";
        opened = true;
    };
    for (const auto& opt : options_) {
        if (!opened || opt.group != group) {
            group = opt.group;
            open(group);
        }
        std::string head = "  " + opt.name;
        if (!opt.value_name.empty())
            head += " " + opt.value_name;
        if (head.size() < 26)
            head.resize(26, ' ');
        else
            head += ' ';
        out << head << opt.help << "\n";
    }
    if (!opened)
        out << "\noptions:\n";
    out << "  --help                  show this message and exit\n";
    return out.str();
}

} // namespace hddtherm::harness
