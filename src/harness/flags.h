/**
 * @file
 * Typed command-line parsing for every HDDTherm entry point.
 *
 * Before this layer, each of the repo's benches and examples hand-rolled
 * its own `argv` loop on `std::atof`/`std::atoll`, which silently parse
 * `"abc"` as 0 and wrap negative counts through `std::size_t`.  FlagParser
 * replaces them all: options are registered with a type and a help line,
 * `--help` output is generated, and malformed values, unknown flags, and
 * stray arguments are rejected loudly (naming the flag and the offending
 * text) instead of producing a garbage run.
 *
 *     harness::FlagParser flags("dtm_demo", "Run a DTM co-simulation.");
 *     flags.addDouble("--rpm", &rpm, "R", "spindle speed");
 *     flags.addSizeT("--requests", &requests, "N", "workload size");
 *     flags.parseOrExit(argc, argv);   // --help prints and exits 0
 *
 * Values may be given as `--flag value` or `--flag=value`.  Positionals
 * are declared in order and are always optional (the repo's entry points
 * use them for "the one obvious knob", e.g. `bench_fig4_workloads 2000`).
 * The throwing `parse()` overload backs the test suite; entry points use
 * `parseOrExit()`, which turns a util::ModelError into an exit(2) with
 * a "try --help" hint.
 */
#ifndef HDDTHERM_HARNESS_FLAGS_H
#define HDDTHERM_HARNESS_FLAGS_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace hddtherm::harness {

/// @name Strict scalar parsing
/// Shared by FlagParser and RunSpec: the whole text must convert, the
/// result must be finite / in range, and unsigned quantities reject
/// negative input instead of wrapping.  @p what names the flag or key in
/// the util::ModelError message.
/// @{
double parseDouble(const std::string& what, const std::string& text);
long long parseInt64(const std::string& what, const std::string& text);
std::uint64_t parseUint64(const std::string& what, const std::string& text);
int parseInt(const std::string& what, const std::string& text);
std::size_t parseSizeT(const std::string& what, const std::string& text);
bool parseBool(const std::string& what, const std::string& text);
/// Comma-separated list of strictly parsed values; empty elements rejected.
std::vector<int> parseIntList(const std::string& what,
                              const std::string& text);
std::vector<double> parseDoubleList(const std::string& what,
                                    const std::string& text);
/// @}

/// Declarative argv parser with typed options and generated --help.
class FlagParser
{
  public:
    /**
     * @param program binary name for the usage line.
     * @param summary one-line description printed atop --help.
     */
    explicit FlagParser(std::string program, std::string summary = "");

    /// @name Option registration
    /// @p name includes the leading dashes ("--rpm").  @p value_name
    /// labels the operand in help ("--rpm R").  Registering a duplicate
    /// name aborts (programmer error).
    /// @{
    void addString(const std::string& name, std::string* out,
                   const std::string& value_name, const std::string& help);
    void addDouble(const std::string& name, double* out,
                   const std::string& value_name, const std::string& help);
    void addInt(const std::string& name, int* out,
                const std::string& value_name, const std::string& help);
    void addSizeT(const std::string& name, std::size_t* out,
                  const std::string& value_name, const std::string& help);
    void addUint64(const std::string& name, std::uint64_t* out,
                   const std::string& value_name, const std::string& help);
    /// Presence flag: no operand, sets *out = true.
    void addSwitch(const std::string& name, bool* out,
                   const std::string& help);
    /// String option restricted to @p choices; others are rejected with
    /// the valid set in the message.
    void addChoice(const std::string& name, std::string* out,
                   std::vector<std::string> choices,
                   const std::string& help);
    void addIntList(const std::string& name, std::vector<int>* out,
                    const std::string& value_name, const std::string& help);
    void addDoubleList(const std::string& name, std::vector<double>* out,
                       const std::string& value_name,
                       const std::string& help);
    /// @}

    /// @name Positional registration
    /// Filled left to right; all positionals are optional.
    /// @{
    void addPositionalString(const std::string& label, std::string* out,
                             const std::string& help);
    void addPositionalDouble(const std::string& label, double* out,
                             const std::string& help);
    void addPositionalInt(const std::string& label, int* out,
                          const std::string& help);
    void addPositionalSizeT(const std::string& label, std::size_t* out,
                            const std::string& help);
    /// @}

    /// Start a titled option group in the help output (registration
    /// order is preserved).
    void beginGroup(std::string title);

    /**
     * Collect unrecognized arguments into extraArgs() instead of
     * rejecting them — for binaries that forward to another flag
     * consumer (bench_micro hands google-benchmark its flags).
     */
    void passThroughUnknown() { pass_through_ = true; }

    /// Arguments left unconsumed under passThroughUnknown(), argv order.
    const std::vector<std::string>& extraArgs() const { return extra_; }

    /**
     * Parse @p argv (argv[0] ignored).
     * @returns false if --help/-h was seen (caller should print
     *          helpText() and stop); true to proceed.
     * @throws util::ModelError naming the flag/value on unknown flags,
     *         missing operands, malformed or out-of-range values, and
     *         unexpected positionals.
     */
    bool parse(int argc, char** argv);

    /// parse() over an argument vector (tests).
    bool parse(const std::vector<std::string>& args);

    /// Parse; on --help print helpText() to stdout and exit(0); on error
    /// print the message and a "try --help" hint to stderr and exit(2).
    void parseOrExit(int argc, char** argv);

    /// The generated help text.
    std::string helpText() const;

  private:
    struct Option
    {
        std::string name;
        std::string value_name; ///< Empty for switches.
        std::string help;
        std::string group;
        bool is_switch = false;
        std::function<void(const std::string&)> apply;
        bool* switch_out = nullptr;
    };
    struct Positional
    {
        std::string label;
        std::string help;
        std::function<void(const std::string&)> apply;
    };

    void addOption(Option opt);
    const Option* find(const std::string& name) const;

    std::string program_;
    std::string summary_;
    std::string group_;
    std::vector<Option> options_;
    std::vector<Positional> positionals_;
    std::vector<std::string> extra_;
    bool pass_through_ = false;
};

} // namespace hddtherm::harness

#endif // HDDTHERM_HARNESS_FLAGS_H
