#include "harness/run_builder.h"

#include "core/scenarios.h"
#include "sim/storage_system.h"
#include "trace/synth.h"
#include "util/error.h"

namespace hddtherm::harness {

RunBuilder::RunBuilder(const RunSpec& spec, const BaseTweak& tweak)
    : spec_(spec)
{
    // Base: a named Figure 4 scenario, or the spec's programmatic
    // experiment.
    core::ExperimentSpec base;
    if (!spec_.scenario.empty()) {
        const auto scenario = core::figure4Scenario(
            spec_.scenario, spec_.requests ? spec_.requests : 60000);
        base.system = scenario.system;
        base.workload = scenario.workload;
        base.hasWorkload = true;
    } else {
        base = spec_.experiment;
    }
    if (tweak)
        tweak(base);

    // INI [disk]/[array]/[workload] overlay (present keys win) ...
    core::ini::Document overlay = spec_.overlay;
    core::applyExperimentSections(overlay, base);

    // ... and the CLI-bound scalars win last.
    if (spec_.requests)
        base.workload.requests = spec_.requests;
    if (spec_.rpm > 0.0)
        base.system.disk.rpm = spec_.rpm;

    workload_ = base.workload;

    cosim_.system = base.system;
    cosim_.policy = spec_.dtmPolicy();
    cosim_.lowRpm = spec_.lowRpm;
    cosim_.rpmLadder = spec_.rpmLadder;
    cosim_.ambientC = spec_.ambientC;
    cosim_.controlIntervalSec = spec_.controlIntervalSec;
    cosim_.maxSimulatedSec = spec_.maxSimulatedSec;
    cosim_.warmupFraction = spec_.warmupFraction;
    if (!spec_.faultsPath.empty())
        cosim_.faults = core::loadFaultSchedule(spec_.faultsPath);

    fleet_.racks = spec_.racks;
    fleet_.rack.chassisCount = spec_.chassisPerRack;
    fleet_.rack.inletC = spec_.inletC;
    fleet_.chassis.bays = spec_.baysPerChassis;
    fleet_.bay = cosim_;
    // The fleet owns ambient management and fault routing; the bay
    // template must carry neither.
    fleet_.bay.ambientProfile.clear();
    fleet_.bay.faults = fault::FaultSchedule();
    fleet_.faults = cosim_.faults;
    fleet_.workload = workload_;
    fleet_.seed = spec_.seed;
    fleet_.epochSec = spec_.epochSec;
    fleet_.maxSimulatedSec = spec_.maxSimulatedSec;

    resume_path_ = spec_.checkpoint.resolveResume();
}

std::vector<sim::IoRequest>
RunBuilder::makeTrace() const
{
    const trace::SyntheticWorkload gen(workload_);
    const sim::StorageSystem probe(cosim_.system);
    return gen.generate(probe.logicalSectors()).toRequests();
}

sim::ResponseMetrics
RunBuilder::runStorage(const std::vector<sim::IoRequest>& trace) const
{
    sim::StorageSystem array(cosim_.system);
    return array.run(trace);
}

dtm::CoSimResult
RunBuilder::runCoSim(const std::vector<sim::IoRequest>& trace)
{
    dtm::CoSimEngine engine(cosim_);
    if (spec_.checkpoint.everySec > 0.0) {
        snap::CheckpointPolicy policy = spec_.checkpoint.policy();
        policy.everyEpochs = 0; // standalone cadence is seconds
        engine.enableCheckpoints(policy);
    }
    if (!resume_path_.empty())
        engine.restoreFromCheckpoint(resume_path_, trace);
    else
        engine.start(trace);
    engine.advanceToCompletion();
    return engine.result();
}

dtm::CoSimResult
RunBuilder::runBaseline(const std::vector<sim::IoRequest>& trace) const
{
    dtm::CoSimConfig clean = cosim_;
    clean.faults = fault::FaultSchedule();
    return dtm::CoSimulation(clean).run(trace);
}

fleet::FleetResult
RunBuilder::runFleet(engine::TraceSink* epoch_trace)
{
    fleet::FleetSimulation sim(fleet_);
    snap::CheckpointPolicy policy = spec_.checkpoint.policy();
    policy.everySec = 0.0; // fleet cadence is epoch-based
    const snap::CheckpointPolicy* checkpoints =
        spec_.checkpoint.everyEpochs > 0 ? &policy : nullptr;
    if (!resume_path_.empty())
        return sim.resume(resume_path_, spec_.threads, epoch_trace,
                          checkpoints);
    return sim.run(spec_.threads, epoch_trace, checkpoints);
}

} // namespace hddtherm::harness
