/**
 * @file
 * Console table and CSV emission.
 *
 * Every bench binary reproduces a paper table or figure series; TableWriter
 * renders them as aligned text for the console and optionally mirrors the
 * rows to a CSV file so the series can be re-plotted.
 */
#ifndef HDDTHERM_UTIL_TABLE_H
#define HDDTHERM_UTIL_TABLE_H

#include <ostream>
#include <string>
#include <vector>

namespace hddtherm::util {

/// An aligned text table with a header row.
class TableWriter
{
  public:
    /// @param headers column titles, fixing the column count.
    explicit TableWriter(std::vector<std::string> headers);

    /// Append a row; must match the header column count.
    void addRow(std::vector<std::string> row);

    /// Convenience: format doubles with the given precision.
    static std::string num(double v, int precision = 2);

    /// Convenience: format integers.
    static std::string num(long long v);

    /// Render the aligned table to @p os.
    void print(std::ostream& os) const;

    /// Write the table as CSV to @p path; returns false on I/O failure.
    bool writeCsv(const std::string& path) const;

    /// Number of data rows so far.
    std::size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace hddtherm::util

#endif // HDDTHERM_UTIL_TABLE_H
