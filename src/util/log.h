/**
 * @file
 * Minimal leveled logging (inform/warn), gem5-style.
 *
 * Messages go to stderr so they never corrupt table/CSV output on stdout.
 * Verbosity is a process-wide setting; benches default to Warn so their
 * reproduction tables stay clean.
 */
#ifndef HDDTHERM_UTIL_LOG_H
#define HDDTHERM_UTIL_LOG_H

#include <cstdarg>

namespace hddtherm::util {

/// Log severity, in increasing order of importance.
enum class LogLevel
{
    Debug = 0,
    Info = 1,
    Warn = 2,
    Quiet = 3,
};

/// Set the process-wide minimum level that will be emitted.
void setLogLevel(LogLevel level);

/// Current minimum level.
LogLevel logLevel();

/// printf-style debug message.
void logDebug(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// printf-style informational message.
void logInfo(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// printf-style warning.
void logWarn(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace hddtherm::util

#endif // HDDTHERM_UTIL_LOG_H
