/**
 * @file
 * Scalar root finding and monotone search.
 *
 * The roadmap engine repeatedly inverts monotone model relationships: "what
 * RPM produces this IDR?" has a closed form, but "what is the highest RPM
 * whose steady-state temperature stays within the envelope?" does not, so we
 * solve it with bracketed bisection on the thermal model.
 */
#ifndef HDDTHERM_UTIL_ROOTS_H
#define HDDTHERM_UTIL_ROOTS_H

#include <functional>

namespace hddtherm::util {

/// Options controlling the bisection solvers.
struct BisectOptions
{
    double xTol = 1e-6;   ///< Absolute tolerance on the argument.
    int maxIter = 200;    ///< Iteration cap (defensive; bisection halves).
};

/**
 * Find x in [lo, hi] with f(x) == 0 by bisection.
 *
 * @param f continuous function with f(lo) and f(hi) of opposite sign
 *          (or zero at an endpoint).
 * @param lo lower bracket.
 * @param hi upper bracket.
 * @param opt tolerances.
 * @return the located root.
 * @throws ModelError if the root is not bracketed.
 */
double bisect(const std::function<double(double)>& f, double lo, double hi,
              const BisectOptions& opt = {});

/**
 * Find the largest x in [lo, hi] for which @p pred holds, assuming pred is
 * monotone (true on [lo, x*], false on (x*, hi]).
 *
 * @param pred monotone predicate; pred(lo) must be true.  If pred(hi) is
 *        true the function returns hi.
 * @param lo lower bound (predicate must hold here).
 * @param hi upper bound.
 * @param opt tolerances.
 * @return largest satisfying argument, within opt.xTol.
 * @throws ModelError if pred(lo) is false.
 */
double maxSatisfying(const std::function<bool(double)>& pred, double lo,
                     double hi, const BisectOptions& opt = {});

} // namespace hddtherm::util

#endif // HDDTHERM_UTIL_ROOTS_H
