/**
 * @file
 * One-dimensional interpolation utilities.
 *
 * Two small tools the models lean on repeatedly:
 *  - PiecewiseLinear: a monotone-x piecewise-linear curve with configurable
 *    extrapolation.  Used for the 3-point seek model (paper §3.2) and for
 *    interpolating measured VCM powers across platter sizes (§3.3, §5.2).
 *  - PowerLawFit: least-squares y = a * x^b in log space.  Used to
 *    extrapolate VCM power outside the published anchor sizes.
 */
#ifndef HDDTHERM_UTIL_INTERP_H
#define HDDTHERM_UTIL_INTERP_H

#include <cstddef>
#include <utility>
#include <vector>

namespace hddtherm::util {

/**
 * Piecewise-linear curve through a set of (x, y) points with strictly
 * increasing x.  Evaluation outside the x-range follows the configured
 * extrapolation mode.
 */
class PiecewiseLinear
{
  public:
    /// Behaviour outside the fitted x-range.
    enum class Extrapolate
    {
        Clamp,  ///< Hold the boundary y value.
        Linear, ///< Continue the boundary segment's slope.
    };

    PiecewiseLinear() = default;

    /**
     * Build from points; the point list is sorted by x internally.
     *
     * @param points (x, y) samples; at least one point, x values distinct.
     * @param mode extrapolation behaviour outside [x_front, x_back].
     */
    explicit PiecewiseLinear(std::vector<std::pair<double, double>> points,
                             Extrapolate mode = Extrapolate::Linear);

    /// Evaluate the curve at @p x.
    double operator()(double x) const;

    /// Number of knots.
    std::size_t size() const { return points_.size(); }

    /// Smallest fitted x.
    double minX() const { return points_.front().first; }

    /// Largest fitted x.
    double maxX() const { return points_.back().first; }

  private:
    std::vector<std::pair<double, double>> points_;
    Extrapolate mode_ = Extrapolate::Linear;
};

/**
 * Power-law fit y = a * x^b computed by linear least squares on
 * (ln x, ln y).  All x and y must be positive.
 */
class PowerLawFit
{
  public:
    /// Fit through the given positive (x, y) samples (at least two).
    explicit PowerLawFit(
        const std::vector<std::pair<double, double>>& points);

    /// Evaluate a * x^b.
    double operator()(double x) const;

    /// Multiplicative coefficient a.
    double coefficient() const { return a_; }

    /// Exponent b.
    double exponent() const { return b_; }

  private:
    double a_ = 1.0;
    double b_ = 1.0;
};

/// Linear interpolation between two scalars: a + t * (b - a).
constexpr double
lerp(double a, double b, double t)
{
    return a + t * (b - a);
}

} // namespace hddtherm::util

#endif // HDDTHERM_UTIL_INTERP_H
