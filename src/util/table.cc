#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iomanip>

#include "util/error.h"

namespace hddtherm::util {

TableWriter::TableWriter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    HDDTHERM_REQUIRE(!headers_.empty(), "TableWriter needs columns");
}

void
TableWriter::addRow(std::vector<std::string> row)
{
    HDDTHERM_REQUIRE(row.size() == headers_.size(),
                     "TableWriter row width mismatch");
    rows_.push_back(std::move(row));
}

std::string
TableWriter::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TableWriter::num(long long v)
{
    return std::to_string(v);
}

void
TableWriter::print(std::ostream& os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(int(widths[c])) << row[c];
            if (c + 1 < row.size())
                os << "  ";
        }
        os << '\n';
    };

    emit(headers_);
    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    os << std::string(total >= 2 ? total - 2 : total, '-') << '\n';
    for (const auto& row : rows_)
        emit(row);
}

bool
TableWriter::writeCsv(const std::string& path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            // Quote fields containing separators.
            const bool quote =
                row[c].find_first_of(",\"\n") != std::string::npos;
            if (quote) {
                out << '"';
                for (char ch : row[c]) {
                    if (ch == '"')
                        out << '"';
                    out << ch;
                }
                out << '"';
            } else {
                out << row[c];
            }
            if (c + 1 < row.size())
                out << ',';
        }
        out << '\n';
    };
    emit(headers_);
    for (const auto& row : rows_)
        emit(row);
    return bool(out);
}

} // namespace hddtherm::util
