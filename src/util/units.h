/**
 * @file
 * Unit conversion helpers and physical constants used across HDDTherm.
 *
 * The disk-drive literature mixes imperial media dimensions (platter
 * diameters quoted in inches, recording densities in bits/tracks per inch)
 * with SI thermal quantities.  All model internals work in SI; these helpers
 * are the single place where the conversions live so that no magic factors
 * appear in model code.
 */
#ifndef HDDTHERM_UTIL_UNITS_H
#define HDDTHERM_UTIL_UNITS_H

#include <numbers>

namespace hddtherm::util {

/// Meters per inch (exact).
inline constexpr double kMetersPerInch = 0.0254;

/// Bytes per binary megabyte; IDR is reported in MB/s with MB = 2^20 bytes,
/// matching the paper's Equation 4.
inline constexpr double kBytesPerMiB = 1024.0 * 1024.0;

/// Bytes per decimal gigabyte; drive capacities in datasheets (and in the
/// paper's Table 1) use GB = 1e9 bytes.
inline constexpr double kBytesPerGB = 1e9;

/// User-visible payload of one sector, in bytes and bits.
inline constexpr int kSectorBytes = 512;
inline constexpr int kSectorBits = kSectorBytes * 8;

/// Convert inches to meters.
constexpr double
inchesToMeters(double inches)
{
    return inches * kMetersPerInch;
}

/// Convert meters to inches.
constexpr double
metersToInches(double meters)
{
    return meters / kMetersPerInch;
}

/// Convert rotational speed in revolutions per minute to rad/s.
constexpr double
rpmToRadPerSec(double rpm)
{
    return rpm * 2.0 * std::numbers::pi / 60.0;
}

/// Convert rotational speed in revolutions per minute to revolutions/s.
constexpr double
rpmToRevPerSec(double rpm)
{
    return rpm / 60.0;
}

/// Time for one full revolution at @p rpm, in seconds.
constexpr double
revolutionTimeSec(double rpm)
{
    return 60.0 / rpm;
}

/// Convert degrees Celsius to Kelvin.
constexpr double
celsiusToKelvin(double c)
{
    return c + 273.15;
}

/// Convert Kelvin to degrees Celsius.
constexpr double
kelvinToCelsius(double k)
{
    return k - 273.15;
}

/// Convert seconds to milliseconds.
constexpr double
secToMs(double s)
{
    return s * 1e3;
}

/// Convert milliseconds to seconds.
constexpr double
msToSec(double ms)
{
    return ms * 1e-3;
}

} // namespace hddtherm::util

#endif // HDDTHERM_UTIL_UNITS_H
