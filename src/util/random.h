/**
 * @file
 * Deterministic random number generation for the synthetic workloads.
 *
 * A small xoshiro256** engine plus the distributions the trace generators
 * need (uniform, exponential, Pareto, Zipf, log-normal).  Determinism given
 * a seed is part of the public contract: every experiment in EXPERIMENTS.md
 * is reproducible bit-for-bit.
 */
#ifndef HDDTHERM_UTIL_RANDOM_H
#define HDDTHERM_UTIL_RANDOM_H

#include <cstdint>
#include <vector>

namespace hddtherm::snap {
class StateWriter;
class StateReader;
} // namespace hddtherm::snap

namespace hddtherm::util {

/**
 * Derive an independent child seed from a root seed and a stream index.
 *
 * Parallel shards each seed their own engine with
 * deriveStreamSeed(root, shard); the SplitMix64 finalizer decorrelates the
 * children even for adjacent indices, so shard streams neither share nor
 * correlate state.  Pure function of (seed, stream): the mapping is part
 * of the determinism contract.
 */
std::uint64_t deriveStreamSeed(std::uint64_t seed, std::uint64_t stream);

/// xoshiro256** 1.0 engine seeded via SplitMix64.
class Rng
{
  public:
    using result_type = std::uint64_t;

    /// Seed the generator; the same seed yields the same stream.
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    /// Engine for child stream @p stream of @p seed (cheap split for
    /// parallel shards; see deriveStreamSeed).
    static Rng forStream(std::uint64_t seed, std::uint64_t stream);

    /// Smallest value produced (UniformRandomBitGenerator contract).
    static constexpr result_type min() { return 0; }

    /// Largest value produced.
    static constexpr result_type max() { return ~result_type(0); }

    /// Next raw 64-bit value.
    result_type operator()();

    /// Uniform double in [0, 1).
    double uniform();

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi);

    /// Uniform integer in [lo, hi] inclusive.
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /// True with probability @p p.
    bool bernoulli(double p);

    /// Exponential variate with the given mean (> 0).
    double exponential(double mean);

    /// Pareto variate with scale xm > 0 and shape alpha > 0.
    double pareto(double xm, double alpha);

    /// Log-normal variate parameterized by the mean/sigma of ln X.
    double lognormal(double mu, double sigma);

    /// Standard normal variate (Box-Muller).
    double normal(double mean = 0.0, double stddev = 1.0);

    /// Serialize the engine state (checkpoint support).
    void saveState(snap::StateWriter& w) const;

    /// Restore an engine state written by saveState.
    void loadState(snap::StateReader& r);

  private:
    std::uint64_t s_[4];
    bool have_cached_normal_ = false;
    double cached_normal_ = 0.0;
};

/**
 * Zipf(theta) sampler over {0, ..., n-1} using precomputed inverse-CDF
 * lookup.  theta == 0 degenerates to uniform; larger theta skews toward
 * low ranks.  Used to model hot spots in the OLTP/TPC-C workloads.
 */
class ZipfSampler
{
  public:
    /// @param n population size (> 0); @param theta skew (>= 0).
    ZipfSampler(std::size_t n, double theta);

    /// Draw one rank in [0, n).
    std::size_t operator()(Rng& rng) const;

    /// Population size.
    std::size_t size() const { return cdf_.size(); }

  private:
    std::vector<double> cdf_;
};

} // namespace hddtherm::util

#endif // HDDTHERM_UTIL_RANDOM_H
