#include "util/ascii_plot.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "util/error.h"

namespace hddtherm::util {

namespace {

constexpr char kGlyphs[] = {'*', 'o', '+', 'x', '#', '@', '%', '&'};

std::string
formatTick(double v)
{
    char buf[32];
    if (std::fabs(v) >= 1e5 || (v != 0.0 && std::fabs(v) < 1e-2))
        std::snprintf(buf, sizeof(buf), "%.2g", v);
    else if (std::fabs(v) >= 100.0)
        std::snprintf(buf, sizeof(buf), "%.0f", v);
    else
        std::snprintf(buf, sizeof(buf), "%.2f", v);
    return buf;
}

} // namespace

AsciiPlot::AsciiPlot() : AsciiPlot(Options{}) {}

AsciiPlot::AsciiPlot(Options options) : options_(std::move(options))
{
    HDDTHERM_REQUIRE(options_.width >= 8 && options_.height >= 4,
                     "plot area too small");
}

void
AsciiPlot::addSeries(std::string name,
                     std::vector<std::pair<double, double>> points)
{
    HDDTHERM_REQUIRE(!points.empty(), "empty series");
    if (options_.logY) {
        for (const auto& [x, y] : points) {
            (void)x;
            HDDTHERM_REQUIRE(y > 0.0, "log-y plot needs positive values");
        }
    }
    Series s;
    s.name = std::move(name);
    s.points = std::move(points);
    s.glyph = kGlyphs[series_.size() % sizeof(kGlyphs)];
    series_.push_back(std::move(s));
}

void
AsciiPlot::print(std::ostream& os) const
{
    HDDTHERM_REQUIRE(!series_.empty(), "nothing to plot");

    double xmin = std::numeric_limits<double>::infinity();
    double xmax = -xmin;
    double ymin = xmin;
    double ymax = -xmin;
    auto yv = [this](double y) {
        return options_.logY ? std::log10(y) : y;
    };
    for (const auto& s : series_) {
        for (const auto& [x, y] : s.points) {
            xmin = std::min(xmin, x);
            xmax = std::max(xmax, x);
            ymin = std::min(ymin, yv(y));
            ymax = std::max(ymax, yv(y));
        }
    }
    if (xmax == xmin)
        xmax = xmin + 1.0;
    if (ymax == ymin)
        ymax = ymin + 1.0;

    const int w = options_.width;
    const int h = options_.height;
    std::vector<std::string> canvas(std::size_t(h),
                                    std::string(std::size_t(w), ' '));

    auto col = [&](double x) {
        return std::clamp(
            int(std::lround((x - xmin) / (xmax - xmin) * (w - 1))), 0,
            w - 1);
    };
    auto row = [&](double y) {
        const int r = int(std::lround((yv(y) - ymin) / (ymax - ymin) *
                                      (h - 1)));
        return std::clamp(h - 1 - r, 0, h - 1);
    };

    for (const auto& s : series_) {
        // Connect consecutive points with interpolated marks so sparse
        // series still read as curves.
        for (std::size_t i = 0; i + 1 < s.points.size(); ++i) {
            const auto [x0, y0] = s.points[i];
            const auto [x1, y1] = s.points[i + 1];
            const int c0 = col(x0);
            const int c1 = col(x1);
            const int steps = std::max(1, std::abs(c1 - c0));
            for (int k = 0; k <= steps; ++k) {
                const double t = double(k) / steps;
                const double x = x0 + t * (x1 - x0);
                double y;
                if (options_.logY) {
                    y = std::pow(10.0, std::log10(y0) +
                                           t * (std::log10(y1) -
                                                std::log10(y0)));
                } else {
                    y = y0 + t * (y1 - y0);
                }
                canvas[std::size_t(row(y))][std::size_t(col(x))] = s.glyph;
            }
        }
        // Single-point series still get their mark.
        if (s.points.size() == 1) {
            canvas[std::size_t(row(s.points[0].second))]
                  [std::size_t(col(s.points[0].first))] = s.glyph;
        }
    }

    const std::string y_top =
        formatTick(options_.logY ? std::pow(10.0, ymax) : ymax);
    const std::string y_bot =
        formatTick(options_.logY ? std::pow(10.0, ymin) : ymin);
    const std::size_t margin = std::max(y_top.size(), y_bot.size()) + 1;

    if (!options_.yLabel.empty() || options_.logY) {
        os << std::string(margin, ' ') << options_.yLabel
           << (options_.logY ? " (log scale)" : "") << '\n';
    }
    for (int r = 0; r < h; ++r) {
        std::string label(margin, ' ');
        if (r == 0) {
            label = y_top + std::string(margin - y_top.size(), ' ');
        } else if (r == h - 1) {
            label = y_bot + std::string(margin - y_bot.size(), ' ');
        }
        os << label << '|' << canvas[std::size_t(r)] << '\n';
    }
    os << std::string(margin, ' ') << '+' << std::string(std::size_t(w), '-')
       << '\n';
    const std::string x_lo = formatTick(xmin);
    const std::string x_hi = formatTick(xmax);
    os << std::string(margin + 1, ' ') << x_lo
       << std::string(std::size_t(std::max(
              1, w - int(x_lo.size()) - int(x_hi.size()))), ' ')
       << x_hi << '\n';
    if (!options_.xLabel.empty())
        os << std::string(margin + 1, ' ') << options_.xLabel << '\n';

    os << std::string(margin + 1, ' ');
    for (const auto& s : series_)
        os << s.glyph << " = " << s.name << "   ";
    os << '\n';
}

std::string
AsciiPlot::str() const
{
    std::ostringstream os;
    print(os);
    return os.str();
}

} // namespace hddtherm::util
