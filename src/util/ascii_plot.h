/**
 * @file
 * ASCII line charts for the console.
 *
 * The paper's artifacts are mostly *figures*; the bench binaries print
 * their series as tables and CSV, and AsciiPlot renders them as terminal
 * charts so the curve shapes (the roadmap fall-off, the Figure 1 warm-up,
 * CDF shifts) are visible without leaving the shell.  Multiple series
 * share axes; y can be linear or log10.
 */
#ifndef HDDTHERM_UTIL_ASCII_PLOT_H
#define HDDTHERM_UTIL_ASCII_PLOT_H

#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace hddtherm::util {

/// Multi-series console line chart.
class AsciiPlot
{
  public:
    /// Plot options.
    struct Options
    {
        int width = 64;       ///< Plot-area columns.
        int height = 16;      ///< Plot-area rows.
        bool logY = false;    ///< log10 y-axis (all y must be > 0).
        std::string xLabel;   ///< Optional x-axis caption.
        std::string yLabel;   ///< Optional y-axis caption.
    };

    /// Default-sized plot (64x16, linear axes).
    AsciiPlot();

    explicit AsciiPlot(Options options);

    /**
     * Add a series; each gets a distinct glyph ('*', 'o', '+', 'x', ...)
     * shown in the legend.  Points need not share x positions across
     * series.
     */
    void addSeries(std::string name,
                   std::vector<std::pair<double, double>> points);

    /// Render the chart (axes, gridless canvas, legend) to @p os.
    void print(std::ostream& os) const;

    /// Render to a string (for tests).
    std::string str() const;

  private:
    struct Series
    {
        std::string name;
        std::vector<std::pair<double, double>> points;
        char glyph;
    };

    Options options_;
    std::vector<Series> series_;
};

} // namespace hddtherm::util

#endif // HDDTHERM_UTIL_ASCII_PLOT_H
