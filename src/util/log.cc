#include "util/log.h"

#include <atomic>
#include <cstdio>

namespace hddtherm::util {

namespace {

std::atomic<LogLevel> g_level{LogLevel::Info};

void
vlog(const char* tag, const char* fmt, std::va_list args)
{
    std::fprintf(stderr, "[hddtherm %s] ", tag);
    std::vfprintf(stderr, fmt, args);
    std::fputc('\n', stderr);
}

} // namespace

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

void
logDebug(const char* fmt, ...)
{
    if (logLevel() > LogLevel::Debug)
        return;
    std::va_list args;
    va_start(args, fmt);
    vlog("debug", fmt, args);
    va_end(args);
}

void
logInfo(const char* fmt, ...)
{
    if (logLevel() > LogLevel::Info)
        return;
    std::va_list args;
    va_start(args, fmt);
    vlog("info", fmt, args);
    va_end(args);
}

void
logWarn(const char* fmt, ...)
{
    if (logLevel() > LogLevel::Warn)
        return;
    std::va_list args;
    va_start(args, fmt);
    vlog("warn", fmt, args);
    va_end(args);
}

} // namespace hddtherm::util
