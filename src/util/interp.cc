#include "util/interp.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace hddtherm::util {

PiecewiseLinear::PiecewiseLinear(
    std::vector<std::pair<double, double>> points, Extrapolate mode)
    : points_(std::move(points)), mode_(mode)
{
    HDDTHERM_REQUIRE(!points_.empty(),
                     "PiecewiseLinear needs at least one point");
    std::sort(points_.begin(), points_.end());
    for (std::size_t i = 1; i < points_.size(); ++i) {
        HDDTHERM_REQUIRE(points_[i].first > points_[i - 1].first,
                         "PiecewiseLinear x values must be distinct");
    }
}

double
PiecewiseLinear::operator()(double x) const
{
    if (points_.size() == 1)
        return points_.front().second;

    if (x <= points_.front().first) {
        if (mode_ == Extrapolate::Clamp)
            return points_.front().second;
        const auto& [x0, y0] = points_[0];
        const auto& [x1, y1] = points_[1];
        return y0 + (x - x0) * (y1 - y0) / (x1 - x0);
    }
    if (x >= points_.back().first) {
        if (mode_ == Extrapolate::Clamp)
            return points_.back().second;
        const auto& [x0, y0] = points_[points_.size() - 2];
        const auto& [x1, y1] = points_.back();
        return y1 + (x - x1) * (y1 - y0) / (x1 - x0);
    }

    // Find the segment containing x: first knot with knot.x > x.
    auto it = std::upper_bound(
        points_.begin(), points_.end(), x,
        [](double v, const auto& p) { return v < p.first; });
    const auto& [x1, y1] = *it;
    const auto& [x0, y0] = *(it - 1);
    const double t = (x - x0) / (x1 - x0);
    return lerp(y0, y1, t);
}

PowerLawFit::PowerLawFit(const std::vector<std::pair<double, double>>& points)
{
    HDDTHERM_REQUIRE(points.size() >= 2,
                     "PowerLawFit needs at least two points");
    double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
    for (const auto& [x, y] : points) {
        HDDTHERM_REQUIRE(x > 0.0 && y > 0.0,
                         "PowerLawFit requires positive samples");
        const double lx = std::log(x);
        const double ly = std::log(y);
        sx += lx;
        sy += ly;
        sxx += lx * lx;
        sxy += lx * ly;
    }
    const double n = static_cast<double>(points.size());
    const double denom = n * sxx - sx * sx;
    HDDTHERM_REQUIRE(denom != 0.0, "PowerLawFit x values must be distinct");
    b_ = (n * sxy - sx * sy) / denom;
    a_ = std::exp((sy - b_ * sx) / n);
}

double
PowerLawFit::operator()(double x) const
{
    return a_ * std::pow(x, b_);
}

} // namespace hddtherm::util
