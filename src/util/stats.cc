#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "snap/state.h"
#include "util/error.h"

namespace hddtherm::util {

void
OnlineStats::add(double x)
{
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / double(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void
OnlineStats::merge(const OnlineStats& other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double delta = other.mean_ - mean_;
    const auto na = double(n_);
    const auto nb = double(other.n_);
    const double nt = na + nb;
    m2_ += other.m2_ + delta * delta * na * nb / nt;
    mean_ += delta * nb / nt;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
OnlineStats::stddev() const
{
    return std::sqrt(variance());
}

void
OnlineStats::saveState(snap::StateWriter& w) const
{
    w.u64("stats.n", n_);
    w.f64("stats.mean", mean_);
    w.f64("stats.m2", m2_);
    w.f64("stats.min", min_);
    w.f64("stats.max", max_);
}

void
OnlineStats::loadState(snap::StateReader& r)
{
    n_ = r.u64("stats.n");
    mean_ = r.f64("stats.mean");
    m2_ = r.f64("stats.m2");
    min_ = r.f64("stats.min");
    max_ = r.f64("stats.max");
}

Histogram::Histogram(std::vector<double> upper_edges)
    : edges_(std::move(upper_edges)), counts_(edges_.size() + 1, 0)
{
    HDDTHERM_REQUIRE(!edges_.empty(), "Histogram needs at least one edge");
    for (std::size_t i = 1; i < edges_.size(); ++i) {
        HDDTHERM_REQUIRE(edges_[i] > edges_[i - 1],
                         "Histogram edges must be strictly increasing");
    }
}

Histogram
Histogram::paperResponseTimeBins()
{
    return Histogram({5, 10, 20, 40, 60, 90, 120, 150, 200});
}

void
Histogram::add(double x)
{
    auto it = std::lower_bound(edges_.begin(), edges_.end(), x);
    const auto idx = std::size_t(it - edges_.begin()); // == size() -> overflow
    ++counts_[idx];
    ++total_;
}

void
Histogram::merge(const Histogram& other)
{
    HDDTHERM_REQUIRE(edges_ == other.edges_,
                     "Histogram::merge: bin edges differ");
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    total_ += other.total_;
}

std::vector<double>
Histogram::cdf() const
{
    std::vector<double> out(edges_.size(), 0.0);
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < edges_.size(); ++i) {
        cum += counts_[i];
        out[i] = total_ ? double(cum) / double(total_) : 0.0;
    }
    return out;
}

double
Histogram::overflowFraction() const
{
    return total_ ? double(counts_.back()) / double(total_) : 0.0;
}

void
Histogram::saveState(snap::StateWriter& w) const
{
    w.f64vec("hist.edges", edges_);
    w.u64vec("hist.counts", counts_);
    w.u64("hist.total", total_);
}

void
Histogram::loadState(snap::StateReader& r)
{
    const auto edges = r.f64vec("hist.edges");
    HDDTHERM_REQUIRE(edges == edges_,
                     "checkpoint section '" + r.section() +
                         "': histogram bin edges do not match this run's "
                         "configuration");
    const auto counts = r.u64vec("hist.counts");
    HDDTHERM_REQUIRE(counts.size() == counts_.size(),
                     "checkpoint section '" + r.section() +
                         "': histogram bin count mismatch");
    counts_ = counts;
    total_ = r.u64("hist.total");
}

double
Histogram::quantile(double p) const
{
    HDDTHERM_REQUIRE(p >= 0.0 && p <= 1.0, "quantile: p out of range");
    if (total_ == 0)
        return 0.0;
    const double target = p * double(total_);
    double cum = 0.0;
    double prev_edge = 0.0;
    for (std::size_t i = 0; i < edges_.size(); ++i) {
        const auto c = double(counts_[i]);
        if (cum + c >= target) {
            const double frac = c > 0.0 ? (target - cum) / c : 0.0;
            return prev_edge + frac * (edges_[i] - prev_edge);
        }
        cum += c;
        prev_edge = edges_[i];
    }
    return edges_.back(); // overflow bin: report the last finite edge
}

} // namespace hddtherm::util
