#include "util/random.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "snap/state.h"
#include "util/error.h"

namespace hddtherm::util {

namespace {

/// SplitMix64 step, used only for seeding.
std::uint64_t
splitmix64(std::uint64_t& x)
{
    x += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

std::uint64_t
deriveStreamSeed(std::uint64_t seed, std::uint64_t stream)
{
    // Two dependent SplitMix64 steps: the first whitens the root seed, the
    // second folds in the stream index.  Adjacent indices land far apart,
    // and stream 0 is NOT the root stream (the fold still perturbs it), so
    // a parent Rng(seed) never aliases any child.
    std::uint64_t x = seed;
    std::uint64_t derived = splitmix64(x);
    x = derived ^ (stream + 0xD1B54A32D192ED03ull);
    return splitmix64(x);
}

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto& s : s_)
        s = splitmix64(sm);
}

Rng
Rng::forStream(std::uint64_t seed, std::uint64_t stream)
{
    return Rng(deriveStreamSeed(seed, stream));
}

Rng::result_type
Rng::operator()()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53-bit mantissa from the high bits.
    return double((*this)() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    HDDTHERM_REQUIRE(lo <= hi, "uniformInt: empty range");
    const auto span = std::uint64_t(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return std::int64_t((*this)());
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = max() - max() % span;
    std::uint64_t v;
    do {
        v = (*this)();
    } while (v >= limit);
    return lo + std::int64_t(v % span);
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

double
Rng::exponential(double mean)
{
    HDDTHERM_REQUIRE(mean > 0.0, "exponential: mean must be positive");
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

double
Rng::pareto(double xm, double alpha)
{
    HDDTHERM_REQUIRE(xm > 0.0 && alpha > 0.0, "pareto: invalid parameters");
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return xm / std::pow(u, 1.0 / alpha);
}

double
Rng::lognormal(double mu, double sigma)
{
    return std::exp(normal(mu, sigma));
}

double
Rng::normal(double mean, double stddev)
{
    if (have_cached_normal_) {
        have_cached_normal_ = false;
        return mean + stddev * cached_normal_;
    }
    double u1;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    cached_normal_ = r * std::sin(theta);
    have_cached_normal_ = true;
    return mean + stddev * r * std::cos(theta);
}

void
Rng::saveState(snap::StateWriter& w) const
{
    w.u64vec("rng.s", {s_[0], s_[1], s_[2], s_[3]});
    w.boolean("rng.have_cached_normal", have_cached_normal_);
    w.f64("rng.cached_normal", cached_normal_);
}

void
Rng::loadState(snap::StateReader& r)
{
    const auto s = r.u64vec("rng.s");
    HDDTHERM_REQUIRE(s.size() == 4, "checkpoint section '" + r.section() +
                                        "': rng state must hold 4 words");
    std::copy(s.begin(), s.end(), s_);
    have_cached_normal_ = r.boolean("rng.have_cached_normal");
    cached_normal_ = r.f64("rng.cached_normal");
}

ZipfSampler::ZipfSampler(std::size_t n, double theta)
{
    HDDTHERM_REQUIRE(n > 0, "ZipfSampler: empty population");
    HDDTHERM_REQUIRE(theta >= 0.0, "ZipfSampler: negative skew");
    cdf_.resize(n);
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        sum += 1.0 / std::pow(double(i + 1), theta);
        cdf_[i] = sum;
    }
    for (auto& v : cdf_)
        v /= sum;
}

std::size_t
ZipfSampler::operator()(Rng& rng) const
{
    const double u = rng.uniform();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    if (it == cdf_.end())
        --it;
    return std::size_t(it - cdf_.begin());
}

} // namespace hddtherm::util
