/**
 * @file
 * Online statistics and histogram/CDF accumulators.
 *
 * The simulator's metrics (paper Figure 4) are response-time CDFs over the
 * bins {5, 10, 20, 40, 60, 90, 120, 150, 200, 200+} ms plus the mean.  These
 * accumulators are also reused by the trace generators' self-checks and the
 * property tests.
 */
#ifndef HDDTHERM_UTIL_STATS_H
#define HDDTHERM_UTIL_STATS_H

#include <cstdint>
#include <limits>
#include <vector>

namespace hddtherm::snap {
class StateWriter;
class StateReader;
} // namespace hddtherm::snap

namespace hddtherm::util {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
class OnlineStats
{
  public:
    /// Add one sample.
    void add(double x);

    /// Merge another accumulator into this one.
    void merge(const OnlineStats& other);

    /// Number of samples observed.
    std::uint64_t count() const { return n_; }

    /// Arithmetic mean (0 if empty).
    double mean() const { return n_ ? mean_ : 0.0; }

    /// Population variance (0 if fewer than two samples).
    double variance() const { return n_ > 1 ? m2_ / double(n_) : 0.0; }

    /// Standard deviation.
    double stddev() const;

    /// Smallest sample (+inf if empty).
    double min() const { return min_; }

    /// Largest sample (-inf if empty).
    double max() const { return max_; }

    /// Sum of all samples.
    double sum() const { return mean_ * double(n_); }

    /// Serialize the accumulator bitwise (checkpoint support).
    void saveState(snap::StateWriter& w) const;

    /// Restore an accumulator written by saveState.
    void loadState(snap::StateReader& r);

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Histogram over caller-supplied upper-edge bins; samples above the last
 * edge land in an overflow bin.  cdf() reports cumulative fractions at each
 * edge, matching the paper's Figure 4 presentation.
 */
class Histogram
{
  public:
    /// @param upper_edges strictly increasing bin upper edges.
    explicit Histogram(std::vector<double> upper_edges);

    /// Bin edges used by the paper's response-time CDFs, in milliseconds.
    static Histogram paperResponseTimeBins();

    /// Add one sample; it is counted in the first bin whose edge >= x.
    void add(double x);

    /**
     * Merge another histogram accumulated over identical edges (per-bin
     * count addition; integer, so merge order cannot perturb the result).
     * @throws util::ModelError on mismatched edges.
     */
    void merge(const Histogram& other);

    /// Total samples.
    std::uint64_t count() const { return total_; }

    /// Upper edge of bin @p i.
    double edge(std::size_t i) const { return edges_[i]; }

    /// Number of finite-edge bins (excludes overflow).
    std::size_t bins() const { return edges_.size(); }

    /// Raw count in bin @p i (i == bins() selects the overflow bin).
    std::uint64_t binCount(std::size_t i) const { return counts_[i]; }

    /**
     * Cumulative fraction of samples <= each edge.  The returned vector has
     * bins() entries; the overflow bin brings the total to 1 and is implied.
     */
    std::vector<double> cdf() const;

    /// Fraction of samples above the last edge.
    double overflowFraction() const;

    /// Approximate p-quantile via linear interpolation within bins.
    double quantile(double p) const;

    /// Serialize edges and counts (checkpoint support).
    void saveState(snap::StateWriter& w) const;

    /// Restore counts written by saveState; edges must match this
    /// histogram's configuration (@throws util::ModelError otherwise).
    void loadState(snap::StateReader& r);

  private:
    std::vector<double> edges_;
    std::vector<std::uint64_t> counts_; // edges_.size() + 1 (overflow last)
    std::uint64_t total_ = 0;
};

} // namespace hddtherm::util

#endif // HDDTHERM_UTIL_STATS_H
