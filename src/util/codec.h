/**
 * @file
 * A small LZ-class codec for checkpoint section payloads.
 *
 * The encoded stream is self-describing and byte-oriented:
 *
 *   u64 decoded size (little-endian) | sequences...
 *
 * Each sequence is one token byte (high nibble: literal run length, low
 * nibble: match length - 4, either nibble 15 spilling into 255-capped
 * extension bytes), the literals, and — unless the sequence is the
 * stream's final, literal-only one — a 24-bit little-endian match offset
 * reaching up to 16 MiB back (wide enough that a delta-encoded section
 * can match anywhere in its base, not just a trailing window).  Matches
 * may overlap their own output
 * (run-length shapes) and, in dictionary mode, reach back into a caller-
 * supplied preset dictionary that is not part of the output; delta
 * checkpoints use that to store a changed section as a cheap edit script
 * against the base checkpoint's copy of the same section.
 *
 * The decoder is strict: truncation anywhere, an offset before the start
 * of history, output disagreeing with the declared size, or trailing
 * bytes all throw util::ModelError naming the caller's context.
 * Compression is deterministic — equal inputs (and dictionaries) always
 * produce equal streams, which the checkpoint bit-identity contract
 * relies on (docs/checkpoint.md).
 *
 * The implementation is compiled into the bottom-layer hddtherm_snap
 * library (see src/snap/CMakeLists.txt): hddtherm_util publicly links
 * hddtherm_snap, so the codec living in hddtherm_util would be a cycle.
 */
#ifndef HDDTHERM_UTIL_CODEC_H
#define HDDTHERM_UTIL_CODEC_H

#include <cstdint>
#include <string>
#include <vector>

namespace hddtherm::util::codec {

/// Furthest back a match may reach (offsets are 24-bit).
inline constexpr std::size_t kMaxOffset = (std::size_t(1) << 24) - 1;

/// Shortest encodable match.
inline constexpr std::size_t kMinMatch = 4;

/// Compress @p size bytes at @p data.
std::vector<std::uint8_t> compress(const std::uint8_t* data,
                                   std::size_t size);

/// Compress @p data against a preset dictionary: matches may reach into
/// the last kMaxOffset bytes of @p dict, which the decoder must re-supply.
std::vector<std::uint8_t>
compressWithDict(const std::vector<std::uint8_t>& dict,
                 const std::uint8_t* data, std::size_t size);

/**
 * Decode a compress() stream.  @p context names the payload in error
 * messages (e.g. "checkpoint 'x' section 'y'").
 * @throws util::ModelError on any truncation or corruption.
 */
std::vector<std::uint8_t> decompress(const std::uint8_t* data,
                                     std::size_t size,
                                     const std::string& context);

/// Decode a compressWithDict() stream against the same dictionary.
std::vector<std::uint8_t>
decompressWithDict(const std::vector<std::uint8_t>& dict,
                   const std::uint8_t* data, std::size_t size,
                   const std::string& context);

/// Decoded size declared in a stream's header (cheap: reads 8 bytes).
std::uint64_t decodedSize(const std::uint8_t* data, std::size_t size,
                          const std::string& context);

/// @name Convenience overloads over whole vectors.
/// @{
std::vector<std::uint8_t> compress(const std::vector<std::uint8_t>& data);
std::vector<std::uint8_t> decompress(const std::vector<std::uint8_t>& data,
                                     const std::string& context);
/// @}

} // namespace hddtherm::util::codec

#endif // HDDTHERM_UTIL_CODEC_H
