#include "util/codec.h"

#include <cstring>

#include "util/error.h"

namespace hddtherm::util::codec {

namespace {

constexpr unsigned kHashBits = 15;
constexpr std::size_t kHashSize = std::size_t(1) << kHashBits;
/// How many chain candidates the matcher inspects per position.  Deeper
/// searches buy ratio on the highly repetitive checkpoint field streams
/// (names repeat across disks/bays) at linear encode cost.
constexpr int kMaxChainDepth = 64;

std::uint32_t
hash4(const std::uint8_t* p)
{
    const std::uint32_t v = std::uint32_t(p[0]) | std::uint32_t(p[1]) << 8 |
                            std::uint32_t(p[2]) << 16 |
                            std::uint32_t(p[3]) << 24;
    return (v * 2654435761u) >> (32 - kHashBits);
}

void
appendLe(std::vector<std::uint8_t>& out, std::uint64_t v, unsigned bytes)
{
    for (unsigned i = 0; i < bytes; ++i)
        out.push_back(std::uint8_t(v >> (8 * i)));
}

/// Emit one run length past a full nibble: 255-capped extension bytes.
void
appendExtension(std::vector<std::uint8_t>& out, std::size_t rem)
{
    while (rem >= 255) {
        out.push_back(255);
        rem -= 255;
    }
    out.push_back(std::uint8_t(rem));
}

/// One sequence: literals then (unless final) a match.
void
emitSequence(std::vector<std::uint8_t>& out, const std::uint8_t* literals,
             std::size_t lit_len, std::size_t offset, std::size_t match_len)
{
    const std::size_t lit_nibble = lit_len < 15 ? lit_len : 15;
    const std::size_t match_code = match_len ? match_len - kMinMatch : 0;
    const std::size_t match_nibble = match_code < 15 ? match_code : 15;
    out.push_back(std::uint8_t(lit_nibble << 4 | match_nibble));
    if (lit_nibble == 15)
        appendExtension(out, lit_len - 15);
    out.insert(out.end(), literals, literals + lit_len);
    if (match_len == 0)
        return; // Final, literal-only sequence: no offset follows.
    appendLe(out, offset, 3);
    if (match_nibble == 15)
        appendExtension(out, match_code - 15);
}

/// Shared encoder: @p work is dict + data contiguously; only the data
/// region (from @p start) is emitted, but matches may reach into the
/// dictionary prefix.
std::vector<std::uint8_t>
compressImpl(const std::uint8_t* work, std::size_t start, std::size_t total)
{
    const std::size_t n = total - start;
    std::vector<std::uint8_t> out;
    out.reserve(8 + n / 2 + 16);
    appendLe(out, n, 8);
    if (n == 0)
        return out;

    // Hash-chain matcher: head[h] is the newest position hashing to h,
    // prev[] links back through older ones.
    std::vector<std::int32_t> head(kHashSize, -1);
    std::vector<std::int32_t> prev(total, -1);
    const auto insert = [&](std::size_t pos) {
        if (pos + kMinMatch > total)
            return;
        const std::uint32_t h = hash4(work + pos);
        prev[pos] = head[h];
        head[h] = std::int32_t(pos);
    };
    for (std::size_t i = 0; i < start; ++i)
        insert(i);

    std::size_t pos = start;
    std::size_t lit_start = start;
    while (pos + kMinMatch <= total) {
        std::size_t best_len = 0;
        std::size_t best_pos = 0;
        int depth = 0;
        for (std::int32_t c = head[hash4(work + pos)];
             c >= 0 && depth < kMaxChainDepth; c = prev[std::size_t(c)]) {
            ++depth;
            const auto cand = std::size_t(c);
            if (pos - cand > kMaxOffset)
                break; // Chains age monotonically; older is only further.
            if (pos + best_len >= total)
                break; // The best match already reaches the end.
            if (work[cand + best_len] != work[pos + best_len])
                continue; // Cheap reject: cannot beat the current best.
            std::size_t len = 0;
            const std::size_t cap = total - pos;
            while (len < cap && work[cand + len] == work[pos + len])
                ++len;
            if (len > best_len) {
                best_len = len;
                best_pos = cand;
            }
        }
        if (best_len >= kMinMatch) {
            emitSequence(out, work + lit_start, pos - lit_start,
                         pos - best_pos, best_len);
            const std::size_t end = pos + best_len;
            for (; pos < end; ++pos)
                insert(pos);
            lit_start = pos;
        } else {
            insert(pos);
            ++pos;
        }
    }
    // Trailing literals, if any; a stream may also end right after a
    // match (the decoder stops once the declared size is reached).
    if (lit_start < total)
        emitSequence(out, work + lit_start, total - lit_start, 0, 0);
    return out;
}

/// Shared decoder; @p dict supplies pre-loaded history (not re-emitted).
std::vector<std::uint8_t>
decompressImpl(const std::uint8_t* dict, std::size_t dict_len,
               const std::uint8_t* in, std::size_t n,
               const std::string& context)
{
    const auto fail = [&](const std::string& what) -> void {
        throw ModelError(context + ": " + what);
    };
    if (n < 8)
        fail("compressed stream is too short to hold its size header");
    std::uint64_t raw_size = 0;
    for (unsigned i = 0; i < 8; ++i)
        raw_size |= std::uint64_t(in[i]) << (8 * i);

    // History starts with the dictionary; the decoded payload is the
    // suffix past it.  Growth is bounds-checked against the declared
    // size, so a corrupt header cannot drive an unbounded allocation.
    std::vector<std::uint8_t> out(dict, dict + dict_len);
    std::size_t pos = 8;
    const auto readRun = [&](std::size_t nibble) {
        std::size_t run = nibble;
        if (nibble == 15) {
            std::uint8_t b = 255;
            while (b == 255) {
                if (pos >= n)
                    fail("compressed stream is truncated inside a "
                         "run-length extension");
                b = in[pos++];
                run += b;
            }
        }
        return run;
    };
    while (out.size() - dict_len < raw_size) {
        if (pos >= n)
            fail("compressed stream is truncated (declared " +
                 std::to_string(raw_size) + " bytes, decoded " +
                 std::to_string(out.size() - dict_len) + ")");
        const std::uint8_t token = in[pos++];
        const std::size_t lit_len = readRun(std::size_t(token) >> 4);
        if (lit_len > n - pos)
            fail("compressed stream is truncated inside a literal run");
        if (out.size() - dict_len + lit_len > raw_size)
            fail("literal run overruns the declared decoded size");
        out.insert(out.end(), in + pos, in + pos + lit_len);
        pos += lit_len;
        if (pos == n)
            break; // Final sequence: literals only.
        if (pos + 3 > n)
            fail("compressed stream is truncated inside a match offset");
        const std::size_t offset = std::size_t(in[pos]) |
                                   std::size_t(in[pos + 1]) << 8 |
                                   std::size_t(in[pos + 2]) << 16;
        pos += 3;
        if (offset == 0 || offset > out.size())
            fail("match offset reaches before the start of history");
        const std::size_t match_len =
            readRun(std::size_t(token) & 15) + kMinMatch;
        if (out.size() - dict_len + match_len > raw_size)
            fail("match overruns the declared decoded size");
        // Byte-by-byte: overlapping matches reproduce periodic runs.
        for (std::size_t i = 0; i < match_len; ++i)
            out.push_back(out[out.size() - offset]);
    }
    if (out.size() - dict_len != raw_size)
        fail("compressed stream ended " +
             std::to_string(raw_size - (out.size() - dict_len)) +
             " bytes short of its declared size");
    if (pos != n)
        fail("compressed stream carries trailing garbage");
    out.erase(out.begin(), out.begin() + std::ptrdiff_t(dict_len));
    return out;
}

} // namespace

std::vector<std::uint8_t>
compress(const std::uint8_t* data, std::size_t size)
{
    return compressImpl(data, 0, size);
}

std::vector<std::uint8_t>
compressWithDict(const std::vector<std::uint8_t>& dict,
                 const std::uint8_t* data, std::size_t size)
{
    const std::size_t use = dict.size() < kMaxOffset ? dict.size()
                                                     : kMaxOffset;
    std::vector<std::uint8_t> work;
    work.reserve(use + size);
    work.insert(work.end(), dict.end() - std::ptrdiff_t(use), dict.end());
    work.insert(work.end(), data, data + size);
    return compressImpl(work.data(), use, work.size());
}

std::vector<std::uint8_t>
decompress(const std::uint8_t* data, std::size_t size,
           const std::string& context)
{
    return decompressImpl(nullptr, 0, data, size, context);
}

std::vector<std::uint8_t>
decompressWithDict(const std::vector<std::uint8_t>& dict,
                   const std::uint8_t* data, std::size_t size,
                   const std::string& context)
{
    const std::size_t use = dict.size() < kMaxOffset ? dict.size()
                                                     : kMaxOffset;
    return decompressImpl(dict.data() + (dict.size() - use), use, data,
                          size, context);
}

std::uint64_t
decodedSize(const std::uint8_t* data, std::size_t size,
            const std::string& context)
{
    HDDTHERM_REQUIRE(size >= 8, context + ": compressed stream is too "
                                          "short to hold its size header");
    std::uint64_t raw_size = 0;
    for (unsigned i = 0; i < 8; ++i)
        raw_size |= std::uint64_t(data[i]) << (8 * i);
    return raw_size;
}

std::vector<std::uint8_t>
compress(const std::vector<std::uint8_t>& data)
{
    return compress(data.data(), data.size());
}

std::vector<std::uint8_t>
decompress(const std::vector<std::uint8_t>& data, const std::string& context)
{
    return decompress(data.data(), data.size(), context);
}

} // namespace hddtherm::util::codec
