#include "util/roots.h"

#include <cmath>

#include "util/error.h"

namespace hddtherm::util {

double
bisect(const std::function<double(double)>& f, double lo, double hi,
       const BisectOptions& opt)
{
    HDDTHERM_REQUIRE(lo <= hi, "bisect: invalid bracket");
    double flo = f(lo);
    double fhi = f(hi);
    if (flo == 0.0)
        return lo;
    if (fhi == 0.0)
        return hi;
    HDDTHERM_REQUIRE(std::signbit(flo) != std::signbit(fhi),
                     "bisect: root not bracketed");

    for (int i = 0; i < opt.maxIter && (hi - lo) > opt.xTol; ++i) {
        const double mid = 0.5 * (lo + hi);
        const double fmid = f(mid);
        if (fmid == 0.0)
            return mid;
        if (std::signbit(fmid) == std::signbit(flo)) {
            lo = mid;
            flo = fmid;
        } else {
            hi = mid;
        }
    }
    return 0.5 * (lo + hi);
}

double
maxSatisfying(const std::function<bool(double)>& pred, double lo, double hi,
              const BisectOptions& opt)
{
    HDDTHERM_REQUIRE(lo <= hi, "maxSatisfying: invalid bracket");
    HDDTHERM_REQUIRE(pred(lo), "maxSatisfying: predicate false at lo");
    if (pred(hi))
        return hi;

    // Invariant: pred(lo) true, pred(hi) false.
    for (int i = 0; i < opt.maxIter && (hi - lo) > opt.xTol; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (pred(mid)) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    return lo;
}

} // namespace hddtherm::util
