/**
 * @file
 * Error-reporting primitives.
 *
 * Follows the gem5 fatal()/panic() discipline:
 *  - ModelError (via HDDTHERM_REQUIRE) reports conditions that are the
 *    caller's fault — invalid configuration, out-of-domain arguments.  These
 *    are recoverable by fixing the input, so they are thrown as exceptions.
 *  - HDDTHERM_ASSERT guards internal invariants whose violation indicates a
 *    bug in HDDTherm itself; it aborts like panic().
 */
#ifndef HDDTHERM_UTIL_ERROR_H
#define HDDTHERM_UTIL_ERROR_H

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace hddtherm::util {

/// Exception thrown for user-caused errors (bad configuration/arguments).
class ModelError : public std::runtime_error
{
  public:
    explicit ModelError(const std::string& what_arg)
        : std::runtime_error(what_arg)
    {}
};

namespace detail {

[[noreturn]] inline void
panicFail(const char* cond, const char* file, int line)
{
    std::fprintf(stderr, "hddtherm panic: assertion '%s' failed at %s:%d\n",
                 cond, file, line);
    std::abort();
}

} // namespace detail

} // namespace hddtherm::util

/// Validate a user-facing precondition; throws ModelError on failure.
#define HDDTHERM_REQUIRE(cond, msg)                                          \
    do {                                                                     \
        if (!(cond)) {                                                       \
            throw ::hddtherm::util::ModelError(                              \
                std::string(msg) + " [" #cond "]");                          \
        }                                                                    \
    } while (false)

/// Validate an internal invariant; aborts on failure (simulator bug).
#define HDDTHERM_ASSERT(cond)                                                \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::hddtherm::util::detail::panicFail(#cond, __FILE__, __LINE__);  \
        }                                                                    \
    } while (false)

#endif // HDDTHERM_UTIL_ERROR_H
