#include "dtm/throttle.h"

#include "thermal/envelope.h"

#include <algorithm>

#include "util/error.h"

namespace hddtherm::dtm {

ThrottleExperiment::ThrottleExperiment(const ThrottleConfig& config)
    : config_(config)
{
    HDDTHERM_REQUIRE(config_.fullRpm > 0.0, "rpm must be positive");
    HDDTHERM_REQUIRE(!config_.lowRpm || *config_.lowRpm < config_.fullRpm,
                     "low RPM must be below full RPM");
    HDDTHERM_REQUIRE(config_.timestepSec > 0.0, "invalid timestep");
    HDDTHERM_REQUIRE(config_.warmupCycles >= 0, "negative warmup");

    // The premise of throttling: running flat out violates the envelope,
    // and the cooling configuration relieves it.
    auto model = makeModel();
    applyHot(model);
    const double hot = model.steadyAirTempC();
    HDDTHERM_REQUIRE(hot > config_.envelopeC,
                     "operating point already inside the envelope; "
                     "no throttling needed");
    applyCool(model);
    const double cool = model.steadyAirTempC();
    HDDTHERM_REQUIRE(cool < config_.envelopeC,
                     "cooling configuration cannot get below the envelope; "
                     "use a lower cooling RPM");
}

thermal::DriveThermalModel
ThrottleExperiment::makeModel() const
{
    thermal::DriveThermalConfig cfg;
    cfg.geometry.diameterInches = config_.diameterInches;
    cfg.geometry.platters = config_.platters;
    cfg.rpm = config_.fullRpm;
    cfg.ambientC = config_.ambientC;
    cfg.coolingScale = thermal::coolingScaleForPlatters(config_.platters);
    return thermal::DriveThermalModel(cfg);
}

void
ThrottleExperiment::applyHot(thermal::DriveThermalModel& model) const
{
    model.setVcmDuty(1.0);
    model.setRpm(config_.fullRpm);
}

void
ThrottleExperiment::applyCool(thermal::DriveThermalModel& model) const
{
    model.setVcmDuty(0.0);
    if (config_.lowRpm)
        model.setRpm(*config_.lowRpm);
}

double
ThrottleExperiment::heatToEnvelope(thermal::DriveThermalModel& model,
                                   double dt) const
{
    double elapsed = 0.0;
    while (model.airTempC() < config_.envelopeC &&
           elapsed < config_.maxHeatSec) {
        model.advance(dt, dt);
        elapsed += dt;
    }
    return elapsed;
}

ThrottleResult
ThrottleExperiment::run(double tcool_sec) const
{
    HDDTHERM_REQUIRE(tcool_sec > 0.0, "cooling time must be positive");

    auto model = makeModel();
    ThrottleResult out;
    out.tcoolSec = tcool_sec;
    applyHot(model);
    out.hotSteadyC = model.steadyAirTempC();
    applyCool(model);
    out.coolSteadyC = model.steadyAirTempC();

    // Start the drive at the moment its warm-up first touches the
    // envelope (paper protocol: "we set the initial temperature to the
    // thermal envelope"), then alternate cool/heat phases.  The timestep
    // is refined below the paper's 0.1 s for sub-second cooling times so
    // the measured ratio is not dominated by quantization.
    const double dt = std::min(config_.timestepSec, tcool_sec / 10.0);
    applyHot(model);
    model.settleWithAirAt(config_.envelopeC);
    for (int cycle = 0; cycle <= config_.warmupCycles; ++cycle) {
        applyCool(model);
        model.advance(tcool_sec, dt);
        out.minTempC = model.airTempC();
        applyHot(model);
        out.theatSec = heatToEnvelope(model, dt);
    }
    return out;
}

std::vector<ThrottleResult>
ThrottleExperiment::sweep(const std::vector<double>& tcool_secs) const
{
    std::vector<ThrottleResult> out;
    out.reserve(tcool_secs.size());
    for (const double t : tcool_secs)
        out.push_back(run(t));
    return out;
}

std::vector<ThrottleTracePoint>
ThrottleExperiment::temperatureTrace(double tcool_sec, int cycles,
                                     double sample_dt) const
{
    HDDTHERM_REQUIRE(tcool_sec > 0.0 && cycles >= 1 && sample_dt > 0.0,
                     "invalid trace request");
    auto model = makeModel();
    applyHot(model);
    model.settleWithAirAt(config_.envelopeC);

    std::vector<ThrottleTracePoint> points;
    double now = 0.0;
    points.push_back({now, model.airTempC(), false});

    auto sample_phase = [&](double duration, bool cooling) {
        double done = 0.0;
        while (done < duration) {
            const double step = std::min(sample_dt, duration - done);
            model.advance(step, config_.timestepSec);
            done += step;
            now += step;
            points.push_back({now, model.airTempC(), cooling});
        }
    };

    for (int cycle = 0; cycle < cycles; ++cycle) {
        applyCool(model);
        sample_phase(tcool_sec, true);
        applyHot(model);
        // Heat until the envelope, sampling along the way.
        double elapsed = 0.0;
        while (model.airTempC() < config_.envelopeC &&
               elapsed < config_.maxHeatSec) {
            const double step = sample_dt;
            model.advance(step, config_.timestepSec);
            elapsed += step;
            now += step;
            points.push_back({now, model.airTempC(), false});
        }
    }
    return points;
}

} // namespace hddtherm::dtm
