#include "dtm/slack.h"

#include "hdd/capacity.h"
#include "thermal/calibration.h"

namespace hddtherm::dtm {

SlackPoint
analyzeSlack(double diameter_inches, int platters,
             const roadmap::RoadmapEngine& engine)
{
    SlackPoint out;
    out.diameterInches = diameter_inches;
    out.platters = platters;
    out.vcmPowerW = thermal::vcmPowerW(diameter_inches);

    auto cfg = engine.thermalConfig(diameter_inches, platters);
    cfg.vcmDuty = 1.0;
    out.envelopeRpm =
        thermal::maxRpmWithinEnvelope(cfg, engine.options().envelopeC);
    cfg.vcmDuty = 0.0;
    out.slackRpm =
        thermal::maxRpmWithinEnvelope(cfg, engine.options().envelopeC);
    return out;
}

std::vector<SlackRoadmapPoint>
slackRoadmap(double diameter_inches, int platters,
             const roadmap::RoadmapEngine& engine)
{
    const SlackPoint slack = analyzeSlack(diameter_inches, platters, engine);
    std::vector<SlackRoadmapPoint> out;
    const auto& opts = engine.options();
    for (int year = opts.startYear; year <= opts.endYear; ++year) {
        const auto zm = engine.layout(year, diameter_inches, platters);
        SlackRoadmapPoint p;
        p.year = year;
        p.targetIdr = engine.timeline().targetIdrMBps(year);
        p.envelopeIdr =
            hdd::internalDataRateMBps(zm, slack.envelopeRpm);
        p.slackIdr = hdd::internalDataRateMBps(zm, slack.slackRpm);
        out.push_back(p);
    }
    return out;
}

} // namespace hddtherm::dtm
