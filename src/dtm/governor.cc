#include "dtm/governor.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"
#include "util/interp.h"

namespace hddtherm::dtm {

namespace {

/// Numerical slack on steady-state comparisons: admits the
/// envelope-design speed, whose steady temperature sits exactly on the
/// envelope up to calibration epsilon.
constexpr double kSteadyToleranceC = 0.02;

} // namespace

SpeedGovernor::SpeedGovernor(const thermal::DriveThermalConfig& base,
                             std::vector<double> rpm_ladder,
                             double envelope_c, double up_margin_c,
                             double down_trigger_c)
    : ladder_(std::move(rpm_ladder)),
      envelope_(envelope_c),
      up_margin_(up_margin_c),
      down_trigger_(down_trigger_c)
{
    HDDTHERM_REQUIRE(!ladder_.empty(), "empty speed ladder");
    HDDTHERM_REQUIRE(up_margin_ >= 0.0 && down_trigger_ >= 0.0,
                     "negative governor margins");
    std::sort(ladder_.begin(), ladder_.end());
    HDDTHERM_REQUIRE(ladder_.front() > 0.0, "non-positive ladder speed");

    thermal::DriveThermalConfig cfg = base;
    for (const double rpm : ladder_) {
        cfg.rpm = rpm;
        cfg.vcmDuty = 0.0;
        steady_duty0_.push_back(thermal::steadyAirTempC(cfg));
        cfg.vcmDuty = 1.0;
        steady_duty1_.push_back(thermal::steadyAirTempC(cfg));
    }

    // Measure each rung transition's fast air jump: settle at the lower
    // rung, switch speed, and let only the fast (air) mode respond.
    for (int i = 0; i + 1 < levels(); ++i) {
        cfg.rpm = ladder_[std::size_t(i)];
        cfg.vcmDuty = 0.0;
        thermal::DriveThermalModel model(cfg);
        model.settle();
        const double before = model.airTempC();
        model.setRpm(ladder_[std::size_t(i) + 1]);
        model.advance(0.5, 0.1);
        up_jump_.push_back(std::max(0.0, model.airTempC() - before));
    }
    up_jump_.push_back(0.0); // top rung has no upward step
    // The lowest rung must be safe even at full duty, or the governor
    // could paint itself into a corner (a small tolerance admits the
    // envelope-design speed itself, which sits exactly on the envelope).
    HDDTHERM_REQUIRE(steady_duty1_.front() <= envelope_ + kSteadyToleranceC,
                     "lowest ladder speed violates the envelope at full "
                     "duty");
}

double
SpeedGovernor::predictedSteadyC(int level, double duty) const
{
    HDDTHERM_REQUIRE(level >= 0 && level < levels(), "bad ladder level");
    HDDTHERM_REQUIRE(duty >= 0.0 && duty <= 1.0, "duty outside [0, 1]");
    return util::lerp(steady_duty0_[std::size_t(level)],
                      steady_duty1_[std::size_t(level)], duty);
}

double
SpeedGovernor::maxSustainableRpm(double duty) const
{
    double best = 0.0;
    for (int i = 0; i < levels(); ++i) {
        if (predictedSteadyC(i, duty) <= envelope_ + kSteadyToleranceC)
            best = ladder_[std::size_t(i)];
    }
    return best;
}

double
SpeedGovernor::decide(double current_rpm, double measured_temp_c,
                      double measured_duty) const
{
    const double duty = std::clamp(measured_duty, 0.0, 1.0);

    // Index of the rung currently in force (highest rung <= current).
    int cur = 0;
    for (int i = 0; i < levels(); ++i) {
        if (ladder_[std::size_t(i)] <= current_rpm + 1e-9)
            cur = i;
    }

    // Step down when the measurement trips the trigger or the current
    // rung cannot hold the observed duty.
    if (measured_temp_c >= envelope_ - down_trigger_ ||
        predictedSteadyC(cur, duty) > envelope_ + kSteadyToleranceC) {
        return ladder_[std::size_t(std::max(cur - 1, 0))];
    }

    // Step up one rung when it is predicted sustainable and the measured
    // temperature has headroom to absorb the fast windage jump.
    if (cur + 1 < levels() &&
        measured_temp_c + up_jump_[std::size_t(cur)] + up_margin_ <=
            envelope_ &&
        predictedSteadyC(cur + 1, duty) <= envelope_ + kSteadyToleranceC) {
        return ladder_[std::size_t(cur + 1)];
    }
    return ladder_[std::size_t(cur)];
}

double
SpeedGovernor::upStepJumpC(int level) const
{
    HDDTHERM_REQUIRE(level >= 0 && level < levels(), "bad ladder level");
    return up_jump_[std::size_t(level)];
}

} // namespace hddtherm::dtm
