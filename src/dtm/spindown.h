/**
 * @file
 * Timeout-based spin-down power management, evaluated on recorded idle
 * gaps (paper §2's context).
 *
 * Conventional laptop-style power management spins the platters down
 * after an idle timeout.  The paper argues (citing the authors' own
 * ISPASS'03 study) that this is "challenging to apply in server systems,
 * due to the relatively smaller durations of the idle periods" — which is
 * precisely why the paper turns to DTM instead.  SpindownAnalysis lets
 * the reproduction make that argument quantitatively: replay a workload
 * with idle-gap recording on, then score timeout policies by energy saved
 * and latency added.
 */
#ifndef HDDTHERM_DTM_SPINDOWN_H
#define HDDTHERM_DTM_SPINDOWN_H

#include <vector>

#include "hdd/geometry.h"

namespace hddtherm::dtm {

/// Spin-down mechanism parameters (server-class defaults).
struct SpindownParams
{
    double timeoutSec = 10.0;    ///< Idle time before spinning down.
    double spinDownSec = 4.0;    ///< Time to stop the spindle.
    double spinUpSec = 10.0;     ///< Time to restart and re-settle.
    double spinUpEnergyJ = 135.0; ///< Extra energy of one spin-up.
    double standbyPowerW = 1.0;  ///< Electronics kept alive in standby.
};

/// Outcome of evaluating one timeout policy over a gap distribution.
struct SpindownResult
{
    std::size_t idleGaps = 0;      ///< Gaps considered.
    std::size_t spinDowns = 0;     ///< Gaps long enough to trigger.
    double idleEnergyJ = 0.0;      ///< Energy with the disk always on.
    double policyEnergyJ = 0.0;    ///< Energy under the policy.
    double addedLatencySec = 0.0;  ///< Total spin-up stall imposed.
    double idleTimeSec = 0.0;      ///< Total idle time analyzed.

    /// Fraction of always-on idle energy saved (can be negative when the
    /// spin-up energy outweighs the standby savings).
    double savedFraction() const
    {
        return idleEnergyJ > 0.0
                   ? 1.0 - policyEnergyJ / idleEnergyJ
                   : 0.0;
    }

    /// Mean spin-up stall per triggering gap, seconds.
    double meanStallSec() const
    {
        return spinDowns ? addedLatencySec / double(spinDowns) : 0.0;
    }
};

/**
 * Evaluate a timeout spin-down policy over recorded idle gaps.
 *
 * Per gap g: the disk idles at its spinning idle power (SPM loss +
 * windage for @p geometry at @p rpm).  If g > timeout + spinDown, the
 * policy spins down after the timeout, pays the spin-down/up transition
 * and the spin-up energy, idles at standby power in between, and stalls
 * the next request by the spin-up time.
 *
 * @param idle_gaps gap lengths from SimDisk::idleGaps().
 * @param geometry drive geometry (sets the spinning idle power).
 * @param rpm spindle speed while spinning.
 * @param params policy/mechanism parameters.
 */
SpindownResult evaluateSpindown(const std::vector<double>& idle_gaps,
                                const hdd::PlatterGeometry& geometry,
                                double rpm,
                                const SpindownParams& params = {});

} // namespace hddtherm::dtm

#endif // HDDTHERM_DTM_SPINDOWN_H
