/**
 * @file
 * Thermal/performance co-simulation with closed-loop DTM control.
 *
 * The paper's §5.3 proposes, as future work, driving throttling decisions
 * from the observed temperature while requests flow; this module makes
 * that concrete.  The storage simulator and the drive thermal model step
 * together: every control interval the measured VCM duty (seek time per
 * wall-clock time) feeds the thermal model, and the DTM policy gates
 * request dispatch (and optionally drops the spindle speed) when the
 * temperature nears the envelope, resuming below a hysteresis threshold.
 */
#ifndef HDDTHERM_DTM_COSIM_H
#define HDDTHERM_DTM_COSIM_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dtm/governor.h"
#include "fault/emergency.h"
#include "fault/fault_player.h"
#include "fault/fault_schedule.h"
#include "sim/storage_system.h"
#include "snap/checkpoint.h"
#include "thermal/drive_thermal.h"
#include "util/interp.h"

namespace hddtherm::dtm {

/// DTM control policies for the co-simulation.
enum class DtmPolicy
{
    None,          ///< No control: temperature is observed only.
    GateRequests,  ///< Stop dispatching near the envelope (Fig. 6(a)).
    GateAndLowRpm, ///< Also drop to a second spindle speed (Fig. 6(b)).
    GovernSpeed,   ///< DRPM-style multi-speed governor (dynamic §5.2).
};

/// Human-readable policy name.
const char* dtmPolicyName(DtmPolicy policy);

/// Co-simulation configuration.
struct CoSimConfig
{
    sim::SystemConfig system;     ///< Storage array under test.
    DtmPolicy policy = DtmPolicy::None;
    double envelopeC = thermal::kThermalEnvelopeC;
    /// Gate when the air temperature reaches this.
    double gateThresholdC = thermal::kThermalEnvelopeC;
    /// Resume once the temperature falls below this.  The throttling
    /// dynamics are sub-second (Figure 7), so the hysteresis band is thin.
    double resumeThresholdC = thermal::kThermalEnvelopeC - 0.05;
    double lowRpm = 0.0;          ///< Second speed for GateAndLowRpm.
    /// Speed ladder for GovernSpeed (must include a full-duty-safe rung).
    std::vector<double> rpmLadder;
    double ambientC = thermal::kBaselineAmbientC;
    /**
     * Optional ambient-temperature schedule as (time s, ambient C)
     * breakpoints, linearly interpolated and clamped at the ends; empty
     * means the constant ambientC.  Models diurnal machine-room swings or
     * cooling degradation during a run.
     */
    std::vector<std::pair<double, double>> ambientProfile;
    double controlIntervalSec = 0.1; ///< DTM control period.
    double thermalDtSec = thermal::kPaperTimestepSec;
    /// Start the drive hot (at its steady operating temperature) instead
    /// of at ambient; default true, matching the throttling experiments.
    bool startAtSteadyState = true;
    /// Safety cap on simulated time; past it the controller stops and any
    /// still-gated requests are abandoned (a warning is logged).
    double maxSimulatedSec = 86400.0;
    /**
     * Fraction of the workload treated as warm-up: response metrics reset
     * once this fraction of requests has completed, so slow thermal
     * transients (the drive cooling into its governed operating point)
     * don't dominate the reported means.  Temperature statistics still
     * cover the whole run.
     */
    double warmupFraction = 0.0;
    /**
     * Deterministic fault-injection schedule (empty = fault-free; an
     * empty schedule is bit-identical to pre-fault-support behavior).
     * Only events with target < 0 apply to a standalone engine; the fleet
     * routes targeted events per bay.  See docs/faults.md.
     */
    fault::FaultSchedule faults;
    /**
     * Fail-safe policy: after this many *consecutive* invalid sensor
     * readings (dropout faults) the controller throttles to its safe
     * floor — gate policies force the gate closed (GateAndLowRpm also
     * drops the spindle), GovernSpeed drops to the lowest rung — until a
     * valid reading returns control to the normal policy.  DtmPolicy::None
     * has no actuator and therefore no fail-safe.
     */
    int failSafeInvalidTicks = 5;
};

/// Co-simulation outcome.
struct CoSimResult
{
    sim::ResponseMetrics metrics;   ///< Logical response times.
    std::uint64_t speedChanges = 0; ///< Governor spindle-speed changes.
    double maxTempC = 0.0;          ///< Peak internal air temperature.
    double meanTempC = 0.0;         ///< Time-averaged air temperature.
    double envelopeExceededSec = 0.0; ///< Time spent above the envelope.
    double gatedSec = 0.0;          ///< Time spent throttled.
    std::uint64_t gateEvents = 0;   ///< Gate activations.
    double simulatedSec = 0.0;      ///< Total simulated time.
    double meanVcmDuty = 0.0;       ///< Average measured VCM duty.
    std::uint64_t invalidReadings = 0;     ///< Dropped sensor samples.
    std::uint64_t failSafeActivations = 0; ///< Fail-safe floor entries.
    double failSafeSec = 0.0;              ///< Time at the fail-safe floor.
};

/// Summarize a (faulted) run as an EmergencyReport.
fault::EmergencyReport emergencyReport(const CoSimResult& run);

/// As above, with fault-induced penalties versus a fault-free baseline of
/// the same workload.
fault::EmergencyReport emergencyReport(const CoSimResult& run,
                                       const CoSimResult& baseline);

/**
 * Steppable thermal/performance co-simulation engine.
 *
 * Owns one StorageSystem plus the drive thermal model and DTM controller,
 * exposed as an explicit time-stepping API so an external coordinator (the
 * fleet simulator) can interleave many engines: start() loads the workload
 * and arms the control loop, advanceTo() runs simulated time forward to a
 * barrier, and setAmbient() re-points the external cooling boundary between
 * barriers (inter-drive coupling through shared chassis air).
 *
 * CoSimulation::run() is a thin wrapper — start + advanceToCompletion —
 * and the engine produces bit-identical results to it for any advanceTo()
 * schedule: stepping changes when host code observes the simulation, never
 * the event order inside it.
 */
class CoSimEngine
{
  public:
    explicit CoSimEngine(const CoSimConfig& config);

    /**
     * Take ownership of the workload and arm the DTM control loop.  Call
     * once.  Arrivals are fed to the storage system lazily, a control
     * interval ahead of the clock, so the kernel's pending-event set — and
     * therefore a checkpoint — stays O(live traffic) instead of O(whole
     * remaining trace).  Feeding order is the arrival order (ties keep
     * the caller's order), which is also the submission order an eager
     * submit of a time-sorted trace would use.
     */
    void start(const std::vector<sim::IoRequest>& workload);

    /// Run events up to simulated time @p t (the clock advances to @p t
    /// even if the queue drains early).
    void advanceTo(sim::SimTime t);

    /// Drain every pending event (classic run-to-completion).
    void advanceToCompletion();

    /// True once every submitted request has completed.
    bool finished() const;

    /// Current simulated time, seconds.
    sim::SimTime now() const { return system_.events().now(); }

    /// Current internal drive air temperature, °C.
    double airTempC() const { return model_.airTempC(); }

    /**
     * Heat the bay currently rejects into the chassis air stream, watts:
     * the thermal model's operating-point dissipation times the member-disk
     * count (one calibrated model stands for every symmetric member).
     */
    double heatOutputW() const;

    /**
     * Re-point the external ambient (chassis inlet) temperature.
     *
     * Precedence: a non-empty CoSimConfig::ambientProfile owns the
     * ambient for the whole run; while one is active this call is a no-op
     * and returns false.  Returns true when the ambient was re-pointed.
     * (The fleet layer requires the profile to be empty, so its barrier
     * updates always apply.)  Fault-schedule ambient offsets compose on
     * top of whichever source wins.
     */
    bool setAmbient(double ambient_c);

    /**
     * Power the bay on/off (fleet BayKill/BayRestore faults).  Off, the
     * thermal model stops dissipating, heatOutputW() reads zero, request
     * dispatch gates closed, and DTM policy decisions freeze; restore
     * re-opens the gate (unless the policy holds it) and resumes control.
     */
    void setBayPower(bool on);

    /// True while the bay has power (the default).
    bool bayPowered() const { return powered_; }

    /// Storage system under control (metrics, DTM hooks, event clock).
    sim::StorageSystem& system() { return system_; }
    const sim::StorageSystem& system() const { return system_; }

    /// Result snapshot (means finalized over the time simulated so far).
    CoSimResult result() const;

    /// Configuration in force.
    const CoSimConfig& config() const { return config_; }

    /// @name Checkpoint/restore (docs/checkpoint.md)
    /// @{

    /**
     * Turn on the kernel's snapshot bookkeeping so an external
     * coordinator (the fleet) can capture this engine's state with
     * saveSections().  Must be called before start().
     */
    void enableSnapshots();

    /**
     * Standalone checkpointing: every policy.everySec simulated seconds
     * a crash-consistent checkpoint of the whole engine is written to
     * policy.directory (policy.everyEpochs is a fleet cadence and must
     * be zero here).  Must be called before start(); implies
     * enableSnapshots().
     */
    void enableCheckpoints(const snap::CheckpointPolicy& policy);

    /**
     * Append every stateful module to @p out as sections named
     * "<prefix>dtm.cosim", "<prefix>sim.system", "<prefix>thermal.model",
     * "<prefix>fault.player" (faulted runs only) and — last —
     * "<prefix>engine.kernel".  The fleet passes "bay.<i>/" prefixes;
     * standalone checkpoints use the empty prefix.  Requires start().
     */
    void saveSections(snap::CheckpointWriter& out,
                      const std::string& prefix = {}) const;

    /**
     * Restore sections written by saveSections() into this engine, which
     * must be freshly constructed from the identical configuration and
     * not yet started.  @p workload re-supplies the run's workload —
     * checkpoints deliberately do not embed the trace (it is a pure
     * function of the configuration seed and can be arbitrarily long);
     * instead they record its fingerprint, and restore validates the
     * re-supplied trace against it.  Afterwards the engine behaves as
     * started: the workload is in flight and
     * advanceTo()/advanceToCompletion() produce bit-identical results to
     * the uninterrupted run.
     */
    void loadSections(const snap::CheckpointReader& in,
                      const std::vector<sim::IoRequest>& workload,
                      const std::string& prefix = {});

    /// Restore from a checkpoint file after validating its config hash
    /// against this engine's configuration.  @p workload re-supplies the
    /// run's workload (see loadSections).
    void restoreFromCheckpoint(const std::string& path,
                               const std::vector<sim::IoRequest>& workload);

    /// Write one checkpoint now (needs enableCheckpoints); synchronous —
    /// the returned file path exists when the call returns.
    std::string writeCheckpoint();

    /// Index the next checkpoint will be written under (survives
    /// resume, so a continued run numbers checkpoints like the
    /// uninterrupted one).
    std::uint64_t checkpointIndex() const { return ckpt_index_; }

    /// @}

  private:
    /// One control tick; returns true while the periodic task should
    /// keep firing (workload unfinished and safety cap not reached).
    bool tick();
    /// Periodic "snap.checkpoint" task body.  Fires at every control
    /// interval in lockstep with tick() (writing only every
    /// ckpt_every_ticks_ firings) and mirrors tick()'s stop condition,
    /// so it dies at the same timestamp as the control loop and a
    /// checkpointed run's event horizon — and therefore its result — is
    /// identical to a bare run's.
    bool checkpointTick();
    /// Serialize and queue one checkpoint without waiting for the file
    /// to land (the periodic path; see snap::CheckpointManager).
    std::string queueCheckpoint();
    /// Submit every not-yet-fed request with arrival <= @p until.
    void feedArrivals(double until);
    /// Feed horizon for the current clock: two control intervals ahead,
    /// so no tick can reach an arrival before the previous tick fed it.
    double feedHorizon() const;
    void decidePolicy(const fault::SensorReading& reading);
    void enterFailSafeFloor();
    /// One gate authority: the disks are gated while the policy says so
    /// OR the bay is powered off (kill must not be undone by a resume).
    void applyGates() { system_.gateAll(gated_ || !powered_); }

    CoSimConfig config_;
    sim::StorageSystem system_;
    /// Fixed-step thermal/control clock domain in the shared kernel.
    engine::DomainId thermal_domain_;
    thermal::DriveThermalModel model_;
    std::optional<SpeedGovernor> governor_;
    std::optional<util::PiecewiseLinear> ambient_schedule_;
    std::optional<fault::FaultPlayer> fault_player_;

    CoSimResult partial_;
    /// The run's workload, arrival-sorted (stable), fed lazily.
    std::vector<sim::IoRequest> workload_;
    /// Next workload_ index to submit.
    std::size_t feed_next_ = 0;
    /// Fingerprint of the caller-order workload; checkpoints carry it so
    /// restore can validate the re-supplied trace.
    std::uint64_t workload_hash_ = 0;
    std::size_t workload_size_ = 0;
    std::size_t completed_ = 0;
    std::size_t warmup_count_ = 0;
    bool started_ = false;
    bool gated_ = false;
    bool powered_ = true;
    bool fail_safe_ = false;
    int invalid_run_ = 0;
    double last_seek_total_ = 0.0;
    double duty_weighted_ = 0.0;
    double duty_ewma_ = 0.0;
    double temp_integral_ = 0.0;
    sim::SimTime last_tick_ = 0.0;
    std::optional<snap::CheckpointManager> ckpt_mgr_;
    std::uint64_t ckpt_index_ = 0;
    /// Checkpoint cadence in control ticks (everySec quantized).
    std::uint64_t ckpt_every_ticks_ = 0;
    /// Control ticks left until the next checkpoint write.
    std::uint64_t ckpt_ticks_left_ = 0;
};

/**
 * Canonical textual description of a configuration; its FNV-1a hash is
 * the checkpoint header's config hash.  Two configurations with equal
 * descriptions restore each other's checkpoints.
 */
std::string checkpointDescription(const CoSimConfig& config);

/// FNV-1a hash of checkpointDescription().
std::uint64_t checkpointConfigHash(const CoSimConfig& config);

/// Joins a StorageSystem with the calibrated drive thermal model.
class CoSimulation
{
  public:
    explicit CoSimulation(const CoSimConfig& config);

    /// Run a workload to completion under the configured policy.
    CoSimResult run(const std::vector<sim::IoRequest>& workload);

    /// Configuration in force.
    const CoSimConfig& config() const { return config_; }

  private:
    CoSimConfig config_;
};

} // namespace hddtherm::dtm

#endif // HDDTHERM_DTM_COSIM_H
