#include "dtm/spindown.h"

#include "obs/metrics.h"
#include "thermal/calibration.h"
#include "util/error.h"

namespace hddtherm::dtm {

SpindownResult
evaluateSpindown(const std::vector<double>& idle_gaps,
                 const hdd::PlatterGeometry& geometry, double rpm,
                 const SpindownParams& params)
{
    HDDTHERM_REQUIRE(params.timeoutSec >= 0.0 &&
                         params.spinDownSec >= 0.0 &&
                         params.spinUpSec >= 0.0 &&
                         params.spinUpEnergyJ >= 0.0 &&
                         params.standbyPowerW >= 0.0,
                     "negative spin-down parameter");

    const double spinning_idle_w =
        thermal::spmMotorLossW(geometry.diameterInches) +
        thermal::viscousDissipationW(rpm, geometry.diameterInches,
                                     geometry.platters);

    SpindownResult out;
    out.idleGaps = idle_gaps.size();
    for (const double gap : idle_gaps) {
        HDDTHERM_REQUIRE(gap >= 0.0, "negative idle gap");
        out.idleTimeSec += gap;
        out.idleEnergyJ += spinning_idle_w * gap;
        if (gap > params.timeoutSec + params.spinDownSec) {
            // Spin down after the timeout; standby until the next arrival
            // triggers a spin-up (whose time stalls that request).
            ++out.spinDowns;
            const double standby = gap - params.timeoutSec -
                                   params.spinDownSec;
            out.policyEnergyJ += spinning_idle_w *
                                     (params.timeoutSec +
                                      params.spinDownSec) +
                                 params.standbyPowerW * standby +
                                 params.spinUpEnergyJ;
            out.addedLatencySec += params.spinUpSec;
        } else {
            out.policyEnergyJ += spinning_idle_w * gap;
        }
    }
    HDDTHERM_OBS_ADD("dtm.spindown.evaluated_gaps", out.idleGaps);
    HDDTHERM_OBS_ADD("dtm.spindown.transitions", out.spinDowns);
    return out;
}

} // namespace hddtherm::dtm
