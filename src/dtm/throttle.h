/**
 * @file
 * Dynamic throttling DTM (paper §5.3, Figures 6 and 7).
 *
 * A drive designed for average-case behaviour spins faster than the
 * worst-case envelope allows.  When the internal air approaches the
 * envelope, the throttler stops issuing requests (killing VCM heat) for
 * t_cool seconds — optionally also dropping to a lower spindle speed — and
 * then resumes, heating back up over t_heat.  The figure of merit is the
 * throttling ratio t_heat / t_cool: above 1, the disk works more than it
 * rests.
 *
 * Scenario (a), "VCM-alone": full RPM is sustainable with the VCM off.
 * Scenario (b), "VCM+Lower RPM": even VCM-off overheats at full speed, so
 * cooling also drops the spindle to a second speed (a two-RPM disk like
 * Hitachi's suffices: requests are always served at the high speed).
 */
#ifndef HDDTHERM_DTM_THROTTLE_H
#define HDDTHERM_DTM_THROTTLE_H

#include <optional>
#include <vector>

#include "thermal/drive_thermal.h"

namespace hddtherm::dtm {

/// Throttling experiment configuration.
struct ThrottleConfig
{
    double diameterInches = 2.6;
    int platters = 1;
    double fullRpm = 24534.0;      ///< Operating (average-case) speed.
    std::optional<double> lowRpm;  ///< Cooling speed (scenario (b)).
    double envelopeC = thermal::kThermalEnvelopeC;
    double ambientC = thermal::kBaselineAmbientC;
    double timestepSec = thermal::kPaperTimestepSec;
    /**
     * Cool/heat cycles to run before measuring.  0 (the paper's protocol)
     * measures the first cycle after the drive reaches the envelope;
     * larger values converge to the periodic throttling regime.
     */
    int warmupCycles = 0;
    /// Safety cap on a single heat phase, seconds.
    double maxHeatSec = 7200.0;
};

/// Outcome of one throttling-ratio measurement.
struct ThrottleResult
{
    double tcoolSec = 0.0;      ///< Imposed cooling time.
    double theatSec = 0.0;      ///< Measured reheat time to the envelope.
    double minTempC = 0.0;      ///< Air temperature after cooling.
    double coolSteadyC = 0.0;   ///< Steady temp of the cooling config.
    double hotSteadyC = 0.0;    ///< Steady temp of the operating config.

    /// Throttling ratio t_heat / t_cool (want > 1).
    double ratio() const { return theatSec / tcoolSec; }

    /// Duty cycle achieved: fraction of time serving requests.
    double utilization() const
    {
        return theatSec / (theatSec + tcoolSec);
    }
};

/// One sample of a Figure 6 temperature trace.
struct ThrottleTracePoint
{
    double timeSec = 0.0;
    double tempC = 0.0;
    bool cooling = false; ///< True while throttled.
};

/// Runs cool/heat cycles on the calibrated drive thermal model.
class ThrottleExperiment
{
  public:
    explicit ThrottleExperiment(const ThrottleConfig& config);

    /// Measure the throttling ratio for one cooling time.
    ThrottleResult run(double tcool_sec) const;

    /// Sweep several cooling times (Figure 7's x-axis).
    std::vector<ThrottleResult> sweep(
        const std::vector<double>& tcool_secs) const;

    /**
     * Produce a temperature-vs-time trace of @p cycles cool/heat cycles
     * sampled every @p sample_dt seconds (Figure 6).
     */
    std::vector<ThrottleTracePoint> temperatureTrace(
        double tcool_sec, int cycles, double sample_dt = 1.0) const;

    /// Configuration in force.
    const ThrottleConfig& config() const { return config_; }

  private:
    thermal::DriveThermalModel makeModel() const;
    void applyHot(thermal::DriveThermalModel& model) const;
    void applyCool(thermal::DriveThermalModel& model) const;
    /// Advance until the air temperature reaches the envelope; returns the
    /// elapsed time (capped at maxHeatSec).
    double heatToEnvelope(thermal::DriveThermalModel& model,
                          double dt) const;

    ThrottleConfig config_;
};

} // namespace hddtherm::dtm

#endif // HDDTHERM_DTM_THROTTLE_H
