/**
 * @file
 * Thermal-slack DTM (paper §5.2).
 *
 * The thermal envelope is defined with the VCM continuously on.  When the
 * workload seeks little (or the disk idles), the VCM heat vanishes and a
 * multi-speed disk can spin faster while staying inside the envelope.
 * This module quantifies that slack: the envelope-design RPM (VCM on) vs
 * the slack-exploiting RPM (VCM off) per platter size, and the revised IDR
 * roadmap those speeds enable (Figure 5).
 */
#ifndef HDDTHERM_DTM_SLACK_H
#define HDDTHERM_DTM_SLACK_H

#include <vector>

#include "roadmap/roadmap.h"
#include "thermal/envelope.h"

namespace hddtherm::dtm {

/// Slack analysis for one platter size (Figure 5(a)).
struct SlackPoint
{
    double diameterInches = 0.0;
    int platters = 1;
    double envelopeRpm = 0.0;  ///< Max RPM with the VCM always on.
    double slackRpm = 0.0;     ///< Max RPM with the VCM off.
    double vcmPowerW = 0.0;    ///< The heat source the slack comes from.

    /// Extra speed unlocked by the slack.
    double rpmGain() const { return slackRpm - envelopeRpm; }
};

/// Quantify the VCM-off slack for a configuration.
SlackPoint analyzeSlack(double diameter_inches, int platters,
                        const roadmap::RoadmapEngine& engine);

/// One year of the revised (slack-exploiting) IDR roadmap (Figure 5(b)).
struct SlackRoadmapPoint
{
    int year = 0;
    double targetIdr = 0.0;
    double envelopeIdr = 0.0; ///< IDR at the VCM-on envelope RPM.
    double slackIdr = 0.0;    ///< IDR at the VCM-off slack RPM.
};

/// Revised IDR roadmap for one platter size (1-platter, Figure 5(b)).
std::vector<SlackRoadmapPoint>
slackRoadmap(double diameter_inches, int platters,
             const roadmap::RoadmapEngine& engine);

} // namespace hddtherm::dtm

#endif // HDDTHERM_DTM_SLACK_H
