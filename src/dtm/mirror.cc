#include "dtm/mirror.h"

#include <algorithm>

#include "thermal/envelope.h"
#include "util/error.h"
#include "util/log.h"

namespace hddtherm::dtm {

const char*
mirrorPolicyName(MirrorPolicy policy)
{
    switch (policy) {
      case MirrorPolicy::Balanced:
        return "balanced";
      case MirrorPolicy::ThermalSteer:
        return "thermal-steer";
    }
    return "unknown";
}

MirrorDtmSimulation::MirrorDtmSimulation(const MirrorDtmConfig& config)
    : config_(config)
{
    HDDTHERM_REQUIRE(config_.system.raid == sim::RaidLevel::Raid1,
                     "mirrored DTM needs a RAID-1 system");
    HDDTHERM_REQUIRE(config_.controlIntervalSec > 0.0,
                     "control interval must be positive");
    HDDTHERM_REQUIRE(config_.swapHysteresisC >= 0.0,
                     "negative swap hysteresis");
    HDDTHERM_REQUIRE(config_.memberAmbientC.empty() ||
                         int(config_.memberAmbientC.size()) ==
                             config_.system.disks,
                     "per-member ambient list must match the disk count");
}

MirrorDtmResult
MirrorDtmSimulation::run(const std::vector<sim::IoRequest>& workload)
{
    HDDTHERM_REQUIRE(!workload.empty(), "empty workload");

    sim::StorageSystem system(config_.system);
    const int members = system.diskCount();

    // One calibrated thermal model per member, each fed by its own disk's
    // measured seek duty.
    thermal::DriveThermalConfig tcfg;
    tcfg.geometry = config_.system.disk.geometry;
    tcfg.rpm = config_.system.disk.rpm;
    tcfg.ambientC = config_.ambientC;
    tcfg.vcmDuty = 1.0;
    tcfg.coolingScale =
        thermal::coolingScaleForPlatters(tcfg.geometry.platters);
    std::vector<thermal::DriveThermalModel> models;
    models.reserve(std::size_t(members));
    for (int i = 0; i < members; ++i) {
        auto member_cfg = tcfg;
        if (!config_.memberAmbientC.empty())
            member_cfg.ambientC = config_.memberAmbientC[std::size_t(i)];
        models.emplace_back(member_cfg);
        models.back().settleWithAirAt(
            std::min(models.back().steadyAirTempC(), config_.envelopeC));
    }

    std::size_t completed = 0;
    system.setCompletionCallback(
        [&completed](const sim::IoCompletion&) { ++completed; });
    for (const auto& req : workload)
        system.submit(req);

    MirrorDtmResult result;
    result.maxTempC.assign(std::size_t(members), 0.0);
    result.meanDuty.assign(std::size_t(members), 0.0);

    int preferred = 0;
    if (config_.policy == MirrorPolicy::ThermalSteer)
        system.setPreferredMirror(preferred);

    std::vector<double> last_seek(std::size_t(members), 0.0);
    sim::SimTime last_tick = 0.0;

    std::function<void()> tick = [&]() {
        const sim::SimTime now = system.events().now();
        const double dt = now - last_tick;
        last_tick = now;

        if (dt > 0.0) {
            bool exceeded = false;
            for (int i = 0; i < members; ++i) {
                const auto idx = std::size_t(i);
                const double seek = system.disk(i).activity().seekSec;
                const double duty = std::clamp(
                    (seek - last_seek[idx]) / dt, 0.0, 1.0);
                last_seek[idx] = seek;
                result.meanDuty[idx] += duty * dt;
                models[idx].setVcmDuty(duty);
                models[idx].advance(dt,
                                    std::min(config_.thermalDtSec, dt));
                const double temp = models[idx].airTempC();
                result.maxTempC[idx] =
                    std::max(result.maxTempC[idx], temp);
                exceeded |= temp > config_.envelopeC;
            }
            if (exceeded)
                result.envelopeExceededSec += dt;

            if (config_.policy == MirrorPolicy::ThermalSteer) {
                // Steer reads toward the coolest member, with hysteresis
                // so small fluctuations don't thrash the preference.
                int coolest = 0;
                for (int i = 1; i < members; ++i) {
                    if (models[std::size_t(i)].airTempC() <
                        models[std::size_t(coolest)].airTempC()) {
                        coolest = i;
                    }
                }
                if (coolest != preferred &&
                    models[std::size_t(preferred)].airTempC() -
                            models[std::size_t(coolest)].airTempC() >
                        config_.swapHysteresisC) {
                    preferred = coolest;
                    system.setPreferredMirror(preferred);
                    ++result.swaps;
                }
            }
        }

        if (completed < workload.size()) {
            if (now >= config_.maxSimulatedSec) {
                util::logWarn("mirror co-simulation hit the %.0f s cap "
                              "with %zu/%zu requests done",
                              config_.maxSimulatedSec, completed,
                              workload.size());
                return;
            }
            system.events().scheduleAfter(config_.controlIntervalSec,
                                          tick);
        }
    };
    system.events().scheduleAfter(config_.controlIntervalSec, tick);
    system.runAll();

    result.metrics = system.metrics();
    result.simulatedSec = system.events().now();
    if (result.simulatedSec > 0.0) {
        for (auto& d : result.meanDuty)
            d /= result.simulatedSec;
    }
    return result;
}

} // namespace hddtherm::dtm
