#include "dtm/cosim.h"

#include "thermal/envelope.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "util/error.h"
#include "util/interp.h"
#include "util/log.h"

namespace hddtherm::dtm {

const char*
dtmPolicyName(DtmPolicy policy)
{
    switch (policy) {
      case DtmPolicy::None:
        return "none";
      case DtmPolicy::GateRequests:
        return "gate-vcm";
      case DtmPolicy::GateAndLowRpm:
        return "gate-vcm+low-rpm";
      case DtmPolicy::GovernSpeed:
        return "speed-governor";
    }
    return "unknown";
}

CoSimulation::CoSimulation(const CoSimConfig& config) : config_(config)
{
    HDDTHERM_REQUIRE(config_.controlIntervalSec > 0.0,
                     "control interval must be positive");
    HDDTHERM_REQUIRE(config_.resumeThresholdC < config_.gateThresholdC,
                     "hysteresis band is inverted");
    HDDTHERM_REQUIRE(config_.warmupFraction >= 0.0 &&
                         config_.warmupFraction < 1.0,
                     "warm-up fraction must be in [0, 1)");
    if (config_.policy == DtmPolicy::GateAndLowRpm) {
        HDDTHERM_REQUIRE(config_.lowRpm > 0.0 &&
                             config_.lowRpm < config_.system.disk.rpm,
                         "low RPM must be positive and below full speed");
    }
    if (config_.policy == DtmPolicy::GovernSpeed) {
        HDDTHERM_REQUIRE(config_.rpmLadder.size() >= 2,
                         "speed governor needs a ladder of speeds");
    }
}

CoSimResult
CoSimulation::run(const std::vector<sim::IoRequest>& workload)
{
    HDDTHERM_REQUIRE(!workload.empty(), "empty workload");

    sim::StorageSystem system(config_.system);

    // One thermal model stands in for every (symmetric) member disk; disk 0
    // supplies the measured VCM duty.
    thermal::DriveThermalConfig tcfg;
    tcfg.geometry = config_.system.disk.geometry;
    tcfg.rpm = config_.system.disk.rpm;
    tcfg.ambientC = config_.ambientC;
    tcfg.vcmDuty = 1.0;
    tcfg.coolingScale =
        thermal::coolingScaleForPlatters(tcfg.geometry.platters);
    thermal::DriveThermalModel model(tcfg);

    std::optional<SpeedGovernor> governor;
    if (config_.policy == DtmPolicy::GovernSpeed) {
        governor.emplace(tcfg, config_.rpmLadder, config_.envelopeC);
        // Start at the fastest full-duty-safe rung.
        const double start = governor->maxSustainableRpm(1.0);
        system.changeRpmAll(start);
        model.setRpm(start);
    }
    if (config_.startAtSteadyState) {
        // The drive has been busy.  A DTM-guarded drive has been held at
        // (or below) the envelope by its policy; an unguarded drive simply
        // sits at its worst-case operating steady state.
        double start_air = model.steadyAirTempC();
        if (config_.policy != DtmPolicy::None)
            start_air = std::min(start_air, config_.envelopeC);
        model.settleWithAirAt(start_air);
    }

    std::size_t completed = 0;
    const std::size_t warmup_count = std::size_t(
        config_.warmupFraction * double(workload.size()));
    system.setCompletionCallback(
        [&completed, warmup_count, &system](const sim::IoCompletion&) {
            if (++completed == warmup_count)
                system.resetMetrics();
        });
    for (const auto& req : workload)
        system.submit(req);

    std::optional<util::PiecewiseLinear> ambient_schedule;
    if (!config_.ambientProfile.empty()) {
        ambient_schedule.emplace(config_.ambientProfile,
                                 util::PiecewiseLinear::Extrapolate::Clamp);
    }

    CoSimResult result;
    bool gated = false;
    double last_seek_total = 0.0;
    double duty_weighted = 0.0;
    double duty_ewma = 0.0;
    // Smooth the per-interval duty for governor decisions: raw 100 ms
    // windows swing between 0 and 1 on bursty traffic and would make the
    // ladder oscillate (each spindle transition stalls the disk).
    const double duty_tau = 5.0;
    double temp_integral = 0.0;
    sim::SimTime last_tick = 0.0;

    // Recurring control event.
    std::function<void()> tick = [&]() {
        const sim::SimTime now = system.events().now();
        const double dt = now - last_tick;
        last_tick = now;

        if (dt > 0.0) {
            if (ambient_schedule)
                model.setAmbient((*ambient_schedule)(now));
            // Measure the VCM duty over the last interval from disk 0.
            const double seek_total = system.disk(0).activity().seekSec;
            const double duty = std::clamp(
                (seek_total - last_seek_total) / dt, 0.0, 1.0);
            last_seek_total = seek_total;
            duty_weighted += duty * dt;
            const double alpha = std::min(1.0, dt / duty_tau);
            duty_ewma += alpha * (duty - duty_ewma);
            model.setVcmDuty(duty);
            model.advance(dt, std::min(config_.thermalDtSec, dt));

            const double temp = model.airTempC();
            temp_integral += temp * dt;
            result.maxTempC = std::max(result.maxTempC, temp);
            if (temp > config_.envelopeC)
                result.envelopeExceededSec += dt;
            if (gated)
                result.gatedSec += dt;

            // Policy decisions.
            if (config_.policy == DtmPolicy::GovernSpeed) {
                const double target =
                    governor->decide(model.config().rpm, temp, duty_ewma);
                if (std::fabs(target - model.config().rpm) > 1e-9) {
                    system.changeRpmAll(target);
                    model.setRpm(target);
                    ++result.speedChanges;
                }
            } else if (config_.policy != DtmPolicy::None) {
                if (!gated && temp >= config_.gateThresholdC) {
                    gated = true;
                    ++result.gateEvents;
                    system.gateAll(true);
                    if (config_.policy == DtmPolicy::GateAndLowRpm) {
                        system.changeRpmAll(config_.lowRpm);
                        model.setRpm(config_.lowRpm);
                    }
                } else if (gated && temp <= config_.resumeThresholdC) {
                    gated = false;
                    if (config_.policy == DtmPolicy::GateAndLowRpm) {
                        system.changeRpmAll(config_.system.disk.rpm);
                        model.setRpm(config_.system.disk.rpm);
                    }
                    system.gateAll(false);
                }
            }
        }

        if (completed < workload.size()) {
            if (now >= config_.maxSimulatedSec) {
                util::logWarn("co-simulation hit the %.0f s safety cap with "
                              "%zu/%zu requests done; releasing gates",
                              config_.maxSimulatedSec, completed,
                              workload.size());
                system.gateAll(false);
                return;
            }
            system.events().scheduleAfter(config_.controlIntervalSec, tick);
        }
    };
    system.events().scheduleAfter(config_.controlIntervalSec, tick);
    system.runAll();

    result.metrics = system.metrics();
    result.simulatedSec = system.events().now();
    if (result.simulatedSec > 0.0) {
        result.meanTempC = temp_integral / result.simulatedSec;
        result.meanVcmDuty = duty_weighted / result.simulatedSec;
    }
    return result;
}

} // namespace hddtherm::dtm
