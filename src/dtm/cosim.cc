#include "dtm/cosim.h"

#include "thermal/envelope.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "util/error.h"
#include "util/log.h"

namespace hddtherm::dtm {

namespace {

/// Shared construction-time validation (CoSimulation and CoSimEngine).
void
validateConfig(const CoSimConfig& config)
{
    HDDTHERM_REQUIRE(config.controlIntervalSec > 0.0,
                     "control interval must be positive");
    HDDTHERM_REQUIRE(config.resumeThresholdC < config.gateThresholdC,
                     "hysteresis band is inverted");
    HDDTHERM_REQUIRE(config.warmupFraction >= 0.0 &&
                         config.warmupFraction < 1.0,
                     "warm-up fraction must be in [0, 1)");
    HDDTHERM_REQUIRE(config.failSafeInvalidTicks >= 1,
                     "fail-safe needs at least one invalid tick");
    config.faults.validate();
    if (config.policy == DtmPolicy::GateAndLowRpm) {
        HDDTHERM_REQUIRE(config.lowRpm > 0.0 &&
                             config.lowRpm < config.system.disk.rpm,
                         "low RPM must be positive and below full speed");
    }
    if (config.policy == DtmPolicy::GovernSpeed) {
        HDDTHERM_REQUIRE(config.rpmLadder.size() >= 2,
                         "speed governor needs a ladder of speeds");
    }
}

/// One thermal model stands in for every (symmetric) member disk; disk 0
/// supplies the measured VCM duty.
thermal::DriveThermalConfig
thermalConfigFor(const CoSimConfig& config)
{
    thermal::DriveThermalConfig tcfg;
    tcfg.geometry = config.system.disk.geometry;
    tcfg.rpm = config.system.disk.rpm;
    tcfg.ambientC = config.ambientC;
    tcfg.vcmDuty = 1.0;
    tcfg.coolingScale =
        thermal::coolingScaleForPlatters(tcfg.geometry.platters);
    return tcfg;
}

} // namespace

const char*
dtmPolicyName(DtmPolicy policy)
{
    switch (policy) {
      case DtmPolicy::None:
        return "none";
      case DtmPolicy::GateRequests:
        return "gate-vcm";
      case DtmPolicy::GateAndLowRpm:
        return "gate-vcm+low-rpm";
      case DtmPolicy::GovernSpeed:
        return "speed-governor";
    }
    return "unknown";
}

CoSimEngine::CoSimEngine(const CoSimConfig& config)
    : config_((validateConfig(config), config)),
      system_(config_.system),
      thermal_domain_(system_.events().registerDomain("thermal")),
      model_(thermalConfigFor(config_))
{
    if (config_.policy == DtmPolicy::GovernSpeed) {
        governor_.emplace(model_.config(), config_.rpmLadder,
                          config_.envelopeC);
        // Start at the fastest full-duty-safe rung.
        const double start = governor_->maxSustainableRpm(1.0);
        system_.changeRpmAll(start);
        model_.setRpm(start);
    }
    if (config_.startAtSteadyState) {
        // The drive has been busy.  A DTM-guarded drive has been held at
        // (or below) the envelope by its policy; an unguarded drive simply
        // sits at its worst-case operating steady state.
        double start_air = model_.steadyAirTempC();
        if (config_.policy != DtmPolicy::None)
            start_air = std::min(start_air, config_.envelopeC);
        model_.settleWithAirAt(start_air);
    }
    if (!config_.ambientProfile.empty()) {
        ambient_schedule_.emplace(config_.ambientProfile,
                                  util::PiecewiseLinear::Extrapolate::Clamp);
    }
    if (!config_.faults.empty())
        fault_player_.emplace(config_.faults);
}

void
CoSimEngine::start(const std::vector<sim::IoRequest>& workload)
{
    HDDTHERM_REQUIRE(!workload.empty(), "empty workload");
    HDDTHERM_REQUIRE(!started_, "CoSimEngine::start called twice");
    started_ = true;
    workload_size_ = workload.size();
    warmup_count_ =
        std::size_t(config_.warmupFraction * double(workload.size()));
    system_.setCompletionCallback([this](const sim::IoCompletion&) {
        if (++completed_ == warmup_count_)
            system_.resetMetrics();
    });
    for (const auto& req : workload)
        system_.submit(req);
    // The DTM control loop is a periodic task in the kernel's thermal
    // domain: sensor sampling, governor decisions, and fault-player
    // updates all happen at the tick's timestamp, interleaved with the
    // storage domain's request events on the one shared clock.
    system_.events().schedulePeriodic(thermal_domain_,
                                      config_.controlIntervalSec,
                                      [this]() { return tick(); });
}

bool
CoSimEngine::tick()
{
    const sim::SimTime now = system_.events().now();
    const double dt = now - last_tick_;
    last_tick_ = now;

    // Smooth the per-interval duty for governor decisions: raw 100 ms
    // windows swing between 0 and 1 on bursty traffic and would make the
    // ladder oscillate (each spindle transition stalls the disk).
    constexpr double duty_tau = 5.0;

    if (dt > 0.0) {
        if (ambient_schedule_)
            model_.setAmbient((*ambient_schedule_)(now));
        if (fault_player_) {
            model_.setCoolingFaultScale(fault_player_->coolingScaleAt(now));
            model_.setAmbientOffsetC(fault_player_->ambientOffsetAt(now));
        }
        // Measure the VCM duty over the last interval from disk 0.
        const double seek_total = system_.disk(0).activity().seekSec;
        const double duty =
            std::clamp((seek_total - last_seek_total_) / dt, 0.0, 1.0);
        last_seek_total_ = seek_total;
        duty_weighted_ += duty * dt;
        const double alpha = std::min(1.0, dt / duty_tau);
        duty_ewma_ += alpha * (duty - duty_ewma_);
        model_.setVcmDuty(duty);
        // The kernel owns the clock; the thermal stepper just follows it.
        model_.advanceTo(now, config_.thermalDtSec);

        // Physical-temperature statistics always track the truth; policy
        // decisions below only ever see the (possibly faulted) sensor.
        const double temp = model_.airTempC();
        temp_integral_ += temp * dt;
        partial_.maxTempC = std::max(partial_.maxTempC, temp);
        if (temp > config_.envelopeC)
            partial_.envelopeExceededSec += dt;
        if (gated_)
            partial_.gatedSec += dt;
        if (fail_safe_)
            partial_.failSafeSec += dt;

        fault::SensorReading reading{temp, true};
        if (fault_player_)
            reading = fault_player_->sense(now, temp);
        if (reading.valid) {
            invalid_run_ = 0;
        } else {
            ++partial_.invalidReadings;
            ++invalid_run_;
        }

        // A powered-off bay has no spindle to govern and no gate to trim.
        if (powered_)
            decidePolicy(reading);
    }

    if (completed_ >= workload_size_)
        return false;
    if (now >= config_.maxSimulatedSec) {
        util::logWarn("co-simulation hit the %.0f s safety cap with "
                      "%zu/%zu requests done; releasing gates",
                      config_.maxSimulatedSec, completed_,
                      workload_size_);
        system_.gateAll(false);
        return false;
    }
    return true;
}

void
CoSimEngine::decidePolicy(const fault::SensorReading& reading)
{
    if (config_.policy == DtmPolicy::None)
        return;

    // Fail-safe: too many consecutive blind ticks throttle to the safe
    // floor; the first valid reading hands control back to the policy
    // (which releases the floor through its own hysteresis).
    if (!fail_safe_ && invalid_run_ >= config_.failSafeInvalidTicks) {
        fail_safe_ = true;
        ++partial_.failSafeActivations;
        HDDTHERM_OBS_COUNT("dtm.fail_safe.entry");
        enterFailSafeFloor();
    } else if (fail_safe_ && reading.valid) {
        fail_safe_ = false;
    }
    if (fail_safe_ || !reading.valid)
        return; // hold the last actuation while blind

    const double temp = reading.valueC;
    if (config_.policy == DtmPolicy::GovernSpeed) {
        const double target =
            governor_->decide(model_.config().rpm, temp, duty_ewma_);
        if (std::fabs(target - model_.config().rpm) > 1e-9) {
            system_.changeRpmAll(target);
            model_.setRpm(target);
            ++partial_.speedChanges;
            HDDTHERM_OBS_COUNT("dtm.governor.speed_change");
        }
    } else {
        if (!gated_ && temp >= config_.gateThresholdC) {
            gated_ = true;
            ++partial_.gateEvents;
            HDDTHERM_OBS_COUNT("dtm.gate.engage");
            applyGates();
            if (config_.policy == DtmPolicy::GateAndLowRpm) {
                system_.changeRpmAll(config_.lowRpm);
                model_.setRpm(config_.lowRpm);
            }
        } else if (gated_ && temp <= config_.resumeThresholdC) {
            gated_ = false;
            HDDTHERM_OBS_COUNT("dtm.gate.disengage");
            if (config_.policy == DtmPolicy::GateAndLowRpm) {
                system_.changeRpmAll(config_.system.disk.rpm);
                model_.setRpm(config_.system.disk.rpm);
            }
            applyGates();
        }
    }
}

void
CoSimEngine::enterFailSafeFloor()
{
    if (config_.policy == DtmPolicy::GovernSpeed) {
        const double floor_rpm = governor_->rpmAt(0);
        if (std::fabs(floor_rpm - model_.config().rpm) > 1e-9) {
            system_.changeRpmAll(floor_rpm);
            model_.setRpm(floor_rpm);
            ++partial_.speedChanges;
            HDDTHERM_OBS_COUNT("dtm.governor.speed_change");
        }
    } else if (!gated_) {
        gated_ = true;
        ++partial_.gateEvents;
        HDDTHERM_OBS_COUNT("dtm.gate.engage");
        applyGates();
        if (config_.policy == DtmPolicy::GateAndLowRpm) {
            system_.changeRpmAll(config_.lowRpm);
            model_.setRpm(config_.lowRpm);
        }
    }
}

void
CoSimEngine::advanceTo(sim::SimTime t)
{
    HDDTHERM_REQUIRE(started_, "CoSimEngine::advanceTo before start");
    system_.events().runUntil(t);
}

void
CoSimEngine::advanceToCompletion()
{
    HDDTHERM_REQUIRE(started_, "CoSimEngine::advanceToCompletion before "
                               "start");
    system_.runAll();
}

bool
CoSimEngine::finished() const
{
    return started_ && completed_ >= workload_size_;
}

double
CoSimEngine::heatOutputW() const
{
    return model_.totalPowerW() * double(system_.diskCount());
}

bool
CoSimEngine::setAmbient(double ambient_c)
{
    // An ambientProfile owns the ambient for the whole run: external
    // re-points are rejected (not silently dropped) so callers can tell.
    if (ambient_schedule_)
        return false;
    model_.setAmbient(ambient_c);
    return true;
}

void
CoSimEngine::setBayPower(bool on)
{
    if (powered_ == on)
        return;
    powered_ = on;
    model_.setPowered(on);
    applyGates();
}

CoSimResult
CoSimEngine::result() const
{
    CoSimResult result = partial_;
    result.metrics = system_.metrics();
    result.simulatedSec = system_.events().now();
    if (result.simulatedSec > 0.0) {
        result.meanTempC = temp_integral_ / result.simulatedSec;
        result.meanVcmDuty = duty_weighted_ / result.simulatedSec;
    }
    return result;
}

fault::EmergencyReport
emergencyReport(const CoSimResult& run)
{
    fault::EmergencyReport report;
    report.simulatedSec = run.simulatedSec;
    report.maxTempC = run.maxTempC;
    report.envelopeExceededSec = run.envelopeExceededSec;
    report.gateEvents = run.gateEvents;
    report.gatedSec = run.gatedSec;
    report.failSafeActivations = run.failSafeActivations;
    report.failSafeSec = run.failSafeSec;
    report.invalidReadings = run.invalidReadings;
    report.meanLatencyMs = run.metrics.meanMs();
    return report;
}

fault::EmergencyReport
emergencyReport(const CoSimResult& run, const CoSimResult& baseline)
{
    fault::EmergencyReport report = emergencyReport(run);
    report.hasBaseline = true;
    report.baselineMeanLatencyMs = baseline.metrics.meanMs();
    report.baselineEnvelopeExceededSec = baseline.envelopeExceededSec;
    report.latencyPenaltyMs =
        report.meanLatencyMs - report.baselineMeanLatencyMs;
    report.throttlePenaltySec = run.gatedSec - baseline.gatedSec;
    return report;
}

CoSimulation::CoSimulation(const CoSimConfig& config) : config_(config)
{
    validateConfig(config_);
}

CoSimResult
CoSimulation::run(const std::vector<sim::IoRequest>& workload)
{
    CoSimEngine engine(config_);
    engine.start(workload);
    engine.advanceToCompletion();
    return engine.result();
}

} // namespace hddtherm::dtm
