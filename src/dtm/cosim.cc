#include "dtm/cosim.h"

#include "thermal/envelope.h"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <limits>

#include "obs/metrics.h"
#include "snap/delta.h"
#include "snap/snapshot.h"
#include "snap/state.h"
#include "util/error.h"
#include "util/log.h"

namespace hddtherm::dtm {

namespace {

/// Shared construction-time validation (CoSimulation and CoSimEngine).
void
validateConfig(const CoSimConfig& config)
{
    HDDTHERM_REQUIRE(config.controlIntervalSec > 0.0,
                     "control interval must be positive");
    HDDTHERM_REQUIRE(config.resumeThresholdC < config.gateThresholdC,
                     "hysteresis band is inverted");
    HDDTHERM_REQUIRE(config.warmupFraction >= 0.0 &&
                         config.warmupFraction < 1.0,
                     "warm-up fraction must be in [0, 1)");
    HDDTHERM_REQUIRE(config.failSafeInvalidTicks >= 1,
                     "fail-safe needs at least one invalid tick");
    config.faults.validate();
    if (config.policy == DtmPolicy::GateAndLowRpm) {
        HDDTHERM_REQUIRE(config.lowRpm > 0.0 &&
                             config.lowRpm < config.system.disk.rpm,
                         "low RPM must be positive and below full speed");
    }
    if (config.policy == DtmPolicy::GovernSpeed) {
        HDDTHERM_REQUIRE(config.rpmLadder.size() >= 2,
                         "speed governor needs a ladder of speeds");
    }
}

/**
 * Order-sensitive FNV-1a fingerprint of a workload in caller order.
 * Checkpoints record this instead of embedding the trace: the trace is a
 * pure function of the configuration seed, so resume regenerates it and
 * validates the bytes it would have fed match the bytes the checkpointed
 * run was feeding.
 */
std::uint64_t
workloadFingerprint(const std::vector<sim::IoRequest>& workload)
{
    std::uint64_t hash = 14695981039346656037ull;
    for (const auto& req : workload) {
        std::uint64_t words[5];
        sim::packIoRequest(req, words);
        hash = snap::fnv1a64(words, sizeof words, hash);
    }
    return hash;
}

/// One thermal model stands in for every (symmetric) member disk; disk 0
/// supplies the measured VCM duty.
thermal::DriveThermalConfig
thermalConfigFor(const CoSimConfig& config)
{
    thermal::DriveThermalConfig tcfg;
    tcfg.geometry = config.system.disk.geometry;
    tcfg.rpm = config.system.disk.rpm;
    tcfg.ambientC = config.ambientC;
    tcfg.vcmDuty = 1.0;
    tcfg.coolingScale =
        thermal::coolingScaleForPlatters(tcfg.geometry.platters);
    return tcfg;
}

/// printf-append onto a checkpoint description string.
void
appendf(std::string& out, const char* fmt, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof buf, fmt, ap);
    va_end(ap);
    out += buf;
}

} // namespace

const char*
dtmPolicyName(DtmPolicy policy)
{
    switch (policy) {
      case DtmPolicy::None:
        return "none";
      case DtmPolicy::GateRequests:
        return "gate-vcm";
      case DtmPolicy::GateAndLowRpm:
        return "gate-vcm+low-rpm";
      case DtmPolicy::GovernSpeed:
        return "speed-governor";
    }
    return "unknown";
}

CoSimEngine::CoSimEngine(const CoSimConfig& config)
    : config_((validateConfig(config), config)),
      system_(config_.system),
      thermal_domain_(system_.events().registerDomain("thermal")),
      model_(thermalConfigFor(config_))
{
    if (config_.policy == DtmPolicy::GovernSpeed) {
        governor_.emplace(model_.config(), config_.rpmLadder,
                          config_.envelopeC);
        // Start at the fastest full-duty-safe rung.
        const double start = governor_->maxSustainableRpm(1.0);
        system_.changeRpmAll(start);
        model_.setRpm(start);
    }
    if (config_.startAtSteadyState) {
        // The drive has been busy.  A DTM-guarded drive has been held at
        // (or below) the envelope by its policy; an unguarded drive simply
        // sits at its worst-case operating steady state.
        double start_air = model_.steadyAirTempC();
        if (config_.policy != DtmPolicy::None)
            start_air = std::min(start_air, config_.envelopeC);
        model_.settleWithAirAt(start_air);
    }
    if (!config_.ambientProfile.empty()) {
        ambient_schedule_.emplace(config_.ambientProfile,
                                  util::PiecewiseLinear::Extrapolate::Clamp);
    }
    if (!config_.faults.empty())
        fault_player_.emplace(config_.faults);
}

void
CoSimEngine::start(const std::vector<sim::IoRequest>& workload)
{
    HDDTHERM_REQUIRE(!workload.empty(), "empty workload");
    HDDTHERM_REQUIRE(!started_, "CoSimEngine::start called twice");
    started_ = true;
    workload_size_ = workload.size();
    warmup_count_ =
        std::size_t(config_.warmupFraction * double(workload.size()));
    system_.setCompletionCallback([this](const sim::IoCompletion&) {
        if (++completed_ == warmup_count_)
            system_.resetMetrics();
    });
    // The fingerprint covers the caller's order (what a resume will
    // re-supply); the feed order is arrival order, stable so same-time
    // requests keep the caller's order.
    workload_hash_ = workloadFingerprint(workload);
    workload_ = workload;
    std::stable_sort(workload_.begin(), workload_.end(),
                     [](const sim::IoRequest& a, const sim::IoRequest& b) {
                         return a.arrival < b.arrival;
                     });
    // Prime the feed window before arming the periodic tasks, so the
    // first arrivals take the lowest sequence numbers (as an eager
    // submit would) and each control tick tops the window up from there.
    feedArrivals(feedHorizon());
    // The DTM control loop is a periodic task in the kernel's thermal
    // domain: sensor sampling, governor decisions, and fault-player
    // updates all happen at the tick's timestamp, interleaved with the
    // storage domain's request events on the one shared clock.
    system_.events().schedulePeriodic(thermal_domain_,
                                      config_.controlIntervalSec,
                                      "dtm.tick",
                                      [this]() { return tick(); });
    // The checkpoint task is armed after the control loop, at the SAME
    // period: at every coincident timestamp it fires second (the
    // sequence number breaks the tie), captures the post-tick state, and
    // stops exactly when the control loop does — so its last event never
    // advances the clock past the bare run's horizon.  Its own counter
    // decides which firings actually write (see checkpointTick).
    if (ckpt_mgr_) {
        system_.events().schedulePeriodic(
            thermal_domain_, config_.controlIntervalSec,
            "snap.checkpoint", [this]() { return checkpointTick(); });
    }
}

bool
CoSimEngine::tick()
{
    const sim::SimTime now = system_.events().now();
    const double dt = now - last_tick_;
    last_tick_ = now;

    // Top up the arrival feed window first: the window is two control
    // intervals, so every arrival the kernel can reach before the next
    // tick is already scheduled when this tick returns.
    feedArrivals(feedHorizon());

    // Smooth the per-interval duty for governor decisions: raw 100 ms
    // windows swing between 0 and 1 on bursty traffic and would make the
    // ladder oscillate (each spindle transition stalls the disk).
    constexpr double duty_tau = 5.0;

    if (dt > 0.0) {
        if (ambient_schedule_)
            model_.setAmbient((*ambient_schedule_)(now));
        if (fault_player_) {
            model_.setCoolingFaultScale(fault_player_->coolingScaleAt(now));
            model_.setAmbientOffsetC(fault_player_->ambientOffsetAt(now));
        }
        // Measure the VCM duty over the last interval from disk 0.
        const double seek_total = system_.disk(0).activity().seekSec;
        const double duty =
            std::clamp((seek_total - last_seek_total_) / dt, 0.0, 1.0);
        last_seek_total_ = seek_total;
        duty_weighted_ += duty * dt;
        const double alpha = std::min(1.0, dt / duty_tau);
        duty_ewma_ += alpha * (duty - duty_ewma_);
        model_.setVcmDuty(duty);
        // The kernel owns the clock; the thermal stepper just follows it.
        model_.advanceTo(now, config_.thermalDtSec);

        // Physical-temperature statistics always track the truth; policy
        // decisions below only ever see the (possibly faulted) sensor.
        const double temp = model_.airTempC();
        temp_integral_ += temp * dt;
        partial_.maxTempC = std::max(partial_.maxTempC, temp);
        if (temp > config_.envelopeC)
            partial_.envelopeExceededSec += dt;
        if (gated_)
            partial_.gatedSec += dt;
        if (fail_safe_)
            partial_.failSafeSec += dt;

        fault::SensorReading reading{temp, true};
        if (fault_player_)
            reading = fault_player_->sense(now, temp);
        if (reading.valid) {
            invalid_run_ = 0;
        } else {
            ++partial_.invalidReadings;
            ++invalid_run_;
        }

        // A powered-off bay has no spindle to govern and no gate to trim.
        if (powered_)
            decidePolicy(reading);
    }

    if (completed_ >= workload_size_)
        return false;
    if (now >= config_.maxSimulatedSec) {
        util::logWarn("co-simulation hit the %.0f s safety cap with "
                      "%zu/%zu requests done; releasing gates",
                      config_.maxSimulatedSec, completed_,
                      workload_size_);
        // The control loop dies here but the kernel still drains every
        // pending event; schedule the rest of the trace so the capped
        // run completes the same request set an eager submit would.
        feedArrivals(std::numeric_limits<double>::infinity());
        system_.gateAll(false);
        return false;
    }
    return true;
}

void
CoSimEngine::feedArrivals(double until)
{
    while (feed_next_ < workload_.size() &&
           workload_[feed_next_].arrival <= until) {
        system_.submit(workload_[feed_next_]);
        ++feed_next_;
    }
}

double
CoSimEngine::feedHorizon() const
{
    return system_.events().now() + 2.0 * config_.controlIntervalSec;
}

void
CoSimEngine::decidePolicy(const fault::SensorReading& reading)
{
    if (config_.policy == DtmPolicy::None)
        return;

    // Fail-safe: too many consecutive blind ticks throttle to the safe
    // floor; the first valid reading hands control back to the policy
    // (which releases the floor through its own hysteresis).
    if (!fail_safe_ && invalid_run_ >= config_.failSafeInvalidTicks) {
        fail_safe_ = true;
        ++partial_.failSafeActivations;
        HDDTHERM_OBS_COUNT("dtm.fail_safe.entry");
        enterFailSafeFloor();
    } else if (fail_safe_ && reading.valid) {
        fail_safe_ = false;
    }
    if (fail_safe_ || !reading.valid)
        return; // hold the last actuation while blind

    const double temp = reading.valueC;
    if (config_.policy == DtmPolicy::GovernSpeed) {
        const double target =
            governor_->decide(model_.config().rpm, temp, duty_ewma_);
        if (std::fabs(target - model_.config().rpm) > 1e-9) {
            system_.changeRpmAll(target);
            model_.setRpm(target);
            ++partial_.speedChanges;
            HDDTHERM_OBS_COUNT("dtm.governor.speed_change");
        }
    } else {
        if (!gated_ && temp >= config_.gateThresholdC) {
            gated_ = true;
            ++partial_.gateEvents;
            HDDTHERM_OBS_COUNT("dtm.gate.engage");
            applyGates();
            if (config_.policy == DtmPolicy::GateAndLowRpm) {
                system_.changeRpmAll(config_.lowRpm);
                model_.setRpm(config_.lowRpm);
            }
        } else if (gated_ && temp <= config_.resumeThresholdC) {
            gated_ = false;
            HDDTHERM_OBS_COUNT("dtm.gate.disengage");
            if (config_.policy == DtmPolicy::GateAndLowRpm) {
                system_.changeRpmAll(config_.system.disk.rpm);
                model_.setRpm(config_.system.disk.rpm);
            }
            applyGates();
        }
    }
}

void
CoSimEngine::enterFailSafeFloor()
{
    if (config_.policy == DtmPolicy::GovernSpeed) {
        const double floor_rpm = governor_->rpmAt(0);
        if (std::fabs(floor_rpm - model_.config().rpm) > 1e-9) {
            system_.changeRpmAll(floor_rpm);
            model_.setRpm(floor_rpm);
            ++partial_.speedChanges;
            HDDTHERM_OBS_COUNT("dtm.governor.speed_change");
        }
    } else if (!gated_) {
        gated_ = true;
        ++partial_.gateEvents;
        HDDTHERM_OBS_COUNT("dtm.gate.engage");
        applyGates();
        if (config_.policy == DtmPolicy::GateAndLowRpm) {
            system_.changeRpmAll(config_.lowRpm);
            model_.setRpm(config_.lowRpm);
        }
    }
}

void
CoSimEngine::advanceTo(sim::SimTime t)
{
    HDDTHERM_REQUIRE(started_, "CoSimEngine::advanceTo before start");
    system_.events().runUntil(t);
}

void
CoSimEngine::advanceToCompletion()
{
    HDDTHERM_REQUIRE(started_, "CoSimEngine::advanceToCompletion before "
                               "start");
    system_.runAll();
    // A completed run leaves every queued checkpoint durable (and any
    // writer-thread failure surfaces here, not in a destructor).
    if (ckpt_mgr_)
        ckpt_mgr_->flush();
}

bool
CoSimEngine::finished() const
{
    return started_ && completed_ >= workload_size_;
}

double
CoSimEngine::heatOutputW() const
{
    return model_.totalPowerW() * double(system_.diskCount());
}

bool
CoSimEngine::setAmbient(double ambient_c)
{
    // An ambientProfile owns the ambient for the whole run: external
    // re-points are rejected (not silently dropped) so callers can tell.
    if (ambient_schedule_)
        return false;
    model_.setAmbient(ambient_c);
    return true;
}

void
CoSimEngine::setBayPower(bool on)
{
    if (powered_ == on)
        return;
    powered_ = on;
    model_.setPowered(on);
    applyGates();
}

CoSimResult
CoSimEngine::result() const
{
    CoSimResult result = partial_;
    result.metrics = system_.metrics();
    result.simulatedSec = system_.events().now();
    if (result.simulatedSec > 0.0) {
        result.meanTempC = temp_integral_ / result.simulatedSec;
        result.meanVcmDuty = duty_weighted_ / result.simulatedSec;
    }
    return result;
}

void
CoSimEngine::enableSnapshots()
{
    HDDTHERM_REQUIRE(!started_,
                     "enable snapshots before CoSimEngine::start");
    system_.events().enableSnapshots(true);
}

void
CoSimEngine::enableCheckpoints(const snap::CheckpointPolicy& policy)
{
    HDDTHERM_REQUIRE(!started_,
                     "enable checkpoints before CoSimEngine::start");
    HDDTHERM_REQUIRE(policy.everySec > 0.0,
                     "standalone checkpoint cadence is everySec "
                     "(everyEpochs is a fleet concept)");
    enableSnapshots();
    ckpt_mgr_.emplace(policy);
    // The cadence is quantized to control ticks: the checkpoint task
    // fires in lockstep with the control loop (see checkpointTick).
    ckpt_every_ticks_ = std::max<std::uint64_t>(
        1, std::uint64_t(std::llround(policy.everySec /
                                      config_.controlIntervalSec)));
    ckpt_ticks_left_ = ckpt_every_ticks_;
}

void
CoSimEngine::saveSections(snap::CheckpointWriter& out,
                          const std::string& prefix) const
{
    HDDTHERM_REQUIRE(started_,
                     "CoSimEngine::saveSections before start: nothing "
                     "is in flight yet");
    {
        snap::StateWriter w(prefix + "dtm.cosim");
        w.u64("workload_size", workload_size_);
        w.u64("workload_hash", workload_hash_);
        w.u64("feed_next", feed_next_);
        w.u64("completed", completed_);
        w.u64("warmup_count", warmup_count_);
        w.boolean("gated", gated_);
        w.boolean("powered", powered_);
        w.boolean("fail_safe", fail_safe_);
        w.i64("invalid_run", invalid_run_);
        w.f64("last_seek_total", last_seek_total_);
        w.f64("duty_weighted", duty_weighted_);
        w.f64("duty_ewma", duty_ewma_);
        w.f64("temp_integral", temp_integral_);
        w.f64("last_tick", last_tick_);
        w.u64("ckpt_index", ckpt_index_);
        w.u64("ckpt_ticks_left", ckpt_ticks_left_);
        w.u64("speed_changes", partial_.speedChanges);
        w.f64("max_temp_c", partial_.maxTempC);
        w.f64("envelope_exceeded_sec", partial_.envelopeExceededSec);
        w.f64("gated_sec", partial_.gatedSec);
        w.u64("gate_events", partial_.gateEvents);
        w.u64("invalid_readings", partial_.invalidReadings);
        w.u64("fail_safe_activations", partial_.failSafeActivations);
        w.f64("fail_safe_sec", partial_.failSafeSec);
        out.addSection(std::move(w));
    }
    {
        snap::StateWriter w(prefix + "sim.system");
        system_.saveState(w);
        out.addSection(std::move(w));
    }
    {
        snap::StateWriter w(prefix + "thermal.model");
        model_.saveState(w);
        out.addSection(std::move(w));
    }
    if (fault_player_) {
        snap::StateWriter w(prefix + "fault.player");
        fault_player_->saveState(w);
        out.addSection(std::move(w));
    }
    {
        // Kernel last: its restore re-arms events against the modules
        // above, which must already carry their saved state.
        snap::StateWriter w(prefix + "engine.kernel");
        system_.events().saveState(w);
        out.addSection(std::move(w));
    }
}

void
CoSimEngine::loadSections(const snap::CheckpointReader& in,
                          const std::vector<sim::IoRequest>& workload,
                          const std::string& prefix)
{
    HDDTHERM_REQUIRE(!started_,
                     "CoSimEngine::loadSections needs a freshly "
                     "constructed engine");
    system_.events().enableSnapshots(true);
    {
        auto r = in.section(prefix + "dtm.cosim");
        workload_size_ = r.u64("workload_size");
        workload_hash_ = r.u64("workload_hash");
        feed_next_ = r.u64("feed_next");
        completed_ = r.u64("completed");
        warmup_count_ = r.u64("warmup_count");
        gated_ = r.boolean("gated");
        powered_ = r.boolean("powered");
        fail_safe_ = r.boolean("fail_safe");
        invalid_run_ = int(r.i64("invalid_run"));
        last_seek_total_ = r.f64("last_seek_total");
        duty_weighted_ = r.f64("duty_weighted");
        duty_ewma_ = r.f64("duty_ewma");
        temp_integral_ = r.f64("temp_integral");
        last_tick_ = r.f64("last_tick");
        ckpt_index_ = r.u64("ckpt_index");
        ckpt_ticks_left_ = r.u64("ckpt_ticks_left");
        partial_.speedChanges = r.u64("speed_changes");
        partial_.maxTempC = r.f64("max_temp_c");
        partial_.envelopeExceededSec = r.f64("envelope_exceeded_sec");
        partial_.gatedSec = r.f64("gated_sec");
        partial_.gateEvents = r.u64("gate_events");
        partial_.invalidReadings = r.u64("invalid_readings");
        partial_.failSafeActivations = r.u64("fail_safe_activations");
        partial_.failSafeSec = r.f64("fail_safe_sec");
        HDDTHERM_REQUIRE(r.atEnd(), "checkpoint section '" +
                                        r.section() +
                                        "' has trailing fields");
    }
    // The checkpoint carries only the feed cursor and a fingerprint; the
    // caller re-supplies the trace.  Validate it is byte-for-byte the
    // trace the checkpointed run was feeding before trusting the cursor.
    HDDTHERM_REQUIRE(workload.size() == workload_size_,
                     "checkpoint section '" + prefix +
                         "dtm.cosim': re-supplied workload has " +
                         std::to_string(workload.size()) +
                         " requests, checkpoint expects " +
                         std::to_string(workload_size_));
    HDDTHERM_REQUIRE(workloadFingerprint(workload) == workload_hash_,
                     "checkpoint section '" + prefix +
                         "dtm.cosim': re-supplied workload does not match "
                         "the checkpointed run's trace (fingerprint "
                         "mismatch)");
    HDDTHERM_REQUIRE(feed_next_ <= workload_size_,
                     "checkpoint section '" + prefix +
                         "dtm.cosim': feed cursor past the workload end");
    workload_ = workload;
    std::stable_sort(workload_.begin(), workload_.end(),
                     [](const sim::IoRequest& a, const sim::IoRequest& b) {
                         return a.arrival < b.arrival;
                     });
    {
        auto r = in.section(prefix + "sim.system");
        system_.loadState(r);
    }
    {
        auto r = in.section(prefix + "thermal.model");
        model_.loadState(r);
    }
    if (fault_player_) {
        auto r = in.section(prefix + "fault.player");
        fault_player_->loadState(r);
    }
    // The mutators the restored state implies have already been applied
    // through loadState (RPM, gates, power); re-assert the gate from the
    // restored control flags so both authorities agree.
    applyGates();
    started_ = true;
    system_.setCompletionCallback([this](const sim::IoCompletion&) {
        if (++completed_ == warmup_count_)
            system_.resetMetrics();
    });
    {
        auto r = in.section(prefix + "engine.kernel");
        system_.events().loadState(
            r,
            [this](const snap::EventTag& tag) {
                return system_.restoreEvent(tag);
            },
            [this](const std::string& name)
                -> engine::SimKernel::PeriodicCallback {
                if (name == "dtm.tick")
                    return [this]() { return tick(); };
                if (name == "snap.checkpoint")
                    return [this]() { return checkpointTick(); };
                return nullptr;
            });
    }
}

void
CoSimEngine::restoreFromCheckpoint(const std::string& path,
                                   const std::vector<sim::IoRequest>& workload)
{
    // Resolving the chain makes resuming from a delta leaf transparent:
    // a full checkpoint resolves to itself.
    snap::CheckpointReader in = snap::resolveCheckpointChain(path);
    HDDTHERM_REQUIRE(in.configHash() == checkpointConfigHash(config_),
                     "checkpoint '" + path +
                         "' was written under a different configuration "
                         "(config hash mismatch)");
    loadSections(in, workload);
    // The restored ckpt_index_ is the *next* index to write; prime the
    // manager so the first post-resume delta diffs against this leaf.
    if (ckpt_mgr_)
        ckpt_mgr_->seedDelta(path, ckpt_index_);
}

std::string
CoSimEngine::writeCheckpoint()
{
    const std::string path = queueCheckpoint();
    // The public API is synchronous: the file exists when it returns.
    ckpt_mgr_->flush();
    return path;
}

std::string
CoSimEngine::queueCheckpoint()
{
    HDDTHERM_REQUIRE(ckpt_mgr_.has_value(),
                     "writeCheckpoint without enableCheckpoints");
    // Bump the index first so the saved value is the *next* index: a
    // resumed run then numbers its checkpoints exactly like the
    // uninterrupted one.
    const std::uint64_t index = ckpt_index_++;
    snap::CheckpointWriter out(checkpointConfigHash(config_));
    {
        snap::StateWriter meta("meta");
        meta.str("kind", "dtm.cosim");
        meta.f64("sim_time", now());
        out.addSection(std::move(meta));
    }
    saveSections(out);
    return ckpt_mgr_->write(out, index);
}

bool
CoSimEngine::checkpointTick()
{
    // A restored task in a run resumed without enableCheckpoints stays
    // resolvable but dies on its first firing.
    if (!ckpt_mgr_)
        return false;
    // Mirror tick()'s stop condition exactly: both tasks then die at the
    // same timestamp and runAll() drains to the same final time as a
    // run without checkpointing.
    if (finished() || system_.events().now() >= config_.maxSimulatedSec)
        return false;
    if (--ckpt_ticks_left_ == 0) {
        // Reset before writing so the saved countdown is the full
        // period, as the resumed run must observe it.  The periodic path
        // queues without flushing: the fsync overlaps simulation.
        ckpt_ticks_left_ = ckpt_every_ticks_;
        queueCheckpoint();
        HDDTHERM_OBS_COUNT("snap.checkpoint.written");
    }
    return true;
}

std::string
checkpointDescription(const CoSimConfig& config)
{
    std::string d = "cosim-v1";
    appendf(d, "|policy=%s", dtmPolicyName(config.policy));
    appendf(d, "|envelope=%.17g", config.envelopeC);
    appendf(d, "|gate=%.17g|resume=%.17g", config.gateThresholdC,
            config.resumeThresholdC);
    appendf(d, "|low_rpm=%.17g", config.lowRpm);
    d += "|ladder=";
    for (double rpm : config.rpmLadder)
        appendf(d, "%.17g,", rpm);
    appendf(d, "|ambient=%.17g", config.ambientC);
    d += "|ambient_profile=";
    for (const auto& [t, c] : config.ambientProfile)
        appendf(d, "%.17g:%.17g,", t, c);
    appendf(d, "|control=%.17g|thermal_dt=%.17g",
            config.controlIntervalSec, config.thermalDtSec);
    appendf(d, "|steady_start=%d", config.startAtSteadyState ? 1 : 0);
    appendf(d, "|max_sec=%.17g|warmup=%.17g", config.maxSimulatedSec,
            config.warmupFraction);
    appendf(d, "|fail_safe_ticks=%d", config.failSafeInvalidTicks);

    const sim::SystemConfig& sys = config.system;
    appendf(d, "|disks=%d|raid=%d|stripe=%d", sys.disks, int(sys.raid),
            sys.stripeSectors);
    appendf(d, "|wb=%d:%.17g", sys.immediateWriteReport ? 1 : 0,
            sys.writeReportLatencyMs);
    const sim::DiskConfig& disk = sys.disk;
    appendf(d, "|geom=%.17g:%.17g:%d:%.17g", disk.geometry.diameterInches,
            disk.geometry.innerRatio, disk.geometry.platters,
            disk.geometry.strokeEfficiency);
    appendf(d, "|tech=%.17g:%.17g|zones=%d|rpm=%.17g", disk.tech.bpi,
            disk.tech.tpi, disk.zones, disk.rpm);
    if (disk.seekProfile) {
        appendf(d, "|seek=%.17g:%.17g:%.17g",
                disk.seekProfile->trackToTrackMs, disk.seekProfile->averageMs,
                disk.seekProfile->fullStrokeMs);
    } else {
        d += "|seek=default";
    }
    appendf(d, "|head_switch=%.17g|overhead=%.17g|bus=%.17g",
            disk.headSwitchMs, disk.controllerOverheadMs, disk.busMBps);
    appendf(d, "|cache=%zu:%d:%d", disk.cacheBytes, disk.cacheSegments,
            disk.readAheadToTrackEnd ? 1 : 0);
    appendf(d, "|sched=%s", sim::schedulerPolicyName(disk.scheduler));
    appendf(d, "|rpm_change=%.17g|idle_gaps=%d", disk.rpmChangeSecPerKrpm,
            disk.recordIdleGaps ? 1 : 0);

    appendf(d, "|noise_seed=%llu",
            static_cast<unsigned long long>(config.faults.noiseSeed()));
    d += "|faults=";
    for (const auto& e : config.faults.events()) {
        appendf(d, "%.17g:%d:%.17g:%.17g:%d,", e.timeSec, int(e.kind),
                e.value, e.durationSec, e.target);
    }
    return d;
}

std::uint64_t
checkpointConfigHash(const CoSimConfig& config)
{
    const std::string d = checkpointDescription(config);
    return snap::fnv1a64(d.data(), d.size());
}

fault::EmergencyReport
emergencyReport(const CoSimResult& run)
{
    fault::EmergencyReport report;
    report.simulatedSec = run.simulatedSec;
    report.maxTempC = run.maxTempC;
    report.envelopeExceededSec = run.envelopeExceededSec;
    report.gateEvents = run.gateEvents;
    report.gatedSec = run.gatedSec;
    report.failSafeActivations = run.failSafeActivations;
    report.failSafeSec = run.failSafeSec;
    report.invalidReadings = run.invalidReadings;
    report.meanLatencyMs = run.metrics.meanMs();
    return report;
}

fault::EmergencyReport
emergencyReport(const CoSimResult& run, const CoSimResult& baseline)
{
    fault::EmergencyReport report = emergencyReport(run);
    report.hasBaseline = true;
    report.baselineMeanLatencyMs = baseline.metrics.meanMs();
    report.baselineEnvelopeExceededSec = baseline.envelopeExceededSec;
    report.latencyPenaltyMs =
        report.meanLatencyMs - report.baselineMeanLatencyMs;
    report.throttlePenaltySec = run.gatedSec - baseline.gatedSec;
    return report;
}

CoSimulation::CoSimulation(const CoSimConfig& config) : config_(config)
{
    validateConfig(config_);
}

CoSimResult
CoSimulation::run(const std::vector<sim::IoRequest>& workload)
{
    CoSimEngine engine(config_);
    engine.start(workload);
    engine.advanceToCompletion();
    return engine.result();
}

} // namespace hddtherm::dtm
