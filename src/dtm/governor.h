/**
 * @file
 * Multi-speed governor: the dynamic form of §5.2's thermal-slack
 * exploitation.
 *
 * A multi-speed (DRPM-class) disk can ramp its spindle up when the
 * workload seeks little and thermal slack exists, and back down as the
 * temperature approaches the envelope.  The governor picks, from a ladder
 * of supported speeds, the fastest one whose *predicted* steady-state air
 * temperature at the currently measured VCM duty stays under the envelope
 * by a safety margin — dropping immediately if the measured temperature
 * gets too close.
 *
 * Steady temperature is exactly linear in VCM duty for a fixed speed in
 * the lumped network, so each ladder level is characterized by its
 * duty-0 and duty-1 steady temperatures, computed once.
 */
#ifndef HDDTHERM_DTM_GOVERNOR_H
#define HDDTHERM_DTM_GOVERNOR_H

#include <vector>

#include "thermal/drive_thermal.h"

namespace hddtherm::dtm {

/// Speed governor over a ladder of spindle speeds.
class SpeedGovernor
{
  public:
    /**
     * @param base drive thermal configuration (rpm field ignored).
     * @param rpm_ladder supported speeds, any order (sorted internally).
     * @param envelope_c thermal envelope.
     * @param up_margin_c extra *measured* headroom demanded on top of the
     *        measured per-rung air-temperature jump (see upStepJumpC)
     *        before stepping up.
     * @param down_trigger_c measured temperature (relative to envelope)
     *        at which the governor steps down regardless of prediction.
     */
    SpeedGovernor(const thermal::DriveThermalConfig& base,
                  std::vector<double> rpm_ladder,
                  double envelope_c = thermal::kThermalEnvelopeC,
                  double up_margin_c = 0.1,
                  double down_trigger_c = 0.02);

    /// Number of ladder levels.
    int levels() const { return int(ladder_.size()); }

    /// Speed of ladder level @p i (ascending).
    double rpmAt(int level) const { return ladder_.at(std::size_t(level)); }

    /// Predicted steady air temperature at (level, duty).
    double predictedSteadyC(int level, double duty) const;

    /**
     * Choose the operating speed.  The governor moves at most one rung
     * per decision: down when the measured temperature trips the trigger
     * or the current rung is predicted unsustainable at the observed
     * duty; up when the next rung is predicted sustainable and the
     * measured temperature leaves enough headroom to absorb the step.
     *
     * @param current_rpm the speed currently in force.
     * @param measured_temp_c current internal air temperature.
     * @param measured_duty VCM duty observed over the last interval.
     * @return the ladder speed to run at (may equal current_rpm).
     */
    double decide(double current_rpm, double measured_temp_c,
                  double measured_duty) const;

    /// Highest ladder speed sustainable at @p duty (0 if none).
    double maxSustainableRpm(double duty) const;

    /**
     * Measured fast air-temperature jump of stepping from rung @p level to
     * the next one: the extra windage lands in the near-massless internal
     * air within a fraction of a second, long before the solids respond.
     * The governor demands this much headroom before climbing.
     */
    double upStepJumpC(int level) const;

  private:
    std::vector<double> ladder_;
    std::vector<double> steady_duty0_;
    std::vector<double> steady_duty1_;
    std::vector<double> up_jump_; ///< Fast jump to the next rung.
    double envelope_;
    double up_margin_;
    double down_trigger_;
};

} // namespace hddtherm::dtm

#endif // HDDTHERM_DTM_GOVERNOR_H
