/**
 * @file
 * Mirrored-disk DTM (paper §5.4).
 *
 * The paper proposes mirrored disks as a throttling mechanism that never
 * stops service: writes propagate to both members, reads are directed to
 * one mirror while the other cools, and the roles swap near the thermal
 * limit.  Each member individually respects the envelope while the pair
 * keeps serving — unlike request gating, which suspends the whole system
 * during cool-down.
 *
 * MirrorDtmSimulation co-simulates a RAID-1 pair with one calibrated
 * thermal model per member, fed by that member's measured VCM duty.
 */
#ifndef HDDTHERM_DTM_MIRROR_H
#define HDDTHERM_DTM_MIRROR_H

#include <vector>

#include "sim/storage_system.h"
#include "thermal/drive_thermal.h"

namespace hddtherm::dtm {

/// Read-steering policies for the mirrored pair.
enum class MirrorPolicy
{
    Balanced,     ///< Least-loaded steering (standard RAID-1 baseline).
    ThermalSteer, ///< Direct reads to the coolest member (DTM).
};

/// Human-readable policy name.
const char* mirrorPolicyName(MirrorPolicy policy);

/// Configuration of the mirrored-pair co-simulation.
struct MirrorDtmConfig
{
    sim::SystemConfig system;     ///< Must be RaidLevel::Raid1.
    MirrorPolicy policy = MirrorPolicy::ThermalSteer;
    double envelopeC = thermal::kThermalEnvelopeC;
    /// Swap hysteresis: steer away from the preferred member only when it
    /// is at least this much warmer than the coolest one.
    double swapHysteresisC = 0.02;
    double ambientC = thermal::kBaselineAmbientC;
    /**
     * Optional per-member ambient temperatures (e.g. one member sits in a
     * hotter chassis slot); empty means every member sees ambientC.  This
     * is where thermal steering genuinely pays: with symmetric members
     * the time-averaged read duty — and hence the slow thermal state — is
     * identical under any steering.
     */
    std::vector<double> memberAmbientC;
    double controlIntervalSec = 0.1;
    double thermalDtSec = thermal::kPaperTimestepSec;
    double maxSimulatedSec = 3600.0;
};

/// Outcome of a mirrored-pair run.
struct MirrorDtmResult
{
    sim::ResponseMetrics metrics;
    std::vector<double> maxTempC;     ///< Per-member peak temperature.
    std::vector<double> meanDuty;     ///< Per-member mean VCM duty.
    double envelopeExceededSec = 0.0; ///< Any member above the envelope.
    std::uint64_t swaps = 0;          ///< Preferred-mirror changes.
    double simulatedSec = 0.0;
};

/// Thermal/performance co-simulation of a RAID-1 pair.
class MirrorDtmSimulation
{
  public:
    explicit MirrorDtmSimulation(const MirrorDtmConfig& config);

    /// Run a workload to completion.
    MirrorDtmResult run(const std::vector<sim::IoRequest>& workload);

    /// Configuration in force.
    const MirrorDtmConfig& config() const { return config_; }

  private:
    MirrorDtmConfig config_;
};

} // namespace hddtherm::dtm

#endif // HDDTHERM_DTM_MIRROR_H
