/**
 * @file
 * Technology-scaling timeline for recording densities and data-rate targets
 * (paper §4).
 *
 * Anchored to the Hitachi historical data the paper cites: in 1999 the
 * industry stood at 270 KBPI / 20 KTPI / 47 MB/s with compound annual
 * growth rates of 30% (BPI), 50% (TPI) and 40% (IDR).  The paper slows the
 * density CGRs to 14% / 28% after 2003 so that areal density crosses
 * 1 Tb/in^2 in 2010 at a bit aspect ratio near 3.4, while the 40% IDR
 * target continues unabated.  All of Table 3's IDR_required values follow
 * from these anchors (e.g. 47 x 1.4^3 = 128.97 MB/s in 2002).
 */
#ifndef HDDTHERM_ROADMAP_SCALING_H
#define HDDTHERM_ROADMAP_SCALING_H

#include "hdd/recording.h"

namespace hddtherm::roadmap {

/// Scaling-law parameters; defaults reproduce the paper exactly.
struct ScalingParams
{
    int anchorYear = 1999;       ///< Year of the Hitachi anchor values.
    double anchorBpi = 270e3;    ///< BPI in the anchor year.
    double anchorTpi = 20e3;     ///< TPI in the anchor year.
    double anchorIdr = 47.0;     ///< IDR (MB/s) in the anchor year.
    int slowdownYear = 2003;     ///< Last year of the fast CGRs.
    double bpiCgrEarly = 0.30;   ///< BPI CGR through slowdownYear.
    double tpiCgrEarly = 0.50;   ///< TPI CGR through slowdownYear.
    double bpiCgrLate = 0.14;    ///< BPI CGR after slowdownYear.
    double tpiCgrLate = 0.28;    ///< TPI CGR after slowdownYear.
    double idrCgr = 0.40;        ///< Target IDR CGR (all years).
};

/// Evaluates the scaling laws over calendar years.
class TechnologyTimeline
{
  public:
    /// Build with the paper's parameters (or overrides for ablations).
    explicit TechnologyTimeline(const ScalingParams& params = {});

    /// Linear density (bits/inch) in @p year.
    double bpi(int year) const;

    /// Track density (tracks/inch) in @p year.
    double tpi(int year) const;

    /// Recording point in @p year.
    hdd::RecordingTech tech(int year) const { return {bpi(year), tpi(year)}; }

    /// Areal density (bits/in^2) in @p year.
    double arealDensity(int year) const { return bpi(year) * tpi(year); }

    /// Bit aspect ratio in @p year.
    double bitAspectRatio(int year) const { return bpi(year) / tpi(year); }

    /// Industry target internal data rate (MB/s) in @p year (40% CGR).
    double targetIdrMBps(int year) const;

    /// First year in which areal density reaches 1 Tb/in^2.
    int terabitYear() const;

    /// Parameters in force.
    const ScalingParams& params() const { return params_; }

  private:
    ScalingParams params_;
};

} // namespace hddtherm::roadmap

#endif // HDDTHERM_ROADMAP_SCALING_H
