#include "roadmap/planner.h"

#include <algorithm>

#include "util/error.h"

namespace hddtherm::roadmap {

const char*
planActionName(PlanAction action)
{
    switch (action) {
      case PlanAction::Hold:
        return "hold";
      case PlanAction::RaiseRpm:
        return "raise-rpm";
      case PlanAction::ShrinkPlatter:
        return "shrink-platter";
      case PlanAction::AddPlatters:
        return "shrink+add-platters";
      case PlanAction::OffTarget:
        return "off-target";
    }
    return "unknown";
}

RoadmapPlanner::RoadmapPlanner(const RoadmapEngine& engine,
                               const PlannerOptions& options)
    : engine_(engine), options_(options)
{
    HDDTHERM_REQUIRE(!options_.diameters.empty(),
                     "planner needs at least one platter size");
    HDDTHERM_REQUIRE(!options_.counts.empty(),
                     "planner needs at least one platter count");
    HDDTHERM_REQUIRE(std::is_sorted(options_.diameters.begin(),
                                    options_.diameters.end(),
                                    std::greater<double>()),
                     "diameters must be largest-first");
    HDDTHERM_REQUIRE(std::is_sorted(options_.counts.begin(),
                                    options_.counts.end()),
                     "counts must be fewest-first");
}

RoadmapPoint
RoadmapPlanner::evaluate(int year, std::size_t diameter_index,
                         std::size_t count_index) const
{
    return engine_.evaluate(year, options_.diameters.at(diameter_index),
                            options_.counts.at(count_index));
}

std::vector<PlanStep>
RoadmapPlanner::plan() const
{
    const auto& opts = engine_.options();
    std::vector<PlanStep> steps;
    std::size_t di = 0; // largest platter
    std::size_t ci = 0; // fewest platters
    double prev_capacity = 0.0;

    for (int year = opts.startYear; year <= opts.endYear; ++year) {
        PlanAction action =
            year == opts.startYear ? PlanAction::Hold : PlanAction::RaiseRpm;
        RoadmapPoint p = evaluate(year, di, ci);

        if (!p.meetsTarget) {
            // Step 3: shrink the platter until the target is reachable.
            bool found = false;
            for (std::size_t d2 = di + 1; d2 < options_.diameters.size();
                 ++d2) {
                RoadmapPoint candidate = evaluate(year, d2, ci);
                if (!candidate.meetsTarget)
                    continue;
                // Step 4: the shrink costs capacity; add platters to buy
                // it back while the target still holds.
                std::size_t c2 = ci;
                while (candidate.capacityGB < prev_capacity &&
                       c2 + 1 < options_.counts.size()) {
                    const RoadmapPoint taller = evaluate(year, d2, c2 + 1);
                    if (!taller.meetsTarget)
                        break;
                    ++c2;
                    candidate = taller;
                }
                action = c2 > ci ? PlanAction::AddPlatters
                                 : PlanAction::ShrinkPlatter;
                di = d2;
                ci = c2;
                p = candidate;
                found = true;
                break;
            }

            if (!found) {
                // Nothing meets the target: settle at the configuration
                // with the highest achievable IDR (the smallest platter),
                // stacking platters for capacity while that doesn't hurt
                // the data rate materially.
                action = PlanAction::OffTarget;
                std::size_t best_d = di;
                double best_idr = p.achievableIdr;
                for (std::size_t d2 = di; d2 < options_.diameters.size();
                     ++d2) {
                    const RoadmapPoint candidate = evaluate(year, d2, ci);
                    if (candidate.achievableIdr > best_idr) {
                        best_idr = candidate.achievableIdr;
                        best_d = d2;
                    }
                }
                std::size_t best_c = ci;
                RoadmapPoint candidate = evaluate(year, best_d, best_c);
                while (candidate.capacityGB < prev_capacity &&
                       best_c + 1 < options_.counts.size()) {
                    const RoadmapPoint taller =
                        evaluate(year, best_d, best_c + 1);
                    if (taller.achievableIdr < 0.95 * best_idr)
                        break;
                    ++best_c;
                    candidate = taller;
                }
                di = best_d;
                ci = best_c;
                p = candidate;
            }
        }

        PlanStep step;
        step.year = year;
        step.diameterInches = options_.diameters[di];
        step.platters = options_.counts[ci];
        step.targetIdr = p.targetIdr;
        step.onTarget = p.meetsTarget;
        if (p.meetsTarget && options_.runAtTargetRpm) {
            // "Employ a lower RPM to just sustain the target IDR."
            step.rpm = p.requiredRpm;
            step.idr = p.targetIdr;
            step.temperatureC = p.requiredRpmTempC;
        } else {
            step.rpm = p.maxRpm;
            step.idr = p.achievableIdr;
            auto cfg = engine_.thermalConfig(step.diameterInches,
                                             step.platters);
            cfg.rpm = std::max(step.rpm, 1.0);
            step.temperatureC = thermal::steadyAirTempC(cfg);
        }
        step.capacityGB = p.capacityGB;
        step.action = action;
        steps.push_back(step);
        prev_capacity = step.capacityGB;
    }
    return steps;
}

} // namespace hddtherm::roadmap
