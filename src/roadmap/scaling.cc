#include "roadmap/scaling.h"

#include <cmath>

#include "util/error.h"

namespace hddtherm::roadmap {

TechnologyTimeline::TechnologyTimeline(const ScalingParams& params)
    : params_(params)
{
    HDDTHERM_REQUIRE(params_.anchorBpi > 0.0 && params_.anchorTpi > 0.0 &&
                         params_.anchorIdr > 0.0,
                     "scaling anchors must be positive");
    HDDTHERM_REQUIRE(params_.slowdownYear >= params_.anchorYear,
                     "slowdown year precedes anchor year");
    HDDTHERM_REQUIRE(params_.bpiCgrEarly > -1.0 && params_.tpiCgrEarly > -1.0
                         && params_.bpiCgrLate > -1.0 &&
                         params_.tpiCgrLate > -1.0 && params_.idrCgr > -1.0,
                     "growth rates must exceed -100%");
}

namespace {

/// Two-phase compound growth from an anchor year.
double
compound(double anchor, int anchor_year, int slowdown_year, double cgr_early,
         double cgr_late, int year)
{
    const int early_years =
        std::min(year, slowdown_year) - anchor_year;
    const int late_years = std::max(0, year - slowdown_year);
    return anchor * std::pow(1.0 + cgr_early, early_years) *
           std::pow(1.0 + cgr_late, late_years);
}

} // namespace

double
TechnologyTimeline::bpi(int year) const
{
    HDDTHERM_REQUIRE(year >= params_.anchorYear,
                     "year precedes the scaling anchor");
    return compound(params_.anchorBpi, params_.anchorYear,
                    params_.slowdownYear, params_.bpiCgrEarly,
                    params_.bpiCgrLate, year);
}

double
TechnologyTimeline::tpi(int year) const
{
    HDDTHERM_REQUIRE(year >= params_.anchorYear,
                     "year precedes the scaling anchor");
    return compound(params_.anchorTpi, params_.anchorYear,
                    params_.slowdownYear, params_.tpiCgrEarly,
                    params_.tpiCgrLate, year);
}

double
TechnologyTimeline::targetIdrMBps(int year) const
{
    HDDTHERM_REQUIRE(year >= params_.anchorYear,
                     "year precedes the scaling anchor");
    return params_.anchorIdr *
           std::pow(1.0 + params_.idrCgr, year - params_.anchorYear);
}

int
TechnologyTimeline::terabitYear() const
{
    for (int year = params_.anchorYear; year < params_.anchorYear + 100;
         ++year) {
        if (arealDensity(year) >= hdd::kTerabitArealDensity)
            return year;
    }
    HDDTHERM_ASSERT(false && "areal density never reaches 1 Tb/in^2");
    return -1;
}

} // namespace hddtherm::roadmap
