/**
 * @file
 * The roadmap *procedure* of paper §4: a manufacturer walking the years.
 *
 * Table 3 and Figure 2 evaluate fixed configurations; the paper's
 * methodology (steps 1-4) and its §4.1 narrative describe what a
 * manufacturer actually does when a configuration falls off the IDR
 * target:
 *
 *   "Sacrifice the data rate and retain capacity growth by maintaining
 *    the same platter size. / Sacrifice capacity by reducing the platter
 *    size to achieve the higher data rate. / Achieve the higher IDR by
 *    shrinking the platter but get the higher capacity by adding more
 *    platters."
 *
 * RoadmapPlanner automates that walk: each year it keeps the current
 * (platter size, count) if the envelope-limited IDR still meets the
 * target; otherwise it shrinks the platter (the paper's step 3), and
 * when the shrink costs capacity relative to the previous year it adds
 * platters to buy it back (step 4) — accepting the higher cooling budget
 * that entails.  When even the smallest platter cannot meet the target,
 * the drive stays at its best configuration and the shortfall is
 * recorded.
 */
#ifndef HDDTHERM_ROADMAP_PLANNER_H
#define HDDTHERM_ROADMAP_PLANNER_H

#include <string>
#include <vector>

#include "roadmap/roadmap.h"

namespace hddtherm::roadmap {

/// What the planner did in a given year.
enum class PlanAction
{
    Hold,          ///< Same configuration as the previous year.
    RaiseRpm,      ///< Same geometry, higher spindle speed (step 2).
    ShrinkPlatter, ///< Moved to a smaller platter (step 3).
    AddPlatters,   ///< Shrink plus extra platters for capacity (step 4).
    OffTarget,     ///< No configuration meets the target this year.
};

/// Human-readable action name.
const char* planActionName(PlanAction action);

/// One year of the planned roadmap.
struct PlanStep
{
    int year = 0;
    double diameterInches = 0.0;
    int platters = 0;
    double rpm = 0.0;          ///< Speed actually run this year.
    double idr = 0.0;          ///< IDR delivered.
    double targetIdr = 0.0;    ///< The 40% CGR goal.
    double capacityGB = 0.0;
    double temperatureC = 0.0; ///< Steady temp at the chosen speed.
    PlanAction action = PlanAction::Hold;
    bool onTarget = false;
};

/// Planner options.
struct PlannerOptions
{
    /// Platter sizes available, largest first (the paper's spectrum).
    std::vector<double> diameters = {2.6, 2.1, 1.6};
    /// Platter counts available, fewest first (low/mid/high capacity).
    std::vector<int> counts = {1, 2, 4};
    /// Run at the target-IDR speed when possible rather than flat out
    /// (the paper: "the manufacturer may opt to employ a lower RPM to
    /// just sustain the target IDR").
    bool runAtTargetRpm = true;
};

/// Walks the roadmap years, adapting the configuration per the paper's
/// methodology.
class RoadmapPlanner
{
  public:
    RoadmapPlanner(const RoadmapEngine& engine,
                   const PlannerOptions& options = {});

    /// Produce the year-by-year plan over the engine's window.
    std::vector<PlanStep> plan() const;

  private:
    /// Envelope-limited IDR of a configuration in a year.
    RoadmapPoint evaluate(int year, std::size_t diameter_index,
                          std::size_t count_index) const;

    const RoadmapEngine& engine_;
    PlannerOptions options_;
};

} // namespace hddtherm::roadmap

#endif // HDDTHERM_ROADMAP_PLANNER_H
