/**
 * @file
 * The thermally constrained disk-drive technology roadmap (paper §4).
 *
 * For each calendar year, platter size and platter count, the engine
 * combines the scaling timeline (recording densities), the capacity/IDR
 * model and the thermal model to answer the paper's questions:
 *   - what RPM would the 40% IDR target require, and how hot would that
 *     run (Table 3)?
 *   - what is the highest IDR and capacity attainable inside the thermal
 *     envelope (Figure 2), optionally with a better cooling system
 *     (Figure 3) or a smaller enclosure (§4.2.2)?
 */
#ifndef HDDTHERM_ROADMAP_ROADMAP_H
#define HDDTHERM_ROADMAP_ROADMAP_H

#include <vector>

#include "hdd/capacity.h"
#include "hdd/geometry.h"
#include "hdd/zoning.h"
#include "roadmap/scaling.h"
#include "thermal/envelope.h"

namespace hddtherm::roadmap {

/// Engine options; defaults reproduce the paper's setup.
struct RoadmapOptions
{
    int startYear = 2002;       ///< First roadmap year.
    int endYear = 2012;         ///< Last roadmap year (inclusive).
    int zones = 50;             ///< ZBR zones (Table 3 uses 50).
    double baselineRpm = 15000; ///< RPM for the IDR_density column.
    double envelopeC = thermal::kThermalEnvelopeC;
    double ambientC = thermal::kBaselineAmbientC;
    hdd::FormFactor enclosure = hdd::FormFactor::ff35();
    ScalingParams scaling = {};
    /// If non-negative, overrides the density-derived ECC bits/sector.
    int eccBitsOverride = -1;
    /// Grant the paper's per-platter-count cooling budget automatically.
    bool normalizeCooling = true;
    /// VCM duty assumed when evaluating temperatures (worst case = 1).
    double vcmDuty = 1.0;
};

/// One roadmap evaluation (a cell of Table 3 plus a point of Figure 2).
struct RoadmapPoint
{
    int year = 0;
    double diameterInches = 0.0;
    int platters = 0;

    double bpi = 0.0;           ///< Linear density this year.
    double tpi = 0.0;           ///< Track density this year.
    double arealDensity = 0.0;  ///< bits/in^2.
    bool terabit = false;       ///< In the terabit-ECC regime.

    double targetIdr = 0.0;     ///< 40%-CGR IDR goal, MB/s.
    double densityIdr = 0.0;    ///< IDR at the baseline RPM (Table 3 col 1).
    double requiredRpm = 0.0;   ///< RPM needed to hit targetIdr.
    double requiredRpmTempC = 0.0; ///< Steady temp at requiredRpm.

    double maxRpm = 0.0;        ///< Envelope-limited RPM.
    double achievableIdr = 0.0; ///< IDR at maxRpm, MB/s.
    double capacityGB = 0.0;    ///< User capacity this year.
    double viscousPowerW = 0.0; ///< Windage at requiredRpm.
    bool meetsTarget = false;   ///< achievableIdr >= targetIdr.
};

/// Computes roadmap points and series.
class RoadmapEngine
{
  public:
    explicit RoadmapEngine(const RoadmapOptions& options = {});

    /// The engine's scaling timeline.
    const TechnologyTimeline& timeline() const { return timeline_; }

    /// Options in force.
    const RoadmapOptions& options() const { return options_; }

    /// ZBR layout for a configuration in @p year.
    hdd::ZoneModel layout(int year, double diameter_inches,
                          int platters) const;

    /// Evaluate one (year, size, count) roadmap cell.
    RoadmapPoint evaluate(int year, double diameter_inches,
                          int platters) const;

    /// Evaluate every year of the roadmap for one configuration.
    std::vector<RoadmapPoint> series(double diameter_inches,
                                     int platters) const;

    /**
     * The thermal configuration used for a roadmap cell (exposed so DTM
     * studies can perturb duty/cooling consistently).
     */
    thermal::DriveThermalConfig thermalConfig(double diameter_inches,
                                              int platters) const;

    /**
     * Last year (within the roadmap window) in which the configuration
     * still meets the IDR target, or startYear-1 if it never does.
     */
    int lastYearOnTarget(double diameter_inches, int platters) const;

  private:
    RoadmapOptions options_;
    TechnologyTimeline timeline_;
};

} // namespace hddtherm::roadmap

#endif // HDDTHERM_ROADMAP_ROADMAP_H
