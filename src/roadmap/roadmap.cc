#include "roadmap/roadmap.h"

#include "util/error.h"

namespace hddtherm::roadmap {

RoadmapEngine::RoadmapEngine(const RoadmapOptions& options)
    : options_(options), timeline_(options.scaling)
{
    HDDTHERM_REQUIRE(options_.startYear <= options_.endYear,
                     "empty roadmap window");
    HDDTHERM_REQUIRE(options_.zones >= 1, "need at least one zone");
    HDDTHERM_REQUIRE(options_.baselineRpm > 0.0,
                     "baseline rpm must be positive");
}

hdd::ZoneModel
RoadmapEngine::layout(int year, double diameter_inches, int platters) const
{
    hdd::PlatterGeometry g;
    g.diameterInches = diameter_inches;
    g.platters = platters;
    return hdd::ZoneModel(g, timeline_.tech(year), options_.zones,
                          options_.eccBitsOverride);
}

thermal::DriveThermalConfig
RoadmapEngine::thermalConfig(double diameter_inches, int platters) const
{
    thermal::DriveThermalConfig cfg;
    cfg.geometry.diameterInches = diameter_inches;
    cfg.geometry.platters = platters;
    cfg.enclosure = options_.enclosure;
    cfg.ambientC = options_.ambientC;
    cfg.vcmDuty = options_.vcmDuty;
    cfg.coolingScale = options_.normalizeCooling
                           ? thermal::coolingScaleForPlatters(platters)
                           : 1.0;
    cfg.rpm = options_.baselineRpm;
    return cfg;
}

RoadmapPoint
RoadmapEngine::evaluate(int year, double diameter_inches, int platters) const
{
    RoadmapPoint p;
    p.year = year;
    p.diameterInches = diameter_inches;
    p.platters = platters;
    p.bpi = timeline_.bpi(year);
    p.tpi = timeline_.tpi(year);
    p.arealDensity = timeline_.arealDensity(year);
    p.terabit = timeline_.tech(year).isTerabit();
    p.targetIdr = timeline_.targetIdrMBps(year);

    const auto zm = layout(year, diameter_inches, platters);
    p.densityIdr = hdd::internalDataRateMBps(zm, options_.baselineRpm);
    p.requiredRpm = hdd::rpmForDataRate(zm, p.targetIdr);

    auto cfg = thermalConfig(diameter_inches, platters);
    cfg.rpm = p.requiredRpm;
    p.requiredRpmTempC = thermal::steadyAirTempC(cfg);
    p.viscousPowerW = thermal::viscousDissipationW(
        p.requiredRpm, diameter_inches, platters);

    p.maxRpm = thermal::maxRpmWithinEnvelope(cfg, options_.envelopeC);
    p.achievableIdr =
        p.maxRpm > 0.0 ? hdd::internalDataRateMBps(zm, p.maxRpm) : 0.0;
    p.capacityGB = hdd::computeCapacity(zm).userGB;
    p.meetsTarget = p.achievableIdr >= p.targetIdr;
    return p;
}

std::vector<RoadmapPoint>
RoadmapEngine::series(double diameter_inches, int platters) const
{
    std::vector<RoadmapPoint> out;
    out.reserve(std::size_t(options_.endYear - options_.startYear + 1));
    for (int year = options_.startYear; year <= options_.endYear; ++year)
        out.push_back(evaluate(year, diameter_inches, platters));
    return out;
}

int
RoadmapEngine::lastYearOnTarget(double diameter_inches, int platters) const
{
    int last = options_.startYear - 1;
    for (int year = options_.startYear; year <= options_.endYear; ++year) {
        if (evaluate(year, diameter_inches, platters).meetsTarget)
            last = year;
    }
    return last;
}

} // namespace hddtherm::roadmap
