/**
 * @file
 * Work-stealing thread pool for advancing independent simulation shards.
 *
 * The fleet simulator advances every unfinished drive bay by one epoch
 * between ambient-sync barriers.  Shard runtimes are wildly uneven (a
 * throttled drive burns thermal-integration steps while an idle one
 * fast-forwards), so static partitioning would leave threads idle; each
 * worker therefore owns a deque seeded round-robin and steals from the
 * busiest peer when its own runs dry.
 *
 * Determinism contract: the executor only chooses *which thread* runs a
 * task, never reorders observable work — tasks must be mutually
 * independent (each touches only its own shard), so any interleaving
 * yields bit-identical shard states.  All cross-shard reads/merges happen
 * on the caller's thread after runBatch() returns (the barrier).
 *
 * A single-threaded executor runs batches inline on the caller, making
 * thread count a pure performance knob.
 */
#ifndef HDDTHERM_FLEET_SHARD_EXECUTOR_H
#define HDDTHERM_FLEET_SHARD_EXECUTOR_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hddtherm::fleet {

/// Fixed pool of workers executing batches of independent tasks.
class ShardExecutor
{
  public:
    using Task = std::function<void()>;

    /// Cumulative executor counters.
    struct Stats
    {
        std::uint64_t batches = 0; ///< runBatch() calls completed.
        std::uint64_t tasks = 0;   ///< Tasks executed.
        std::uint64_t steals = 0;  ///< Tasks run by a non-home worker.
    };

    /// @param threads worker count; 0 selects hardware_concurrency.
    explicit ShardExecutor(int threads = 0);

    /// Drains in-flight work and joins the workers.
    ~ShardExecutor();

    ShardExecutor(const ShardExecutor&) = delete;
    ShardExecutor& operator=(const ShardExecutor&) = delete;

    /// Worker count (1 = inline execution on the caller).
    int threads() const { return threads_; }

    /**
     * Execute every task and return when all have finished (the barrier).
     * Tasks must be mutually independent.  If any task throws, the first
     * exception (in completion order) is rethrown after the barrier; the
     * remaining tasks still run.  Not reentrant.
     */
    void runBatch(std::vector<Task> tasks);

    /// Counters accumulated since construction.
    Stats stats() const;

  private:
    void workerLoop(std::size_t self);

    /// Pop the next task for worker @p self (own deque front, else steal
    /// from the back of the longest peer deque).  Caller holds mu_.
    bool grab(std::size_t self, Task& task, bool& stolen);

    int threads_ = 1;
    std::vector<std::thread> workers_;
    std::vector<std::deque<Task>> queues_; ///< One home deque per worker.

    mutable std::mutex mu_;
    std::condition_variable work_cv_; ///< Signals workers: work or stop.
    std::condition_variable done_cv_; ///< Signals the caller: batch done.
    std::size_t pending_ = 0;         ///< Tasks queued or running.
    bool stop_ = false;
    std::exception_ptr first_error_;
    Stats stats_;
};

} // namespace hddtherm::fleet

#endif // HDDTHERM_FLEET_SHARD_EXECUTOR_H
