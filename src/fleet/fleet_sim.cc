#include "fleet/fleet_sim.h"

#include <algorithm>

#include "engine/kernel.h"
#include "trace/synth.h"
#include "util/error.h"
#include "util/log.h"
#include "util/random.h"

namespace hddtherm::fleet {

namespace {

/// One drive bay: its position plus the co-simulation advancing it.
struct Shard
{
    BayAddress addr;
    std::unique_ptr<dtm::CoSimEngine> engine;
};

/**
 * The slice of a fleet fault schedule one bay's engine replays itself:
 * sensor and ambient events addressed to the bay, re-targeted to the
 * drive-level form (-1) a CoSimEngine honors.  Airflow and bay-power
 * events stay with the barrier loop.  The bay's noise seed is split from
 * the fleet noise seed by global index, so per-bay noise streams are
 * independent and a pure function of (schedule, bay) — executor-agnostic.
 */
fault::FaultSchedule
bayFaultSchedule(const fault::FaultSchedule& fleet_faults, int global_index)
{
    std::vector<fault::FaultEvent> events;
    for (const auto& e : fleet_faults.events()) {
        switch (e.kind) {
        case fault::FaultKind::AmbientStep:
        case fault::FaultKind::AmbientSpike:
        case fault::FaultKind::SensorStuck:
        case fault::FaultKind::SensorDropout:
        case fault::FaultKind::SensorNoise:
            if (e.appliesTo(global_index)) {
                fault::FaultEvent routed = e;
                routed.target = -1;
                events.push_back(routed);
            }
            break;
        case fault::FaultKind::AirflowDegrade:
        case fault::FaultKind::BayKill:
        case fault::FaultKind::BayRestore:
            break; // resolved at epoch barriers by the fleet loop
        }
    }
    return fault::FaultSchedule(
        std::move(events),
        util::deriveStreamSeed(fleet_faults.noiseSeed(),
                               std::uint64_t(global_index)));
}

} // namespace

FleetSimulation::FleetSimulation(const FleetConfig& config)
    : config_(config)
{
    config_.validate();
    // The bay template is validated eagerly so a bad fleet fails at
    // construction, not at run() after workload generation.
    dtm::CoSimulation probe(config_.bay);
    (void)probe;
}

FleetResult
FleetSimulation::run(int threads, engine::TraceSink* epoch_trace)
{
    const auto bays = enumerateBays(config_);
    const auto chassis_count = std::size_t(config_.totalChassis());

    // Idle chassis air (zero heat) supplies each bay's starting ambient —
    // position in the rack already matters once traffic begins.
    const auto idle_air = resolveChassisAir(
        config_, std::vector<double>(chassis_count, 0.0));

    // Shards are built serially in bay order: thermal calibration (lazy,
    // shared) resolves on this thread, and engine construction order never
    // depends on the executor.
    std::vector<Shard> shards;
    shards.reserve(bays.size());
    const bool have_faults = !config_.faults.empty();
    const bool have_bay_power =
        have_faults && config_.faults.hasBayPowerEvents();
    for (const auto& addr : bays) {
        dtm::CoSimConfig cfg = config_.bay;
        cfg.ambientC =
            idle_air[std::size_t(addr.chassisIndex)].driveAmbientC;
        cfg.maxSimulatedSec = config_.maxSimulatedSec;
        if (have_faults) {
            cfg.faults = bayFaultSchedule(config_.faults, addr.globalIndex);
        }
        Shard shard;
        shard.addr = addr;
        shard.engine = std::make_unique<dtm::CoSimEngine>(cfg);
        shards.push_back(std::move(shard));
    }

    ShardExecutor executor(threads);

    // Per-bay workload generation + submission, farmed to the executor:
    // every stream is a pure function of (fleet seed, bay index), so the
    // schedule cannot perturb the traces.
    {
        std::vector<ShardExecutor::Task> setup;
        setup.reserve(shards.size());
        for (auto& shard : shards) {
            setup.push_back([this, &shard]() {
                trace::WorkloadSpec spec = config_.workload;
                spec.seed = util::deriveStreamSeed(
                    config_.seed, std::uint64_t(shard.addr.globalIndex));
                spec.devices =
                    config_.bay.system.raid == sim::RaidLevel::None
                        ? shard.engine->system().diskCount()
                        : 1;
                const trace::SyntheticWorkload gen(spec);
                const auto trace =
                    gen.generate(shard.engine->system().logicalSectors());
                shard.engine->start(trace.toRequests());
            });
        }
        executor.runBatch(std::move(setup));
    }

    FleetResult result;
    result.shards = int(shards.size());
    result.chassis.resize(chassis_count);
    for (const auto& shard : shards) {
        auto& report = result.chassis[std::size_t(shard.addr.chassisIndex)];
        report.rack = shard.addr.rack;
        report.chassis = shard.addr.chassis;
    }

    // Bay-power edges at t = 0 apply before the first epoch, in bay order.
    if (have_bay_power) {
        for (auto& shard : shards) {
            shard.engine->setBayPower(
                !config_.faults.bayKilledAt(0.0, shard.addr.globalIndex));
        }
    }

    // Epoch loop: the ambient-sync barrier is a periodic task in a
    // fleet-level kernel's "fleet-epoch" clock domain.  Each firing
    // advances every unfinished shard's kernel to the epoch timestamp in
    // parallel, then runs all cross-shard coupling on this thread in
    // fixed bay/chassis order (the determinism contract).
    std::vector<double> chassis_heat(chassis_count, 0.0);
    std::vector<double> airflow_scale(chassis_count, 1.0);
    engine::SimKernel epochs;
    const engine::DomainId epoch_domain =
        epochs.registerDomain("fleet-epoch");
    epochs.setTraceSink(epoch_trace);
    epochs.schedulePeriodic(epoch_domain, config_.epochSec, [&]() {
        const double t = epochs.now();

        std::vector<ShardExecutor::Task> batch;
        batch.reserve(shards.size());
        for (auto& shard : shards) {
            if (!shard.engine->finished()) {
                dtm::CoSimEngine* engine = shard.engine.get();
                batch.push_back([engine, t]() { engine->advanceTo(t); });
            }
        }
        executor.runBatch(std::move(batch));
        ++result.epochs;

        std::fill(chassis_heat.begin(), chassis_heat.end(), 0.0);
        bool all_done = true;
        for (const auto& shard : shards) {
            chassis_heat[std::size_t(shard.addr.chassisIndex)] +=
                shard.engine->heatOutputW();
            all_done = all_done && shard.engine->finished();
        }
        if (have_faults) {
            for (std::size_t ci = 0; ci < chassis_count; ++ci) {
                airflow_scale[ci] = config_.faults.coolingScaleAt(t, int(ci));
            }
        }
        const auto air =
            resolveChassisAir(config_, chassis_heat, airflow_scale);
        for (auto& shard : shards) {
            const auto ci = std::size_t(shard.addr.chassisIndex);
            if (have_bay_power) {
                shard.engine->setBayPower(
                    !config_.faults.bayKilledAt(t, shard.addr.globalIndex));
            }
            shard.engine->setAmbient(air[ci].driveAmbientC);
            result.chassis[ci].peakDriveAmbientC = std::max(
                result.chassis[ci].peakDriveAmbientC, air[ci].driveAmbientC);
        }

        if (all_done)
            return false;
        if (t >= config_.maxSimulatedSec) {
            util::logWarn("fleet simulation hit the %.0f s cap with "
                          "unfinished shards; aggregating partial results",
                          config_.maxSimulatedSec);
            return false;
        }
        return true;
    });
    epochs.runAll();

    // Aggregate in bay order on this thread.
    for (const auto& shard : shards) {
        const dtm::CoSimResult r = shard.engine->result();
        auto& report = result.chassis[std::size_t(shard.addr.chassisIndex)];
        result.metrics.merge(r.metrics);
        result.gateEvents += r.gateEvents;
        result.speedChanges += r.speedChanges;
        result.gatedSec += r.gatedSec;
        result.invalidReadings += r.invalidReadings;
        result.failSafeActivations += r.failSafeActivations;
        result.failSafeSec += r.failSafeSec;
        result.maxDriveTempC = std::max(result.maxDriveTempC, r.maxTempC);
        result.simulatedSec = std::max(result.simulatedSec, r.simulatedSec);
        report.peakDriveTempC = std::max(report.peakDriveTempC, r.maxTempC);
        report.gateEvents += r.gateEvents;
        report.gatedSec += r.gatedSec;
    }
    result.meanLatencyMs = result.metrics.meanMs();
    result.p95LatencyMs = result.metrics.histogram().quantile(0.95);
    result.executor = executor.stats();
    return result;
}

} // namespace hddtherm::fleet
