#include "fleet/fleet_sim.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <optional>

#include "engine/kernel.h"
#include "snap/delta.h"
#include "snap/snapshot.h"
#include "snap/state.h"
#include "trace/synth.h"
#include "util/error.h"
#include "util/log.h"
#include "util/random.h"

namespace hddtherm::fleet {

namespace {

/// One drive bay: its position plus the co-simulation advancing it.
struct Shard
{
    BayAddress addr;
    std::unique_ptr<dtm::CoSimEngine> engine;
};

/**
 * The slice of a fleet fault schedule one bay's engine replays itself:
 * sensor and ambient events addressed to the bay, re-targeted to the
 * drive-level form (-1) a CoSimEngine honors.  Airflow and bay-power
 * events stay with the barrier loop.  The bay's noise seed is split from
 * the fleet noise seed by global index, so per-bay noise streams are
 * independent and a pure function of (schedule, bay) — executor-agnostic.
 */
fault::FaultSchedule
bayFaultSchedule(const fault::FaultSchedule& fleet_faults, int global_index)
{
    std::vector<fault::FaultEvent> events;
    for (const auto& e : fleet_faults.events()) {
        switch (e.kind) {
        case fault::FaultKind::AmbientStep:
        case fault::FaultKind::AmbientSpike:
        case fault::FaultKind::SensorStuck:
        case fault::FaultKind::SensorDropout:
        case fault::FaultKind::SensorNoise:
            if (e.appliesTo(global_index)) {
                fault::FaultEvent routed = e;
                routed.target = -1;
                events.push_back(routed);
            }
            break;
        case fault::FaultKind::AirflowDegrade:
        case fault::FaultKind::BayKill:
        case fault::FaultKind::BayRestore:
            break; // resolved at epoch barriers by the fleet loop
        }
    }
    return fault::FaultSchedule(
        std::move(events),
        util::deriveStreamSeed(fleet_faults.noiseSeed(),
                               std::uint64_t(global_index)));
}

/// printf-append onto a checkpoint description string.
void
appendf(std::string& out, const char* fmt, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof buf, fmt, ap);
    va_end(ap);
    out += buf;
}

/// Section-name prefix for one bay's engine sections.
std::string
bayPrefix(int global_index)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "bay.%d/", global_index);
    return buf;
}

/**
 * One fleet run in flight: the shards, the executor, the fleet-level
 * epoch kernel, and the accumulating result.  run() and resume() share
 * it — a fresh run arms the "fleet.barrier" (and optionally
 * "snap.checkpoint") periodic tasks itself; a resumed run restores them
 * from the checkpoint through the kernel's TaskResolver.
 */
struct FleetRun
{
    FleetRun(const FleetConfig& fleet_config, int threads)
        : config(fleet_config),
          chassis_count(std::size_t(config.totalChassis())),
          have_faults(!config.faults.empty()),
          have_bay_power(have_faults && config.faults.hasBayPowerEvents()),
          executor(threads),
          chassis_heat(chassis_count, 0.0),
          airflow_scale(chassis_count, 1.0),
          epoch_domain(epochs.registerDomain("fleet-epoch"))
    {
    }

    const FleetConfig& config;
    std::size_t chassis_count;
    bool have_faults;
    bool have_bay_power;
    ShardExecutor executor;
    std::vector<Shard> shards;
    FleetResult result;
    std::vector<double> chassis_heat;
    std::vector<double> airflow_scale;
    engine::SimKernel epochs;
    engine::DomainId epoch_domain;
    std::optional<snap::CheckpointManager> ckpt_mgr;
    std::uint64_t ckpt_index = 0;

    /// Build every shard serially in bay order: thermal calibration
    /// (lazy, shared) resolves on this thread, and engine construction
    /// order never depends on the executor.
    void buildShards(bool snapshots)
    {
        const auto bays = enumerateBays(config);
        // Idle chassis air (zero heat) supplies each bay's starting
        // ambient — position in the rack already matters once traffic
        // begins.
        const auto idle_air = resolveChassisAir(
            config, std::vector<double>(chassis_count, 0.0));
        shards.reserve(bays.size());
        for (const auto& addr : bays) {
            dtm::CoSimConfig cfg = config.bay;
            cfg.ambientC =
                idle_air[std::size_t(addr.chassisIndex)].driveAmbientC;
            cfg.maxSimulatedSec = config.maxSimulatedSec;
            if (have_faults) {
                cfg.faults =
                    bayFaultSchedule(config.faults, addr.globalIndex);
            }
            Shard shard;
            shard.addr = addr;
            shard.engine = std::make_unique<dtm::CoSimEngine>(cfg);
            if (snapshots)
                shard.engine->enableSnapshots();
            shards.push_back(std::move(shard));
        }
        result.shards = int(shards.size());
        result.chassis.resize(chassis_count);
        for (const auto& shard : shards) {
            auto& report =
                result.chassis[std::size_t(shard.addr.chassisIndex)];
            report.rack = shard.addr.rack;
            report.chassis = shard.addr.chassis;
        }
    }

    /// Regenerate one bay's trace: every stream is a pure function of
    /// (fleet seed, bay index), so fresh runs and resumed runs derive
    /// the identical request sequence from the configuration alone —
    /// checkpoints never need to embed it.
    std::vector<sim::IoRequest> generateWorkload(const Shard& shard) const
    {
        trace::WorkloadSpec spec = config.workload;
        spec.seed = util::deriveStreamSeed(
            config.seed, std::uint64_t(shard.addr.globalIndex));
        spec.devices = config.bay.system.raid == sim::RaidLevel::None
                           ? shard.engine->system().diskCount()
                           : 1;
        const trace::SyntheticWorkload gen(spec);
        return gen.generate(shard.engine->system().logicalSectors())
            .toRequests();
    }

    /// Per-bay workload generation + submission, farmed to the
    /// executor (the schedule cannot perturb the traces).  Fresh runs
    /// only — a resumed run restores the in-flight workload instead.
    void generateAndStart()
    {
        std::vector<ShardExecutor::Task> setup;
        setup.reserve(shards.size());
        for (auto& shard : shards) {
            setup.push_back([this, &shard]() {
                shard.engine->start(generateWorkload(shard));
            });
        }
        executor.runBatch(std::move(setup));

        // Bay-power edges at t = 0 apply before the first epoch, in bay
        // order.
        if (have_bay_power) {
            for (auto& shard : shards) {
                shard.engine->setBayPower(
                    !config.faults.bayKilledAt(0.0,
                                               shard.addr.globalIndex));
            }
        }
    }

    /// One ambient-sync barrier: advance every unfinished shard's
    /// kernel to the epoch timestamp in parallel, then run all
    /// cross-shard coupling on this thread in fixed bay/chassis order
    /// (the determinism contract).
    bool barrierTick()
    {
        const double t = epochs.now();

        std::vector<ShardExecutor::Task> batch;
        batch.reserve(shards.size());
        for (auto& shard : shards) {
            if (!shard.engine->finished()) {
                dtm::CoSimEngine* engine = shard.engine.get();
                batch.push_back([engine, t]() { engine->advanceTo(t); });
            }
        }
        executor.runBatch(std::move(batch));
        ++result.epochs;

        std::fill(chassis_heat.begin(), chassis_heat.end(), 0.0);
        bool all_done = true;
        for (const auto& shard : shards) {
            chassis_heat[std::size_t(shard.addr.chassisIndex)] +=
                shard.engine->heatOutputW();
            all_done = all_done && shard.engine->finished();
        }
        if (have_faults) {
            for (std::size_t ci = 0; ci < chassis_count; ++ci) {
                airflow_scale[ci] =
                    config.faults.coolingScaleAt(t, int(ci));
            }
        }
        const auto air =
            resolveChassisAir(config, chassis_heat, airflow_scale);
        for (auto& shard : shards) {
            const auto ci = std::size_t(shard.addr.chassisIndex);
            if (have_bay_power) {
                shard.engine->setBayPower(
                    !config.faults.bayKilledAt(t, shard.addr.globalIndex));
            }
            shard.engine->setAmbient(air[ci].driveAmbientC);
            result.chassis[ci].peakDriveAmbientC =
                std::max(result.chassis[ci].peakDriveAmbientC,
                         air[ci].driveAmbientC);
        }

        if (all_done)
            return false;
        if (t >= config.maxSimulatedSec) {
            util::logWarn("fleet simulation hit the %.0f s cap with "
                          "unfinished shards; aggregating partial results",
                          config.maxSimulatedSec);
            return false;
        }
        return true;
    }

    /// Periodic "snap.checkpoint" task body.  A resumed run without a
    /// policy of its own lets the restored task die on first firing.
    bool checkpointTick()
    {
        if (!ckpt_mgr)
            return false;
        bool all_done = true;
        for (const auto& shard : shards)
            all_done = all_done && shard.engine->finished();
        if (all_done || epochs.now() >= config.maxSimulatedSec)
            return false;
        writeCheckpoint();
        return true;
    }

    /// Write one crash-consistent checkpoint of the whole fleet.
    void writeCheckpoint()
    {
        // Bump the index first so the saved value is the *next* index:
        // a resumed run numbers its checkpoints like the uninterrupted
        // one.
        const std::uint64_t index = ckpt_index++;
        snap::CheckpointWriter out(checkpointConfigHash(config));
        {
            snap::StateWriter meta("meta");
            meta.str("kind", "fleet");
            meta.f64("sim_time", epochs.now());
            out.addSection(std::move(meta));
        }
        {
            snap::StateWriter w("fleet");
            w.u64("epochs", result.epochs);
            w.u64("ckpt_index", ckpt_index);
            std::vector<double> peaks;
            peaks.reserve(chassis_count);
            for (const auto& report : result.chassis)
                peaks.push_back(report.peakDriveAmbientC);
            w.f64vec("chassis_peak_ambient_c", peaks);
            out.addSection(std::move(w));
        }
        for (const auto& shard : shards)
            shard.engine->saveSections(out,
                                       bayPrefix(shard.addr.globalIndex));
        {
            // The fleet kernel last, same contract as the per-bay
            // sections: restoring it re-arms the barrier against
            // already-restored shards.
            snap::StateWriter w("fleet.kernel");
            epochs.saveState(w);
            out.addSection(std::move(w));
        }
        ckpt_mgr->write(out, index);
    }

    /// Restore a whole-fleet checkpoint into freshly built shards.
    void loadCheckpoint(const snap::CheckpointReader& in)
    {
        {
            auto r = in.section("fleet");
            result.epochs = r.u64("epochs");
            ckpt_index = r.u64("ckpt_index");
            const auto peaks = r.f64vec("chassis_peak_ambient_c");
            HDDTHERM_REQUIRE(peaks.size() == chassis_count,
                             "checkpoint section 'fleet': chassis count "
                             "does not match this configuration");
            for (std::size_t ci = 0; ci < chassis_count; ++ci)
                result.chassis[ci].peakDriveAmbientC = peaks[ci];
            HDDTHERM_REQUIRE(r.atEnd(), "checkpoint section 'fleet' has "
                                        "trailing fields");
        }
        // Regenerate every bay's trace in parallel (pure function of the
        // configuration), then restore serially in bay order.
        std::vector<std::vector<sim::IoRequest>> workloads(shards.size());
        {
            std::vector<ShardExecutor::Task> regen;
            regen.reserve(shards.size());
            for (std::size_t i = 0; i < shards.size(); ++i) {
                regen.push_back([this, &workloads, i]() {
                    workloads[i] = generateWorkload(shards[i]);
                });
            }
            executor.runBatch(std::move(regen));
        }
        for (std::size_t i = 0; i < shards.size(); ++i)
            shards[i].engine->loadSections(
                in, workloads[i], bayPrefix(shards[i].addr.globalIndex));
        {
            auto r = in.section("fleet.kernel");
            epochs.loadState(
                r,
                [](const snap::EventTag&) -> engine::SimKernel::Callback {
                    // The fleet kernel only carries periodic tasks,
                    // which the kernel restores internally.
                    return nullptr;
                },
                [this](const std::string& name)
                    -> engine::SimKernel::PeriodicCallback {
                    if (name == "fleet.barrier")
                        return [this]() { return barrierTick(); };
                    if (name == "snap.checkpoint")
                        return [this]() { return checkpointTick(); };
                    return nullptr;
                });
        }
    }

    /// Drain the epoch loop and aggregate in bay order on this thread.
    FleetResult finish()
    {
        epochs.runAll();
        // A completed run leaves every queued checkpoint durable (and any
        // writer-thread failure surfaces here, not in a destructor).
        if (ckpt_mgr)
            ckpt_mgr->flush();
        for (const auto& shard : shards) {
            const dtm::CoSimResult r = shard.engine->result();
            auto& report =
                result.chassis[std::size_t(shard.addr.chassisIndex)];
            result.metrics.merge(r.metrics);
            result.gateEvents += r.gateEvents;
            result.speedChanges += r.speedChanges;
            result.gatedSec += r.gatedSec;
            result.invalidReadings += r.invalidReadings;
            result.failSafeActivations += r.failSafeActivations;
            result.failSafeSec += r.failSafeSec;
            result.maxDriveTempC =
                std::max(result.maxDriveTempC, r.maxTempC);
            result.simulatedSec =
                std::max(result.simulatedSec, r.simulatedSec);
            report.peakDriveTempC =
                std::max(report.peakDriveTempC, r.maxTempC);
            report.gateEvents += r.gateEvents;
            report.gatedSec += r.gatedSec;
        }
        result.meanLatencyMs = result.metrics.meanMs();
        result.p95LatencyMs = result.metrics.histogram().quantile(0.95);
        result.executor = executor.stats();
        return std::move(result);
    }
};

/// Fleet checkpoint cadence is epoch-based; reject second-based policies
/// early so the mistake surfaces before a run burns time.
void
validateFleetPolicy(const snap::CheckpointPolicy& policy)
{
    HDDTHERM_REQUIRE(policy.everyEpochs >= 1,
                     "fleet checkpoint cadence is everyEpochs (>= 1)");
    HDDTHERM_REQUIRE(policy.everySec == 0.0,
                     "everySec is the standalone-engine cadence; fleets "
                     "checkpoint on epoch boundaries");
}

} // namespace

FleetSimulation::FleetSimulation(const FleetConfig& config)
    : config_(config)
{
    config_.validate();
    // The bay template is validated eagerly so a bad fleet fails at
    // construction, not at run() after workload generation.
    dtm::CoSimulation probe(config_.bay);
    (void)probe;
}

FleetResult
FleetSimulation::run(int threads, engine::TraceSink* epoch_trace,
                     const snap::CheckpointPolicy* checkpoints)
{
    FleetRun run(config_, threads);
    if (checkpoints) {
        validateFleetPolicy(*checkpoints);
        run.ckpt_mgr.emplace(*checkpoints);
        run.epochs.enableSnapshots(true);
    }
    run.buildShards(checkpoints != nullptr);
    run.generateAndStart();
    run.epochs.setTraceSink(epoch_trace);
    // The epoch loop: the ambient-sync barrier is a periodic task in
    // the fleet-level kernel's "fleet-epoch" clock domain.  It is armed
    // before the checkpoint task, fixing the tie order at coincident
    // timestamps once and for all (checkpoints restore both by name).
    run.epochs.schedulePeriodic(run.epoch_domain, config_.epochSec,
                                "fleet.barrier",
                                [&run]() { return run.barrierTick(); });
    if (run.ckpt_mgr) {
        run.epochs.schedulePeriodic(
            run.epoch_domain,
            config_.epochSec * double(run.ckpt_mgr->policy().everyEpochs),
            "snap.checkpoint", [&run]() { return run.checkpointTick(); });
    }
    return run.finish();
}

FleetResult
FleetSimulation::resume(const std::string& checkpoint_path, int threads,
                        engine::TraceSink* epoch_trace,
                        const snap::CheckpointPolicy* checkpoints)
{
    // Resolving the chain makes resuming from a delta leaf transparent:
    // a full checkpoint resolves to itself.
    snap::CheckpointReader in = snap::resolveCheckpointChain(checkpoint_path);
    HDDTHERM_REQUIRE(in.configHash() == checkpointConfigHash(config_),
                     "checkpoint '" + checkpoint_path +
                         "' was written under a different fleet "
                         "configuration (config hash mismatch)");
    FleetRun run(config_, threads);
    if (checkpoints) {
        validateFleetPolicy(*checkpoints);
        run.ckpt_mgr.emplace(*checkpoints);
    }
    run.epochs.enableSnapshots(true);
    run.buildShards(true);
    run.epochs.setTraceSink(epoch_trace);
    run.loadCheckpoint(in);
    // The restored ckpt_index is the *next* index to write; prime the
    // manager so the first post-resume delta diffs against this leaf.
    if (run.ckpt_mgr)
        run.ckpt_mgr->seedDelta(checkpoint_path, run.ckpt_index);
    return run.finish();
}

std::string
checkpointDescription(const FleetConfig& config)
{
    std::string d = "fleet-v1";
    appendf(d, "|racks=%d|chassis=%d|bays=%d", config.racks,
            config.rack.chassisCount, config.chassis.bays);
    appendf(d, "|inlet=%.17g|preheat=%.17g", config.rack.inletC,
            config.rack.preheatFraction);
    appendf(d, "|cfm=%.17g|recirc=%.17g|offset=%.17g",
            config.chassis.airflowCfm,
            config.chassis.recirculationFraction,
            config.chassis.inletOffsetC);
    appendf(d, "|seed=%llu|epoch=%.17g|max_sec=%.17g",
            static_cast<unsigned long long>(config.seed), config.epochSec,
            config.maxSimulatedSec);
    const trace::WorkloadSpec& w = config.workload;
    appendf(d, "|wl=%s:%d:%zu:%.17g:%.17g:%.17g:%d:%d:%d:%.17g:%.17g:%d:"
               "%.17g:%.17g:%llu",
            w.name.c_str(), w.devices, w.requests, w.arrivalRatePerSec,
            w.burstiness, w.readFraction, w.minSectors, w.meanSectors,
            w.maxSectors, w.sizeSigma, w.sequentialFraction, w.regions,
            w.zipfTheta, w.deviceZipfTheta,
            static_cast<unsigned long long>(w.seed));
    appendf(d, "|noise_seed=%llu",
            static_cast<unsigned long long>(config.faults.noiseSeed()));
    d += "|faults=";
    for (const auto& e : config.faults.events()) {
        appendf(d, "%.17g:%d:%.17g:%.17g:%d,", e.timeSec, int(e.kind),
                e.value, e.durationSec, e.target);
    }
    d += "|bay={";
    d += dtm::checkpointDescription(config.bay);
    d += "}";
    return d;
}

std::uint64_t
checkpointConfigHash(const FleetConfig& config)
{
    const std::string d = checkpointDescription(config);
    return snap::fnv1a64(d.data(), d.size());
}

} // namespace hddtherm::fleet
