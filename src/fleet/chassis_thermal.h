/**
 * @file
 * Inter-drive thermal coupling through shared chassis air.
 *
 * Each chassis is treated as a steady-flow control volume: cooling air
 * enters at the chassis inlet temperature, absorbs every watt its member
 * drives reject (thermal::exhaustTempRiseC), and leaves as exhaust.  Two
 * leakage paths couple drives to each other:
 *   - within a chassis, a recirculation fraction of the exhaust rise is
 *     mixed back into the air the drives actually breathe, so a busy
 *     neighbour raises everyone's ambient;
 *   - within a rack, a preheat fraction of each chassis's exhaust rise
 *     leaks into the intake of the chassis above it, so position in the
 *     stack matters (bottom runs coolest).
 *
 * The fleet simulator recomputes these states at every ambient-sync
 * barrier from the heats sampled at the barrier; the computation is a
 * single bottom-to-top pass per rack in fixed chassis order, which keeps
 * the coupling bit-deterministic regardless of how shards were scheduled.
 */
#ifndef HDDTHERM_FLEET_CHASSIS_THERMAL_H
#define HDDTHERM_FLEET_CHASSIS_THERMAL_H

#include <vector>

#include "fleet/topology.h"

namespace hddtherm::fleet {

/// Air temperatures of one chassis at a barrier.
struct ChassisAirState
{
    double inletC = 0.0;        ///< Intake after rack preheat + offset.
    double exhaustC = 0.0;      ///< Intake plus the full exhaust rise.
    double driveAmbientC = 0.0; ///< What member drives breathe (recirc mix).
};

/**
 * Resolve every chassis's air state from the member heat loads.
 *
 * @param config fleet topology (airflow, recirculation, preheat).
 * @param chassis_heat_w total heat each chassis's bays reject, watts, in
 *        global chassis order (rack-major); size must be totalChassis().
 * @return per-chassis air states in the same order.
 */
std::vector<ChassisAirState>
resolveChassisAir(const FleetConfig& config,
                  const std::vector<double>& chassis_heat_w);

/**
 * As above with a per-chassis cooling-airflow derating (fan/blower
 * faults): chassis i moves airflowCfm * airflow_scale[i] of air (every
 * scale > 0; 1.0 = healthy).  Same determinism contract — the scales are
 * sampled from the fleet fault schedule at the barrier, on the barrier
 * thread, in fixed chassis order.
 */
std::vector<ChassisAirState>
resolveChassisAir(const FleetConfig& config,
                  const std::vector<double>& chassis_heat_w,
                  const std::vector<double>& airflow_scale);

} // namespace hddtherm::fleet

#endif // HDDTHERM_FLEET_CHASSIS_THERMAL_H
