#include "fleet/shard_executor.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "util/error.h"

namespace hddtherm::fleet {

namespace {

/// Per-task wall-time histogram (shared by every executor instance).
obs::HistogramMetric&
taskWallMsHistogram()
{
    static obs::HistogramMetric& h =
        obs::MetricsRegistry::global().histogram(
            "fleet.executor.task_ms", obs::defaultLatencyEdgesMs());
    return h;
}

/// Run @p task, timing it into the shard wall-time histogram when
/// metrics are on (a disabled run never touches the registry or clock).
void
runTimed(const ShardExecutor::Task& task)
{
    if (obs::enabled()) {
        obs::ScopedTimer timer(taskWallMsHistogram());
        task();
    } else {
        task();
    }
}

} // namespace

ShardExecutor::ShardExecutor(int threads)
{
    if (threads <= 0)
        threads = int(std::max(1u, std::thread::hardware_concurrency()));
    threads_ = threads;
    if (threads_ == 1)
        return; // inline mode: no workers, no synchronization
    queues_.resize(std::size_t(threads_));
    workers_.reserve(std::size_t(threads_));
    for (int w = 0; w < threads_; ++w)
        workers_.emplace_back([this, w]() { workerLoop(std::size_t(w)); });
}

ShardExecutor::~ShardExecutor()
{
    if (workers_.empty())
        return;
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (auto& w : workers_)
        w.join();
}

void
ShardExecutor::runBatch(std::vector<Task> tasks)
{
    if (threads_ == 1) {
        for (auto& task : tasks) {
            runTimed(task);
            ++stats_.tasks;
            HDDTHERM_OBS_COUNT("fleet.executor.tasks");
        }
        ++stats_.batches;
        HDDTHERM_OBS_COUNT("fleet.executor.batches");
        return;
    }

    std::unique_lock<std::mutex> lock(mu_);
    HDDTHERM_REQUIRE(pending_ == 0, "ShardExecutor::runBatch is not "
                                    "reentrant");
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        queues_[i % queues_.size()].push_back(std::move(tasks[i]));
    }
    pending_ = tasks.size();
    work_cv_.notify_all();
    done_cv_.wait(lock, [this]() { return pending_ == 0; });
    ++stats_.batches;
    HDDTHERM_OBS_COUNT("fleet.executor.batches");
    if (first_error_) {
        std::exception_ptr err;
        std::swap(err, first_error_);
        lock.unlock();
        std::rethrow_exception(err);
    }
}

bool
ShardExecutor::grab(std::size_t self, Task& task, bool& stolen)
{
    if (!queues_[self].empty()) {
        task = std::move(queues_[self].front());
        queues_[self].pop_front();
        stolen = false;
        return true;
    }
    // Steal from the back of the longest peer deque (spreads the tail of
    // an uneven batch instead of ping-ponging one victim).
    std::size_t victim = self;
    std::size_t longest = 0;
    for (std::size_t q = 0; q < queues_.size(); ++q) {
        if (q != self && queues_[q].size() > longest) {
            longest = queues_[q].size();
            victim = q;
        }
    }
    if (longest == 0)
        return false;
    task = std::move(queues_[victim].back());
    queues_[victim].pop_back();
    stolen = true;
    return true;
}

void
ShardExecutor::workerLoop(std::size_t self)
{
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        Task task;
        bool stolen = false;
        if (grab(self, task, stolen)) {
            ++stats_.tasks;
            HDDTHERM_OBS_COUNT("fleet.executor.tasks");
            if (stolen) {
                ++stats_.steals;
                HDDTHERM_OBS_COUNT("fleet.executor.steals");
            }
            lock.unlock();
            std::exception_ptr err;
            try {
                runTimed(task);
            } catch (...) {
                err = std::current_exception();
            }
            lock.lock();
            if (err && !first_error_)
                first_error_ = err;
            if (--pending_ == 0)
                done_cv_.notify_all();
            continue;
        }
        if (stop_)
            return;
        work_cv_.wait(lock);
    }
}

ShardExecutor::Stats
ShardExecutor::stats() const
{
    if (threads_ == 1)
        return stats_;
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

} // namespace hddtherm::fleet
