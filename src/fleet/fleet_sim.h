/**
 * @file
 * Rack-scale multi-drive thermal/workload co-simulation.
 *
 * A FleetSimulation instantiates one CoSimEngine per drive bay of a
 * FleetConfig, generates each bay an independent workload (RNG streams
 * split from one fleet seed), and advances the shards in epochs on a
 * work-stealing ShardExecutor:
 *
 *   repeat until every bay's workload completes:
 *     1. advance every unfinished shard to the next epoch boundary
 *        (parallel, shards independent);
 *     2. barrier: sample every bay's exhaust heat, resolve the shared
 *        chassis air (resolveChassisAir), re-point every bay's ambient.
 *
 * The barrier loop is itself a clock domain: a fleet-level SimKernel
 * runs a periodic "fleet-epoch" task at epochSec, and each barrier
 * advances the per-shard kernels (CoSimEngine::advanceTo) to its
 * timestamp.  An engine::TraceSink passed to run() observes the epoch
 * events; per-shard event streams are reachable through each engine's
 * own kernel.
 *
 * Determinism: for a fixed FleetConfig the aggregated result is
 * bit-identical for every executor thread count.  Shards never share
 * state between barriers, barrier-side work (heat gathering, chassis air
 * resolution, metric merging) runs on the caller's thread in fixed bay
 * order, and per-bay RNG streams are pure functions of (seed, bay index).
 */
#ifndef HDDTHERM_FLEET_FLEET_SIM_H
#define HDDTHERM_FLEET_FLEET_SIM_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fleet/chassis_thermal.h"
#include "fleet/shard_executor.h"
#include "fleet/topology.h"
#include "sim/metrics.h"
#include "snap/checkpoint.h"

namespace hddtherm::engine {
class TraceSink;
}

namespace hddtherm::fleet {

/// Per-chassis outcome of a fleet run.
struct ChassisReport
{
    int rack = 0;    ///< Rack index.
    int chassis = 0; ///< Position in the rack (0 = bottom).
    /// Hottest shared-air temperature the members breathed (at barriers).
    double peakDriveAmbientC = 0.0;
    /// Hottest internal drive air among the members (continuous).
    double peakDriveTempC = 0.0;
    std::uint64_t gateEvents = 0; ///< DTM gate activations, all members.
    double gatedSec = 0.0;        ///< Summed member throttle time.
};

/// Aggregated outcome of a fleet run.
struct FleetResult
{
    sim::ResponseMetrics metrics; ///< All bays' logical response times.
    double meanLatencyMs = 0.0;   ///< Fleet-wide mean response time.
    double p95LatencyMs = 0.0;    ///< Fleet-wide 95th percentile.
    double maxDriveTempC = 0.0;   ///< Hottest internal drive air anywhere.
    std::uint64_t gateEvents = 0; ///< DTM gate activations, fleet-wide.
    std::uint64_t speedChanges = 0; ///< Governor transitions, fleet-wide.
    double gatedSec = 0.0;          ///< Summed throttle time, fleet-wide.
    /// Invalid sensor readings delivered to governors, fleet-wide.
    std::uint64_t invalidReadings = 0;
    /// Sensor fail-safe entries, fleet-wide.
    std::uint64_t failSafeActivations = 0;
    /// Summed time bays spent on the fail-safe floor, fleet-wide.
    double failSafeSec = 0.0;
    double simulatedSec = 0.0;      ///< Simulated span (slowest bay).
    std::uint64_t epochs = 0;       ///< Ambient-sync barriers executed.
    int shards = 0;                 ///< Drive bays simulated.
    std::vector<ChassisReport> chassis; ///< Global chassis order.
    ShardExecutor::Stats executor;      ///< Scheduling counters.
};

/// Co-simulates every drive bay of a FleetConfig.
class FleetSimulation
{
  public:
    /// Validates the configuration; throws util::ModelError if invalid.
    explicit FleetSimulation(const FleetConfig& config);

    /**
     * Build all shards, generate their workloads, and run to completion
     * on @p threads executor threads (0 = hardware concurrency).  Each
     * call is an independent simulation from a fresh state.
     *
     * @p epoch_trace, when non-null, subscribes to the fleet-level
     * kernel's "fleet-epoch" domain (one event per ambient-sync
     * barrier).  Tracing never changes results: aggregates stay
     * bit-identical with or without a sink, for every thread count.
     *
     * @p checkpoints, when non-null, arms crash-consistent fleet
     * checkpointing: every policy.everyEpochs barriers (policy.everySec
     * must be 0 — the fleet cadence is epoch-based) the whole fleet
     * state is written to policy.directory.  Checkpointing never changes
     * results either (see docs/checkpoint.md).
     */
    FleetResult run(int threads = 1,
                    engine::TraceSink* epoch_trace = nullptr,
                    const snap::CheckpointPolicy* checkpoints = nullptr);

    /**
     * Resume a run from @p checkpoint_path (written by run() with
     * checkpointing armed, against an equal configuration — the config
     * hash is validated) and carry it to completion.  The aggregated
     * result is bit-identical to the uninterrupted run's for every
     * thread count; ShardExecutor::Stats are scheduling counters and
     * restart from zero.  Pass @p checkpoints to keep checkpointing the
     * resumed run (indices continue where the parent left off).
     */
    FleetResult resume(const std::string& checkpoint_path, int threads = 1,
                       engine::TraceSink* epoch_trace = nullptr,
                       const snap::CheckpointPolicy* checkpoints = nullptr);

    /// Configuration in force.
    const FleetConfig& config() const { return config_; }

  private:
    FleetConfig config_;
};

/// Canonical textual description of a fleet configuration (embeds the
/// bay template's dtm::checkpointDescription); its FNV-1a hash is the
/// fleet checkpoint's config hash.
std::string checkpointDescription(const FleetConfig& config);

/// FNV-1a hash of checkpointDescription().
std::uint64_t checkpointConfigHash(const FleetConfig& config);

} // namespace hddtherm::fleet

#endif // HDDTHERM_FLEET_FLEET_SIM_H
