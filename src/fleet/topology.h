/**
 * @file
 * Fleet topology: racks of chassis of drive bays.
 *
 * The paper's §5 workload study simulates one drive/array at a time, but
 * its thermal argument is a machine-room one: drives throttle because of
 * the *shared* chassis air they sit in.  A FleetConfig scales the model
 * out — racks hold vertically stacked chassis, each chassis holds drive
 * bays, and every bay is an independent storage-plus-DTM co-simulation
 * (sim::StorageSystem + dtm::CoSimEngine) whose external ambient is the
 * chassis air rather than a constant.
 *
 * The topology is homogeneous by construction (one bay template, one
 * chassis spec, one rack spec): fleets differ in *where* a drive sits —
 * how much pre-heated air reaches it — not in what the drive is, which is
 * exactly the coupling the chassis air model resolves.
 */
#ifndef HDDTHERM_FLEET_TOPOLOGY_H
#define HDDTHERM_FLEET_TOPOLOGY_H

#include <cstdint>
#include <vector>

#include "dtm/cosim.h"
#include "trace/synth.h"

namespace hddtherm::fleet {

/// One chassis: bays sharing a forced-air cooling stream.
struct ChassisSpec
{
    int bays = 8;              ///< Drive bays per chassis.
    double airflowCfm = 120.0; ///< Cooling airflow through the chassis.
    /**
     * Fraction of the chassis exhaust temperature rise that recirculates
     * to the member drives' inlets (0 = perfectly ducted front-to-back
     * flow, 1 = drives breathe fully mixed exhaust air).
     */
    double recirculationFraction = 0.3;
    /// Static offset of the chassis inlet above its rack inlet (plenum
    /// losses, PSU pre-heating).
    double inletOffsetC = 0.0;
};

/// One rack: chassis stacked bottom-to-top in a shared cold aisle.
struct RackSpec
{
    int chassisCount = 4; ///< Chassis per rack (index 0 = bottom).
    /// Cold-aisle supply temperature at the rack face.
    double inletC = thermal::kBaselineAmbientC;
    /**
     * Fraction of each chassis's exhaust temperature rise that leaks
     * upward into the intake of the chassis above it (bypass/recirculation
     * around the rack; 0 = ideal containment).
     */
    double preheatFraction = 0.1;
};

/// Whole-fleet configuration.
struct FleetConfig
{
    int racks = 1;       ///< Identical racks (thermally independent).
    RackSpec rack;       ///< Per-rack layout and cold-aisle supply.
    ChassisSpec chassis; ///< Per-chassis bays and airflow.
    /**
     * Per-bay co-simulation template.  ambientC and ambientProfile are
     * managed by the fleet (the chassis air model owns the ambient), so
     * the profile must be left empty.
     */
    dtm::CoSimConfig bay;
    /**
     * Per-bay workload template; each bay's generator seed is derived from
     * the fleet seed and the bay's global index (util::deriveStreamSeed),
     * and the device count is forced to match the bay's storage system.
     */
    trace::WorkloadSpec workload;
    std::uint64_t seed = 1; ///< Root seed for all per-bay RNG streams.
    /**
     * Ambient-sync barrier period, seconds: shards advance independently
     * for one epoch, then every chassis's shared air temperature is
     * recomputed from its members' exhaust heat.
     */
    double epochSec = 0.5;
    /// Safety cap on simulated time (mirrors CoSimConfig::maxSimulatedSec).
    double maxSimulatedSec = 86400.0;
    /**
     * Fleet-level fault schedule (empty = fault-free).  Routing by kind:
     * AirflowDegrade targets a global chassis index (-1 = every chassis)
     * and scales that chassis's cooling airflow at each epoch barrier;
     * BayKill/BayRestore target a global bay index and are applied at
     * barriers; sensor and ambient events target a global bay index
     * (-1 = every bay) and are forwarded into the bay engines with
     * per-bay noise streams split from faults.noiseSeed().  The bay
     * template must not carry its own schedule (the fleet owns fault
     * routing), mirroring the ambientProfile rule above.
     */
    fault::FaultSchedule faults;

    /// @name Derived sizes.
    /// @{
    int totalChassis() const { return racks * rack.chassisCount; }
    int totalBays() const { return totalChassis() * chassis.bays; }
    /// @}

    /// Validate invariants; throws util::ModelError on bad configuration.
    void validate() const;
};

/// Position of one drive bay within the fleet.
struct BayAddress
{
    int rack = 0;         ///< Rack index.
    int chassis = 0;      ///< Chassis index within the rack (0 = bottom).
    int bay = 0;          ///< Bay index within the chassis.
    int chassisIndex = 0; ///< Global chassis index (rack-major).
    int globalIndex = 0;  ///< Global bay index (rack, chassis, bay major).
};

/// Every bay in deterministic rack-major order (the shard order: RNG
/// streams, aggregation and chassis membership all follow it).
std::vector<BayAddress> enumerateBays(const FleetConfig& config);

} // namespace hddtherm::fleet

#endif // HDDTHERM_FLEET_TOPOLOGY_H
