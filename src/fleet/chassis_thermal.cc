#include "fleet/chassis_thermal.h"

#include "thermal/correlations.h"
#include "util/error.h"

namespace hddtherm::fleet {

std::vector<ChassisAirState>
resolveChassisAir(const FleetConfig& config,
                  const std::vector<double>& chassis_heat_w)
{
    return resolveChassisAir(
        config, chassis_heat_w,
        std::vector<double>(chassis_heat_w.size(), 1.0));
}

std::vector<ChassisAirState>
resolveChassisAir(const FleetConfig& config,
                  const std::vector<double>& chassis_heat_w,
                  const std::vector<double>& airflow_scale)
{
    HDDTHERM_REQUIRE(int(chassis_heat_w.size()) == config.totalChassis(),
                     "one heat load per chassis required");
    HDDTHERM_REQUIRE(airflow_scale.size() == chassis_heat_w.size(),
                     "one airflow scale per chassis required");

    std::vector<ChassisAirState> states(chassis_heat_w.size());
    for (int r = 0; r < config.racks; ++r) {
        double preheat = 0.0; // accumulated leakage from chassis below
        for (int c = 0; c < config.rack.chassisCount; ++c) {
            const auto ci = std::size_t(r * config.rack.chassisCount + c);
            HDDTHERM_REQUIRE(airflow_scale[ci] > 0.0,
                             "chassis airflow scale must be positive");
            const double mass_flow = thermal::airMassFlowFromCfm(
                config.chassis.airflowCfm * airflow_scale[ci]);
            const double rise =
                thermal::exhaustTempRiseC(chassis_heat_w[ci], mass_flow);
            ChassisAirState& s = states[ci];
            s.inletC = config.rack.inletC + config.chassis.inletOffsetC +
                       preheat;
            s.exhaustC = s.inletC + rise;
            s.driveAmbientC =
                s.inletC + config.chassis.recirculationFraction * rise;
            preheat += config.rack.preheatFraction * rise;
        }
    }
    return states;
}

} // namespace hddtherm::fleet
