#include "fleet/topology.h"

#include "util/error.h"

namespace hddtherm::fleet {

void
FleetConfig::validate() const
{
    HDDTHERM_REQUIRE(racks >= 1, "fleet needs at least one rack");
    HDDTHERM_REQUIRE(rack.chassisCount >= 1,
                     "rack needs at least one chassis");
    HDDTHERM_REQUIRE(chassis.bays >= 1,
                     "chassis needs at least one drive bay");
    HDDTHERM_REQUIRE(chassis.airflowCfm > 0.0,
                     "chassis airflow must be positive");
    HDDTHERM_REQUIRE(chassis.recirculationFraction >= 0.0 &&
                         chassis.recirculationFraction <= 1.0,
                     "recirculation fraction must be in [0, 1]");
    HDDTHERM_REQUIRE(rack.preheatFraction >= 0.0 &&
                         rack.preheatFraction <= 1.0,
                     "preheat fraction must be in [0, 1]");
    HDDTHERM_REQUIRE(epochSec > 0.0, "ambient-sync epoch must be positive");
    HDDTHERM_REQUIRE(maxSimulatedSec > 0.0,
                     "simulated-time cap must be positive");
    HDDTHERM_REQUIRE(bay.ambientProfile.empty(),
                     "the fleet owns the ambient: bay template must not "
                     "carry an ambientProfile");
    HDDTHERM_REQUIRE(bay.faults.empty(),
                     "the fleet owns fault routing: bay template must not "
                     "carry a FaultSchedule (use FleetConfig::faults)");
    HDDTHERM_REQUIRE(workload.requests > 0, "per-bay workload is empty");
    faults.validate();
    for (const auto& e : faults.events()) {
        if (e.kind == fault::FaultKind::AirflowDegrade) {
            HDDTHERM_REQUIRE(e.target < totalChassis(),
                             "airflow fault targets a chassis beyond the "
                             "fleet");
        } else {
            HDDTHERM_REQUIRE(e.target < totalBays(),
                             "fault targets a bay beyond the fleet");
        }
    }
}

std::vector<BayAddress>
enumerateBays(const FleetConfig& config)
{
    std::vector<BayAddress> bays;
    bays.reserve(std::size_t(config.totalBays()));
    int global = 0;
    for (int r = 0; r < config.racks; ++r) {
        for (int c = 0; c < config.rack.chassisCount; ++c) {
            for (int b = 0; b < config.chassis.bays; ++b) {
                BayAddress addr;
                addr.rack = r;
                addr.chassis = c;
                addr.bay = b;
                addr.chassisIndex = r * config.rack.chassisCount + c;
                addr.globalIndex = global++;
                bays.push_back(addr);
            }
        }
    }
    return bays;
}

} // namespace hddtherm::fleet
