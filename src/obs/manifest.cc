#include "obs/manifest.h"

#include <cstdio>
#include <ctime>
#include <fstream>
#include <sstream>

#include "obs/export.h"
#include "obs/metrics.h"

#ifndef HDDTHERM_GIT_SHA
#define HDDTHERM_GIT_SHA "unknown"
#endif

namespace hddtherm::obs {

namespace {

/// JSON string escaping for the few characters a command line can carry.
std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

std::string
utcNowIso()
{
    const std::time_t now = std::time(nullptr);
    std::tm tm{};
    gmtime_r(&now, &tm);
    char buf[32];
    std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
    return buf;
}

} // namespace

const char*
buildGitSha()
{
    return HDDTHERM_GIT_SHA;
}

std::uint64_t
fnv1a64(const std::string& text)
{
    std::uint64_t hash = 14695981039346656037ull;
    for (const char c : text) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 1099511628211ull;
    }
    return hash;
}

std::string
toJson(const RunManifest& manifest)
{
    std::ostringstream out;
    out << "{\n"
        << "  \"bench\": \"" << jsonEscape(manifest.bench) << "\",\n"
        << "  \"git_sha\": \"" << jsonEscape(manifest.gitSha) << "\",\n"
        << "  \"command\": \"" << jsonEscape(manifest.command) << "\",\n"
        << "  \"seed\": " << manifest.seed << ",\n"
        << "  \"config\": \"" << jsonEscape(manifest.config) << "\",\n"
        << "  \"config_hash\": \"" << std::hex << manifest.configHash
        << std::dec << "\",\n"
        << "  \"wall_sec\": " << manifest.wallSec << ",\n"
        << "  \"started_utc\": \"" << jsonEscape(manifest.startedUtc)
        << "\",\n"
        << "  \"resume_from\": \"" << jsonEscape(manifest.resumeFrom)
        << "\",\n"
        << "  \"resume_config_hash\": \"" << std::hex
        << manifest.resumeConfigHash << std::dec << "\",\n"
        << "  \"resume_epoch\": " << manifest.resumeEpoch << "\n"
        << "}\n";
    return out.str();
}

BenchRun::BenchRun(std::string bench_name, int argc, char** argv)
    : bench_(std::move(bench_name)),
      start_(std::chrono::steady_clock::now()), started_utc_(utcNowIso())
{
    std::ostringstream cmd;
    for (int i = 0; i < argc; ++i) {
        if (i)
            cmd << ' ';
        cmd << argv[i];
    }
    command_ = cmd.str();
    setEnabled(true);
}

RunManifest
BenchRun::manifest() const
{
    RunManifest m;
    m.bench = bench_;
    m.gitSha = buildGitSha();
    m.command = command_;
    m.seed = seed_;
    m.config = config_;
    m.configHash = fnv1a64(config_);
    m.wallSec = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start_)
                    .count();
    m.startedUtc = started_utc_;
    m.resumeFrom = resume_from_;
    m.resumeConfigHash = resume_config_hash_;
    m.resumeEpoch = resume_epoch_;
    return m;
}

bool
BenchRun::writeArtifacts(const std::string& dir) const
{
    if (dir.empty())
        return true;
    const RunManifest m = manifest();
    // Mirror the run's wall time into the registry so even a bench whose
    // code paths record nothing emits a non-empty metrics dump.
    MetricsRegistry::global().gauge("bench.wall_sec").set(m.wallSec);
    {
        std::ofstream out(dir + "/manifest.json");
        if (!out)
            return false;
        out << toJson(m);
        if (!out)
            return false;
    }
    return writeMetricsFiles(MetricsRegistry::global().snapshot(), dir);
}

} // namespace hddtherm::obs
