/**
 * @file
 * Run manifests: who produced this data, from what source, with what
 * inputs — the provenance line every bench emits next to its CSVs.
 *
 * A RunManifest records the bench name, the git revision the binary was
 * built from (captured at configure time), the workload seed, a free-form
 * config summary plus its FNV-1a hash, the command line, and wall time.
 * Serialized as a small flat JSON object (`manifest.json`), so BENCH_*
 * trajectories can be machine-assembled without parsing console text.
 *
 * BenchRun is the one-liner benches use: construct it first thing in
 * main() (this also turns metric collection on), note the seed/config
 * when known, and call writeArtifacts(csv_dir) before exiting to drop
 * manifest.json + metrics.prom + metrics.csv beside the tables.
 */
#ifndef HDDTHERM_OBS_MANIFEST_H
#define HDDTHERM_OBS_MANIFEST_H

#include <chrono>
#include <cstdint>
#include <string>

namespace hddtherm::obs {

/// Git revision the binary was configured from ("unknown" outside git).
const char* buildGitSha();

/// FNV-1a 64-bit hash (config fingerprints).
std::uint64_t fnv1a64(const std::string& text);

/// Provenance record for one bench invocation.
struct RunManifest
{
    std::string bench;           ///< Binary name.
    std::string gitSha;          ///< Source revision.
    std::string command;         ///< Space-joined argv.
    std::uint64_t seed = 0;      ///< Workload seed (0 = unseeded).
    std::string config;          ///< Free-form parameter summary.
    std::uint64_t configHash = 0; ///< fnv1a64(config).
    double wallSec = 0.0;        ///< Host wall time of the run.
    std::string startedUtc;      ///< Start timestamp, UTC ISO-8601.

    /// @name Resume lineage (runs continued from a checkpoint).
    /// Empty/zero for runs started from scratch.
    /// @{
    std::string resumeFrom;      ///< Parent checkpoint file path.
    /// The parent checkpoint's embedded config hash (snap header).
    std::uint64_t resumeConfigHash = 0;
    std::uint64_t resumeEpoch = 0; ///< Fleet epoch counter at resume.
    /// @}
};

/// Serialize @p manifest as a flat JSON object (stable key order).
std::string toJson(const RunManifest& manifest);

/// Bench-side run context: manifest fields + the metrics dump.
class BenchRun
{
  public:
    /**
     * Start a run: records the command line and start time, and enables
     * metric collection process-wide (benches always want metrics; the
     * production default stays off).
     */
    BenchRun(std::string bench_name, int argc, char** argv);

    /// Note the workload seed for the manifest.
    void setSeed(std::uint64_t seed) { seed_ = seed; }

    /// Note a parameter summary; its hash lands in the manifest.
    void setConfig(std::string summary) { config_ = std::move(summary); }

    /// Note that this run resumed from a checkpoint: the parent file,
    /// its embedded config hash, and the epoch counter restored from it.
    void setResume(std::string checkpoint_path, std::uint64_t config_hash,
                   std::uint64_t epoch)
    {
        resume_from_ = std::move(checkpoint_path);
        resume_config_hash_ = config_hash;
        resume_epoch_ = epoch;
    }

    /// Manifest snapshot (wall time = elapsed since construction).
    RunManifest manifest() const;

    /**
     * Write manifest.json, metrics.prom, and metrics.csv (a snapshot of
     * the global registry) under @p dir.  No-op (returning true) when
     * @p dir is empty — benches pass their --csv argument through.
     * @returns false if any file could not be written.
     */
    bool writeArtifacts(const std::string& dir) const;

  private:
    std::string bench_;
    std::string command_;
    std::uint64_t seed_ = 0;
    std::string config_;
    std::chrono::steady_clock::time_point start_;
    std::string started_utc_;
    std::string resume_from_;
    std::uint64_t resume_config_hash_ = 0;
    std::uint64_t resume_epoch_ = 0;
};

} // namespace hddtherm::obs

#endif // HDDTHERM_OBS_MANIFEST_H
