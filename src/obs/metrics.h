/**
 * @file
 * Low-overhead metrics: a process-wide registry of named counters,
 * gauges, and histograms, plus RAII profiling scopes.
 *
 * Design contract (pinned by bench_obs_overhead and the obs test suite):
 *
 *   - Disabled is near-free.  Every instrumentation site guards on
 *     obs::enabled(), a single relaxed atomic load; with metrics off no
 *     registry lookup, no allocation, and no clock read happens.  The
 *     paired gate keeps the disabled tax <= 2% on a pure event-churn
 *     workload.
 *
 *   - Collection is pure observation.  Recording a metric never perturbs
 *     simulation state: enabling metrics leaves every simulation result
 *     bit-identical (the obs bit-identity property test proves this for
 *     fault-free and faulted runs, engine and fleet).
 *
 *   - Values are exact.  Counters and histogram bins are integer atomics
 *     with relaxed increments; concurrent writers (fleet ShardExecutor
 *     workers) lose nothing, and integer addition makes snapshot merges
 *     associative and order-independent.
 *
 *   - Handles are stable.  Registration is idempotent — re-registering a
 *     name returns the same object — and nothing is ever deregistered,
 *     so call sites may cache a reference forever (the
 *     HDDTHERM_OBS_COUNT macro caches one in a function-local static).
 *     resetValues() zeroes values but keeps every registration live.
 *
 * Wall-clock metrics (ScopedTimer, dispatch timing) are inherently
 * host-dependent; everything else recorded from simulation code is a
 * deterministic function of the simulated run.
 */
#ifndef HDDTHERM_OBS_METRICS_H
#define HDDTHERM_OBS_METRICS_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace hddtherm::obs {

/// True while metric collection is globally enabled (default: off).
bool enabled();

/// Turn metric collection on or off (process-wide, thread-safe).
void setEnabled(bool on);

/// Monotonically increasing event count.
class Counter
{
  public:
    /// Add @p n (relaxed; exact under concurrent writers).
    void add(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    /// Current value.
    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    /// Registered name.
    const std::string& name() const { return name_; }

  private:
    friend class MetricsRegistry;
    explicit Counter(std::string name) : name_(std::move(name)) {}
    void reset() { value_.store(0, std::memory_order_relaxed); }

    std::string name_;
    std::atomic<std::uint64_t> value_{0};
};

/// Last-written level plus a high watermark (queue depths, temperatures).
class Gauge
{
  public:
    /// Set the current level and fold it into the high watermark.
    void set(double v)
    {
        value_.store(v, std::memory_order_relaxed);
        raiseMax(v);
    }

    /// Fold @p v into the high watermark only (CAS loop, lock-free).
    void raiseMax(double v)
    {
        double cur = max_.load(std::memory_order_relaxed);
        while (v > cur &&
               !max_.compare_exchange_weak(cur, v,
                                           std::memory_order_relaxed)) {
        }
    }

    /// Last value set (0 before the first set()).
    double value() const { return value_.load(std::memory_order_relaxed); }

    /// Largest value ever set (0 before the first set()).
    double max() const { return max_.load(std::memory_order_relaxed); }

    /// Registered name.
    const std::string& name() const { return name_; }

  private:
    friend class MetricsRegistry;
    explicit Gauge(std::string name) : name_(std::move(name)) {}
    void reset()
    {
        value_.store(0.0, std::memory_order_relaxed);
        max_.store(0.0, std::memory_order_relaxed);
    }

    std::string name_;
    std::atomic<double> value_{0.0};
    std::atomic<double> max_{0.0};
};

/**
 * Fixed-bin histogram with atomic bin counts.  Bin semantics match
 * util::Histogram: strictly increasing upper edges, a sample lands in
 * the first bin whose edge >= x, samples above the last edge land in an
 * implicit overflow bin.  The sum is kept in integer micro-units so
 * concurrent observation stays exact and merge order cannot perturb it.
 */
class HistogramMetric
{
  public:
    /// Observe one sample (relaxed atomics; exact under concurrency).
    void observe(double x);

    /// Total samples.
    std::uint64_t count() const;

    /// Upper edges (excludes the overflow bin).
    const std::vector<double>& edges() const { return edges_; }

    /// Raw count in bin @p i (i == edges().size() is the overflow bin).
    std::uint64_t binCount(std::size_t i) const
    {
        return counts_[i].load(std::memory_order_relaxed);
    }

    /// Sum of all observed samples (micro-unit integer, exact).
    double sum() const
    {
        return double(sum_micro_.load(std::memory_order_relaxed)) * 1e-6;
    }

    /// Registered name.
    const std::string& name() const { return name_; }

  private:
    friend class MetricsRegistry;
    HistogramMetric(std::string name, std::vector<double> edges);
    void reset();

    std::string name_;
    std::vector<double> edges_;
    /// edges_.size() + 1 slots; the last is the overflow bin.
    std::deque<std::atomic<std::uint64_t>> counts_;
    std::atomic<std::int64_t> sum_micro_{0};
};

/// Point-in-time copy of one counter.
struct CounterSample
{
    std::string name;
    std::uint64_t value = 0;
};

/// Point-in-time copy of one gauge.
struct GaugeSample
{
    std::string name;
    double value = 0.0;
    double max = 0.0;
};

/// Point-in-time copy of one histogram.
struct HistogramSample
{
    std::string name;
    std::vector<double> edges;
    std::vector<std::uint64_t> counts; ///< edges.size() + 1 (overflow last).
    double sum = 0.0;

    /// Total samples across all bins.
    std::uint64_t count() const;
};

/**
 * A consistent-enough copy of a registry (each metric is read atomically;
 * the set is read under the registration lock).  Sorted by name, so two
 * snapshots of equal state export identical text.
 */
struct Snapshot
{
    std::vector<CounterSample> counters;
    std::vector<GaugeSample> gauges;
    std::vector<HistogramSample> histograms;

    /**
     * Fold @p other in: counters and histogram bins add (associative,
     * order-independent — integer addition), gauge values take the last
     * non-zero writer and maxes combine.  Metrics present only in
     * @p other are appended; the result stays name-sorted.
     * @throws util::ModelError on mismatched histogram edges.
     */
    void merge(const Snapshot& other);
};

/**
 * Named-metric registry.  Registration (the counter()/gauge()/histogram()
 * lookups) takes a mutex; recording through the returned handles is
 * lock-free.  Handles are valid for the registry's lifetime — metrics are
 * never deregistered, and storage is node-stable.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    /// The process-wide registry every instrumentation site records into.
    static MetricsRegistry& global();

    /**
     * Look up or create the counter called @p name.  Idempotent: the same
     * name always returns the same object.
     * @throws util::ModelError if @p name is empty or already registered
     *         as a different metric kind.
     */
    Counter& counter(const std::string& name);

    /// Look up or create a gauge (idempotent; same rules as counter()).
    Gauge& gauge(const std::string& name);

    /**
     * Look up or create a histogram over @p upper_edges (strictly
     * increasing).  Re-registration must agree on the edges.
     * @throws util::ModelError on empty/non-increasing edges, kind
     *         collisions, or edge mismatch with an existing registration.
     */
    HistogramMetric& histogram(const std::string& name,
                               const std::vector<double>& upper_edges);

    /// Registered metric count (all kinds).
    std::size_t size() const;

    /// Zero every value; registrations (and cached handles) stay valid.
    void resetValues();

    /// Copy out every metric, sorted by name.
    Snapshot snapshot() const;

  private:
    enum class Kind
    {
        Counter,
        Gauge,
        Histogram
    };
    struct Entry
    {
        Kind kind;
        std::size_t index; ///< Into the kind's deque.
    };

    mutable std::mutex mu_;
    std::map<std::string, Entry> names_;
    /// Owned nodes: handles stay valid across later registrations.
    std::vector<std::unique_ptr<Counter>> counters_;
    std::vector<std::unique_ptr<Gauge>> gauges_;
    std::vector<std::unique_ptr<HistogramMetric>> histograms_;
};

/**
 * RAII wall-time profiling scope: observes the elapsed milliseconds into
 * a histogram at destruction.  Construction reads the clock only when
 * metrics are enabled; a disabled scope costs one branch.
 */
class ScopedTimer
{
  public:
    /// Time into @p sink_ms (a histogram of milliseconds).
    explicit ScopedTimer(HistogramMetric& sink_ms)
        : sink_(&sink_ms), armed_(enabled())
    {
        if (armed_)
            start_ = std::chrono::steady_clock::now();
    }

    ~ScopedTimer()
    {
        if (armed_) {
            const auto end = std::chrono::steady_clock::now();
            sink_->observe(
                std::chrono::duration<double, std::milli>(end - start_)
                    .count());
        }
    }

    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

  private:
    HistogramMetric* sink_;
    bool armed_;
    std::chrono::steady_clock::time_point start_;
};

/// Default bucket edges for wall-time histograms, milliseconds.
const std::vector<double>& defaultLatencyEdgesMs();

} // namespace hddtherm::obs

/**
 * Count one occurrence of @p name in the global registry.  The handle is
 * resolved once per call site (function-local static) and only on the
 * first *enabled* pass, so a disabled site never touches the registry.
 */
#define HDDTHERM_OBS_COUNT(name)                                             \
    do {                                                                     \
        if (::hddtherm::obs::enabled()) {                                    \
            static ::hddtherm::obs::Counter& hddtherm_obs_counter_ =         \
                ::hddtherm::obs::MetricsRegistry::global().counter(name);    \
            hddtherm_obs_counter_.add(1);                                    \
        }                                                                    \
    } while (false)

/// As HDDTHERM_OBS_COUNT, but adds @p n occurrences.
#define HDDTHERM_OBS_ADD(name, n)                                            \
    do {                                                                     \
        if (::hddtherm::obs::enabled()) {                                    \
            static ::hddtherm::obs::Counter& hddtherm_obs_counter_ =         \
                ::hddtherm::obs::MetricsRegistry::global().counter(name);    \
            hddtherm_obs_counter_.add(std::uint64_t(n));                     \
        }                                                                    \
    } while (false)

/// Set gauge @p name to @p v (also raising its high watermark).
#define HDDTHERM_OBS_GAUGE_SET(name, v)                                      \
    do {                                                                     \
        if (::hddtherm::obs::enabled()) {                                    \
            static ::hddtherm::obs::Gauge& hddtherm_obs_gauge_ =             \
                ::hddtherm::obs::MetricsRegistry::global().gauge(name);      \
            hddtherm_obs_gauge_.set(double(v));                              \
        }                                                                    \
    } while (false)

#endif // HDDTHERM_OBS_METRICS_H
