#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace hddtherm::obs {

namespace {

std::atomic<bool> g_enabled{false};

/// Micro-unit fixed-point conversion for exact concurrent sums.
std::int64_t
toMicro(double x)
{
    return std::int64_t(std::llround(x * 1e6));
}

} // namespace

bool
enabled()
{
    return g_enabled.load(std::memory_order_relaxed);
}

void
setEnabled(bool on)
{
    g_enabled.store(on, std::memory_order_relaxed);
}

HistogramMetric::HistogramMetric(std::string name,
                                 std::vector<double> edges)
    : name_(std::move(name)), edges_(std::move(edges))
{
    HDDTHERM_REQUIRE(!edges_.empty(),
                     "histogram '" + name_ + "' needs at least one edge");
    for (std::size_t i = 1; i < edges_.size(); ++i) {
        HDDTHERM_REQUIRE(edges_[i] > edges_[i - 1],
                         "histogram '" + name_ +
                             "' edges must be strictly increasing");
    }
    counts_.resize(edges_.size() + 1);
}

void
HistogramMetric::observe(double x)
{
    const auto it = std::lower_bound(edges_.begin(), edges_.end(), x);
    const auto idx = std::size_t(it - edges_.begin());
    counts_[idx].fetch_add(1, std::memory_order_relaxed);
    sum_micro_.fetch_add(toMicro(x), std::memory_order_relaxed);
}

std::uint64_t
HistogramMetric::count() const
{
    std::uint64_t total = 0;
    for (const auto& c : counts_)
        total += c.load(std::memory_order_relaxed);
    return total;
}

void
HistogramMetric::reset()
{
    for (auto& c : counts_)
        c.store(0, std::memory_order_relaxed);
    sum_micro_.store(0, std::memory_order_relaxed);
}

std::uint64_t
HistogramSample::count() const
{
    std::uint64_t total = 0;
    for (const auto c : counts)
        total += c;
    return total;
}

void
Snapshot::merge(const Snapshot& other)
{
    const auto byName = [](const auto& a, const auto& b) {
        return a.name < b.name;
    };

    for (const auto& c : other.counters) {
        const auto it = std::lower_bound(counters.begin(), counters.end(),
                                         c, byName);
        if (it != counters.end() && it->name == c.name)
            it->value += c.value;
        else
            counters.insert(it, c);
    }
    for (const auto& g : other.gauges) {
        const auto it =
            std::lower_bound(gauges.begin(), gauges.end(), g, byName);
        if (it != gauges.end() && it->name == g.name) {
            if (g.value != 0.0)
                it->value = g.value;
            it->max = std::max(it->max, g.max);
        } else {
            gauges.insert(it, g);
        }
    }
    for (const auto& h : other.histograms) {
        const auto it = std::lower_bound(histograms.begin(),
                                         histograms.end(), h, byName);
        if (it != histograms.end() && it->name == h.name) {
            HDDTHERM_REQUIRE(it->edges == h.edges,
                             "Snapshot::merge: histogram '" + h.name +
                                 "' edges differ");
            for (std::size_t i = 0; i < it->counts.size(); ++i)
                it->counts[i] += h.counts[i];
            it->sum += h.sum;
        } else {
            histograms.insert(it, h);
        }
    }
}

MetricsRegistry&
MetricsRegistry::global()
{
    static MetricsRegistry instance;
    return instance;
}

Counter&
MetricsRegistry::counter(const std::string& name)
{
    HDDTHERM_REQUIRE(!name.empty(), "metric name must not be empty");
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = names_.find(name);
    if (it != names_.end()) {
        HDDTHERM_REQUIRE(it->second.kind == Kind::Counter,
                         "metric '" + name +
                             "' already registered as another kind");
        return *counters_[it->second.index];
    }
    counters_.emplace_back(new Counter(name));
    names_.emplace(name, Entry{Kind::Counter, counters_.size() - 1});
    return *counters_.back();
}

Gauge&
MetricsRegistry::gauge(const std::string& name)
{
    HDDTHERM_REQUIRE(!name.empty(), "metric name must not be empty");
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = names_.find(name);
    if (it != names_.end()) {
        HDDTHERM_REQUIRE(it->second.kind == Kind::Gauge,
                         "metric '" + name +
                             "' already registered as another kind");
        return *gauges_[it->second.index];
    }
    gauges_.emplace_back(new Gauge(name));
    names_.emplace(name, Entry{Kind::Gauge, gauges_.size() - 1});
    return *gauges_.back();
}

HistogramMetric&
MetricsRegistry::histogram(const std::string& name,
                           const std::vector<double>& upper_edges)
{
    HDDTHERM_REQUIRE(!name.empty(), "metric name must not be empty");
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = names_.find(name);
    if (it != names_.end()) {
        HDDTHERM_REQUIRE(it->second.kind == Kind::Histogram,
                         "metric '" + name +
                             "' already registered as another kind");
        HistogramMetric& existing = *histograms_[it->second.index];
        HDDTHERM_REQUIRE(existing.edges() == upper_edges,
                         "histogram '" + name +
                             "' re-registered with different edges");
        return existing;
    }
    histograms_.emplace_back(new HistogramMetric(name, upper_edges));
    names_.emplace(name, Entry{Kind::Histogram, histograms_.size() - 1});
    return *histograms_.back();
}

std::size_t
MetricsRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return names_.size();
}

void
MetricsRegistry::resetValues()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& c : counters_)
        c->reset();
    for (auto& g : gauges_)
        g->reset();
    for (auto& h : histograms_)
        h->reset();
}

Snapshot
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    Snapshot out;
    // names_ iterates sorted, so every section comes out name-ordered.
    for (const auto& [name, entry] : names_) {
        switch (entry.kind) {
          case Kind::Counter:
            out.counters.push_back({name, counters_[entry.index]->value()});
            break;
          case Kind::Gauge: {
            const Gauge& g = *gauges_[entry.index];
            out.gauges.push_back({name, g.value(), g.max()});
            break;
          }
          case Kind::Histogram: {
            const HistogramMetric& h = *histograms_[entry.index];
            HistogramSample s;
            s.name = name;
            s.edges = h.edges();
            s.counts.reserve(s.edges.size() + 1);
            for (std::size_t i = 0; i <= s.edges.size(); ++i)
                s.counts.push_back(h.binCount(i));
            s.sum = h.sum();
            out.histograms.push_back(std::move(s));
            break;
          }
        }
    }
    return out;
}

const std::vector<double>&
defaultLatencyEdgesMs()
{
    static const std::vector<double> edges = {0.01, 0.1, 1.0,   5.0,
                                              20.0, 100., 1000., 10000.};
    return edges;
}

} // namespace hddtherm::obs
