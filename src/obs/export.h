/**
 * @file
 * Snapshot exporters: Prometheus text format and the repo's CSV path.
 *
 * Exported text is a pure, deterministic function of the Snapshot (which
 * is name-sorted), so two snapshots of equal metric state serialize to
 * identical bytes — the exporter golden tests diff full strings.
 *
 * Prometheus names are the registered names sanitized to the exposition
 * charset ([a-zA-Z0-9_:], '.' becomes '_') and prefixed "hddtherm_".
 * Histograms follow the standard cumulative-bucket convention
 * (`_bucket{le="..."}` including `+Inf`, then `_sum` and `_count`).
 *
 * The CSV exporter rides the existing util::TableWriter so metric dumps
 * land next to the benches' table CSVs with the same quoting rules.
 */
#ifndef HDDTHERM_OBS_EXPORT_H
#define HDDTHERM_OBS_EXPORT_H

#include <iosfwd>
#include <string>

#include "obs/metrics.h"
#include "util/table.h"

namespace hddtherm::obs {

/// Sanitized, prefixed Prometheus metric name for a registered name.
std::string prometheusName(const std::string& name);

/// Render @p snapshot in the Prometheus text exposition format.
void writePrometheus(std::ostream& out, const Snapshot& snapshot);

/// As above, into a string (tests, small dumps).
std::string toPrometheusText(const Snapshot& snapshot);

/**
 * Render @p snapshot as a metric/kind/label/value table (one row per
 * counter, gauge, gauge max, and histogram bucket), ready for
 * TableWriter::writeCsv or console printing.
 */
util::TableWriter toTable(const Snapshot& snapshot);

/**
 * Write @p snapshot as @p dir/@p basename.prom and @p dir/@p basename.csv.
 * @returns false if either file could not be written.
 */
bool writeMetricsFiles(const Snapshot& snapshot, const std::string& dir,
                       const std::string& basename = "metrics");

} // namespace hddtherm::obs

#endif // HDDTHERM_OBS_EXPORT_H
