#include "obs/export.h"

#include <cctype>
#include <fstream>
#include <ostream>
#include <sstream>

namespace hddtherm::obs {

namespace {

/// Shortest round-trip double formatting (matches TableWriter style for
/// integers: no trailing ".000000" noise on exact values).
std::string
fmt(double v)
{
    std::ostringstream out;
    out.precision(17);
    out << v;
    return out.str();
}

std::string
fmtEdge(double v)
{
    std::ostringstream out;
    out << v;
    return out.str();
}

} // namespace

std::string
prometheusName(const std::string& name)
{
    std::string out = "hddtherm_";
    out.reserve(out.size() + name.size());
    for (const char c : name) {
        const auto uc = static_cast<unsigned char>(c);
        if (std::isalnum(uc) || c == '_' || c == ':')
            out.push_back(c);
        else
            out.push_back('_');
    }
    return out;
}

void
writePrometheus(std::ostream& out, const Snapshot& snapshot)
{
    for (const auto& c : snapshot.counters) {
        const std::string name = prometheusName(c.name);
        out << "# TYPE " << name << " counter\n"
            << name << " " << c.value << "\n";
    }
    for (const auto& g : snapshot.gauges) {
        const std::string name = prometheusName(g.name);
        out << "# TYPE " << name << " gauge\n"
            << name << " " << fmt(g.value) << "\n"
            << "# TYPE " << name << "_max gauge\n"
            << name << "_max " << fmt(g.max) << "\n";
    }
    for (const auto& h : snapshot.histograms) {
        const std::string name = prometheusName(h.name);
        out << "# TYPE " << name << " histogram\n";
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i < h.edges.size(); ++i) {
            cum += h.counts[i];
            out << name << "_bucket{le=\"" << fmtEdge(h.edges[i]) << "\"} "
                << cum << "\n";
        }
        cum += h.counts.back();
        out << name << "_bucket{le=\"+Inf\"} " << cum << "\n"
            << name << "_sum " << fmt(h.sum) << "\n"
            << name << "_count " << cum << "\n";
    }
}

std::string
toPrometheusText(const Snapshot& snapshot)
{
    std::ostringstream out;
    writePrometheus(out, snapshot);
    return out.str();
}

util::TableWriter
toTable(const Snapshot& snapshot)
{
    util::TableWriter table({"metric", "kind", "label", "value"});
    for (const auto& c : snapshot.counters)
        table.addRow({c.name, "counter", "",
                      util::TableWriter::num((long long)(c.value))});
    for (const auto& g : snapshot.gauges) {
        table.addRow({g.name, "gauge", "value", fmt(g.value)});
        table.addRow({g.name, "gauge", "max", fmt(g.max)});
    }
    for (const auto& h : snapshot.histograms) {
        for (std::size_t i = 0; i < h.edges.size(); ++i) {
            table.addRow({h.name, "histogram",
                          "le=" + fmtEdge(h.edges[i]),
                          util::TableWriter::num((long long)(h.counts[i]))});
        }
        table.addRow({h.name, "histogram", "le=+Inf",
                      util::TableWriter::num((long long)(h.counts.back()))});
        table.addRow({h.name, "histogram", "sum", fmt(h.sum)});
        table.addRow({h.name, "histogram", "count",
                      util::TableWriter::num((long long)(h.count()))});
    }
    return table;
}

bool
writeMetricsFiles(const Snapshot& snapshot, const std::string& dir,
                  const std::string& basename)
{
    {
        std::ofstream prom(dir + "/" + basename + ".prom");
        if (!prom)
            return false;
        writePrometheus(prom, snapshot);
        if (!prom)
            return false;
    }
    return toTable(snapshot).writeCsv(dir + "/" + basename + ".csv");
}

} // namespace hddtherm::obs
