#include "hdd/capacity.h"

#include "util/error.h"
#include "util/units.h"

namespace hddtherm::hdd {

CapacityBreakdown
computeCapacity(const ZoneModel& layout)
{
    CapacityBreakdown out;
    out.rawBits = layout.rawCapacityBits();
    out.zbrSectors = layout.totalRawSectors();
    out.userSectors = layout.totalUserSectors();
    out.rawGB = out.rawBits / 8.0 / util::kBytesPerGB;
    out.zbrGB = double(out.zbrSectors) * util::kSectorBytes /
                util::kBytesPerGB;
    out.userGB = double(out.userSectors) * util::kSectorBytes /
                 util::kBytesPerGB;
    out.zbrLossFraction =
        out.rawBits > 0.0
            ? 1.0 - double(out.zbrSectors) * util::kSectorBits / out.rawBits
            : 0.0;
    out.overheadFraction =
        double(layout.servoBitsPerSector() + layout.eccBitsPerSector()) /
        double(util::kSectorBits);
    return out;
}

double
internalDataRateMBps(const ZoneModel& layout, double rpm)
{
    HDDTHERM_REQUIRE(rpm > 0.0, "rpm must be positive");
    const int ntz0 = layout.zone(0).userSectorsPerTrack;
    return util::rpmToRevPerSec(rpm) * double(ntz0) * util::kSectorBytes /
           util::kBytesPerMiB;
}

std::vector<double>
zoneDataRatesMBps(const ZoneModel& layout, double rpm)
{
    HDDTHERM_REQUIRE(rpm > 0.0, "rpm must be positive");
    std::vector<double> out;
    out.reserve(std::size_t(layout.zones()));
    for (int z = 0; z < layout.zones(); ++z) {
        out.push_back(util::rpmToRevPerSec(rpm) *
                      double(layout.zone(z).userSectorsPerTrack) *
                      util::kSectorBytes / util::kBytesPerMiB);
    }
    return out;
}

double
rpmForDataRate(const ZoneModel& layout, double target_idr)
{
    HDDTHERM_REQUIRE(target_idr > 0.0, "target IDR must be positive");
    const int ntz0 = layout.zone(0).userSectorsPerTrack;
    HDDTHERM_REQUIRE(ntz0 > 0, "layout has no user sectors in zone 0");
    return target_idr * util::kBytesPerMiB /
           (double(ntz0) * util::kSectorBytes) * 60.0;
}

} // namespace hddtherm::hdd
