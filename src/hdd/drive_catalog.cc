#include "hdd/drive_catalog.h"

namespace hddtherm::hdd {

const std::vector<DriveSpec>&
table1Drives()
{
    // Columns: model, year, rpm, KBPI, KTPI, diameter("), platters,
    // datasheet capacity (GB), datasheet IDR (MB/s),
    // paper-model capacity (GB), paper-model IDR (MB/s).
    static const std::vector<DriveSpec> drives = {
        {"Quantum Atlas 10K", 1999, 10000, 256, 13.0, 3.3, 6,
         18, 39.3, 17.6, 46.5},
        {"IBM Ultrastar 36LZX", 1999, 10000, 352, 20.0, 3.0, 6,
         36, 56.5, 30.8, 58.1},
        {"Seagate Cheetah X15", 2000, 15000, 343, 21.4, 2.6, 5,
         18, 63.5, 20.1, 73.6},
        {"Quantum Atlas 10K II", 2000, 10000, 341, 14.2, 3.3, 3,
         18, 59.8, 12.8, 61.9},
        {"IBM Ultrastar 36Z15", 2001, 15000, 397, 27.0, 2.6, 6,
         36, 80.9, 35.2, 72.1},
        {"IBM Ultrastar 73LZX", 2001, 10000, 480, 27.3, 3.3, 3,
         36, 86.3, 34.7, 85.2},
        {"Seagate Barracuda 180", 2001, 7200, 490, 31.2, 3.7, 12,
         180, 63.5, 203.5, 71.8},
        {"Fujitsu AL-7LX", 2001, 15000, 450, 35.0, 2.7, 4,
         36, 91.8, 37.2, 100.3},
        {"Seagate Cheetah X15-36LP", 2001, 15000, 482, 38.0, 2.6, 4,
         36, 88.6, 40.1, 103.4},
        {"Seagate Cheetah 73LP", 2001, 10000, 485, 38.0, 3.3, 4,
         73, 83.9, 65.1, 88.1},
        {"Fujitsu AL-7LE", 2001, 10000, 485, 39.5, 3.3, 4,
         73, 84.1, 67.6, 88.1},
        {"Seagate Cheetah 10K.6", 2002, 10000, 570, 64.0, 3.3, 4,
         146, 105.1, 128.8, 103.5},
        {"Seagate Cheetah 15K.3", 2002, 15000, 533, 64.0, 2.6, 4,
         73, 111.4, 74.8, 114.4},
    };
    return drives;
}

const std::vector<ThermalRating>&
table2Ratings()
{
    static const std::vector<ThermalRating> ratings = {
        {"IBM Ultrastar 36LZX", 1999, 10000, 29.4, 50.0},
        {"Seagate Cheetah X15", 2000, 15000, 28.0, 55.0},
        {"IBM Ultrastar 36Z15", 2001, 15000, 29.4, 55.0},
        {"Seagate Barracuda 180", 2001, 7200, 28.0, 50.0},
    };
    return ratings;
}

std::optional<DriveSpec>
findDrive(const std::string& model)
{
    for (const auto& d : table1Drives()) {
        if (d.model == model)
            return d;
    }
    return std::nullopt;
}

} // namespace hddtherm::hdd
