/**
 * @file
 * Magnetic recording technology abstraction (paper §3.1).
 *
 * A recording point is the pair (BPI, TPI): linear bit density along a track
 * and radial track density.  Their product is the areal density — the
 * fundamental determinant of both capacity and data rate — and their ratio
 * is the bit aspect ratio (BAR) that the technology-scaling model tracks.
 */
#ifndef HDDTHERM_HDD_RECORDING_H
#define HDDTHERM_HDD_RECORDING_H

namespace hddtherm::hdd {

/// Areal density threshold, in bits per square inch, beyond which the paper
/// charges the terabit-class ECC overhead (Wood 2000).
inline constexpr double kTerabitArealDensity = 1e12;

/// ECC overhead per 512-byte sector for sub-terabit areal densities
/// (about 10 % of the 4096 payload bits).
inline constexpr int kEccBitsSubTerabit = 416;

/// ECC overhead per 512-byte sector in the terabit regime (about 35 %).
inline constexpr int kEccBitsTerabit = 1440;

/// A point in recording-technology space.
struct RecordingTech
{
    double bpi = 0.0; ///< Linear density, bits per inch along a track.
    double tpi = 0.0; ///< Track density, tracks per inch radially.

    /// Areal density in bits per square inch.
    double arealDensity() const { return bpi * tpi; }

    /// Bit aspect ratio BPI/TPI (dimensionless, ~6-7 in 2002, ~3.4 at 1 Tb).
    double bitAspectRatio() const { return bpi / tpi; }

    /// True once areal density reaches the terabit regime.
    bool isTerabit() const { return arealDensity() >= kTerabitArealDensity; }

    /// ECC bits charged per sector at this density (paper §3.1).
    int eccBitsPerSector() const
    {
        return isTerabit() ? kEccBitsTerabit : kEccBitsSubTerabit;
    }
};

} // namespace hddtherm::hdd

#endif // HDDTHERM_HDD_RECORDING_H
