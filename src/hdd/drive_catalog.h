/**
 * @file
 * Catalog of the real SCSI drives the paper validates against.
 *
 * Table 1 lists thirteen drives (1999-2002, four manufacturers) with their
 * recording points, geometry, datasheet capacity/IDR, and the values the
 * paper's model predicted.  Table 2 lists rated thermal envelopes for four
 * of them.  The catalog feeds the model-validation experiment (E1/E3) and
 * the workload study's per-year drive configurations.
 */
#ifndef HDDTHERM_HDD_DRIVE_CATALOG_H
#define HDDTHERM_HDD_DRIVE_CATALOG_H

#include <optional>
#include <string>
#include <vector>

#include "hdd/geometry.h"
#include "hdd/recording.h"
#include "hdd/zoning.h"

namespace hddtherm::hdd {

/// One catalog entry (a row of the paper's Table 1).
struct DriveSpec
{
    std::string model;        ///< Marketing name.
    int year = 0;             ///< Year of market introduction.
    double rpm = 0.0;         ///< Spindle speed.
    double kbpi = 0.0;        ///< Linear density, kilo-bits per inch.
    double ktpi = 0.0;        ///< Track density, kilo-tracks per inch.
    double diameterInches = 0.0; ///< Platter diameter.
    int platters = 0;         ///< Platter count.
    double datasheetCapacityGB = 0.0; ///< Vendor-quoted capacity.
    double datasheetIdrMBps = 0.0;    ///< Vendor-quoted max IDR.
    double paperModelCapacityGB = 0.0; ///< Paper's model prediction.
    double paperModelIdrMBps = 0.0;    ///< Paper's model prediction.

    /// Recording point of this drive.
    RecordingTech tech() const { return {kbpi * 1e3, ktpi * 1e3}; }

    /// Platter-stack geometry of this drive.
    PlatterGeometry geometry() const
    {
        PlatterGeometry g;
        g.diameterInches = diameterInches;
        g.platters = platters;
        return g;
    }

    /// Lay out the drive with the paper's 30-zone assumption.
    ZoneModel layout(int zones = kDefaultZones) const
    {
        return ZoneModel(geometry(), tech(), zones);
    }
};

/// A rated thermal envelope (a row of the paper's Table 2).
struct ThermalRating
{
    std::string model;        ///< Marketing name.
    int year = 0;             ///< Year of market introduction.
    double rpm = 0.0;         ///< Spindle speed.
    double wetBulbTempC = 0.0;    ///< Specified max external wet-bulb temp.
    double maxOperatingTempC = 0.0; ///< Rated max operating temperature.
};

/// The thirteen validation drives of Table 1, in paper order.
const std::vector<DriveSpec>& table1Drives();

/// The four rated envelopes of Table 2, in paper order.
const std::vector<ThermalRating>& table2Ratings();

/// Look up a Table 1 drive by (case-sensitive) model name.
std::optional<DriveSpec> findDrive(const std::string& model);

} // namespace hddtherm::hdd

#endif // HDDTHERM_HDD_DRIVE_CATALOG_H
