/**
 * @file
 * Platter and enclosure geometry (paper §3.1, §3.3, §4.2.2).
 */
#ifndef HDDTHERM_HDD_GEOMETRY_H
#define HDDTHERM_HDD_GEOMETRY_H

#include "util/error.h"

namespace hddtherm::hdd {

/// Fraction of the radial band usable for data tracks ("stroke efficiency",
/// paper §3.1; the accepted practitioner value is 2/3).
inline constexpr double kDefaultStrokeEfficiency = 2.0 / 3.0;

/**
 * Geometry of the recording media stack.
 *
 * The paper's rule of thumb fixes the inner radius at half the outer radius;
 * we keep the ratio configurable but default to 0.5.
 */
struct PlatterGeometry
{
    double diameterInches = 2.6;  ///< Platter (media) diameter, inches.
    double innerRatio = 0.5;      ///< ri / ro.
    int platters = 1;             ///< Number of platters in the stack.
    double strokeEfficiency = kDefaultStrokeEfficiency;

    /// Outer data radius in inches.
    double outerRadiusInches() const { return diameterInches / 2.0; }

    /// Inner data radius in inches.
    double innerRadiusInches() const
    {
        return outerRadiusInches() * innerRatio;
    }

    /// Number of recording surfaces (two per platter).
    int surfaces() const { return platters * 2; }

    /// Validate invariants; throws util::ModelError on bad configuration.
    void validate() const
    {
        HDDTHERM_REQUIRE(diameterInches > 0.0, "platter diameter > 0");
        HDDTHERM_REQUIRE(innerRatio > 0.0 && innerRatio < 1.0,
                         "inner radius ratio in (0, 1)");
        HDDTHERM_REQUIRE(platters >= 1, "at least one platter");
        HDDTHERM_REQUIRE(strokeEfficiency > 0.0 && strokeEfficiency <= 1.0,
                         "stroke efficiency in (0, 1]");
    }
};

/**
 * Drive enclosure (form factor) footprint.  Determines the base/cover areas
 * available to drain heat to the outside air (paper §3.3, §4.2.2).
 */
struct FormFactor
{
    double lengthInches = 5.75; ///< Case length.
    double widthInches = 4.0;   ///< Case width.
    double heightInches = 1.0;  ///< Case height.

    /// Standard 3.5" form factor case (the paper's baseline enclosure).
    static FormFactor ff35() { return {5.75, 4.0, 1.0}; }

    /// 2.5" form factor case, 3.96" x 2.75" (paper §4.2.2).
    static FormFactor ff25() { return {3.96, 2.75, 0.75}; }

    /// Base (or cover) plate area in square inches.
    double plateAreaSqIn() const { return lengthInches * widthInches; }

    /// Total external surface area in square inches (plates + side walls).
    double externalAreaSqIn() const
    {
        return 2.0 * plateAreaSqIn() +
               2.0 * heightInches * (lengthInches + widthInches);
    }
};

} // namespace hddtherm::hdd

#endif // HDDTHERM_HDD_GEOMETRY_H
