/**
 * @file
 * Derated drive capacity and internal data rate (paper §3.1-3.2).
 */
#ifndef HDDTHERM_HDD_CAPACITY_H
#define HDDTHERM_HDD_CAPACITY_H

#include <cstdint>
#include <vector>

#include "hdd/zoning.h"

namespace hddtherm::hdd {

/// Capacity breakdown of a ZBR layout, mirroring the paper's adjustments.
struct CapacityBreakdown
{
    double rawBits = 0.0;            ///< Cmax: media-limited bits.
    std::int64_t zbrSectors = 0;     ///< After ZBR quantization only.
    std::int64_t userSectors = 0;    ///< After servo + ECC derating.
    double rawGB = 0.0;              ///< Cmax in decimal GB.
    double zbrGB = 0.0;              ///< ZBR capacity in decimal GB.
    double userGB = 0.0;             ///< User capacity in decimal GB.
    double zbrLossFraction = 0.0;    ///< 1 - zbr/raw.
    double overheadFraction = 0.0;   ///< (servo+ecc)/4096 per sector.
};

/// Compute the capacity breakdown for a laid-out drive.
CapacityBreakdown computeCapacity(const ZoneModel& layout);

/**
 * Maximum internal data rate in MB/s (MB = 2^20 bytes), experienced in the
 * outermost zone (paper Equation 4):
 *   IDR = (rpm / 60) * ntz0 * 512 / 2^20.
 */
double internalDataRateMBps(const ZoneModel& layout, double rpm);

/**
 * The RPM needed to reach @p target_idr MB/s on this layout (inverse of
 * Equation 4).  Used by roadmap step 2.
 */
double rpmForDataRate(const ZoneModel& layout, double target_idr);

/**
 * Sustained media data rate of every zone, outermost first, in MB/s
 * (MB = 2^20 bytes).  Zone 0's entry equals internalDataRateMBps(); inner
 * zones fall off with their shorter tracks — the familiar ZBR bandwidth
 * staircase.
 */
std::vector<double> zoneDataRatesMBps(const ZoneModel& layout, double rpm);

} // namespace hddtherm::hdd

#endif // HDDTHERM_HDD_CAPACITY_H
