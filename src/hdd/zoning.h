/**
 * @file
 * Zoned-bit-recording layout model (paper §3.1).
 *
 * ZoneModel lays out the cylinders of one surface across n_zones equal
 * groups.  Every track in a zone is formatted with the sector count of the
 * zone's smallest-perimeter (innermost) track.  Per-sector overheads follow
 * the paper exactly:
 *   - servo: ceil(log2(n_cylinders)) bits for the Gray-coded track id;
 *   - ECC: 416 bits/sector below 1 Tb/in^2, 1440 bits/sector at or above.
 * The derated (user-visible) sector count of a track multiplies the raw
 * count by (1 - overhead / 4096), matching the paper's alpha adjustment and
 * its validated Table 1 values.
 *
 * The simulator reuses this layout for LBA-to-physical mapping, so the
 * capacity model and the mechanical model can never disagree.
 */
#ifndef HDDTHERM_HDD_ZONING_H
#define HDDTHERM_HDD_ZONING_H

#include <cstdint>
#include <vector>

#include "hdd/geometry.h"
#include "hdd/recording.h"

namespace hddtherm::hdd {

/// Default zone count used by the paper for modern drives.
inline constexpr int kDefaultZones = 30;

/// One zone of the ZBR layout (zone 0 is outermost).
struct Zone
{
    int firstCylinder = 0;       ///< Index of the outermost cylinder.
    int cylinders = 0;           ///< Number of cylinders in this zone.
    double minTrackRadiusIn = 0; ///< Radius of the innermost track, inches.
    std::int64_t rawBitsPerTrack = 0;   ///< Bit capacity of the min track.
    int rawSectorsPerTrack = 0;  ///< floor(rawBits / 4096).
    int userSectorsPerTrack = 0; ///< After servo + ECC derating.
};

/**
 * The full ZBR layout of one recording surface, replicated across all
 * surfaces of the stack.
 */
class ZoneModel
{
  public:
    /**
     * Build a layout.
     *
     * @param geometry platter stack geometry (validated here).
     * @param tech recording point; determines ECC overhead.
     * @param zones number of ZBR zones (>= 1).
     * @param ecc_bits_override if non-negative, replaces the density-derived
     *        ECC bits/sector (used by the smoothed-ECC-transition ablation).
     */
    ZoneModel(const PlatterGeometry& geometry, const RecordingTech& tech,
              int zones = kDefaultZones, int ecc_bits_override = -1);

    /// Total cylinders on a surface: eta * (ro - ri) * TPI.
    int cylinders() const { return cylinders_; }

    /// Number of zones actually laid out (<= requested when few cylinders).
    int zones() const { return int(zones_.size()); }

    /// Number of recording surfaces.
    int surfaces() const { return geometry_.surfaces(); }

    /// Servo bits per sector: ceil(log2(cylinders)).
    int servoBitsPerSector() const { return servo_bits_; }

    /// ECC bits per sector for the configured recording point.
    int eccBitsPerSector() const { return ecc_bits_; }

    /// Zone descriptor by index (0 = outermost).
    const Zone& zone(int z) const { return zones_.at(std::size_t(z)); }

    /// Zone index containing @p cylinder.
    int zoneOfCylinder(int cylinder) const;

    /// Radius of @p cylinder in inches (paper Equation 1 divided by 2*pi).
    double trackRadiusInches(int cylinder) const;

    /// User sectors on one track of @p cylinder (ZBR: zone-min formatted).
    int userSectorsPerTrack(int cylinder) const;

    /// User sectors per cylinder (all surfaces).
    std::int64_t userSectorsPerCylinder(int cylinder) const;

    /// Total user-addressable sectors on the drive.
    std::int64_t totalUserSectors() const { return total_user_sectors_; }

    /// Total formatted-but-underated sectors (ZBR loss only, no servo/ECC).
    std::int64_t totalRawSectors() const { return total_raw_sectors_; }

    /// Raw media capacity in bits: eta * nsurf * pi (ro^2-ri^2) * BPI * TPI.
    double rawCapacityBits() const;

    /// Recording point used for this layout.
    const RecordingTech& tech() const { return tech_; }

    /// Geometry used for this layout.
    const PlatterGeometry& geometry() const { return geometry_; }

  private:
    PlatterGeometry geometry_;
    RecordingTech tech_;
    int cylinders_ = 0;
    int servo_bits_ = 0;
    int ecc_bits_ = 0;
    std::vector<Zone> zones_;
    std::int64_t total_user_sectors_ = 0;
    std::int64_t total_raw_sectors_ = 0;
};

} // namespace hddtherm::hdd

#endif // HDDTHERM_HDD_ZONING_H
