/**
 * @file
 * Seek-time model (paper §3.2).
 *
 * Three datasheet parameters — track-to-track, average, and full-stroke
 * seek times — define a two-segment piecewise-linear curve over seek
 * distance (Worthington et al. 1995 report this is accurate except for very
 * short seeks, which get a square-root profile here).  Parameters for
 * platter sizes without a datasheet are interpolated linearly in diameter
 * from real-device anchor points, as the paper does.
 */
#ifndef HDDTHERM_HDD_SEEK_H
#define HDDTHERM_HDD_SEEK_H

namespace hddtherm::hdd {

/// Seek-curve parameters, all in milliseconds.
struct SeekProfile
{
    double trackToTrackMs = 0.4; ///< Adjacent-cylinder seek (incl. settle).
    double averageMs = 3.6;      ///< Random average seek.
    double fullStrokeMs = 7.4;   ///< End-to-end seek.

    /// Datasheet-style parameters for a platter diameter in inches, by
    /// linear interpolation between real-device anchors.
    static SeekProfile forDiameter(double diameter_inches);
};

/**
 * Evaluates seek time as a function of seek distance in cylinders.
 */
class SeekModel
{
  public:
    /**
     * @param profile the three-point curve parameters.
     * @param cylinders total cylinders (fixes the full-stroke distance and
     *        the average distance at cylinders/3).
     */
    SeekModel(const SeekProfile& profile, int cylinders);

    /// Seek time in milliseconds for a move of @p distance cylinders.
    double seekTimeMs(int distance) const;

    /// Seek time in seconds.
    double seekTimeSec(int distance) const;

    /// The underlying profile.
    const SeekProfile& profile() const { return profile_; }

    /// Cylinder count the model was built for.
    int cylinders() const { return cylinders_; }

    /// Expected seek time for a uniformly random seek (distance cyl/3).
    double averageMsValue() const { return profile_.averageMs; }

  private:
    SeekProfile profile_;
    int cylinders_ = 1;
    double avg_distance_ = 1.0;
};

} // namespace hddtherm::hdd

#endif // HDDTHERM_HDD_SEEK_H
