#include "hdd/zoning.h"

#include <cmath>
#include <numbers>

#include "util/error.h"
#include "util/units.h"

namespace hddtherm::hdd {

ZoneModel::ZoneModel(const PlatterGeometry& geometry,
                     const RecordingTech& tech, int zones,
                     int ecc_bits_override)
    : geometry_(geometry), tech_(tech)
{
    geometry_.validate();
    HDDTHERM_REQUIRE(tech_.bpi > 0.0 && tech_.tpi > 0.0,
                     "recording densities must be positive");
    HDDTHERM_REQUIRE(zones >= 1, "need at least one zone");

    const double ro = geometry_.outerRadiusInches();
    const double ri = geometry_.innerRadiusInches();
    cylinders_ =
        int(std::floor(geometry_.strokeEfficiency * (ro - ri) * tech_.tpi));
    HDDTHERM_REQUIRE(cylinders_ >= 2,
                     "configuration yields fewer than two cylinders");

    servo_bits_ = int(std::ceil(std::log2(double(cylinders_))));
    ecc_bits_ = ecc_bits_override >= 0 ? ecc_bits_override
                                       : tech_.eccBitsPerSector();
    const double overhead_frac =
        double(servo_bits_ + ecc_bits_) / double(util::kSectorBits);
    HDDTHERM_REQUIRE(overhead_frac < 1.0, "per-sector overhead exceeds 100%");

    const int nz = std::min(zones, cylinders_);
    const int base = cylinders_ / nz; // last zone absorbs the remainder
    zones_.reserve(std::size_t(nz));

    int first = 0;
    for (int z = 0; z < nz; ++z) {
        Zone zone;
        zone.firstCylinder = first;
        zone.cylinders = (z == nz - 1) ? cylinders_ - first : base;
        const int innermost = zone.firstCylinder + zone.cylinders - 1;
        zone.minTrackRadiusIn = trackRadiusInches(innermost);
        const double perimeter =
            2.0 * std::numbers::pi * zone.minTrackRadiusIn;
        zone.rawBitsPerTrack = std::int64_t(perimeter * tech_.bpi);
        zone.rawSectorsPerTrack =
            int(zone.rawBitsPerTrack / util::kSectorBits);
        zone.userSectorsPerTrack = int(std::floor(
            double(zone.rawSectorsPerTrack) * (1.0 - overhead_frac)));

        total_raw_sectors_ += std::int64_t(surfaces()) * zone.cylinders *
                              zone.rawSectorsPerTrack;
        total_user_sectors_ += std::int64_t(surfaces()) * zone.cylinders *
                               zone.userSectorsPerTrack;
        first += zone.cylinders;
        zones_.push_back(zone);
    }
    HDDTHERM_ASSERT(first == cylinders_);
}

int
ZoneModel::zoneOfCylinder(int cylinder) const
{
    HDDTHERM_REQUIRE(cylinder >= 0 && cylinder < cylinders_,
                     "cylinder out of range");
    const int base = zones_.front().cylinders;
    const int z = std::min(cylinder / base, int(zones_.size()) - 1);
    HDDTHERM_ASSERT(cylinder >= zones_[std::size_t(z)].firstCylinder);
    return z;
}

double
ZoneModel::trackRadiusInches(int cylinder) const
{
    HDDTHERM_REQUIRE(cylinder >= 0 && cylinder < cylinders_,
                     "cylinder out of range");
    const double ro = geometry_.outerRadiusInches();
    const double ri = geometry_.innerRadiusInches();
    // Paper Equation 1: cylinder 0 is outermost at ro, the last cylinder is
    // innermost at ri, uniformly spaced in radius.
    return ri + (ro - ri) * double(cylinders_ - cylinder - 1) /
                    double(cylinders_ - 1);
}

int
ZoneModel::userSectorsPerTrack(int cylinder) const
{
    return zones_[std::size_t(zoneOfCylinder(cylinder))].userSectorsPerTrack;
}

std::int64_t
ZoneModel::userSectorsPerCylinder(int cylinder) const
{
    return std::int64_t(surfaces()) * userSectorsPerTrack(cylinder);
}

double
ZoneModel::rawCapacityBits() const
{
    const double ro = geometry_.outerRadiusInches();
    const double ri = geometry_.innerRadiusInches();
    return geometry_.strokeEfficiency * surfaces() * std::numbers::pi *
           (ro * ro - ri * ri) * tech_.arealDensity();
}

} // namespace hddtherm::hdd
