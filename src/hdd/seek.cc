#include "hdd/seek.h"

#include <cmath>

#include "util/error.h"
#include "util/interp.h"
#include "util/units.h"

namespace hddtherm::hdd {

SeekProfile
SeekProfile::forDiameter(double diameter_inches)
{
    HDDTHERM_REQUIRE(diameter_inches > 0.0, "diameter must be positive");
    // Anchors distilled from server-drive datasheets across platter sizes
    // (Cheetah X15 family at 2.6", Atlas 10K at 3.3", Barracuda at 3.7",
    // small-media points extrapolated along the same trend).  The paper
    // likewise linearly interpolates device data across platter sizes.
    using util::PiecewiseLinear;
    static const PiecewiseLinear track_to_track({
        {1.6, 0.25}, {2.1, 0.30}, {2.6, 0.40}, {3.0, 0.50},
        {3.3, 0.60}, {3.7, 0.80}});
    static const PiecewiseLinear average({
        {1.6, 2.2}, {2.1, 2.9}, {2.6, 3.6}, {3.0, 4.2},
        {3.3, 4.7}, {3.7, 5.6}});
    static const PiecewiseLinear full_stroke({
        {1.6, 4.5}, {2.1, 6.0}, {2.6, 7.4}, {3.0, 9.0},
        {3.3, 10.5}, {3.7, 12.5}});

    SeekProfile p;
    p.trackToTrackMs = track_to_track(diameter_inches);
    p.averageMs = average(diameter_inches);
    p.fullStrokeMs = full_stroke(diameter_inches);
    return p;
}

SeekModel::SeekModel(const SeekProfile& profile, int cylinders)
    : profile_(profile), cylinders_(cylinders)
{
    HDDTHERM_REQUIRE(cylinders_ >= 2, "need at least two cylinders");
    HDDTHERM_REQUIRE(profile_.trackToTrackMs > 0.0 &&
                         profile_.averageMs >= profile_.trackToTrackMs &&
                         profile_.fullStrokeMs >= profile_.averageMs,
                     "seek profile must be ordered t2t <= avg <= full");
    avg_distance_ = double(cylinders_) / 3.0;
}

double
SeekModel::seekTimeMs(int distance) const
{
    HDDTHERM_REQUIRE(distance >= 0 && distance < cylinders_,
                     "seek distance out of range");
    if (distance == 0)
        return 0.0;
    const auto d = double(distance);

    // Very short seeks (< 10 cylinders) deviate from the linear fit; use a
    // square-root ramp anchored at the track-to-track time, the classic
    // acceleration-limited shape.
    if (d < 10.0 && d < avg_distance_) {
        const double at10 =
            profile_.trackToTrackMs +
            (9.0 / (avg_distance_ - 1.0)) *
                (profile_.averageMs - profile_.trackToTrackMs);
        return profile_.trackToTrackMs +
               (at10 - profile_.trackToTrackMs) * std::sqrt((d - 1.0) / 9.0);
    }

    if (d <= avg_distance_) {
        const double t = (d - 1.0) / (avg_distance_ - 1.0);
        return util::lerp(profile_.trackToTrackMs, profile_.averageMs, t);
    }
    const double dmax = double(cylinders_ - 1);
    const double t = (d - avg_distance_) / (dmax - avg_distance_);
    return util::lerp(profile_.averageMs, profile_.fullStrokeMs, t);
}

double
SeekModel::seekTimeSec(int distance) const
{
    return util::msToSec(seekTimeMs(distance));
}

} // namespace hddtherm::hdd
