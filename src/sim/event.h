/**
 * @file
 * The storage layer's view of the simulation kernel.
 *
 * The event loop that used to live here (a private (time, seq) heap) is
 * now the engine-layer SimKernel, shared by every layer of the simulator:
 * the storage components schedule under its "storage" clock domain, the
 * DTM controller ticks under "thermal", and the fleet barrier steps an
 * "fleet-epoch" domain (see docs/engine.md for the port map).  EventQueue
 * remains the name the storage layer uses; it *is* the kernel, so
 * attaching trace sinks or registering further domains needs no new
 * plumbing.
 */
#ifndef HDDTHERM_SIM_EVENT_H
#define HDDTHERM_SIM_EVENT_H

#include "engine/kernel.h"

namespace hddtherm::sim {

/// Simulated time in seconds (the kernel's clock).
using SimTime = engine::SimTime;

/// The shared simulation kernel, under its storage-layer name.
using EventQueue = engine::SimKernel;

/// Clock-domain name every storage component schedules under.
inline constexpr const char* kStorageDomainName = "storage";

/// Register (or look up) the storage clock domain of @p events.
inline engine::DomainId
storageDomain(EventQueue& events)
{
    return events.registerDomain(kStorageDomainName);
}

} // namespace hddtherm::sim

#endif // HDDTHERM_SIM_EVENT_H
