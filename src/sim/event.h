/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A minimal, deterministic event queue: events fire in (time, insertion)
 * order, so simultaneous events execute in the order they were scheduled.
 * All simulator components share one queue; time is in seconds.
 */
#ifndef HDDTHERM_SIM_EVENT_H
#define HDDTHERM_SIM_EVENT_H

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace hddtherm::sim {

/// Simulated time in seconds.
using SimTime = double;

/// Time-ordered event queue driving the simulation.
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /// Schedule @p cb at absolute time @p when (>= now()).
    void schedule(SimTime when, Callback cb);

    /// Schedule @p cb at now() + @p delay.
    void scheduleAfter(SimTime delay, Callback cb);

    /// Pop and run the earliest event; returns false if the queue is empty.
    bool runNext();

    /// Run events with when <= @p limit; time advances to @p limit.
    void runUntil(SimTime limit);

    /// Run until the queue drains.
    void runAll();

    /// Current simulated time.
    SimTime now() const { return now_; }

    /// True if no events are pending.
    bool empty() const { return heap_.empty(); }

    /// Number of pending events.
    std::size_t pending() const { return heap_.size(); }

  private:
    struct Event
    {
        SimTime when;
        std::uint64_t seq;
        Callback cb;
    };
    struct Later
    {
        bool operator()(const Event& a, const Event& b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> heap_;
    SimTime now_ = 0.0;
    std::uint64_t next_seq_ = 0;
};

} // namespace hddtherm::sim

#endif // HDDTHERM_SIM_EVENT_H
