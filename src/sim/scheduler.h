/**
 * @file
 * Disk request schedulers: FCFS, SSTF and LOOK (elevator).
 *
 * The scheduler owns the per-disk pending queue and chooses the next
 * request given the current head cylinder.  DiskSim's default for the
 * paper-era experiments is FCFS at the device driver with the drive
 * reordering internally; we expose all three policies for the scheduling
 * ablation.
 */
#ifndef HDDTHERM_SIM_SCHEDULER_H
#define HDDTHERM_SIM_SCHEDULER_H

#include <deque>
#include <functional>
#include <memory>

#include "sim/request.h"

namespace hddtherm::snap {
class StateWriter;
class StateReader;
} // namespace hddtherm::snap

namespace hddtherm::sim {

/// Available scheduling policies.
enum class SchedulerPolicy
{
    Fcfs,     ///< First come, first served.
    Sstf,     ///< Shortest seek time first.
    Elevator, ///< LOOK: sweep up, then down.
};

/// Human-readable policy name.
const char* schedulerPolicyName(SchedulerPolicy policy);

/// Pending-request queue with a pluggable pick policy.
class Scheduler
{
  public:
    /// A queued request plus its pre-translated target cylinder.
    struct Entry
    {
        IoRequest request;
        int cylinder = 0;
    };

    explicit Scheduler(SchedulerPolicy policy);

    /// Enqueue a request bound for @p cylinder.
    void push(const IoRequest& request, int cylinder);

    /// True when no requests are pending.
    bool empty() const { return queue_.empty(); }

    /// Pending count.
    std::size_t size() const { return queue_.size(); }

    /**
     * Remove and return the next request to service given the current
     * head position.  Precondition: !empty().
     */
    Entry pop(int head_cylinder);

    /// Policy in force.
    SchedulerPolicy policy() const { return policy_; }

    /// Serialize the pending queue in arrival order (checkpoint support).
    void saveState(snap::StateWriter& w) const;

    /// Restore a queue written by saveState (policies must match).
    void loadState(snap::StateReader& r);

  private:
    SchedulerPolicy policy_;
    std::deque<Entry> queue_;
    bool sweep_up_ = true; ///< Elevator direction state.
};

} // namespace hddtherm::sim

#endif // HDDTHERM_SIM_SCHEDULER_H
