/**
 * @file
 * Response-time metrics in the paper's Figure 4 presentation.
 */
#ifndef HDDTHERM_SIM_METRICS_H
#define HDDTHERM_SIM_METRICS_H

#include "sim/request.h"
#include "util/stats.h"

namespace hddtherm::sim {

/// Accumulates per-request response times (milliseconds).
class ResponseMetrics
{
  public:
    ResponseMetrics()
        : histogram_(util::Histogram::paperResponseTimeBins())
    {}

    /// Record one completed logical request.
    void record(const IoCompletion& completion)
    {
        const double ms = completion.responseTimeMs();
        stats_.add(ms);
        histogram_.add(ms);
    }

    /**
     * Fold another accumulator into this one (fleet-level aggregation).
     * Merge is order-sensitive in floating point, so callers that promise
     * determinism must merge in a fixed order (the fleet merges in bay
     * order on one thread).
     */
    void merge(const ResponseMetrics& other)
    {
        stats_.merge(other.stats_);
        histogram_.merge(other.histogram_);
    }

    /// Mean response time, ms.
    double meanMs() const { return stats_.mean(); }

    /// Completed request count.
    std::uint64_t count() const { return stats_.count(); }

    /// Scalar statistics.
    const util::OnlineStats& stats() const { return stats_; }

    /// CDF over the paper's bins {5,10,20,40,60,90,120,150,200,200+} ms.
    const util::Histogram& histogram() const { return histogram_; }

    /// Serialize both accumulators bitwise (checkpoint support).
    void saveState(snap::StateWriter& w) const
    {
        stats_.saveState(w);
        histogram_.saveState(w);
    }

    /// Restore accumulators written by saveState.
    void loadState(snap::StateReader& r)
    {
        stats_.loadState(r);
        histogram_.loadState(r);
    }

  private:
    util::OnlineStats stats_;
    util::Histogram histogram_;
};

} // namespace hddtherm::sim

#endif // HDDTHERM_SIM_METRICS_H
