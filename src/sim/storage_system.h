/**
 * @file
 * The storage system: an array of simulated disks behind an (optional)
 * RAID controller, replaying block-level workloads (paper §5.1).
 *
 * Logical requests are striped into per-disk sub-requests; RAID-5 writes
 * follow the read-modify-write protocol (read old data + old parity, then
 * write new data + new parity).  A logical request completes when its last
 * sub-request finishes; response times feed the Figure 4 CDFs.
 */
#ifndef HDDTHERM_SIM_STORAGE_SYSTEM_H
#define HDDTHERM_SIM_STORAGE_SYSTEM_H

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/disk.h"
#include "sim/metrics.h"
#include "sim/raid.h"

namespace hddtherm::sim {

/// Storage-system configuration.
struct SystemConfig
{
    DiskConfig disk;       ///< Configuration shared by all member disks.
    int disks = 1;         ///< Member count.
    RaidLevel raid = RaidLevel::None;
    int stripeSectors = 16; ///< Stripe unit (paper: 16 x 512 B).
    /**
     * Array-controller write-back caching: logical writes are reported
     * complete after writeReportLatencyMs while the media traffic proceeds
     * in the background (NVRAM-backed controllers; standard for the
     * era's enterprise arrays).
     */
    bool immediateWriteReport = false;
    double writeReportLatencyMs = 0.1;
};

/// Disk array + controller + metrics.
class StorageSystem
{
  public:
    /// Invoked when a logical request completes.
    using CompletionCallback = std::function<void(const IoCompletion&)>;

    explicit StorageSystem(const SystemConfig& config);

    /// Shared event queue (drive it manually for co-simulation).
    EventQueue& events() { return events_; }
    const EventQueue& events() const { return events_; }

    /// Member disk access.
    SimDisk& disk(int i) { return *disks_.at(std::size_t(i)); }
    const SimDisk& disk(int i) const { return *disks_.at(std::size_t(i)); }

    /// Number of member disks.
    int diskCount() const { return int(disks_.size()); }

    /**
     * Logical sector capacity: per-device for RaidLevel::None (requests
     * carry a device id), whole-volume for RAID-0/5.
     */
    std::int64_t logicalSectors() const;

    /// Optional observer of logical completions.
    void setCompletionCallback(CompletionCallback cb);

    /**
     * Schedule a logical request for its arrival time (which must not be
     * in the simulated past).
     */
    void submit(const IoRequest& request);

    /// Submit a whole workload, run to completion, and return the metrics.
    ResponseMetrics run(const std::vector<IoRequest>& workload);

    /// Drain all pending events.
    void runAll() { events_.runAll(); }

    /// Metrics accumulated so far.
    const ResponseMetrics& metrics() const { return metrics_; }

    /// Reset metrics (e.g. after warm-up).
    void resetMetrics() { metrics_ = ResponseMetrics(); }

    /// Requests accepted but not yet completed.
    std::size_t inflight() const { return inflight_.size(); }

    /// Configuration in force.
    const SystemConfig& config() const { return config_; }

    /// @name Array-wide DTM hooks (applied to every member disk).
    /// @{
    void gateAll(bool gated);
    void changeRpmAll(double rpm);
    /// @}

    /**
     * RAID-1 read steering (the paper's §5.4 mirrored-disk DTM idea):
     * direct all mirror reads to member @p index, or pass -1 to restore
     * the default least-loaded selection.  Writes always go to every
     * mirror.  Only meaningful for RaidLevel::Raid1.
     */
    void setPreferredMirror(int index);

    /// Current preferred mirror (-1 = least-loaded selection).
    int preferredMirror() const { return preferred_mirror_; }

    /**
     * Failure injection: mark member @p index failed.  Subsequent RAID-1
     * traffic avoids it; RAID-5 serves its extents in degraded mode
     * (reads reconstruct from the row's surviving units, writes maintain
     * parity without the lost member).  Only redundant levels accept
     * failures, at most one member, and only while that member is idle
     * (inject before replay or between bursts).
     */
    void failDisk(int index);

    /// Index of the failed member, or -1 if the array is healthy.
    int failedDisk() const { return failed_; }

    /// @name Checkpoint/restore
    /// @{

    /// Serialize controller + metrics + every member disk (the kernel is
    /// saved separately by its owner).
    void saveState(snap::StateWriter& w) const;

    /// Restore state written by saveState.
    void loadState(snap::StateReader& r);

    /// Rebuild the callback of one tagged pending event — logical
    /// arrivals are the controller's own, disk events delegate to the
    /// member the tag's aux field addresses.
    engine::SimKernel::Callback restoreEvent(const snap::EventTag& tag);

    /// @}

  private:
    struct Outstanding
    {
        IoRequest logical;
        int remaining = 0;
        bool reported = false;         ///< Already counted (write-back).
        std::vector<IoRequest> phase2; ///< RMW writes awaiting phase 1.
    };

    void dispatch(const IoRequest& request);
    int pickMirror() const;
    void issueSub(std::uint64_t parent_id, int disk_index,
                  const IoRequest& sub);
    void onSubComplete(const IoRequest& sub, SimTime finish);
    void completeLogical(Outstanding& out, SimTime finish);

    SystemConfig config_;
    EventQueue events_;
    engine::DomainId domain_; ///< Storage clock domain of events_.
    std::vector<std::unique_ptr<SimDisk>> disks_;
    ResponseMetrics metrics_;
    CompletionCallback callback_;

    std::unordered_map<std::uint64_t, Outstanding> inflight_;
    std::unordered_map<std::uint64_t, std::uint64_t> sub_to_parent_;
    std::uint64_t next_sub_id_ = 1;
    int preferred_mirror_ = -1;
    mutable int mirror_rr_ = 0; ///< Round-robin tiebreaker for reads.
    int failed_ = -1;           ///< Failed member (-1 = healthy).
};

} // namespace hddtherm::sim

#endif // HDDTHERM_SIM_STORAGE_SYSTEM_H
