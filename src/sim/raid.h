/**
 * @file
 * RAID striping arithmetic (paper §5.1: RAID-5, stripe of 16 sectors).
 *
 * Pure address-mapping functions, separated from the event-driven
 * controller so they can be property-tested in isolation.  RAID-5 uses
 * left-symmetric rotated parity: in row r the parity unit lives on disk
 * (disks - 1 - r % disks) and data units fill the remaining disks in
 * increasing order.
 */
#ifndef HDDTHERM_SIM_RAID_H
#define HDDTHERM_SIM_RAID_H

#include <cstdint>
#include <vector>

namespace hddtherm::sim {

/// RAID organizations supported by the storage system.
enum class RaidLevel
{
    None,  ///< Independent disks addressed by device id.
    Raid0, ///< Striping, no redundancy.
    Raid1, ///< Mirroring: writes to all members, reads steered to one.
    Raid5, ///< Striping with rotated parity.
};

/// Human-readable level name.
const char* raidLevelName(RaidLevel level);

/// One physical extent produced by striping a logical request.
struct StripeTarget
{
    int disk = 0;           ///< Member disk index.
    std::int64_t lba = 0;   ///< Sector address on that disk.
    int sectors = 0;        ///< Extent length.

    bool operator==(const StripeTarget&) const = default;
};

/**
 * Split a logical extent across a RAID-0 array.
 *
 * @param lba logical start sector.
 * @param sectors extent length.
 * @param disks array width (>= 1).
 * @param stripe_sectors stripe-unit size in sectors.
 */
std::vector<StripeTarget> stripeRaid0(std::int64_t lba, int sectors,
                                      int disks, int stripe_sectors);

/**
 * Split a logical extent across the data units of a RAID-5 array
 * (parity units are not included; see raid5ParityTarget()).
 *
 * @param disks array width (>= 3 for a meaningful RAID-5).
 */
std::vector<StripeTarget> stripeRaid5Data(std::int64_t lba, int sectors,
                                          int disks, int stripe_sectors);

/// Disk holding the parity unit of RAID-5 row @p row.
int raid5ParityDisk(std::int64_t row, int disks);

/// Parity-unit extent of RAID-5 row @p row.
StripeTarget raid5ParityTarget(std::int64_t row, int disks,
                               int stripe_sectors);

/// RAID-5 row containing the given data target.
std::int64_t raid5RowOfTarget(const StripeTarget& target,
                              int stripe_sectors);

/**
 * Logical capacity of an array built from @p disks members of
 * @p disk_sectors sectors each.
 */
std::int64_t arrayLogicalSectors(RaidLevel level, int disks,
                                 std::int64_t disk_sectors);

} // namespace hddtherm::sim

#endif // HDDTHERM_SIM_RAID_H
