#include "sim/closed_loop.h"

#include "util/error.h"

namespace hddtherm::sim {

ClosedLoopDriver::ClosedLoopDriver(StorageSystem& system, int clients,
                                   double think_time_sec,
                                   RequestFactory factory)
    : system_(system),
      domain_(system.events().registerDomain("client")),
      clients_(clients),
      think_time_(think_time_sec),
      factory_(std::move(factory))
{
    HDDTHERM_REQUIRE(clients_ >= 1, "need at least one client");
    HDDTHERM_REQUIRE(think_time_ >= 0.0, "negative think time");
    HDDTHERM_REQUIRE(bool(factory_), "missing request factory");
}

void
ClosedLoopDriver::issue(int client)
{
    if (issued_ >= target_)
        return;
    ++issued_;
    IoRequest req = factory_(client, next_seq_);
    // Ids encode the issuing client so the completion can hand the token
    // back: id = seq * clients + client + 1 (ids stay unique and > 0).
    req.id = next_seq_ * std::uint64_t(clients_) +
             std::uint64_t(client) + 1;
    ++next_seq_;
    req.arrival = system_.events().now();
    system_.submit(req);
}

ResponseMetrics
ClosedLoopDriver::run(std::size_t total_requests)
{
    HDDTHERM_REQUIRE(total_requests >= 1, "nothing to run");
    target_ = total_requests;
    issued_ = 0;
    completed_ = 0;
    next_seq_ = 0;
    system_.resetMetrics();

    system_.setCompletionCallback([this](const IoCompletion& done) {
        ++completed_;
        if (issued_ >= target_)
            return;
        const int client = int((done.id - 1) % std::uint64_t(clients_));
        system_.events().scheduleAfter(think_time_, domain_,
                                       [this, client] { issue(client); });
    });

    for (int c = 0; c < clients_ && issued_ < target_; ++c)
        issue(c);
    system_.runAll();
    system_.setCompletionCallback(nullptr);
    HDDTHERM_ASSERT(completed_ == target_);
    return system_.metrics();
}

} // namespace hddtherm::sim
