#include "sim/raid.h"

#include <algorithm>

#include "util/error.h"

namespace hddtherm::sim {

const char*
raidLevelName(RaidLevel level)
{
    switch (level) {
      case RaidLevel::None:
        return "JBOD";
      case RaidLevel::Raid0:
        return "RAID-0";
      case RaidLevel::Raid1:
        return "RAID-1";
      case RaidLevel::Raid5:
        return "RAID-5";
    }
    return "UNKNOWN";
}

namespace {

void
validateStripeArgs(std::int64_t lba, int sectors, int disks,
                   int stripe_sectors, int min_disks)
{
    HDDTHERM_REQUIRE(lba >= 0, "negative LBA");
    HDDTHERM_REQUIRE(sectors >= 1, "empty extent");
    HDDTHERM_REQUIRE(disks >= min_disks, "too few disks for this level");
    HDDTHERM_REQUIRE(stripe_sectors >= 1, "stripe unit must be positive");
}

} // namespace

std::vector<StripeTarget>
stripeRaid0(std::int64_t lba, int sectors, int disks, int stripe_sectors)
{
    validateStripeArgs(lba, sectors, disks, stripe_sectors, 1);
    std::vector<StripeTarget> out;
    std::int64_t cur = lba;
    int remaining = sectors;
    while (remaining > 0) {
        const std::int64_t unit = cur / stripe_sectors;
        const int offset = int(cur % stripe_sectors);
        const int len = std::min(remaining, stripe_sectors - offset);
        StripeTarget t;
        t.disk = int(unit % disks);
        t.lba = (unit / disks) * stripe_sectors + offset;
        t.sectors = len;
        out.push_back(t);
        cur += len;
        remaining -= len;
    }
    return out;
}

int
raid5ParityDisk(std::int64_t row, int disks)
{
    HDDTHERM_REQUIRE(disks >= 2, "RAID-5 needs at least two disks");
    HDDTHERM_REQUIRE(row >= 0, "negative row");
    // Left-symmetric rotation: parity starts on the last disk and moves
    // one disk left each row.
    return int((disks - 1) - (row % disks));
}

StripeTarget
raid5ParityTarget(std::int64_t row, int disks, int stripe_sectors)
{
    StripeTarget t;
    t.disk = raid5ParityDisk(row, disks);
    t.lba = row * stripe_sectors;
    t.sectors = stripe_sectors;
    return t;
}

std::vector<StripeTarget>
stripeRaid5Data(std::int64_t lba, int sectors, int disks, int stripe_sectors)
{
    validateStripeArgs(lba, sectors, disks, stripe_sectors, 2);
    const int data_disks = disks - 1;
    std::vector<StripeTarget> out;
    std::int64_t cur = lba;
    int remaining = sectors;
    while (remaining > 0) {
        const std::int64_t unit = cur / stripe_sectors;
        const int offset = int(cur % stripe_sectors);
        const int len = std::min(remaining, stripe_sectors - offset);
        const std::int64_t row = unit / data_disks;
        const int position = int(unit % data_disks);
        const int parity = raid5ParityDisk(row, disks);
        StripeTarget t;
        t.disk = position < parity ? position : position + 1;
        t.lba = row * stripe_sectors + offset;
        t.sectors = len;
        out.push_back(t);
        cur += len;
        remaining -= len;
    }
    return out;
}

std::int64_t
raid5RowOfTarget(const StripeTarget& target, int stripe_sectors)
{
    HDDTHERM_REQUIRE(stripe_sectors >= 1, "stripe unit must be positive");
    return target.lba / stripe_sectors;
}

std::int64_t
arrayLogicalSectors(RaidLevel level, int disks, std::int64_t disk_sectors)
{
    HDDTHERM_REQUIRE(disks >= 1 && disk_sectors >= 0,
                     "invalid array shape");
    switch (level) {
      case RaidLevel::None:
        return disk_sectors; // addressed per device
      case RaidLevel::Raid0:
        return disk_sectors * disks;
      case RaidLevel::Raid1:
        HDDTHERM_REQUIRE(disks >= 2, "RAID-1 needs at least two disks");
        return disk_sectors;
      case RaidLevel::Raid5:
        HDDTHERM_REQUIRE(disks >= 3, "RAID-5 needs at least three disks");
        return disk_sectors * (disks - 1);
    }
    return 0;
}

} // namespace hddtherm::sim
