#include "sim/scheduler.h"

#include <algorithm>
#include <cstdlib>

#include "obs/metrics.h"
#include "util/error.h"

namespace hddtherm::sim {

const char*
schedulerPolicyName(SchedulerPolicy policy)
{
    switch (policy) {
      case SchedulerPolicy::Fcfs:
        return "FCFS";
      case SchedulerPolicy::Sstf:
        return "SSTF";
      case SchedulerPolicy::Elevator:
        return "ELEVATOR";
    }
    return "UNKNOWN";
}

Scheduler::Scheduler(SchedulerPolicy policy) : policy_(policy) {}

void
Scheduler::push(const IoRequest& request, int cylinder)
{
    queue_.push_back({request, cylinder});
    HDDTHERM_OBS_COUNT("sim.scheduler.pushed");
    HDDTHERM_OBS_GAUGE_SET("sim.scheduler.queue_depth", queue_.size());
}

Scheduler::Entry
Scheduler::pop(int head_cylinder)
{
    HDDTHERM_REQUIRE(!queue_.empty(), "pop from empty scheduler");

    auto take = [this](std::deque<Entry>::iterator it) {
        Entry out = *it;
        queue_.erase(it);
        return out;
    };

    switch (policy_) {
      case SchedulerPolicy::Fcfs:
        return take(queue_.begin());

      case SchedulerPolicy::Sstf: {
        auto best = queue_.begin();
        int best_dist = std::abs(best->cylinder - head_cylinder);
        for (auto it = std::next(queue_.begin()); it != queue_.end(); ++it) {
            const int dist = std::abs(it->cylinder - head_cylinder);
            if (dist < best_dist) {
                best = it;
                best_dist = dist;
            }
        }
        return take(best);
      }

      case SchedulerPolicy::Elevator: {
        // LOOK: nearest request in the sweep direction; reverse when the
        // direction is exhausted.
        for (int attempt = 0; attempt < 2; ++attempt) {
            auto best = queue_.end();
            int best_dist = 0;
            for (auto it = queue_.begin(); it != queue_.end(); ++it) {
                const int delta = it->cylinder - head_cylinder;
                if (sweep_up_ ? delta < 0 : delta > 0)
                    continue;
                const int dist = std::abs(delta);
                if (best == queue_.end() || dist < best_dist) {
                    best = it;
                    best_dist = dist;
                }
            }
            if (best != queue_.end())
                return take(best);
            sweep_up_ = !sweep_up_;
        }
        HDDTHERM_ASSERT(false && "elevator found no request");
        return take(queue_.begin());
      }
    }
    HDDTHERM_ASSERT(false && "unknown scheduler policy");
    return take(queue_.begin());
}

} // namespace hddtherm::sim
