#include "sim/scheduler.h"

#include <algorithm>
#include <cstdlib>
#include "snap/state.h"

#include "obs/metrics.h"
#include "util/error.h"

namespace hddtherm::sim {

const char*
schedulerPolicyName(SchedulerPolicy policy)
{
    switch (policy) {
      case SchedulerPolicy::Fcfs:
        return "FCFS";
      case SchedulerPolicy::Sstf:
        return "SSTF";
      case SchedulerPolicy::Elevator:
        return "ELEVATOR";
    }
    return "UNKNOWN";
}

Scheduler::Scheduler(SchedulerPolicy policy) : policy_(policy) {}

void
Scheduler::push(const IoRequest& request, int cylinder)
{
    queue_.push_back({request, cylinder});
    HDDTHERM_OBS_COUNT("sim.scheduler.pushed");
    HDDTHERM_OBS_GAUGE_SET("sim.scheduler.queue_depth", queue_.size());
}

Scheduler::Entry
Scheduler::pop(int head_cylinder)
{
    HDDTHERM_REQUIRE(!queue_.empty(), "pop from empty scheduler");

    auto take = [this](std::deque<Entry>::iterator it) {
        Entry out = *it;
        queue_.erase(it);
        return out;
    };

    switch (policy_) {
      case SchedulerPolicy::Fcfs:
        return take(queue_.begin());

      case SchedulerPolicy::Sstf: {
        auto best = queue_.begin();
        int best_dist = std::abs(best->cylinder - head_cylinder);
        for (auto it = std::next(queue_.begin()); it != queue_.end(); ++it) {
            const int dist = std::abs(it->cylinder - head_cylinder);
            if (dist < best_dist) {
                best = it;
                best_dist = dist;
            }
        }
        return take(best);
      }

      case SchedulerPolicy::Elevator: {
        // LOOK: nearest request in the sweep direction; reverse when the
        // direction is exhausted.
        for (int attempt = 0; attempt < 2; ++attempt) {
            auto best = queue_.end();
            int best_dist = 0;
            for (auto it = queue_.begin(); it != queue_.end(); ++it) {
                const int delta = it->cylinder - head_cylinder;
                if (sweep_up_ ? delta < 0 : delta > 0)
                    continue;
                const int dist = std::abs(delta);
                if (best == queue_.end() || dist < best_dist) {
                    best = it;
                    best_dist = dist;
                }
            }
            if (best != queue_.end())
                return take(best);
            sweep_up_ = !sweep_up_;
        }
        HDDTHERM_ASSERT(false && "elevator found no request");
        return take(queue_.begin());
      }
    }
    HDDTHERM_ASSERT(false && "unknown scheduler policy");
    return take(queue_.begin());
}


void
Scheduler::saveState(snap::StateWriter& w) const
{
    w.str("policy", schedulerPolicyName(policy_));
    w.boolean("sweep_up", sweep_up_);
    snap::BlobWriter blob;
    for (const auto& entry : queue_) {
        std::uint64_t words[5];
        packIoRequest(entry.request, words);
        for (const auto word : words)
            blob.u64(word);
        blob.i64(entry.cylinder);
    }
    w.u64("queued", queue_.size());
    w.bytes("queue_blob", blob.take());
}

void
Scheduler::loadState(snap::StateReader& r)
{
    const std::string policy = r.str("policy");
    HDDTHERM_REQUIRE(policy == schedulerPolicyName(policy_),
                     "checkpoint section '" + r.section() +
                         "': scheduler policy '" + policy +
                         "' does not match this run's configuration");
    sweep_up_ = r.boolean("sweep_up");
    const auto count = r.u64("queued");
    const auto raw = r.bytes("queue_blob");
    snap::BlobReader blob("section '" + r.section() + "' scheduler queue",
                          raw);
    queue_.clear();
    for (std::uint64_t i = 0; i < count; ++i) {
        std::uint64_t words[5];
        for (auto& word : words)
            word = blob.u64();
        Entry entry;
        entry.request = unpackIoRequest(words);
        entry.cylinder = int(blob.i64());
        queue_.push_back(std::move(entry));
    }
    HDDTHERM_REQUIRE(blob.atEnd(), "checkpoint section '" + r.section() +
                                       "' carries trailing queue bytes");
}

} // namespace hddtherm::sim
