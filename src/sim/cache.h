/**
 * @file
 * On-board disk buffer: a segmented extent cache with read-ahead.
 *
 * Real drive buffers hold a handful of contiguous extents (segments), each
 * typically filled by a media read that continues past the requested data
 * to the end of the track.  A read hits only when fully contained in one
 * segment; segments are recycled LRU.  Writes are modeled write-through:
 * they still pay the media visit but leave their extent cached.  The
 * paper's workload study gives each simulated drive a 4 MB cache.
 */
#ifndef HDDTHERM_SIM_CACHE_H
#define HDDTHERM_SIM_CACHE_H

#include <cstdint>
#include <list>
#include <vector>

namespace hddtherm::snap {
class StateWriter;
class StateReader;
} // namespace hddtherm::snap

namespace hddtherm::sim {

/// Cache hit/miss statistics.
struct CacheStats
{
    std::uint64_t readHits = 0;
    std::uint64_t readMisses = 0;

    /// Read hit ratio (0 when no reads were seen).
    double hitRatio() const
    {
        const auto total = readHits + readMisses;
        return total ? double(readHits) / double(total) : 0.0;
    }
};

/// Segmented extent cache.
class DiskCache
{
  public:
    /**
     * @param capacity_bytes total buffer capacity (512-byte sectors).
     * @param segments number of independent extents.
     */
    DiskCache(std::size_t capacity_bytes, int segments);

    /// Sectors each segment can hold.
    std::int64_t segmentSectors() const { return segment_sectors_; }

    /**
     * Read lookup: true (and a hit is recorded) when [lba, lba+sectors) is
     * fully inside one cached segment; the segment becomes most recent.
     */
    bool read(std::int64_t lba, int sectors);

    /**
     * Install an extent after a media access (read fill incl. read-ahead,
     * or a write-through).  The extent is clipped to the segment size and
     * replaces the least recently used segment.
     */
    void install(std::int64_t lba, std::int64_t sectors);

    /// Drop all cached extents.
    void clear();

    /// Statistics so far.
    const CacheStats& stats() const { return stats_; }

    /// Number of segments currently holding data.
    int activeSegments() const { return int(segments_.size()); }

    /// Serialize segment contents in recency order (checkpoint support).
    void saveState(snap::StateWriter& w) const;

    /// Restore contents written by saveState.
    void loadState(snap::StateReader& r);

  private:
    struct Segment
    {
        std::int64_t start;
        std::int64_t length;
    };

    std::int64_t segment_sectors_;
    int max_segments_;
    std::list<Segment> segments_; // front = most recently used
    CacheStats stats_;
};

} // namespace hddtherm::sim

#endif // HDDTHERM_SIM_CACHE_H
