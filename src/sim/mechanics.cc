#include "sim/mechanics.h"

#include <cmath>
#include "snap/state.h"

#include "util/error.h"

namespace hddtherm::sim {

DiskMechanics::DiskMechanics(const DiskAddressMap& map,
                             const hdd::SeekModel& seek, double rpm,
                             double head_switch_sec)
    : map_(map), seek_(seek), rpm_(rpm), head_switch_sec_(head_switch_sec)
{
    HDDTHERM_REQUIRE(rpm_ > 0.0, "rpm must be positive");
    HDDTHERM_REQUIRE(head_switch_sec_ >= 0.0, "negative head-switch time");
}

void
DiskMechanics::setRpm(double rpm, SimTime now)
{
    HDDTHERM_REQUIRE(rpm > 0.0, "rpm must be positive");
    ref_phase_ = phaseAt(now);
    ref_time_ = now;
    rpm_ = rpm;
}

void
DiskMechanics::setHeadCylinder(int cylinder)
{
    HDDTHERM_REQUIRE(cylinder >= 0 && cylinder < map_.layout().cylinders(),
                     "cylinder out of range");
    head_cylinder_ = cylinder;
}

double
DiskMechanics::phaseAt(SimTime t) const
{
    HDDTHERM_REQUIRE(t >= ref_time_, "phase query before last RPM change");
    const double revs = (t - ref_time_) * rpm_ / 60.0;
    double frac = revs - std::floor(revs) + ref_phase_;
    if (frac >= 1.0)
        frac -= 1.0;
    return frac;
}

ServiceBreakdown
DiskMechanics::service(const PhysicalAddress& addr, int sectors,
                       SimTime start)
{
    HDDTHERM_REQUIRE(sectors >= 1, "empty transfer");
    ServiceBreakdown out;

    // 1. Seek.
    last_seek_distance_ = std::abs(addr.cylinder - head_cylinder_);
    out.seekSec = seek_.seekTimeSec(last_seek_distance_);

    // 2. Rotational latency: wait for the target sector's leading edge.
    const int per_track = map_.sectorsPerTrack(addr.cylinder);
    const double rev = revolutionSec();
    const double settle_time = start + out.seekSec;
    const double phase = phaseAt(settle_time);
    const double target = double(addr.sector) / double(per_track);
    double wait = target - phase;
    if (wait < 0.0)
        wait += 1.0;
    out.rotationSec = wait * rev;

    // 3. Transfer, accounting for track/cylinder boundaries.  Sector
    // counts can shrink when the transfer runs into an inner zone; we walk
    // track by track.  Track skew is assumed to hide switch latencies up
    // to head_switch_sec_.
    int remaining = sectors;
    int cylinder = addr.cylinder;
    int surface = addr.surface;
    int sector = addr.sector;
    const int surfaces = map_.layout().surfaces();
    while (remaining > 0) {
        const int on_track =
            std::min(remaining,
                     map_.sectorsPerTrack(cylinder) - sector);
        HDDTHERM_ASSERT(on_track > 0);
        out.transferSec += double(on_track) /
                           double(map_.sectorsPerTrack(cylinder)) * rev;
        remaining -= on_track;
        if (remaining == 0)
            break;
        // Advance to the next track: next surface, else next cylinder.
        sector = 0;
        ++out.trackSwitches;
        out.transferSec += head_switch_sec_;
        if (++surface == surfaces) {
            surface = 0;
            ++cylinder;
            HDDTHERM_REQUIRE(cylinder < map_.layout().cylinders(),
                             "transfer runs off the end of the disk");
        }
    }
    head_cylinder_ = cylinder;
    return out;
}


void
DiskMechanics::saveState(snap::StateWriter& w) const
{
    w.f64("rpm", rpm_);
    w.i64("head_cylinder", head_cylinder_);
    w.f64("ref_time", ref_time_);
    w.f64("ref_phase", ref_phase_);
    w.i64("last_seek_distance", last_seek_distance_);
}

void
DiskMechanics::loadState(snap::StateReader& r)
{
    rpm_ = r.f64("rpm");
    head_cylinder_ = int(r.i64("head_cylinder"));
    ref_time_ = r.f64("ref_time");
    ref_phase_ = r.f64("ref_phase");
    last_seek_distance_ = int(r.i64("last_seek_distance"));
}

} // namespace hddtherm::sim
