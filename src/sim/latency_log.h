/**
 * @file
 * Per-request latency capture.
 *
 * ResponseMetrics keeps streaming aggregates; LatencyLog keeps the raw
 * (arrival, finish) pairs so exact percentiles can be computed and the
 * series exported for external plotting — the data behind a Figure-4 CDF
 * rather than its binned summary.
 */
#ifndef HDDTHERM_SIM_LATENCY_LOG_H
#define HDDTHERM_SIM_LATENCY_LOG_H

#include <string>
#include <vector>

#include "sim/request.h"

namespace hddtherm::sim {

/// Records every logical completion.
class LatencyLog
{
  public:
    /// Record one completion.
    void record(const IoCompletion& completion)
    {
        completions_.push_back(completion);
    }

    /// Number of records.
    std::size_t size() const { return completions_.size(); }

    /// True when nothing has been recorded.
    bool empty() const { return completions_.empty(); }

    /// All records, in completion order.
    const std::vector<IoCompletion>& completions() const
    {
        return completions_;
    }

    /**
     * Exact p-quantile of the response times in milliseconds (nearest-rank
     * on the sorted latencies).  @p p in [0, 1]; empty logs return 0.
     */
    double quantileMs(double p) const;

    /// Mean response time in milliseconds (0 when empty).
    double meanMs() const;

    /**
     * Write "id,arrival_s,finish_s,latency_ms" CSV to @p path.
     * @return false on I/O failure.
     */
    bool writeCsv(const std::string& path) const;

    /// Drop all records.
    void clear() { completions_.clear(); }

  private:
    std::vector<IoCompletion> completions_;
};

} // namespace hddtherm::sim

#endif // HDDTHERM_SIM_LATENCY_LOG_H
