#include "sim/storage_system.h"

#include <algorithm>
#include <map>
#include <set>

#include "obs/metrics.h"
#include "snap/state.h"
#include "util/error.h"

namespace hddtherm::sim {

StorageSystem::StorageSystem(const SystemConfig& config)
    : config_(config), domain_(storageDomain(events_))
{
    HDDTHERM_REQUIRE(config_.disks >= 1, "need at least one disk");
    if (config_.raid == RaidLevel::Raid5)
        HDDTHERM_REQUIRE(config_.disks >= 3,
                         "RAID-5 needs at least three disks");
    if (config_.raid == RaidLevel::Raid1)
        HDDTHERM_REQUIRE(config_.disks >= 2,
                         "RAID-1 needs at least two disks");
    HDDTHERM_REQUIRE(config_.stripeSectors >= 1,
                     "stripe unit must be positive");
    disks_.reserve(std::size_t(config_.disks));
    for (int i = 0; i < config_.disks; ++i) {
        disks_.push_back(
            std::make_unique<SimDisk>(events_, config_.disk, i));
        disks_.back()->setCompletionHandler(
            [this](const IoRequest& sub, SimTime finish) {
                onSubComplete(sub, finish);
            });
    }
}

std::int64_t
StorageSystem::logicalSectors() const
{
    return arrayLogicalSectors(config_.raid, config_.disks,
                               disks_.front()->totalSectors());
}

void
StorageSystem::setCompletionCallback(CompletionCallback cb)
{
    callback_ = std::move(cb);
}

void
StorageSystem::submit(const IoRequest& request)
{
    HDDTHERM_REQUIRE(request.sectors >= 1, "empty request");
    HDDTHERM_REQUIRE(request.lba >= 0 &&
                         request.lba + request.sectors <= logicalSectors(),
                     "request beyond logical capacity");
    if (config_.raid == RaidLevel::None) {
        HDDTHERM_REQUIRE(request.device >= 0 &&
                             request.device < config_.disks,
                         "device id out of range");
    }
    HDDTHERM_OBS_COUNT("sim.system.submitted");
    snap::EventTag tag;
    tag.kind = snap::kEvtArrival;
    packIoRequest(request, tag.w.data());
    events_.schedule(request.arrival, domain_, tag,
                     [this, request] { dispatch(request); });
}

ResponseMetrics
StorageSystem::run(const std::vector<IoRequest>& workload)
{
    resetMetrics();
    for (const auto& req : workload)
        submit(req);
    runAll();
    HDDTHERM_ASSERT(inflight_.empty());
    return metrics_;
}

void
StorageSystem::gateAll(bool gated)
{
    for (auto& d : disks_)
        d->gate(gated);
}

void
StorageSystem::changeRpmAll(double rpm)
{
    for (auto& d : disks_)
        d->changeRpm(rpm);
}

void
StorageSystem::setPreferredMirror(int index)
{
    HDDTHERM_REQUIRE(index >= -1 && index < config_.disks,
                     "mirror index out of range");
    HDDTHERM_REQUIRE(index != failed_ || index < 0,
                     "cannot prefer a failed mirror");
    preferred_mirror_ = index;
}

void
StorageSystem::failDisk(int index)
{
    HDDTHERM_REQUIRE(index >= 0 && index < config_.disks,
                     "disk index out of range");
    HDDTHERM_REQUIRE(config_.raid == RaidLevel::Raid1 ||
                         config_.raid == RaidLevel::Raid5,
                     "failure injection needs a redundant RAID level");
    HDDTHERM_REQUIRE(failed_ < 0, "only a single failure is tolerated");
    HDDTHERM_REQUIRE(disks_[std::size_t(index)]->idle(),
                     "inject failures while the member is idle");
    failed_ = index;
    if (preferred_mirror_ == failed_)
        preferred_mirror_ = -1;
}

int
StorageSystem::pickMirror() const
{
    if (preferred_mirror_ >= 0 && preferred_mirror_ != failed_)
        return preferred_mirror_;
    // Least-loaded surviving mirror; round-robin breaks ties.
    int best = -1;
    std::size_t best_depth = 0;
    for (int i = 0; i < config_.disks; ++i) {
        const int candidate = (mirror_rr_ + i) % config_.disks;
        if (candidate == failed_)
            continue;
        const std::size_t depth =
            disks_[std::size_t(candidate)]->queueDepth() +
            (disks_[std::size_t(candidate)]->idle() ? 0 : 1);
        if (best < 0 || depth < best_depth) {
            best = candidate;
            best_depth = depth;
        }
    }
    mirror_rr_ = (mirror_rr_ + 1) % config_.disks;
    HDDTHERM_ASSERT(best >= 0);
    return best;
}

void
StorageSystem::issueSub(std::uint64_t parent_id, int disk_index,
                        const IoRequest& sub)
{
    IoRequest out = sub;
    out.id = next_sub_id_++;
    out.device = disk_index;
    out.arrival = events_.now();
    sub_to_parent_.emplace(out.id, parent_id);
    disks_[std::size_t(disk_index)]->submit(out);
}

void
StorageSystem::dispatch(const IoRequest& request)
{
    HDDTHERM_REQUIRE(!inflight_.count(request.id),
                     "duplicate in-flight logical request id");
    Outstanding out;
    out.logical = request;

    // Array-controller write-back cache: report the write now; the media
    // traffic still flows below.
    if (config_.immediateWriteReport && request.isWrite()) {
        out.reported = true;
        IoCompletion done;
        done.id = request.id;
        done.arrival = request.arrival;
        done.finish = events_.now() +
                      config_.writeReportLatencyMs * 1e-3;
        metrics_.record(done);
        if (callback_)
            callback_(done);
    }

    switch (config_.raid) {
      case RaidLevel::None: {
        out.remaining = 1;
        inflight_.emplace(request.id, std::move(out));
        IoRequest sub = request;
        issueSub(request.id, request.device, sub);
        return;
      }

      case RaidLevel::Raid1: {
        if (request.isWrite()) {
            // Writes propagate to every surviving mirror.
            out.remaining = config_.disks - (failed_ >= 0 ? 1 : 0);
            inflight_.emplace(request.id, std::move(out));
            for (int d = 0; d < config_.disks; ++d) {
                if (d != failed_)
                    issueSub(request.id, d, request);
            }
        } else {
            out.remaining = 1;
            inflight_.emplace(request.id, std::move(out));
            issueSub(request.id, pickMirror(), request);
        }
        return;
      }

      case RaidLevel::Raid0: {
        const auto targets = stripeRaid0(request.lba, request.sectors,
                                         config_.disks,
                                         config_.stripeSectors);
        out.remaining = int(targets.size());
        inflight_.emplace(request.id, std::move(out));
        for (const auto& t : targets) {
            IoRequest sub = request;
            sub.lba = t.lba;
            sub.sectors = t.sectors;
            issueSub(request.id, t.disk, sub);
        }
        return;
      }

      case RaidLevel::Raid5: {
        const auto data = stripeRaid5Data(request.lba, request.sectors,
                                          config_.disks,
                                          config_.stripeSectors);

        std::vector<std::pair<int, IoRequest>> phase1;
        std::vector<std::pair<int, IoRequest>> phase2;
        auto add = [&](int disk_index, std::int64_t lba, int sectors,
                       IoType type,
                       std::vector<std::pair<int, IoRequest>>* bucket) {
            IoRequest sub = request;
            sub.lba = lba;
            sub.sectors = sectors;
            sub.type = type;
            bucket->emplace_back(disk_index, sub);
        };

        if (!request.isWrite()) {
            for (const auto& t : data) {
                if (t.disk != failed_) {
                    add(t.disk, t.lba, t.sectors, IoType::Read, &phase1);
                    continue;
                }
                // Degraded read: reconstruct from the same sector range
                // of every surviving unit in the row (data + parity).
                for (int d = 0; d < config_.disks; ++d) {
                    if (d != failed_)
                        add(d, t.lba, t.sectors, IoType::Read, &phase1);
                }
            }
            out.remaining = int(phase1.size());
            inflight_.emplace(request.id, std::move(out));
            for (const auto& [disk_index, sub] : phase1)
                issueSub(request.id, disk_index, sub);
            return;
        }

        // Writes, organized per touched row: classic read-modify-write
        // when the row is healthy; parity-less writes when the row's
        // parity member is the failed one; reconstruct-write (read the
        // surviving complement, rewrite parity) when a data member is.
        std::map<std::int64_t, std::vector<StripeTarget>> rows;
        for (const auto& t : data)
            rows[raid5RowOfTarget(t, config_.stripeSectors)].push_back(t);

        for (const auto& [row, targets] : rows) {
            const int parity_disk = raid5ParityDisk(row, config_.disks);
            const auto parity =
                raid5ParityTarget(row, config_.disks,
                                  config_.stripeSectors);
            const bool data_member_lost =
                failed_ >= 0 && failed_ != parity_disk &&
                std::any_of(targets.begin(), targets.end(),
                            [this](const StripeTarget& t) {
                                return t.disk == failed_;
                            });

            if (parity_disk == failed_) {
                // No parity to maintain: plain data writes.
                for (const auto& t : targets)
                    add(t.disk, t.lba, t.sectors, IoType::Write, &phase2);
            } else if (data_member_lost) {
                // Reconstruct-write: read every surviving data unit of
                // the row not (fully) supplied by this write, then write
                // the surviving targets and the recomputed parity unit.
                std::set<int> written_disks;
                for (const auto& t : targets)
                    written_disks.insert(t.disk);
                for (int d = 0; d < config_.disks; ++d) {
                    if (d == failed_ || d == parity_disk)
                        continue;
                    const bool fully_written = std::any_of(
                        targets.begin(), targets.end(),
                        [d, this](const StripeTarget& t) {
                            return t.disk == d &&
                                   t.sectors == config_.stripeSectors;
                        });
                    if (!fully_written) {
                        add(d, row * config_.stripeSectors,
                            config_.stripeSectors, IoType::Read, &phase1);
                    }
                }
                for (const auto& t : targets) {
                    if (t.disk != failed_)
                        add(t.disk, t.lba, t.sectors, IoType::Write,
                            &phase2);
                }
                add(parity.disk, parity.lba, parity.sectors,
                    IoType::Write, &phase2);
            } else {
                for (const auto& t : targets) {
                    add(t.disk, t.lba, t.sectors, IoType::Read, &phase1);
                    add(t.disk, t.lba, t.sectors, IoType::Write, &phase2);
                }
                add(parity.disk, parity.lba, parity.sectors, IoType::Read,
                    &phase1);
                add(parity.disk, parity.lba, parity.sectors,
                    IoType::Write, &phase2);
            }
        }

        out.phase2.reserve(phase2.size());
        for (auto& [disk_index, sub] : phase2) {
            sub.device = disk_index;
            out.phase2.push_back(sub);
        }
        if (phase1.empty()) {
            // Parity-less rows only: the writes are the single phase.
            out.remaining = int(out.phase2.size());
            std::vector<IoRequest> writes;
            writes.swap(out.phase2);
            inflight_.emplace(request.id, std::move(out));
            for (const auto& w : writes)
                issueSub(request.id, w.device, w);
            return;
        }
        out.remaining = int(phase1.size());
        inflight_.emplace(request.id, std::move(out));
        for (const auto& [disk_index, sub] : phase1)
            issueSub(request.id, disk_index, sub);
        return;
      }
    }
    HDDTHERM_ASSERT(false && "unknown RAID level");
}

void
StorageSystem::onSubComplete(const IoRequest& sub, SimTime finish)
{
    const auto sub_it = sub_to_parent_.find(sub.id);
    HDDTHERM_ASSERT(sub_it != sub_to_parent_.end());
    const std::uint64_t parent_id = sub_it->second;
    sub_to_parent_.erase(sub_it);

    const auto it = inflight_.find(parent_id);
    HDDTHERM_ASSERT(it != inflight_.end());
    Outstanding& out = it->second;
    HDDTHERM_ASSERT(out.remaining > 0);
    if (--out.remaining > 0)
        return;

    if (!out.phase2.empty()) {
        std::vector<IoRequest> writes;
        writes.swap(out.phase2);
        out.remaining = int(writes.size());
        for (const auto& w : writes)
            issueSub(parent_id, w.device, w);
        return;
    }
    completeLogical(out, finish);
    inflight_.erase(it);
}

void
StorageSystem::completeLogical(Outstanding& out, SimTime finish)
{
    if (out.reported)
        return; // already counted at write-report time
    IoCompletion done;
    done.id = out.logical.id;
    done.arrival = out.logical.arrival;
    done.finish = finish;
    metrics_.record(done);
    HDDTHERM_OBS_COUNT("sim.system.completed");
    if (callback_)
        callback_(done);
}

namespace {

void
blobWriteRequest(snap::BlobWriter& blob, const IoRequest& req)
{
    std::uint64_t words[5];
    packIoRequest(req, words);
    blob.words(words, 5);
}

IoRequest
blobReadRequest(snap::BlobReader& blob)
{
    std::uint64_t words[5];
    for (auto& word : words)
        word = blob.u64();
    return unpackIoRequest(words);
}

} // namespace

void
StorageSystem::saveState(snap::StateWriter& w) const
{
    {
        snap::ScopedPrefix scope(w, "metrics");
        metrics_.saveState(w);
    }
    w.u64("next_sub_id", next_sub_id_);
    w.i64("preferred_mirror", preferred_mirror_);
    w.i64("mirror_rr", mirror_rr_);
    w.i64("failed", failed_);

    // Hash maps are serialized in sorted-key order so identical states
    // always produce identical checkpoint bytes.
    std::vector<std::uint64_t> parent_ids;
    parent_ids.reserve(inflight_.size());
    for (const auto& [id, out] : inflight_)
        parent_ids.push_back(id);
    std::sort(parent_ids.begin(), parent_ids.end());
    snap::BlobWriter inflight_blob;
    inflight_blob.reserve(inflight_.size() * 57);
    for (const auto id : parent_ids) {
        const Outstanding& out = inflight_.at(id);
        blobWriteRequest(inflight_blob, out.logical);
        inflight_blob.i64(out.remaining);
        inflight_blob.u8(out.reported ? 1 : 0);
        inflight_blob.u64(out.phase2.size());
        for (const auto& sub : out.phase2)
            blobWriteRequest(inflight_blob, sub);
    }
    w.u64("inflight", inflight_.size());
    w.bytes("inflight_blob", inflight_blob.take());

    std::vector<std::pair<std::uint64_t, std::uint64_t>> subs(
        sub_to_parent_.begin(), sub_to_parent_.end());
    std::sort(subs.begin(), subs.end());
    snap::BlobWriter sub_blob;
    for (const auto& [sub_id, parent_id] : subs) {
        sub_blob.u64(sub_id);
        sub_blob.u64(parent_id);
    }
    w.u64("subs", subs.size());
    w.bytes("sub_blob", sub_blob.take());

    for (std::size_t i = 0; i < disks_.size(); ++i) {
        snap::ScopedPrefix scope(w, "disk" + std::to_string(i));
        disks_[i]->saveState(w);
    }
}

void
StorageSystem::loadState(snap::StateReader& r)
{
    {
        snap::ScopedPrefix scope(r, "metrics");
        metrics_.loadState(r);
    }
    next_sub_id_ = r.u64("next_sub_id");
    preferred_mirror_ = int(r.i64("preferred_mirror"));
    mirror_rr_ = int(r.i64("mirror_rr"));
    failed_ = int(r.i64("failed"));
    HDDTHERM_REQUIRE(failed_ >= -1 && failed_ < config_.disks,
                     "checkpoint section '" + r.section() +
                         "': failed-disk index out of range");

    const auto inflight_count = r.u64("inflight");
    const auto inflight_raw = r.bytes("inflight_blob");
    snap::BlobReader inflight_blob(
        "section '" + r.section() + "' in-flight table", inflight_raw);
    inflight_.clear();
    for (std::uint64_t i = 0; i < inflight_count; ++i) {
        Outstanding out;
        out.logical = blobReadRequest(inflight_blob);
        out.remaining = int(inflight_blob.i64());
        out.reported = inflight_blob.u8() != 0;
        const auto phase2 = inflight_blob.u64();
        out.phase2.reserve(phase2);
        for (std::uint64_t p = 0; p < phase2; ++p)
            out.phase2.push_back(blobReadRequest(inflight_blob));
        const auto id = out.logical.id;
        inflight_.emplace(id, std::move(out));
    }
    HDDTHERM_REQUIRE(inflight_blob.atEnd(),
                     "checkpoint section '" + r.section() +
                         "' carries trailing in-flight bytes");

    const auto sub_count = r.u64("subs");
    const auto sub_raw = r.bytes("sub_blob");
    snap::BlobReader sub_blob(
        "section '" + r.section() + "' sub-request table", sub_raw);
    sub_to_parent_.clear();
    for (std::uint64_t i = 0; i < sub_count; ++i) {
        const auto sub_id = sub_blob.u64();
        const auto parent_id = sub_blob.u64();
        sub_to_parent_.emplace(sub_id, parent_id);
    }
    HDDTHERM_REQUIRE(sub_blob.atEnd(),
                     "checkpoint section '" + r.section() +
                         "' carries trailing sub-request bytes");

    for (std::size_t i = 0; i < disks_.size(); ++i) {
        snap::ScopedPrefix scope(r, "disk" + std::to_string(i));
        disks_[i]->loadState(r);
    }
}

engine::SimKernel::Callback
StorageSystem::restoreEvent(const snap::EventTag& tag)
{
    if (tag.kind == snap::kEvtArrival) {
        const IoRequest request = unpackIoRequest(tag.w.data());
        return [this, request] { dispatch(request); };
    }
    if (tag.kind == snap::kEvtDiskFinish ||
        tag.kind == snap::kEvtDiskRetry) {
        if (tag.aux < disks_.size())
            return disks_[tag.aux]->restoreEvent(tag);
    }
    return nullptr;
}

} // namespace hddtherm::sim
