#include "sim/hybrid.h"

#include <algorithm>

#include "util/error.h"

namespace hddtherm::sim {

HybridSystem::HybridSystem(const HybridConfig& config)
    : config_(config), domain_(storageDomain(events_))
{
    HDDTHERM_REQUIRE(config_.extentSectors >= 8,
                     "extent granularity too small");
    primary_ = std::make_unique<SimDisk>(events_, config_.primary, 0);
    cache_ = std::make_unique<SimDisk>(events_, config_.cacheDisk, 1);
    max_resident_ = cache_->totalSectors() / config_.extentSectors;
    HDDTHERM_REQUIRE(max_resident_ >= 1,
                     "cache disk smaller than one extent");
    free_slots_.reserve(std::size_t(max_resident_));
    for (std::int64_t s = max_resident_; s-- > 0;)
        free_slots_.push_back(s);

    const auto handler = [this](const IoRequest& sub, SimTime finish) {
        onDiskComplete(sub, finish);
    };
    primary_->setCompletionHandler(handler);
    cache_->setCompletionHandler(handler);
}

bool
HybridSystem::resident(std::int64_t lba, int sectors) const
{
    const std::int64_t first = extentOf(lba);
    const std::int64_t last = extentOf(lba + sectors - 1);
    for (std::int64_t e = first; e <= last; ++e) {
        if (!resident_.count(e))
            return false;
    }
    return true;
}

std::vector<std::int64_t>
HybridSystem::ensureResident(std::int64_t lba, int sectors)
{
    std::vector<std::int64_t> inserted;
    const std::int64_t first = extentOf(lba);
    const std::int64_t last = extentOf(lba + sectors - 1);
    for (std::int64_t e = first; e <= last; ++e) {
        auto it = resident_.find(e);
        if (it != resident_.end()) {
            lru_.splice(lru_.begin(), lru_, it->second.lru);
            continue;
        }
        if (free_slots_.empty()) {
            // Evict the least recently used extent.
            const std::int64_t victim = lru_.back();
            lru_.pop_back();
            auto vit = resident_.find(victim);
            HDDTHERM_ASSERT(vit != resident_.end());
            free_slots_.push_back(vit->second.slot);
            resident_.erase(vit);
            ++stats_.evictions;
        }
        const std::int64_t slot = free_slots_.back();
        free_slots_.pop_back();
        lru_.push_front(e);
        resident_.emplace(e, Residency{slot, lru_.begin()});
        inserted.push_back(e);
    }
    return inserted;
}

std::int64_t
HybridSystem::cacheLba(std::int64_t lba) const
{
    const auto it = resident_.find(extentOf(lba));
    HDDTHERM_ASSERT(it != resident_.end());
    return it->second.slot * config_.extentSectors +
           lba % config_.extentSectors;
}

void
HybridSystem::submit(const IoRequest& request)
{
    HDDTHERM_REQUIRE(request.sectors >= 1, "empty request");
    HDDTHERM_REQUIRE(request.lba >= 0 &&
                         request.lba + request.sectors <= logicalSectors(),
                     "request beyond logical capacity");
    // Arrivals earlier than the current simulated time (e.g. re-running
    // a workload on a warm hierarchy) dispatch immediately.
    events_.schedule(std::max(events_.now(), request.arrival), domain_,
                     [this, request] { dispatch(request); });
}

ResponseMetrics
HybridSystem::run(const std::vector<IoRequest>& workload)
{
    metrics_ = ResponseMetrics();
    for (const auto& req : workload)
        submit(req);
    events_.runAll();
    HDDTHERM_ASSERT(reported_.empty());
    return metrics_;
}

void
HybridSystem::dispatch(const IoRequest& request)
{
    if (!request.isWrite() && resident(request.lba, request.sectors)) {
        // Cache hit: serve from the cache disk, splitting at extent
        // boundaries (slots need not be contiguous).
        ++stats_.readHits;
        std::int64_t cur = request.lba;
        int remaining = request.sectors;
        while (remaining > 0) {
            const std::int64_t in_extent =
                config_.extentSectors - cur % config_.extentSectors;
            const int len =
                int(std::min<std::int64_t>(remaining, in_extent));
            IoRequest sub = request;
            sub.id = next_sub_id_++;
            sub.device = 1;
            sub.lba = cacheLba(cur);
            sub.sectors = len;
            reported_.emplace(sub.id,
                              Pending{request.id, request.arrival});
            // Touch LRU for the extents served.
            ensureResident(cur, len);
            cache_->submit(sub);
            cur += len;
            remaining -= len;
        }
        return;
    }

    // Data path via the primary.
    IoRequest sub = request;
    sub.id = next_sub_id_++;
    sub.device = 0;
    reported_.emplace(sub.id, Pending{request.id, request.arrival});
    primary_->submit(sub);

    if (!request.isWrite()) {
        ++stats_.readMisses;
        if (config_.promoteOnMiss) {
            // Background promotion: install residency and write the new
            // extents to the cache disk (fire and forget).
            for (const std::int64_t e :
                 ensureResident(request.lba, request.sectors)) {
                ++stats_.promotions;
                IoRequest promo;
                promo.id = next_sub_id_++;
                promo.arrival = events_.now();
                promo.device = 1;
                promo.lba = resident_.at(e).slot * config_.extentSectors;
                promo.sectors = int(config_.extentSectors);
                promo.type = IoType::Write;
                cache_->submit(promo);
            }
        }
    } else {
        // Keep any resident cached extents fresh (write-through to both
        // members); non-resident extents are untouched, so residency can
        // never go stale.
        std::int64_t cur = request.lba;
        int remaining = request.sectors;
        while (remaining > 0) {
            const std::int64_t in_extent =
                config_.extentSectors - cur % config_.extentSectors;
            const int len =
                int(std::min<std::int64_t>(remaining, in_extent));
            if (resident_.count(extentOf(cur))) {
                IoRequest update = request;
                update.id = next_sub_id_++;
                update.arrival = events_.now();
                update.device = 1;
                update.lba = cacheLba(cur);
                update.sectors = len;
                update.type = IoType::Write;
                cache_->submit(update); // not reported
            }
            cur += len;
            remaining -= len;
        }
    }
}

void
HybridSystem::onDiskComplete(const IoRequest& sub, SimTime finish)
{
    const auto it = reported_.find(sub.id);
    if (it == reported_.end())
        return; // maintenance traffic (promotion / cache update)

    // Multi-sub cache reads report when their last piece finishes; pieces
    // of the same logical request share the logical id.
    const Pending pending = it->second;
    reported_.erase(it);
    for (const auto& [other_id, other] : reported_) {
        (void)other_id;
        if (other.id == pending.id)
            return; // siblings still in flight
    }
    IoCompletion done;
    done.id = pending.id;
    done.arrival = pending.arrival;
    done.finish = finish;
    metrics_.record(done);
}

} // namespace hddtherm::sim
