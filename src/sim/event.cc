#include "sim/event.h"

#include <utility>

#include "util/error.h"

namespace hddtherm::sim {

void
EventQueue::schedule(SimTime when, Callback cb)
{
    HDDTHERM_REQUIRE(when >= now_, "cannot schedule into the past");
    heap_.push({when, next_seq_++, std::move(cb)});
}

void
EventQueue::scheduleAfter(SimTime delay, Callback cb)
{
    HDDTHERM_REQUIRE(delay >= 0.0, "negative delay");
    schedule(now_ + delay, std::move(cb));
}

bool
EventQueue::runNext()
{
    if (heap_.empty())
        return false;
    // Copy out before pop so the callback may schedule new events.
    Event ev = heap_.top();
    heap_.pop();
    now_ = ev.when;
    ev.cb();
    return true;
}

void
EventQueue::runUntil(SimTime limit)
{
    while (!heap_.empty() && heap_.top().when <= limit)
        runNext();
    if (now_ < limit)
        now_ = limit;
}

void
EventQueue::runAll()
{
    while (runNext()) {
    }
}

} // namespace hddtherm::sim
