/**
 * @file
 * LBA-to-physical address translation over a ZBR layout.
 *
 * Sectors are laid out cylinder-major: within a cylinder all surfaces'
 * tracks fill in order before the head assembly moves inward.  The mapping
 * is derived from the same ZoneModel the capacity model uses, so simulated
 * mechanics and modeled capacity can never disagree.
 */
#ifndef HDDTHERM_SIM_ADDRESS_MAP_H
#define HDDTHERM_SIM_ADDRESS_MAP_H

#include <cstdint>
#include <vector>

#include "hdd/zoning.h"

namespace hddtherm::sim {

/// Physical location of a sector.
struct PhysicalAddress
{
    int cylinder = 0; ///< 0 = outermost.
    int surface = 0;  ///< 0 .. surfaces-1.
    int sector = 0;   ///< Sector index within the track.
    int zone = 0;     ///< ZBR zone of the cylinder.
};

/// Bidirectional LBA <-> physical translation.
class DiskAddressMap
{
  public:
    /// Build the map for a laid-out drive (the layout is copied).
    explicit DiskAddressMap(hdd::ZoneModel layout);

    /// Total user-addressable sectors.
    std::int64_t totalSectors() const { return total_sectors_; }

    /// Translate an LBA (must be < totalSectors()).
    PhysicalAddress toPhysical(std::int64_t lba) const;

    /// Translate a physical address back to its LBA.
    std::int64_t toLba(const PhysicalAddress& addr) const;

    /// Sectors on one track of @p cylinder.
    int sectorsPerTrack(int cylinder) const;

    /// Sectors in the whole cylinder (all surfaces).
    std::int64_t sectorsPerCylinder(int cylinder) const;

    /// The underlying layout.
    const hdd::ZoneModel& layout() const { return layout_; }

  private:
    hdd::ZoneModel layout_;
    std::int64_t total_sectors_ = 0;
    /// First LBA of each zone (size zones()+1; last entry == total).
    std::vector<std::int64_t> zone_start_lba_;
};

} // namespace hddtherm::sim

#endif // HDDTHERM_SIM_ADDRESS_MAP_H
