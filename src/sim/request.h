/**
 * @file
 * I/O request types shared by the storage simulator.
 */
#ifndef HDDTHERM_SIM_REQUEST_H
#define HDDTHERM_SIM_REQUEST_H

#include <array>
#include <bit>
#include <cstdint>

#include "sim/event.h"

namespace hddtherm::sim {

/// Request direction.
enum class IoType
{
    Read,
    Write,
};

/// One block-level I/O request (sectors are 512 bytes).
struct IoRequest
{
    std::uint64_t id = 0;     ///< Unique request id.
    SimTime arrival = 0.0;    ///< Issue time, seconds.
    int device = 0;           ///< Target logical device.
    std::int64_t lba = 0;     ///< Starting sector.
    int sectors = 1;          ///< Length in sectors.
    IoType type = IoType::Read;

    /// True for writes.
    bool isWrite() const { return type == IoType::Write; }
};

/// @name Checkpoint packing.
/// An IoRequest packs losslessly into five 64-bit words — the payload of
/// snapshot event tags (snap::EventTag::w) and of blob-encoded queues.
/// @{
inline void
packIoRequest(const IoRequest& r, std::uint64_t* w)
{
    w[0] = r.id;
    w[1] = std::bit_cast<std::uint64_t>(r.arrival);
    w[2] = std::uint64_t(r.lba);
    w[3] = std::uint64_t(std::uint32_t(r.device)) << 32 |
           std::uint32_t(r.sectors);
    w[4] = r.isWrite() ? 1 : 0;
}

inline IoRequest
unpackIoRequest(const std::uint64_t* w)
{
    IoRequest r;
    r.id = w[0];
    r.arrival = std::bit_cast<double>(w[1]);
    r.lba = std::int64_t(w[2]);
    r.device = int(std::int32_t(w[3] >> 32));
    r.sectors = int(std::int32_t(std::uint32_t(w[3])));
    r.type = w[4] ? IoType::Write : IoType::Read;
    return r;
}
/// @}

/// Completion record for one logical request.
struct IoCompletion
{
    std::uint64_t id = 0;
    SimTime arrival = 0.0;
    SimTime finish = 0.0;

    /// End-to-end response time in milliseconds.
    double responseTimeMs() const { return (finish - arrival) * 1e3; }
};

} // namespace hddtherm::sim

#endif // HDDTHERM_SIM_REQUEST_H
