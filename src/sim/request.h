/**
 * @file
 * I/O request types shared by the storage simulator.
 */
#ifndef HDDTHERM_SIM_REQUEST_H
#define HDDTHERM_SIM_REQUEST_H

#include <cstdint>

#include "sim/event.h"

namespace hddtherm::sim {

/// Request direction.
enum class IoType
{
    Read,
    Write,
};

/// One block-level I/O request (sectors are 512 bytes).
struct IoRequest
{
    std::uint64_t id = 0;     ///< Unique request id.
    SimTime arrival = 0.0;    ///< Issue time, seconds.
    int device = 0;           ///< Target logical device.
    std::int64_t lba = 0;     ///< Starting sector.
    int sectors = 1;          ///< Length in sectors.
    IoType type = IoType::Read;

    /// True for writes.
    bool isWrite() const { return type == IoType::Write; }
};

/// Completion record for one logical request.
struct IoCompletion
{
    std::uint64_t id = 0;
    SimTime arrival = 0.0;
    SimTime finish = 0.0;

    /// End-to-end response time in milliseconds.
    double responseTimeMs() const { return (finish - arrival) * 1e3; }
};

} // namespace hddtherm::sim

#endif // HDDTHERM_SIM_REQUEST_H
