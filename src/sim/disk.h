/**
 * @file
 * Event-driven model of one disk drive (the DiskSim-like substrate of
 * paper §5.1).
 *
 * A SimDisk owns the ZBR layout/address map, the mechanical model, the
 * on-board cache and a request scheduler.  Requests are serviced one at a
 * time: controller overhead, then either a cache hit (bus transfer only)
 * or seek + rotational latency + zone-dependent media transfer.  Two DTM
 * hooks drive the §5.2/§5.3 studies: dispatch gating (request throttling)
 * and multi-speed RPM changes with a transition penalty.
 */
#ifndef HDDTHERM_SIM_DISK_H
#define HDDTHERM_SIM_DISK_H

#include <functional>
#include <optional>
#include <vector>

#include "hdd/geometry.h"
#include "hdd/recording.h"
#include "hdd/seek.h"
#include "sim/address_map.h"
#include "sim/cache.h"
#include "sim/event.h"
#include "sim/mechanics.h"
#include "sim/request.h"
#include "sim/scheduler.h"

namespace hddtherm::sim {

/// Static configuration of one simulated drive.
struct DiskConfig
{
    hdd::PlatterGeometry geometry;      ///< Platter stack.
    hdd::RecordingTech tech{400e3, 40e3}; ///< Recording point.
    int zones = hdd::kDefaultZones;     ///< ZBR zones (paper uses 30).
    double rpm = 10000.0;               ///< Initial spindle speed.

    /// Seek curve; defaults to the diameter-derived profile.
    std::optional<hdd::SeekProfile> seekProfile;

    double headSwitchMs = 0.3;          ///< Head-switch time.
    double controllerOverheadMs = 0.2;  ///< Per-request firmware overhead.
    double busMBps = 160.0;             ///< Interface rate for cache hits.
    std::size_t cacheBytes = 4u << 20;  ///< On-board buffer (paper: 4 MB).
    int cacheSegments = 16;             ///< Buffer segments.
    bool readAheadToTrackEnd = true;    ///< Fill segment to end of track.
    SchedulerPolicy scheduler = SchedulerPolicy::Fcfs;

    /// RPM-transition penalty in seconds per 1000 RPM of change (the drive
    /// cannot service requests while the spindle re-locks).
    double rpmChangeSecPerKrpm = 0.1;

    /// Record the disk's idle-gap lengths (time between going idle and
    /// the next dispatch) for power-management studies.
    bool recordIdleGaps = false;
};

/// Cumulative activity counters (inputs to the thermal co-simulation).
struct DiskActivity
{
    double busySec = 0.0;        ///< Time spent servicing requests.
    double seekSec = 0.0;        ///< Time the VCM was actively seeking.
    double rotationSec = 0.0;    ///< Rotational-latency time.
    double transferSec = 0.0;    ///< Media-transfer time.
    std::uint64_t completions = 0;   ///< Requests finished.
    std::uint64_t mediaAccesses = 0; ///< Requests that touched the media.
    std::uint64_t seeks = 0;         ///< Arm movements (distance > 0).
};

/// One simulated disk drive attached to an event queue.
class SimDisk
{
  public:
    /// Invoked when a request completes, with the finish time.
    using CompletionHandler =
        std::function<void(const IoRequest&, SimTime)>;

    /**
     * @param events shared event queue (must outlive the disk).
     * @param config drive configuration.
     * @param id diagnostic identifier.
     */
    SimDisk(EventQueue& events, const DiskConfig& config, int id = 0);

    SimDisk(const SimDisk&) = delete;
    SimDisk& operator=(const SimDisk&) = delete;

    /// Set the completion callback (e.g. the RAID controller's).
    void setCompletionHandler(CompletionHandler handler);

    /// Submit a request; it is queued and serviced in policy order.
    void submit(const IoRequest& request);

    /// @name DTM hooks.
    /// @{
    /// Pause (true) or resume (false) dispatching queued requests.
    void gate(bool gated);

    /// True while dispatch is gated.
    bool gated() const { return gated_; }

    /**
     * Begin a spindle-speed transition; the drive is unavailable for
     * |new - old| * rpmChangeSecPerKrpm / 1000 seconds.
     */
    void changeRpm(double new_rpm);

    /// Current (target) spindle speed.
    double rpm() const { return mechanics_.rpm(); }
    /// @}

    /// Diagnostic id.
    int id() const { return id_; }

    /// User-addressable sectors.
    std::int64_t totalSectors() const { return map_.totalSectors(); }

    /// Address map (shared with workload generators).
    const DiskAddressMap& addressMap() const { return map_; }

    /// Cache statistics.
    const CacheStats& cacheStats() const { return cache_.stats(); }

    /// Activity counters.
    const DiskActivity& activity() const { return activity_; }

    /// Idle-gap lengths in seconds (empty unless config.recordIdleGaps).
    const std::vector<double>& idleGaps() const { return idle_gaps_; }

    /**
     * Time-averaged number of requests in the system (queued plus in
     * service) from t=0 to @p now — Little's-law "L" for this disk.
     */
    double avgQueueDepth(SimTime now) const;

    /// Fraction of [0, now] the disk spent servicing requests.
    double utilization(SimTime now) const
    {
        return now > 0.0 ? activity_.busySec / now : 0.0;
    }

    /// Pending queue depth (excluding the in-flight request).
    std::size_t queueDepth() const { return sched_.size(); }

    /// True when no request is in flight and the queue is empty.
    bool idle() const { return !busy_ && sched_.empty(); }

    /// Configuration in force.
    const DiskConfig& config() const { return config_; }

    /// @name Checkpoint/restore (driven by StorageSystem).
    /// @{

    /// Serialize dispatch state, mechanics, cache, queue, and counters.
    void saveState(snap::StateWriter& w) const;

    /// Restore state written by saveState.
    void loadState(snap::StateReader& r);

    /// Rebuild the callback of one of this disk's tagged pending events
    /// (kEvtDiskFinish / kEvtDiskRetry).
    engine::SimKernel::Callback restoreEvent(const snap::EventTag& tag);

    /// @}

  private:
    void tryDispatch();
    void finish(const IoRequest& request, SimTime finish_time);
    void noteDepthChange(SimTime now, int delta);

    EventQueue& events_;
    engine::DomainId domain_; ///< The kernel's storage clock domain.
    DiskConfig config_;
    int id_;
    DiskAddressMap map_;
    hdd::SeekModel seek_model_;
    DiskMechanics mechanics_;
    DiskCache cache_;
    Scheduler sched_;
    CompletionHandler handler_;
    DiskActivity activity_;
    bool busy_ = false;
    bool gated_ = false;
    SimTime idle_since_ = 0.0;   ///< When the disk last went idle.
    std::vector<double> idle_gaps_;
    int depth_ = 0;              ///< Requests in the system right now.
    double depth_integral_ = 0.0;
    SimTime depth_changed_at_ = 0.0;
    SimTime available_at_ = 0.0; ///< End of any RPM transition.
    double pending_rpm_ = 0.0;   ///< Nonzero while a transition waits.
    bool retry_scheduled_ = false;
};

/// Build the address-map layout implied by a DiskConfig.
hdd::ZoneModel makeLayout(const DiskConfig& config);

} // namespace hddtherm::sim

#endif // HDDTHERM_SIM_DISK_H
