/**
 * @file
 * Mechanical positioning model: seeks, rotation, media transfer.
 *
 * Tracks the head-assembly cylinder and the platter's angular phase.  The
 * angular phase is continuous across RPM changes, so rotational latency is
 * computed from the true sector position at the moment the seek settles —
 * the effect that makes higher RPM shrink both latency and transfer time.
 */
#ifndef HDDTHERM_SIM_MECHANICS_H
#define HDDTHERM_SIM_MECHANICS_H

#include "hdd/seek.h"
#include "sim/address_map.h"
#include "sim/event.h"

namespace hddtherm::snap {
class StateWriter;
class StateReader;
} // namespace hddtherm::snap

namespace hddtherm::sim {

/// Decomposition of one mechanical service.
struct ServiceBreakdown
{
    double seekSec = 0.0;      ///< Arm move + settle.
    double rotationSec = 0.0;  ///< Rotational latency.
    double transferSec = 0.0;  ///< Media transfer (incl. head switches).
    int trackSwitches = 0;     ///< Track/surface boundaries crossed.

    /// Total mechanical time.
    double totalSec() const
    {
        return seekSec + rotationSec + transferSec;
    }
};

/// Head/spindle mechanics for one drive.
class DiskMechanics
{
  public:
    /**
     * @param map address map (borrowed; must outlive the mechanics).
     * @param seek seek curve for this drive.
     * @param rpm initial spindle speed.
     * @param head_switch_sec time to switch active head within a cylinder.
     */
    DiskMechanics(const DiskAddressMap& map, const hdd::SeekModel& seek,
                  double rpm, double head_switch_sec = 0.3e-3);

    /// Current spindle speed.
    double rpm() const { return rpm_; }

    /**
     * Change the spindle speed at time @p now, preserving angular phase.
     */
    void setRpm(double rpm, SimTime now);

    /// Current head cylinder.
    int headCylinder() const { return head_cylinder_; }

    /// Force the head position (e.g. initial placement).
    void setHeadCylinder(int cylinder);

    /// Angular phase in [0, 1) revolutions at time @p t (>= last change).
    double phaseAt(SimTime t) const;

    /// Time for one revolution at the current speed.
    double revolutionSec() const { return 60.0 / rpm_; }

    /**
     * Compute the mechanical service of a request starting at @p addr for
     * @p sectors sectors with the operation beginning at @p start.  Moves
     * the head to the final cylinder.
     */
    ServiceBreakdown service(const PhysicalAddress& addr, int sectors,
                             SimTime start);

    /// Seek distance (cylinders) the last service() call performed.
    int lastSeekDistance() const { return last_seek_distance_; }

    /// Serialize head/spindle state (checkpoint support).
    void saveState(snap::StateWriter& w) const;

    /// Restore state written by saveState.
    void loadState(snap::StateReader& r);

  private:
    const DiskAddressMap& map_;
    const hdd::SeekModel& seek_;
    double rpm_;
    double head_switch_sec_;
    int head_cylinder_ = 0;
    // Angular reference: phase at ref_time_ was ref_phase_.
    SimTime ref_time_ = 0.0;
    double ref_phase_ = 0.0;
    int last_seek_distance_ = 0;
};

} // namespace hddtherm::sim

#endif // HDDTHERM_SIM_MECHANICS_H
