/**
 * @file
 * Cache-disk hierarchy (paper §5.4).
 *
 * The paper sketches a two-disk organization for raising data rates inside
 * thermal bounds: a large platter runs slow (its envelope caps the RPM)
 * while a small platter — thermally allowed to spin much faster — serves
 * as a disk cache in front of it, in the spirit of DCD cache-disks
 * [Hu & Yang 1996].
 *
 * HybridSystem implements it: reads whose extents are resident on the
 * cache disk are served there; misses are served by the primary and the
 * touched extents are promoted in the background; writes go to the
 * primary (write-through), updating any resident cached copy.  Residency
 * is tracked at a fixed extent granularity with LRU replacement.
 */
#ifndef HDDTHERM_SIM_HYBRID_H
#define HDDTHERM_SIM_HYBRID_H

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "sim/disk.h"
#include "sim/metrics.h"

namespace hddtherm::sim {

/// Configuration of the two-disk hierarchy.
struct HybridConfig
{
    DiskConfig primary;   ///< Large, slow member (defines the capacity).
    DiskConfig cacheDisk; ///< Small, fast member.
    /// Residency granularity in sectors (default 1 MB).
    std::int64_t extentSectors = 2048;
    /// Promote read-missed extents to the cache disk in the background.
    bool promoteOnMiss = true;
};

/// Statistics of the hierarchy's cache behaviour.
struct HybridStats
{
    std::uint64_t readHits = 0;    ///< Reads served by the cache disk.
    std::uint64_t readMisses = 0;  ///< Reads served by the primary.
    std::uint64_t promotions = 0;  ///< Extents copied to the cache disk.
    std::uint64_t evictions = 0;   ///< Extents displaced from residency.

    double hitRatio() const
    {
        const auto total = readHits + readMisses;
        return total ? double(readHits) / double(total) : 0.0;
    }
};

/// A large slow disk fronted by a small fast cache disk.
class HybridSystem
{
  public:
    explicit HybridSystem(const HybridConfig& config);

    HybridSystem(const HybridSystem&) = delete;
    HybridSystem& operator=(const HybridSystem&) = delete;

    /// User capacity (the primary's).
    std::int64_t logicalSectors() const { return primary_->totalSectors(); }

    /// Extents the cache disk can hold.
    std::int64_t cacheExtents() const { return max_resident_; }

    /// Schedule a logical request at its arrival time.
    void submit(const IoRequest& request);

    /// Submit a workload, run to completion, return response metrics.
    ResponseMetrics run(const std::vector<IoRequest>& workload);

    /// Shared event queue.
    EventQueue& events() { return events_; }

    /// Member access (0 = primary, 1 = cache disk).
    SimDisk& primary() { return *primary_; }
    SimDisk& cacheDisk() { return *cache_; }

    /// Hierarchy statistics.
    const HybridStats& stats() const { return stats_; }

    /// Response metrics so far.
    const ResponseMetrics& metrics() const { return metrics_; }

  private:
    /// Extent index of an LBA.
    std::int64_t extentOf(std::int64_t lba) const
    {
        return lba / config_.extentSectors;
    }

    /// True when every extent of [lba, lba+sectors) is resident.
    bool resident(std::int64_t lba, int sectors) const;

    /// Touch (MRU) or insert residency for the extents of a range;
    /// returns the newly inserted extents.
    std::vector<std::int64_t> ensureResident(std::int64_t lba,
                                             int sectors);

    /// Cache-disk LBA corresponding to a primary LBA (must be resident).
    std::int64_t cacheLba(std::int64_t lba) const;

    void dispatch(const IoRequest& request);
    void onDiskComplete(const IoRequest& sub, SimTime finish);

    HybridConfig config_;
    EventQueue events_;
    engine::DomainId domain_; ///< Storage clock domain of events_.
    std::unique_ptr<SimDisk> primary_;
    std::unique_ptr<SimDisk> cache_;
    ResponseMetrics metrics_;
    HybridStats stats_;

    /// extent -> (cache slot, LRU iterator).
    struct Residency
    {
        std::int64_t slot;
        std::list<std::int64_t>::iterator lru;
    };
    std::unordered_map<std::int64_t, Residency> resident_;
    std::list<std::int64_t> lru_; ///< Front = most recently used extent.
    std::vector<std::int64_t> free_slots_;
    std::int64_t max_resident_ = 0;

    /// In-flight *reported* subs: sub id -> logical (id, arrival).
    struct Pending
    {
        std::uint64_t id;
        SimTime arrival;
    };
    std::unordered_map<std::uint64_t, Pending> reported_;
    std::uint64_t next_sub_id_ = 1;
};

} // namespace hddtherm::sim

#endif // HDDTHERM_SIM_HYBRID_H
