#include "sim/latency_log.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "util/error.h"

namespace hddtherm::sim {

double
LatencyLog::quantileMs(double p) const
{
    HDDTHERM_REQUIRE(p >= 0.0 && p <= 1.0, "quantile: p out of range");
    if (completions_.empty())
        return 0.0;
    std::vector<double> latencies;
    latencies.reserve(completions_.size());
    for (const auto& c : completions_)
        latencies.push_back(c.responseTimeMs());
    std::sort(latencies.begin(), latencies.end());
    const auto rank = std::min(
        latencies.size() - 1,
        std::size_t(p * double(latencies.size())));
    return latencies[rank];
}

double
LatencyLog::meanMs() const
{
    if (completions_.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto& c : completions_)
        sum += c.responseTimeMs();
    return sum / double(completions_.size());
}

bool
LatencyLog::writeCsv(const std::string& path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << "id,arrival_s,finish_s,latency_ms\n";
    char buf[128];
    for (const auto& c : completions_) {
        std::snprintf(buf, sizeof(buf), "%llu,%.9f,%.9f,%.6f\n",
                      static_cast<unsigned long long>(c.id), c.arrival,
                      c.finish, c.responseTimeMs());
        out << buf;
    }
    return bool(out);
}

} // namespace hddtherm::sim
