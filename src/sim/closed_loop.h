/**
 * @file
 * Closed-loop workload driving.
 *
 * Trace replay is open-loop: arrivals ignore the system's state, so an
 * overloaded (or DTM-gated) array grows unbounded queues.  Real clients
 * are closed-loop: each waits for its previous request before thinking
 * and issuing the next, so throttling translates into throughput loss
 * rather than queue explosion.  ClosedLoopDriver models N such clients
 * over a StorageSystem — the natural harness for studying DTM
 * back-pressure.
 */
#ifndef HDDTHERM_SIM_CLOSED_LOOP_H
#define HDDTHERM_SIM_CLOSED_LOOP_H

#include <functional>

#include "sim/storage_system.h"

namespace hddtherm::sim {

/// N think-time clients issuing dependent requests.
class ClosedLoopDriver
{
  public:
    /**
     * Produces client @p client's next request body (lba/sectors/type/
     * device); id and arrival are filled in by the driver.
     */
    using RequestFactory =
        std::function<IoRequest(int client, std::uint64_t seq)>;

    /**
     * @param system array under test (the driver owns its completion
     *        callback for the duration of run()).
     * @param clients concurrent client count (>= 1).
     * @param think_time_sec delay between a completion and the client's
     *        next issue.
     * @param factory request generator.
     */
    ClosedLoopDriver(StorageSystem& system, int clients,
                     double think_time_sec, RequestFactory factory);

    /**
     * Run until @p total_requests complete; returns the response metrics
     * of exactly those requests.
     */
    ResponseMetrics run(std::size_t total_requests);

    /// Completed-request count of the last run.
    std::size_t completed() const { return completed_; }

  private:
    void issue(int client);

    StorageSystem& system_;
    engine::DomainId domain_; ///< Kernel clock domain for think times.
    int clients_;
    double think_time_;
    RequestFactory factory_;
    std::uint64_t next_seq_ = 0;
    std::size_t issued_ = 0;
    std::size_t completed_ = 0;
    std::size_t target_ = 0;
};

} // namespace hddtherm::sim

#endif // HDDTHERM_SIM_CLOSED_LOOP_H
