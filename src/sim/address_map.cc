#include "sim/address_map.h"

#include <algorithm>

#include "util/error.h"

namespace hddtherm::sim {

DiskAddressMap::DiskAddressMap(hdd::ZoneModel layout)
    : layout_(std::move(layout))
{
    zone_start_lba_.reserve(std::size_t(layout_.zones()) + 1);
    std::int64_t lba = 0;
    for (int z = 0; z < layout_.zones(); ++z) {
        zone_start_lba_.push_back(lba);
        const auto& zone = layout_.zone(z);
        lba += std::int64_t(zone.cylinders) * layout_.surfaces() *
               zone.userSectorsPerTrack;
    }
    zone_start_lba_.push_back(lba);
    total_sectors_ = lba;
    HDDTHERM_ASSERT(total_sectors_ == layout_.totalUserSectors());
}

PhysicalAddress
DiskAddressMap::toPhysical(std::int64_t lba) const
{
    HDDTHERM_REQUIRE(lba >= 0 && lba < total_sectors_, "LBA out of range");
    // Locate the zone: last zone whose start is <= lba.
    const auto it = std::upper_bound(zone_start_lba_.begin(),
                                     zone_start_lba_.end(), lba);
    const int zone = int(it - zone_start_lba_.begin()) - 1;
    const auto& z = layout_.zone(zone);

    const std::int64_t in_zone = lba - zone_start_lba_[std::size_t(zone)];
    const std::int64_t per_track = z.userSectorsPerTrack;
    const std::int64_t per_cyl = per_track * layout_.surfaces();

    PhysicalAddress out;
    out.zone = zone;
    out.cylinder = z.firstCylinder + int(in_zone / per_cyl);
    const std::int64_t in_cyl = in_zone % per_cyl;
    out.surface = int(in_cyl / per_track);
    out.sector = int(in_cyl % per_track);
    return out;
}

std::int64_t
DiskAddressMap::toLba(const PhysicalAddress& addr) const
{
    HDDTHERM_REQUIRE(addr.cylinder >= 0 &&
                         addr.cylinder < layout_.cylinders(),
                     "cylinder out of range");
    const int zone = layout_.zoneOfCylinder(addr.cylinder);
    const auto& z = layout_.zone(zone);
    HDDTHERM_REQUIRE(addr.surface >= 0 && addr.surface < layout_.surfaces(),
                     "surface out of range");
    HDDTHERM_REQUIRE(addr.sector >= 0 &&
                         addr.sector < z.userSectorsPerTrack,
                     "sector out of range");
    const std::int64_t per_track = z.userSectorsPerTrack;
    const std::int64_t per_cyl = per_track * layout_.surfaces();
    return zone_start_lba_[std::size_t(zone)] +
           std::int64_t(addr.cylinder - z.firstCylinder) * per_cyl +
           std::int64_t(addr.surface) * per_track + addr.sector;
}

int
DiskAddressMap::sectorsPerTrack(int cylinder) const
{
    return layout_.userSectorsPerTrack(cylinder);
}

std::int64_t
DiskAddressMap::sectorsPerCylinder(int cylinder) const
{
    return layout_.userSectorsPerCylinder(cylinder);
}

} // namespace hddtherm::sim
