#include "sim/disk.h"

#include <cmath>

#include "util/error.h"
#include "util/units.h"

namespace hddtherm::sim {

hdd::ZoneModel
makeLayout(const DiskConfig& config)
{
    return hdd::ZoneModel(config.geometry, config.tech, config.zones);
}

SimDisk::SimDisk(EventQueue& events, const DiskConfig& config, int id)
    : events_(events),
      domain_(storageDomain(events)),
      config_(config),
      id_(id),
      map_(makeLayout(config)),
      seek_model_(config.seekProfile
                      ? *config.seekProfile
                      : hdd::SeekProfile::forDiameter(
                            config.geometry.diameterInches),
                  map_.layout().cylinders()),
      mechanics_(map_, seek_model_, config.rpm,
                 util::msToSec(config.headSwitchMs)),
      cache_(config.cacheBytes, config.cacheSegments),
      sched_(config.scheduler)
{
    HDDTHERM_REQUIRE(config_.rpm > 0.0, "rpm must be positive");
    HDDTHERM_REQUIRE(config_.controllerOverheadMs >= 0.0,
                     "negative controller overhead");
    HDDTHERM_REQUIRE(config_.busMBps > 0.0, "bus rate must be positive");
    HDDTHERM_REQUIRE(config_.rpmChangeSecPerKrpm >= 0.0,
                     "negative rpm transition rate");
}

void
SimDisk::setCompletionHandler(CompletionHandler handler)
{
    handler_ = std::move(handler);
}

void
SimDisk::submit(const IoRequest& request)
{
    HDDTHERM_REQUIRE(request.sectors >= 1, "empty request");
    HDDTHERM_REQUIRE(request.lba >= 0 &&
                         request.lba + request.sectors <=
                             map_.totalSectors(),
                     "request beyond end of disk");
    noteDepthChange(events_.now(), +1);
    sched_.push(request, map_.toPhysical(request.lba).cylinder);
    tryDispatch();
}

void
SimDisk::noteDepthChange(SimTime now, int delta)
{
    depth_integral_ += double(depth_) * (now - depth_changed_at_);
    depth_changed_at_ = now;
    depth_ += delta;
    HDDTHERM_ASSERT(depth_ >= 0);
}

double
SimDisk::avgQueueDepth(SimTime now) const
{
    if (now <= 0.0)
        return 0.0;
    const double integral =
        depth_integral_ + double(depth_) * (now - depth_changed_at_);
    return integral / now;
}

void
SimDisk::gate(bool gated)
{
    gated_ = gated;
    if (!gated_)
        tryDispatch();
}

void
SimDisk::changeRpm(double new_rpm)
{
    HDDTHERM_REQUIRE(new_rpm > 0.0, "rpm must be positive");
    if (busy_) {
        pending_rpm_ = new_rpm; // applied when the in-flight request ends
        return;
    }
    const SimTime now = events_.now();
    const double duration = std::fabs(new_rpm - mechanics_.rpm()) *
                            config_.rpmChangeSecPerKrpm / 1000.0;
    mechanics_.setRpm(new_rpm, now);
    available_at_ = std::max(available_at_, now + duration);
    tryDispatch();
}

void
SimDisk::tryDispatch()
{
    if (busy_ || gated_ || sched_.empty())
        return;

    const SimTime now = events_.now();
    if (now < available_at_) {
        // Spindle transition in progress: retry when it completes.
        if (!retry_scheduled_) {
            retry_scheduled_ = true;
            events_.schedule(available_at_, domain_, [this] {
                retry_scheduled_ = false;
                tryDispatch();
            });
        }
        return;
    }

    const Scheduler::Entry entry = sched_.pop(mechanics_.headCylinder());
    const IoRequest& req = entry.request;
    if (config_.recordIdleGaps && now > idle_since_)
        idle_gaps_.push_back(now - idle_since_);
    busy_ = true;

    const double overhead = util::msToSec(config_.controllerOverheadMs);
    double service = overhead;

    const bool cache_hit =
        !req.isWrite() && cache_.read(req.lba, req.sectors);
    if (cache_hit) {
        service += double(req.sectors) * util::kSectorBytes /
                   (config_.busMBps * 1e6);
    } else {
        const PhysicalAddress phys = map_.toPhysical(req.lba);
        const ServiceBreakdown bd =
            mechanics_.service(phys, req.sectors, now + overhead);
        service += bd.totalSec();
        activity_.seekSec += bd.seekSec;
        activity_.rotationSec += bd.rotationSec;
        activity_.transferSec += bd.transferSec;
        ++activity_.mediaAccesses;
        if (mechanics_.lastSeekDistance() > 0)
            ++activity_.seeks;

        // Install the fetched extent, optionally reading ahead to the end
        // of the track (write-through extents are cached as-is).
        std::int64_t extent = req.sectors;
        if (!req.isWrite() && config_.readAheadToTrackEnd) {
            const std::int64_t to_track_end =
                map_.sectorsPerTrack(phys.cylinder) - phys.sector;
            extent = std::max<std::int64_t>(extent, to_track_end);
        }
        cache_.install(req.lba, extent);
    }

    activity_.busySec += service;
    const SimTime finish_time = now + service;
    events_.schedule(finish_time, domain_,
                     [this, req, finish_time] { finish(req, finish_time); });
}

void
SimDisk::finish(const IoRequest& request, SimTime finish_time)
{
    busy_ = false;
    idle_since_ = finish_time;
    noteDepthChange(finish_time, -1);
    ++activity_.completions;
    if (pending_rpm_ > 0.0) {
        const double target = pending_rpm_;
        pending_rpm_ = 0.0;
        changeRpm(target);
    }
    if (handler_)
        handler_(request, finish_time);
    tryDispatch();
}

} // namespace hddtherm::sim
