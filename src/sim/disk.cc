#include "sim/disk.h"

#include <bit>
#include <cmath>

#include "snap/state.h"
#include "util/error.h"
#include "util/units.h"

namespace hddtherm::sim {

hdd::ZoneModel
makeLayout(const DiskConfig& config)
{
    return hdd::ZoneModel(config.geometry, config.tech, config.zones);
}

SimDisk::SimDisk(EventQueue& events, const DiskConfig& config, int id)
    : events_(events),
      domain_(storageDomain(events)),
      config_(config),
      id_(id),
      map_(makeLayout(config)),
      seek_model_(config.seekProfile
                      ? *config.seekProfile
                      : hdd::SeekProfile::forDiameter(
                            config.geometry.diameterInches),
                  map_.layout().cylinders()),
      mechanics_(map_, seek_model_, config.rpm,
                 util::msToSec(config.headSwitchMs)),
      cache_(config.cacheBytes, config.cacheSegments),
      sched_(config.scheduler)
{
    HDDTHERM_REQUIRE(config_.rpm > 0.0, "rpm must be positive");
    HDDTHERM_REQUIRE(config_.controllerOverheadMs >= 0.0,
                     "negative controller overhead");
    HDDTHERM_REQUIRE(config_.busMBps > 0.0, "bus rate must be positive");
    HDDTHERM_REQUIRE(config_.rpmChangeSecPerKrpm >= 0.0,
                     "negative rpm transition rate");
}

void
SimDisk::setCompletionHandler(CompletionHandler handler)
{
    handler_ = std::move(handler);
}

void
SimDisk::submit(const IoRequest& request)
{
    HDDTHERM_REQUIRE(request.sectors >= 1, "empty request");
    HDDTHERM_REQUIRE(request.lba >= 0 &&
                         request.lba + request.sectors <=
                             map_.totalSectors(),
                     "request beyond end of disk");
    noteDepthChange(events_.now(), +1);
    sched_.push(request, map_.toPhysical(request.lba).cylinder);
    tryDispatch();
}

void
SimDisk::noteDepthChange(SimTime now, int delta)
{
    depth_integral_ += double(depth_) * (now - depth_changed_at_);
    depth_changed_at_ = now;
    depth_ += delta;
    HDDTHERM_ASSERT(depth_ >= 0);
}

double
SimDisk::avgQueueDepth(SimTime now) const
{
    if (now <= 0.0)
        return 0.0;
    const double integral =
        depth_integral_ + double(depth_) * (now - depth_changed_at_);
    return integral / now;
}

void
SimDisk::gate(bool gated)
{
    gated_ = gated;
    if (!gated_)
        tryDispatch();
}

void
SimDisk::changeRpm(double new_rpm)
{
    HDDTHERM_REQUIRE(new_rpm > 0.0, "rpm must be positive");
    if (busy_) {
        pending_rpm_ = new_rpm; // applied when the in-flight request ends
        return;
    }
    const SimTime now = events_.now();
    const double duration = std::fabs(new_rpm - mechanics_.rpm()) *
                            config_.rpmChangeSecPerKrpm / 1000.0;
    mechanics_.setRpm(new_rpm, now);
    available_at_ = std::max(available_at_, now + duration);
    tryDispatch();
}

void
SimDisk::tryDispatch()
{
    if (busy_ || gated_ || sched_.empty())
        return;

    const SimTime now = events_.now();
    if (now < available_at_) {
        // Spindle transition in progress: retry when it completes.
        if (!retry_scheduled_) {
            retry_scheduled_ = true;
            snap::EventTag tag;
            tag.kind = snap::kEvtDiskRetry;
            tag.aux = std::uint32_t(id_);
            events_.schedule(available_at_, domain_, tag, [this] {
                retry_scheduled_ = false;
                tryDispatch();
            });
        }
        return;
    }

    const Scheduler::Entry entry = sched_.pop(mechanics_.headCylinder());
    const IoRequest& req = entry.request;
    if (config_.recordIdleGaps && now > idle_since_)
        idle_gaps_.push_back(now - idle_since_);
    busy_ = true;

    const double overhead = util::msToSec(config_.controllerOverheadMs);
    double service = overhead;

    const bool cache_hit =
        !req.isWrite() && cache_.read(req.lba, req.sectors);
    if (cache_hit) {
        service += double(req.sectors) * util::kSectorBytes /
                   (config_.busMBps * 1e6);
    } else {
        const PhysicalAddress phys = map_.toPhysical(req.lba);
        const ServiceBreakdown bd =
            mechanics_.service(phys, req.sectors, now + overhead);
        service += bd.totalSec();
        activity_.seekSec += bd.seekSec;
        activity_.rotationSec += bd.rotationSec;
        activity_.transferSec += bd.transferSec;
        ++activity_.mediaAccesses;
        if (mechanics_.lastSeekDistance() > 0)
            ++activity_.seeks;

        // Install the fetched extent, optionally reading ahead to the end
        // of the track (write-through extents are cached as-is).
        std::int64_t extent = req.sectors;
        if (!req.isWrite() && config_.readAheadToTrackEnd) {
            const std::int64_t to_track_end =
                map_.sectorsPerTrack(phys.cylinder) - phys.sector;
            extent = std::max<std::int64_t>(extent, to_track_end);
        }
        cache_.install(req.lba, extent);
    }

    activity_.busySec += service;
    const SimTime finish_time = now + service;
    snap::EventTag tag;
    tag.kind = snap::kEvtDiskFinish;
    tag.aux = std::uint32_t(id_);
    packIoRequest(req, tag.w.data());
    tag.w[5] = std::bit_cast<std::uint64_t>(finish_time);
    events_.schedule(finish_time, domain_, tag,
                     [this, req, finish_time] { finish(req, finish_time); });
}

void
SimDisk::finish(const IoRequest& request, SimTime finish_time)
{
    busy_ = false;
    idle_since_ = finish_time;
    noteDepthChange(finish_time, -1);
    ++activity_.completions;
    if (pending_rpm_ > 0.0) {
        const double target = pending_rpm_;
        pending_rpm_ = 0.0;
        changeRpm(target);
    }
    if (handler_)
        handler_(request, finish_time);
    tryDispatch();
}

void
SimDisk::saveState(snap::StateWriter& w) const
{
    w.boolean("busy", busy_);
    w.boolean("gated", gated_);
    w.f64("idle_since", idle_since_);
    w.i64("depth", depth_);
    w.f64("depth_integral", depth_integral_);
    w.f64("depth_changed_at", depth_changed_at_);
    w.f64("available_at", available_at_);
    w.f64("pending_rpm", pending_rpm_);
    w.boolean("retry_scheduled", retry_scheduled_);
    w.f64vec("idle_gaps", idle_gaps_);

    w.f64("act.busy_sec", activity_.busySec);
    w.f64("act.seek_sec", activity_.seekSec);
    w.f64("act.rotation_sec", activity_.rotationSec);
    w.f64("act.transfer_sec", activity_.transferSec);
    w.u64("act.completions", activity_.completions);
    w.u64("act.media_accesses", activity_.mediaAccesses);
    w.u64("act.seeks", activity_.seeks);

    {
        snap::ScopedPrefix scope(w, "mech");
        mechanics_.saveState(w);
    }
    {
        snap::ScopedPrefix scope(w, "cache");
        cache_.saveState(w);
    }
    {
        snap::ScopedPrefix scope(w, "sched");
        sched_.saveState(w);
    }
}

void
SimDisk::loadState(snap::StateReader& r)
{
    busy_ = r.boolean("busy");
    gated_ = r.boolean("gated");
    idle_since_ = r.f64("idle_since");
    depth_ = int(r.i64("depth"));
    depth_integral_ = r.f64("depth_integral");
    depth_changed_at_ = r.f64("depth_changed_at");
    available_at_ = r.f64("available_at");
    pending_rpm_ = r.f64("pending_rpm");
    retry_scheduled_ = r.boolean("retry_scheduled");
    idle_gaps_ = r.f64vec("idle_gaps");

    activity_.busySec = r.f64("act.busy_sec");
    activity_.seekSec = r.f64("act.seek_sec");
    activity_.rotationSec = r.f64("act.rotation_sec");
    activity_.transferSec = r.f64("act.transfer_sec");
    activity_.completions = r.u64("act.completions");
    activity_.mediaAccesses = r.u64("act.media_accesses");
    activity_.seeks = r.u64("act.seeks");

    {
        snap::ScopedPrefix scope(r, "mech");
        mechanics_.loadState(r);
    }
    {
        snap::ScopedPrefix scope(r, "cache");
        cache_.loadState(r);
    }
    {
        snap::ScopedPrefix scope(r, "sched");
        sched_.loadState(r);
    }
}

engine::SimKernel::Callback
SimDisk::restoreEvent(const snap::EventTag& tag)
{
    if (tag.kind == snap::kEvtDiskRetry) {
        return [this] {
            retry_scheduled_ = false;
            tryDispatch();
        };
    }
    if (tag.kind == snap::kEvtDiskFinish) {
        const IoRequest req = unpackIoRequest(tag.w.data());
        const auto finish_time = std::bit_cast<SimTime>(tag.w[5]);
        return [this, req, finish_time] { finish(req, finish_time); };
    }
    return nullptr;
}

} // namespace hddtherm::sim
