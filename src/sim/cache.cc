#include "sim/cache.h"

#include <algorithm>
#include "snap/state.h"

#include "obs/metrics.h"
#include "util/error.h"
#include "util/units.h"

namespace hddtherm::sim {

DiskCache::DiskCache(std::size_t capacity_bytes, int segments)
    : max_segments_(segments)
{
    HDDTHERM_REQUIRE(segments >= 1, "need at least one cache segment");
    const auto total_sectors =
        std::int64_t(capacity_bytes / std::size_t(util::kSectorBytes));
    segment_sectors_ = total_sectors / segments;
    HDDTHERM_REQUIRE(segment_sectors_ >= 1,
                     "cache too small for the segment count");
}

bool
DiskCache::read(std::int64_t lba, int sectors)
{
    HDDTHERM_REQUIRE(sectors >= 1, "empty read");
    for (auto it = segments_.begin(); it != segments_.end(); ++it) {
        if (lba >= it->start && lba + sectors <= it->start + it->length) {
            segments_.splice(segments_.begin(), segments_, it);
            ++stats_.readHits;
            HDDTHERM_OBS_COUNT("sim.cache.read_hit");
            return true;
        }
    }
    ++stats_.readMisses;
    HDDTHERM_OBS_COUNT("sim.cache.read_miss");
    return false;
}

void
DiskCache::install(std::int64_t lba, std::int64_t sectors)
{
    HDDTHERM_REQUIRE(sectors >= 1, "empty install");
    const std::int64_t length = std::min(sectors, segment_sectors_);

    // Reuse a segment this extent overlaps (the common sequential-stream
    // case) instead of fragmenting the extent across segments.
    for (auto it = segments_.begin(); it != segments_.end(); ++it) {
        const bool overlaps = lba < it->start + it->length &&
                              it->start < lba + length;
        if (overlaps) {
            it->start = lba;
            it->length = length;
            segments_.splice(segments_.begin(), segments_, it);
            return;
        }
    }

    if (int(segments_.size()) == max_segments_)
        segments_.pop_back();
    segments_.push_front({lba, length});
}

void
DiskCache::clear()
{
    segments_.clear();
}


void
DiskCache::saveState(snap::StateWriter& w) const
{
    // Front-to-back is MRU-to-LRU order; replaying install order on load
    // reconstructs the recency list exactly.
    snap::BlobWriter blob;
    for (const auto& seg : segments_) {
        blob.i64(seg.start);
        blob.i64(seg.length);
    }
    w.u64("segments", segments_.size());
    w.bytes("segment_blob", blob.take());
    w.u64("read_hits", stats_.readHits);
    w.u64("read_misses", stats_.readMisses);
}

void
DiskCache::loadState(snap::StateReader& r)
{
    const auto count = r.u64("segments");
    HDDTHERM_REQUIRE(count <= std::uint64_t(max_segments_),
                     "checkpoint section '" + r.section() +
                         "': cached segment count exceeds this cache's "
                         "configuration");
    const auto raw = r.bytes("segment_blob");
    snap::BlobReader blob("section '" + r.section() + "' cache segments",
                          raw);
    segments_.clear();
    for (std::uint64_t i = 0; i < count; ++i) {
        Segment seg;
        seg.start = blob.i64();
        seg.length = blob.i64();
        segments_.push_back(seg);
    }
    HDDTHERM_REQUIRE(blob.atEnd(), "checkpoint section '" + r.section() +
                                       "' carries trailing cache bytes");
    stats_.readHits = r.u64("read_hits");
    stats_.readMisses = r.u64("read_misses");
}

} // namespace hddtherm::sim
