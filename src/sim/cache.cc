#include "sim/cache.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/error.h"
#include "util/units.h"

namespace hddtherm::sim {

DiskCache::DiskCache(std::size_t capacity_bytes, int segments)
    : max_segments_(segments)
{
    HDDTHERM_REQUIRE(segments >= 1, "need at least one cache segment");
    const auto total_sectors =
        std::int64_t(capacity_bytes / std::size_t(util::kSectorBytes));
    segment_sectors_ = total_sectors / segments;
    HDDTHERM_REQUIRE(segment_sectors_ >= 1,
                     "cache too small for the segment count");
}

bool
DiskCache::read(std::int64_t lba, int sectors)
{
    HDDTHERM_REQUIRE(sectors >= 1, "empty read");
    for (auto it = segments_.begin(); it != segments_.end(); ++it) {
        if (lba >= it->start && lba + sectors <= it->start + it->length) {
            segments_.splice(segments_.begin(), segments_, it);
            ++stats_.readHits;
            HDDTHERM_OBS_COUNT("sim.cache.read_hit");
            return true;
        }
    }
    ++stats_.readMisses;
    HDDTHERM_OBS_COUNT("sim.cache.read_miss");
    return false;
}

void
DiskCache::install(std::int64_t lba, std::int64_t sectors)
{
    HDDTHERM_REQUIRE(sectors >= 1, "empty install");
    const std::int64_t length = std::min(sectors, segment_sectors_);

    // Reuse a segment this extent overlaps (the common sequential-stream
    // case) instead of fragmenting the extent across segments.
    for (auto it = segments_.begin(); it != segments_.end(); ++it) {
        const bool overlaps = lba < it->start + it->length &&
                              it->start < lba + length;
        if (overlaps) {
            it->start = lba;
            it->length = length;
            segments_.splice(segments_.begin(), segments_, it);
            return;
        }
    }

    if (int(segments_.size()) == max_segments_)
        segments_.pop_back();
    segments_.push_front({lba, length});
}

void
DiskCache::clear()
{
    segments_.clear();
}

} // namespace hddtherm::sim
