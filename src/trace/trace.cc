#include "trace/trace.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "util/error.h"
#include "util/units.h"

namespace hddtherm::trace {

void
Trace::append(const TraceRecord& record)
{
    HDDTHERM_REQUIRE(record.time >= 0.0 && record.sectors >= 1 &&
                         record.lba >= 0 && record.device >= 0,
                     "malformed trace record");
    HDDTHERM_REQUIRE(records_.empty() || record.time >= records_.back().time,
                     "trace records must be time-ordered");
    records_.push_back(record);
}

std::vector<sim::IoRequest>
Trace::toRequests() const
{
    std::vector<sim::IoRequest> out;
    out.reserve(records_.size());
    std::uint64_t id = 1;
    for (const auto& r : records_) {
        sim::IoRequest req;
        req.id = id++;
        req.arrival = r.time;
        req.device = r.device;
        req.lba = r.lba;
        req.sectors = r.sectors;
        req.type = r.write ? sim::IoType::Write : sim::IoType::Read;
        out.push_back(req);
    }
    return out;
}

bool
Trace::save(const std::string& path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << "time,device,lba,sectors,op\n";
    char buf[128];
    for (const auto& r : records_) {
        std::snprintf(buf, sizeof(buf), "%.9f,%d,%lld,%d,%c\n", r.time,
                      r.device, static_cast<long long>(r.lba), r.sectors,
                      r.write ? 'W' : 'R');
        out << buf;
    }
    return bool(out);
}

Trace
Trace::load(const std::string& path)
{
    std::ifstream in(path);
    HDDTHERM_REQUIRE(bool(in), "cannot open trace file: " + path);
    Trace trace(path);
    std::string line;
    bool first = true;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        if (first) {
            first = false;
            if (line.rfind("time,", 0) == 0)
                continue; // header
        }
        TraceRecord r;
        char op = 'R';
        long long lba = 0;
        const int fields = std::sscanf(line.c_str(), "%lf,%d,%lld,%d,%c",
                                       &r.time, &r.device, &lba, &r.sectors,
                                       &op);
        HDDTHERM_REQUIRE(fields == 5, "malformed trace line: " + line);
        r.lba = lba;
        r.write = (op == 'W' || op == 'w');
        trace.append(r);
    }
    return trace;
}

Trace
Trace::slice(double t0, double t1) const
{
    HDDTHERM_REQUIRE(t0 >= 0.0 && t1 > t0, "invalid slice window");
    Trace out(name_ + "-slice");
    for (const auto& r : records_) {
        if (r.time < t0)
            continue;
        if (r.time >= t1)
            break;
        TraceRecord shifted = r;
        shifted.time -= t0;
        out.append(shifted);
    }
    return out;
}

Trace
Trace::accelerate(double factor) const
{
    HDDTHERM_REQUIRE(factor > 0.0, "acceleration factor must be positive");
    Trace out(name_ + "-x" + std::to_string(factor));
    for (auto r : records_) {
        r.time /= factor;
        out.append(r);
    }
    return out;
}

Trace
Trace::loadSpc(const std::string& path)
{
    std::ifstream in(path);
    HDDTHERM_REQUIRE(bool(in), "cannot open SPC trace file: " + path);
    std::vector<TraceRecord> records;
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty() || line[0] == '#')
            continue;
        int asu = 0;
        long long lba = 0;
        long long bytes = 0;
        char op = 'R';
        double ts = 0.0;
        const int fields = std::sscanf(line.c_str(),
                                       "%d,%lld,%lld, %c ,%lf", &asu,
                                       &lba, &bytes, &op, &ts);
        // Some SPC dumps omit the spaces around the opcode.
        const int fields2 =
            fields == 5 ? 5
                        : std::sscanf(line.c_str(), "%d,%lld,%lld,%c,%lf",
                                      &asu, &lba, &bytes, &op, &ts);
        HDDTHERM_REQUIRE(fields2 == 5,
                         "malformed SPC line " + std::to_string(lineno) +
                             ": " + line);
        HDDTHERM_REQUIRE(op == 'r' || op == 'R' || op == 'w' || op == 'W',
                         "bad SPC opcode on line " +
                             std::to_string(lineno));
        TraceRecord r;
        r.time = ts;
        r.device = asu;
        r.lba = lba;
        r.sectors =
            std::max(1, int((bytes + util::kSectorBytes - 1) /
                            util::kSectorBytes));
        r.write = (op == 'w' || op == 'W');
        records.push_back(r);
    }
    std::stable_sort(records.begin(), records.end(),
                     [](const TraceRecord& a, const TraceRecord& b) {
                         return a.time < b.time;
                     });
    Trace trace(path);
    for (const auto& r : records)
        trace.append(r);
    return trace;
}

TraceStats
analyze(const Trace& trace)
{
    TraceStats s;
    s.requests = trace.size();
    if (trace.empty())
        return s;

    std::map<int, std::int64_t> last_end; // device -> end LBA of last req
    std::size_t reads = 0;
    std::size_t sequential = 0;
    double total_sectors = 0.0;
    for (const auto& r : trace.records()) {
        s.devices = std::max(s.devices, r.device + 1);
        reads += !r.write;
        total_sectors += r.sectors;
        s.maxLbaTouched = std::max(s.maxLbaTouched, r.lba + r.sectors - 1);
        const auto it = last_end.find(r.device);
        if (it != last_end.end() && it->second == r.lba)
            ++sequential;
        last_end[r.device] = r.lba + r.sectors;
    }
    s.durationSec = trace.durationSec();
    s.arrivalRatePerSec =
        s.durationSec > 0.0 ? double(s.requests) / s.durationSec : 0.0;
    s.readFraction = double(reads) / double(s.requests);
    s.meanSectors = total_sectors / double(s.requests);
    s.sequentialFraction = double(sequential) / double(s.requests);
    return s;
}

SeekProfileStats
analyzeSeeks(const Trace& trace, const sim::DiskAddressMap& map)
{
    SeekProfileStats out;
    if (trace.empty())
        return out;

    std::map<int, int> head; // device -> last cylinder
    double total_distance = 0.0;
    std::size_t moves = 0;
    std::size_t counted = 0;
    for (const auto& r : trace.records()) {
        if (r.lba + r.sectors > map.totalSectors())
            continue; // foreign-device record larger than this layout
        const int cyl = map.toPhysical(r.lba).cylinder;
        const auto it = head.find(r.device);
        if (it != head.end()) {
            const int dist = std::abs(cyl - it->second);
            total_distance += dist;
            moves += dist > 0;
            ++counted;
        }
        // Head ends at the request's final cylinder.
        head[r.device] =
            map.toPhysical(r.lba + r.sectors - 1).cylinder;
    }
    if (counted) {
        out.meanSeekCylinders = total_distance / double(counted);
        out.armMovementFraction = double(moves) / double(counted);
    }
    return out;
}

} // namespace hddtherm::trace
