/**
 * @file
 * Synthetic workload generation (the paper-trace substitute; DESIGN.md §2).
 *
 * A generator is parameterized by arrival process (Poisson with an optional
 * heavy-tailed burst component), spatial locality (Zipf-weighted hot
 * regions plus sequential-stream continuation), request-size distribution
 * and read/write mix.  The five presets in workloads.h are tuned to the
 * published characteristics of the paper's Figure 4(a) traces.
 */
#ifndef HDDTHERM_TRACE_SYNTH_H
#define HDDTHERM_TRACE_SYNTH_H

#include <cstdint>
#include <string>

#include "trace/trace.h"
#include "util/random.h"

namespace hddtherm::trace {

/// Generator parameters.
struct WorkloadSpec
{
    std::string name = "synthetic";
    int devices = 1;               ///< Logical device count.
    std::size_t requests = 100000; ///< Records to generate.
    double arrivalRatePerSec = 500.0; ///< Aggregate arrival rate.
    /**
     * Burstiness knob in [0, 1): probability that an inter-arrival gap is
     * drawn from the short (one-fifth mean) component; the complementary
     * component is stretched so the overall mean rate is preserved.
     * 0 yields a pure Poisson process.
     */
    double burstiness = 0.0;
    double readFraction = 0.7;     ///< Probability a request is a read.
    int minSectors = 2;            ///< Smallest request (sectors).
    int meanSectors = 8;           ///< Typical request size.
    int maxSectors = 512;          ///< Largest request.
    double sizeSigma = 0.6;        ///< Log-normal spread of sizes.
    /**
     * Probability a request continues the device's previous stream at the
     * exact next LBA (models the multi-block sequential runs the paper
     * observes even in seek-heavy traces).
     */
    double sequentialFraction = 0.3;
    int regions = 1024;            ///< Hot-region granularity.
    double zipfTheta = 0.6;        ///< Region popularity skew (0=uniform).
    double deviceZipfTheta = 0.0;  ///< Load imbalance across devices.
    std::uint64_t seed = 1;        ///< RNG seed (determinism contract).
};

/// Synthetic trace generator.
class SyntheticWorkload
{
  public:
    explicit SyntheticWorkload(const WorkloadSpec& spec);

    /**
     * Generate a trace addressing LBAs in [0, logical_sectors) on each of
     * the spec's devices.
     */
    Trace generate(std::int64_t logical_sectors) const;

    /// Spec in force.
    const WorkloadSpec& spec() const { return spec_; }

  private:
    WorkloadSpec spec_;
};

} // namespace hddtherm::trace

#endif // HDDTHERM_TRACE_SYNTH_H
