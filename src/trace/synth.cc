#include "trace/synth.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/error.h"

namespace hddtherm::trace {

SyntheticWorkload::SyntheticWorkload(const WorkloadSpec& spec) : spec_(spec)
{
    HDDTHERM_REQUIRE(spec_.devices >= 1, "need at least one device");
    HDDTHERM_REQUIRE(spec_.requests >= 1, "need at least one request");
    HDDTHERM_REQUIRE(spec_.arrivalRatePerSec > 0.0,
                     "arrival rate must be positive");
    HDDTHERM_REQUIRE(spec_.burstiness >= 0.0 && spec_.burstiness < 1.0,
                     "burstiness in [0, 1)");
    HDDTHERM_REQUIRE(spec_.readFraction >= 0.0 && spec_.readFraction <= 1.0,
                     "read fraction in [0, 1]");
    HDDTHERM_REQUIRE(spec_.minSectors >= 1 &&
                         spec_.minSectors <= spec_.meanSectors &&
                         spec_.meanSectors <= spec_.maxSectors,
                     "size parameters must satisfy min <= mean <= max");
    HDDTHERM_REQUIRE(spec_.sequentialFraction >= 0.0 &&
                         spec_.sequentialFraction <= 1.0,
                     "sequential fraction in [0, 1]");
    HDDTHERM_REQUIRE(spec_.regions >= 1, "need at least one region");
    HDDTHERM_REQUIRE(spec_.zipfTheta >= 0.0 && spec_.deviceZipfTheta >= 0.0,
                     "negative skew");
}

Trace
SyntheticWorkload::generate(std::int64_t logical_sectors) const
{
    HDDTHERM_REQUIRE(logical_sectors > spec_.maxSectors,
                     "logical space smaller than the largest request");

    util::Rng rng(spec_.seed);
    const util::ZipfSampler region_pick(std::size_t(spec_.regions),
                                        spec_.zipfTheta);
    const util::ZipfSampler device_pick(std::size_t(spec_.devices),
                                        spec_.deviceZipfTheta);
    const std::int64_t region_sectors =
        std::max<std::int64_t>(logical_sectors / spec_.regions,
                               spec_.maxSectors + 1);

    // Burst model: short gaps (mean/5) with probability b, long gaps
    // stretched to preserve the overall rate.
    const double mean_gap = 1.0 / spec_.arrivalRatePerSec;
    const double b = spec_.burstiness;
    const double short_scale = 0.2;
    const double long_scale =
        b > 0.0 ? (1.0 - b * short_scale) / (1.0 - b) : 1.0;

    // Log-normal size distribution with the requested mean:
    // mean = exp(mu + sigma^2/2)  =>  mu = ln(mean) - sigma^2/2.
    const double sigma = spec_.sizeSigma;
    const double mu = std::log(double(spec_.meanSectors)) -
                      0.5 * sigma * sigma;

    std::vector<std::int64_t> stream_next(std::size_t(spec_.devices), -1);

    Trace trace(spec_.name);
    double now = 0.0;
    for (std::size_t i = 0; i < spec_.requests; ++i) {
        const double scale =
            (b > 0.0 && rng.bernoulli(b)) ? short_scale : long_scale;
        now += rng.exponential(mean_gap * scale);

        TraceRecord r;
        r.time = now;
        r.device = int(device_pick(rng));

        // Size: even sector count, clamped.
        const double raw = rng.lognormal(mu, sigma);
        int sectors = int(std::llround(raw / 2.0)) * 2;
        sectors = std::clamp(sectors, spec_.minSectors, spec_.maxSectors);
        r.sectors = sectors;

        auto& next = stream_next[std::size_t(r.device)];
        if (next >= 0 && next + sectors <= logical_sectors &&
            rng.bernoulli(spec_.sequentialFraction)) {
            r.lba = next;
        } else {
            const auto region = std::int64_t(region_pick(rng));
            const std::int64_t base =
                std::min(region * region_sectors,
                         logical_sectors - region_sectors);
            const std::int64_t span = region_sectors - sectors;
            r.lba = base + rng.uniformInt(0, span - 1);
        }
        // Align to 1 KB (2-sector) boundaries like real block traces.
        r.lba &= ~std::int64_t(1);
        next = r.lba + sectors;

        r.write = !rng.bernoulli(spec_.readFraction);
        trace.append(r);
    }
    return trace;
}

} // namespace hddtherm::trace
