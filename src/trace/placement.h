/**
 * @file
 * Seek-reducing data placement (paper §5.4).
 *
 * "Techniques for co-locating data items to reduce seek overheads (e.g.
 * disk shuffling) can reduce VCM power, and further enhance the potential
 * of throttling."  ShuffleMap implements the classic frequency-based
 * organ-pipe arrangement [Ruemmler & Wilkes 1991]: extents are ranked by
 * access count from an observed trace and laid out hottest-first around
 * the middle of the LBA band, shrinking the expected arm travel between
 * hot extents.
 */
#ifndef HDDTHERM_TRACE_PLACEMENT_H
#define HDDTHERM_TRACE_PLACEMENT_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "trace/trace.h"

namespace hddtherm::trace {

/// Frequency-based organ-pipe LBA remapping for one device.
class ShuffleMap
{
  public:
    /**
     * Learn a placement from an observed trace.
     *
     * @param observed trace to learn access frequencies from (all devices'
     *        records are counted together; the map applies per device).
     * @param logical_sectors size of the LBA space being rearranged.
     * @param extent_sectors relocation granularity.
     */
    ShuffleMap(const Trace& observed, std::int64_t logical_sectors,
               std::int64_t extent_sectors);

    /// Remapped LBA for @p lba.
    std::int64_t remap(std::int64_t lba) const;

    /// Apply the mapping to a trace (record times/sizes unchanged).
    Trace apply(const Trace& trace) const;

    /// Number of extents in the map.
    std::int64_t extents() const { return extents_; }

    /// Extent granularity in sectors.
    std::int64_t extentSectors() const { return extent_sectors_; }

    /**
     * Fraction of observed accesses landing in the hottest
     * @p top_fraction of extents (a skew diagnostic).
     */
    double accessConcentration(double top_fraction) const;

  private:
    std::int64_t logical_sectors_;
    std::int64_t extent_sectors_;
    std::int64_t extents_;
    /// old extent index -> new extent index.
    std::vector<std::int64_t> forward_;
    /// Access counts per extent, hottest-first (for diagnostics).
    std::vector<std::uint64_t> sorted_counts_;
    std::uint64_t total_accesses_ = 0;
};

} // namespace hddtherm::trace

#endif // HDDTHERM_TRACE_PLACEMENT_H
