/**
 * @file
 * Block-level I/O traces: records, file round-tripping and characteristic
 * statistics (paper §5.1).
 *
 * The paper replays five commercial traces (HPL Openmail, UMass OLTP and
 * Search-Engine, TPC-C, TPC-H).  Those traces are not redistributable, so
 * HDDTherm generates synthetic equivalents (see synth.h); this module
 * defines the common representation plus the statistics used both to
 * characterize traces and to verify the generators against the published
 * characteristics (e.g. Openmail's 1952-cylinder mean seek distance and
 * >86% arm-movement fraction).
 */
#ifndef HDDTHERM_TRACE_TRACE_H
#define HDDTHERM_TRACE_TRACE_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/address_map.h"
#include "sim/request.h"

namespace hddtherm::trace {

/// One trace record (times in seconds, extents in 512-byte sectors).
struct TraceRecord
{
    double time = 0.0;
    int device = 0;
    std::int64_t lba = 0;
    int sectors = 1;
    bool write = false;
};

/// A named sequence of records ordered by time.
class Trace
{
  public:
    Trace() = default;
    explicit Trace(std::string name) : name_(std::move(name)) {}

    /// Trace label.
    const std::string& name() const { return name_; }

    /// Append a record; times must be non-decreasing.
    void append(const TraceRecord& record);

    /// Records, in time order.
    const std::vector<TraceRecord>& records() const { return records_; }

    /// Record count.
    std::size_t size() const { return records_.size(); }

    /// True when no records are present.
    bool empty() const { return records_.empty(); }

    /// Trace duration (last arrival time), seconds.
    double durationSec() const
    {
        return records_.empty() ? 0.0 : records_.back().time;
    }

    /// Convert to simulator requests with sequential ids starting at 1.
    std::vector<sim::IoRequest> toRequests() const;

    /**
     * Records with time in [t0, t1), re-based so the slice starts at 0.
     * Useful for warm-up removal and windowed analysis.
     */
    Trace slice(double t0, double t1) const;

    /**
     * The same accesses arriving @p factor times faster (times divided by
     * factor) — load scaling without touching the access pattern.
     */
    Trace accelerate(double factor) const;

    /**
     * Write as CSV ("time,device,lba,sectors,op") to @p path.
     * @return false on I/O failure.
     */
    bool save(const std::string& path) const;

    /**
     * Load a CSV trace written by save().
     * @throws util::ModelError on malformed input.
     */
    static Trace load(const std::string& path);

    /**
     * Load an SPC-format trace ("ASU,LBA,Size,Opcode,Timestamp" with the
     * size in bytes and opcode r/R/w/W) — the format of the UMass traces
     * the paper replays (OLTP "Financial" and WebSearch).  ASU becomes
     * the device id; records are sorted by timestamp.
     * @throws util::ModelError on malformed input.
     */
    static Trace loadSpc(const std::string& path);

  private:
    std::string name_;
    std::vector<TraceRecord> records_;
};

/// Aggregate characteristics of a trace.
struct TraceStats
{
    std::size_t requests = 0;
    int devices = 0;            ///< Max device id + 1.
    double durationSec = 0.0;
    double arrivalRatePerSec = 0.0;
    double readFraction = 0.0;
    double meanSectors = 0.0;
    /// Fraction of requests starting exactly where the previous request on
    /// the same device ended (pure sequential continuation).
    double sequentialFraction = 0.0;
    std::int64_t maxLbaTouched = 0;
};

/// Compute trace characteristics.
TraceStats analyze(const Trace& trace);

/**
 * Seek-profile statistics of a trace replayed on a given layout: the mean
 * seek distance in cylinders and the fraction of requests that move the
 * arm (paper quotes 1952 cylinders / 86% for Openmail).  Computed per
 * device with a simple last-cylinder model (no queue reordering).
 */
struct SeekProfileStats
{
    double meanSeekCylinders = 0.0;
    double armMovementFraction = 0.0;
};

SeekProfileStats analyzeSeeks(const Trace& trace,
                              const sim::DiskAddressMap& map);

} // namespace hddtherm::trace

#endif // HDDTHERM_TRACE_TRACE_H
