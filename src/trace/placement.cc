#include "trace/placement.h"

#include <algorithm>
#include <numeric>

#include "util/error.h"

namespace hddtherm::trace {

ShuffleMap::ShuffleMap(const Trace& observed, std::int64_t logical_sectors,
                       std::int64_t extent_sectors)
    : logical_sectors_(logical_sectors), extent_sectors_(extent_sectors)
{
    HDDTHERM_REQUIRE(logical_sectors_ > 0, "empty logical space");
    HDDTHERM_REQUIRE(extent_sectors_ > 0, "extent size must be positive");
    extents_ = (logical_sectors_ + extent_sectors_ - 1) / extent_sectors_;

    // Count accesses per extent.
    std::vector<std::uint64_t> counts(std::size_t(extents_), 0);
    for (const auto& r : observed.records()) {
        if (r.lba + r.sectors > logical_sectors_)
            continue; // foreign-device record
        const std::int64_t first = r.lba / extent_sectors_;
        const std::int64_t last =
            (r.lba + r.sectors - 1) / extent_sectors_;
        for (std::int64_t e = first; e <= last; ++e) {
            ++counts[std::size_t(e)];
            ++total_accesses_;
        }
    }

    // Rank extents hottest-first (stable on ties for determinism).
    std::vector<std::int64_t> ranked;
    ranked.resize(std::size_t(extents_));
    std::iota(ranked.begin(), ranked.end(), 0);
    std::stable_sort(ranked.begin(), ranked.end(),
                     [&counts](std::int64_t a, std::int64_t b) {
                         return counts[std::size_t(a)] >
                                counts[std::size_t(b)];
                     });
    sorted_counts_.reserve(ranked.size());
    for (const auto e : ranked)
        sorted_counts_.push_back(counts[std::size_t(e)]);

    // Organ-pipe: hottest extent in the middle, alternating outward.
    forward_.assign(std::size_t(extents_), 0);
    std::int64_t low = extents_ / 2;
    std::int64_t high = low + 1;
    bool to_low = true;
    for (const auto old_extent : ranked) {
        std::int64_t target;
        if (to_low && low >= 0) {
            target = low--;
        } else if (high < extents_) {
            target = high++;
        } else {
            target = low--;
        }
        HDDTHERM_ASSERT(target >= 0 && target < extents_);
        forward_[std::size_t(old_extent)] = target;
        to_low = !to_low;
    }
}

std::int64_t
ShuffleMap::remap(std::int64_t lba) const
{
    HDDTHERM_REQUIRE(lba >= 0 && lba < logical_sectors_,
                     "LBA out of range");
    const std::int64_t extent = lba / extent_sectors_;
    const std::int64_t offset = lba % extent_sectors_;
    return forward_[std::size_t(extent)] * extent_sectors_ + offset;
}

Trace
ShuffleMap::apply(const Trace& trace) const
{
    Trace out(trace.name() + "-shuffled");
    for (auto r : trace.records()) {
        if (r.lba + r.sectors <= logical_sectors_) {
            // Clamp the remapped extent's tail: a request crossing old
            // extent boundaries is pinned to its first extent's new home.
            const std::int64_t mapped = remap(r.lba);
            const std::int64_t extent_end =
                (mapped / extent_sectors_ + 1) * extent_sectors_;
            r.lba = mapped;
            if (r.lba + r.sectors > extent_end &&
                r.lba + r.sectors > logical_sectors_) {
                r.sectors = int(logical_sectors_ - r.lba);
            }
        }
        out.append(r);
    }
    return out;
}

double
ShuffleMap::accessConcentration(double top_fraction) const
{
    HDDTHERM_REQUIRE(top_fraction > 0.0 && top_fraction <= 1.0,
                     "fraction in (0, 1]");
    if (total_accesses_ == 0)
        return 0.0;
    const auto top = std::max<std::size_t>(
        1, std::size_t(double(extents_) * top_fraction));
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < top && i < sorted_counts_.size(); ++i)
        sum += sorted_counts_[i];
    return double(sum) / double(total_accesses_);
}

} // namespace hddtherm::trace
