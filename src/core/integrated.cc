#include "core/integrated.h"

#include <cmath>

#include "thermal/calibration.h"
#include "thermal/drive_thermal.h"
#include "util/error.h"
#include "util/units.h"

namespace hddtherm::core {

DriveEvaluation
evaluateDesign(const DriveDesign& design, double envelope_c)
{
    DriveEvaluation out;
    const auto zm = design.layout();
    out.capacity = hdd::computeCapacity(zm);
    out.idrMBps = hdd::internalDataRateMBps(zm, design.rpm);
    out.seek = hdd::SeekProfile::forDiameter(design.geometry.diameterInches);
    out.avgRotationalLatencyMs =
        util::secToMs(util::revolutionTimeSec(design.rpm)) / 2.0;

    const auto tcfg = design.thermalConfig();
    thermal::DriveThermalModel model(tcfg);
    out.steadyAirTempC = model.steadyAirTempC();
    out.withinEnvelope = out.steadyAirTempC <= envelope_c;
    out.viscousPowerW = model.viscousPowerW();
    out.vcmPowerW = model.vcmPowerW();
    out.spmPowerW = model.spmPowerW();
    out.maxRpmWithinEnvelope =
        thermal::maxRpmWithinEnvelope(tcfg, envelope_c);
    return out;
}

hdd::PlatterGeometry
geometryForCapacity(const hdd::RecordingTech& tech, double target_gb,
                    int zones)
{
    HDDTHERM_REQUIRE(target_gb > 0.0, "target capacity must be positive");
    static const double kDiameters[] = {1.6, 2.1, 2.6, 3.0, 3.3, 3.7};

    hdd::PlatterGeometry best;
    double best_err = -1.0;
    for (const double d : kDiameters) {
        for (int platters = 1; platters <= 12; ++platters) {
            hdd::PlatterGeometry g;
            g.diameterInches = d;
            g.platters = platters;
            const hdd::ZoneModel zm(g, tech, zones);
            const double gb = hdd::computeCapacity(zm).userGB;
            const double err = std::fabs(std::log(gb / target_gb));
            if (best_err < 0.0 || err < best_err) {
                best_err = err;
                best = g;
            }
        }
    }
    return best;
}

} // namespace hddtherm::core
