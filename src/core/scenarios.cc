#include "core/scenarios.h"

#include "core/integrated.h"
#include "roadmap/scaling.h"
#include "util/error.h"

namespace hddtherm::core {

trace::Trace
WorkloadScenario::makeTrace() const
{
    const trace::SyntheticWorkload gen(workload);
    const sim::StorageSystem probe(system);
    return gen.generate(probe.logicalSectors());
}

sim::ResponseMetrics
WorkloadScenario::run(double rpm, std::size_t requests) const
{
    sim::SystemConfig cfg = system;
    cfg.disk.rpm = rpm;
    trace::WorkloadSpec spec = workload;
    if (requests)
        spec.requests = requests;
    sim::StorageSystem array(cfg);
    const trace::SyntheticWorkload gen(spec);
    const auto tr = gen.generate(array.logicalSectors());
    return array.run(tr.toRequests());
}

namespace {

/// Shared scenario scaffolding: disk of the trace's year sized to the
/// published capacity, 4 MB cache, 30 zones, FCFS (DiskSim defaults).
WorkloadScenario
makeScenario(const std::string& name, int year, double capacity_gb,
             double base_rpm, int disks, sim::RaidLevel raid,
             std::vector<double> paper_ms)
{
    static const roadmap::TechnologyTimeline timeline;
    WorkloadScenario s;
    s.name = name;
    s.year = year;
    s.paperDiskCapacityGB = capacity_gb;
    s.baseRpm = base_rpm;
    s.paperAvgResponseMs = std::move(paper_ms);

    s.system.disks = disks;
    s.system.raid = raid;
    s.system.stripeSectors = 16; // paper: 16 x 512 B stripe units
    s.system.disk.tech = timeline.tech(year);
    // Geometry is reconstructed purely from the published per-disk
    // capacity under the year's recording technology (the paper's "we
    // used our model to capture the disk characteristics for the
    // appropriate year"); the minimizer may pick a smaller-platter,
    // higher-count stack than the era's marketing form factors.
    s.system.disk.geometry =
        geometryForCapacity(s.system.disk.tech, capacity_gb);
    s.system.disk.rpm = base_rpm;
    s.system.disk.zones = 30;
    s.system.disk.cacheBytes = 4u << 20;

    s.workload.name = name;
    // JBOD traces address their devices directly; RAID traces address one
    // logical volume.
    s.workload.devices = raid == sim::RaidLevel::None ? disks : 1;
    return s;
}

} // namespace

std::vector<WorkloadScenario>
figure4Scenarios(std::size_t requests)
{
    HDDTHERM_REQUIRE(requests >= 1000,
                     "too few requests for a meaningful CDF");
    std::vector<WorkloadScenario> out;

    // ------------------------------------------------------------------
    // HPL Openmail (2000): 8 x 9.29 GB @ 10K, RAID-5.  Mail-server mix:
    // write-heavy, bursty, strong sequential runs inside mailbox files
    // (the paper notes most requests span successive blocks even though
    // 86% of requests move the arm).  The paper's 54.5 ms baseline mean
    // indicates operation near saturation.
    {
        auto s = makeScenario("Openmail", 2000, 9.29, 10000.0, 8,
                              sim::RaidLevel::Raid5,
                              {54.54, 25.93, 18.61, 15.35});
        s.workload.requests = requests;
        s.workload.arrivalRatePerSec = 345.0;
        s.workload.burstiness = 0.6;
        s.workload.readFraction = 0.40;
        s.workload.minSectors = 2;
        s.workload.meanSectors = 12;
        s.workload.maxSectors = 256;
        s.workload.sequentialFraction = 0.50;
        s.workload.regions = 4096;
        s.workload.zipfTheta = 0.50;
        s.workload.seed = 0xA11;
        out.push_back(std::move(s));
    }

    // ------------------------------------------------------------------
    // OLTP Application (1999, umass): 24 x 19.07 GB @ 10K, JBOD.  Small
    // skewed random accesses with modest sequentiality; light per-disk
    // load (5.66 ms baseline mean).
    {
        auto s = makeScenario("OLTP", 1999, 19.07, 10000.0, 24,
                              sim::RaidLevel::None,
                              {5.66, 4.48, 3.91, 3.57});
        s.workload.requests = requests;
        s.workload.arrivalRatePerSec = 790.0;
        s.workload.burstiness = 0.2;
        s.workload.readFraction = 0.66;
        s.workload.minSectors = 2;
        s.workload.meanSectors = 6;
        s.workload.maxSectors = 64;
        s.workload.sequentialFraction = 0.35;
        s.workload.regions = 2048;
        s.workload.zipfTheta = 0.80;
        s.workload.seed = 0x01A9;
        out.push_back(std::move(s));
    }

    // ------------------------------------------------------------------
    // Search-Engine (1999, umass): 6 x 19.07 GB @ 10K, JBOD.  Almost pure
    // reads over a popularity-skewed index; moderate queueing (16.2 ms).
    {
        auto s = makeScenario("Search-Engine", 1999, 19.07, 10000.0, 6,
                              sim::RaidLevel::None,
                              {16.22, 10.72, 8.63, 7.55});
        s.workload.requests = requests;
        s.workload.arrivalRatePerSec = 900.0;
        s.workload.burstiness = 0.5;
        s.workload.readFraction = 0.99;
        s.workload.minSectors = 4;
        s.workload.meanSectors = 16;
        s.workload.maxSectors = 128;
        s.workload.sequentialFraction = 0.30;
        s.workload.regions = 2048;
        s.workload.zipfTheta = 0.70;
        s.workload.seed = 0x5EA;
        out.push_back(std::move(s));
    }

    // ------------------------------------------------------------------
    // TPC-C (2002): 4 x 37.17 GB @ 10K, RAID-5.  8 KB page I/O, hot
    // tables, read-modify-write traffic; 6.5 ms baseline mean.
    {
        auto s = makeScenario("TPC-C", 2002, 37.17, 10000.0, 4,
                              sim::RaidLevel::Raid5,
                              {6.50, 3.23, 2.46, 2.06});
        // The published 6.5 ms mean with a ~45% write mix implies an
        // NVRAM-backed array controller reporting writes early.
        s.system.immediateWriteReport = true;
        s.workload.requests = requests;
        s.workload.arrivalRatePerSec = 115.0;
        s.workload.burstiness = 0.3;
        s.workload.readFraction = 0.65;
        s.workload.minSectors = 8;
        s.workload.meanSectors = 16;
        s.workload.maxSectors = 64;
        s.workload.sequentialFraction = 0.10;
        s.workload.regions = 512;
        s.workload.zipfTheta = 1.60;
        s.workload.seed = 0x7CC;
        out.push_back(std::move(s));
    }

    // ------------------------------------------------------------------
    // TPC-H (2002): 15 x 35.96 GB @ 7.2K, JBOD.  Decision support: large
    // mostly-sequential scan reads; 4.9 ms baseline mean dominated by
    // transfer + track-buffer hits.
    {
        auto s = makeScenario("TPC-H", 2002, 35.96, 7200.0, 15,
                              sim::RaidLevel::None,
                              {4.91, 3.25, 2.64, 2.32});
        s.workload.requests = requests;
        s.workload.arrivalRatePerSec = 400.0;
        s.workload.burstiness = 0.3;
        s.workload.readFraction = 0.97;
        s.workload.minSectors = 16;
        s.workload.meanSectors = 128;
        s.workload.maxSectors = 512;
        s.workload.sizeSigma = 0.4;
        s.workload.sequentialFraction = 0.65;
        s.workload.regions = 512;
        s.workload.zipfTheta = 0.30;
        s.workload.seed = 0x79C;
        out.push_back(std::move(s));
    }

    return out;
}

WorkloadScenario
figure4Scenario(const std::string& name, std::size_t requests)
{
    for (auto& s : figure4Scenarios(requests)) {
        if (s.name == name)
            return s;
    }
    throw util::ModelError("unknown Figure 4 scenario: " + name);
}

} // namespace hddtherm::core
