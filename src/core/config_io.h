/**
 * @file
 * Text-file round-tripping for storage-system and workload descriptions.
 *
 * A small INI-style format (sections, `key = value`, `#` comments) lets
 * experiments be described without recompiling — the role DiskSim's
 * .parv files played.  Unknown keys are rejected (typos should fail
 * loudly, not silently fall back to defaults).
 *
 * Example:
 *
 *     [disk]
 *     diameter_in = 2.6
 *     platters = 1
 *     kbpi = 533
 *     ktpi = 64
 *     rpm = 15000
 *     scheduler = fcfs
 *
 *     [array]
 *     disks = 8
 *     raid = raid5
 *     stripe_sectors = 16
 *
 *     [workload]
 *     requests = 60000
 *     arrival_rate = 345
 *     read_fraction = 0.4
 */
#ifndef HDDTHERM_CORE_CONFIG_IO_H
#define HDDTHERM_CORE_CONFIG_IO_H

#include <string>

#include "sim/storage_system.h"
#include "trace/synth.h"

namespace hddtherm::core {

/// A parsed experiment description.
struct ExperimentSpec
{
    sim::SystemConfig system;     ///< [disk] + [array] sections.
    trace::WorkloadSpec workload; ///< [workload] section.
    bool hasWorkload = false;     ///< True if a [workload] section exists.
};

/**
 * Parse an experiment description file.
 * @throws util::ModelError on I/O failure, syntax errors, unknown
 *         sections/keys, or out-of-domain values.
 */
ExperimentSpec loadExperimentSpec(const std::string& path);

/// Parse an experiment description from a string (for tests/tools).
ExperimentSpec parseExperimentSpec(const std::string& text);

/// Serialize a spec back to the file format.
std::string formatExperimentSpec(const ExperimentSpec& spec);

/// Write a spec to @p path; returns false on I/O failure.
bool saveExperimentSpec(const ExperimentSpec& spec,
                        const std::string& path);

} // namespace hddtherm::core

#endif // HDDTHERM_CORE_CONFIG_IO_H
