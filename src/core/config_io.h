/**
 * @file
 * Text-file round-tripping for storage-system and workload descriptions.
 *
 * A small INI-style format (sections, `key = value`, `#` comments) lets
 * experiments be described without recompiling — the role DiskSim's
 * .parv files played.  Unknown keys are rejected (typos should fail
 * loudly, not silently fall back to defaults).
 *
 * Example:
 *
 *     [disk]
 *     diameter_in = 2.6
 *     platters = 1
 *     kbpi = 533
 *     ktpi = 64
 *     rpm = 15000
 *     scheduler = fcfs
 *
 *     [array]
 *     disks = 8
 *     raid = raid5
 *     stripe_sectors = 16
 *
 *     [workload]
 *     requests = 60000
 *     arrival_rate = 345
 *     read_fraction = 0.4
 */
#ifndef HDDTHERM_CORE_CONFIG_IO_H
#define HDDTHERM_CORE_CONFIG_IO_H

#include <map>
#include <string>

#include "fault/fault_schedule.h"
#include "sim/storage_system.h"
#include "trace/synth.h"

namespace hddtherm::core {

/**
 * The INI layer itself, exposed so other spec dialects (the harness's
 * RunSpec) can share the tokenizer, the typed accessors, and the
 * unknown-key discipline instead of growing their own parsers.
 */
namespace ini {

using Section = std::map<std::string, std::string>;
using Document = std::map<std::string, Section>;

/**
 * Parse INI text (sections, `key = value`, `#` comments) into a document.
 * Keys and section names are lowercased; values keep their case.
 * @throws util::ModelError on syntax errors and duplicate keys.
 */
Document parseDocument(const std::string& text);

/// parseDocument() over a file; throws util::ModelError on I/O failure.
Document loadDocument(const std::string& path);

/**
 * Typed accessors over one section that consume keys as they are read,
 * so finish() can reject leftovers (typos must fail loudly, not fall
 * back to defaults).  Every accessor takes a fallback returned when the
 * key is absent — overlay semantics for free.
 */
class SectionReader
{
  public:
    SectionReader(std::string name, Section section)
        : name_(std::move(name)), section_(std::move(section))
    {}

    /// Finite number; throws on malformed/non-finite values.
    double number(const std::string& key, double fallback);

    /// Lowercased word (enumerations).
    std::string word(const std::string& key, const std::string& fallback);

    /// Raw string, case preserved (paths, names).
    std::string text(const std::string& key, const std::string& fallback);

    /// Boolean: true/yes/1 or false/no/0.
    bool flag(const std::string& key, bool fallback);

    /// True while @p key is present (not yet consumed).
    bool has(const std::string& key) const
    {
        return section_.count(key) != 0;
    }

    /// Reject any keys never consumed.  @throws util::ModelError.
    void finish() const;

  private:
    std::string name_;
    Section section_;
};

} // namespace ini

/// A parsed experiment description.
struct ExperimentSpec
{
    sim::SystemConfig system;     ///< [disk] + [array] sections.
    trace::WorkloadSpec workload; ///< [workload] section.
    bool hasWorkload = false;     ///< True if a [workload] section exists.
};

/**
 * Parse an experiment description file.
 * @throws util::ModelError on I/O failure, syntax errors, unknown
 *         sections/keys, or out-of-domain values.
 */
ExperimentSpec loadExperimentSpec(const std::string& path);

/// Parse an experiment description from a string (for tests/tools).
ExperimentSpec parseExperimentSpec(const std::string& text);

/**
 * Overlay the [disk]/[array]/[workload] sections of @p doc onto @p spec:
 * present keys override, absent keys keep the values already in @p spec
 * (so a scenario can serve as the base of a declarative run spec).
 * Consumes the three sections from the document; other sections are left
 * untouched for the caller's dialect.
 * @throws util::ModelError on unknown keys or out-of-domain values.
 */
void applyExperimentSections(ini::Document& doc, ExperimentSpec& spec);

/// Serialize a spec back to the file format.
std::string formatExperimentSpec(const ExperimentSpec& spec);

/// Write a spec to @p path; returns false on I/O failure.
bool saveExperimentSpec(const ExperimentSpec& spec,
                        const std::string& path);

/**
 * Parse a fault schedule from the same INI dialect.  An optional
 * [schedule] section carries `noise_seed`; each event is a numbered
 * [fault.N] section (replayed in N order) with:
 *
 *     [fault.0]
 *     at = 120              # onset, simulated seconds (required)
 *     kind = airflow_degrade
 *     factor = 0.4          # kind-specific magnitude, see below
 *     duration = 600        # optional window, 0/absent = to run end
 *     target = 2            # optional addressee, absent = -1 (broadcast)
 *
 * The magnitude key depends on the kind: `factor` for airflow_degrade,
 * `delta_c` for ambient_step/ambient_spike, `sigma_c` for sensor_noise;
 * sensor_stuck, sensor_dropout, bay_kill and bay_restore take none.
 * Unknown sections/keys and out-of-domain values are rejected.
 * @throws util::ModelError on any of the above.
 */
fault::FaultSchedule parseFaultSchedule(const std::string& text);

/// Parse a fault-schedule file; throws util::ModelError as above.
fault::FaultSchedule loadFaultSchedule(const std::string& path);

/// Serialize a schedule back to the file format (parse round-trips).
std::string formatFaultSchedule(const fault::FaultSchedule& schedule);

/// Write a schedule to @p path; returns false on I/O failure.
bool saveFaultSchedule(const fault::FaultSchedule& schedule,
                       const std::string& path);

} // namespace hddtherm::core

#endif // HDDTHERM_CORE_CONFIG_IO_H
