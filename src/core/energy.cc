#include "core/energy.h"

#include "thermal/calibration.h"
#include "util/error.h"

namespace hddtherm::core {

EnergyBreakdown
accountEnergy(const hdd::PlatterGeometry& geometry, double rpm,
              const sim::DiskActivity& activity, double elapsed_sec)
{
    HDDTHERM_REQUIRE(elapsed_sec >= 0.0, "negative interval");
    HDDTHERM_REQUIRE(activity.seekSec <= elapsed_sec + 1e-9,
                     "seek time exceeds the accounted interval");
    EnergyBreakdown out;
    out.spindleJ =
        thermal::spmMotorLossW(geometry.diameterInches) * elapsed_sec;
    out.windageJ = thermal::viscousDissipationW(
                       rpm, geometry.diameterInches, geometry.platters) *
                   elapsed_sec;
    out.vcmJ = thermal::vcmPowerW(geometry.diameterInches) *
               activity.seekSec;
    return out;
}

} // namespace hddtherm::core
