#include "core/config_io.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <fstream>
#include <map>
#include <sstream>

#include "util/error.h"

namespace hddtherm::core {

namespace {

std::string
trim(const std::string& s)
{
    const auto begin = s.find_first_not_of(" \t\r");
    if (begin == std::string::npos)
        return "";
    const auto end = s.find_last_not_of(" \t\r");
    return s.substr(begin, end - begin + 1);
}

std::string
lower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return char(std::tolower(c));
    });
    return s;
}

} // namespace

namespace ini {

Document
parseDocument(const std::string& text)
{
    Document doc;
    std::istringstream in(text);
    std::string line;
    std::string section;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const auto comment = line.find('#');
        if (comment != std::string::npos)
            line = line.substr(0, comment);
        line = trim(line);
        if (line.empty())
            continue;
        if (line.front() == '[') {
            HDDTHERM_REQUIRE(line.back() == ']',
                             "line " + std::to_string(lineno) +
                                 ": unterminated section header");
            section = lower(trim(line.substr(1, line.size() - 2)));
            HDDTHERM_REQUIRE(!section.empty(),
                             "line " + std::to_string(lineno) +
                                 ": empty section name");
            doc[section]; // create even if empty
            continue;
        }
        const auto eq = line.find('=');
        HDDTHERM_REQUIRE(eq != std::string::npos,
                         "line " + std::to_string(lineno) +
                             ": expected 'key = value'");
        HDDTHERM_REQUIRE(!section.empty(),
                         "line " + std::to_string(lineno) +
                             ": key outside any [section]");
        const std::string key = lower(trim(line.substr(0, eq)));
        const std::string value = trim(line.substr(eq + 1));
        HDDTHERM_REQUIRE(!key.empty() && !value.empty(),
                         "line " + std::to_string(lineno) +
                             ": empty key or value");
        HDDTHERM_REQUIRE(!doc[section].count(key),
                         "line " + std::to_string(lineno) +
                             ": duplicate key '" + key + "'");
        doc[section][key] = value;
    }
    return doc;
}

Document
loadDocument(const std::string& path)
{
    std::ifstream in(path);
    HDDTHERM_REQUIRE(bool(in), "cannot open config file: " + path);
    std::ostringstream text;
    text << in.rdbuf();
    return parseDocument(text.str());
}

double
SectionReader::number(const std::string& key, double fallback)
{
    const auto it = section_.find(key);
    if (it == section_.end())
        return fallback;
    std::size_t pos = 0;
    double value = 0.0;
    try {
        value = std::stod(it->second, &pos);
    } catch (const std::exception&) {
        pos = 0;
    }
    HDDTHERM_REQUIRE(pos == it->second.size(),
                     "[" + name_ + "] " + key +
                         ": not a number: " + it->second);
    // std::stod happily parses "nan" and "inf"; a non-finite config
    // value is never meaningful here and must not propagate silently
    // into the models.
    HDDTHERM_REQUIRE(std::isfinite(value),
                     "[" + name_ + "] " + key +
                         ": not a finite number: " + it->second);
    section_.erase(it);
    return value;
}

std::string
SectionReader::word(const std::string& key, const std::string& fallback)
{
    const auto it = section_.find(key);
    if (it == section_.end())
        return fallback;
    const std::string value = lower(it->second);
    section_.erase(it);
    return value;
}

std::string
SectionReader::text(const std::string& key, const std::string& fallback)
{
    const auto it = section_.find(key);
    if (it == section_.end())
        return fallback;
    const std::string value = it->second;
    section_.erase(it);
    return value;
}

bool
SectionReader::flag(const std::string& key, bool fallback)
{
    const auto it = section_.find(key);
    if (it == section_.end())
        return fallback;
    const std::string value = lower(it->second);
    section_.erase(it);
    if (value == "true" || value == "yes" || value == "1")
        return true;
    if (value == "false" || value == "no" || value == "0")
        return false;
    throw util::ModelError("[" + name_ + "] " + key +
                           ": not a boolean: " + value);
}

void
SectionReader::finish() const
{
    HDDTHERM_REQUIRE(section_.empty(),
                     "[" + name_ + "] unknown key '" +
                         (section_.empty() ? ""
                                           : section_.begin()->first) +
                         "'");
}

} // namespace ini

namespace {

using ini::Document;
using ini::Section;
using ini::SectionReader;
using ini::parseDocument;

sim::SchedulerPolicy
parseScheduler(const std::string& word)
{
    if (word == "fcfs")
        return sim::SchedulerPolicy::Fcfs;
    if (word == "sstf")
        return sim::SchedulerPolicy::Sstf;
    if (word == "elevator" || word == "look")
        return sim::SchedulerPolicy::Elevator;
    throw util::ModelError("unknown scheduler: " + word);
}

sim::RaidLevel
parseRaid(const std::string& word)
{
    if (word == "jbod" || word == "none")
        return sim::RaidLevel::None;
    if (word == "raid0")
        return sim::RaidLevel::Raid0;
    if (word == "raid1")
        return sim::RaidLevel::Raid1;
    if (word == "raid5")
        return sim::RaidLevel::Raid5;
    throw util::ModelError("unknown raid level: " + word);
}

const char*
schedulerWord(sim::SchedulerPolicy policy)
{
    switch (policy) {
      case sim::SchedulerPolicy::Fcfs:
        return "fcfs";
      case sim::SchedulerPolicy::Sstf:
        return "sstf";
      case sim::SchedulerPolicy::Elevator:
        return "elevator";
    }
    return "fcfs";
}

fault::FaultKind
parseFaultKind(const std::string& word)
{
    static constexpr fault::FaultKind kKinds[] = {
        fault::FaultKind::AirflowDegrade, fault::FaultKind::AmbientStep,
        fault::FaultKind::AmbientSpike,   fault::FaultKind::SensorStuck,
        fault::FaultKind::SensorDropout,  fault::FaultKind::SensorNoise,
        fault::FaultKind::BayKill,        fault::FaultKind::BayRestore,
    };
    for (const auto kind : kKinds) {
        if (word == fault::faultKindName(kind))
            return kind;
    }
    throw util::ModelError("unknown fault kind: " + word);
}

/// The magnitude key each kind reads (nullptr = takes no magnitude).
const char*
faultValueKey(fault::FaultKind kind)
{
    switch (kind) {
      case fault::FaultKind::AirflowDegrade:
        return "factor";
      case fault::FaultKind::AmbientStep:
      case fault::FaultKind::AmbientSpike:
        return "delta_c";
      case fault::FaultKind::SensorNoise:
        return "sigma_c";
      case fault::FaultKind::SensorStuck:
      case fault::FaultKind::SensorDropout:
      case fault::FaultKind::BayKill:
      case fault::FaultKind::BayRestore:
        return nullptr;
    }
    return nullptr;
}

const char*
raidWord(sim::RaidLevel level)
{
    switch (level) {
      case sim::RaidLevel::None:
        return "jbod";
      case sim::RaidLevel::Raid0:
        return "raid0";
      case sim::RaidLevel::Raid1:
        return "raid1";
      case sim::RaidLevel::Raid5:
        return "raid5";
    }
    return "jbod";
}

} // namespace

ExperimentSpec
parseExperimentSpec(const std::string& text)
{
    Document doc = ini::parseDocument(text);
    for (const auto& [section, _] : doc) {
        HDDTHERM_REQUIRE(section == "disk" || section == "array" ||
                             section == "workload",
                         "unknown section [" + section + "]");
    }
    ExperimentSpec spec;
    applyExperimentSections(doc, spec);
    return spec;
}

void
applyExperimentSections(ini::Document& doc, ExperimentSpec& spec)
{
    if (doc.count("disk")) {
        SectionReader disk("disk", doc["disk"]);
        auto& d = spec.system.disk;
        d.geometry.diameterInches =
            disk.number("diameter_in", d.geometry.diameterInches);
        d.geometry.platters =
            int(disk.number("platters", d.geometry.platters));
        d.tech.bpi = disk.number("kbpi", d.tech.bpi / 1e3) * 1e3;
        d.tech.tpi = disk.number("ktpi", d.tech.tpi / 1e3) * 1e3;
        d.zones = int(disk.number("zones", d.zones));
        d.rpm = disk.number("rpm", d.rpm);
        d.headSwitchMs = disk.number("head_switch_ms", d.headSwitchMs);
        d.controllerOverheadMs =
            disk.number("controller_overhead_ms", d.controllerOverheadMs);
        d.busMBps = disk.number("bus_mbps", d.busMBps);
        d.cacheBytes = std::size_t(
            disk.number("cache_mb", double(d.cacheBytes) / (1 << 20)) *
            (1 << 20));
        d.cacheSegments =
            int(disk.number("cache_segments", d.cacheSegments));
        d.readAheadToTrackEnd =
            disk.flag("read_ahead", d.readAheadToTrackEnd);
        d.scheduler = parseScheduler(
            disk.word("scheduler", schedulerWord(d.scheduler)));
        d.rpmChangeSecPerKrpm =
            disk.number("rpm_change_s_per_krpm", d.rpmChangeSecPerKrpm);
        disk.finish();
        doc.erase("disk");
    }

    if (doc.count("array")) {
        SectionReader array("array", doc["array"]);
        spec.system.disks = int(array.number("disks", spec.system.disks));
        spec.system.raid =
            parseRaid(array.word("raid", raidWord(spec.system.raid)));
        spec.system.stripeSectors =
            int(array.number("stripe_sectors", spec.system.stripeSectors));
        spec.system.immediateWriteReport = array.flag(
            "immediate_write_report", spec.system.immediateWriteReport);
        spec.system.writeReportLatencyMs = array.number(
            "write_report_latency_ms", spec.system.writeReportLatencyMs);
        array.finish();
        doc.erase("array");
    }

    if (doc.count("workload")) {
        spec.hasWorkload = true;
        SectionReader w("workload", doc["workload"]);
        auto& s = spec.workload;
        s.name = w.word("name", s.name);
        s.devices = int(w.number("devices", s.devices));
        s.requests = std::size_t(w.number("requests", double(s.requests)));
        s.arrivalRatePerSec =
            w.number("arrival_rate", s.arrivalRatePerSec);
        s.burstiness = w.number("burstiness", s.burstiness);
        s.readFraction = w.number("read_fraction", s.readFraction);
        s.minSectors = int(w.number("min_sectors", s.minSectors));
        s.meanSectors = int(w.number("mean_sectors", s.meanSectors));
        s.maxSectors = int(w.number("max_sectors", s.maxSectors));
        s.sizeSigma = w.number("size_sigma", s.sizeSigma);
        s.sequentialFraction =
            w.number("sequential_fraction", s.sequentialFraction);
        s.regions = int(w.number("regions", s.regions));
        s.zipfTheta = w.number("zipf_theta", s.zipfTheta);
        s.deviceZipfTheta =
            w.number("device_zipf_theta", s.deviceZipfTheta);
        s.seed = std::uint64_t(w.number("seed", double(s.seed)));
        w.finish();
        doc.erase("workload");
    }
}

ExperimentSpec
loadExperimentSpec(const std::string& path)
{
    std::ifstream in(path);
    HDDTHERM_REQUIRE(bool(in), "cannot open spec file: " + path);
    std::ostringstream text;
    text << in.rdbuf();
    return parseExperimentSpec(text.str());
}

std::string
formatExperimentSpec(const ExperimentSpec& spec)
{
    std::ostringstream out;
    const auto& d = spec.system.disk;
    out << "# HDDTherm experiment description\n"
        << "[disk]\n"
        << "diameter_in = " << d.geometry.diameterInches << "\n"
        << "platters = " << d.geometry.platters << "\n"
        << "kbpi = " << d.tech.bpi / 1e3 << "\n"
        << "ktpi = " << d.tech.tpi / 1e3 << "\n"
        << "zones = " << d.zones << "\n"
        << "rpm = " << d.rpm << "\n"
        << "head_switch_ms = " << d.headSwitchMs << "\n"
        << "controller_overhead_ms = " << d.controllerOverheadMs << "\n"
        << "bus_mbps = " << d.busMBps << "\n"
        << "cache_mb = " << double(d.cacheBytes) / (1 << 20) << "\n"
        << "cache_segments = " << d.cacheSegments << "\n"
        << "read_ahead = " << (d.readAheadToTrackEnd ? "true" : "false")
        << "\n"
        << "scheduler = " << schedulerWord(d.scheduler) << "\n"
        << "rpm_change_s_per_krpm = " << d.rpmChangeSecPerKrpm << "\n\n"
        << "[array]\n"
        << "disks = " << spec.system.disks << "\n"
        << "raid = " << raidWord(spec.system.raid) << "\n"
        << "stripe_sectors = " << spec.system.stripeSectors << "\n"
        << "immediate_write_report = "
        << (spec.system.immediateWriteReport ? "true" : "false") << "\n"
        << "write_report_latency_ms = "
        << spec.system.writeReportLatencyMs << "\n";
    if (spec.hasWorkload) {
        const auto& s = spec.workload;
        out << "\n[workload]\n"
            << "name = " << s.name << "\n"
            << "devices = " << s.devices << "\n"
            << "requests = " << s.requests << "\n"
            << "arrival_rate = " << s.arrivalRatePerSec << "\n"
            << "burstiness = " << s.burstiness << "\n"
            << "read_fraction = " << s.readFraction << "\n"
            << "min_sectors = " << s.minSectors << "\n"
            << "mean_sectors = " << s.meanSectors << "\n"
            << "max_sectors = " << s.maxSectors << "\n"
            << "size_sigma = " << s.sizeSigma << "\n"
            << "sequential_fraction = " << s.sequentialFraction << "\n"
            << "regions = " << s.regions << "\n"
            << "zipf_theta = " << s.zipfTheta << "\n"
            << "device_zipf_theta = " << s.deviceZipfTheta << "\n"
            << "seed = " << s.seed << "\n";
    }
    return out.str();
}

bool
saveExperimentSpec(const ExperimentSpec& spec, const std::string& path)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << formatExperimentSpec(spec);
    return bool(out);
}

fault::FaultSchedule
parseFaultSchedule(const std::string& text)
{
    Document doc = parseDocument(text);

    std::uint64_t noise_seed = 0;
    if (doc.count("schedule")) {
        SectionReader s("schedule", doc["schedule"]);
        noise_seed = std::uint64_t(s.number("noise_seed", 0.0));
        s.finish();
        doc.erase("schedule");
    }

    // Events come as [fault.N] sections; replay them in N order (the map
    // iterates lexically, which would put fault.10 before fault.2).
    std::vector<std::pair<long, std::string>> order;
    for (const auto& [name, _] : doc) {
        HDDTHERM_REQUIRE(name.rfind("fault.", 0) == 0,
                         "unknown section [" + name +
                             "] in fault schedule");
        const std::string digits = name.substr(6);
        HDDTHERM_REQUIRE(!digits.empty() &&
                             std::all_of(digits.begin(), digits.end(),
                                         [](unsigned char c) {
                                             return std::isdigit(c) != 0;
                                         }),
                         "bad fault section index: [" + name + "]");
        // std::stol throws std::out_of_range (not ModelError) on an
        // absurdly long digit run; keep parse failures in one exception
        // family so callers can catch configuration errors uniformly.
        long fault_index = 0;
        try {
            fault_index = std::stol(digits);
        } catch (const std::exception&) {
            throw util::ModelError("fault section index out of range: [" +
                                   name + "]");
        }
        order.emplace_back(fault_index, name);
    }
    std::sort(order.begin(), order.end());

    std::vector<fault::FaultEvent> events;
    events.reserve(order.size());
    for (const auto& [index, name] : order) {
        (void)index;
        SectionReader s(name, doc[name]);
        fault::FaultEvent e;
        e.timeSec = s.number("at", std::nan(""));
        HDDTHERM_REQUIRE(std::isfinite(e.timeSec),
                         "[" + name + "] missing onset time 'at'");
        const std::string kind_word = s.word("kind", "");
        HDDTHERM_REQUIRE(!kind_word.empty(),
                         "[" + name + "] missing 'kind'");
        e.kind = parseFaultKind(kind_word);
        if (const char* key = faultValueKey(e.kind)) {
            e.value = s.number(key, std::nan(""));
            HDDTHERM_REQUIRE(std::isfinite(e.value),
                             "[" + name + "] " + kind_word +
                                 " needs a '" + key + "' value");
        }
        e.durationSec = s.number("duration", 0.0);
        e.target = int(s.number("target", -1.0));
        s.finish();
        events.push_back(e);
    }
    fault::FaultSchedule schedule(std::move(events), noise_seed);
    return schedule;
}

fault::FaultSchedule
loadFaultSchedule(const std::string& path)
{
    std::ifstream in(path);
    HDDTHERM_REQUIRE(bool(in), "cannot open fault schedule: " + path);
    std::ostringstream text;
    text << in.rdbuf();
    return parseFaultSchedule(text.str());
}

std::string
formatFaultSchedule(const fault::FaultSchedule& schedule)
{
    std::ostringstream out;
    out << "# HDDTherm fault schedule\n"
        << "[schedule]\n"
        << "noise_seed = " << schedule.noiseSeed() << "\n";
    int index = 0;
    for (const auto& e : schedule.events()) {
        out << "\n[fault." << index++ << "]\n"
            << "at = " << e.timeSec << "\n"
            << "kind = " << fault::faultKindName(e.kind) << "\n";
        if (const char* key = faultValueKey(e.kind))
            out << key << " = " << e.value << "\n";
        if (e.durationSec > 0.0)
            out << "duration = " << e.durationSec << "\n";
        if (e.target >= 0)
            out << "target = " << e.target << "\n";
    }
    return out.str();
}

bool
saveFaultSchedule(const fault::FaultSchedule& schedule,
                  const std::string& path)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << formatFaultSchedule(schedule);
    return bool(out);
}

} // namespace hddtherm::core
