/**
 * @file
 * Drive energy accounting from simulated activity.
 *
 * Combines the calibrated power model (spindle loss, windage, VCM power)
 * with the simulator's activity counters: the spindle spins — and churns
 * air — for the whole interval, while the VCM only draws power during
 * seeks.  This is the bridge between the paper's thermal view and the
 * energy view of its DRPM lineage (Gurumurthi et al., ISCA 2003).
 */
#ifndef HDDTHERM_CORE_ENERGY_H
#define HDDTHERM_CORE_ENERGY_H

#include "hdd/geometry.h"
#include "sim/disk.h"

namespace hddtherm::core {

/// Energy consumed by one drive over an interval.
struct EnergyBreakdown
{
    double spindleJ = 0.0; ///< SPM motor loss over the interval.
    double windageJ = 0.0; ///< Viscous dissipation over the interval.
    double vcmJ = 0.0;     ///< Actuator energy (seek time x VCM power).

    /// Total energy in joules.
    double totalJ() const { return spindleJ + windageJ + vcmJ; }

    /// Mean power over the accounted interval (0 for empty intervals).
    double meanPowerW(double elapsed_sec) const
    {
        return elapsed_sec > 0.0 ? totalJ() / elapsed_sec : 0.0;
    }
};

/**
 * Account the energy of a drive that ran for @p elapsed_sec.
 *
 * @param geometry platter stack of the drive.
 * @param rpm spindle speed held over the interval.
 * @param activity simulator activity counters (seekSec drives VCM energy).
 * @param elapsed_sec wall-clock interval covered by @p activity.
 */
EnergyBreakdown accountEnergy(const hdd::PlatterGeometry& geometry,
                              double rpm, const sim::DiskActivity& activity,
                              double elapsed_sec);

} // namespace hddtherm::core

#endif // HDDTHERM_CORE_ENERGY_H
