/**
 * @file
 * The integrated drive model — the paper's primary contribution (§3): one
 * evaluation that couples capacity, performance and thermal behaviour of a
 * drive design point.
 */
#ifndef HDDTHERM_CORE_INTEGRATED_H
#define HDDTHERM_CORE_INTEGRATED_H

#include "hdd/capacity.h"
#include "hdd/geometry.h"
#include "hdd/recording.h"
#include "hdd/seek.h"
#include "hdd/zoning.h"
#include "thermal/envelope.h"

namespace hddtherm::core {

/// A complete drive design point.
struct DriveDesign
{
    hdd::PlatterGeometry geometry;     ///< Platter size/count.
    hdd::RecordingTech tech{533e3, 64e3}; ///< Recording point.
    int zones = hdd::kDefaultZones;    ///< ZBR zones.
    double rpm = 15000.0;              ///< Spindle speed.
    hdd::FormFactor enclosure = hdd::FormFactor::ff35();
    double ambientC = thermal::kBaselineAmbientC;
    double coolingScale = 1.0;         ///< External-cooling multiplier.

    /// Lay out the design's recording surfaces.
    hdd::ZoneModel layout() const
    {
        return hdd::ZoneModel(geometry, tech, zones);
    }

    /// Thermal configuration of the design.
    thermal::DriveThermalConfig thermalConfig() const
    {
        thermal::DriveThermalConfig cfg;
        cfg.geometry = geometry;
        cfg.enclosure = enclosure;
        cfg.rpm = rpm;
        cfg.ambientC = ambientC;
        cfg.coolingScale = coolingScale;
        return cfg;
    }
};

/// Everything the integrated model says about a design point.
struct DriveEvaluation
{
    hdd::CapacityBreakdown capacity;   ///< Raw/ZBR/user capacity.
    double idrMBps = 0.0;              ///< Max internal data rate.
    hdd::SeekProfile seek;             ///< Seek curve parameters.
    double avgRotationalLatencyMs = 0.0; ///< Half a revolution.
    double steadyAirTempC = 0.0;       ///< Worst-case (VCM-on) steady temp.
    bool withinEnvelope = false;       ///< steadyAirTempC <= envelope.
    double viscousPowerW = 0.0;        ///< Windage at the design RPM.
    double vcmPowerW = 0.0;            ///< Actuator power.
    double spmPowerW = 0.0;            ///< Spindle motor loss.
    double maxRpmWithinEnvelope = 0.0; ///< Thermal speed ceiling.
};

/// Evaluate a design against the default 45.22 °C envelope.
DriveEvaluation evaluateDesign(const DriveDesign& design,
                               double envelope_c =
                                   thermal::kThermalEnvelopeC);

/**
 * Choose a platter geometry whose user capacity under @p tech comes
 * closest to @p target_gb, searching the paper-era diameters
 * {1.6, 2.1, 2.6, 3.0, 3.3, 3.7} and 1-12 platters.  Used to reconstruct
 * the drives behind the Figure 4 traces from their published capacities.
 */
hdd::PlatterGeometry geometryForCapacity(const hdd::RecordingTech& tech,
                                         double target_gb,
                                         int zones = hdd::kDefaultZones);

} // namespace hddtherm::core

#endif // HDDTHERM_CORE_INTEGRATED_H
