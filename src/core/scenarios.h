/**
 * @file
 * The five server-workload scenarios of the paper's Figure 4.
 *
 * Each scenario reconstructs the storage system of Figure 4(a) — disk
 * count, RAID organization, per-disk capacity for the trace's year, 4 MB
 * drive caches, 30 ZBR zones — and pairs it with a synthetic workload
 * tuned to the trace's published characteristics (see DESIGN.md §2).
 * The experiment sweeps the spindle speed from the baseline in +5000 RPM
 * steps, ignoring thermal limits, exactly as §5.1 does.
 */
#ifndef HDDTHERM_CORE_SCENARIOS_H
#define HDDTHERM_CORE_SCENARIOS_H

#include <string>
#include <vector>

#include "sim/storage_system.h"
#include "trace/synth.h"

namespace hddtherm::core {

/// One Figure 4 scenario.
struct WorkloadScenario
{
    std::string name;             ///< Trace name (paper Figure 4(a)).
    int year = 2000;              ///< Year the trace was collected.
    double paperDiskCapacityGB = 0.0; ///< Published per-disk capacity.
    double baseRpm = 10000.0;     ///< Published baseline spindle speed.
    /// Paper's average response times at base, +5K, +10K, +15K RPM (ms).
    std::vector<double> paperAvgResponseMs;

    trace::WorkloadSpec workload; ///< Synthetic-trace parameters.
    sim::SystemConfig system;     ///< Reconstructed storage system.

    /// The swept spindle speeds: base + {0, 5000, 10000, 15000}.
    std::vector<double> rpmSteps() const
    {
        return {baseRpm, baseRpm + 5000.0, baseRpm + 10000.0,
                baseRpm + 15000.0};
    }

    /// Generate the scenario's trace (deterministic for a fixed spec).
    trace::Trace makeTrace() const;

    /**
     * Run the scenario at @p rpm and return the response metrics.
     * @param requests overrides the spec's request count when nonzero.
     */
    sim::ResponseMetrics run(double rpm, std::size_t requests = 0) const;
};

/**
 * All five scenarios (Openmail, OLTP, Search-Engine, TPC-C, TPC-H).
 *
 * @param requests per-scenario synthetic request count (the published
 *        traces hold 3-6 M requests; the default keeps experiment runtime
 *        interactive while the CDFs are already smooth).
 */
std::vector<WorkloadScenario> figure4Scenarios(std::size_t requests = 60000);

/// Look up one scenario by name ("Openmail", "OLTP", "Search-Engine",
/// "TPC-C", "TPC-H").
WorkloadScenario figure4Scenario(const std::string& name,
                                 std::size_t requests = 60000);

} // namespace hddtherm::core

#endif // HDDTHERM_CORE_SCENARIOS_H
