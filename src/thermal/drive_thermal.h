/**
 * @file
 * The four-component drive thermal model (paper §3.3).
 *
 * Following Clauss/Eibeck, the drive is lumped into four components plus
 * the externally cooled ambient boundary:
 *   - the internal drive air (heated directly by viscous dissipation),
 *   - the spindle-motor assembly: motor hub and platters,
 *   - the base and cover castings,
 *   - the voice-coil motor and disk arms.
 * Convection couples the solids to the internal air with film coefficients
 * from the rotating-disk correlations; conduction couples the spindle
 * bearing and the actuator pivot to the base; the base convects to the
 * outside air, which a cooling system holds at a constant temperature.
 *
 * The model is calibrated once, lazily, against the paper's published
 * anchors (see calibration.h); the calibrated quantities are the external
 * film coefficient and the per-size SPM motor losses.
 */
#ifndef HDDTHERM_THERMAL_DRIVE_THERMAL_H
#define HDDTHERM_THERMAL_DRIVE_THERMAL_H

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "hdd/geometry.h"
#include "thermal/calibration.h"
#include "thermal/network.h"

namespace hddtherm::snap {
class StateWriter;
class StateReader;
} // namespace hddtherm::snap

namespace hddtherm::thermal {

/// Static + operating configuration for the drive thermal model.
struct DriveThermalConfig
{
    hdd::PlatterGeometry geometry;   ///< Platter diameter/count.
    hdd::FormFactor enclosure = hdd::FormFactor::ff35();
    double rpm = 15000.0;            ///< Spindle speed.
    double ambientC = kBaselineAmbientC; ///< External (wet-bulb) ambient.
    double vcmDuty = 1.0;            ///< Fraction of time the VCM is on.
    double coolingScale = 1.0;       ///< Multiplier on external conductance.

    /// Optional overrides of the calibrated powers (used by tests and by
    /// the calibration procedure itself).
    std::optional<double> vcmPowerOverrideW;
    std::optional<double> spmPowerOverrideW;

    /// Optional override of the calibrated external film coefficient,
    /// W/(m^2 K); useful for cooling-technology ablations.
    std::optional<double> externalFilmOverride;
};

/// The drive thermal model: a configured 5-node ThermalNetwork.
class DriveThermalModel
{
  public:
    /// Build the network; all free nodes start at the ambient temperature.
    explicit DriveThermalModel(const DriveThermalConfig& config);

    /// @name Operating-state mutators (rebuild RPM/duty-dependent terms).
    /// @{
    void setRpm(double rpm);
    void setVcmDuty(double duty);
    void setAmbient(double ambient_c);
    /// @}

    /// @name Fault-injection overrides (hddtherm_fault hook points).
    /// All default to the no-fault identity, under which the model is
    /// bit-identical to one without the overrides.
    /// @{
    /**
     * Scale the external (base-to-ambient) convective conductance by
     * @p scale (> 0): a degraded fan moves less air over the case.
     * Composes multiplicatively with config().coolingScale.
     */
    void setCoolingFaultScale(double scale);
    double coolingFaultScale() const { return cooling_fault_scale_; }

    /// Offset the effective external ambient by @p delta_c without
    /// touching the nominal config().ambientC (ambient spike/step faults).
    void setAmbientOffsetC(double delta_c);
    double ambientOffsetC() const { return ambient_offset_c_; }

    /// Ambient the network actually sees: nominal plus fault offset.
    double effectiveAmbientC() const
    {
        return config_.ambientC + ambient_offset_c_;
    }

    /**
     * Power the drive on/off (bay kill/restore).  Off, every heat source
     * reads zero and the enclosure cools toward ambient through its
     * calibrated paths (the film coefficients keep their rotating values —
     * a conservative simplification documented in docs/faults.md).
     */
    void setPowered(bool on);
    bool powered() const { return powered_; }
    /// @}

    /// Current configuration.
    const DriveThermalConfig& config() const { return config_; }

    /// @name Heat sources at the current operating point, in watts.
    /// @{
    double viscousPowerW() const;
    double vcmPowerW() const;   ///< Duty-scaled VCM power.
    double spmPowerW() const;
    double totalPowerW() const;
    /// @}

    /// Current (transient) internal air temperature.
    double airTempC() const;

    /// Steady-state internal air temperature at the current operating
    /// point; does not disturb the transient state.
    double steadyAirTempC() const;

    /// Steady-state temperatures of [air, spindle, base, vcm].
    std::vector<double> steadyTemps() const;

    /// One steady-state heat flow along a network path, in watts.
    struct HeatFlow
    {
        std::string path;   ///< e.g. "spindle->air".
        double watts = 0.0; ///< Positive along the named direction.
    };

    /**
     * Steady-state heat flows along every edge of the drive network — the
     * "where does the heat go" breakdown.  Their signed sum into the
     * ambient equals totalPowerW() (energy conservation, tested).
     */
    std::vector<HeatFlow> steadyHeatFlows() const;

    /// Reset every free node to @p temp_c (cold start).
    void reset(double temp_c);

    /// Jump the transient state to the steady state.
    void settle();

    /**
     * Place the drive on its current operating point's warm-up trajectory
     * at the moment the air temperature equals @p air_temp_c: the steady
     * profile shifted uniformly (the air node couples only to the solids,
     * so the shifted profile keeps the air in quasi-equilibrium).  This is
     * the "just reached the envelope" state the throttling experiments
     * start from.
     */
    void settleWithAirAt(double air_temp_c);

    /**
     * Integrate the transient for @p duration seconds with step @p dt
     * (default: the paper's 600 steps/minute), invoking @p observer after
     * each step with (elapsed seconds, air temperature °C).
     */
    void advance(double duration, double dt = kPaperTimestepSec,
                 const std::function<void(double, double)>& observer =
                     nullptr);

    /**
     * Kernel-facing stepping: integrate the transient from the model's
     * clock (the time of the previous advanceTo) up to absolute simulated
     * time @p t, with step at most @p max_dt, and move the clock to @p t.
     * The simulation kernel's fixed-step thermal domain consumes this
     * instead of owning an integration loop: each control tick advances
     * the model to the tick's timestamp.  @p t must not precede the
     * clock; equal time is a no-op.
     */
    void advanceTo(double t, double max_dt = kPaperTimestepSec);

    /// Absolute time the transient state corresponds to (advanceTo's).
    double clockSec() const { return clock_sec_; }

    /// Re-anchor the clock (e.g. reusing a model across runs).
    void resetClock(double t = 0.0) { clock_sec_ = t; }

    /// Underlying network (e.g. to inspect per-node temperatures).
    const ThermalNetwork& network() const { return net_; }

    /// @name Node handles within network().
    /// @{
    ThermalNetwork::NodeId airNode() const { return air_; }
    ThermalNetwork::NodeId spindleNode() const { return spindle_; }
    ThermalNetwork::NodeId baseNode() const { return base_; }
    ThermalNetwork::NodeId vcmNode() const { return vcm_; }
    ThermalNetwork::NodeId ambientNode() const { return ambient_; }
    /// @}

    /**
     * Calibrated external film coefficient, W/(m^2 K), shared by all
     * configurations (exposed for diagnostics/tests).
     */
    static double calibratedExternalFilmCoefficient();

    /// @name Checkpoint/restore
    /// @{

    /// Serialize the operating point, fault overrides, clock, and the
    /// transient node state.
    void saveState(snap::StateWriter& w) const;

    /// Restore state written by saveState (rebuilds the operating point,
    /// then overwrites the transient node state bitwise).
    void loadState(snap::StateReader& r);

    /// @}

  private:
    void rebuildOperatingPoint();

    DriveThermalConfig config_;
    double clock_sec_ = 0.0;
    double cooling_fault_scale_ = 1.0;
    double ambient_offset_c_ = 0.0;
    bool powered_ = true;
    ThermalNetwork net_;
    ThermalNetwork::NodeId air_ = -1;
    ThermalNetwork::NodeId spindle_ = -1;
    ThermalNetwork::NodeId base_ = -1;
    ThermalNetwork::NodeId vcm_ = -1;
    ThermalNetwork::NodeId ambient_ = -1;
};

/// Steady-state internal air temperature for a configuration (convenience).
double steadyAirTempC(const DriveThermalConfig& config);

} // namespace hddtherm::thermal

#endif // HDDTHERM_THERMAL_DRIVE_THERMAL_H
