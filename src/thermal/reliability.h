/**
 * @file
 * Temperature-driven reliability scaling.
 *
 * The paper's motivation (§1, citing Anderson/Dykes/Riedel FAST'03): "even
 * a fifteen degree Celsius rise from the ambient temperature can double
 * the failure rate of a disk drive", and its closing remark: DTM can be
 * used purely "to reduce the average operating temperature for enhancing
 * reliability".  This module turns drive temperatures into relative
 * failure-rate factors so the DTM experiments can report reliability
 * alongside performance.
 */
#ifndef HDDTHERM_THERMAL_RELIABILITY_H
#define HDDTHERM_THERMAL_RELIABILITY_H

#include "thermal/calibration.h"

namespace hddtherm::thermal {

/// Temperature rise that doubles the failure rate (Anderson et al.).
inline constexpr double kFailureDoublingDeltaC = 15.0;

/**
 * Relative failure-rate factor of operating at @p temp_c versus the
 * reference temperature: 2^((T - T_ref) / 15).  Factor 1 at the
 * reference; 2 per 15 C of additional heat; symmetric credit below it.
 */
double failureRateFactor(double temp_c,
                         double reference_c = kBaselineAmbientC);

/**
 * Relative mean-time-to-failure of operating at @p temp_c versus the
 * reference (the reciprocal of failureRateFactor()).
 */
double mttfFactor(double temp_c, double reference_c = kBaselineAmbientC);

/**
 * Annualized failure rate at @p temp_c given the AFR observed at the
 * reference temperature.
 *
 * @param base_afr AFR at reference_c, as a fraction (e.g. 0.02 = 2 %/yr).
 */
double annualizedFailureRate(double temp_c, double base_afr,
                             double reference_c = kBaselineAmbientC);

} // namespace hddtherm::thermal

#endif // HDDTHERM_THERMAL_RELIABILITY_H
