#include "thermal/network.h"

#include <algorithm>
#include <cmath>

#include "snap/state.h"
#include "util/error.h"

namespace hddtherm::thermal {

ThermalNetwork::NodeId
ThermalNetwork::addNode(std::string name, double capacitance_j_per_k,
                        double initial_temp_c)
{
    HDDTHERM_REQUIRE(capacitance_j_per_k > 0.0,
                     "free nodes need positive heat capacity");
    nodes_.push_back(
        {std::move(name), capacitance_j_per_k, initial_temp_c, 0.0, false});
    return int(nodes_.size()) - 1;
}

ThermalNetwork::NodeId
ThermalNetwork::addBoundaryNode(std::string name, double temp_c)
{
    nodes_.push_back({std::move(name), 0.0, temp_c, 0.0, true});
    return int(nodes_.size()) - 1;
}

void
ThermalNetwork::setConductance(NodeId a, NodeId b, double conductance_w_per_k)
{
    HDDTHERM_REQUIRE(a >= 0 && a < size() && b >= 0 && b < size() && a != b,
                     "setConductance: invalid node pair");
    HDDTHERM_REQUIRE(conductance_w_per_k >= 0.0,
                     "conductance must be non-negative");
    for (auto& e : edges_) {
        if ((e.a == a && e.b == b) || (e.a == b && e.b == a)) {
            e.g = conductance_w_per_k;
            return;
        }
    }
    edges_.push_back({a, b, conductance_w_per_k});
}

double
ThermalNetwork::conductance(NodeId a, NodeId b) const
{
    for (const auto& e : edges_) {
        if ((e.a == a && e.b == b) || (e.a == b && e.b == a))
            return e.g;
    }
    return 0.0;
}

void
ThermalNetwork::setHeatInput(NodeId node, double watts)
{
    HDDTHERM_REQUIRE(node >= 0 && node < size(), "invalid node");
    HDDTHERM_REQUIRE(!nodes_[std::size_t(node)].boundary,
                     "cannot inject heat into a boundary node");
    nodes_[std::size_t(node)].heatInputW = watts;
}

double
ThermalNetwork::heatInput(NodeId node) const
{
    HDDTHERM_REQUIRE(node >= 0 && node < size(), "invalid node");
    return nodes_[std::size_t(node)].heatInputW;
}

double
ThermalNetwork::temperature(NodeId node) const
{
    HDDTHERM_REQUIRE(node >= 0 && node < size(), "invalid node");
    return nodes_[std::size_t(node)].temperatureC;
}

void
ThermalNetwork::setTemperature(NodeId node, double temp_c)
{
    HDDTHERM_REQUIRE(node >= 0 && node < size(), "invalid node");
    nodes_[std::size_t(node)].temperatureC = temp_c;
}

void
ThermalNetwork::setAllTemperatures(double temp_c)
{
    for (auto& n : nodes_) {
        if (!n.boundary)
            n.temperatureC = temp_c;
    }
}

void
ThermalNetwork::shiftFreeTemperatures(double delta_c)
{
    for (auto& n : nodes_) {
        if (!n.boundary)
            n.temperatureC += delta_c;
    }
}

const ThermalNode&
ThermalNetwork::node(NodeId id) const
{
    HDDTHERM_REQUIRE(id >= 0 && id < size(), "invalid node");
    return nodes_[std::size_t(id)];
}

std::vector<double>
ThermalNetwork::solveLinear(std::vector<std::vector<double>> a,
                            std::vector<double> b) const
{
    // Dense Gaussian elimination with partial pivoting; the networks here
    // have a handful of nodes, so this is both simple and fast.
    const auto n = b.size();
    for (std::size_t col = 0; col < n; ++col) {
        std::size_t pivot = col;
        for (std::size_t r = col + 1; r < n; ++r) {
            if (std::fabs(a[r][col]) > std::fabs(a[pivot][col]))
                pivot = r;
        }
        HDDTHERM_REQUIRE(std::fabs(a[pivot][col]) > 1e-14,
                         "thermal network is singular (isolated node?)");
        std::swap(a[col], a[pivot]);
        std::swap(b[col], b[pivot]);
        for (std::size_t r = col + 1; r < n; ++r) {
            const double f = a[r][col] / a[col][col];
            if (f == 0.0)
                continue;
            for (std::size_t c = col; c < n; ++c)
                a[r][c] -= f * a[col][c];
            b[r] -= f * b[col];
        }
    }
    std::vector<double> x(n, 0.0);
    for (std::size_t i = n; i-- > 0;) {
        double s = b[i];
        for (std::size_t c = i + 1; c < n; ++c)
            s -= a[i][c] * x[c];
        x[i] = s / a[i][i];
    }
    return x;
}

std::vector<double>
ThermalNetwork::steadyState() const
{
    // Index the free nodes.
    std::vector<int> free_index(nodes_.size(), -1);
    int nf = 0;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        if (!nodes_[i].boundary)
            free_index[i] = nf++;
    }
    if (nf == 0) {
        std::vector<double> out;
        out.reserve(nodes_.size());
        for (const auto& n : nodes_)
            out.push_back(n.temperatureC);
        return out;
    }

    // Energy balance per free node i: sum_j G_ij (T_j - T_i) + Q_i = 0.
    std::vector<std::vector<double>> a(std::size_t(nf),
                                       std::vector<double>(std::size_t(nf),
                                                           0.0));
    std::vector<double> b(std::size_t(nf), 0.0);
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        if (free_index[i] >= 0)
            b[std::size_t(free_index[i])] = nodes_[i].heatInputW;
    }
    for (const auto& e : edges_) {
        const int fa = free_index[std::size_t(e.a)];
        const int fb = free_index[std::size_t(e.b)];
        if (fa >= 0) {
            a[std::size_t(fa)][std::size_t(fa)] += e.g;
            if (fb >= 0) {
                a[std::size_t(fa)][std::size_t(fb)] -= e.g;
            } else {
                b[std::size_t(fa)] +=
                    e.g * nodes_[std::size_t(e.b)].temperatureC;
            }
        }
        if (fb >= 0) {
            a[std::size_t(fb)][std::size_t(fb)] += e.g;
            if (fa >= 0) {
                a[std::size_t(fb)][std::size_t(fa)] -= e.g;
            } else {
                b[std::size_t(fb)] +=
                    e.g * nodes_[std::size_t(e.a)].temperatureC;
            }
        }
    }

    const auto x = solveLinear(std::move(a), std::move(b));
    std::vector<double> out;
    out.reserve(nodes_.size());
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        out.push_back(free_index[i] >= 0 ? x[std::size_t(free_index[i])]
                                         : nodes_[i].temperatureC);
    }
    return out;
}

void
ThermalNetwork::settleToSteadyState()
{
    const auto temps = steadyState();
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        if (!nodes_[i].boundary)
            nodes_[i].temperatureC = temps[i];
    }
}

void
ThermalNetwork::step(double dt)
{
    HDDTHERM_REQUIRE(dt > 0.0, "step size must be positive");

    std::vector<int> free_index(nodes_.size(), -1);
    int nf = 0;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        if (!nodes_[i].boundary)
            free_index[i] = nf++;
    }
    if (nf == 0)
        return;

    // Backward Euler: (C/dt) (T' - T) = Q + sum_j G_ij (T'_j - T'_i)
    //  => (C/dt + sum G) T'_i - sum_j G_ij T'_j = (C/dt) T_i + Q_i + G*Tb.
    std::vector<std::vector<double>> a(std::size_t(nf),
                                       std::vector<double>(std::size_t(nf),
                                                           0.0));
    std::vector<double> b(std::size_t(nf), 0.0);
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        const int fi = free_index[i];
        if (fi < 0)
            continue;
        const double cdt = nodes_[i].capacitance / dt;
        a[std::size_t(fi)][std::size_t(fi)] += cdt;
        b[std::size_t(fi)] += cdt * nodes_[i].temperatureC +
                              nodes_[i].heatInputW;
    }
    for (const auto& e : edges_) {
        const int fa = free_index[std::size_t(e.a)];
        const int fb = free_index[std::size_t(e.b)];
        if (fa >= 0) {
            a[std::size_t(fa)][std::size_t(fa)] += e.g;
            if (fb >= 0) {
                a[std::size_t(fa)][std::size_t(fb)] -= e.g;
            } else {
                b[std::size_t(fa)] +=
                    e.g * nodes_[std::size_t(e.b)].temperatureC;
            }
        }
        if (fb >= 0) {
            a[std::size_t(fb)][std::size_t(fb)] += e.g;
            if (fa >= 0) {
                a[std::size_t(fb)][std::size_t(fa)] -= e.g;
            } else {
                b[std::size_t(fb)] +=
                    e.g * nodes_[std::size_t(e.a)].temperatureC;
            }
        }
    }

    const auto x = solveLinear(std::move(a), std::move(b));
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        if (free_index[i] >= 0)
            nodes_[i].temperatureC = x[std::size_t(free_index[i])];
    }
}

void
ThermalNetwork::advance(
    double duration, double dt,
    const std::function<void(double, const ThermalNetwork&)>& observer)
{
    HDDTHERM_REQUIRE(duration >= 0.0 && dt > 0.0, "invalid advance request");
    double elapsed = 0.0;
    while (elapsed < duration) {
        const double h = std::min(dt, duration - elapsed);
        step(h);
        elapsed += h;
        if (observer)
            observer(elapsed, *this);
    }
}


void
ThermalNetwork::saveState(snap::StateWriter& w) const
{
    std::vector<double> temps, heats;
    temps.reserve(nodes_.size());
    heats.reserve(nodes_.size());
    for (const auto& node : nodes_) {
        temps.push_back(node.temperatureC);
        heats.push_back(node.heatInputW);
    }
    w.f64vec("net.temps", temps);
    w.f64vec("net.heat", heats);
}

void
ThermalNetwork::loadState(snap::StateReader& r)
{
    const auto temps = r.f64vec("net.temps");
    const auto heats = r.f64vec("net.heat");
    HDDTHERM_REQUIRE(temps.size() == nodes_.size() &&
                         heats.size() == nodes_.size(),
                     "checkpoint section '" + r.section() +
                         "': thermal node count does not match this "
                         "run's configuration");
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        nodes_[i].temperatureC = temps[i];
        nodes_[i].heatInputW = heats[i];
    }
}

} // namespace hddtherm::thermal
