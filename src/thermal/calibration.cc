#include "thermal/calibration.h"

#include <cmath>

#include "util/error.h"
#include "util/interp.h"

namespace hddtherm::thermal {

double
viscousDissipationW(double rpm, double diameter_inches, int platters)
{
    HDDTHERM_REQUIRE(rpm >= 0.0, "rpm must be non-negative");
    HDDTHERM_REQUIRE(diameter_inches > 0.0, "diameter must be positive");
    HDDTHERM_REQUIRE(platters >= 1, "need at least one platter");
    return kViscRefWatts * double(platters) *
           std::pow(rpm / kViscRefRpm, kViscRpmExponent) *
           std::pow(diameter_inches / kViscRefDiameterIn,
                    kViscDiameterExponent);
}

double
vcmPowerW(double diameter_inches)
{
    HDDTHERM_REQUIRE(diameter_inches > 0.0, "diameter must be positive");
    // Anchors published in the paper (§3.3 and §5.2).  Between anchors we
    // interpolate linearly; outside we continue the boundary slope, floored
    // at a small positive actuator power.
    static const util::PiecewiseLinear anchors(
        {{1.6, 0.618}, {2.1, 2.28}, {2.6, 3.9}},
        util::PiecewiseLinear::Extrapolate::Linear);
    return std::max(0.05, anchors(diameter_inches));
}

} // namespace hddtherm::thermal
