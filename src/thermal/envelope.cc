#include "thermal/envelope.h"

#include <map>
#include <mutex>

#include "util/error.h"
#include "util/roots.h"

namespace hddtherm::thermal {

double
maxRpmWithinEnvelope(DriveThermalConfig config, double envelope_c,
                     const RpmRange& range)
{
    HDDTHERM_REQUIRE(range.lo > 0.0 && range.hi > range.lo,
                     "invalid RPM range");
    auto within = [&config, envelope_c](double rpm) {
        config.rpm = rpm;
        return steadyAirTempC(config) <= envelope_c;
    };
    if (!within(range.lo))
        return 0.0;
    return util::maxSatisfying(within, range.lo, range.hi, {0.5, 200});
}

double
coolingScaleForPlatters(int platters)
{
    HDDTHERM_REQUIRE(platters >= 1, "need at least one platter");
    if (platters == 1)
        return 1.0;

    static std::mutex mutex;
    static std::map<int, double> cache;
    std::lock_guard<std::mutex> lock(mutex);
    if (auto it = cache.find(platters); it != cache.end())
        return it->second;

    DriveThermalConfig cfg;
    cfg.geometry.diameterInches = 2.6;
    cfg.geometry.platters = platters;
    cfg.rpm = kEnvelopeRpm26;
    const double scale = util::bisect(
        [&cfg](double s) {
            cfg.coolingScale = s;
            return steadyAirTempC(cfg) - kThermalEnvelopeC;
        },
        1.0, 50.0, {1e-6, 200});
    cache.emplace(platters, scale);
    return scale;
}

} // namespace hddtherm::thermal
