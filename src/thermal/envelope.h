/**
 * @file
 * Thermal-envelope queries used by the roadmap and DTM layers (paper §4).
 */
#ifndef HDDTHERM_THERMAL_ENVELOPE_H
#define HDDTHERM_THERMAL_ENVELOPE_H

#include "thermal/drive_thermal.h"

namespace hddtherm::thermal {

/// RPM search range for envelope queries.
struct RpmRange
{
    double lo = 1000.0;
    double hi = 300000.0;
};

/**
 * Highest spindle speed for which the steady-state internal air temperature
 * of @p config (ignoring its rpm field) stays at or below @p envelope_c.
 *
 * @return the limiting RPM, or 0 if even the lowest RPM in @p range
 *         violates the envelope.
 */
double maxRpmWithinEnvelope(DriveThermalConfig config,
                            double envelope_c = kThermalEnvelopeC,
                            const RpmRange& range = {});

/**
 * External-cooling multiplier granted to an @p platters-platter stack so
 * that it matches the envelope at the start of the roadmap (paper §4: "we
 * provide different external cooling budgets for each of the three platter
 * counts in order to use the same thermal envelope").
 *
 * Solved so the 2.6" n-platter drive at the 1-platter envelope RPM
 * (15 020) sits exactly at the envelope.  Returns 1.0 for one platter.
 */
double coolingScaleForPlatters(int platters);

} // namespace hddtherm::thermal

#endif // HDDTHERM_THERMAL_ENVELOPE_H
