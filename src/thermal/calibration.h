/**
 * @file
 * Calibration constants anchoring the thermal model to the paper's data
 * (single source of truth; see DESIGN.md §5).
 *
 * The paper publishes enough operating points to pin the model down:
 *  - viscous dissipation 0.91 W at 15 098 RPM on one 2.6" platter, scaling
 *    as RPM^2.8 and diameter^4.8 and linearly in platter count (§3.3, §4.1);
 *  - VCM power 3.9 W at 2.6", 2.28 W at 2.1", 0.618 W at 1.6" (§3.3, §5.2);
 *  - the modeled Cheetah 15K.3 reaches a 45.22 °C steady state from a 28 °C
 *    ambient (§3.3) and 15 020 RPM is the highest envelope-respecting speed
 *    for that configuration (§5.3);
 *  - the 2002 temperatures of Table 3 for the 2.1" and 1.6" single-platter
 *    designs (43.56 °C at 18 692 RPM and 41.64 °C at 24 533 RPM).
 */
#ifndef HDDTHERM_THERMAL_CALIBRATION_H
#define HDDTHERM_THERMAL_CALIBRATION_H

namespace hddtherm::thermal {

/// The paper's thermal envelope (max internal air temperature) in °C,
/// excluding on-board electronics.
inline constexpr double kThermalEnvelopeC = 45.22;

/// Baseline external ambient (max wet-bulb) temperature, °C.
inline constexpr double kBaselineAmbientC = 28.0;

/// Viscous-dissipation reference point: watts per platter for a 2.6"
/// platter at 15 098 RPM (paper §4.1: "0.91 W in 2002").
inline constexpr double kViscRefWatts = 0.91;
inline constexpr double kViscRefRpm = 15098.0;
inline constexpr double kViscRefDiameterIn = 2.6;

/// Exponents of the viscous-dissipation power law (paper §3.3).
inline constexpr double kViscRpmExponent = 2.8;
inline constexpr double kViscDiameterExponent = 4.8;

/// Highest RPM of the 1-platter 2.6" design inside the envelope (§5.3).
inline constexpr double kEnvelopeRpm26 = 15020.0;

/// Finite-difference resolution the paper found sufficient (§3.3):
/// 600 steps per minute, i.e. 0.1 s.
inline constexpr double kPaperTimestepSec = 0.1;

/**
 * Viscous (windage) dissipation in watts for a platter stack.
 *
 * @param rpm spindle speed.
 * @param diameter_inches platter diameter.
 * @param platters platter count (linear scaling, §3.3).
 */
double viscousDissipationW(double rpm, double diameter_inches, int platters);

/**
 * Voice-coil-motor power in watts for a platter diameter, from the paper's
 * published anchors with a power-law fit for other sizes.
 */
double vcmPowerW(double diameter_inches);

/**
 * Spindle-motor loss (copper/iron/bearing, excluding windage) in watts.
 * Solved from the paper's 2002 temperature anchors; varies mildly with
 * platter size (≈10.2–10.9 W across 2.6"–1.6").
 */
double spmMotorLossW(double diameter_inches);

} // namespace hddtherm::thermal

#endif // HDDTHERM_THERMAL_CALIBRATION_H
