#include "thermal/correlations.h"

#include <cmath>

#include "util/error.h"
#include "util/units.h"

namespace hddtherm::thermal {

double
rotatingDiskReynolds(double rpm, double radius_m, const AirProperties& air)
{
    HDDTHERM_REQUIRE(rpm >= 0.0 && radius_m > 0.0,
                     "invalid Reynolds arguments");
    const double omega = util::rpmToRadPerSec(rpm);
    return omega * radius_m * radius_m / air.kinematicViscosity;
}

double
rotatingDiskFilmCoefficient(double rpm, double radius_m,
                            const AirProperties& air)
{
    const double re = rotatingDiskReynolds(rpm, radius_m, air);
    if (re <= 0.0)
        return 0.0;
    double nu;
    if (re <= kDiskTransitionRe) {
        nu = 0.36 * std::sqrt(re);
    } else {
        // Continuity-preserving turbulent branch: matches the laminar value
        // at the transition, then grows with the turbulent 0.8 exponent.
        const double nu_c = 0.36 * std::sqrt(kDiskTransitionRe);
        nu = nu_c * std::pow(re / kDiskTransitionRe, 0.8);
    }
    return nu * air.conductivity / radius_m;
}

double
stirredSurfaceFilmCoefficient(double rpm, double radius_m, double scale,
                              double floor_h, const AirProperties& air)
{
    HDDTHERM_REQUIRE(scale >= 0.0 && floor_h >= 0.0,
                     "invalid stirred-surface arguments");
    return floor_h + scale * rotatingDiskFilmCoefficient(rpm, radius_m, air);
}

double
airMassFlowFromCfm(double cfm, const AirProperties& air)
{
    HDDTHERM_REQUIRE(cfm >= 0.0, "airflow must be non-negative");
    constexpr double cubic_feet_to_m3 = 0.0283168466;
    return cfm * cubic_feet_to_m3 / 60.0 * air.density;
}

double
exhaustTempRiseC(double power_w, double mass_flow_kg_s,
                 const AirProperties& air)
{
    HDDTHERM_REQUIRE(power_w >= 0.0, "heat load must be non-negative");
    HDDTHERM_REQUIRE(mass_flow_kg_s > 0.0, "mass flow must be positive");
    return power_w / (mass_flow_kg_s * air.specificHeat);
}

} // namespace hddtherm::thermal
