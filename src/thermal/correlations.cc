#include "thermal/correlations.h"

#include <cmath>

#include "util/error.h"
#include "util/units.h"

namespace hddtherm::thermal {

double
rotatingDiskReynolds(double rpm, double radius_m, const AirProperties& air)
{
    HDDTHERM_REQUIRE(rpm >= 0.0 && radius_m > 0.0,
                     "invalid Reynolds arguments");
    const double omega = util::rpmToRadPerSec(rpm);
    return omega * radius_m * radius_m / air.kinematicViscosity;
}

double
rotatingDiskFilmCoefficient(double rpm, double radius_m,
                            const AirProperties& air)
{
    const double re = rotatingDiskReynolds(rpm, radius_m, air);
    if (re <= 0.0)
        return 0.0;
    double nu;
    if (re <= kDiskTransitionRe) {
        nu = 0.36 * std::sqrt(re);
    } else {
        // Continuity-preserving turbulent branch: matches the laminar value
        // at the transition, then grows with the turbulent 0.8 exponent.
        const double nu_c = 0.36 * std::sqrt(kDiskTransitionRe);
        nu = nu_c * std::pow(re / kDiskTransitionRe, 0.8);
    }
    return nu * air.conductivity / radius_m;
}

double
stirredSurfaceFilmCoefficient(double rpm, double radius_m, double scale,
                              double floor_h, const AirProperties& air)
{
    HDDTHERM_REQUIRE(scale >= 0.0 && floor_h >= 0.0,
                     "invalid stirred-surface arguments");
    return floor_h + scale * rotatingDiskFilmCoefficient(rpm, radius_m, air);
}

} // namespace hddtherm::thermal
