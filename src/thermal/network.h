/**
 * @file
 * Generic lumped-parameter thermal network with finite-difference solvers
 * (paper §3.3).
 *
 * Nodes carry a heat capacitance [J/K] and a temperature [°C]; edges carry
 * a thermal conductance [W/K] combining Newton's-law convection
 * (dQ/dt = h A dT) and solid conduction (h = k / thickness).  Boundary
 * nodes (e.g. the externally cooled ambient air) hold a fixed temperature.
 *
 * Two solvers are provided:
 *  - steadyState(): direct linear solve of the energy balance;
 *  - step()/advance(): implicit (backward-Euler) finite-difference
 *    transient integration, unconditionally stable so the paper's 0.1 s
 *    step (600 steps/minute) is safe even with the near-massless internal
 *    air node.
 */
#ifndef HDDTHERM_THERMAL_NETWORK_H
#define HDDTHERM_THERMAL_NETWORK_H

#include <functional>
#include <string>
#include <vector>

namespace hddtherm::snap {
class StateWriter;
class StateReader;
} // namespace hddtherm::snap

namespace hddtherm::thermal {

/// A lumped thermal node.
struct ThermalNode
{
    std::string name;          ///< Diagnostic label.
    double capacitance = 0.0;  ///< Heat capacity in J/K (0 for boundary).
    double temperatureC = 0.0; ///< Current temperature.
    double heatInputW = 0.0;   ///< External heat injected into this node.
    bool boundary = false;     ///< True if temperature is externally fixed.
};

/// Network of thermal nodes joined by conductances.
class ThermalNetwork
{
  public:
    using NodeId = int;

    /// Add a free node with heat capacity @p capacitance_j_per_k.
    NodeId addNode(std::string name, double capacitance_j_per_k,
                   double initial_temp_c);

    /// Add a boundary (fixed-temperature) node.
    NodeId addBoundaryNode(std::string name, double temp_c);

    /// Create (or overwrite) the conductance between two nodes, in W/K.
    void setConductance(NodeId a, NodeId b, double conductance_w_per_k);

    /// Current conductance between two nodes (0 if unconnected).
    double conductance(NodeId a, NodeId b) const;

    /// Set the heat injected into a free node, in W.
    void setHeatInput(NodeId node, double watts);

    /// Heat currently injected into @p node.
    double heatInput(NodeId node) const;

    /// Current temperature of @p node.
    double temperature(NodeId node) const;

    /// Force a node's temperature (also moves a boundary node's set-point).
    void setTemperature(NodeId node, double temp_c);

    /// Set every free node to @p temp_c (e.g. cold start at ambient).
    void setAllTemperatures(double temp_c);

    /// Shift every free node by @p delta_c, preserving internal gradients.
    void shiftFreeTemperatures(double delta_c);

    /// Number of nodes.
    int size() const { return int(nodes_.size()); }

    /// Node metadata access.
    const ThermalNode& node(NodeId id) const;

    /**
     * Solve the steady-state energy balance with the current conductances
     * and heat inputs, returning all node temperatures (boundary nodes keep
     * their fixed values).  Does not modify the stored temperatures.
     *
     * @throws util::ModelError if any free node is isolated from every
     *         boundary node (no steady state exists).
     */
    std::vector<double> steadyState() const;

    /// As steadyState(), but also store the result as current temperatures.
    void settleToSteadyState();

    /// Advance one backward-Euler step of @p dt seconds.
    void step(double dt);

    /**
     * Advance by @p duration seconds in steps of @p dt, invoking
     * @p observer (if given) after every step with (elapsed_s, network).
     */
    void advance(double duration, double dt,
                 const std::function<void(double, const ThermalNetwork&)>&
                     observer = nullptr);

    /// Serialize node temperatures and heat inputs (checkpoint support).
    /// Topology (nodes, edges, conductances) is configuration-derived and
    /// is not saved; restore validates the node count instead.
    void saveState(snap::StateWriter& w) const;

    /// Restore temperatures/heat inputs written by saveState.
    void loadState(snap::StateReader& r);

  private:
    struct Edge
    {
        NodeId a;
        NodeId b;
        double g;
    };

    std::vector<double> solveLinear(std::vector<std::vector<double>> a,
                                    std::vector<double> b) const;

    std::vector<ThermalNode> nodes_;
    std::vector<Edge> edges_;
};

} // namespace hddtherm::thermal

#endif // HDDTHERM_THERMAL_NETWORK_H
