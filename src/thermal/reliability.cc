#include "thermal/reliability.h"

#include <cmath>

#include "thermal/calibration.h"
#include "util/error.h"

namespace hddtherm::thermal {

double
failureRateFactor(double temp_c, double reference_c)
{
    return std::exp2((temp_c - reference_c) / kFailureDoublingDeltaC);
}

double
mttfFactor(double temp_c, double reference_c)
{
    return 1.0 / failureRateFactor(temp_c, reference_c);
}

double
annualizedFailureRate(double temp_c, double base_afr, double reference_c)
{
    HDDTHERM_REQUIRE(base_afr >= 0.0, "negative base AFR");
    return base_afr * failureRateFactor(temp_c, reference_c);
}

} // namespace hddtherm::thermal
