#include "thermal/drive_thermal.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "snap/state.h"
#include "thermal/correlations.h"
#include "util/error.h"
#include "util/interp.h"
#include "util/roots.h"
#include "util/units.h"

namespace hddtherm::thermal {

namespace {

// ---------------------------------------------------------------------
// Geometry-derived lumped parameters.  Values follow the paper's Cheetah
// 15K.3 teardown description (single 2.6" platter in a 3.5" enclosure)
// scaled physically to other diameters, counts and enclosures.
// ---------------------------------------------------------------------

/// Platter substrate thickness, meters (Al-Mg media, ~0.8 mm).
constexpr double kPlatterThicknessM = 0.8e-3;

/// Motor-hub radius as a fraction of the platter outer radius.
constexpr double kHubRadiusFraction = 0.25;

/// Hub + bearing assembly mass: a base plus a per-platter spacer, kg.
constexpr double kHubBaseMassKg = 0.040;
constexpr double kHubMassPerPlatterKg = 0.012;

/// Actuator (arms + coil) mass, kg: E-block plus per-platter arms.
constexpr double kActuatorBaseMassKg = 0.030;
constexpr double kActuatorMassPerPlatterKg = 0.010;

/// Actuator surface area exposed to the internal air, m^2.
constexpr double kActuatorBaseAreaM2 = 0.0015;
constexpr double kActuatorAreaPerSurfaceM2 = 0.0006;

/// Base/cover casting: effective aluminum thickness over the plate area,
/// with a multiplier accounting for side walls and the mounting frame.
constexpr double kCaseEffectiveThicknessM = 6e-3;
constexpr double kCaseWallFactor = 1.8;

/// Fraction of the enclosure volume occupied by air.
constexpr double kAirVolumeFraction = 0.6;

/// Film-coefficient scale factors relative to the rotating-disk value.
constexpr double kCaseFilmScale = 0.35; ///< Stationary case inner walls.
constexpr double kVcmFilmScale = 0.60;  ///< Arms sweeping between platters.
constexpr double kFilmFloor = 5.0;      ///< Natural-convection floor.

/// Conductances of the solid paths into the base, W/K.
constexpr double kSpindleBearingG = 0.5; ///< Spindle bearing + flange.
constexpr double kActuatorPivotG = 0.6;  ///< Pivot bearing + magnet mount.

/// SPM motor loss assumed for the 2.6" reference drive, W.  The paper's
/// 45.22 °C anchor fixes only the product of total power and external
/// resistance; this pins the split (a 15K SCSI drive idles around 11-14 W,
/// almost all of it spindle).
constexpr double kSpmLossAnchor26 = 10.2;

/// Table 3 year-2002 anchors used to calibrate the smaller-size SPM loss.
constexpr double kAnchorRpm21 = 18692.0;
constexpr double kAnchorTemp21 = 43.56;
constexpr double kAnchorRpm16 = 24533.0;
constexpr double kAnchorTemp16 = 41.64;

double
plateAreaM2(const hdd::FormFactor& ff)
{
    return ff.plateAreaSqIn() * util::kMetersPerInch * util::kMetersPerInch;
}

double
externalAreaM2(const hdd::FormFactor& ff)
{
    return ff.externalAreaSqIn() * util::kMetersPerInch *
           util::kMetersPerInch;
}

double
enclosureVolumeM3(const hdd::FormFactor& ff)
{
    return ff.lengthInches * ff.widthInches * ff.heightInches *
           std::pow(util::kMetersPerInch, 3);
}

/// Internal surface area of the case (inner walls ~ outer walls).
double
caseInnerAreaM2(const hdd::FormFactor& ff)
{
    return externalAreaM2(ff);
}

/// Total platter surface area (both faces, minus the hub shadow), m^2.
double
platterAreaM2(const hdd::PlatterGeometry& g)
{
    const double ro = util::inchesToMeters(g.outerRadiusInches());
    const double rh = kHubRadiusFraction * ro;
    return double(g.platters) * 2.0 * std::numbers::pi * (ro * ro - rh * rh);
}

double
actuatorAreaM2(const hdd::PlatterGeometry& g)
{
    return kActuatorBaseAreaM2 + kActuatorAreaPerSurfaceM2 * g.surfaces();
}

/// Heat capacity of the spindle assembly (hub + platters), J/K.
double
spindleCapacitance(const hdd::PlatterGeometry& g)
{
    const double ro = util::inchesToMeters(g.outerRadiusInches());
    const double rh = kHubRadiusFraction * ro;
    const double platter_volume = std::numbers::pi * (ro * ro - rh * rh) *
                                  kPlatterThicknessM;
    const double platter_mass =
        double(g.platters) * platter_volume * kAluminum.density;
    const double hub_mass =
        kHubBaseMassKg + kHubMassPerPlatterKg * g.platters;
    return (platter_mass + hub_mass) * kAluminum.specificHeat;
}

double
actuatorCapacitance(const hdd::PlatterGeometry& g)
{
    const double mass =
        kActuatorBaseMassKg + kActuatorMassPerPlatterKg * g.platters;
    return mass * kAluminum.specificHeat;
}

double
caseCapacitance(const hdd::FormFactor& ff)
{
    const double mass = plateAreaM2(ff) * kCaseEffectiveThicknessM *
                        kAluminum.density * kCaseWallFactor;
    return mass * kAluminum.specificHeat;
}

double
airCapacitance(const hdd::FormFactor& ff)
{
    const double volume = enclosureVolumeM3(ff) * kAirVolumeFraction;
    return volume * kDriveAir.density * kDriveAir.specificHeat;
}

// ---------------------------------------------------------------------
// Calibration: solve the external film coefficient from the Cheetah
// envelope anchor, then the per-size SPM losses from the Table 3 anchors.
// ---------------------------------------------------------------------

struct Calibration
{
    double externalFilm = 0.0; ///< W/(m^2 K).
    double spmLoss21 = 0.0;    ///< W at 2.1".
    double spmLoss16 = 0.0;    ///< W at 1.6".
};

DriveThermalConfig
referenceConfig(double diameter, double rpm, double spm_loss)
{
    DriveThermalConfig c;
    c.geometry.diameterInches = diameter;
    c.geometry.platters = 1;
    c.rpm = rpm;
    c.spmPowerOverrideW = spm_loss;
    return c;
}

const Calibration&
calibration()
{
    static const Calibration calib = [] {
        Calibration c;
        // 1. External film coefficient: the 1-platter 2.6" drive at the
        //    envelope RPM must sit exactly at the envelope temperature.
        {
            auto cfg = referenceConfig(2.6, kEnvelopeRpm26,
                                       kSpmLossAnchor26);
            c.externalFilm = util::bisect(
                [&cfg](double h) {
                    cfg.externalFilmOverride = h;
                    return steadyAirTempC(cfg) - kThermalEnvelopeC;
                },
                2.0, 400.0, {1e-7, 300});
        }
        // 2. SPM losses for the smaller sizes from the 2002 anchors.
        auto solve_spm = [&c](double diameter, double rpm, double target) {
            auto cfg = referenceConfig(diameter, rpm, 0.0);
            cfg.externalFilmOverride = c.externalFilm;
            return util::bisect(
                [&cfg, target](double s) {
                    cfg.spmPowerOverrideW = s;
                    return steadyAirTempC(cfg) - target;
                },
                0.0, 60.0, {1e-7, 300});
        };
        c.spmLoss21 = solve_spm(2.1, kAnchorRpm21, kAnchorTemp21);
        c.spmLoss16 = solve_spm(1.6, kAnchorRpm16, kAnchorTemp16);
        return c;
    }();
    return calib;
}

} // namespace

double
spmMotorLossW(double diameter_inches)
{
    HDDTHERM_REQUIRE(diameter_inches > 0.0, "diameter must be positive");
    const Calibration& c = calibration();
    const util::PiecewiseLinear anchors(
        {{1.6, c.spmLoss16}, {2.1, c.spmLoss21}, {2.6, kSpmLossAnchor26}},
        util::PiecewiseLinear::Extrapolate::Linear);
    return std::max(3.0, anchors(diameter_inches));
}

double
DriveThermalModel::calibratedExternalFilmCoefficient()
{
    return calibration().externalFilm;
}

DriveThermalModel::DriveThermalModel(const DriveThermalConfig& config)
    : config_(config)
{
    config_.geometry.validate();
    HDDTHERM_REQUIRE(config_.rpm > 0.0, "rpm must be positive");
    HDDTHERM_REQUIRE(config_.vcmDuty >= 0.0 && config_.vcmDuty <= 1.0,
                     "VCM duty must be within [0, 1]");
    HDDTHERM_REQUIRE(config_.coolingScale > 0.0,
                     "cooling scale must be positive");

    ambient_ = net_.addBoundaryNode("ambient", config_.ambientC);
    air_ = net_.addNode("air", airCapacitance(config_.enclosure),
                        config_.ambientC);
    spindle_ = net_.addNode("spindle", spindleCapacitance(config_.geometry),
                            config_.ambientC);
    base_ = net_.addNode("base", caseCapacitance(config_.enclosure),
                         config_.ambientC);
    vcm_ = net_.addNode("vcm", actuatorCapacitance(config_.geometry),
                        config_.ambientC);

    rebuildOperatingPoint();
}

void
DriveThermalModel::rebuildOperatingPoint()
{
    const auto& g = config_.geometry;
    const double ro = util::inchesToMeters(g.outerRadiusInches());
    const double rpm = config_.rpm;

    // Convective couplings driven by the spinning stack.
    const double h_disk = rotatingDiskFilmCoefficient(rpm, ro);
    const double h_case =
        stirredSurfaceFilmCoefficient(rpm, ro, kCaseFilmScale, kFilmFloor);
    const double h_vcm =
        stirredSurfaceFilmCoefficient(rpm, ro, kVcmFilmScale, kFilmFloor);

    net_.setConductance(spindle_, air_, h_disk * platterAreaM2(g));
    net_.setConductance(air_, base_,
                        h_case * caseInnerAreaM2(config_.enclosure));
    net_.setConductance(vcm_, air_, h_vcm * actuatorAreaM2(g));

    // Solid conduction paths into the base.
    net_.setConductance(spindle_, base_, kSpindleBearingG);
    net_.setConductance(vcm_, base_, kActuatorPivotG);

    // External cooling: base/cover to the constant-temperature outside
    // air, derated by any active airflow fault; the ambient the network
    // sees carries any active fault offset.
    const double h_ext = config_.externalFilmOverride
                             ? *config_.externalFilmOverride
                             : calibratedExternalFilmCoefficient();
    net_.setConductance(base_, ambient_,
                        h_ext * externalAreaM2(config_.enclosure) *
                            config_.coolingScale * cooling_fault_scale_);
    net_.setTemperature(ambient_, effectiveAmbientC());

    // Heat sources.
    net_.setHeatInput(air_, viscousPowerW());
    net_.setHeatInput(spindle_, spmPowerW());
    net_.setHeatInput(vcm_, vcmPowerW());
}

void
DriveThermalModel::setRpm(double rpm)
{
    HDDTHERM_REQUIRE(rpm > 0.0, "rpm must be positive");
    config_.rpm = rpm;
    rebuildOperatingPoint();
}

void
DriveThermalModel::setVcmDuty(double duty)
{
    HDDTHERM_REQUIRE(duty >= 0.0 && duty <= 1.0,
                     "VCM duty must be within [0, 1]");
    config_.vcmDuty = duty;
    rebuildOperatingPoint();
}

void
DriveThermalModel::setAmbient(double ambient_c)
{
    config_.ambientC = ambient_c;
    rebuildOperatingPoint();
}

void
DriveThermalModel::setCoolingFaultScale(double scale)
{
    HDDTHERM_REQUIRE(scale > 0.0, "cooling fault scale must be positive");
    cooling_fault_scale_ = scale;
    rebuildOperatingPoint();
}

void
DriveThermalModel::setAmbientOffsetC(double delta_c)
{
    ambient_offset_c_ = delta_c;
    rebuildOperatingPoint();
}

void
DriveThermalModel::setPowered(bool on)
{
    powered_ = on;
    rebuildOperatingPoint();
}

double
DriveThermalModel::viscousPowerW() const
{
    if (!powered_)
        return 0.0;
    return viscousDissipationW(config_.rpm, config_.geometry.diameterInches,
                               config_.geometry.platters);
}

double
DriveThermalModel::vcmPowerW() const
{
    if (!powered_)
        return 0.0;
    const double full = config_.vcmPowerOverrideW
                            ? *config_.vcmPowerOverrideW
                            : thermal::vcmPowerW(
                                  config_.geometry.diameterInches);
    return full * config_.vcmDuty;
}

double
DriveThermalModel::spmPowerW() const
{
    if (!powered_)
        return 0.0;
    return config_.spmPowerOverrideW
               ? *config_.spmPowerOverrideW
               : spmMotorLossW(config_.geometry.diameterInches);
}

double
DriveThermalModel::totalPowerW() const
{
    return viscousPowerW() + vcmPowerW() + spmPowerW();
}

double
DriveThermalModel::airTempC() const
{
    return net_.temperature(air_);
}

double
DriveThermalModel::steadyAirTempC() const
{
    return net_.steadyState()[std::size_t(air_)];
}

std::vector<double>
DriveThermalModel::steadyTemps() const
{
    const auto all = net_.steadyState();
    return {all[std::size_t(air_)], all[std::size_t(spindle_)],
            all[std::size_t(base_)], all[std::size_t(vcm_)]};
}

std::vector<DriveThermalModel::HeatFlow>
DriveThermalModel::steadyHeatFlows() const
{
    const auto t = net_.steadyState();
    auto flow = [&](ThermalNetwork::NodeId from, ThermalNetwork::NodeId to,
                    const char* name) {
        return HeatFlow{name, net_.conductance(from, to) *
                                  (t[std::size_t(from)] -
                                   t[std::size_t(to)])};
    };
    return {
        flow(spindle_, air_, "spindle->air"),
        flow(vcm_, air_, "vcm->air"),
        flow(air_, base_, "air->base"),
        flow(spindle_, base_, "spindle->base"),
        flow(vcm_, base_, "vcm->base"),
        flow(base_, ambient_, "base->ambient"),
    };
}

void
DriveThermalModel::reset(double temp_c)
{
    net_.setAllTemperatures(temp_c);
}

void
DriveThermalModel::settle()
{
    net_.settleToSteadyState();
}

void
DriveThermalModel::settleWithAirAt(double air_temp_c)
{
    net_.settleToSteadyState();
    net_.shiftFreeTemperatures(air_temp_c - airTempC());
}

void
DriveThermalModel::advance(
    double duration, double dt,
    const std::function<void(double, double)>& observer)
{
    if (observer) {
        net_.advance(duration, dt,
                     [this, &observer](double t, const ThermalNetwork&) {
                         observer(t, airTempC());
                     });
    } else {
        net_.advance(duration, dt);
    }
}

void
DriveThermalModel::advanceTo(double t, double max_dt)
{
    HDDTHERM_REQUIRE(t >= clock_sec_,
                     "cannot advance the thermal clock backwards");
    const double dt = t - clock_sec_;
    clock_sec_ = t;
    if (dt > 0.0)
        advance(dt, std::min(max_dt, dt));
}

double
steadyAirTempC(const DriveThermalConfig& config)
{
    return DriveThermalModel(config).steadyAirTempC();
}


void
DriveThermalModel::saveState(snap::StateWriter& w) const
{
    w.f64("clock_sec", clock_sec_);
    w.f64("rpm", config_.rpm);
    w.f64("vcm_duty", config_.vcmDuty);
    w.f64("ambient_c", config_.ambientC);
    w.f64("cooling_fault_scale", cooling_fault_scale_);
    w.f64("ambient_offset_c", ambient_offset_c_);
    w.boolean("powered", powered_);
    net_.saveState(w);
}

void
DriveThermalModel::loadState(snap::StateReader& r)
{
    clock_sec_ = r.f64("clock_sec");
    config_.rpm = r.f64("rpm");
    config_.vcmDuty = r.f64("vcm_duty");
    config_.ambientC = r.f64("ambient_c");
    cooling_fault_scale_ = r.f64("cooling_fault_scale");
    ambient_offset_c_ = r.f64("ambient_offset_c");
    powered_ = r.boolean("powered");
    // Rebuild the operating-point-derived conductances and heat inputs,
    // then overwrite the transient node state bitwise.
    rebuildOperatingPoint();
    net_.loadState(r);
}

} // namespace hddtherm::thermal
