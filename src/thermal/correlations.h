/**
 * @file
 * Empirical convection correlations and material properties (paper §3.3).
 *
 * The Clauss/Eibeck drive model computes convective film coefficients from
 * empirical correlations for the rotating disk stack; we use the classical
 * free-rotating-disk Nusselt correlations (laminar Nu = 0.36 Re^0.5,
 * turbulent exponent 0.8) with a continuity-preserving blend at the
 * transition Reynolds number so that heat transfer is monotone in RPM —
 * a property the envelope searches rely on.
 */
#ifndef HDDTHERM_THERMAL_CORRELATIONS_H
#define HDDTHERM_THERMAL_CORRELATIONS_H

namespace hddtherm::thermal {

/// Thermophysical properties of a homogeneous material.
struct Material
{
    double conductivity = 0.0; ///< k, W/(m K).
    double density = 0.0;      ///< rho, kg/m^3.
    double specificHeat = 0.0; ///< cp, J/(kg K).
};

/// Aluminum (platters, arms, hub, base/cover castings; paper §3.3).
inline constexpr Material kAluminum{205.0, 2700.0, 900.0};

/// Air at roughly drive-internal film temperature (~45 °C).
struct AirProperties
{
    double conductivity = 0.0276;        ///< W/(m K).
    double density = 1.11;               ///< kg/m^3.
    double specificHeat = 1007.0;        ///< J/(kg K).
    double kinematicViscosity = 1.75e-5; ///< m^2/s.
};

/// Default air properties used throughout the drive model.
inline constexpr AirProperties kDriveAir{};

/// Transition Reynolds number for the rotating-disk boundary layer.
inline constexpr double kDiskTransitionRe = 2.4e5;

/// Rotational Reynolds number Re = omega r^2 / nu.
double rotatingDiskReynolds(double rpm, double radius_m,
                            const AirProperties& air = kDriveAir);

/**
 * Average convective film coefficient h [W/(m^2 K)] over a disk of radius
 * @p radius_m spinning at @p rpm.  Laminar branch Nu = 0.36 Re^0.5; above
 * the transition the exponent steepens to 0.8 with the prefactor chosen for
 * continuity.  Monotonically non-decreasing in rpm.
 */
double rotatingDiskFilmCoefficient(double rpm, double radius_m,
                                   const AirProperties& air = kDriveAir);

/**
 * Film coefficient for stationary internal surfaces (case walls, arms)
 * stirred by the rotating stack.  Modeled as a fraction of the disk film
 * coefficient plus a natural-convection floor.
 *
 * @param rpm spindle speed.
 * @param radius_m radius of the stirring disk.
 * @param scale fraction of the disk film coefficient experienced by the
 *        surface (geometry dependent).
 * @param floor_h natural-convection floor, W/(m^2 K).
 */
double stirredSurfaceFilmCoefficient(double rpm, double radius_m,
                                     double scale, double floor_h = 5.0,
                                     const AirProperties& air = kDriveAir);

/// @name Chassis-scale forced-air bookkeeping (fleet co-simulation).
/// The rack/chassis coupling treats each chassis as a steady-flow control
/// volume: cooling air enters at the inlet temperature, every watt the
/// member drives dissipate ends up in that stream, and the exhaust rise
/// follows the energy balance dT = Q / (m_dot cp).
/// @{

/// Mass flow [kg/s] of a fan moving @p cfm cubic feet of air per minute.
double airMassFlowFromCfm(double cfm, const AirProperties& air = kDriveAir);

/**
 * Steady-flow exhaust temperature rise [K] of an air stream of
 * @p mass_flow_kg_s absorbing @p power_w.  Zero power gives zero rise;
 * the mass flow must be positive.
 */
double exhaustTempRiseC(double power_w, double mass_flow_kg_s,
                        const AirProperties& air = kDriveAir);

/// @}

} // namespace hddtherm::thermal

#endif // HDDTHERM_THERMAL_CORRELATIONS_H
