#include "engine/kernel.h"

#include <utility>

#include "snap/state.h"
#include "util/error.h"

namespace hddtherm::engine {

namespace {

/// Biased priority in the top 16 bits (monotonic: a lower priority
/// yields a smaller key, so it fires first at equal times) plus the
/// domain id in the low 16 — everything of an event key except its
/// sequence number.
std::uint64_t
keyBase(int priority, DomainId domain)
{
    const auto biased =
        std::uint64_t(std::uint16_t(priority)) ^ 0x8000ull;
    return biased << (SimKernel::kSeqBits + SimKernel::kDomainBits) |
           std::uint64_t(domain);
}

} // namespace

SimKernel::SimKernel()
{
    domains_.push_back({"default", 0, keyBase(0, 0)});
}

DomainId
SimKernel::registerDomain(const std::string& name, int priority)
{
    HDDTHERM_REQUIRE(!name.empty(), "domain name must not be empty");
    HDDTHERM_REQUIRE(priority >= kMinPriority && priority <= kMaxPriority,
                     "domain priority out of the 16-bit key range");
    for (std::size_t i = 0; i < domains_.size(); ++i) {
        if (domains_[i].name == name) {
            HDDTHERM_REQUIRE(domains_[i].priority == priority,
                             "domain re-registered with a different "
                             "priority");
            return DomainId(i);
        }
    }
    const auto id = DomainId(domains_.size());
    HDDTHERM_REQUIRE(id < (1 << kDomainBits),
                     "too many clock domains for the 16-bit key field");
    domains_.push_back({name, priority, keyBase(priority, id)});
    return id;
}

const std::string&
SimKernel::domainName(DomainId id) const
{
    HDDTHERM_REQUIRE(id >= 0 && id < domainCount(), "unknown domain id");
    return domains_[std::size_t(id)].name;
}

int
SimKernel::domainPriority(DomainId id) const
{
    HDDTHERM_REQUIRE(id >= 0 && id < domainCount(), "unknown domain id");
    return domains_[std::size_t(id)].priority;
}

void
SimKernel::schedule(SimTime when, DomainId domain, Callback cb)
{
    scheduleImpl(when, domain, nullptr, std::move(cb));
}

void
SimKernel::schedule(SimTime when, DomainId domain,
                    const snap::EventTag& tag, Callback cb)
{
    scheduleImpl(when, domain, &tag, std::move(cb));
}

void
SimKernel::scheduleImpl(SimTime when, DomainId domain,
                        const snap::EventTag* tag, Callback cb)
{
    HDDTHERM_REQUIRE(when >= now_, "cannot schedule into the past");
    HDDTHERM_REQUIRE(domain >= 0 && domain < domainCount(),
                     "unknown domain id");
    // 2^32 events per kernel instance is far beyond any simulation here
    // (kernels are per drive / per fleet barrier loop), and the cap
    // fails loudly rather than silently mis-ordering.
    HDDTHERM_ASSERT(next_seq_ >> kSeqBits == 0);
    Event ev{when,
             domains_[std::size_t(domain)].key_base |
                 (next_seq_++ << kDomainBits),
             std::move(cb)};
    if (snapshots_) {
        if (tag)
            tags_.insert(seqOf(ev.key), *tag);
        else
            ++untagged_pending_;
    }
    if (sink_)
        emit(TraceKind::Scheduled, ev);
    heap_.push(std::move(ev));
}

void
SimKernel::scheduleAfter(SimTime delay, DomainId domain, Callback cb)
{
    HDDTHERM_REQUIRE(delay >= 0.0, "negative delay");
    schedule(now_ + delay, domain, std::move(cb));
}

void
SimKernel::schedulePeriodic(DomainId domain, SimTime period,
                            PeriodicCallback cb)
{
    schedulePeriodic(domain, period, std::string(), std::move(cb));
}

void
SimKernel::schedulePeriodic(DomainId domain, SimTime period,
                            std::string name, PeriodicCallback cb)
{
    HDDTHERM_REQUIRE(period > 0.0, "period must be positive");
    HDDTHERM_REQUIRE(bool(cb), "missing periodic callback");
    HDDTHERM_REQUIRE(!snapshots_ || !name.empty(),
                     "a snapshot-enabled kernel requires named periodic "
                     "tasks");
    periodic_.push_back({domain, period, std::move(cb), std::move(name)});
    const std::size_t index = periodic_.size() - 1;
    snap::EventTag tag;
    tag.kind = snap::kEvtPeriodic;
    tag.aux = std::uint32_t(index);
    schedule(now_ + period, domain, tag,
             [this, index] { firePeriodic(index); });
}

void
SimKernel::firePeriodic(std::size_t index)
{
    // The callback may arm further periodic tasks, reallocating the
    // vector mid-call, so the callable is moved out before it runs (an
    // inline-stored closure would otherwise be destroyed while
    // executing) and the task is re-indexed after it returns.
    PeriodicCallback cb = std::move(periodic_[index].cb);
    const std::size_t prev_firing = firing_periodic_;
    firing_periodic_ = index;
    const bool keep = cb();
    firing_periodic_ = prev_firing;
    if (!keep) {
        periodic_[index].cb = nullptr; // captured state dies with cb
        return;
    }
    PeriodicTask& task = periodic_[index];
    task.cb = std::move(cb);
    snap::EventTag tag;
    tag.kind = snap::kEvtPeriodic;
    tag.aux = std::uint32_t(index);
    schedule(now_ + task.period, task.domain, tag,
             [this, index] { firePeriodic(index); });
}

bool
SimKernel::runNext()
{
    if (heap_.empty())
        return false;
    // Move out before pop so the callback may schedule new events.  The
    // const_cast is the standard priority_queue escape hatch: top() is
    // const-qualified only to protect the heap order, which pop()
    // re-establishes immediately.
    Event ev = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    now_ = ev.when;
    ++fired_;
    if (snapshots_) {
        if (!tags_.erase(seqOf(ev.key)))
            --untagged_pending_;
    }
    if (sink_)
        emit(TraceKind::Fired, ev);
    ev.cb();
    return true;
}

void
SimKernel::runUntil(SimTime limit)
{
    while (!heap_.empty() && heap_.top().when <= limit)
        runNext();
    if (now_ < limit)
        now_ = limit;
}

void
SimKernel::runAll()
{
    while (runNext()) {
    }
}

void
SimKernel::enableSnapshots(bool on)
{
    if (on == snapshots_)
        return;
    HDDTHERM_REQUIRE(heap_.empty() && periodic_.empty(),
                     "snapshot bookkeeping must be toggled on an idle "
                     "kernel (before any event or periodic task exists)");
    snapshots_ = on;
    tags_.clear();
    untagged_pending_ = 0;
}

void
SimKernel::saveState(snap::StateWriter& w) const
{
    HDDTHERM_REQUIRE(snapshots_,
                     "cannot save kernel state: snapshots are not enabled "
                     "on this kernel");
    HDDTHERM_REQUIRE(untagged_pending_ == 0,
                     "cannot save kernel state: " +
                         std::to_string(untagged_pending_) +
                         " pending event(s) were scheduled without a "
                         "snapshot tag and cannot be reconstructed");

    w.f64("kernel.now", now_);
    w.u64("kernel.next_seq", next_seq_);
    w.u64("kernel.fired", fired_);

    // Domains are saved for validation only: restore requires the new
    // kernel to have registered the identical domain table, which a
    // rebuild from the same configuration guarantees.
    w.u64("kernel.domains", domains_.size());
    for (std::size_t i = 0; i < domains_.size(); ++i) {
        snap::ScopedPrefix scope(w, "domain" + std::to_string(i));
        w.str("name", domains_[i].name);
        w.i64("priority", domains_[i].priority);
    }

    // Dead tasks stay in the table so live indices — which pending
    // kEvtPeriodic events reference through their aux field — survive
    // the round trip unchanged.
    w.u64("kernel.tasks", periodic_.size());
    for (std::size_t i = 0; i < periodic_.size(); ++i) {
        const PeriodicTask& task = periodic_[i];
        // The task whose callback is executing right now (typically the
        // checkpoint writer itself) has its callable moved out for the
        // call, but it is very much alive.
        const bool alive = bool(task.cb) || i == firing_periodic_;
        HDDTHERM_REQUIRE(!alive || !task.name.empty(),
                         "cannot save kernel state: a live periodic task "
                         "has no name to restore it by");
        snap::ScopedPrefix scope(w, "task" + std::to_string(i));
        w.str("name", task.name);
        w.u64("domain", std::uint64_t(task.domain));
        w.f64("period", task.period);
        w.boolean("alive", alive);
    }

    // The in-flight firing's re-fire event is scheduled only after its
    // callback returns, so it is absent from the heap below; record which
    // task is mid-firing so loadState() can re-arm it.  The re-arm
    // consumes the next sequence number — exactly the one the
    // uninterrupted run's post-return reschedule takes — so tie-break
    // order stays bit-identical.  (This is also why a task that
    // checkpoints from inside its own firing must keep ticking: a false
    // return would leave the restored run with a re-fire the original
    // never scheduled.)
    w.u64("kernel.firing_task", firing_periodic_ == kNoTask
                                    ? std::uint64_t(-1)
                                    : std::uint64_t(firing_periodic_));

    // Draining a copy of the heap yields events in exact fire order, so
    // identical kernel states serialize to identical bytes regardless of
    // the heap array's internal layout.
    w.u64("kernel.events", heap_.size());
    snap::BlobWriter blob;
    blob.reserve(heap_.size() * 72);
    auto copy = heap_;
    while (!copy.empty()) {
        const Event& ev = copy.top();
        const snap::EventTag* tag = tags_.find(seqOf(ev.key));
        HDDTHERM_ASSERT(tag != nullptr);
        blob.f64(ev.when);
        blob.u64(ev.key);
        blob.u32(tag->kind);
        blob.u32(tag->aux);
        blob.words(tag->w.data(), tag->w.size());
        copy.pop();
    }
    w.bytes("kernel.event_blob", blob.take());
}

void
SimKernel::loadState(snap::StateReader& r, const EventResolver& events,
                     const TaskResolver& tasks)
{
    HDDTHERM_REQUIRE(snapshots_,
                     "enable snapshots before restoring a kernel");
    HDDTHERM_REQUIRE(heap_.empty() && periodic_.empty() && fired_ == 0,
                     "kernel restore requires a freshly built kernel");

    now_ = r.f64("kernel.now");
    next_seq_ = r.u64("kernel.next_seq");
    fired_ = r.u64("kernel.fired");

    const auto ndom = r.u64("kernel.domains");
    HDDTHERM_REQUIRE(ndom == domains_.size(),
                     "checkpoint section '" + r.section() +
                         "': clock-domain count differs from this run's "
                         "configuration");
    for (std::size_t i = 0; i < domains_.size(); ++i) {
        snap::ScopedPrefix scope(r, "domain" + std::to_string(i));
        const std::string name = r.str("name");
        const auto priority = r.i64("priority");
        HDDTHERM_REQUIRE(name == domains_[i].name &&
                             priority == domains_[i].priority,
                         "checkpoint section '" + r.section() +
                             "': clock domain '" + name +
                             "' does not match this run's configuration");
    }

    const auto ntask = r.u64("kernel.tasks");
    for (std::size_t i = 0; i < ntask; ++i) {
        snap::ScopedPrefix scope(r, "task" + std::to_string(i));
        std::string name = r.str("name");
        const auto domain = r.u64("domain");
        const double period = r.f64("period");
        const bool alive = r.boolean("alive");
        HDDTHERM_REQUIRE(domain < std::uint64_t(domainCount()),
                         "checkpoint section '" + r.section() +
                             "': periodic task references an unknown "
                             "clock domain");
        PeriodicCallback cb;
        if (alive) {
            HDDTHERM_REQUIRE(bool(tasks),
                             "checkpoint section '" + r.section() +
                                 "': no task resolver provided for "
                                 "periodic task '" + name + "'");
            cb = tasks(name);
            HDDTHERM_REQUIRE(bool(cb),
                             "checkpoint section '" + r.section() +
                                 "': the task resolver cannot rebuild "
                                 "periodic task '" + name + "'");
        }
        periodic_.push_back(
            {DomainId(domain), period, std::move(cb), std::move(name)});
    }

    const auto firing = r.u64("kernel.firing_task");

    const auto nevents = r.u64("kernel.events");
    const auto raw = r.bytes("kernel.event_blob");
    snap::BlobReader blob("section '" + r.section() + "' events", raw);
    for (std::uint64_t e = 0; e < nevents; ++e) {
        const double when = blob.f64();
        const std::uint64_t key = blob.u64();
        snap::EventTag tag;
        tag.kind = blob.u32();
        tag.aux = blob.u32();
        for (auto& word : tag.w)
            word = blob.u64();

        Callback cb;
        if (tag.kind == snap::kEvtPeriodic) {
            const std::size_t index = tag.aux;
            HDDTHERM_REQUIRE(index < periodic_.size() &&
                                 bool(periodic_[index].cb),
                             "checkpoint section '" + r.section() +
                                 "': pending periodic event references a "
                                 "dead or missing task");
            cb = [this, index] { firePeriodic(index); };
        } else {
            HDDTHERM_REQUIRE(bool(events),
                             "checkpoint section '" + r.section() +
                                 "': no event resolver provided");
            cb = events(tag);
            HDDTHERM_REQUIRE(bool(cb),
                             "checkpoint section '" + r.section() +
                                 "': the event resolver cannot rebuild "
                                 "an event of kind " +
                                 std::to_string(tag.kind));
        }
        // Events keep their original keys (sequence numbers included),
        // bypassing schedule(): tie-break order is restored exactly.
        tags_.insert(seqOf(key), tag);
        heap_.push(Event{when, key, std::move(cb)});
    }
    HDDTHERM_REQUIRE(blob.atEnd(), "checkpoint section '" + r.section() +
                                       "' carries trailing event bytes");

    // The checkpoint was written from inside this task's firing: its
    // re-fire event post-dates the save.  Re-arm it through the normal
    // schedule path, which assigns the same sequence number the
    // uninterrupted run's reschedule did.
    if (firing != std::uint64_t(-1)) {
        const std::size_t index = std::size_t(firing);
        HDDTHERM_REQUIRE(index < periodic_.size() &&
                             bool(periodic_[index].cb),
                         "checkpoint section '" + r.section() +
                             "': the mid-firing periodic task is dead or "
                             "missing");
        const PeriodicTask& task = periodic_[index];
        snap::EventTag tag;
        tag.kind = snap::kEvtPeriodic;
        tag.aux = std::uint32_t(index);
        schedule(now_ + task.period, task.domain, tag,
                 [this, index] { firePeriodic(index); });
    }
}

void
SimKernel::emit(TraceKind kind, const Event& ev)
{
    TraceEvent out;
    out.time = now_;
    out.when = ev.when;
    out.domain =
        DomainId(ev.key & ((std::uint64_t(1) << kDomainBits) - 1));
    out.domainName = domains_[std::size_t(out.domain)].name;
    out.kind = kind;
    // The id is the raw sequence number (priority and domain stripped).
    out.id = (ev.key >> kDomainBits) &
             ((std::uint64_t(1) << kSeqBits) - 1);
    sink_->onEvent(out);
}

} // namespace hddtherm::engine
