#include "engine/kernel.h"

#include <utility>

#include "util/error.h"

namespace hddtherm::engine {

namespace {

/// Biased priority in the top 16 bits (monotonic: a lower priority
/// yields a smaller key, so it fires first at equal times) plus the
/// domain id in the low 16 — everything of an event key except its
/// sequence number.
std::uint64_t
keyBase(int priority, DomainId domain)
{
    const auto biased =
        std::uint64_t(std::uint16_t(priority)) ^ 0x8000ull;
    return biased << (SimKernel::kSeqBits + SimKernel::kDomainBits) |
           std::uint64_t(domain);
}

} // namespace

SimKernel::SimKernel()
{
    domains_.push_back({"default", 0, keyBase(0, 0)});
}

DomainId
SimKernel::registerDomain(const std::string& name, int priority)
{
    HDDTHERM_REQUIRE(!name.empty(), "domain name must not be empty");
    HDDTHERM_REQUIRE(priority >= kMinPriority && priority <= kMaxPriority,
                     "domain priority out of the 16-bit key range");
    for (std::size_t i = 0; i < domains_.size(); ++i) {
        if (domains_[i].name == name) {
            HDDTHERM_REQUIRE(domains_[i].priority == priority,
                             "domain re-registered with a different "
                             "priority");
            return DomainId(i);
        }
    }
    const auto id = DomainId(domains_.size());
    HDDTHERM_REQUIRE(id < (1 << kDomainBits),
                     "too many clock domains for the 16-bit key field");
    domains_.push_back({name, priority, keyBase(priority, id)});
    return id;
}

const std::string&
SimKernel::domainName(DomainId id) const
{
    HDDTHERM_REQUIRE(id >= 0 && id < domainCount(), "unknown domain id");
    return domains_[std::size_t(id)].name;
}

int
SimKernel::domainPriority(DomainId id) const
{
    HDDTHERM_REQUIRE(id >= 0 && id < domainCount(), "unknown domain id");
    return domains_[std::size_t(id)].priority;
}

void
SimKernel::schedule(SimTime when, DomainId domain, Callback cb)
{
    HDDTHERM_REQUIRE(when >= now_, "cannot schedule into the past");
    HDDTHERM_REQUIRE(domain >= 0 && domain < domainCount(),
                     "unknown domain id");
    // 2^32 events per kernel instance is far beyond any simulation here
    // (kernels are per drive / per fleet barrier loop), and the cap
    // fails loudly rather than silently mis-ordering.
    HDDTHERM_ASSERT(next_seq_ >> kSeqBits == 0);
    Event ev{when,
             domains_[std::size_t(domain)].key_base |
                 (next_seq_++ << kDomainBits),
             std::move(cb)};
    if (sink_)
        emit(TraceKind::Scheduled, ev);
    heap_.push(std::move(ev));
}

void
SimKernel::scheduleAfter(SimTime delay, DomainId domain, Callback cb)
{
    HDDTHERM_REQUIRE(delay >= 0.0, "negative delay");
    schedule(now_ + delay, domain, std::move(cb));
}

void
SimKernel::schedulePeriodic(DomainId domain, SimTime period,
                            PeriodicCallback cb)
{
    HDDTHERM_REQUIRE(period > 0.0, "period must be positive");
    HDDTHERM_REQUIRE(bool(cb), "missing periodic callback");
    periodic_.push_back({domain, period, std::move(cb)});
    const std::size_t index = periodic_.size() - 1;
    schedule(now_ + period, domain, [this, index] { firePeriodic(index); });
}

void
SimKernel::firePeriodic(std::size_t index)
{
    // The callback may arm further periodic tasks, reallocating the
    // vector mid-call, so the callable is moved out before it runs (an
    // inline-stored closure would otherwise be destroyed while
    // executing) and the task is re-indexed after it returns.
    PeriodicCallback cb = std::move(periodic_[index].cb);
    const bool keep = cb();
    if (!keep) {
        periodic_[index].cb = nullptr; // captured state dies with cb
        return;
    }
    PeriodicTask& task = periodic_[index];
    task.cb = std::move(cb);
    schedule(now_ + task.period, task.domain,
             [this, index] { firePeriodic(index); });
}

bool
SimKernel::runNext()
{
    if (heap_.empty())
        return false;
    // Move out before pop so the callback may schedule new events.  The
    // const_cast is the standard priority_queue escape hatch: top() is
    // const-qualified only to protect the heap order, which pop()
    // re-establishes immediately.
    Event ev = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    now_ = ev.when;
    ++fired_;
    if (sink_)
        emit(TraceKind::Fired, ev);
    ev.cb();
    return true;
}

void
SimKernel::runUntil(SimTime limit)
{
    while (!heap_.empty() && heap_.top().when <= limit)
        runNext();
    if (now_ < limit)
        now_ = limit;
}

void
SimKernel::runAll()
{
    while (runNext()) {
    }
}

void
SimKernel::emit(TraceKind kind, const Event& ev)
{
    TraceEvent out;
    out.time = now_;
    out.when = ev.when;
    out.domain =
        DomainId(ev.key & ((std::uint64_t(1) << kDomainBits) - 1));
    out.domainName = domains_[std::size_t(out.domain)].name;
    out.kind = kind;
    // The id is the raw sequence number (priority and domain stripped).
    out.id = (ev.key >> kDomainBits) &
             ((std::uint64_t(1) << kSeqBits) - 1);
    sink_->onEvent(out);
}

} // namespace hddtherm::engine
