/**
 * @file
 * Flat open-addressed map from a pending event's sequence number to its
 * snap::EventTag.
 *
 * Snapshot bookkeeping inserts and erases one entry per scheduled event,
 * so this map sits on the kernel's hot path whenever snapshots are
 * enabled.  The live population is only the pending-event set (typically
 * hundreds) while the churn is every event of the run (easily millions) —
 * the worst case for node-based containers, which pay one allocation per
 * event.  Linear probing over one flat array with backward-shift
 * deletion keeps insert, find, and erase allocation-free in the steady
 * state; bench_snap_overhead gates the resulting overhead.
 */
#ifndef HDDTHERM_ENGINE_TAG_MAP_H
#define HDDTHERM_ENGINE_TAG_MAP_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "snap/snapshot.h"

namespace hddtherm::engine {

/// seq -> EventTag map specialized for the kernel's snapshot path.
/// Keys must be unique (the kernel's sequence counter guarantees it).
class EventTagMap
{
  public:
    /// Insert a tag under @p seq (must not already be present).
    void insert(std::uint64_t seq, const snap::EventTag& tag)
    {
        if ((size_ + 1) * 10 >= slots_.size() * 7)
            grow();
        // Robin Hood placement: displace any resident closer to its home
        // than the incoming entry is to its own.  The resulting ordering
        // invariant (probe distances never drop along a cluster) is what
        // makes erase()'s stop-at-distance-zero backward shift correct.
        Slot incoming;
        incoming.seq = seq;
        incoming.tag = tag;
        incoming.used = true;
        std::size_t i = home(seq);
        std::size_t dist = 0;
        while (slots_[i].used) {
            const std::size_t resident = probeDistance(i);
            if (resident < dist) {
                std::swap(incoming, slots_[i]);
                dist = resident;
            }
            i = next(i);
            ++dist;
        }
        slots_[i] = incoming;
        ++size_;
    }

    /// Tag stored under @p seq, or nullptr.
    const snap::EventTag* find(std::uint64_t seq) const
    {
        if (slots_.empty())
            return nullptr;
        std::size_t i = home(seq);
        while (slots_[i].used) {
            if (slots_[i].seq == seq)
                return &slots_[i].tag;
            i = next(i);
        }
        return nullptr;
    }

    /// Remove @p seq; returns false if it was not present.
    bool erase(std::uint64_t seq)
    {
        if (slots_.empty())
            return false;
        std::size_t i = home(seq);
        while (slots_[i].used && slots_[i].seq != seq)
            i = next(i);
        if (!slots_[i].used)
            return false;
        // Backward-shift deletion: pull the rest of the probe cluster
        // one slot back so lookups never need tombstones (which would
        // otherwise accumulate one per fired event).
        std::size_t hole = i;
        for (std::size_t j = next(i); slots_[j].used; j = next(j)) {
            if (probeDistance(j) == 0)
                break;
            slots_[hole] = slots_[j];
            hole = j;
        }
        slots_[hole].used = false;
        --size_;
        return true;
    }

    /// Drop every entry, keeping the allocation.
    void clear()
    {
        for (auto& slot : slots_)
            slot.used = false;
        size_ = 0;
    }

    std::size_t size() const { return size_; }

  private:
    struct Slot
    {
        std::uint64_t seq = 0;
        snap::EventTag tag;
        bool used = false;
    };

    std::size_t home(std::uint64_t seq) const
    {
        // Fibonacci hashing spreads the monotonically assigned sequence
        // numbers across the (power-of-two) table.
        return std::size_t((seq * 0x9E3779B97F4A7C15ull) >> 32) &
               (slots_.size() - 1);
    }

    std::size_t next(std::size_t i) const
    {
        return (i + 1) & (slots_.size() - 1);
    }

    std::size_t probeDistance(std::size_t i) const
    {
        return (i - home(slots_[i].seq)) & (slots_.size() - 1);
    }

    void grow()
    {
        std::vector<Slot> old = std::move(slots_);
        slots_.assign(old.empty() ? 64 : old.size() * 2, Slot{});
        size_ = 0;
        for (const auto& slot : old) {
            if (slot.used)
                insert(slot.seq, slot.tag);
        }
    }

    std::vector<Slot> slots_;
    std::size_t size_ = 0;
};

} // namespace hddtherm::engine

#endif // HDDTHERM_ENGINE_TAG_MAP_H
