/**
 * @file
 * Event-trace hook interface of the simulation kernel.
 *
 * A TraceSink subscribed to a SimKernel observes every event the kernel
 * schedules and fires as a TraceEvent {time, when, domain, kind, id}.
 * Tracing is strictly observational: attaching any sink leaves simulation
 * results bit-identical (the kernel-equivalence property test pins this).
 *
 * Three sinks cover the common cases: no sink at all (a nullptr, the
 * default — one branch of overhead), RingBufferTraceSink (bounded
 * in-memory capture for tests and post-mortem inspection), and
 * CsvTraceSink (streaming "time,domain,kind,id" rows for offline
 * analysis).
 */
#ifndef HDDTHERM_ENGINE_TRACE_H
#define HDDTHERM_ENGINE_TRACE_H

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace hddtherm::engine {

/// Simulated time in seconds (the one clock every layer shares).
using SimTime = double;

/// Handle of a registered clock domain.
using DomainId = int;

/// What a TraceEvent records.
enum class TraceKind : std::uint8_t
{
    Scheduled, ///< An event was enqueued (time = now, when = fire time).
    Fired,     ///< An event executed (time == when == its fire time).
};

/// Human-readable TraceKind name.
const char* traceKindName(TraceKind kind);

/// One observed kernel event.
struct TraceEvent
{
    SimTime time = 0.0;      ///< Kernel time at emission.
    SimTime when = 0.0;      ///< The event's (scheduled) fire time.
    DomainId domain = 0;     ///< Clock domain the event belongs to.
    /// Domain name.  An owning copy (SSO-cheap for real domain names), so
    /// buffered TraceEvents stay valid after their kernel is destroyed —
    /// e.g. the fleet's epoch kernel is local to FleetSimulation::run().
    std::string domainName;
    TraceKind kind = TraceKind::Scheduled;
    std::uint64_t id = 0;    ///< Kernel-unique event sequence number.
};

/// Subscriber interface for kernel event traces.
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /// Called by the kernel for every schedule and fire.
    virtual void onEvent(const TraceEvent& event) = 0;
};

/// Keeps the newest @p capacity events in memory; older ones are dropped.
class RingBufferTraceSink : public TraceSink
{
  public:
    explicit RingBufferTraceSink(std::size_t capacity);

    void onEvent(const TraceEvent& event) override;

    /// Buffered events, oldest first.
    std::vector<TraceEvent> events() const;

    /// Total events observed (buffered + dropped).
    std::uint64_t observed() const { return observed_; }

    /// Events that fell off the ring (overwritten by newer ones).
    /// Events discarded via clear() are not counted here.
    std::uint64_t dropped() const { return dropped_; }

    /// Discard everything buffered.  observed() and dropped() keep
    /// running; discarded events count as neither.
    void clear();

  private:
    std::vector<TraceEvent> ring_;
    std::size_t head_ = 0; ///< Next write position.
    std::size_t size_ = 0; ///< Buffered count (<= capacity).
    std::uint64_t observed_ = 0;
    std::uint64_t dropped_ = 0;
};

/// Streams "time,when,domain,kind,id" CSV rows (header included).
class CsvTraceSink : public TraceSink
{
  public:
    /// Writes to @p out, which must outlive the sink.
    explicit CsvTraceSink(std::ostream& out);

    void onEvent(const TraceEvent& event) override;

    /// Rows written so far (excluding the header).
    std::uint64_t rows() const { return rows_; }

  private:
    std::ostream& out_;
    std::uint64_t rows_ = 0;
};

} // namespace hddtherm::engine

#endif // HDDTHERM_ENGINE_TRACE_H
