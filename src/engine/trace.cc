#include "engine/trace.h"

#include <ostream>

#include "util/error.h"

namespace hddtherm::engine {

const char*
traceKindName(TraceKind kind)
{
    switch (kind) {
      case TraceKind::Scheduled:
        return "scheduled";
      case TraceKind::Fired:
        return "fired";
    }
    return "unknown";
}

RingBufferTraceSink::RingBufferTraceSink(std::size_t capacity)
    : ring_(capacity)
{
    HDDTHERM_REQUIRE(capacity >= 1, "ring buffer needs capacity");
}

void
RingBufferTraceSink::onEvent(const TraceEvent& event)
{
    if (size_ == ring_.size())
        ++dropped_; // overwriting the oldest buffered event
    else
        ++size_;
    ring_[head_] = event;
    head_ = (head_ + 1) % ring_.size();
    ++observed_;
}

std::vector<TraceEvent>
RingBufferTraceSink::events() const
{
    std::vector<TraceEvent> out;
    out.reserve(size_);
    // Oldest element sits at head_ once the ring has wrapped.
    const std::size_t start =
        size_ < ring_.size() ? 0 : head_;
    for (std::size_t i = 0; i < size_; ++i)
        out.push_back(ring_[(start + i) % ring_.size()]);
    return out;
}

void
RingBufferTraceSink::clear()
{
    head_ = 0;
    size_ = 0;
}

CsvTraceSink::CsvTraceSink(std::ostream& out) : out_(out)
{
    out_ << "time_sec,when_sec,domain,kind,id\n";
}

void
CsvTraceSink::onEvent(const TraceEvent& event)
{
    out_ << event.time << ',' << event.when << ',' << event.domainName
         << ',' << traceKindName(event.kind) << ',' << event.id << '\n';
    ++rows_;
}

} // namespace hddtherm::engine
