/**
 * @file
 * KernelMetricsSink: the TraceSink that aggregates instead of recording.
 *
 * Where RingBufferTraceSink keeps individual events and CsvTraceSink
 * streams them, KernelMetricsSink folds the kernel's event stream into
 * the obs metrics registry:
 *
 *   engine.kernel.<domain>.scheduled   events enqueued per clock domain
 *   engine.kernel.<domain>.fired       events executed per clock domain
 *   engine.kernel.dispatch_us          host wall time between consecutive
 *                                      fires (dispatch + callback cost)
 *
 * Like every sink it is strictly observational — attaching one changes
 * no simulation result (pinned by the kernel-equivalence and obs
 * bit-identity suites).  The per-domain counters are deterministic
 * functions of the run; the dispatch histogram is host wall time and is
 * therefore excluded from golden comparisons.
 *
 * The sink honors obs::enabled() per event, so it can stay attached with
 * metrics off at the cost of the kernel's sink branch plus one atomic
 * load per event.
 */
#ifndef HDDTHERM_ENGINE_METRICS_SINK_H
#define HDDTHERM_ENGINE_METRICS_SINK_H

#include <chrono>
#include <string>
#include <unordered_map>

#include "engine/trace.h"
#include "obs/metrics.h"

namespace hddtherm::engine {

/// Aggregates kernel events into an obs::MetricsRegistry.
class KernelMetricsSink : public TraceSink
{
  public:
    /// Record into @p registry (defaults to the global registry).
    explicit KernelMetricsSink(
        obs::MetricsRegistry& registry = obs::MetricsRegistry::global());

    void onEvent(const TraceEvent& event) override;

  private:
    struct DomainCounters
    {
        obs::Counter* scheduled = nullptr;
        obs::Counter* fired = nullptr;
    };

    DomainCounters& countersFor(const std::string& domain);

    obs::MetricsRegistry& registry_;
    std::unordered_map<std::string, DomainCounters> domains_;
    obs::HistogramMetric* dispatch_us_ = nullptr;
    bool has_last_fire_ = false;
    std::chrono::steady_clock::time_point last_fire_;
};

} // namespace hddtherm::engine

#endif // HDDTHERM_ENGINE_METRICS_SINK_H
