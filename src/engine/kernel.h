/**
 * @file
 * The deterministic discrete-event simulation kernel.
 *
 * One SimKernel carries the shared notion of time for every layer of the
 * simulator.  It generalizes the original sim::EventQueue three ways:
 *
 *   1. Deterministic tie-breaking.  Events fire in (time, priority,
 *      sequence) order: simultaneous events run lowest-priority-value
 *      first, and events of equal time and priority run in the order they
 *      were scheduled.  Replays are bit-identical by construction.
 *
 *   2. Named clock domains.  A domain is a label (plus a default
 *      priority) under which events are scheduled: the event-driven
 *      storage domain, the fixed-step thermal/DTM control domain, the
 *      epoch-step fleet ambient domain.  Domains cost one int per event
 *      and make every event attributable in traces.  registerDomain() is
 *      idempotent by name, so components sharing a kernel can each claim
 *      their domain without coordination.
 *
 *   3. Event tracing.  An optional TraceSink observes every schedule and
 *      fire as {time, when, domain, kind, id}.  With no sink attached the
 *      hook is a single branch on the hot path (see
 *      bench_kernel_overhead).
 *
 * Periodic work (control ticks, epoch barriers) registers through
 * schedulePeriodic(): the callback returns true to keep ticking, false to
 * stop.  The kernel reschedules after the callback returns, which keeps
 * the sequence-number assignment — and therefore tie order — identical to
 * a callback that reschedules itself as its last statement.
 */
#ifndef HDDTHERM_ENGINE_KERNEL_H
#define HDDTHERM_ENGINE_KERNEL_H

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "engine/tag_map.h"
#include "engine/trace.h"
#include "snap/snapshot.h"

namespace hddtherm::engine {

/// Time-ordered event kernel driving the simulation.
class SimKernel
{
  public:
    using Callback = std::function<void()>;
    /// Periodic callback: return true to keep the task ticking.
    using PeriodicCallback = std::function<bool()>;

    /// Domain 0 always exists and is named "default".
    static constexpr DomainId kDefaultDomain = 0;

    /**
     * Domain priorities must fit 16 bits: (priority, sequence) are packed
     * into one 64-bit heap key, so tie-breaking costs the comparator
     * exactly what the pre-refactor (time, sequence) queue paid.  The
     * bound is enforced loudly by registerDomain().
     */
    static constexpr int kMinPriority = -32768;
    static constexpr int kMaxPriority = 32767;

    /// Packed heap-key layout: priority(16) | sequence(32) | domain(16).
    static constexpr int kSeqBits = 32;
    static constexpr int kDomainBits = 16;

    SimKernel();

    /**
     * Register (or look up) the clock domain called @p name.  Events
     * scheduled under the domain inherit @p priority for tie-breaking
     * (lower fires first among simultaneous events).  Registering an
     * existing name returns its id; the priorities must then agree.
     */
    DomainId registerDomain(const std::string& name, int priority = 0);

    /// Registered domain count (>= 1: the default domain).
    int domainCount() const { return int(domains_.size()); }

    /// Name of a registered domain.
    const std::string& domainName(DomainId id) const;

    /// Tie-break priority of a registered domain.
    int domainPriority(DomainId id) const;

    /// Schedule @p cb at absolute time @p when (>= now()).
    void schedule(SimTime when, Callback cb)
    {
        schedule(when, kDefaultDomain, std::move(cb));
    }

    /// Schedule @p cb at @p when under clock domain @p domain.
    void schedule(SimTime when, DomainId domain, Callback cb);

    /**
     * Schedule @p cb at @p when under @p domain with a snapshot tag: a
     * typed description from which the owning module rebuilds the exact
     * callback on restore (see snap/snapshot.h).  While snapshots are
     * disabled the tag is ignored and this is plain schedule().
     */
    void schedule(SimTime when, DomainId domain,
                  const snap::EventTag& tag, Callback cb);

    /// Schedule @p cb at now() + @p delay.
    void scheduleAfter(SimTime delay, Callback cb)
    {
        scheduleAfter(delay, kDefaultDomain, std::move(cb));
    }

    /// Schedule @p cb at now() + @p delay under domain @p domain.
    void scheduleAfter(SimTime delay, DomainId domain, Callback cb);

    /**
     * Arm a periodic task on @p domain: @p cb first fires at
     * now() + @p period and re-fires every @p period while it returns
     * true.  The reschedule happens after the callback returns, so events
     * the callback schedules sort ahead of the next tick at equal
     * timestamps.
     */
    void schedulePeriodic(DomainId domain, SimTime period,
                          PeriodicCallback cb);

    /**
     * Arm a *named* periodic task.  The name is the task's identity in a
     * checkpoint: on restore, loadState() asks its TaskResolver to
     * rebuild the callback for each saved name.  Snapshot-enabled
     * kernels require every periodic task to be named.
     */
    void schedulePeriodic(DomainId domain, SimTime period,
                          std::string name, PeriodicCallback cb);

    /// Pop and run the earliest event; returns false if the queue is empty.
    bool runNext();

    /// Run events with when <= @p limit; time advances to @p limit.
    void runUntil(SimTime limit);

    /// Run until the queue drains.
    void runAll();

    /// Current simulated time.
    SimTime now() const { return now_; }

    /// True if no events are pending.
    bool empty() const { return heap_.empty(); }

    /// Number of pending events.
    std::size_t pending() const { return heap_.size(); }

    /// Events executed so far (diagnostics / benchmarks).
    std::uint64_t fired() const { return fired_; }

    /**
     * Attach @p sink to observe every schedule and fire (nullptr
     * detaches).  The sink must outlive the kernel or be detached first.
     * Attaching a sink never perturbs event order or simulation results
     * (pinned by the kernel-equivalence property test).
     */
    void setTraceSink(TraceSink* sink) { sink_ = sink; }

    /// Currently attached sink, or nullptr.
    TraceSink* traceSink() const { return sink_; }

    /// @name Checkpoint/restore
    /// @{

    /// Rebuilds the callback of one tagged event on restore.
    using EventResolver = std::function<Callback(const snap::EventTag&)>;

    /// Rebuilds the callback of one named periodic task on restore.
    using TaskResolver =
        std::function<PeriodicCallback(const std::string&)>;

    /**
     * Turn snapshot bookkeeping on or off.  Must be called before any
     * event or periodic task exists — tags are recorded at schedule
     * time, so a late enable would leave untrackable events behind.
     * While enabled, every pending event carries its tag in a side
     * table and untagged events are merely *counted*: they are legal,
     * but saveState() refuses to run until they have fired.
     */
    void enableSnapshots(bool on);

    /// True if snapshot bookkeeping is active.
    bool snapshotsEnabled() const { return snapshots_; }

    /// Pending events scheduled without a tag (0 is required to save).
    std::size_t untaggedPending() const { return untagged_pending_; }

    /**
     * Serialize clocks, the periodic-task table, and every pending
     * event (as its tag, in canonical (when, key) order).  Requires
     * snapshots enabled, zero untagged pending events, and a name on
     * every live periodic task — violations throw util::ModelError
     * rather than silently dropping state.
     */
    void saveState(snap::StateWriter& w) const;

    /**
     * Restore a kernel saved by saveState().  Must be called on an idle
     * kernel (no events, no periodic tasks) whose registered domains
     * exactly match the saved run — modules register domains during
     * construction, so rebuilding the object graph from the same config
     * satisfies this.  Pending events are re-enqueued with their
     * *original* heap keys and the sequence counter resumes where it
     * left off, so tie-breaking — and therefore the simulation — is
     * bit-identical to the uninterrupted run.  @p events rebuilds
     * module-owned callbacks from their tags; @p tasks rebuilds named
     * periodic callbacks (periodic re-fire events are handled
     * internally).
     */
    void loadState(snap::StateReader& r, const EventResolver& events,
                   const TaskResolver& tasks);

    /// @}

  private:
    /**
     * key = biased priority(16) | sequence(32) | domain(16): one integer
     * compare resolves both tie-break levels (the domain sits below the
     * unique sequence, so it never influences order), and the event
     * matches the pre-refactor queue's 48 bytes exactly — heap sifts
     * move whole events, so size is dispatch cost (bench_kernel_overhead
     * gates this).
     */
    struct Event
    {
        SimTime when;
        std::uint64_t key;
        Callback cb;
    };
    struct Later
    {
        bool operator()(const Event& a, const Event& b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.key > b.key;
        }
    };
    struct Domain
    {
        std::string name;
        int priority;
        /// Biased priority pre-shifted into the key's top 16 bits plus
        /// the domain id in its low 16, so schedule() builds an event
        /// key from the sequence number with a single OR.
        std::uint64_t key_base;
    };
    struct PeriodicTask
    {
        DomainId domain;
        SimTime period;
        PeriodicCallback cb;
        std::string name; ///< Checkpoint identity ("" = unnamed).
    };

    void firePeriodic(std::size_t index);
    void emit(TraceKind kind, const Event& ev);
    void scheduleImpl(SimTime when, DomainId domain,
                      const snap::EventTag* tag, Callback cb);

    /// Sequence number packed inside an event key (unique per event).
    static std::uint64_t seqOf(std::uint64_t key)
    {
        return (key >> kDomainBits) &
               ((std::uint64_t(1) << kSeqBits) - 1);
    }

    /// Sentinel for firing_periodic_: no periodic callback in flight.
    static constexpr std::size_t kNoTask = std::size_t(-1);

    std::priority_queue<Event, std::vector<Event>, Later> heap_;
    std::vector<Domain> domains_;
    std::vector<PeriodicTask> periodic_;
    /// Index of the periodic task currently executing (kNoTask outside a
    /// firing).  saveState() needs it: a checkpoint written from inside a
    /// periodic callback — the normal case, the checkpoint writer IS a
    /// periodic task — must count that task as alive and note that its
    /// re-fire event does not exist yet (it is scheduled only after the
    /// callback returns), so loadState() can reconstruct it.
    std::size_t firing_periodic_ = kNoTask;
    TraceSink* sink_ = nullptr;
    SimTime now_ = 0.0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t fired_ = 0;

    /// Snapshot side table: sequence number -> tag of the pending event.
    EventTagMap tags_;
    std::size_t untagged_pending_ = 0;
    bool snapshots_ = false;
};

} // namespace hddtherm::engine

#endif // HDDTHERM_ENGINE_KERNEL_H
