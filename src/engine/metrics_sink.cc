#include "engine/metrics_sink.h"

namespace hddtherm::engine {

namespace {

/// Microsecond buckets for inter-fire dispatch timing.
const std::vector<double>&
dispatchEdgesUs()
{
    static const std::vector<double> edges = {0.1,  0.5,   1.0,   5.0,
                                              10.0, 100.0, 1000.0};
    return edges;
}

} // namespace

KernelMetricsSink::KernelMetricsSink(obs::MetricsRegistry& registry)
    : registry_(registry)
{}

KernelMetricsSink::DomainCounters&
KernelMetricsSink::countersFor(const std::string& domain)
{
    const auto it = domains_.find(domain);
    if (it != domains_.end())
        return it->second;
    DomainCounters counters;
    counters.scheduled =
        &registry_.counter("engine.kernel." + domain + ".scheduled");
    counters.fired =
        &registry_.counter("engine.kernel." + domain + ".fired");
    return domains_.emplace(domain, counters).first->second;
}

void
KernelMetricsSink::onEvent(const TraceEvent& event)
{
    if (!obs::enabled())
        return;
    DomainCounters& counters = countersFor(event.domainName);
    switch (event.kind) {
      case TraceKind::Scheduled:
        counters.scheduled->add(1);
        break;
      case TraceKind::Fired: {
        counters.fired->add(1);
        const auto now = std::chrono::steady_clock::now();
        if (has_last_fire_) {
            if (!dispatch_us_) {
                dispatch_us_ = &registry_.histogram(
                    "engine.kernel.dispatch_us", dispatchEdgesUs());
            }
            dispatch_us_->observe(
                std::chrono::duration<double, std::micro>(now - last_fire_)
                    .count());
        }
        last_fire_ = now;
        has_last_fire_ = true;
        break;
      }
    }
}

} // namespace hddtherm::engine
