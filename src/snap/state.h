/**
 * @file
 * Checkpoint section payloads: a stream of tagged, named fields.
 *
 * Every field is written as {type, name, value} in little-endian byte
 * order.  Readers are strict and sequential: each typed getter consumes
 * the next field and requires its (full, prefix-qualified) name and type
 * to match, throwing util::ModelError naming the section and field on any
 * mismatch or truncation — a corrupted or mis-ordered checkpoint can
 * never be half-applied silently.  A generic cursor (next()) walks the
 * same encoding without expectations, which is what the snap_inspect
 * dump/diff tool uses to localize divergence between two checkpoints.
 *
 * Scoped prefixes ("disk0.", "mech.") let repeated sub-objects reuse one
 * save/load routine while keeping every on-disk field name unique.  For
 * high-volume homogeneous records (the kernel's pending-event list, the
 * RAID controller's in-flight table) a Blob{Writer,Reader} packs raw
 * primitives inside a single named bytes field.
 */
#ifndef HDDTHERM_SNAP_STATE_H
#define HDDTHERM_SNAP_STATE_H

#include <cstdint>
#include <string>
#include <vector>

namespace hddtherm::snap {

/// FNV-1a 64-bit over a byte range (checkpoint payload checksums).
std::uint64_t fnv1a64(const void* data, std::size_t size,
                      std::uint64_t seed = 14695981039346656037ull);

/// On-disk field type tags (stable identifiers; never renumber).
enum class FieldType : std::uint8_t
{
    U64 = 1,
    I64 = 2,
    F64 = 3,
    Str = 4,
    Bytes = 5,
    U64Vec = 6,
    F64Vec = 7,
};

/// Human-readable field-type name (diagnostics).
const char* fieldTypeName(FieldType type);

/// Serializes one checkpoint section as a tagged field stream.
class StateWriter
{
  public:
    /// @param section section name, used only in error messages.
    explicit StateWriter(std::string section);

    void u64(const char* name, std::uint64_t v);
    void i64(const char* name, std::int64_t v);
    void f64(const char* name, double v);
    void boolean(const char* name, bool v) { u64(name, v ? 1 : 0); }
    void str(const char* name, const std::string& v);
    void bytes(const char* name, const std::vector<std::uint8_t>& v);
    void u64vec(const char* name, const std::vector<std::uint64_t>& v);
    void f64vec(const char* name, const std::vector<double>& v);

    /// Enter/leave a name scope: fields written inside carry
    /// "<prefix>." before their name.  Scopes nest.
    void pushPrefix(const std::string& prefix);
    void popPrefix();

    /// Section name this writer serializes.
    const std::string& section() const { return section_; }

    /// Encoded payload so far.
    const std::vector<std::uint8_t>& buffer() const { return buffer_; }

    /// Move the encoded payload out (the writer is spent afterwards).
    std::vector<std::uint8_t> take() { return std::move(buffer_); }

  private:
    void header(FieldType type, const char* name);

    std::string section_;
    std::string prefix_;
    std::vector<std::size_t> prefix_stack_; ///< Previous prefix lengths.
    std::vector<std::uint8_t> buffer_;
};

/// Strict sequential decoder for one checkpoint section.
class StateReader
{
  public:
    /**
     * Decode @p size bytes at @p data (borrowed; must outlive the
     * reader).  @p section names the section in error messages.
     */
    StateReader(std::string section, const std::uint8_t* data,
                std::size_t size);

    std::uint64_t u64(const char* name);
    std::int64_t i64(const char* name);
    double f64(const char* name);
    bool boolean(const char* name) { return u64(name) != 0; }
    std::string str(const char* name);
    std::vector<std::uint8_t> bytes(const char* name);
    std::vector<std::uint64_t> u64vec(const char* name);
    std::vector<double> f64vec(const char* name);

    /// Mirror of StateWriter::pushPrefix/popPrefix.
    void pushPrefix(const std::string& prefix);
    void popPrefix();

    /// True once every field has been consumed.
    bool atEnd() const { return pos_ >= size_; }

    /// Section name being decoded.
    const std::string& section() const { return section_; }

    /// One decoded field, as the generic cursor yields it.
    struct Field
    {
        std::string name; ///< Full (prefix-qualified) on-disk name.
        FieldType type = FieldType::U64;
        std::uint64_t u = 0;              ///< U64 value.
        std::int64_t i = 0;               ///< I64 value.
        double f = 0.0;                   ///< F64 value.
        std::string s;                    ///< Str value.
        std::vector<std::uint8_t> raw;    ///< Bytes value.
        std::vector<std::uint64_t> uv;    ///< U64Vec value.
        std::vector<double> fv;           ///< F64Vec value.

        /// Canonical printable form (snap_inspect dump/diff lines).
        std::string display() const;
    };

    /**
     * Generic cursor: decode the next field without name/type
     * expectations.  Returns false at end of section.  Still validates
     * structure (throws on truncation).
     */
    bool next(Field& out);

  private:
    Field expect(FieldType type, const char* name);
    void need(std::size_t n, const std::string& what);

    std::string section_;
    std::string prefix_;
    std::vector<std::size_t> prefix_stack_;
    const std::uint8_t* data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

/// RAII name scope for a StateWriter or StateReader.
template <typename T>
class ScopedPrefix
{
  public:
    ScopedPrefix(T& target, const std::string& prefix) : target_(target)
    {
        target_.pushPrefix(prefix);
    }
    ~ScopedPrefix() { target_.popPrefix(); }
    ScopedPrefix(const ScopedPrefix&) = delete;
    ScopedPrefix& operator=(const ScopedPrefix&) = delete;

  private:
    T& target_;
};

/// Packs unnamed primitives for high-volume records inside one bytes
/// field (little-endian, no per-value overhead).
class BlobWriter
{
  public:
    void u8(std::uint8_t v) { buffer_.push_back(v); }
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void i64(std::int64_t v);
    void f64(double v);
    /// Bulk append of @p count 64-bit words (the fast path for packed
    /// fixed-width records such as requests and pending events).
    void words(const std::uint64_t* w, std::size_t count);

    /// Grow the backing buffer ahead of a known-size record burst.
    void reserve(std::size_t bytes) { buffer_.reserve(bytes); }

    /// Move the packed bytes out.
    std::vector<std::uint8_t> take() { return std::move(buffer_); }

  private:
    std::vector<std::uint8_t> buffer_;
};

/// Bounds-checked sequential decoder for BlobWriter output.
class BlobReader
{
  public:
    /// @param context label for error messages (e.g. "section 'x' events").
    BlobReader(std::string context, const std::vector<std::uint8_t>& data);

    std::uint8_t u8();
    std::uint32_t u32();
    std::uint64_t u64();
    std::int64_t i64();
    double f64();

    bool atEnd() const { return pos_ >= data_->size(); }
    std::size_t remaining() const { return data_->size() - pos_; }

  private:
    void need(std::size_t n);

    std::string context_;
    const std::vector<std::uint8_t>* data_;
    std::size_t pos_ = 0;
};

} // namespace hddtherm::snap

#endif // HDDTHERM_SNAP_STATE_H
