/**
 * @file
 * Checkpoint/restore vocabulary shared by every snapshottable module.
 *
 * The simulation kernel's event heap holds opaque closures, which cannot
 * be serialized.  Snapshot support therefore rides on a side channel: a
 * module that schedules an event it wants to survive a checkpoint attaches
 * an EventTag — a typed, self-contained description (kind + a few words of
 * payload) from which the module can rebuild the exact callback on
 * restore.  Tags cost nothing while snapshots are disabled (the default)
 * and one hash-map insert per event while enabled.
 *
 * Events scheduled *without* a tag are legal but mark the kernel
 * unsnapshottable until they fire: SimKernel::saveState() fails loudly
 * rather than silently dropping them (the closed-loop/hybrid drivers and
 * the mirror controller schedule such closures; see docs/checkpoint.md).
 */
#ifndef HDDTHERM_SNAP_SNAPSHOT_H
#define HDDTHERM_SNAP_SNAPSHOT_H

#include <array>
#include <cstdint>

namespace hddtherm::snap {

class StateWriter;
class StateReader;

/// @name Registered event kinds (stable on-disk identifiers).
/// @{
inline constexpr std::uint32_t kEvtPeriodic = 1;  ///< Kernel periodic tick.
inline constexpr std::uint32_t kEvtArrival = 2;   ///< Logical I/O arrival.
inline constexpr std::uint32_t kEvtDiskFinish = 3; ///< Disk service finish.
inline constexpr std::uint32_t kEvtDiskRetry = 4;  ///< Disk dispatch retry.
/// @}

/**
 * Serializable description of one pending event.  `kind` selects the
 * rebuild recipe, `aux` addresses the owning component (periodic-task
 * index, disk id), and `w` carries the kind-specific payload (e.g. a
 * packed IoRequest).  Unused words must stay zero so records compare
 * and hash stably.
 */
struct EventTag
{
    std::uint32_t kind = 0;
    std::uint32_t aux = 0;
    std::array<std::uint64_t, 6> w{};
};

/**
 * Interface of a module whose live state can round-trip through a
 * checkpoint section.  loadState() must consume fields in exactly the
 * order saveState() wrote them (the stream is sequential and
 * name-checked), and must leave the module bit-identical to the instant
 * the checkpoint was taken.
 */
class Snapshottable
{
  public:
    virtual ~Snapshottable() = default;
    virtual void saveState(StateWriter& w) const = 0;
    virtual void loadState(StateReader& r) = 0;
};

} // namespace hddtherm::snap

#endif // HDDTHERM_SNAP_SNAPSHOT_H
