/**
 * @file
 * Where checkpoint bytes land: the CheckpointSink abstraction.
 *
 * CheckpointManager serializes on the simulation thread and performs all
 * storage I/O on a private writer thread; a sink is the storage side of
 * that split.  Every put() must be *atomic and durable*: a reader (or a
 * crash) can never observe a half-written object.  LocalDirSink keeps
 * today's temp-file + fflush + fsync + rename protocol; an object-store
 * PUT sink slots in behind the same queue later without touching the
 * determinism contract, because sinks only ever see finished container
 * bytes.  MemoryCheckpointSink backs tests (and lets fault-injection
 * sinks wrap it to exercise the manager's sticky-error path).
 *
 * Names handed to a sink are bare object names ("checkpoint-…#.hdtsnap"),
 * never paths; describe() maps a name to a human/locator string (the
 * full filesystem path for LocalDirSink).
 */
#ifndef HDDTHERM_SNAP_SINK_H
#define HDDTHERM_SNAP_SINK_H

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace hddtherm::snap {

/// Durable storage for finished checkpoint containers.
class CheckpointSink
{
  public:
    virtual ~CheckpointSink() = default;

    /**
     * Durably store @p bytes under @p name, atomically replacing any
     * previous object of that name.  @throws util::ModelError on
     * failure, leaving any previous object intact.
     */
    virtual void put(const std::string& name,
                     const std::vector<std::uint8_t>& bytes) = 0;

    /// Fetch a stored object (throws util::ModelError if absent).
    virtual std::vector<std::uint8_t> get(const std::string& name) const = 0;

    /// True if an object of that name is stored.
    virtual bool contains(const std::string& name) const = 0;

    /// Delete an object if present (absence is not an error).
    virtual void remove(const std::string& name) = 0;

    /// Names of every stored object, in unspecified order.
    virtual std::vector<std::string> list() const = 0;

    /// Locator string for @p name (a filesystem path for local sinks).
    virtual std::string describe(const std::string& name) const = 0;
};

/// Filesystem sink: one directory, temp+fsync+rename atomic puts.
class LocalDirSink : public CheckpointSink
{
  public:
    /// Creates @p directory if absent (throws if that fails).
    explicit LocalDirSink(std::string directory);

    void put(const std::string& name,
             const std::vector<std::uint8_t>& bytes) override;
    std::vector<std::uint8_t> get(const std::string& name) const override;
    bool contains(const std::string& name) const override;
    void remove(const std::string& name) override;
    std::vector<std::string> list() const override;
    std::string describe(const std::string& name) const override;

    const std::string& directory() const { return directory_; }

  private:
    std::string directory_;
};

/// In-memory sink for tests: a mutex-protected name → bytes map.  puts
/// are trivially atomic; fault-injection test sinks subclass this and
/// fail selected puts to drive CheckpointManager's error path.
class MemoryCheckpointSink : public CheckpointSink
{
  public:
    void put(const std::string& name,
             const std::vector<std::uint8_t>& bytes) override;
    std::vector<std::uint8_t> get(const std::string& name) const override;
    bool contains(const std::string& name) const override;
    void remove(const std::string& name) override;
    std::vector<std::string> list() const override;
    std::string describe(const std::string& name) const override;

    /// Number of stored objects.
    std::size_t size() const;

  protected:
    mutable std::mutex mutex_;
    std::map<std::string, std::vector<std::uint8_t>> objects_;
};

} // namespace hddtherm::snap

#endif // HDDTHERM_SNAP_SINK_H
