#include "snap/format.h"

#include <cstdio>
#include <cstring>

#ifdef _WIN32
#include <io.h>
#else
#include <unistd.h>
#endif

#include "util/codec.h"
#include "util/error.h"

namespace hddtherm::snap {

namespace {

void
appendLe(std::vector<std::uint8_t>& out, std::uint64_t v, int bytes)
{
    for (int i = 0; i < bytes; ++i)
        out.push_back(std::uint8_t(v >> (8 * i)));
}

std::uint64_t
readLe(const std::uint8_t* p, int bytes)
{
    std::uint64_t v = 0;
    for (int i = 0; i < bytes; ++i)
        v |= std::uint64_t(p[i]) << (8 * i);
    return v;
}

void
syncToDisk(std::FILE* f)
{
#ifdef _WIN32
    (void)f;
#else
    ::fsync(::fileno(f));
#endif
}

} // namespace

std::vector<std::uint8_t>
serializeSections(std::uint64_t config_hash,
                  const std::vector<StoredSection>& sections)
{
    // Fixed header + section table sizes are known up front, so payload
    // offsets can be computed before anything is emitted.
    std::size_t table_size = 0;
    for (const auto& s : sections)
        table_size += 2 + s.name.size() + 8 + 8 + 8 + 1;
    const std::size_t header_size = 8 + 4 + 4 + 8 + 8;

    std::size_t total = header_size + table_size;
    for (const auto& s : sections)
        total += s.stored.size();

    std::vector<std::uint8_t> out;
    out.reserve(total);
    for (const char c : kMagic)
        out.push_back(std::uint8_t(c));
    appendLe(out, kFormatVersion, 4);
    appendLe(out, sections.size(), 4);
    appendLe(out, config_hash, 8);
    appendLe(out, total, 8);

    std::size_t offset = header_size + table_size;
    for (const auto& s : sections) {
        HDDTHERM_ASSERT((s.flags & ~kSectionKnownFlags) == 0);
        appendLe(out, s.name.size(), 2);
        out.insert(out.end(), s.name.begin(), s.name.end());
        appendLe(out, offset, 8);
        appendLe(out, s.stored.size(), 8);
        appendLe(out, fnv1a64(s.stored.data(), s.stored.size()), 8);
        out.push_back(s.flags);
        offset += s.stored.size();
    }
    for (const auto& s : sections)
        out.insert(out.end(), s.stored.begin(), s.stored.end());

    HDDTHERM_ASSERT(out.size() == total);
    return out;
}

CheckpointWriter::CheckpointWriter(std::uint64_t config_hash)
    : config_hash_(config_hash)
{}

void
CheckpointWriter::addSection(const std::string& name,
                             std::vector<std::uint8_t> payload)
{
    HDDTHERM_REQUIRE(!name.empty() && name.size() <= 0xffff,
                     "checkpoint section name must fit 16 bits");
    HDDTHERM_REQUIRE(!has(name), "duplicate checkpoint section '" + name +
                                     "'");
    sections_.push_back(Section{name, std::move(payload)});
}

void
CheckpointWriter::addSection(StateWriter&& writer)
{
    addSection(writer.section(), writer.take());
}

bool
CheckpointWriter::has(const std::string& name) const
{
    for (const auto& s : sections_)
        if (s.name == name)
            return true;
    return false;
}

const std::string&
CheckpointWriter::sectionName(std::size_t i) const
{
    HDDTHERM_ASSERT(i < sections_.size());
    return sections_[i].name;
}

const std::vector<std::uint8_t>&
CheckpointWriter::sectionPayload(std::size_t i) const
{
    HDDTHERM_ASSERT(i < sections_.size());
    return sections_[i].payload;
}

std::vector<std::uint8_t>
CheckpointWriter::serialize() const
{
    std::vector<StoredSection> stored;
    stored.reserve(sections_.size());
    for (const auto& s : sections_) {
        StoredSection out{s.name, s.payload, 0};
        if (compress_ && !s.payload.empty()) {
            auto packed = util::codec::compress(s.payload);
            // Only take the compressed form when it actually wins, so
            // incompressible payloads never grow.
            if (packed.size() < s.payload.size()) {
                out.stored = std::move(packed);
                out.flags = kSectionCompressed;
            }
        }
        stored.push_back(std::move(out));
    }
    return serializeSections(config_hash_, stored);
}

void
CheckpointWriter::writeFile(const std::string& path) const
{
    writeCheckpointBytes(path, serialize());
}

void
writeCheckpointBytes(const std::string& path,
                     const std::vector<std::uint8_t>& bytes)
{
    const std::string tmp = path + ".tmp";

    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    HDDTHERM_REQUIRE(f != nullptr,
                     "cannot open checkpoint temp file '" + tmp + "'");
    const std::size_t written =
        bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), f);
    const bool flushed = std::fflush(f) == 0;
    if (written == bytes.size() && flushed)
        syncToDisk(f);
    std::fclose(f);
    if (written != bytes.size() || !flushed) {
        std::remove(tmp.c_str());
        HDDTHERM_REQUIRE(false,
                         "short write to checkpoint temp file '" + tmp +
                             "'");
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        HDDTHERM_REQUIRE(false, "cannot rename checkpoint into place at '" +
                                    path + "'");
    }
}

CheckpointReader::CheckpointReader(const std::string& path) : label_(path)
{
    std::FILE* f = std::fopen(path.c_str(), "rb");
    HDDTHERM_REQUIRE(f != nullptr,
                     "cannot open checkpoint '" + path + "'");
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    if (size > 0) {
        bytes_.resize(std::size_t(size));
        const std::size_t got =
            std::fread(bytes_.data(), 1, bytes_.size(), f);
        if (got != bytes_.size()) {
            std::fclose(f);
            HDDTHERM_REQUIRE(false,
                             "cannot read checkpoint '" + path + "'");
        }
    }
    std::fclose(f);
    parse();
}

CheckpointReader::CheckpointReader(std::string label,
                                   std::vector<std::uint8_t> bytes)
    : label_(std::move(label)), bytes_(std::move(bytes))
{
    parse();
}

void
CheckpointReader::parse()
{
    const std::size_t header_size = 8 + 4 + 4 + 8 + 8;
    HDDTHERM_REQUIRE(bytes_.size() >= header_size,
                     "checkpoint '" + label_ +
                         "' is too short to hold a header");
    HDDTHERM_REQUIRE(std::memcmp(bytes_.data(), kMagic, 8) == 0,
                     "checkpoint '" + label_ +
                         "' has a bad magic number (not a checkpoint?)");
    version_ = std::uint32_t(readLe(bytes_.data() + 8, 4));
    HDDTHERM_REQUIRE(version_ == 1 || version_ == kFormatVersion,
                     "checkpoint '" + label_ +
                         "' has unsupported format version " +
                         std::to_string(version_) + " (this build reads " +
                         "1.." + std::to_string(kFormatVersion) + ")");
    const auto section_count = std::size_t(readLe(bytes_.data() + 12, 4));
    config_hash_ = readLe(bytes_.data() + 16, 8);
    const std::uint64_t total = readLe(bytes_.data() + 24, 8);
    HDDTHERM_REQUIRE(total == bytes_.size(),
                     "checkpoint '" + label_ + "' is truncated: header " +
                         "declares " + std::to_string(total) +
                         " bytes, file holds " +
                         std::to_string(bytes_.size()));
    container_hash_ = fnv1a64(bytes_.data(), bytes_.size());

    std::size_t pos = header_size;
    struct Entry
    {
        std::string name;
        std::uint64_t offset;
        std::uint64_t size;
        std::uint64_t checksum;
        std::uint8_t flags;
    };
    std::vector<Entry> entries;
    entries.reserve(section_count);
    const auto need = [&](std::size_t n, const char* what) {
        HDDTHERM_REQUIRE(pos + n <= bytes_.size(),
                         "checkpoint '" + label_ +
                             "' is truncated reading " + what);
    };
    for (std::size_t i = 0; i < section_count; ++i) {
        need(2, "a section name length");
        const auto name_len = std::size_t(readLe(bytes_.data() + pos, 2));
        pos += 2;
        need(name_len, "a section name");
        Entry e;
        e.name.assign(reinterpret_cast<const char*>(bytes_.data() + pos),
                      name_len);
        pos += name_len;
        need(24, "a section table entry");
        e.offset = readLe(bytes_.data() + pos, 8);
        e.size = readLe(bytes_.data() + pos + 8, 8);
        e.checksum = readLe(bytes_.data() + pos + 16, 8);
        pos += 24;
        e.flags = 0;
        if (version_ >= 2) {
            need(1, "a section flags byte");
            e.flags = bytes_[pos];
            pos += 1;
            HDDTHERM_REQUIRE(
                (e.flags & ~kSectionKnownFlags) == 0,
                "checkpoint '" + label_ + "' section '" + e.name +
                    "' carries unknown flag bits (newer writer?)");
        }
        HDDTHERM_REQUIRE(e.offset >= pos || e.size == 0,
                         "checkpoint '" + label_ + "' section '" + e.name +
                             "' overlaps the section table");
        HDDTHERM_REQUIRE(e.offset <= bytes_.size() &&
                             e.size <= bytes_.size() - e.offset,
                         "checkpoint '" + label_ + "' section '" + e.name +
                             "' extends past the end of the file");
        entries.push_back(std::move(e));
    }

    for (const auto& e : entries) {
        // Checksums cover the stored bytes, so corruption is caught
        // before any decompression is attempted.
        const std::uint64_t actual =
            fnv1a64(bytes_.data() + e.offset, std::size_t(e.size));
        HDDTHERM_REQUIRE(actual == e.checksum,
                         "checkpoint '" + label_ + "' section '" + e.name +
                             "' failed its checksum (corrupted?)");
        names_.push_back(e.name);
        flags_.push_back(e.flags);
        stored_.emplace_back(bytes_.begin() + std::ptrdiff_t(e.offset),
                             bytes_.begin() +
                                 std::ptrdiff_t(e.offset + e.size));
        decoded_.emplace_back();
        if (e.flags & kSectionCompressed)
            decoded_.back() = util::codec::decompress(
                stored_.back(), "checkpoint '" + label_ + "' section '" +
                                    e.name + "'");
    }
}

bool
CheckpointReader::has(const std::string& name) const
{
    for (const auto& n : names_)
        if (n == name)
            return true;
    return false;
}

std::size_t
CheckpointReader::indexOf(const std::string& name) const
{
    for (std::size_t i = 0; i < names_.size(); ++i)
        if (names_[i] == name)
            return i;
    HDDTHERM_REQUIRE(false, "checkpoint '" + label_ +
                                "' has no section '" + name + "'");
    return 0;
}

std::uint8_t
CheckpointReader::sectionFlags(const std::string& name) const
{
    return flags_[indexOf(name)];
}

const std::vector<std::uint8_t>&
CheckpointReader::storedBytes(const std::string& name) const
{
    return stored_[indexOf(name)];
}

std::uint64_t
CheckpointReader::rawSize(const std::string& name) const
{
    const std::size_t i = indexOf(name);
    if (flags_[i] & kSectionCompressed)
        return decoded_[i].size();
    if (flags_[i] & kSectionDeltaDict)
        return util::codec::decodedSize(
            stored_[i].data(), stored_[i].size(),
            "checkpoint '" + label_ + "' section '" + names_[i] + "'");
    return stored_[i].size();
}

const std::vector<std::uint8_t>&
CheckpointReader::sectionBytes(const std::string& name) const
{
    const std::size_t i = indexOf(name);
    HDDTHERM_REQUIRE(
        (flags_[i] & kSectionDeltaDict) == 0,
        "checkpoint '" + label_ + "' section '" + names_[i] +
            "' is delta-encoded against its base checkpoint; resolve "
            "the chain (snap::resolveCheckpointChain) to read it");
    if (flags_[i] & kSectionCompressed)
        return decoded_[i];
    return stored_[i];
}

StateReader
CheckpointReader::section(const std::string& name) const
{
    const auto& payload = sectionBytes(name);
    return StateReader(name, payload.data(), payload.size());
}

} // namespace hddtherm::snap
