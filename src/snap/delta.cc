#include "snap/delta.h"

#include <filesystem>
#include <map>

#include "util/codec.h"
#include "util/error.h"

namespace hddtherm::snap {

namespace fs = std::filesystem;

bool
isDeltaCheckpoint(const CheckpointReader& reader)
{
    return reader.has(kDeltaSection);
}

std::vector<std::uint8_t>
encodeDeltaManifest(const DeltaManifest& m)
{
    HDDTHERM_ASSERT(m.names.size() == m.hashes.size());
    StateWriter w((std::string(kDeltaSection)));
    w.u64("index", m.index);
    w.u64("base_index", m.baseIndex);
    w.str("base_file", m.baseFile);
    w.u64("base_hash", m.baseHash);
    w.u64("chain_len", m.chainLength);
    w.u64("sections", m.names.size());
    for (std::size_t i = 0; i < m.names.size(); ++i) {
        const std::string stem = "s" + std::to_string(i);
        w.str((stem + ".name").c_str(), m.names[i]);
        w.u64((stem + ".hash").c_str(), m.hashes[i]);
    }
    return w.take();
}

DeltaManifest
readDeltaManifest(const CheckpointReader& reader)
{
    HDDTHERM_REQUIRE(isDeltaCheckpoint(reader),
                     "checkpoint '" + reader.label() +
                         "' is not a delta checkpoint (no '" +
                         kDeltaSection + "' section)");
    StateReader r = reader.section(kDeltaSection);
    DeltaManifest m;
    m.index = r.u64("index");
    m.baseIndex = r.u64("base_index");
    m.baseFile = r.str("base_file");
    m.baseHash = r.u64("base_hash");
    m.chainLength = r.u64("chain_len");
    const std::uint64_t count = r.u64("sections");
    for (std::uint64_t i = 0; i < count; ++i) {
        const std::string stem = "s" + std::to_string(i);
        m.names.push_back(r.str((stem + ".name").c_str()));
        m.hashes.push_back(r.u64((stem + ".hash").c_str()));
    }
    HDDTHERM_REQUIRE(r.atEnd(), "checkpoint '" + reader.label() +
                                    "' has trailing data in its '" +
                                    kDeltaSection + "' manifest");
    return m;
}

CheckpointReader
resolveCheckpointChain(const std::string& path,
                       std::vector<ChainHop>* lineage)
{
    // Walk leaf -> anchor, validating each hop before trusting it.
    std::vector<CheckpointReader> chain;
    std::vector<std::string> paths{path};
    chain.emplace_back(path);
    std::vector<DeltaManifest> manifests;
    while (isDeltaCheckpoint(chain.back())) {
        HDDTHERM_REQUIRE(manifests.size() < kMaxChainLength,
                         "checkpoint '" + path +
                             "' has a delta chain longer than " +
                             std::to_string(kMaxChainLength) +
                             " (cycle or corruption?)");
        DeltaManifest m = readDeltaManifest(chain.back());
        HDDTHERM_REQUIRE(m.names.size() == m.hashes.size() &&
                             !m.names.empty(),
                         "checkpoint '" + paths.back() +
                             "' has a malformed delta manifest");
        HDDTHERM_REQUIRE(m.baseIndex + 1 == m.index,
                         "checkpoint '" + paths.back() +
                             "' declares a non-adjacent base (index " +
                             std::to_string(m.index) + " on base " +
                             std::to_string(m.baseIndex) + ")");
        HDDTHERM_REQUIRE(
            m.chainLength >= 1 && m.chainLength <= kMaxChainLength,
            "checkpoint '" + paths.back() +
                "' declares an invalid delta chain length " +
                std::to_string(m.chainLength));
        const fs::path base_path =
            fs::path(paths.back()).parent_path() / m.baseFile;
        std::error_code ec;
        HDDTHERM_REQUIRE(fs::is_regular_file(base_path, ec),
                         "checkpoint '" + paths.back() +
                             "' references missing base checkpoint '" +
                             base_path.string() +
                             "' (pruned or never written?)");
        paths.push_back(base_path.string());
        chain.emplace_back(base_path.string());
        HDDTHERM_REQUIRE(
            chain.back().containerHash() == m.baseHash,
            "checkpoint '" + paths[paths.size() - 2] +
                "' pins base checkpoint '" + base_path.string() +
                "' by hash, but the file's bytes do not match "
                "(rewritten or corrupted?)");
        HDDTHERM_REQUIRE(chain.back().configHash() ==
                             chain.front().configHash(),
                         "checkpoint '" + base_path.string() +
                             "' was written under a different "
                             "configuration than its delta '" + path + "'");
        manifests.push_back(std::move(m));
    }

    // Chain lengths must count down to the anchor, and adjacent hops
    // must agree on indices.
    for (std::size_t i = 0; i < manifests.size(); ++i) {
        HDDTHERM_REQUIRE(manifests[i].chainLength == manifests.size() - i,
                         "checkpoint '" + paths[i] +
                             "' declares chain length " +
                             std::to_string(manifests[i].chainLength) +
                             " but its chain holds " +
                             std::to_string(manifests.size() - i) +
                             " deltas");
        if (i + 1 < manifests.size())
            HDDTHERM_REQUIRE(manifests[i].baseIndex ==
                                 manifests[i + 1].index,
                             "checkpoint '" + paths[i] +
                                 "' and its base disagree on the base's "
                                 "index");
    }

    if (lineage) {
        lineage->clear();
        for (std::size_t i = 0; i < chain.size(); ++i) {
            ChainHop hop;
            hop.path = paths[i];
            hop.fileSize = chain[i].containerSize();
            hop.fileHash = chain[i].containerHash();
            if (i < manifests.size()) {
                hop.index = manifests[i].index;
                hop.delta = true;
                hop.chainLength = manifests[i].chainLength;
                hop.sectionsCarried = chain[i].sectionNames().size() - 1;
                hop.baseFile = manifests[i].baseFile;
            } else {
                hop.index =
                    manifests.empty() ? 0 : manifests.back().baseIndex;
                hop.sectionsCarried = chain[i].sectionNames().size();
            }
            lineage->push_back(std::move(hop));
        }
    }

    if (manifests.empty())
        return std::move(chain.front()); // The leaf is already an anchor.

    // Merge anchor -> leaf: later payloads override earlier ones;
    // dictionary-encoded sections expand against the payload they
    // replace (their base's copy, by construction).
    std::map<std::string, std::vector<std::uint8_t>> raw;
    for (const auto& name : chain.back().sectionNames())
        raw[name] = chain.back().sectionBytes(name);
    for (std::size_t k = manifests.size(); k-- > 0;) {
        const CheckpointReader& d = chain[k];
        for (const auto& name : d.sectionNames()) {
            if (name == kDeltaSection)
                continue;
            if (d.sectionFlags(name) & kSectionDeltaDict) {
                const auto it = raw.find(name);
                HDDTHERM_REQUIRE(it != raw.end(),
                                 "checkpoint '" + paths[k] +
                                     "' section '" + name +
                                     "' is delta-encoded but its base "
                                     "carries no such section");
                const auto& stored = d.storedBytes(name);
                raw[name] = util::codec::decompressWithDict(
                    it->second, stored.data(), stored.size(),
                    "checkpoint '" + paths[k] + "' section '" + name +
                        "'");
            } else {
                raw[name] = d.sectionBytes(name);
            }
        }
    }

    // Rebuild a self-contained container in the leaf's declared section
    // order, verifying every payload against the manifest hashes.
    const DeltaManifest& leaf = manifests.front();
    CheckpointWriter rebuilt(chain.front().configHash());
    for (std::size_t i = 0; i < leaf.names.size(); ++i) {
        const auto it = raw.find(leaf.names[i]);
        HDDTHERM_REQUIRE(it != raw.end(),
                         "resolved chain for checkpoint '" + path +
                             "' is missing section '" + leaf.names[i] +
                             "'");
        HDDTHERM_REQUIRE(
            fnv1a64(it->second.data(), it->second.size()) ==
                leaf.hashes[i],
            "checkpoint '" + path + "' section '" + leaf.names[i] +
                "' does not match its manifest hash after chain merge "
                "(corrupted chain?)");
        rebuilt.addSection(leaf.names[i], it->second);
    }
    return CheckpointReader(path, rebuilt.serialize());
}

std::string
describeChain(const std::vector<ChainHop>& lineage)
{
    std::string out;
    for (const auto& hop : lineage) {
        out += hop.path;
        if (hop.delta) {
            out += "  delta index=" + std::to_string(hop.index) +
                   " chain_len=" + std::to_string(hop.chainLength) +
                   " carries=" + std::to_string(hop.sectionsCarried) +
                   " base=" + hop.baseFile;
        } else {
            out += "  anchor sections=" +
                   std::to_string(hop.sectionsCarried);
        }
        out += "  bytes=" + std::to_string(hop.fileSize) + "\n";
    }
    return out;
}

} // namespace hddtherm::snap
