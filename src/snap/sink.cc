#include "snap/sink.h"

#include <cstdio>
#include <filesystem>

#include "snap/format.h"
#include "util/error.h"

namespace hddtherm::snap {

namespace fs = std::filesystem;

LocalDirSink::LocalDirSink(std::string directory)
    : directory_(std::move(directory))
{
    HDDTHERM_REQUIRE(!directory_.empty(),
                     "checkpoint sink needs a directory");
    std::error_code ec;
    fs::create_directories(directory_, ec);
    HDDTHERM_REQUIRE(fs::is_directory(directory_),
                     "cannot create checkpoint directory '" + directory_ +
                         "'");
}

void
LocalDirSink::put(const std::string& name,
                  const std::vector<std::uint8_t>& bytes)
{
    writeCheckpointBytes(describe(name), bytes);
}

std::vector<std::uint8_t>
LocalDirSink::get(const std::string& name) const
{
    const std::string path = describe(name);
    std::FILE* f = std::fopen(path.c_str(), "rb");
    HDDTHERM_REQUIRE(f != nullptr, "cannot open checkpoint '" + path + "'");
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    std::vector<std::uint8_t> bytes;
    if (size > 0) {
        bytes.resize(std::size_t(size));
        const std::size_t got = std::fread(bytes.data(), 1, bytes.size(), f);
        if (got != bytes.size()) {
            std::fclose(f);
            HDDTHERM_REQUIRE(false, "cannot read checkpoint '" + path + "'");
        }
    }
    std::fclose(f);
    return bytes;
}

bool
LocalDirSink::contains(const std::string& name) const
{
    std::error_code ec;
    return fs::is_regular_file(fs::path(directory_) / name, ec);
}

void
LocalDirSink::remove(const std::string& name)
{
    std::error_code ec;
    fs::remove(fs::path(directory_) / name, ec);
}

std::vector<std::string>
LocalDirSink::list() const
{
    std::vector<std::string> names;
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(directory_, ec)) {
        if (entry.is_regular_file())
            names.push_back(entry.path().filename().string());
    }
    return names;
}

std::string
LocalDirSink::describe(const std::string& name) const
{
    return (fs::path(directory_) / name).string();
}

void
MemoryCheckpointSink::put(const std::string& name,
                          const std::vector<std::uint8_t>& bytes)
{
    std::lock_guard<std::mutex> lock(mutex_);
    objects_[name] = bytes;
}

std::vector<std::uint8_t>
MemoryCheckpointSink::get(const std::string& name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = objects_.find(name);
    HDDTHERM_REQUIRE(it != objects_.end(),
                     "cannot open checkpoint '" + describe(name) + "'");
    return it->second;
}

bool
MemoryCheckpointSink::contains(const std::string& name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return objects_.count(name) != 0;
}

void
MemoryCheckpointSink::remove(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    objects_.erase(name);
}

std::vector<std::string>
MemoryCheckpointSink::list() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> names;
    names.reserve(objects_.size());
    for (const auto& kv : objects_)
        names.push_back(kv.first);
    return names;
}

std::string
MemoryCheckpointSink::describe(const std::string& name) const
{
    return "mem://" + name;
}

std::size_t
MemoryCheckpointSink::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return objects_.size();
}

} // namespace hddtherm::snap
