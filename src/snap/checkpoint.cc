#include "snap/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <optional>
#include <vector>

#include "util/error.h"
#include "util/log.h"

namespace hddtherm::snap {

namespace fs = std::filesystem;

namespace {

/// Decode "<basename>-NNNNNNNNNNNN.hdtsnap" into its index, if it is one.
std::optional<std::uint64_t>
checkpointIndex(const std::string& filename, const std::string& basename)
{
    const std::string prefix = basename + "-";
    const std::string suffix = kCheckpointExtension;
    if (filename.size() <= prefix.size() + suffix.size())
        return std::nullopt;
    if (filename.compare(0, prefix.size(), prefix) != 0)
        return std::nullopt;
    if (filename.compare(filename.size() - suffix.size(), suffix.size(),
                         suffix) != 0)
        return std::nullopt;
    std::uint64_t index = 0;
    for (std::size_t i = prefix.size();
         i < filename.size() - suffix.size(); ++i) {
        const char c = filename[i];
        if (c < '0' || c > '9')
            return std::nullopt;
        index = index * 10 + std::uint64_t(c - '0');
    }
    return index;
}

/// All checkpoint files for @p basename in @p directory, sorted by index.
std::vector<std::pair<std::uint64_t, fs::path>>
listCheckpoints(const std::string& directory, const std::string& basename)
{
    std::vector<std::pair<std::uint64_t, fs::path>> found;
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(directory, ec)) {
        if (!entry.is_regular_file())
            continue;
        const auto index =
            checkpointIndex(entry.path().filename().string(), basename);
        if (index)
            found.emplace_back(*index, entry.path());
    }
    std::sort(found.begin(), found.end());
    return found;
}

} // namespace

CheckpointManager::CheckpointManager(CheckpointPolicy policy)
    : policy_(std::move(policy))
{
    HDDTHERM_REQUIRE(!policy_.directory.empty(),
                     "checkpoint policy needs a directory");
    HDDTHERM_REQUIRE(policy_.retain >= 1,
                     "checkpoint retention must keep at least one file");
    std::error_code ec;
    fs::create_directories(policy_.directory, ec);
    HDDTHERM_REQUIRE(fs::is_directory(policy_.directory),
                     "cannot create checkpoint directory '" +
                         policy_.directory + "'");
}

std::string
CheckpointManager::pathFor(std::uint64_t index) const
{
    char suffix[32];
    std::snprintf(suffix, sizeof suffix, "-%012llu",
                  static_cast<unsigned long long>(index));
    return (fs::path(policy_.directory) /
            (policy_.basename + suffix + kCheckpointExtension))
        .string();
}

CheckpointManager::~CheckpointManager()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    work_cv_.notify_all();
    if (writer_.joinable())
        writer_.join();
    // Destructors cannot throw; a final-write failure is still reported.
    if (!error_.empty())
        util::logWarn("checkpoint writer failed: %s", error_.c_str());
}

std::string
CheckpointManager::write(const CheckpointWriter& ckpt, std::uint64_t index)
{
    std::string path = pathFor(index);
    // Serialize on the caller's thread — the simulation state is only
    // guaranteed coherent right now — and hand the bytes to the writer.
    Job job{path, ckpt.serialize()};
    {
        std::unique_lock<std::mutex> lock(mutex_);
        rethrowPendingError();
        if (!writer_.joinable())
            writer_ = std::thread([this] { writerLoop(); });
        queue_.push_back(std::move(job));
    }
    work_cv_.notify_one();
    return path;
}

void
CheckpointManager::flush()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_cv_.wait(lock, [this] { return queue_.empty() && !busy_; });
    rethrowPendingError();
}

void
CheckpointManager::writerLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        work_cv_.wait(lock,
                      [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) {
            if (stopping_)
                return;
            continue;
        }
        Job job = std::move(queue_.front());
        queue_.pop_front();
        busy_ = true;
        lock.unlock();
        std::string failure;
        try {
            writeCheckpointBytes(job.path, job.bytes);
            prune();
        } catch (const std::exception& e) {
            failure = e.what();
        }
        lock.lock();
        busy_ = false;
        if (!failure.empty() && error_.empty())
            error_ = failure;
        if (queue_.empty())
            idle_cv_.notify_all();
    }
}

void
CheckpointManager::rethrowPendingError()
{
    if (!error_.empty()) {
        const std::string what = error_;
        error_.clear();
        throw util::ModelError("checkpoint write failed: " + what);
    }
}

void
CheckpointManager::prune() const
{
    auto found = listCheckpoints(policy_.directory, policy_.basename);
    const std::size_t keep = std::size_t(policy_.retain);
    if (found.size() <= keep)
        return;
    for (std::size_t i = 0; i + keep < found.size(); ++i) {
        std::error_code ec;
        fs::remove(found[i].second, ec);
    }
}

std::string
latestCheckpoint(const std::string& directory, const std::string& basename)
{
    const auto found = listCheckpoints(directory, basename);
    return found.empty() ? std::string() : found.back().second.string();
}

} // namespace hddtherm::snap
