#include "snap/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <set>
#include <vector>

#include "snap/delta.h"
#include "util/codec.h"
#include "util/error.h"
#include "util/log.h"

namespace hddtherm::snap {

namespace fs = std::filesystem;

namespace {

/// Decode "<basename>-NNNNNNNNNNNN.hdtsnap" into its index, if it is one.
std::optional<std::uint64_t>
checkpointIndex(const std::string& filename, const std::string& basename)
{
    const std::string prefix = basename + "-";
    const std::string suffix = kCheckpointExtension;
    if (filename.size() <= prefix.size() + suffix.size())
        return std::nullopt;
    if (filename.compare(0, prefix.size(), prefix) != 0)
        return std::nullopt;
    if (filename.compare(filename.size() - suffix.size(), suffix.size(),
                         suffix) != 0)
        return std::nullopt;
    std::uint64_t index = 0;
    for (std::size_t i = prefix.size();
         i < filename.size() - suffix.size(); ++i) {
        const char c = filename[i];
        if (c < '0' || c > '9')
            return std::nullopt;
        index = index * 10 + std::uint64_t(c - '0');
    }
    return index;
}

void
validatePolicy(const CheckpointPolicy& policy)
{
    HDDTHERM_REQUIRE(policy.retain >= 1,
                     "checkpoint retention must keep at least one file");
    HDDTHERM_REQUIRE(!policy.delta || policy.anchorEvery >= 1,
                     "delta checkpoint policy needs anchorEvery >= 1");
}

} // namespace

CheckpointManager::CheckpointManager(CheckpointPolicy policy)
    : policy_(std::move(policy))
{
    HDDTHERM_REQUIRE(!policy_.directory.empty(),
                     "checkpoint policy needs a directory");
    validatePolicy(policy_);
    sink_ = std::make_unique<LocalDirSink>(policy_.directory);
}

CheckpointManager::CheckpointManager(CheckpointPolicy policy,
                                     std::unique_ptr<CheckpointSink> sink)
    : policy_(std::move(policy)), sink_(std::move(sink))
{
    HDDTHERM_REQUIRE(sink_ != nullptr, "checkpoint manager needs a sink");
    validatePolicy(policy_);
}

std::string
CheckpointManager::fileNameFor(std::uint64_t index) const
{
    char suffix[32];
    std::snprintf(suffix, sizeof suffix, "-%012llu",
                  static_cast<unsigned long long>(index));
    return policy_.basename + suffix + kCheckpointExtension;
}

std::string
CheckpointManager::pathFor(std::uint64_t index) const
{
    return sink_->describe(fileNameFor(index));
}

bool
CheckpointManager::isAnchor(std::uint64_t index) const
{
    return !policy_.delta || policy_.anchorEvery <= 1 ||
           index % policy_.anchorEvery == 0;
}

CheckpointManager::~CheckpointManager()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    work_cv_.notify_all();
    if (writer_.joinable())
        writer_.join();
    // Destructors cannot throw; a final-write failure is still reported.
    if (!error_.empty())
        util::logWarn("checkpoint writer failed: %s", error_.c_str());
}

std::vector<std::uint8_t>
CheckpointManager::buildContainer(const CheckpointWriter& ckpt,
                                  std::uint64_t index, bool delta)
{
    std::vector<StoredSection> stored;
    const std::size_t n = ckpt.sectionCount();
    stored.reserve(n + 1);

    if (delta) {
        HDDTHERM_REQUIRE(
            have_last_ && last_index_ + 1 == index,
            "delta checkpoint " + std::to_string(index) +
                " has no in-memory base: indices must follow the "
                "previous write, and resumed runs must seedDelta() "
                "before their first checkpoint");
        DeltaManifest m;
        m.index = index;
        m.baseIndex = index - 1;
        m.baseFile = fileNameFor(index - 1);
        m.baseHash = last_hash_;
        m.chainLength = last_chain_len_ + 1;
        for (std::size_t i = 0; i < n; ++i) {
            const auto& payload = ckpt.sectionPayload(i);
            m.names.push_back(ckpt.sectionName(i));
            m.hashes.push_back(fnv1a64(payload.data(), payload.size()));
        }
        // The manifest is always first and never compressed, so chain
        // tools can read it without touching any payload.
        stored.push_back(
            StoredSection{kDeltaSection, encodeDeltaManifest(m), 0});
    }

    for (std::size_t i = 0; i < n; ++i) {
        const std::string& name = ckpt.sectionName(i);
        const auto& payload = ckpt.sectionPayload(i);
        const auto prev = last_raw_.find(name);
        if (delta) {
            const bool changed =
                prev == last_raw_.end() || prev->second != payload;
            if (!changed)
                continue;
        }
        StoredSection s{name, payload, 0};
        if (policy_.compress && !payload.empty()) {
            // Deterministically pick the smallest of raw, plain LZ, and
            // (for changed delta sections) an edit script against the
            // base's copy — ties broken in that order.
            std::size_t best = payload.size();
            auto plain = util::codec::compress(payload);
            if (plain.size() < best) {
                best = plain.size();
                s.stored = std::move(plain);
                s.flags = kSectionCompressed;
            }
            if (delta && prev != last_raw_.end() &&
                !prev->second.empty()) {
                auto scripted = util::codec::compressWithDict(
                    prev->second, payload.data(), payload.size());
                if (scripted.size() < best) {
                    s.stored = std::move(scripted);
                    s.flags = kSectionDeltaDict;
                }
            }
        }
        stored.push_back(std::move(s));
    }
    return serializeSections(ckpt.configHash(), stored);
}

void
CheckpointManager::rememberWrite(const CheckpointWriter& ckpt,
                                 std::uint64_t index, bool delta,
                                 const std::vector<std::uint8_t>& bytes)
{
    last_raw_.clear();
    for (std::size_t i = 0; i < ckpt.sectionCount(); ++i)
        last_raw_[ckpt.sectionName(i)] = ckpt.sectionPayload(i);
    last_hash_ = fnv1a64(bytes.data(), bytes.size());
    last_index_ = index;
    last_chain_len_ = delta ? last_chain_len_ + 1 : 0;
    have_last_ = true;
}

std::string
CheckpointManager::write(const CheckpointWriter& ckpt, std::uint64_t index)
{
    // Serialize (and, in delta mode, diff against the previous
    // checkpoint) on the caller's thread — the simulation state is only
    // guaranteed coherent right now — and hand the bytes to the writer.
    const bool delta = !isAnchor(index);
    Job job{fileNameFor(index), buildContainer(ckpt, index, delta), index,
            delta};
    if (policy_.delta)
        rememberWrite(ckpt, index, delta, job.bytes);
    {
        std::unique_lock<std::mutex> lock(mutex_);
        rethrowPendingError();
        if (!writer_.joinable())
            writer_ = std::thread([this] { writerLoop(); });
        queue_.push_back(std::move(job));
    }
    work_cv_.notify_one();
    return pathFor(index);
}

void
CheckpointManager::seedDelta(const std::string& leaf_path,
                             std::uint64_t next_index)
{
    if (!policy_.delta)
        return;
    HDDTHERM_REQUIRE(next_index >= 1,
                     "cannot seed delta state before any checkpoint");
    std::vector<ChainHop> lineage;
    const CheckpointReader merged =
        resolveCheckpointChain(leaf_path, &lineage);
    if (lineage.front().delta)
        HDDTHERM_REQUIRE(
            lineage.front().index + 1 == next_index,
            "checkpoint '" + leaf_path + "' has index " +
                std::to_string(lineage.front().index) +
                " but the resumed engine expects to write index " +
                std::to_string(next_index) + " next");
    last_raw_.clear();
    for (const auto& name : merged.sectionNames())
        last_raw_[name] = merged.sectionBytes(name);
    last_hash_ = lineage.front().fileHash;
    last_index_ = next_index - 1;
    last_chain_len_ = lineage.front().chainLength;
    have_last_ = true;
}

void
CheckpointManager::flush()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_cv_.wait(lock, [this] { return queue_.empty() && !busy_; });
    rethrowPendingError();
}

void
CheckpointManager::writerLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        work_cv_.wait(lock,
                      [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) {
            if (stopping_)
                return;
            continue;
        }
        Job job = std::move(queue_.front());
        queue_.pop_front();
        busy_ = true;
        lock.unlock();
        std::string failure;
        try {
            sink_->put(job.name, job.bytes);
            prune(job);
        } catch (const std::exception& e) {
            failure = e.what();
        }
        lock.lock();
        busy_ = false;
        if (!failure.empty() && error_.empty())
            error_ = failure;
        if (queue_.empty())
            idle_cv_.notify_all();
    }
}

void
CheckpointManager::rethrowPendingError()
{
    // Sticky by design: once a write has failed, every later write() and
    // flush() keeps failing.  Continuing past a hole would be actively
    // dangerous in delta mode — the next delta would pin a base that
    // never became durable — and silently losing checkpoints is wrong in
    // every mode.
    if (!error_.empty())
        throw util::ModelError("checkpoint write failed: " + error_);
}

void
CheckpointManager::prune(const Job& landed)
{
    base_of_[landed.index] =
        landed.delta ? std::optional<std::uint64_t>(landed.index - 1)
                     : std::nullopt;

    std::vector<std::pair<std::uint64_t, std::string>> found;
    for (const auto& name : sink_->list()) {
        const auto index = checkpointIndex(name, policy_.basename);
        if (index)
            found.emplace_back(*index, name);
    }
    std::sort(found.begin(), found.end());
    const std::size_t keep_newest = std::size_t(policy_.retain);
    if (found.size() <= keep_newest)
        return;

    std::map<std::uint64_t, std::string> present(found.begin(),
                                                 found.end());
    // The base of a checkpoint still unknown to this run (a parent
    // run's file) is learned by reading its container; anything
    // unreadable is conservatively treated as an anchor.
    const auto baseOf =
        [&](std::uint64_t index,
            const std::string& name) -> std::optional<std::uint64_t> {
        const auto cached = base_of_.find(index);
        if (cached != base_of_.end())
            return cached->second;
        std::optional<std::uint64_t> base;
        try {
            const CheckpointReader reader(sink_->describe(name),
                                          sink_->get(name));
            if (isDeltaCheckpoint(reader))
                base = readDeltaManifest(reader).baseIndex;
        } catch (const std::exception&) {
            base = std::nullopt;
        }
        base_of_[index] = base;
        return base;
    };

    // Keep the newest K checkpoints plus every base a kept delta
    // (transitively) depends on — pruning must never orphan a chain.
    std::set<std::uint64_t> keep;
    std::deque<std::uint64_t> work;
    for (std::size_t i = found.size() - keep_newest; i < found.size();
         ++i) {
        keep.insert(found[i].first);
        work.push_back(found[i].first);
    }
    while (!work.empty()) {
        const std::uint64_t index = work.front();
        work.pop_front();
        const auto base = baseOf(index, present.at(index));
        if (base && present.count(*base) && keep.insert(*base).second)
            work.push_back(*base);
    }

    for (const auto& [index, name] : found) {
        if (keep.count(index))
            continue;
        sink_->remove(name);
        base_of_.erase(index);
    }
}

std::string
latestCheckpoint(const std::string& directory, const std::string& basename)
{
    std::vector<std::pair<std::uint64_t, fs::path>> found;
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(directory, ec)) {
        if (!entry.is_regular_file())
            continue;
        const auto index =
            checkpointIndex(entry.path().filename().string(), basename);
        if (index)
            found.emplace_back(*index, entry.path());
    }
    std::sort(found.begin(), found.end());
    return found.empty() ? std::string() : found.back().second.string();
}

} // namespace hddtherm::snap
