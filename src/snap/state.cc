#include "snap/state.h"

#include <bit>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "util/error.h"

namespace hddtherm::snap {

namespace {

// The append path is hot: a fleet checkpoint moves megabytes of blob
// words through here (bench_snap_overhead gates the result), so the
// value is staged on the stack and appended in one grow instead of one
// push_back per byte.
void
appendLe(std::vector<std::uint8_t>& out, std::uint64_t v, unsigned bytes)
{
    HDDTHERM_ASSERT(bytes <= 8);
    std::uint8_t staged[8];
    for (unsigned i = 0; i < 8; ++i)
        staged[i] = std::uint8_t(v >> (8 * i));
    out.insert(out.end(), staged, staged + (bytes < 8 ? bytes : 8));
}

// Bulk little-endian append of a word array: a straight memcpy on
// little-endian hosts, a per-word staging loop elsewhere.
void
appendLeWords(std::vector<std::uint8_t>& out, const std::uint64_t* words,
              std::size_t count)
{
    if constexpr (std::endian::native == std::endian::little) {
        const auto* p = reinterpret_cast<const std::uint8_t*>(words);
        out.insert(out.end(), p, p + count * 8);
    } else {
        for (std::size_t i = 0; i < count; ++i)
            appendLe(out, words[i], 8);
    }
}

std::uint64_t
readLe(const std::uint8_t* p, int bytes)
{
    std::uint64_t v = 0;
    for (int i = 0; i < bytes; ++i)
        v |= std::uint64_t(p[i]) << (8 * i);
    return v;
}

} // namespace

std::uint64_t
fnv1a64(const void* data, std::size_t size, std::uint64_t seed)
{
    std::uint64_t hash = seed;
    const auto* p = static_cast<const std::uint8_t*>(data);
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= p[i];
        hash *= 1099511628211ull;
    }
    return hash;
}

const char*
fieldTypeName(FieldType type)
{
    switch (type) {
      case FieldType::U64:
        return "u64";
      case FieldType::I64:
        return "i64";
      case FieldType::F64:
        return "f64";
      case FieldType::Str:
        return "str";
      case FieldType::Bytes:
        return "bytes";
      case FieldType::U64Vec:
        return "u64vec";
      case FieldType::F64Vec:
        return "f64vec";
    }
    return "unknown";
}

StateWriter::StateWriter(std::string section)
    : section_(std::move(section))
{}

void
StateWriter::header(FieldType type, const char* name)
{
    const std::string full = prefix_ + name;
    HDDTHERM_REQUIRE(!full.empty() && full.size() <= 0xffff,
                     "field name must fit 16 bits");
    buffer_.push_back(std::uint8_t(type));
    appendLe(buffer_, full.size(), 2);
    buffer_.insert(buffer_.end(), full.begin(), full.end());
}

void
StateWriter::u64(const char* name, std::uint64_t v)
{
    header(FieldType::U64, name);
    appendLe(buffer_, v, 8);
}

void
StateWriter::i64(const char* name, std::int64_t v)
{
    header(FieldType::I64, name);
    appendLe(buffer_, std::uint64_t(v), 8);
}

void
StateWriter::f64(const char* name, double v)
{
    header(FieldType::F64, name);
    appendLe(buffer_, std::bit_cast<std::uint64_t>(v), 8);
}

void
StateWriter::str(const char* name, const std::string& v)
{
    header(FieldType::Str, name);
    appendLe(buffer_, v.size(), 8);
    buffer_.insert(buffer_.end(), v.begin(), v.end());
}

void
StateWriter::bytes(const char* name, const std::vector<std::uint8_t>& v)
{
    header(FieldType::Bytes, name);
    appendLe(buffer_, v.size(), 8);
    buffer_.insert(buffer_.end(), v.begin(), v.end());
}

void
StateWriter::u64vec(const char* name,
                    const std::vector<std::uint64_t>& v)
{
    header(FieldType::U64Vec, name);
    appendLe(buffer_, v.size(), 8);
    appendLeWords(buffer_, v.data(), v.size());
}

void
StateWriter::f64vec(const char* name, const std::vector<double>& v)
{
    header(FieldType::F64Vec, name);
    appendLe(buffer_, v.size(), 8);
    static_assert(sizeof(double) == sizeof(std::uint64_t));
    appendLeWords(buffer_,
                  reinterpret_cast<const std::uint64_t*>(v.data()),
                  v.size());
}

void
StateWriter::pushPrefix(const std::string& prefix)
{
    prefix_stack_.push_back(prefix_.size());
    prefix_ += prefix;
    prefix_ += '.';
}

void
StateWriter::popPrefix()
{
    HDDTHERM_ASSERT(!prefix_stack_.empty());
    prefix_.resize(prefix_stack_.back());
    prefix_stack_.pop_back();
}

StateReader::StateReader(std::string section, const std::uint8_t* data,
                         std::size_t size)
    : section_(std::move(section)), data_(data), size_(size)
{}

void
StateReader::need(std::size_t n, const std::string& what)
{
    HDDTHERM_REQUIRE(pos_ + n <= size_,
                     "checkpoint section '" + section_ +
                         "' is truncated reading " + what);
}

bool
StateReader::next(Field& out)
{
    if (atEnd())
        return false;
    need(1, "a field type tag");
    const auto raw_type = data_[pos_++];
    HDDTHERM_REQUIRE(raw_type >= std::uint8_t(FieldType::U64) &&
                         raw_type <= std::uint8_t(FieldType::F64Vec),
                     "checkpoint section '" + section_ +
                         "' carries an unknown field type");
    out = Field{};
    out.type = FieldType(raw_type);
    need(2, "a field name length");
    const auto name_len = std::size_t(readLe(data_ + pos_, 2));
    pos_ += 2;
    need(name_len, "a field name");
    out.name.assign(reinterpret_cast<const char*>(data_ + pos_),
                    name_len);
    pos_ += name_len;

    switch (out.type) {
      case FieldType::U64:
      case FieldType::I64:
      case FieldType::F64: {
        need(8, "field '" + out.name + "'");
        const std::uint64_t v = readLe(data_ + pos_, 8);
        pos_ += 8;
        out.u = v;
        out.i = std::int64_t(v);
        out.f = std::bit_cast<double>(v);
        break;
      }
      case FieldType::Str:
      case FieldType::Bytes: {
        need(8, "length of field '" + out.name + "'");
        const auto len = std::size_t(readLe(data_ + pos_, 8));
        pos_ += 8;
        need(len, "field '" + out.name + "'");
        if (out.type == FieldType::Str)
            out.s.assign(reinterpret_cast<const char*>(data_ + pos_),
                         len);
        else
            out.raw.assign(data_ + pos_, data_ + pos_ + len);
        pos_ += len;
        break;
      }
      case FieldType::U64Vec:
      case FieldType::F64Vec: {
        need(8, "length of field '" + out.name + "'");
        const auto count = std::size_t(readLe(data_ + pos_, 8));
        pos_ += 8;
        need(count * 8, "field '" + out.name + "'");
        for (std::size_t i = 0; i < count; ++i) {
            const std::uint64_t v = readLe(data_ + pos_ + i * 8, 8);
            if (out.type == FieldType::U64Vec)
                out.uv.push_back(v);
            else
                out.fv.push_back(std::bit_cast<double>(v));
        }
        pos_ += count * 8;
        break;
      }
    }
    return true;
}

StateReader::Field
StateReader::expect(FieldType type, const char* name)
{
    const std::string full = prefix_ + name;
    Field f;
    HDDTHERM_REQUIRE(next(f), "checkpoint section '" + section_ +
                                  "' ended before field '" + full + "'");
    HDDTHERM_REQUIRE(f.name == full && f.type == type,
                     "checkpoint section '" + section_ +
                         "': expected field '" + full + "' (" +
                         fieldTypeName(type) + "), found '" + f.name +
                         "' (" + fieldTypeName(f.type) + ")");
    return f;
}

std::uint64_t
StateReader::u64(const char* name)
{
    return expect(FieldType::U64, name).u;
}

std::int64_t
StateReader::i64(const char* name)
{
    return expect(FieldType::I64, name).i;
}

double
StateReader::f64(const char* name)
{
    return expect(FieldType::F64, name).f;
}

std::string
StateReader::str(const char* name)
{
    return std::move(expect(FieldType::Str, name).s);
}

std::vector<std::uint8_t>
StateReader::bytes(const char* name)
{
    return std::move(expect(FieldType::Bytes, name).raw);
}

std::vector<std::uint64_t>
StateReader::u64vec(const char* name)
{
    return std::move(expect(FieldType::U64Vec, name).uv);
}

std::vector<double>
StateReader::f64vec(const char* name)
{
    return std::move(expect(FieldType::F64Vec, name).fv);
}

void
StateReader::pushPrefix(const std::string& prefix)
{
    prefix_stack_.push_back(prefix_.size());
    prefix_ += prefix;
    prefix_ += '.';
}

void
StateReader::popPrefix()
{
    HDDTHERM_ASSERT(!prefix_stack_.empty());
    prefix_.resize(prefix_stack_.back());
    prefix_stack_.pop_back();
}

std::string
StateReader::Field::display() const
{
    char buf[64];
    switch (type) {
      case FieldType::U64:
        std::snprintf(buf, sizeof buf, "%" PRIu64, u);
        return buf;
      case FieldType::I64:
        std::snprintf(buf, sizeof buf, "%" PRId64, i);
        return buf;
      case FieldType::F64:
        // Round-trip precision: a diff over displays is a diff over bits
        // for every value either checkpoint can actually hold.
        std::snprintf(buf, sizeof buf, "%.17g", f);
        return buf;
      case FieldType::Str:
        return "\"" + s + "\"";
      case FieldType::Bytes:
        std::snprintf(buf, sizeof buf, "<%zu bytes, fnv %016" PRIx64 ">",
                      raw.size(), fnv1a64(raw.data(), raw.size()));
        return buf;
      case FieldType::U64Vec:
      case FieldType::F64Vec: {
        const std::size_t n =
            type == FieldType::U64Vec ? uv.size() : fv.size();
        const void* p = type == FieldType::U64Vec
                            ? static_cast<const void*>(uv.data())
                            : static_cast<const void*>(fv.data());
        std::snprintf(buf, sizeof buf,
                      "<%zu values, fnv %016" PRIx64 ">", n,
                      fnv1a64(p, n * 8));
        return buf;
      }
    }
    return "?";
}

void
BlobWriter::u32(std::uint32_t v)
{
    appendLe(buffer_, v, 4);
}

void
BlobWriter::u64(std::uint64_t v)
{
    appendLe(buffer_, v, 8);
}

void
BlobWriter::i64(std::int64_t v)
{
    appendLe(buffer_, std::uint64_t(v), 8);
}

void
BlobWriter::f64(double v)
{
    appendLe(buffer_, std::bit_cast<std::uint64_t>(v), 8);
}

void
BlobWriter::words(const std::uint64_t* w, std::size_t count)
{
    appendLeWords(buffer_, w, count);
}

BlobReader::BlobReader(std::string context,
                       const std::vector<std::uint8_t>& data)
    : context_(std::move(context)), data_(&data)
{}

void
BlobReader::need(std::size_t n)
{
    HDDTHERM_REQUIRE(pos_ + n <= data_->size(),
                     "checkpoint blob '" + context_ + "' is truncated");
}

std::uint8_t
BlobReader::u8()
{
    need(1);
    return (*data_)[pos_++];
}

std::uint32_t
BlobReader::u32()
{
    need(4);
    const auto v = std::uint32_t(readLe(data_->data() + pos_, 4));
    pos_ += 4;
    return v;
}

std::uint64_t
BlobReader::u64()
{
    need(8);
    const auto v = readLe(data_->data() + pos_, 8);
    pos_ += 8;
    return v;
}

std::int64_t
BlobReader::i64()
{
    return std::int64_t(u64());
}

double
BlobReader::f64()
{
    return std::bit_cast<double>(u64());
}

} // namespace hddtherm::snap
