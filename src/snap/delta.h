/**
 * @file
 * Delta checkpoints: base + delta chain model and chain resolution.
 *
 * A *delta* checkpoint carries only the sections whose raw payload hash
 * moved since the previous durable checkpoint, plus one reserved
 * manifest section (kDeltaSection, always first and never compressed)
 * that pins the chain together: the checkpoint's own index, its base
 * checkpoint's index / filename / whole-file FNV-1a hash, the chain
 * length back to the nearest full ("anchor") checkpoint, and the full
 * logical section list with one raw-payload hash per section.  Changed
 * sections may additionally be stored as an LZ edit script against the
 * base's copy of the same section (kSectionDeltaDict), which is what
 * makes steady-state deltas a small fraction of a full container.
 *
 * Resolution walks leaf → anchor, validating at every hop — a missing
 * (pruned?) base, a base whose bytes do not match the pinned hash, a
 * config-hash mismatch, or an inconsistent chain length are loud
 * util::ModelError failures, never a silent fresh start — then merges
 * anchor → leaf and rebuilds a self-contained container whose every
 * section checks against the manifest hashes.  CheckpointManager writes
 * anchors on a fixed index cadence (CheckpointPolicy::anchorEvery) so
 * chains stay bounded and retention can always keep a delta's bases.
 */
#ifndef HDDTHERM_SNAP_DELTA_H
#define HDDTHERM_SNAP_DELTA_H

#include <cstdint>
#include <string>
#include <vector>

#include "snap/format.h"

namespace hddtherm::snap {

/// Reserved manifest section name marking a delta checkpoint.
inline constexpr const char* kDeltaSection = "snap.delta";

/// Hard cap on resolvable chain length (a cycle/corruption backstop far
/// above any sane CheckpointPolicy::anchorEvery).
inline constexpr std::uint64_t kMaxChainLength = 4096;

/// Decoded kDeltaSection contents.
struct DeltaManifest
{
    std::uint64_t index = 0;      ///< This checkpoint's index.
    std::uint64_t baseIndex = 0;  ///< Immediate base's index (index - 1).
    std::string baseFile;         ///< Base's bare filename (same sink).
    std::uint64_t baseHash = 0;   ///< FNV-1a over the base's file bytes.
    std::uint64_t chainLength = 0; ///< Deltas between here and the anchor.
    /// Full logical section list, in container order, with the raw
    /// (decoded) payload hash of every section — carried or not.
    std::vector<std::string> names;
    std::vector<std::uint64_t> hashes;
};

/// True if @p reader is a delta checkpoint (carries kDeltaSection).
bool isDeltaCheckpoint(const CheckpointReader& reader);

/// Decode the manifest (throws if @p reader is not a delta checkpoint).
DeltaManifest readDeltaManifest(const CheckpointReader& reader);

/// Encode a manifest as the kDeltaSection payload.
std::vector<std::uint8_t> encodeDeltaManifest(const DeltaManifest& m);

/// One file visited while resolving a chain (leaf first).
struct ChainHop
{
    std::string path;       ///< Filesystem path of this hop.
    std::uint64_t index = 0; ///< Checkpoint index (0 if unknowable:
                             ///< a lone anchor has no manifest).
    bool delta = false;
    std::uint64_t chainLength = 0;  ///< 0 for anchors.
    std::size_t sectionsCarried = 0; ///< Payload sections in this file.
    std::size_t fileSize = 0;
    std::uint64_t fileHash = 0;     ///< FNV-1a over the file bytes.
    std::string baseFile;           ///< Empty for anchors.
};

/**
 * Open the checkpoint at @p path, resolving its base+delta chain if it
 * is a delta.  Returns a fully validated, self-contained reader (for a
 * delta leaf: rebuilt in memory, labeled with @p path, every merged
 * section verified against the manifest's raw-payload hashes).  If
 * @p lineage is non-null it receives one ChainHop per visited file,
 * leaf first.
 * @throws util::ModelError on a missing/pruned base, base-hash or
 *         config-hash mismatch, inconsistent chain length, or any
 *         container-level corruption.
 */
CheckpointReader
resolveCheckpointChain(const std::string& path,
                       std::vector<ChainHop>* lineage = nullptr);

/// Human-readable lineage, one line per hop (snap_inspect --chain).
std::string describeChain(const std::vector<ChainHop>& lineage);

} // namespace hddtherm::snap

#endif // HDDTHERM_SNAP_DELTA_H
