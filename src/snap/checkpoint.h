/**
 * @file
 * Checkpoint cadence policy and storage lifecycle management.
 *
 * CheckpointManager owns the storage side of checkpointing — stable
 * object naming, crash-consistent writes (delegated to a CheckpointSink),
 * delta/anchor container assembly, and retention of the last K
 * checkpoints (plus every base a retained delta depends on) — while
 * staying ignorant of *what* is checkpointed.  The orchestration (which
 * sections, at what simulated-time cadence) lives with the engines that
 * own the state: dtm::CoSimEngine for standalone co-sims and
 * fleet::FleetSimulator for fleet runs.
 *
 * With CheckpointPolicy::delta enabled the manager remembers the raw
 * payloads of the last durable checkpoint and emits *delta* containers
 * carrying only changed sections (optionally LZ-encoded against the
 * base's copy — see delta.h), writing a full "anchor" container every
 * anchorEvery indices so chains stay bounded.  Whether an index is an
 * anchor depends only on the index, never on run history, which is what
 * keeps post-resume checkpoint files byte-identical to an uninterrupted
 * run's.  A resumed engine must call seedDelta() after restoring so the
 * first post-resume delta diffs against the same base the uninterrupted
 * run would have.
 */
#ifndef HDDTHERM_SNAP_CHECKPOINT_H
#define HDDTHERM_SNAP_CHECKPOINT_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "snap/format.h"
#include "snap/sink.h"

namespace hddtherm::snap {

/// When and where to write checkpoints.
struct CheckpointPolicy
{
    /// Directory checkpoints are written into (created if absent).
    std::string directory;

    /// Filename stem; files are "<basename>-<%012d index>.hdtsnap".
    std::string basename = "checkpoint";

    /// Simulated seconds between checkpoints (standalone co-sim cadence).
    double everySec = 0.0;

    /// Fleet epochs between checkpoints (fleet cadence).
    std::uint64_t everyEpochs = 0;

    /// How many most-recent checkpoints to keep; older ones are pruned
    /// (a retained delta always keeps its whole base chain too).
    int retain = 3;

    /// Write delta checkpoints: only sections whose payload moved since
    /// the last durable checkpoint, with a manifest pinning the base.
    bool delta = false;

    /// Every how many indices a full anchor checkpoint is forced when
    /// delta mode is on (index % anchorEvery == 0 is an anchor; 1 means
    /// every checkpoint is full).
    std::uint64_t anchorEvery = 8;

    /// LZ-compress section payloads (and, in delta mode, encode changed
    /// sections against the base's copy) whenever that is smaller.
    bool compress = false;
};

/**
 * Writes, names, and prunes checkpoints under one policy.
 *
 * Storage I/O runs on a private writer thread so the fsync-heavy write
 * path overlaps simulation compute instead of stalling it
 * (bench_snap_overhead gates the cadence cost).  Writes are queued in
 * order and land via the sink's atomic-put protocol, so the
 * crash-consistency contract is unchanged: a crash loses at most the
 * not-yet-durable tail of the queue, never corrupts a visible
 * checkpoint, and resume picks up from the latest durable file — queue
 * order also guarantees a delta's base is durable before the delta
 * itself.  flush() — also implied by destruction — drains the queue and
 * rethrows any I/O error raised on the writer thread.
 */
class CheckpointManager
{
  public:
    /// Validates the policy and creates the directory if needed.
    explicit CheckpointManager(CheckpointPolicy policy);

    /// Same, but storing through @p sink instead of a local directory
    /// (policy.directory is ignored; naming and retention are
    /// sink-agnostic).
    CheckpointManager(CheckpointPolicy policy,
                      std::unique_ptr<CheckpointSink> sink);

    /// Drains pending writes (failures are logged; see flush()).
    ~CheckpointManager();

    CheckpointManager(const CheckpointManager&) = delete;
    CheckpointManager& operator=(const CheckpointManager&) = delete;

    /// Bare object name checkpoint @p index is stored under.
    std::string fileNameFor(std::uint64_t index) const;

    /// Locator (path, for local sinks) checkpoint @p index lands at.
    std::string pathFor(std::uint64_t index) const;

    /// True if checkpoint @p index is written as a full (anchor)
    /// container under this policy — a pure function of the index, so
    /// resumed runs anchor on the same cadence as uninterrupted ones.
    bool isAnchor(std::uint64_t index) const;

    /**
     * Queue checkpoint @p index for an atomic write; after it lands the
     * writer prunes checkpoints beyond the retention window (never
     * orphaning a retained delta's base).  Pruning scans the sink rather
     * than a private write log, so a resumed run keeps pruning
     * checkpoints its parent wrote.  Serialization — and, in delta mode,
     * the diff against the previous checkpoint — happens on the calling
     * thread (the simulation state must be read now); the storage I/O
     * happens on the writer thread.  @returns the final locator, which
     * is guaranteed to exist only after flush().
     * @throws a pending writer-thread error, if any.
     */
    std::string write(const CheckpointWriter& ckpt, std::uint64_t index);

    /**
     * Prime delta state from the checkpoint chain ending at
     * @p leaf_path, so the next write() — which must use index
     * @p next_index == leaf index + 1 — diffs against the same base an
     * uninterrupted run would have.  Resumed engines call this right
     * after restoring; a no-op unless the policy enables delta mode.
     */
    void seedDelta(const std::string& leaf_path, std::uint64_t next_index);

    /**
     * Block until every queued write is durable; rethrows the first
     * writer-thread I/O error, if any.
     */
    void flush();

    const CheckpointPolicy& policy() const { return policy_; }

    /// The sink writes land in (tests inspect mock sinks through this).
    CheckpointSink& sink() { return *sink_; }

  private:
    struct Job
    {
        std::string name;             ///< Bare object name.
        std::vector<std::uint8_t> bytes;
        std::uint64_t index = 0;
        bool delta = false;
    };

    std::vector<std::uint8_t> buildContainer(const CheckpointWriter& ckpt,
                                             std::uint64_t index,
                                             bool delta);
    void rememberWrite(const CheckpointWriter& ckpt, std::uint64_t index,
                       bool delta,
                       const std::vector<std::uint8_t>& bytes);
    void prune(const Job& landed);
    void writerLoop();
    void rethrowPendingError();

    CheckpointPolicy policy_;
    std::unique_ptr<CheckpointSink> sink_;

    /// @name Delta state — touched only by the simulation thread
    /// (write()/seedDelta() callers), never by the writer thread.
    /// @{
    bool have_last_ = false;
    std::uint64_t last_index_ = 0;
    std::uint64_t last_hash_ = 0;      ///< FNV over the last file's bytes.
    std::uint64_t last_chain_len_ = 0; ///< 0 when the last was an anchor.
    std::map<std::string, std::vector<std::uint8_t>> last_raw_;
    /// @}

    /// index -> base index (nullopt: anchor); writer-thread only, fed by
    /// landed jobs so pruning rarely has to re-read containers.
    std::map<std::uint64_t, std::optional<std::uint64_t>> base_of_;

    std::mutex mutex_;
    std::condition_variable work_cv_;  ///< Signals the writer thread.
    std::condition_variable idle_cv_;  ///< Signals flush() waiters.
    std::deque<Job> queue_;
    std::string error_;   ///< First writer-thread failure (sticky).
    bool busy_ = false;   ///< Writer is mid-job (queue may be empty).
    bool stopping_ = false;
    std::thread writer_;  ///< Started lazily on the first write().
};

/**
 * Most recent checkpoint "<basename>-NNN...N.hdtsnap" in @p directory,
 * or "" if none exists.  "Most recent" means highest index — indices
 * grow monotonically within a run and across resumes.
 */
std::string latestCheckpoint(const std::string& directory,
                             const std::string& basename = "checkpoint");

} // namespace hddtherm::snap

#endif // HDDTHERM_SNAP_CHECKPOINT_H
