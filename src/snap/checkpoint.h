/**
 * @file
 * Checkpoint cadence policy and on-disk lifecycle management.
 *
 * CheckpointManager owns the filesystem side of checkpointing — stable
 * file naming, crash-consistent writes (delegated to
 * CheckpointWriter::writeFile), and retention of the last K checkpoints —
 * while staying ignorant of *what* is checkpointed.  The orchestration
 * (which sections, at what simulated-time cadence) lives with the engines
 * that own the state: dtm::CoSimEngine for standalone co-sims and
 * fleet::FleetSimulator for fleet runs.
 */
#ifndef HDDTHERM_SNAP_CHECKPOINT_H
#define HDDTHERM_SNAP_CHECKPOINT_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "snap/format.h"

namespace hddtherm::snap {

/// When and where to write checkpoints.
struct CheckpointPolicy
{
    /// Directory checkpoints are written into (created if absent).
    std::string directory;

    /// Filename stem; files are "<basename>-<%012d index>.hdtsnap".
    std::string basename = "checkpoint";

    /// Simulated seconds between checkpoints (standalone co-sim cadence).
    double everySec = 0.0;

    /// Fleet epochs between checkpoints (fleet cadence).
    std::uint64_t everyEpochs = 0;

    /// How many most-recent checkpoints to keep; older ones are pruned.
    int retain = 3;
};

/**
 * Writes, names, and prunes checkpoints under one policy.
 *
 * File I/O runs on a private writer thread so the fsync-heavy write path
 * overlaps simulation compute instead of stalling it (bench_snap_overhead
 * gates the cadence cost).  Writes are queued in order and land via the
 * usual temp-file + atomic-rename protocol, so the crash-consistency
 * contract is unchanged: a crash loses at most the not-yet-durable tail
 * of the queue, never corrupts a visible checkpoint, and resume picks up
 * from the latest durable file.  flush() — also implied by destruction —
 * drains the queue and rethrows any I/O error raised on the writer
 * thread.
 */
class CheckpointManager
{
  public:
    /// Validates the policy and creates the directory if needed.
    explicit CheckpointManager(CheckpointPolicy policy);

    /// Drains pending writes (failures are logged; see flush()).
    ~CheckpointManager();

    CheckpointManager(const CheckpointManager&) = delete;
    CheckpointManager& operator=(const CheckpointManager&) = delete;

    /// Path checkpoint @p index would be written to.
    std::string pathFor(std::uint64_t index) const;

    /**
     * Queue checkpoint @p index for an atomic write; after it lands the
     * writer prunes checkpoints beyond the retention window.  Pruning
     * scans the directory rather than a private write log, so a resumed
     * run keeps pruning checkpoints its parent wrote.  Serialization
     * happens on the calling thread (the simulation state must be read
     * now); the file I/O happens on the writer thread.  @returns the
     * final path, which is guaranteed to exist only after flush().
     * @throws a pending writer-thread error, if any.
     */
    std::string write(const CheckpointWriter& ckpt, std::uint64_t index);

    /**
     * Block until every queued write is durable; rethrows the first
     * writer-thread I/O error, if any.
     */
    void flush();

    const CheckpointPolicy& policy() const { return policy_; }

  private:
    void prune() const;
    void writerLoop();
    void rethrowPendingError();

    CheckpointPolicy policy_;

    struct Job
    {
        std::string path;
        std::vector<std::uint8_t> bytes;
    };
    std::mutex mutex_;
    std::condition_variable work_cv_;  ///< Signals the writer thread.
    std::condition_variable idle_cv_;  ///< Signals flush() waiters.
    std::deque<Job> queue_;
    std::string error_;   ///< First writer-thread failure (sticky).
    bool busy_ = false;   ///< Writer is mid-job (queue may be empty).
    bool stopping_ = false;
    std::thread writer_;  ///< Started lazily on the first write().
};

/**
 * Most recent checkpoint "<basename>-NNN...N.hdtsnap" in @p directory,
 * or "" if none exists.  "Most recent" means highest index — indices
 * grow monotonically within a run and across resumes.
 */
std::string latestCheckpoint(const std::string& directory,
                             const std::string& basename = "checkpoint");

} // namespace hddtherm::snap

#endif // HDDTHERM_SNAP_CHECKPOINT_H
