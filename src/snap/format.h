/**
 * @file
 * The checkpoint container format (see docs/checkpoint.md for the spec).
 *
 * A checkpoint file is a little-endian binary:
 *
 *   magic "HDTSNAP1" | u32 format version | u32 section count |
 *   u64 config hash  | u64 total file size |
 *   section table: {u16 name length, name, u64 offset, u64 size,
 *                   u64 FNV-1a checksum, u8 flags (v2+)} per section |
 *   section payloads (tagged field streams; see state.h)
 *
 * Version 2 adds one flags byte per table entry.  Bit 0 marks a payload
 * stored LZ-compressed (util/codec.h) and self-contained; bit 1 marks a
 * payload compressed against the same-name section of the checkpoint's
 * base (delta dictionary mode — see delta.h), which only a chain
 * resolver can expand.  Checksums always cover the *stored* bytes, so
 * validation never needs to decompress, and the header + section table
 * are never compressed, keeping snap_inspect and up-front validation
 * cheap.
 *
 * Readers validate everything up front — magic, version, total size
 * (truncation anywhere fails loudly), table bounds, and every payload
 * checksum — throwing util::ModelError naming the offending section.
 * Unknown section *names* are skipped (forward compatibility: a newer
 * writer may add sections an older reader ignores), but unknown format
 * *versions* and unknown section *flag bits* are rejected.
 */
#ifndef HDDTHERM_SNAP_FORMAT_H
#define HDDTHERM_SNAP_FORMAT_H

#include <cstdint>
#include <string>
#include <vector>

#include "snap/state.h"

namespace hddtherm::snap {

/// First 8 bytes of every checkpoint file.
inline constexpr char kMagic[8] = {'H', 'D', 'T', 'S', 'N', 'A', 'P', '1'};

/// Container format version this build writes.
inline constexpr std::uint32_t kFormatVersion = 2;

/// File extension checkpoints are written under.
inline constexpr const char* kCheckpointExtension = ".hdtsnap";

/// Section flag (v2+): payload is stored LZ-compressed, self-contained.
inline constexpr std::uint8_t kSectionCompressed = 0x01;

/// Section flag (v2+): payload is LZ-compressed against the same-name
/// section of this checkpoint's base (see delta.h).  Only a chain
/// resolver can expand it; sectionBytes() on such a section throws.
inline constexpr std::uint8_t kSectionDeltaDict = 0x02;

/// All flag bits this build understands; others are rejected.
inline constexpr std::uint8_t kSectionKnownFlags =
    kSectionCompressed | kSectionDeltaDict;

/// One section as it will sit in the file: already-encoded stored bytes
/// plus the flags describing that encoding.  The low-level container
/// encoder below works on these; CheckpointManager uses it to build
/// delta containers with per-section encodings it picked itself.
struct StoredSection
{
    std::string name;
    std::vector<std::uint8_t> stored;
    std::uint8_t flags = 0;
};

/// Encode a whole container from already-encoded sections.
std::vector<std::uint8_t>
serializeSections(std::uint64_t config_hash,
                  const std::vector<StoredSection>& sections);

/// Assembles one checkpoint: named sections + the config fingerprint.
class CheckpointWriter
{
  public:
    /// @param config_hash fingerprint of the run configuration; resume
    ///        validates it against the caller's reconstructed config.
    explicit CheckpointWriter(std::uint64_t config_hash);

    /// Append a section (names must be unique within a checkpoint).
    void addSection(const std::string& name,
                    std::vector<std::uint8_t> payload);

    /// Append a StateWriter's section under its own name.
    void addSection(StateWriter&& writer);

    /// True if a section of that name was added.
    bool has(const std::string& name) const;

    /// Config fingerprint this checkpoint was created with.
    std::uint64_t configHash() const { return config_hash_; }

    /**
     * When enabled, serialize() stores each section LZ-compressed
     * whenever that is strictly smaller than the raw payload (flag
     * kSectionCompressed).  Off by default; the choice is deterministic
     * either way.
     */
    void setCompression(bool on) { compress_ = on; }

    /// @name Raw-section access (CheckpointManager's delta builder).
    /// @{
    std::size_t sectionCount() const { return sections_.size(); }
    const std::string& sectionName(std::size_t i) const;
    const std::vector<std::uint8_t>& sectionPayload(std::size_t i) const;
    /// @}

    /// Encode the whole container.
    std::vector<std::uint8_t> serialize() const;

    /**
     * Crash-consistent write: serialize to "<path>.tmp", flush + fsync,
     * then atomically rename over @p path.  A reader can never observe a
     * half-written checkpoint.  @throws util::ModelError on I/O failure.
     */
    void writeFile(const std::string& path) const;

  private:
    struct Section
    {
        std::string name;
        std::vector<std::uint8_t> payload;
    };

    std::uint64_t config_hash_;
    bool compress_ = false;
    std::vector<Section> sections_;
};

/**
 * Crash-consistent raw write of already-serialized checkpoint bytes:
 * "<path>.tmp" + fwrite + fflush + fsync, then an atomic rename over
 * @p path.  A reader can never observe a half-written checkpoint.
 * @throws util::ModelError on I/O failure.
 */
void writeCheckpointBytes(const std::string& path,
                          const std::vector<std::uint8_t>& bytes);

/// Opens and fully validates one checkpoint.
class CheckpointReader
{
  public:
    /// Read and validate the file at @p path.
    explicit CheckpointReader(const std::string& path);

    /// Validate an in-memory container (@p label names it in errors).
    CheckpointReader(std::string label, std::vector<std::uint8_t> bytes);

    /// Label this container is known by in error messages (the path,
    /// for file-backed readers).
    const std::string& label() const { return label_; }

    /// Config fingerprint stored in the header.
    std::uint64_t configHash() const { return config_hash_; }

    /// Container format version stored in the header.
    std::uint32_t formatVersion() const { return version_; }

    /// FNV-1a hash over the whole container's bytes (delta containers
    /// pin their base checkpoint by this).
    std::uint64_t containerHash() const { return container_hash_; }

    /// Total container size in bytes.
    std::size_t containerSize() const { return bytes_.size(); }

    /// Section names in file order.
    const std::vector<std::string>& sectionNames() const { return names_; }

    /// True if the checkpoint carries section @p name.
    bool has(const std::string& name) const;

    /// Flags byte of section @p name (0 for version-1 containers).
    std::uint8_t sectionFlags(const std::string& name) const;

    /// Stored (possibly compressed) bytes of section @p name.
    const std::vector<std::uint8_t>&
    storedBytes(const std::string& name) const;

    /// Decoded payload size of section @p name without materializing it.
    std::uint64_t rawSize(const std::string& name) const;

    /**
     * Raw payload bytes of section @p name (throws if missing).
     * Compressed sections were decoded up front; a delta-dictionary
     * section (kSectionDeltaDict) cannot be expanded standalone and
     * throws — resolve the chain first (delta.h).
     */
    const std::vector<std::uint8_t>&
    sectionBytes(const std::string& name) const;

    /**
     * Sequential reader over section @p name.  The returned reader
     * borrows this object's buffers and must not outlive it.
     * @throws util::ModelError if the section is missing.
     */
    StateReader section(const std::string& name) const;

  private:
    void parse();
    std::size_t indexOf(const std::string& name) const;

    std::string label_;
    std::vector<std::uint8_t> bytes_;
    std::uint64_t config_hash_ = 0;
    std::uint64_t container_hash_ = 0;
    std::uint32_t version_ = 0;
    std::vector<std::string> names_;
    std::vector<std::uint8_t> flags_;
    std::vector<std::vector<std::uint8_t>> stored_;
    /// Decoded payloads for kSectionCompressed sections (parallel to
    /// stored_; empty entries elsewhere — plain sections read stored_).
    std::vector<std::vector<std::uint8_t>> decoded_;
};

} // namespace hddtherm::snap

#endif // HDDTHERM_SNAP_FORMAT_H
