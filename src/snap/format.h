/**
 * @file
 * The checkpoint container format (see docs/checkpoint.md for the spec).
 *
 * A checkpoint file is a little-endian binary:
 *
 *   magic "HDTSNAP1" | u32 format version | u32 section count |
 *   u64 config hash  | u64 total file size |
 *   section table: {u16 name length, name, u64 offset, u64 size,
 *                   u64 FNV-1a checksum} per section |
 *   section payloads (tagged field streams; see state.h)
 *
 * Readers validate everything up front — magic, version, total size
 * (truncation anywhere fails loudly), table bounds, and every payload
 * checksum — throwing util::ModelError naming the offending section.
 * Unknown section *names* are skipped (forward compatibility: a newer
 * writer may add sections an older reader ignores), but unknown format
 * *versions* are rejected.
 */
#ifndef HDDTHERM_SNAP_FORMAT_H
#define HDDTHERM_SNAP_FORMAT_H

#include <cstdint>
#include <string>
#include <vector>

#include "snap/state.h"

namespace hddtherm::snap {

/// First 8 bytes of every checkpoint file.
inline constexpr char kMagic[8] = {'H', 'D', 'T', 'S', 'N', 'A', 'P', '1'};

/// Container format version this build writes.
inline constexpr std::uint32_t kFormatVersion = 1;

/// File extension checkpoints are written under.
inline constexpr const char* kCheckpointExtension = ".hdtsnap";

/// Assembles one checkpoint: named sections + the config fingerprint.
class CheckpointWriter
{
  public:
    /// @param config_hash fingerprint of the run configuration; resume
    ///        validates it against the caller's reconstructed config.
    explicit CheckpointWriter(std::uint64_t config_hash);

    /// Append a section (names must be unique within a checkpoint).
    void addSection(const std::string& name,
                    std::vector<std::uint8_t> payload);

    /// Append a StateWriter's section under its own name.
    void addSection(StateWriter&& writer);

    /// True if a section of that name was added.
    bool has(const std::string& name) const;

    /// Config fingerprint this checkpoint was created with.
    std::uint64_t configHash() const { return config_hash_; }

    /// Encode the whole container.
    std::vector<std::uint8_t> serialize() const;

    /**
     * Crash-consistent write: serialize to "<path>.tmp", flush + fsync,
     * then atomically rename over @p path.  A reader can never observe a
     * half-written checkpoint.  @throws util::ModelError on I/O failure.
     */
    void writeFile(const std::string& path) const;

  private:
    struct Section
    {
        std::string name;
        std::vector<std::uint8_t> payload;
    };

    std::uint64_t config_hash_;
    std::vector<Section> sections_;
};

/**
 * Crash-consistent raw write of already-serialized checkpoint bytes:
 * "<path>.tmp" + fwrite + fflush + fsync, then an atomic rename over
 * @p path.  A reader can never observe a half-written checkpoint.
 * @throws util::ModelError on I/O failure.
 */
void writeCheckpointBytes(const std::string& path,
                          const std::vector<std::uint8_t>& bytes);

/// Opens and fully validates one checkpoint.
class CheckpointReader
{
  public:
    /// Read and validate the file at @p path.
    explicit CheckpointReader(const std::string& path);

    /// Validate an in-memory container (@p label names it in errors).
    CheckpointReader(std::string label, std::vector<std::uint8_t> bytes);

    /// Config fingerprint stored in the header.
    std::uint64_t configHash() const { return config_hash_; }

    /// Container format version stored in the header.
    std::uint32_t formatVersion() const { return version_; }

    /// Section names in file order.
    const std::vector<std::string>& sectionNames() const { return names_; }

    /// True if the checkpoint carries section @p name.
    bool has(const std::string& name) const;

    /// Raw payload bytes of section @p name (throws if missing).
    const std::vector<std::uint8_t>&
    sectionBytes(const std::string& name) const;

    /**
     * Sequential reader over section @p name.  The returned reader
     * borrows this object's buffers and must not outlive it.
     * @throws util::ModelError if the section is missing.
     */
    StateReader section(const std::string& name) const;

  private:
    void parse();
    std::size_t indexOf(const std::string& name) const;

    std::string label_;
    std::vector<std::uint8_t> bytes_;
    std::uint64_t config_hash_ = 0;
    std::uint32_t version_ = 0;
    std::vector<std::string> names_;
    std::vector<std::vector<std::uint8_t>> payloads_;
};

} // namespace hddtherm::snap

#endif // HDDTHERM_SNAP_FORMAT_H
