/**
 * @file
 * Tests of the rack-scale fleet co-simulation: topology validation, the
 * chassis air coupling, the work-stealing executor, and the determinism
 * contract (bit-identical fleet metrics across executor thread counts).
 */
#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include <gtest/gtest.h>

#include "dtm/cosim.h"
#include "fleet/chassis_thermal.h"
#include "fleet/fleet_sim.h"
#include "fleet/shard_executor.h"
#include "util/error.h"

namespace hd = hddtherm::dtm;
namespace hf = hddtherm::fleet;
namespace hs = hddtherm::sim;
namespace ht = hddtherm::thermal;
namespace hu = hddtherm::util;

namespace {

/// A hot 2.6" drive (steady state above the envelope at full duty) so the
/// GateRequests policy actually throttles under fleet traffic.
hs::SystemConfig
hotDrive()
{
    hs::SystemConfig cfg;
    cfg.disk.geometry.diameterInches = 2.6;
    cfg.disk.geometry.platters = 1;
    cfg.disk.tech = {500e3, 60e3};
    cfg.disk.rpm = 24534.0;
    cfg.disks = 1;
    return cfg;
}

hf::FleetConfig
smallFleet(int racks, int chassis_per_rack, int bays_per_chassis)
{
    hf::FleetConfig cfg;
    cfg.racks = racks;
    cfg.rack.chassisCount = chassis_per_rack;
    cfg.chassis.bays = bays_per_chassis;
    cfg.bay.system = hotDrive();
    cfg.bay.policy = hd::DtmPolicy::GateRequests;
    cfg.workload.requests = 150;
    cfg.workload.arrivalRatePerSec = 100.0;
    cfg.epochSec = 0.25;
    cfg.maxSimulatedSec = 600.0;
    cfg.seed = 7;
    return cfg;
}

} // namespace

TEST(FleetTopology, EnumeratesBaysRackMajor)
{
    const auto cfg = smallFleet(2, 3, 4);
    const auto bays = hf::enumerateBays(cfg);
    ASSERT_EQ(bays.size(), 24u);
    EXPECT_EQ(cfg.totalBays(), 24);
    EXPECT_EQ(cfg.totalChassis(), 6);
    EXPECT_EQ(bays[0].globalIndex, 0);
    EXPECT_EQ(bays[0].chassisIndex, 0);
    // Bay 13 = rack 1, chassis 0, bay 1.
    EXPECT_EQ(bays[13].rack, 1);
    EXPECT_EQ(bays[13].chassis, 0);
    EXPECT_EQ(bays[13].bay, 1);
    EXPECT_EQ(bays[13].chassisIndex, 3);
    EXPECT_EQ(bays.back().globalIndex, 23);
}

TEST(FleetTopology, ValidatesConfiguration)
{
    auto bad = smallFleet(1, 1, 2);
    bad.racks = 0;
    EXPECT_THROW(bad.validate(), hu::ModelError);

    bad = smallFleet(1, 1, 2);
    bad.chassis.airflowCfm = 0.0;
    EXPECT_THROW(bad.validate(), hu::ModelError);

    bad = smallFleet(1, 1, 2);
    bad.chassis.recirculationFraction = 1.5;
    EXPECT_THROW(bad.validate(), hu::ModelError);

    bad = smallFleet(1, 1, 2);
    bad.bay.ambientProfile = {{0.0, 28.0}, {10.0, 35.0}};
    EXPECT_THROW(bad.validate(), hu::ModelError);

    bad = smallFleet(1, 1, 2);
    bad.workload.requests = 0;
    EXPECT_THROW(bad.validate(), hu::ModelError);
}

TEST(ChassisAir, IdleChassisSitsAtInlet)
{
    const auto cfg = smallFleet(1, 2, 4);
    const auto states =
        hf::resolveChassisAir(cfg, std::vector<double>(2, 0.0));
    ASSERT_EQ(states.size(), 2u);
    for (const auto& s : states) {
        EXPECT_DOUBLE_EQ(s.inletC, cfg.rack.inletC);
        EXPECT_DOUBLE_EQ(s.exhaustC, s.inletC);
        EXPECT_DOUBLE_EQ(s.driveAmbientC, s.inletC);
    }
}

TEST(ChassisAir, HeatRaisesExhaustAndDriveAmbient)
{
    const auto cfg = smallFleet(1, 1, 4);
    const auto states = hf::resolveChassisAir(cfg, {200.0});
    ASSERT_EQ(states.size(), 1u);
    EXPECT_GT(states[0].exhaustC, states[0].inletC);
    EXPECT_GT(states[0].driveAmbientC, states[0].inletC);
    // Partial recirculation: drives breathe cooler air than the exhaust.
    EXPECT_LT(states[0].driveAmbientC, states[0].exhaustC);

    // Double the heat, double the rise (steady-flow energy balance).
    const auto twice = hf::resolveChassisAir(cfg, {400.0});
    EXPECT_NEAR(twice[0].exhaustC - twice[0].inletC,
                2.0 * (states[0].exhaustC - states[0].inletC), 1e-9);
}

TEST(ChassisAir, UpperChassisInheritsPreheat)
{
    const auto cfg = smallFleet(1, 3, 4);
    const auto states = hf::resolveChassisAir(cfg, {150.0, 150.0, 150.0});
    ASSERT_EQ(states.size(), 3u);
    EXPECT_GT(states[1].inletC, states[0].inletC);
    EXPECT_GT(states[2].inletC, states[1].inletC);

    // Racks are independent: the second rack's bottom chassis matches the
    // first rack's bottom chassis.
    auto two_racks = smallFleet(2, 3, 4);
    const auto both = hf::resolveChassisAir(
        two_racks, std::vector<double>(6, 150.0));
    EXPECT_DOUBLE_EQ(both[3].inletC, both[0].inletC);
}

TEST(ShardExecutor, RunsEveryTaskAcrossThreads)
{
    for (int threads : {1, 2, 4}) {
        hf::ShardExecutor exec(threads);
        EXPECT_EQ(exec.threads(), threads);
        std::atomic<int> ran{0};
        std::vector<hf::ShardExecutor::Task> tasks;
        for (int i = 0; i < 64; ++i)
            tasks.push_back([&ran]() { ++ran; });
        exec.runBatch(std::move(tasks));
        EXPECT_EQ(ran.load(), 64);
        EXPECT_EQ(exec.stats().tasks, 64u);
        EXPECT_EQ(exec.stats().batches, 1u);
    }
}

TEST(ShardExecutor, StealsUnevenWork)
{
    // Worker 0's home deque gets the long task first (round-robin), so the
    // other workers run dry and must steal the remainder of its queue.
    hf::ShardExecutor exec(4);
    std::vector<hf::ShardExecutor::Task> tasks;
    tasks.push_back([]() {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    });
    std::atomic<int> ran{0};
    for (int i = 0; i < 32; ++i)
        tasks.push_back([&ran]() { ++ran; });
    exec.runBatch(std::move(tasks));
    EXPECT_EQ(ran.load(), 32);
    EXPECT_EQ(exec.stats().tasks, 33u);
}

TEST(ShardExecutor, PropagatesTaskExceptions)
{
    hf::ShardExecutor exec(2);
    std::atomic<int> ran{0};
    std::vector<hf::ShardExecutor::Task> tasks;
    tasks.push_back([]() { throw std::runtime_error("shard failed"); });
    for (int i = 0; i < 8; ++i)
        tasks.push_back([&ran]() { ++ran; });
    EXPECT_THROW(exec.runBatch(std::move(tasks)), std::runtime_error);
    EXPECT_EQ(ran.load(), 8); // remaining tasks still ran

    // The pool survives a failed batch.
    std::vector<hf::ShardExecutor::Task> again;
    again.push_back([&ran]() { ++ran; });
    exec.runBatch(std::move(again));
    EXPECT_EQ(ran.load(), 9);
}

TEST(ShardExecutor, ZeroSelectsHardwareConcurrency)
{
    hf::ShardExecutor exec(0);
    EXPECT_GE(exec.threads(), 1);
}

TEST(CoSimEngine, SteppedRunMatchesRunToCompletion)
{
    hd::CoSimConfig cfg;
    cfg.system = hotDrive();
    cfg.policy = hd::DtmPolicy::GateRequests;

    std::vector<hs::IoRequest> workload;
    const std::int64_t space = hs::StorageSystem(cfg.system).logicalSectors();
    for (std::size_t i = 0; i < 300; ++i) {
        hs::IoRequest r;
        r.id = i + 1;
        r.arrival = double(i) * 0.01;
        r.lba = std::int64_t(i * 7919 * 512) % (space - 64);
        r.sectors = 8;
        r.type = i % 4 ? hs::IoType::Read : hs::IoType::Write;
        workload.push_back(r);
    }

    hd::CoSimulation oneshot(cfg);
    const auto a = oneshot.run(workload);

    hd::CoSimEngine engine(cfg);
    engine.start(workload);
    double t = 0.0;
    while (!engine.finished()) {
        t += 0.37; // barrier schedule deliberately unrelated to the ticks
        engine.advanceTo(t);
    }
    engine.advanceToCompletion();
    const auto b = engine.result();

    // Stepping changes when the host observes the simulation, never the
    // event order inside it: metrics and thermal outcomes are bit-equal.
    EXPECT_EQ(a.metrics.count(), b.metrics.count());
    EXPECT_EQ(a.metrics.meanMs(), b.metrics.meanMs());
    EXPECT_EQ(a.metrics.stats().max(), b.metrics.stats().max());
    EXPECT_EQ(a.maxTempC, b.maxTempC);
    EXPECT_EQ(a.gateEvents, b.gateEvents);
    EXPECT_EQ(a.gatedSec, b.gatedSec);
    // Duty *means* divide by simulatedSec, which legitimately differs (the
    // stepped clock ends on a barrier boundary); the integrals must match.
    EXPECT_NEAR(a.meanVcmDuty * a.simulatedSec,
                b.meanVcmDuty * b.simulatedSec, 1e-9);
}

TEST(FleetSim, AggregatesEveryBayAndThrottles)
{
    auto cfg = smallFleet(1, 2, 3);
    hf::FleetSimulation fleet(cfg);
    const auto result = fleet.run(1);

    EXPECT_EQ(result.shards, 6);
    EXPECT_EQ(result.metrics.count(), 6u * cfg.workload.requests);
    EXPECT_GT(result.epochs, 0u);
    EXPECT_GT(result.simulatedSec, 0.0);
    EXPECT_GT(result.meanLatencyMs, 0.0);
    EXPECT_GT(result.p95LatencyMs, 0.0);
    // The hot drive config throttles under shared chassis air.
    EXPECT_GT(result.gateEvents, 0u);
    EXPECT_GT(result.maxDriveTempC, cfg.rack.inletC);

    ASSERT_EQ(result.chassis.size(), 2u);
    std::uint64_t chassis_gates = 0;
    for (const auto& c : result.chassis) {
        // Members heated the shared air above the cold-aisle supply.
        EXPECT_GT(c.peakDriveAmbientC, cfg.rack.inletC);
        EXPECT_GT(c.peakDriveTempC, c.peakDriveAmbientC);
        chassis_gates += c.gateEvents;
    }
    EXPECT_EQ(chassis_gates, result.gateEvents);
}

TEST(FleetSim, DenserChassisRunsHotter)
{
    auto sparse = smallFleet(1, 1, 2);
    auto dense = smallFleet(1, 1, 6);
    const auto a = hf::FleetSimulation(sparse).run(1);
    const auto b = hf::FleetSimulation(dense).run(1);
    EXPECT_GT(b.chassis[0].peakDriveAmbientC,
              a.chassis[0].peakDriveAmbientC);
}

TEST(FleetSim, BitIdenticalAcrossThreadCounts)
{
    const auto cfg = smallFleet(1, 2, 4);
    const auto base = hf::FleetSimulation(cfg).run(1);
    for (int threads : {2, 4}) {
        const auto other = hf::FleetSimulation(cfg).run(threads);
        // The acceptance contract: aggregated fleet metrics are
        // bit-identical for a fixed seed regardless of the thread count.
        EXPECT_EQ(base.metrics.count(), other.metrics.count());
        EXPECT_EQ(base.metrics.meanMs(), other.metrics.meanMs());
        EXPECT_EQ(base.metrics.stats().variance(),
                  other.metrics.stats().variance());
        EXPECT_EQ(base.p95LatencyMs, other.p95LatencyMs);
        EXPECT_EQ(base.maxDriveTempC, other.maxDriveTempC);
        EXPECT_EQ(base.gateEvents, other.gateEvents);
        EXPECT_EQ(base.gatedSec, other.gatedSec);
        EXPECT_EQ(base.epochs, other.epochs);
        ASSERT_EQ(base.chassis.size(), other.chassis.size());
        for (std::size_t i = 0; i < base.chassis.size(); ++i) {
            EXPECT_EQ(base.chassis[i].peakDriveAmbientC,
                      other.chassis[i].peakDriveAmbientC);
            EXPECT_EQ(base.chassis[i].peakDriveTempC,
                      other.chassis[i].peakDriveTempC);
            EXPECT_EQ(base.chassis[i].gateEvents,
                      other.chassis[i].gateEvents);
        }
    }
}

TEST(FleetSim, SeedSelectsTheWorkload)
{
    auto cfg = smallFleet(1, 1, 2);
    const auto a = hf::FleetSimulation(cfg).run(1);
    cfg.seed = 1234;
    const auto b = hf::FleetSimulation(cfg).run(1);
    EXPECT_EQ(a.metrics.count(), b.metrics.count());
    EXPECT_NE(a.metrics.meanMs(), b.metrics.meanMs());
}

TEST(FleetSim, RejectsInvalidFleet)
{
    auto cfg = smallFleet(1, 1, 1);
    cfg.epochSec = 0.0;
    EXPECT_THROW({ hf::FleetSimulation f(cfg); }, hu::ModelError);
}
