/**
 * @file
 * Tests of the analysis affordances: latency log, queue-depth accounting,
 * heat-flow breakdown, trace slicing/acceleration.
 */
#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "sim/latency_log.h"
#include "sim/storage_system.h"
#include "thermal/drive_thermal.h"
#include "trace/trace.h"
#include "util/error.h"

namespace hs = hddtherm::sim;
namespace ht = hddtherm::thermal;
namespace htr = hddtherm::trace;
namespace hu = hddtherm::util;

TEST(LatencyLog, RecordsAndSummarizes)
{
    hs::LatencyLog log;
    EXPECT_TRUE(log.empty());
    for (int i = 1; i <= 100; ++i) {
        hs::IoCompletion c;
        c.id = std::uint64_t(i);
        c.arrival = 0.0;
        c.finish = double(i) * 1e-3; // 1..100 ms
        log.record(c);
    }
    EXPECT_EQ(log.size(), 100u);
    EXPECT_NEAR(log.meanMs(), 50.5, 1e-9);
    EXPECT_NEAR(log.quantileMs(0.5), 51.0, 1.0);
    EXPECT_NEAR(log.quantileMs(0.95), 96.0, 1.0);
    EXPECT_NEAR(log.quantileMs(0.0), 1.0, 1e-9);
    log.clear();
    EXPECT_DOUBLE_EQ(log.meanMs(), 0.0);
    EXPECT_DOUBLE_EQ(log.quantileMs(0.5), 0.0);
}

TEST(LatencyLog, CsvRoundTrip)
{
    hs::LatencyLog log;
    hs::IoCompletion c;
    c.id = 7;
    c.arrival = 1.0;
    c.finish = 1.0125;
    log.record(c);
    const std::string path = "/tmp/hddtherm_latlog_test.csv";
    ASSERT_TRUE(log.writeCsv(path));
    std::ifstream in(path);
    std::string header, row;
    std::getline(in, header);
    std::getline(in, row);
    EXPECT_EQ(header, "id,arrival_s,finish_s,latency_ms");
    EXPECT_NE(row.find("7,"), std::string::npos);
    EXPECT_NE(row.find("12.5"), std::string::npos);
    std::remove(path.c_str());
    EXPECT_FALSE(log.writeCsv("/nonexistent-dir/x.csv"));
    EXPECT_THROW(log.quantileMs(1.5), hu::ModelError);
}

TEST(LatencyLog, HooksIntoStorageSystem)
{
    hs::SystemConfig cfg;
    cfg.disk.tech = {400e3, 30e3};
    hs::StorageSystem sys(cfg);
    hs::LatencyLog log;
    sys.setCompletionCallback(
        [&log](const hs::IoCompletion& c) { log.record(c); });

    std::vector<hs::IoRequest> load;
    for (std::uint64_t i = 0; i < 50; ++i) {
        hs::IoRequest r;
        r.id = i + 1;
        r.arrival = double(i) * 0.005;
        r.lba = std::int64_t(i) * 4000;
        r.sectors = 8;
        load.push_back(r);
    }
    const auto metrics = sys.run(load);
    ASSERT_EQ(log.size(), 50u);
    EXPECT_NEAR(log.meanMs(), metrics.meanMs(), 1e-9);
}

TEST(QueueDepth, LittlesLawConsistency)
{
    // L = lambda * W: the time-averaged system population must match the
    // arrival rate times the mean response time.
    hs::EventQueue events;
    hs::DiskConfig cfg;
    cfg.tech = {400e3, 30e3};
    hs::SimDisk disk(events, cfg);
    double total_latency = 0.0;
    int done = 0;
    disk.setCompletionHandler(
        [&](const hs::IoRequest& req, hs::SimTime finish) {
            total_latency += finish - req.arrival;
            ++done;
        });
    const int n = 400;
    const double rate = 120.0;
    for (int i = 0; i < n; ++i) {
        hs::IoRequest r;
        r.id = std::uint64_t(i + 1);
        r.arrival = double(i) / rate;
        r.lba = std::int64_t(i) * 10007 % 500000;
        r.sectors = 8;
        events.schedule(r.arrival, [&disk, r] { disk.submit(r); });
    }
    events.runAll();
    ASSERT_EQ(done, n);
    const double elapsed = events.now();
    const double lambda = double(n) / elapsed;
    const double mean_w = total_latency / n;
    EXPECT_NEAR(disk.avgQueueDepth(elapsed), lambda * mean_w,
                0.1 * lambda * mean_w + 0.02);
    EXPECT_GT(disk.utilization(elapsed), 0.1);
    EXPECT_LE(disk.utilization(elapsed), 1.0);
}

TEST(HeatFlows, ConserveEnergyAtSteadyState)
{
    ht::DriveThermalConfig cfg;
    cfg.geometry.diameterInches = 2.6;
    cfg.rpm = 15020.0;
    ht::DriveThermalModel m(cfg);
    const auto flows = m.steadyHeatFlows();
    ASSERT_EQ(flows.size(), 6u);
    double to_ambient = 0.0;
    for (const auto& f : flows) {
        if (f.path == "base->ambient")
            to_ambient = f.watts;
    }
    // Everything the sources inject leaves through the base.
    EXPECT_NEAR(to_ambient, m.totalPowerW(), 1e-6);
    // The spindle sheds its motor loss through its two paths.
    double spindle_out = 0.0;
    for (const auto& f : flows) {
        if (f.path == "spindle->air" || f.path == "spindle->base")
            spindle_out += f.watts;
    }
    EXPECT_NEAR(spindle_out, m.spmPowerW(), 1e-6);
}

TEST(TraceSlice, WindowAndRebase)
{
    htr::Trace t("x");
    t.append({0.5, 0, 0, 8, false});
    t.append({1.5, 0, 100, 8, false});
    t.append({2.5, 0, 200, 8, true});
    const auto mid = t.slice(1.0, 2.0);
    ASSERT_EQ(mid.size(), 1u);
    EXPECT_DOUBLE_EQ(mid.records()[0].time, 0.5);
    EXPECT_EQ(mid.records()[0].lba, 100);
    EXPECT_THROW(t.slice(2.0, 1.0), hu::ModelError);
}

TEST(TraceAccelerate, CompressesTimeOnly)
{
    htr::Trace t("x");
    t.append({1.0, 0, 0, 8, false});
    t.append({3.0, 1, 50, 16, true});
    const auto fast = t.accelerate(2.0);
    ASSERT_EQ(fast.size(), 2u);
    EXPECT_DOUBLE_EQ(fast.records()[0].time, 0.5);
    EXPECT_DOUBLE_EQ(fast.records()[1].time, 1.5);
    EXPECT_EQ(fast.records()[1].lba, 50);
    EXPECT_EQ(fast.records()[1].sectors, 16);
    EXPECT_THROW(t.accelerate(0.0), hu::ModelError);
    // Rate doubles.
    EXPECT_NEAR(htr::analyze(fast).arrivalRatePerSec,
                2.0 * htr::analyze(t).arrivalRatePerSec, 1e-9);
}
