/**
 * @file
 * Integration tests of a single simulated disk.
 */
#include <vector>

#include <gtest/gtest.h>

#include "sim/disk.h"
#include "util/error.h"

namespace hs = hddtherm::sim;
namespace hu = hddtherm::util;

namespace {

hs::DiskConfig
smallDisk(double rpm = 10000.0)
{
    hs::DiskConfig cfg;
    cfg.geometry.diameterInches = 2.6;
    cfg.geometry.platters = 1;
    cfg.tech = {400e3, 30e3};
    cfg.zones = 30;
    cfg.rpm = rpm;
    return cfg;
}

struct Rig
{
    hs::EventQueue events;
    hs::SimDisk disk;
    std::vector<hs::IoCompletion> done;

    explicit Rig(const hs::DiskConfig& cfg = smallDisk())
        : disk(events, cfg)
    {
        disk.setCompletionHandler(
            [this](const hs::IoRequest& req, hs::SimTime finish) {
                done.push_back({req.id, req.arrival, finish});
            });
    }

    hs::IoRequest make(std::uint64_t id, std::int64_t lba, int sectors,
                       hs::IoType type = hs::IoType::Read)
    {
        hs::IoRequest r;
        r.id = id;
        r.arrival = events.now();
        r.lba = lba;
        r.sectors = sectors;
        r.type = type;
        return r;
    }
};

} // namespace

TEST(SimDisk, CompletesARead)
{
    Rig rig;
    rig.disk.submit(rig.make(1, 1000, 8));
    rig.events.runAll();
    ASSERT_EQ(rig.done.size(), 1u);
    EXPECT_EQ(rig.done[0].id, 1u);
    // Sane single-request service time: sub-millisecond overhead up to a
    // couple of mechanical visits.
    EXPECT_GT(rig.done[0].responseTimeMs(), 0.1);
    EXPECT_LT(rig.done[0].responseTimeMs(), 30.0);
    EXPECT_TRUE(rig.disk.idle());
}

TEST(SimDisk, SequentialReadsHitTheTrackBuffer)
{
    Rig rig;
    // First read misses; subsequent reads on the same track hit.
    rig.disk.submit(rig.make(1, 0, 8));
    rig.events.runAll();
    for (std::uint64_t i = 0; i < 5; ++i)
        rig.disk.submit(rig.make(10 + i, 8 + std::int64_t(i) * 8, 8));
    rig.events.runAll();
    EXPECT_EQ(rig.disk.cacheStats().readMisses, 1u);
    EXPECT_EQ(rig.disk.cacheStats().readHits, 5u);
    // Cache hits are much faster than the mechanical visit.
    EXPECT_LT(rig.done[1].responseTimeMs(), 1.0);
}

TEST(SimDisk, WritesAlwaysTouchTheMedia)
{
    Rig rig;
    rig.disk.submit(rig.make(1, 0, 8, hs::IoType::Write));
    rig.disk.submit(rig.make(2, 0, 8, hs::IoType::Write));
    rig.events.runAll();
    EXPECT_EQ(rig.disk.activity().mediaAccesses, 2u);
}

TEST(SimDisk, QueueingDelaysLaterRequests)
{
    Rig rig;
    // Two far-apart requests submitted back to back: the second waits.
    const auto far = rig.disk.totalSectors() - 64;
    rig.disk.submit(rig.make(1, 0, 8));
    rig.disk.submit(rig.make(2, far, 8));
    rig.events.runAll();
    ASSERT_EQ(rig.done.size(), 2u);
    EXPECT_GT(rig.done[1].responseTimeMs(), rig.done[0].responseTimeMs());
}

TEST(SimDisk, GateHoldsRequestsUntilReleased)
{
    Rig rig;
    rig.disk.gate(true);
    rig.disk.submit(rig.make(1, 0, 8));
    rig.events.runAll();
    EXPECT_TRUE(rig.done.empty());
    EXPECT_EQ(rig.disk.queueDepth(), 1u);
    rig.disk.gate(false);
    rig.events.runAll();
    EXPECT_EQ(rig.done.size(), 1u);
}

TEST(SimDisk, RpmChangeBlocksServiceDuringTransition)
{
    Rig rig;
    rig.disk.changeRpm(20000.0); // 10 krpm delta -> 1 s transition
    EXPECT_DOUBLE_EQ(rig.disk.rpm(), 20000.0);
    rig.disk.submit(rig.make(1, 0, 8));
    rig.events.runAll();
    ASSERT_EQ(rig.done.size(), 1u);
    EXPECT_GE(rig.done[0].finish, 1.0);
}

TEST(SimDisk, RpmChangeWhileBusyAppliesAfterService)
{
    Rig rig;
    rig.disk.submit(rig.make(1, 0, 8));
    rig.disk.changeRpm(15000.0); // disk is busy: deferred
    EXPECT_DOUBLE_EQ(rig.disk.rpm(), 10000.0);
    rig.events.runAll();
    EXPECT_DOUBLE_EQ(rig.disk.rpm(), 15000.0);
}

TEST(SimDisk, HigherRpmReducesMissLatency)
{
    // Average over many independent random reads.
    auto run = [](double rpm) {
        Rig rig(smallDisk(rpm));
        double total = 0.0;
        const int n = 200;
        for (int i = 0; i < n; ++i) {
            rig.done.clear();
            const std::int64_t lba =
                (std::int64_t(i) * 7919 * 1024) %
                (rig.disk.totalSectors() - 64);
            rig.disk.submit(rig.make(std::uint64_t(i), lba, 8));
            rig.events.runAll();
            total += rig.done[0].responseTimeMs();
        }
        return total / n;
    };
    EXPECT_LT(run(20000.0), run(10000.0));
}

TEST(SimDisk, ActivityAccountingIsConsistent)
{
    Rig rig;
    for (std::uint64_t i = 0; i < 50; ++i) {
        const std::int64_t lba =
            (std::int64_t(i) * 104729 * 64) %
            (rig.disk.totalSectors() - 64);
        rig.disk.submit(rig.make(i, lba, 8));
    }
    rig.events.runAll();
    const auto& a = rig.disk.activity();
    EXPECT_EQ(a.completions, 50u);
    EXPECT_LE(a.mediaAccesses, a.completions);
    EXPECT_LE(a.seeks, a.mediaAccesses);
    EXPECT_GT(a.busySec, 0.0);
    EXPECT_GE(a.busySec,
              a.seekSec + a.rotationSec + a.transferSec - 1e-9);
}

TEST(SimDisk, RejectsOutOfRangeRequests)
{
    Rig rig;
    EXPECT_THROW(rig.disk.submit(rig.make(1, -1, 8)), hu::ModelError);
    EXPECT_THROW(rig.disk.submit(rig.make(2, rig.disk.totalSectors(), 8)),
                 hu::ModelError);
    auto r = rig.make(3, 0, 0);
    EXPECT_THROW(rig.disk.submit(r), hu::ModelError);
}
