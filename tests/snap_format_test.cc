/**
 * @file
 * Tests of the snap container format and its filesystem lifecycle: field
 * stream round-trips, strict decode failures, corruption detection
 * (bit-flips, truncation, bad magic, unsupported versions), forward
 * compatibility with unknown sections, CheckpointManager retention and
 * flush semantics, and the kernel's flat event-tag map.
 */
#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/tag_map.h"
#include "obs/manifest.h"
#include "snap/checkpoint.h"
#include "snap/format.h"
#include "snap/state.h"
#include "util/error.h"

namespace fs = std::filesystem;
namespace he = hddtherm::engine;
namespace ho = hddtherm::obs;
namespace hsnap = hddtherm::snap;
namespace hu = hddtherm::util;

namespace {

/// Fresh scratch directory under the system temp root.
fs::path
scratchDir(const char* name)
{
    const fs::path dir = fs::temp_directory_path() / name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

std::vector<std::uint8_t>
readFileBytes(const fs::path& path)
{
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

} // namespace

TEST(StateStream, RoundTripsEveryFieldType)
{
    hsnap::StateWriter w("types");
    w.u64("a", 0xdeadbeefcafeull);
    w.i64("b", -42);
    w.f64("c", 3.25);
    w.boolean("d", true);
    w.str("e", "hello snap");
    w.bytes("f", {1, 2, 3, 0xff});
    w.u64vec("g", {7, 8, 9});
    w.f64vec("h", {0.5, -1.5});

    const auto buf = w.buffer();
    hsnap::StateReader r("types", buf.data(), buf.size());
    EXPECT_EQ(r.u64("a"), 0xdeadbeefcafeull);
    EXPECT_EQ(r.i64("b"), -42);
    EXPECT_EQ(r.f64("c"), 3.25);
    EXPECT_TRUE(r.boolean("d"));
    EXPECT_EQ(r.str("e"), "hello snap");
    EXPECT_EQ(r.bytes("f"), (std::vector<std::uint8_t>{1, 2, 3, 0xff}));
    EXPECT_EQ(r.u64vec("g"), (std::vector<std::uint64_t>{7, 8, 9}));
    EXPECT_EQ(r.f64vec("h"), (std::vector<double>{0.5, -1.5}));
    EXPECT_TRUE(r.atEnd());
}

TEST(StateStream, PrefixesQualifyNamesAndNest)
{
    hsnap::StateWriter w("scoped");
    w.u64("plain", 1);
    {
        hsnap::ScopedPrefix scope(w, "disk0");
        w.u64("rpm", 10000);
        {
            hsnap::ScopedPrefix inner(w, "mech");
            w.f64("pos", 0.5);
        }
        w.u64("rpm2", 12000);
    }
    w.u64("tail", 2);

    const auto buf = w.buffer();
    // The generic cursor sees the full on-disk names.
    hsnap::StateReader cursor("scoped", buf.data(), buf.size());
    hsnap::StateReader::Field f;
    std::vector<std::string> names;
    while (cursor.next(f))
        names.push_back(f.name);
    EXPECT_EQ(names, (std::vector<std::string>{
                         "plain", "disk0.rpm", "disk0.mech.pos",
                         "disk0.rpm2", "tail"}));

    // The typed reader mirrors the scopes.
    hsnap::StateReader r("scoped", buf.data(), buf.size());
    EXPECT_EQ(r.u64("plain"), 1u);
    {
        hsnap::ScopedPrefix scope(r, "disk0");
        EXPECT_EQ(r.u64("rpm"), 10000u);
        {
            hsnap::ScopedPrefix inner(r, "mech");
            EXPECT_EQ(r.f64("pos"), 0.5);
        }
        EXPECT_EQ(r.u64("rpm2"), 12000u);
    }
    EXPECT_EQ(r.u64("tail"), 2u);
}

TEST(StateStream, RejectsWrongNameTypeAndTruncation)
{
    hsnap::StateWriter w("strict");
    w.u64("count", 5);
    const auto buf = w.buffer();

    {
        hsnap::StateReader r("strict", buf.data(), buf.size());
        EXPECT_THROW(r.u64("wrong_name"), hu::ModelError);
    }
    {
        hsnap::StateReader r("strict", buf.data(), buf.size());
        EXPECT_THROW(r.f64("count"), hu::ModelError);
    }
    // Every truncation point fails loudly, never reads past the end.
    for (std::size_t n = 0; n < buf.size(); ++n) {
        hsnap::StateReader r("strict", buf.data(), n);
        EXPECT_THROW(r.u64("count"), hu::ModelError) << "length " << n;
    }
}

TEST(StateStream, BlobRoundTripAndBoundsCheck)
{
    hsnap::BlobWriter w;
    w.u8(7);
    w.u32(0x01020304u);
    w.u64(0x1122334455667788ull);
    w.i64(-9);
    w.f64(2.75);
    const std::uint64_t words[2] = {10, 11};
    w.words(words, 2);
    const auto bytes = w.take();

    hsnap::BlobReader r("test blob", bytes);
    EXPECT_EQ(r.u8(), 7);
    EXPECT_EQ(r.u32(), 0x01020304u);
    EXPECT_EQ(r.u64(), 0x1122334455667788ull);
    EXPECT_EQ(r.i64(), -9);
    EXPECT_EQ(r.f64(), 2.75);
    EXPECT_EQ(r.u64(), 10u);
    EXPECT_EQ(r.u64(), 11u);
    EXPECT_TRUE(r.atEnd());
    EXPECT_THROW(r.u8(), hu::ModelError);
}

namespace {

/// A two-section container with recognizable payload bytes.
hsnap::CheckpointWriter
sampleCheckpoint()
{
    hsnap::CheckpointWriter out(0xabcdef12345678ull);
    hsnap::StateWriter alpha("alpha");
    alpha.u64("alpha_marker_field", 0x1111111111111111ull);
    out.addSection(std::move(alpha));
    hsnap::StateWriter beta("beta");
    beta.str("beta_marker_field", "beta beta beta");
    out.addSection(std::move(beta));
    return out;
}

/// Offset of @p needle in @p haystack (must be present exactly once).
std::size_t
findOnce(const std::vector<std::uint8_t>& haystack,
         const std::string& needle)
{
    const auto begin = haystack.begin();
    const auto it = std::search(begin, haystack.end(), needle.begin(),
                                needle.end());
    EXPECT_NE(it, haystack.end());
    const auto again = std::search(it + 1, haystack.end(), needle.begin(),
                                   needle.end());
    EXPECT_EQ(again, haystack.end());
    return std::size_t(it - begin);
}

} // namespace

TEST(CheckpointContainer, RoundTripsSectionsAndHeader)
{
    const auto out = sampleCheckpoint();
    hsnap::CheckpointReader in("mem", out.serialize());
    EXPECT_EQ(in.configHash(), 0xabcdef12345678ull);
    EXPECT_EQ(in.formatVersion(), hsnap::kFormatVersion);
    EXPECT_EQ(in.sectionNames(),
              (std::vector<std::string>{"alpha", "beta"}));
    EXPECT_TRUE(in.has("alpha"));
    EXPECT_FALSE(in.has("gamma"));
    auto r = in.section("alpha");
    EXPECT_EQ(r.u64("alpha_marker_field"), 0x1111111111111111ull);
    EXPECT_THROW(in.section("gamma"), hu::ModelError);
}

TEST(CheckpointContainer, BitFlipsFailTheOffendingSectionsChecksum)
{
    const auto pristine = sampleCheckpoint().serialize();
    // Field names only occur inside section payloads (the table holds
    // section names), so a marker locates each payload region.
    struct Region
    {
        const char* section;
        std::size_t begin;
        std::size_t size;
    };
    const std::size_t alpha_at = findOnce(pristine, "alpha_marker_field");
    const std::size_t beta_at = findOnce(pristine, "beta_marker_field");
    const std::vector<Region> regions = {
        {"alpha", alpha_at, std::string("alpha_marker_field").size() + 8},
        {"beta", beta_at, std::string("beta_marker_field").size() + 8},
    };
    for (const auto& region : regions) {
        for (std::size_t i = 0; i < region.size; ++i) {
            auto corrupt = pristine;
            corrupt[region.begin + i] ^= 0x40;
            try {
                hsnap::CheckpointReader in("mem", std::move(corrupt));
                FAIL() << "flip at payload byte " << i << " undetected";
            } catch (const hu::ModelError& e) {
                EXPECT_NE(std::string(e.what()).find(region.section),
                          std::string::npos)
                    << e.what();
            }
        }
    }
}

TEST(CheckpointContainer, EveryTruncationPointIsDetected)
{
    const auto pristine = sampleCheckpoint().serialize();
    for (std::size_t n = 0; n < pristine.size(); ++n) {
        std::vector<std::uint8_t> cut(pristine.begin(),
                                      pristine.begin() + std::ptrdiff_t(n));
        EXPECT_THROW(hsnap::CheckpointReader("mem", std::move(cut)),
                     hu::ModelError)
            << "length " << n;
    }
}

TEST(CheckpointContainer, RejectsBadMagicAndUnsupportedVersion)
{
    auto bad_magic = sampleCheckpoint().serialize();
    bad_magic[0] = 'X';
    EXPECT_THROW(hsnap::CheckpointReader("mem", std::move(bad_magic)),
                 hu::ModelError);

    auto future = sampleCheckpoint().serialize();
    future[8] = std::uint8_t(hsnap::kFormatVersion + 1); // version u32 LE
    try {
        hsnap::CheckpointReader in("mem", std::move(future));
        FAIL() << "future format version accepted";
    } catch (const hu::ModelError& e) {
        EXPECT_NE(std::string(e.what()).find("version"), std::string::npos)
            << e.what();
    }
}

TEST(CheckpointContainer, UnknownSectionsAreCarriedNotRejected)
{
    // Forward compatibility: a newer writer may append sections this
    // build has never heard of; the reader exposes them without
    // complaint and known sections stay readable.
    auto out = sampleCheckpoint();
    hsnap::StateWriter future("future.unknown");
    future.u64("novel", 9);
    out.addSection(std::move(future));
    hsnap::CheckpointReader in("mem", out.serialize());
    EXPECT_TRUE(in.has("future.unknown"));
    auto r = in.section("alpha");
    EXPECT_EQ(r.u64("alpha_marker_field"), 0x1111111111111111ull);
}

TEST(CheckpointContainer, RejectsDuplicateSections)
{
    hsnap::CheckpointWriter out(1);
    out.addSection("dup", {1});
    EXPECT_THROW(out.addSection("dup", {2}), hu::ModelError);
}

TEST(CheckpointManager, WritesAtomicallyRetainsAndFindsLatest)
{
    const auto dir = scratchDir("hddtherm-snap-format-mgr");
    hsnap::CheckpointPolicy policy;
    policy.directory = dir.string();
    policy.retain = 2;
    {
        hsnap::CheckpointManager mgr(policy);
        std::string last_path;
        for (std::uint64_t i = 1; i <= 5; ++i) {
            hsnap::CheckpointWriter out(7);
            hsnap::StateWriter s("s");
            s.u64("index", i);
            out.addSection(std::move(s));
            last_path = mgr.write(out, i);
            EXPECT_EQ(last_path, mgr.pathFor(i));
        }
        mgr.flush();
        // After flush the newest file is durable and valid.
        hsnap::CheckpointReader in(last_path);
        auto r = in.section("s");
        EXPECT_EQ(r.u64("index"), 5u);
    }
    // Retention keeps exactly the newest two; no temp files linger.
    std::vector<std::string> files;
    for (const auto& entry : fs::directory_iterator(dir))
        files.push_back(entry.path().filename().string());
    std::sort(files.begin(), files.end());
    EXPECT_EQ(files, (std::vector<std::string>{
                         "checkpoint-000000000004.hdtsnap",
                         "checkpoint-000000000005.hdtsnap"}));
    EXPECT_EQ(hsnap::latestCheckpoint(dir.string()),
              (dir / "checkpoint-000000000005.hdtsnap").string());
    fs::remove_all(dir);
}

TEST(CheckpointManager, LatestIgnoresForeignFiles)
{
    const auto dir = scratchDir("hddtherm-snap-format-latest");
    std::ofstream(dir / "checkpoint-notanumber.hdtsnap") << "x";
    std::ofstream(dir / "other-000000000009.hdtsnap") << "x";
    std::ofstream(dir / "checkpoint-000000000002.hdtsnap.tmp") << "x";
    EXPECT_EQ(hsnap::latestCheckpoint(dir.string()), "");
    std::ofstream(dir / "checkpoint-000000000001.hdtsnap") << "x";
    EXPECT_EQ(hsnap::latestCheckpoint(dir.string()),
              (dir / "checkpoint-000000000001.hdtsnap").string());
    fs::remove_all(dir);
}

TEST(CheckpointManager, FlushRethrowsWriterThreadFailures)
{
    const auto dir = scratchDir("hddtherm-snap-format-fail");
    hsnap::CheckpointPolicy policy;
    policy.directory = dir.string();
    hsnap::CheckpointManager mgr(policy);
    // Yank the directory out from under the writer thread: the queued
    // write fails on the writer, and the error surfaces at flush().
    fs::remove_all(dir);
    std::ofstream(dir) << "not a directory";
    hsnap::CheckpointWriter out(1);
    out.addSection("s", {1, 2, 3});
    mgr.write(out, 1);
    EXPECT_THROW(mgr.flush(), hu::ModelError);
    // The error is sticky: later flushes (and writes) keep failing
    // rather than silently losing checkpoints — in delta mode the next
    // delta would otherwise pin a base that never became durable.
    EXPECT_THROW(mgr.flush(), hu::ModelError);
    hsnap::CheckpointWriter out2(1);
    out2.addSection("s", {1, 2, 3});
    EXPECT_THROW(mgr.write(out2, 2), hu::ModelError);
    fs::remove_all(dir);
}

TEST(CheckpointManager, ValidatesPolicy)
{
    hsnap::CheckpointPolicy no_dir;
    EXPECT_THROW(hsnap::CheckpointManager{no_dir}, hu::ModelError);
    hsnap::CheckpointPolicy bad_retain;
    bad_retain.directory =
        scratchDir("hddtherm-snap-format-policy").string();
    bad_retain.retain = 0;
    EXPECT_THROW(hsnap::CheckpointManager{bad_retain}, hu::ModelError);
    fs::remove_all(bad_retain.directory);
}

TEST(WriteCheckpointBytes, LeavesNoTempFileOnSuccess)
{
    const auto dir = scratchDir("hddtherm-snap-format-bytes");
    const auto path = (dir / "out.hdtsnap").string();
    hsnap::writeCheckpointBytes(path, {9, 8, 7});
    EXPECT_EQ(readFileBytes(path), (std::vector<std::uint8_t>{9, 8, 7}));
    EXPECT_FALSE(fs::exists(path + ".tmp"));
    fs::remove_all(dir);
}

TEST(EventTagMap, InsertFindEraseUnderChurn)
{
    he::EventTagMap map;
    EXPECT_EQ(map.find(1), nullptr);
    EXPECT_FALSE(map.erase(1));

    // Mimic the kernel's pattern: a bounded live set, endless churn.
    std::uint64_t next_seq = 0;
    std::vector<std::uint64_t> live;
    std::mt19937_64 rng(0x5eedull);
    for (int round = 0; round < 20000; ++round) {
        if (live.size() < 200 || (rng() & 1)) {
            const std::uint64_t seq = next_seq++;
            hddtherm::snap::EventTag tag;
            tag.kind = std::uint32_t(seq % 7 + 1);
            tag.w[0] = seq * 3;
            map.insert(seq, tag);
            live.push_back(seq);
        } else {
            const std::size_t pick = std::size_t(rng() % live.size());
            const std::uint64_t seq = live[pick];
            EXPECT_TRUE(map.erase(seq));
            EXPECT_EQ(map.find(seq), nullptr);
            live[pick] = live.back();
            live.pop_back();
        }
    }
    EXPECT_EQ(map.size(), live.size());
    for (const auto seq : live) {
        const auto* tag = map.find(seq);
        ASSERT_NE(tag, nullptr) << "seq " << seq;
        EXPECT_EQ(tag->kind, std::uint32_t(seq % 7 + 1));
        EXPECT_EQ(tag->w[0], seq * 3);
    }
    map.clear();
    EXPECT_EQ(map.size(), 0u);
    for (const auto seq : live)
        EXPECT_EQ(map.find(seq), nullptr);
}

TEST(EventTagMap, BackwardShiftKeepsClustersProbeable)
{
    // Dense monotone keys land in long probe clusters under any hash;
    // deleting from the middle must keep every survivor findable.
    he::EventTagMap map;
    for (std::uint64_t seq = 0; seq < 512; ++seq) {
        hddtherm::snap::EventTag tag;
        tag.aux = std::uint32_t(seq);
        map.insert(seq, tag);
    }
    for (std::uint64_t seq = 0; seq < 512; seq += 3)
        EXPECT_TRUE(map.erase(seq));
    for (std::uint64_t seq = 0; seq < 512; ++seq) {
        const auto* tag = map.find(seq);
        if (seq % 3 == 0) {
            EXPECT_EQ(tag, nullptr) << "seq " << seq;
        } else {
            ASSERT_NE(tag, nullptr) << "seq " << seq;
            EXPECT_EQ(tag->aux, std::uint32_t(seq));
        }
    }
}

TEST(RunManifest, CarriesResumeLineageIntoJson)
{
    const char* argv[] = {"bench_fake", "--requests", "10"};
    ho::BenchRun run("bench_fake", 3, const_cast<char**>(argv));
    run.setResume("/tmp/ck/checkpoint-000000000003.hdtsnap",
                  0x12345678abcdull, 42);
    const auto manifest = run.manifest();
    EXPECT_EQ(manifest.resumeFrom,
              "/tmp/ck/checkpoint-000000000003.hdtsnap");
    EXPECT_EQ(manifest.resumeConfigHash, 0x12345678abcdull);
    EXPECT_EQ(manifest.resumeEpoch, 42u);
    const auto json = ho::toJson(manifest);
    EXPECT_NE(json.find("\"resume_from\": "
                        "\"/tmp/ck/checkpoint-000000000003.hdtsnap\""),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"resume_config_hash\": \"12345678abcd\""),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"resume_epoch\": 42"), std::string::npos)
        << json;
}
