/**
 * @file
 * Tests of the experiment-description file format.
 */
#include <cstdio>

#include <gtest/gtest.h>

#include "core/config_io.h"
#include "util/error.h"

namespace hc = hddtherm::core;
namespace hs = hddtherm::sim;
namespace hu = hddtherm::util;

TEST(ConfigIo, ParsesFullSpec)
{
    const auto spec = hc::parseExperimentSpec(R"(
# comment line
[disk]
diameter_in = 2.1
platters = 2
kbpi = 450
ktpi = 35      # trailing comment
zones = 40
rpm = 12000
scheduler = sstf
cache_mb = 8
read_ahead = false

[array]
disks = 6
raid = raid5
stripe_sectors = 32
immediate_write_report = yes

[workload]
requests = 5000
arrival_rate = 123.5
read_fraction = 0.9
zipf_theta = 1.25
seed = 77
)");
    EXPECT_DOUBLE_EQ(spec.system.disk.geometry.diameterInches, 2.1);
    EXPECT_EQ(spec.system.disk.geometry.platters, 2);
    EXPECT_DOUBLE_EQ(spec.system.disk.tech.bpi, 450e3);
    EXPECT_DOUBLE_EQ(spec.system.disk.tech.tpi, 35e3);
    EXPECT_EQ(spec.system.disk.zones, 40);
    EXPECT_DOUBLE_EQ(spec.system.disk.rpm, 12000.0);
    EXPECT_EQ(spec.system.disk.scheduler, hs::SchedulerPolicy::Sstf);
    EXPECT_EQ(spec.system.disk.cacheBytes, 8u << 20);
    EXPECT_FALSE(spec.system.disk.readAheadToTrackEnd);
    EXPECT_EQ(spec.system.disks, 6);
    EXPECT_EQ(spec.system.raid, hs::RaidLevel::Raid5);
    EXPECT_EQ(spec.system.stripeSectors, 32);
    EXPECT_TRUE(spec.system.immediateWriteReport);
    ASSERT_TRUE(spec.hasWorkload);
    EXPECT_EQ(spec.workload.requests, 5000u);
    EXPECT_DOUBLE_EQ(spec.workload.arrivalRatePerSec, 123.5);
    EXPECT_DOUBLE_EQ(spec.workload.zipfTheta, 1.25);
    EXPECT_EQ(spec.workload.seed, 77u);
}

TEST(ConfigIo, MissingSectionsKeepDefaults)
{
    const auto spec = hc::parseExperimentSpec("[disk]\nrpm = 9000\n");
    EXPECT_DOUBLE_EQ(spec.system.disk.rpm, 9000.0);
    EXPECT_EQ(spec.system.disks, 1);
    EXPECT_FALSE(spec.hasWorkload);
    const hc::ExperimentSpec defaults;
    EXPECT_EQ(spec.system.disk.zones, defaults.system.disk.zones);
}

TEST(ConfigIo, RejectsUnknownSectionsAndKeys)
{
    EXPECT_THROW(hc::parseExperimentSpec("[nonsense]\nfoo = 1\n"),
                 hu::ModelError);
    EXPECT_THROW(hc::parseExperimentSpec("[disk]\nrpmz = 1\n"),
                 hu::ModelError);
}

TEST(ConfigIo, RejectsSyntaxErrors)
{
    EXPECT_THROW(hc::parseExperimentSpec("rpm = 1\n"), hu::ModelError);
    EXPECT_THROW(hc::parseExperimentSpec("[disk\nrpm = 1\n"),
                 hu::ModelError);
    EXPECT_THROW(hc::parseExperimentSpec("[disk]\nrpm 9000\n"),
                 hu::ModelError);
    EXPECT_THROW(hc::parseExperimentSpec("[disk]\nrpm = abc\n"),
                 hu::ModelError);
    EXPECT_THROW(hc::parseExperimentSpec("[disk]\nrpm = 1\nrpm = 2\n"),
                 hu::ModelError);
    EXPECT_THROW(
        hc::parseExperimentSpec("[disk]\nread_ahead = maybe\n"),
        hu::ModelError);
}

TEST(ConfigIo, RoundTripsThroughFormat)
{
    hc::ExperimentSpec spec;
    spec.system.disk.geometry.diameterInches = 1.6;
    spec.system.disk.rpm = 24534.0;
    spec.system.disk.scheduler = hs::SchedulerPolicy::Elevator;
    spec.system.disks = 3;
    spec.system.raid = hs::RaidLevel::Raid1;
    spec.hasWorkload = true;
    spec.workload.requests = 1234;
    spec.workload.burstiness = 0.4;

    const auto text = hc::formatExperimentSpec(spec);
    const auto parsed = hc::parseExperimentSpec(text);
    EXPECT_DOUBLE_EQ(parsed.system.disk.geometry.diameterInches, 1.6);
    EXPECT_DOUBLE_EQ(parsed.system.disk.rpm, 24534.0);
    EXPECT_EQ(parsed.system.disk.scheduler,
              hs::SchedulerPolicy::Elevator);
    EXPECT_EQ(parsed.system.disks, 3);
    EXPECT_EQ(parsed.system.raid, hs::RaidLevel::Raid1);
    ASSERT_TRUE(parsed.hasWorkload);
    EXPECT_EQ(parsed.workload.requests, 1234u);
    EXPECT_DOUBLE_EQ(parsed.workload.burstiness, 0.4);
}

TEST(ConfigIo, FileRoundTrip)
{
    hc::ExperimentSpec spec;
    spec.system.disk.rpm = 11111.0;
    const std::string path = "/tmp/hddtherm_spec_test.ini";
    ASSERT_TRUE(hc::saveExperimentSpec(spec, path));
    const auto loaded = hc::loadExperimentSpec(path);
    EXPECT_DOUBLE_EQ(loaded.system.disk.rpm, 11111.0);
    std::remove(path.c_str());
    EXPECT_THROW(hc::loadExperimentSpec("/nonexistent/spec.ini"),
                 hu::ModelError);
}

TEST(ConfigIo, ParsedSpecBuildsARunnableSystem)
{
    const auto spec = hc::parseExperimentSpec(R"(
[disk]
diameter_in = 2.6
kbpi = 400
ktpi = 30
rpm = 10000

[array]
disks = 2
raid = raid1
)");
    hs::StorageSystem array(spec.system);
    EXPECT_EQ(array.diskCount(), 2);
    EXPECT_GT(array.logicalSectors(), 0);
}

TEST(ConfigIo, RejectsNonFiniteNumbers)
{
    // std::stod accepts "nan" and "inf"; the parser must not let them
    // propagate silently into the models.
    EXPECT_THROW(hc::parseExperimentSpec("[disk]\nrpm = nan\n"),
                 hu::ModelError);
    EXPECT_THROW(hc::parseExperimentSpec("[disk]\nrpm = inf\n"),
                 hu::ModelError);
    EXPECT_THROW(hc::parseExperimentSpec("[disk]\nrpm = -inf\n"),
                 hu::ModelError);
    EXPECT_THROW(
        hc::parseExperimentSpec("[workload]\narrival_rate = NaN\n"),
        hu::ModelError);
}

TEST(ConfigIo, FaultScheduleRejectsMalformedInput)
{
    // Key before any section header.
    EXPECT_THROW(hc::parseFaultSchedule("at = 1\n"), hu::ModelError);
    // Unknown section family.
    EXPECT_THROW(hc::parseFaultSchedule("[faults.0]\nat = 1\n"),
                 hu::ModelError);
    // Missing onset time.
    EXPECT_THROW(
        hc::parseFaultSchedule("[fault.0]\nkind = ambient_step\n"
                               "delta_c = 4\n"),
        hu::ModelError);
    // Missing kind.
    EXPECT_THROW(hc::parseFaultSchedule("[fault.0]\nat = 1\n"),
                 hu::ModelError);
    // Unknown kind.
    EXPECT_THROW(
        hc::parseFaultSchedule("[fault.0]\nat = 1\nkind = gremlins\n"),
        hu::ModelError);
    // Kind present but its magnitude key missing.
    EXPECT_THROW(
        hc::parseFaultSchedule("[fault.0]\nat = 1\n"
                               "kind = ambient_step\n"),
        hu::ModelError);
    // Non-numeric and non-finite fields.
    EXPECT_THROW(
        hc::parseFaultSchedule("[fault.0]\nat = soon\n"
                               "kind = sensor_dropout\n"),
        hu::ModelError);
    EXPECT_THROW(
        hc::parseFaultSchedule("[fault.0]\nat = 1\n"
                               "kind = ambient_step\ndelta_c = nan\n"),
        hu::ModelError);
    // Duplicate key inside a fault section.
    EXPECT_THROW(
        hc::parseFaultSchedule("[fault.0]\nat = 1\nat = 2\n"
                               "kind = sensor_dropout\n"),
        hu::ModelError);
}

TEST(ConfigIo, FaultScheduleRejectsOverflowingSectionIndex)
{
    // A section index beyond long range must surface as a ModelError,
    // not an uncaught std::out_of_range.
    EXPECT_THROW(
        hc::parseFaultSchedule("[fault.99999999999999999999]\n"
                               "at = 1\nkind = sensor_dropout\n"),
        hu::ModelError);
    EXPECT_THROW(hc::parseFaultSchedule("[fault.]\nat = 1\n"),
                 hu::ModelError);
    EXPECT_THROW(hc::parseFaultSchedule("[fault.two]\nat = 1\n"),
                 hu::ModelError);
}

TEST(ConfigIo, FaultScheduleRoundTripsThroughFormat)
{
    const auto schedule = hc::parseFaultSchedule(R"(
[schedule]
noise_seed = 77

[fault.1]
at = 2.5
kind = ambient_spike
delta_c = 8
duration = 3

[fault.0]
at = 1.0
kind = sensor_noise
sigma_c = 0.4
target = 2
)");
    EXPECT_EQ(schedule.noiseSeed(), 77u);
    const auto& events = schedule.events();
    ASSERT_EQ(events.size(), 2u);
    // Events replay in fault.N order, not file order.
    EXPECT_EQ(events[0].timeSec, 1.0);
    EXPECT_EQ(events[1].timeSec, 2.5);

    const auto text = hc::formatFaultSchedule(schedule);
    const auto reparsed = hc::parseFaultSchedule(text);
    ASSERT_EQ(reparsed.events().size(), 2u);
    EXPECT_EQ(reparsed.noiseSeed(), 77u);
    EXPECT_EQ(reparsed.events()[1].value, 8.0);
}
