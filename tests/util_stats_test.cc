/**
 * @file
 * Unit tests for the statistics accumulators.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/stats.h"

namespace hu = hddtherm::util;

TEST(OnlineStats, BasicMoments)
{
    hu::OnlineStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, EmptyIsSafe)
{
    hu::OnlineStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, MergeMatchesSequential)
{
    hu::OnlineStats a, b, all;
    for (int i = 0; i < 100; ++i) {
        const double x = std::sin(i) * 10.0 + i;
        all.add(x);
        (i % 2 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty)
{
    hu::OnlineStats a, empty;
    a.add(1.0);
    a.add(3.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);

    hu::OnlineStats c;
    c.merge(a);
    EXPECT_EQ(c.count(), 2u);
    EXPECT_DOUBLE_EQ(c.mean(), 2.0);
}

TEST(Histogram, BinsAndCdf)
{
    hu::Histogram h({10.0, 20.0, 30.0});
    for (double x : {1.0, 5.0, 10.0, 15.0, 25.0, 40.0})
        h.add(x);
    EXPECT_EQ(h.count(), 6u);
    // x <= 10 goes into bin 0 (lower_bound: 10.0 maps to edge 10).
    EXPECT_EQ(h.binCount(0), 3u);
    EXPECT_EQ(h.binCount(1), 1u);
    EXPECT_EQ(h.binCount(2), 1u);
    EXPECT_EQ(h.binCount(3), 1u); // overflow
    const auto cdf = h.cdf();
    ASSERT_EQ(cdf.size(), 3u);
    EXPECT_DOUBLE_EQ(cdf[0], 0.5);
    EXPECT_DOUBLE_EQ(cdf[1], 4.0 / 6.0);
    EXPECT_DOUBLE_EQ(cdf[2], 5.0 / 6.0);
    EXPECT_DOUBLE_EQ(h.overflowFraction(), 1.0 / 6.0);
}

TEST(Histogram, CdfIsMonotone)
{
    hu::Histogram h = hu::Histogram::paperResponseTimeBins();
    for (int i = 0; i < 1000; ++i)
        h.add(double(i % 250));
    const auto cdf = h.cdf();
    for (std::size_t i = 1; i < cdf.size(); ++i)
        EXPECT_GE(cdf[i], cdf[i - 1]);
    EXPECT_LE(cdf.back(), 1.0);
}

TEST(Histogram, PaperBins)
{
    hu::Histogram h = hu::Histogram::paperResponseTimeBins();
    EXPECT_EQ(h.bins(), 9u);
    EXPECT_DOUBLE_EQ(h.edge(0), 5.0);
    EXPECT_DOUBLE_EQ(h.edge(8), 200.0);
}

TEST(Histogram, QuantileInterpolates)
{
    hu::Histogram h({1.0, 2.0, 3.0, 4.0});
    for (int i = 0; i < 100; ++i)
        h.add(0.5 + double(i % 4)); // 25 samples per bin
    EXPECT_NEAR(h.quantile(0.5), 2.0, 1e-9);
    EXPECT_NEAR(h.quantile(0.25), 1.0, 1e-9);
    EXPECT_LE(h.quantile(1.0), 4.0);
}

TEST(Histogram, RejectsBadEdges)
{
    EXPECT_THROW(hu::Histogram({}), hu::ModelError);
    EXPECT_THROW(hu::Histogram({2.0, 1.0}), hu::ModelError);
}

TEST(Histogram, QuantileOfEmptyHistogramIsZero)
{
    const hu::Histogram h({1.0, 2.0});
    EXPECT_EQ(h.quantile(0.0), 0.0);
    EXPECT_EQ(h.quantile(0.5), 0.0);
    EXPECT_EQ(h.quantile(1.0), 0.0);
}

TEST(Histogram, QuantileEndpointsAreClamped)
{
    hu::Histogram h({1.0, 2.0, 3.0});
    for (int i = 0; i < 30; ++i)
        h.add(0.5 + double(i % 3));
    // p = 0 asks for "at least 0 samples": the very bottom of the range.
    EXPECT_EQ(h.quantile(0.0), 0.0);
    // p = 1 never exceeds the last finite edge.
    EXPECT_LE(h.quantile(1.0), 3.0);
    EXPECT_GE(h.quantile(1.0), h.quantile(0.5));
    // Out-of-range p is a caller error, not a clamp.
    EXPECT_THROW(h.quantile(-0.1), hu::ModelError);
    EXPECT_THROW(h.quantile(1.1), hu::ModelError);
}

TEST(Histogram, QuantileWithAllMassInOverflowReportsLastEdge)
{
    hu::Histogram h({1.0, 2.0});
    for (int i = 0; i < 10; ++i)
        h.add(100.0); // everything beyond the last edge
    // The overflow bin has no upper bound; the last finite edge is the
    // most honest answer the histogram can give.
    EXPECT_EQ(h.quantile(0.5), 2.0);
    EXPECT_EQ(h.quantile(1.0), 2.0);
    EXPECT_DOUBLE_EQ(h.overflowFraction(), 1.0);
}

TEST(Histogram, SelfMergeDoublesEveryBin)
{
    hu::Histogram h({1.0, 2.0});
    h.add(0.5);
    h.add(1.5);
    h.add(9.0);
    h.merge(h);
    EXPECT_EQ(h.count(), 6u);
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(1), 2u);
    EXPECT_EQ(h.binCount(2), 2u);
}

TEST(OnlineStats, SelfMergePreservesMoments)
{
    hu::OnlineStats s;
    s.add(1.0);
    s.add(3.0);
    s.add(5.0);
    const double mean = s.mean();
    const double var = s.variance();
    s.merge(s);
    EXPECT_EQ(s.count(), 6u);
    EXPECT_DOUBLE_EQ(s.mean(), mean);
    EXPECT_NEAR(s.variance(), var, 1e-12);
    EXPECT_EQ(s.min(), 1.0);
    EXPECT_EQ(s.max(), 5.0);
}
