/**
 * @file
 * Tests of the DTM mechanisms: thermal slack (paper §5.2) and dynamic
 * throttling (paper §5.3).
 */
#include <gtest/gtest.h>

#include "dtm/slack.h"
#include "dtm/throttle.h"
#include "util/error.h"

namespace hd = hddtherm::dtm;
namespace hr = hddtherm::roadmap;
namespace ht = hddtherm::thermal;
namespace hu = hddtherm::util;

namespace {

const hr::RoadmapEngine&
engine()
{
    static const hr::RoadmapEngine instance;
    return instance;
}

} // namespace

TEST(Slack, VcmOffUnlocksHigherRpm)
{
    for (const double d : {2.6, 2.1, 1.6}) {
        const auto s = hd::analyzeSlack(d, 1, engine());
        EXPECT_GT(s.slackRpm, s.envelopeRpm) << d;
    }
}

TEST(Slack, MatchesPaperAnchorsFor26Inch)
{
    const auto s = hd::analyzeSlack(2.6, 1, engine());
    // Paper: 15,020 -> 26,750 RPM.
    EXPECT_NEAR(s.envelopeRpm, 15020.0, 100.0);
    EXPECT_NEAR(s.slackRpm, 26750.0, 0.10 * 26750.0);
    EXPECT_DOUBLE_EQ(s.vcmPowerW, 3.9);
}

TEST(Slack, ShrinksWithPlatterSize)
{
    const auto s26 = hd::analyzeSlack(2.6, 1, engine());
    const auto s21 = hd::analyzeSlack(2.1, 1, engine());
    const auto s16 = hd::analyzeSlack(1.6, 1, engine());
    // Paper §5.2: the available slack decreases as platters shrink
    // because VCM power falls.
    EXPECT_GT(s26.rpmGain(), s21.rpmGain());
    EXPECT_GT(s21.rpmGain(), s16.rpmGain());
}

TEST(Slack, RoadmapSlackBeatsEnvelopeEverywhere)
{
    const auto series = hd::slackRoadmap(2.6, 1, engine());
    ASSERT_EQ(series.size(), 11u);
    for (const auto& p : series) {
        EXPECT_GT(p.slackIdr, p.envelopeIdr) << p.year;
    }
}

TEST(Slack, Slack26BeatsEnvelope21)
{
    // Paper §5.2: the 2.6" slack design surpasses the non-slack 2.1"
    // configuration (better speed AND more capacity).
    const auto s26 = hd::slackRoadmap(2.6, 1, engine());
    const auto s21 = hd::slackRoadmap(2.1, 1, engine());
    for (std::size_t i = 0; i < s26.size(); ++i)
        EXPECT_GT(s26[i].slackIdr, s21[i].envelopeIdr) << s26[i].year;
}

TEST(Slack, ExtendsTargetHorizonFor26Inch)
{
    // Paper: the slack lets the 2.6" size exceed the 40% CGR curve until
    // the 2005-2006 timeframe.
    const auto series = hd::slackRoadmap(2.6, 1, engine());
    int last_on_target = 0;
    for (const auto& p : series) {
        if (p.slackIdr >= p.targetIdr)
            last_on_target = p.year;
    }
    EXPECT_GE(last_on_target, 2004);
    EXPECT_LE(last_on_target, 2006);
}

namespace {

hd::ThrottleConfig
vcmOnlyConfig()
{
    hd::ThrottleConfig cfg;
    cfg.fullRpm = 24534.0;
    return cfg;
}

hd::ThrottleConfig
vcmRpmConfig()
{
    hd::ThrottleConfig cfg;
    cfg.fullRpm = 37001.0;
    cfg.lowRpm = 22001.0;
    return cfg;
}

} // namespace

TEST(Throttle, ScenarioPremisesHold)
{
    const hd::ThrottleExperiment a(vcmOnlyConfig());
    const auto ra = a.run(2.0);
    // Paper: 48.26 C hot / 44.07 C with the VCM off.
    EXPECT_GT(ra.hotSteadyC, ht::kThermalEnvelopeC);
    EXPECT_LT(ra.coolSteadyC, ht::kThermalEnvelopeC);
    EXPECT_NEAR(ra.hotSteadyC, 48.26, 1.0);
    EXPECT_NEAR(ra.coolSteadyC, 44.07, 1.0);
}

TEST(Throttle, VcmAloneInsufficientAt37K)
{
    // Paper: at 37,001 RPM even the VCM-off temperature (53.04 C) exceeds
    // the envelope, so a lower spindle speed is required.
    hd::ThrottleConfig cfg;
    cfg.fullRpm = 37001.0;
    EXPECT_THROW({ hd::ThrottleExperiment e(cfg); }, hu::ModelError);
    // With the second speed the experiment is admissible.
    EXPECT_NO_THROW({ hd::ThrottleExperiment e(vcmRpmConfig()); });
}

TEST(Throttle, CoolingDropsBelowEnvelope)
{
    const hd::ThrottleExperiment e(vcmOnlyConfig());
    const auto r = e.run(4.0);
    EXPECT_LT(r.minTempC, ht::kThermalEnvelopeC);
    EXPECT_GT(r.theatSec, 0.0);
}

TEST(Throttle, RatioDecreasesWithCoolingTime)
{
    const hd::ThrottleExperiment e(vcmOnlyConfig());
    const auto sweep = e.sweep({0.5, 2.0, 8.0});
    EXPECT_GE(sweep[0].ratio(), sweep[1].ratio());
    EXPECT_GE(sweep[1].ratio(), sweep[2].ratio());
}

TEST(Throttle, RatiosInPaperBand)
{
    // Paper Figure 7 spans roughly 0.4-1.8 (a) and 0.4-2.0 (b); hold the
    // reproduction to the same order of magnitude.
    const hd::ThrottleExperiment a(vcmOnlyConfig());
    const hd::ThrottleExperiment b(vcmRpmConfig());
    for (const double tcool : {0.5, 2.0, 8.0}) {
        EXPECT_GT(a.run(tcool).ratio(), 0.05) << tcool;
        EXPECT_LT(a.run(tcool).ratio(), 2.5) << tcool;
        EXPECT_LT(b.run(tcool).ratio(), 2.5) << tcool;
    }
}

TEST(Throttle, SubSecondGranularityGivesBestRatio)
{
    // Paper conclusion: utilization above 50% (ratio > 1) needs
    // sub-second throttling; equivalently the ratio at 0.25 s beats 8 s.
    const hd::ThrottleExperiment b(vcmRpmConfig());
    EXPECT_GT(b.run(0.25).ratio(), b.run(8.0).ratio());
    EXPECT_GT(b.run(0.25).ratio(), 1.0);
}

TEST(Throttle, UtilizationMatchesRatio)
{
    const hd::ThrottleExperiment e(vcmOnlyConfig());
    const auto r = e.run(1.0);
    EXPECT_NEAR(r.utilization(), r.ratio() / (1.0 + r.ratio()), 1e-9);
}

TEST(Throttle, TraceAlternatesPhasesAroundEnvelope)
{
    const hd::ThrottleExperiment e(vcmOnlyConfig());
    const auto trace = e.temperatureTrace(2.0, 3, 0.5);
    ASSERT_GT(trace.size(), 4u);
    bool saw_cool = false, saw_heat = false;
    for (const auto& p : trace) {
        saw_cool |= p.cooling;
        saw_heat |= !p.cooling;
        // The trace hovers near the envelope.
        EXPECT_NEAR(p.tempC, ht::kThermalEnvelopeC, 4.0);
    }
    EXPECT_TRUE(saw_cool);
    EXPECT_TRUE(saw_heat);
}

TEST(Throttle, RejectsInvalidConfigs)
{
    auto cfg = vcmOnlyConfig();
    cfg.lowRpm = 30000.0; // above full speed
    EXPECT_THROW({ hd::ThrottleExperiment e(cfg); }, hu::ModelError);

    cfg = vcmOnlyConfig();
    cfg.fullRpm = 12000.0; // already inside the envelope
    EXPECT_THROW({ hd::ThrottleExperiment e(cfg); }, hu::ModelError);

    const hd::ThrottleExperiment e(vcmOnlyConfig());
    EXPECT_THROW(e.run(0.0), hu::ModelError);
    EXPECT_THROW(e.run(-1.0), hu::ModelError);
}

TEST(Throttle, PeriodicRegimeIsStable)
{
    // Measuring after warm-up cycles still yields finite, positive heat
    // times (the periodic throttling regime exists).
    auto cfg = vcmOnlyConfig();
    cfg.warmupCycles = 5;
    const hd::ThrottleExperiment e(cfg);
    const auto r = e.run(2.0);
    EXPECT_GT(r.theatSec, 0.0);
    EXPECT_LT(r.theatSec, cfg.maxHeatSec);
}
