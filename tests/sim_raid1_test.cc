/**
 * @file
 * Tests of RAID-1 mirroring and read steering.
 */
#include <gtest/gtest.h>

#include "sim/storage_system.h"
#include "util/error.h"

namespace hs = hddtherm::sim;
namespace hu = hddtherm::util;

namespace {

hs::SystemConfig
mirrorConfig(int disks = 2)
{
    hs::SystemConfig cfg;
    cfg.disk.geometry.diameterInches = 2.6;
    cfg.disk.tech = {400e3, 30e3};
    cfg.disk.rpm = 10000.0;
    cfg.disks = disks;
    cfg.raid = hs::RaidLevel::Raid1;
    return cfg;
}

hs::IoRequest
make(std::uint64_t id, double arrival, std::int64_t lba, int sectors,
     hs::IoType type = hs::IoType::Read)
{
    hs::IoRequest r;
    r.id = id;
    r.arrival = arrival;
    r.lba = lba;
    r.sectors = sectors;
    r.type = type;
    return r;
}

} // namespace

TEST(Raid1, CapacityIsOneMember)
{
    hs::StorageSystem sys(mirrorConfig());
    EXPECT_EQ(sys.logicalSectors(), sys.disk(0).totalSectors());
    EXPECT_EQ(hs::arrayLogicalSectors(hs::RaidLevel::Raid1, 2, 500), 500);
}

TEST(Raid1, WritesGoToAllMirrors)
{
    hs::StorageSystem sys(mirrorConfig(3));
    const auto metrics =
        sys.run({make(1, 0.0, 0, 8, hs::IoType::Write)});
    EXPECT_EQ(metrics.count(), 1u);
    for (int d = 0; d < 3; ++d)
        EXPECT_EQ(sys.disk(d).activity().completions, 1u) << d;
}

TEST(Raid1, ReadsGoToOneMirror)
{
    hs::StorageSystem sys(mirrorConfig());
    const auto metrics = sys.run({make(1, 0.0, 0, 8)});
    EXPECT_EQ(metrics.count(), 1u);
    EXPECT_EQ(sys.disk(0).activity().completions +
                  sys.disk(1).activity().completions,
              1u);
}

TEST(Raid1, LeastLoadedSteeringBalancesReads)
{
    hs::StorageSystem sys(mirrorConfig());
    std::vector<hs::IoRequest> load;
    for (std::uint64_t i = 0; i < 100; ++i)
        load.push_back(
            make(i + 1, double(i) * 1e-4, std::int64_t(i) * 1000, 8));
    sys.run(load);
    const auto a = sys.disk(0).activity().completions;
    const auto b = sys.disk(1).activity().completions;
    EXPECT_EQ(a + b, 100u);
    EXPECT_GT(a, 25u);
    EXPECT_GT(b, 25u);
}

TEST(Raid1, PreferredMirrorReceivesAllReads)
{
    hs::StorageSystem sys(mirrorConfig());
    sys.setPreferredMirror(1);
    std::vector<hs::IoRequest> load;
    for (std::uint64_t i = 0; i < 50; ++i)
        load.push_back(
            make(i + 1, double(i) * 1e-4, std::int64_t(i) * 1000, 8));
    sys.run(load);
    EXPECT_EQ(sys.disk(0).activity().completions, 0u);
    EXPECT_EQ(sys.disk(1).activity().completions, 50u);
}

TEST(Raid1, PreferenceCanBeCleared)
{
    hs::StorageSystem sys(mirrorConfig());
    sys.setPreferredMirror(0);
    sys.setPreferredMirror(-1);
    std::vector<hs::IoRequest> load;
    for (std::uint64_t i = 0; i < 60; ++i)
        load.push_back(
            make(i + 1, double(i) * 1e-4, std::int64_t(i) * 1000, 8));
    sys.run(load);
    EXPECT_GT(sys.disk(0).activity().completions, 0u);
    EXPECT_GT(sys.disk(1).activity().completions, 0u);
}

TEST(Raid1, MirroredWriteSlowerThanSingleRead)
{
    hs::StorageSystem sys(mirrorConfig());
    const auto write_metrics =
        sys.run({make(1, 0.0, 50000, 8, hs::IoType::Write)});
    hs::StorageSystem sys2(mirrorConfig());
    const auto read_metrics = sys2.run({make(1, 0.0, 50000, 8)});
    // The write waits for the slower of two independent positionings.
    EXPECT_GE(write_metrics.meanMs(), read_metrics.meanMs() - 1e-9);
}

TEST(Raid1, RejectsBadConfigs)
{
    EXPECT_THROW({ hs::StorageSystem sys(mirrorConfig(1)); },
                 hu::ModelError);
    hs::StorageSystem sys(mirrorConfig());
    EXPECT_THROW(sys.setPreferredMirror(2), hu::ModelError);
    EXPECT_THROW(sys.setPreferredMirror(-2), hu::ModelError);
}

TEST(Raid1, NameIsStable)
{
    EXPECT_STREQ(hs::raidLevelName(hs::RaidLevel::Raid1), "RAID-1");
}
