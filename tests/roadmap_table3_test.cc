/**
 * @file
 * Golden-grid validation: every cell of the paper's Table 3 (required RPM
 * and steady temperature for 3 platter sizes x 11 years) against the
 * reproduction.  RPM cells must agree to 2% (they follow from the shared
 * scaling laws and the capacity model); temperature cells to 25% of the
 * rise above ambient plus 0.6 C absolute slack (the thermal network's
 * high-RPM film behaviour differs slightly from the original
 * finite-difference code; see EXPERIMENTS.md).
 */
#include <gtest/gtest.h>

#include "roadmap/roadmap.h"

namespace hr = hddtherm::roadmap;

namespace {

struct Table3Cell
{
    int year;
    double diameter;
    double paperRpm;
    double paperTempC;
};

// Transcribed from the paper's Table 3.
const Table3Cell kTable3[] = {
    {2002, 2.6, 15098, 45.24},  {2002, 2.1, 18692, 43.56},
    {2002, 1.6, 24533, 41.64},  {2003, 2.6, 16263, 45.47},
    {2003, 2.1, 20135, 43.69},  {2003, 1.6, 26420, 41.74},
    {2004, 2.6, 19972, 46.46},  {2004, 2.1, 24728, 44.37},
    {2004, 1.6, 32455, 42.15},  {2005, 2.6, 24534, 48.26},
    {2005, 2.1, 30367, 45.61},  {2005, 1.6, 39857, 42.93},
    {2006, 2.6, 30130, 51.48},  {2006, 2.1, 37303, 47.85},
    {2006, 1.6, 48947, 44.29},  {2007, 2.6, 37001, 57.18},
    {2007, 2.1, 45811, 51.81},  {2007, 1.6, 60127, 46.73},
    {2008, 2.6, 45452, 67.27},  {2008, 2.1, 56259, 58.81},
    {2008, 1.6, 73840, 51.04},  {2009, 2.6, 55819, 85.04},
    {2009, 2.1, 69109, 71.17},  {2009, 1.6, 90680, 58.63},
    {2010, 2.6, 95094, 223.01}, {2010, 2.1, 117735, 167.01},
    {2010, 1.6, 154527, 117.61}, {2011, 2.6, 116826, 360.40},
    {2011, 2.1, 144586, 262.19}, {2011, 1.6, 189769, 176.20},
    {2012, 2.6, 143470, 602.98}, {2012, 2.1, 177629, 430.93},
    {2012, 1.6, 233050, 279.75},
};

const hr::RoadmapEngine&
engine()
{
    static const hr::RoadmapEngine instance;
    return instance;
}

} // namespace

class Table3Grid : public ::testing::TestWithParam<Table3Cell>
{};

TEST_P(Table3Grid, RequiredRpmWithinTwoPercent)
{
    const auto& cell = GetParam();
    const auto p = engine().evaluate(cell.year, cell.diameter, 1);
    EXPECT_NEAR(p.requiredRpm, cell.paperRpm, 0.02 * cell.paperRpm)
        << cell.year << " " << cell.diameter << "\"";
}

TEST_P(Table3Grid, TemperatureRiseWithinBand)
{
    const auto& cell = GetParam();
    const auto p = engine().evaluate(cell.year, cell.diameter, 1);
    const double paper_rise = cell.paperTempC - 28.0;
    const double our_rise = p.requiredRpmTempC - 28.0;
    EXPECT_NEAR(our_rise, paper_rise, 0.25 * paper_rise + 0.6)
        << cell.year << " " << cell.diameter << "\"";
}

TEST_P(Table3Grid, EnvelopeVerdictMatchesPaper)
{
    // Whether the required RPM violates the 45.22 C envelope must agree
    // with the paper cell (allowing a band around the envelope itself for
    // the borderline 2002/2003 entries).
    const auto& cell = GetParam();
    const auto p = engine().evaluate(cell.year, cell.diameter, 1);
    if (cell.paperTempC > 45.22 + 0.6) {
        EXPECT_GT(p.requiredRpmTempC, 45.22) << cell.year;
    }
    if (cell.paperTempC < 45.22 - 0.6) {
        EXPECT_LT(p.requiredRpmTempC, 45.22) << cell.year;
    }
}

INSTANTIATE_TEST_SUITE_P(
    PaperCells, Table3Grid, ::testing::ValuesIn(kTable3),
    [](const ::testing::TestParamInfo<Table3Cell>& param_info) {
        return "y" + std::to_string(param_info.param.year) + "_d" +
               std::to_string(int(param_info.param.diameter * 10));
    });
