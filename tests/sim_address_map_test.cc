/**
 * @file
 * Unit and property tests of LBA <-> physical translation.
 */
#include <gtest/gtest.h>

#include "hdd/drive_catalog.h"
#include "sim/address_map.h"
#include "util/error.h"

namespace hh = hddtherm::hdd;
namespace hs = hddtherm::sim;
namespace hu = hddtherm::util;

namespace {

hs::DiskAddressMap
cheetahMap()
{
    const auto drive = hh::findDrive("Seagate Cheetah 15K.3");
    return hs::DiskAddressMap(drive->layout());
}

} // namespace

TEST(AddressMap, TotalMatchesLayout)
{
    const auto map = cheetahMap();
    EXPECT_EQ(map.totalSectors(), map.layout().totalUserSectors());
    EXPECT_GT(map.totalSectors(), 0);
}

TEST(AddressMap, FirstAndLastSectors)
{
    const auto map = cheetahMap();
    const auto first = map.toPhysical(0);
    EXPECT_EQ(first.cylinder, 0);
    EXPECT_EQ(first.surface, 0);
    EXPECT_EQ(first.sector, 0);
    EXPECT_EQ(first.zone, 0);

    const auto last = map.toPhysical(map.totalSectors() - 1);
    EXPECT_EQ(last.cylinder, map.layout().cylinders() - 1);
    EXPECT_EQ(last.surface, map.layout().surfaces() - 1);
    EXPECT_EQ(last.zone, map.layout().zones() - 1);
}

TEST(AddressMap, RoundTripSampledLbas)
{
    const auto map = cheetahMap();
    const std::int64_t total = map.totalSectors();
    for (std::int64_t lba = 0; lba < total; lba += total / 9973 + 1) {
        const auto phys = map.toPhysical(lba);
        EXPECT_EQ(map.toLba(phys), lba) << "lba " << lba;
    }
}

TEST(AddressMap, ConsecutiveLbasShareTrackUntilBoundary)
{
    const auto map = cheetahMap();
    const int per_track = map.sectorsPerTrack(0);
    for (int i = 0; i < per_track; ++i) {
        const auto phys = map.toPhysical(i);
        EXPECT_EQ(phys.cylinder, 0);
        EXPECT_EQ(phys.surface, 0);
        EXPECT_EQ(phys.sector, i);
    }
    const auto next = map.toPhysical(per_track);
    EXPECT_EQ(next.cylinder, 0);
    EXPECT_EQ(next.surface, 1);
    EXPECT_EQ(next.sector, 0);
}

TEST(AddressMap, CylinderAdvancesAfterAllSurfaces)
{
    const auto map = cheetahMap();
    const auto per_cyl = map.sectorsPerCylinder(0);
    const auto phys = map.toPhysical(per_cyl);
    EXPECT_EQ(phys.cylinder, 1);
    EXPECT_EQ(phys.surface, 0);
    EXPECT_EQ(phys.sector, 0);
}

TEST(AddressMap, RejectsOutOfRange)
{
    const auto map = cheetahMap();
    EXPECT_THROW(map.toPhysical(-1), hu::ModelError);
    EXPECT_THROW(map.toPhysical(map.totalSectors()), hu::ModelError);
}

TEST(AddressMap, ZoneBoundariesAreExact)
{
    const auto map = cheetahMap();
    const auto& layout = map.layout();
    // The first LBA of zone 1 lands on zone 1's first cylinder.
    std::int64_t zone0_sectors = std::int64_t(layout.zone(0).cylinders) *
                                 layout.surfaces() *
                                 layout.zone(0).userSectorsPerTrack;
    const auto phys = map.toPhysical(zone0_sectors);
    EXPECT_EQ(phys.zone, 1);
    EXPECT_EQ(phys.cylinder, layout.zone(1).firstCylinder);
    EXPECT_EQ(phys.surface, 0);
    EXPECT_EQ(phys.sector, 0);
}

/// Property: round-trip holds across very different drive shapes.
class MapDriveSweep : public ::testing::TestWithParam<const char*>
{};

TEST_P(MapDriveSweep, RoundTrip)
{
    const auto drive = hh::findDrive(GetParam());
    ASSERT_TRUE(drive.has_value());
    const hs::DiskAddressMap map(drive->layout());
    const std::int64_t total = map.totalSectors();
    for (std::int64_t lba = 0; lba < total; lba += total / 4099 + 1) {
        EXPECT_EQ(map.toLba(map.toPhysical(lba)), lba);
    }
}

INSTANTIATE_TEST_SUITE_P(Drives, MapDriveSweep,
                         ::testing::Values("Quantum Atlas 10K",
                                           "Seagate Barracuda 180",
                                           "Seagate Cheetah X15",
                                           "Fujitsu AL-7LE"));
