/**
 * @file
 * Integration tests of the storage system (striping, RMW, metrics).
 */
#include <gtest/gtest.h>

#include "sim/storage_system.h"
#include "util/error.h"

namespace hs = hddtherm::sim;
namespace hu = hddtherm::util;

namespace {

hs::SystemConfig
arrayConfig(int disks, hs::RaidLevel raid)
{
    hs::SystemConfig cfg;
    cfg.disk.geometry.diameterInches = 2.6;
    cfg.disk.tech = {400e3, 30e3};
    cfg.disk.rpm = 10000.0;
    cfg.disks = disks;
    cfg.raid = raid;
    return cfg;
}

hs::IoRequest
make(std::uint64_t id, double arrival, std::int64_t lba, int sectors,
     hs::IoType type = hs::IoType::Read, int device = 0)
{
    hs::IoRequest r;
    r.id = id;
    r.arrival = arrival;
    r.device = device;
    r.lba = lba;
    r.sectors = sectors;
    r.type = type;
    return r;
}

} // namespace

TEST(StorageSystem, JbodRoutesByDevice)
{
    hs::StorageSystem sys(arrayConfig(3, hs::RaidLevel::None));
    std::vector<hs::IoRequest> load;
    load.push_back(make(1, 0.0, 0, 8, hs::IoType::Read, 0));
    load.push_back(make(2, 0.0, 0, 8, hs::IoType::Read, 2));
    const auto metrics = sys.run(load);
    EXPECT_EQ(metrics.count(), 2u);
    EXPECT_EQ(sys.disk(0).activity().completions, 1u);
    EXPECT_EQ(sys.disk(1).activity().completions, 0u);
    EXPECT_EQ(sys.disk(2).activity().completions, 1u);
}

TEST(StorageSystem, JbodLogicalCapacityIsPerDevice)
{
    hs::StorageSystem sys(arrayConfig(3, hs::RaidLevel::None));
    EXPECT_EQ(sys.logicalSectors(), sys.disk(0).totalSectors());
}

TEST(StorageSystem, Raid0SpreadsAcrossDisks)
{
    hs::StorageSystem sys(arrayConfig(4, hs::RaidLevel::Raid0));
    EXPECT_EQ(sys.logicalSectors(), 4 * sys.disk(0).totalSectors());
    // A 64-sector read at stripe 16 touches all four disks.
    const auto metrics = sys.run({make(1, 0.0, 0, 64)});
    EXPECT_EQ(metrics.count(), 1u);
    for (int d = 0; d < 4; ++d)
        EXPECT_EQ(sys.disk(d).activity().completions, 1u) << d;
}

TEST(StorageSystem, Raid5ReadTouchesOnlyDataDisks)
{
    hs::StorageSystem sys(arrayConfig(4, hs::RaidLevel::Raid5));
    const auto metrics = sys.run({make(1, 0.0, 0, 16)});
    EXPECT_EQ(metrics.count(), 1u);
    std::uint64_t total = 0;
    for (int d = 0; d < 4; ++d)
        total += sys.disk(d).activity().completions;
    EXPECT_EQ(total, 1u); // one data unit, no parity traffic
}

TEST(StorageSystem, Raid5SmallWriteDoesReadModifyWrite)
{
    hs::StorageSystem sys(arrayConfig(4, hs::RaidLevel::Raid5));
    const auto metrics =
        sys.run({make(1, 0.0, 0, 16, hs::IoType::Write)});
    EXPECT_EQ(metrics.count(), 1u);
    // One data unit write: read old data + old parity, write both = 4 ops.
    std::uint64_t total = 0;
    for (int d = 0; d < 4; ++d)
        total += sys.disk(d).activity().completions;
    EXPECT_EQ(total, 4u);
}

TEST(StorageSystem, Raid5WriteSpanningRowsAmplifies)
{
    hs::StorageSystem sys(arrayConfig(4, hs::RaidLevel::Raid5));
    // 3 data units per row; 4 units span two rows: 4 data + 2 parity,
    // each read+written = 12 ops.
    const auto metrics =
        sys.run({make(1, 0.0, 0, 64, hs::IoType::Write)});
    EXPECT_EQ(metrics.count(), 1u);
    std::uint64_t total = 0;
    for (int d = 0; d < 4; ++d)
        total += sys.disk(d).activity().completions;
    EXPECT_EQ(total, 12u);
}

TEST(StorageSystem, Raid5WriteSlowerThanRead)
{
    hs::StorageSystem read_sys(arrayConfig(4, hs::RaidLevel::Raid5));
    const auto read_metrics = read_sys.run({make(1, 0.0, 1024, 16)});
    hs::StorageSystem write_sys(arrayConfig(4, hs::RaidLevel::Raid5));
    const auto write_metrics =
        write_sys.run({make(1, 0.0, 1024, 16, hs::IoType::Write)});
    EXPECT_GT(write_metrics.meanMs(), read_metrics.meanMs());
}

TEST(StorageSystem, MetricsCountAllLogicalRequests)
{
    hs::StorageSystem sys(arrayConfig(3, hs::RaidLevel::None));
    std::vector<hs::IoRequest> load;
    for (std::uint64_t i = 0; i < 100; ++i) {
        load.push_back(make(i + 1, double(i) * 0.001,
                            std::int64_t(i) * 1000 % 100000, 8,
                            i % 3 ? hs::IoType::Read : hs::IoType::Write,
                            int(i % 3)));
    }
    const auto metrics = sys.run(load);
    EXPECT_EQ(metrics.count(), 100u);
    EXPECT_GT(metrics.meanMs(), 0.0);
    EXPECT_EQ(sys.inflight(), 0u);
}

TEST(StorageSystem, CompletionCallbackFires)
{
    hs::StorageSystem sys(arrayConfig(1, hs::RaidLevel::None));
    int called = 0;
    sys.setCompletionCallback(
        [&called](const hs::IoCompletion&) { ++called; });
    sys.run({make(1, 0.0, 0, 8), make(2, 0.001, 64, 8)});
    EXPECT_EQ(called, 2);
}

TEST(StorageSystem, ArrivalTimesAreHonored)
{
    hs::StorageSystem sys(arrayConfig(1, hs::RaidLevel::None));
    hs::IoCompletion seen;
    sys.setCompletionCallback(
        [&seen](const hs::IoCompletion& c) { seen = c; });
    sys.run({make(1, 5.0, 0, 8)});
    EXPECT_DOUBLE_EQ(seen.arrival, 5.0);
    EXPECT_GT(seen.finish, 5.0);
}

TEST(StorageSystem, GateAllPausesArray)
{
    hs::StorageSystem sys(arrayConfig(2, hs::RaidLevel::None));
    sys.gateAll(true);
    sys.submit(make(1, 0.0, 0, 8));
    sys.runAll();
    EXPECT_EQ(sys.metrics().count(), 0u);
    sys.gateAll(false);
    sys.runAll();
    EXPECT_EQ(sys.metrics().count(), 1u);
}

TEST(StorageSystem, RejectsBadRequests)
{
    hs::StorageSystem sys(arrayConfig(2, hs::RaidLevel::None));
    EXPECT_THROW(sys.submit(make(1, 0.0, -5, 8)), hu::ModelError);
    EXPECT_THROW(sys.submit(make(2, 0.0, sys.logicalSectors(), 8)),
                 hu::ModelError);
    EXPECT_THROW(
        sys.submit(make(3, 0.0, 0, 8, hs::IoType::Read, 7)),
        hu::ModelError);
}

TEST(StorageSystem, Raid5RequiresThreeDisks)
{
    EXPECT_THROW(
        { hs::StorageSystem sys(arrayConfig(2, hs::RaidLevel::Raid5)); },
        hu::ModelError);
}

TEST(StorageSystem, ImmediateWriteReportUsesReportLatency)
{
    auto cfg = arrayConfig(2, hs::RaidLevel::None);
    cfg.immediateWriteReport = true;
    cfg.writeReportLatencyMs = 0.25;
    hs::StorageSystem sys(cfg);
    hs::IoCompletion seen;
    sys.setCompletionCallback(
        [&seen](const hs::IoCompletion& c) { seen = c; });
    sys.run({make(1, 1.0, 0, 64, hs::IoType::Write)});

    // The write is reported at the NVRAM latency, not the media latency.
    EXPECT_EQ(seen.id, 1u);
    EXPECT_NEAR(seen.responseTimeMs(), 0.25, 1e-9);
    EXPECT_EQ(sys.metrics().count(), 1u);
    EXPECT_NEAR(sys.metrics().meanMs(), 0.25, 1e-9);
    // The media traffic still flowed in the background.
    EXPECT_EQ(sys.disk(0).activity().completions, 1u);
}

TEST(StorageSystem, ImmediateWriteReportLeavesReadsUntouched)
{
    auto cfg = arrayConfig(1, hs::RaidLevel::None);
    cfg.immediateWriteReport = true;
    cfg.writeReportLatencyMs = 0.1;
    hs::StorageSystem sys(cfg);
    const auto metrics = sys.run({make(1, 0.0, 0, 8, hs::IoType::Read)});
    // Reads pay the full media latency, well above the report latency.
    EXPECT_EQ(metrics.count(), 1u);
    EXPECT_GT(metrics.meanMs(), 0.1);
}

TEST(StorageSystem, ImmediateWriteReportOrdersBeforeMediaCompletion)
{
    auto cfg = arrayConfig(1, hs::RaidLevel::None);
    cfg.immediateWriteReport = true;
    cfg.writeReportLatencyMs = 0.05;
    hs::StorageSystem sys(cfg);
    std::vector<hs::IoCompletion> order;
    sys.setCompletionCallback(
        [&order](const hs::IoCompletion& c) { order.push_back(c); });

    // A write and a later read to the same device: the write's report
    // fires at submit time, before either media access completes, and the
    // read still queues behind the write's background media traffic.
    sys.submit(make(1, 0.0, 0, 256, hs::IoType::Write));
    sys.submit(make(2, 0.001, 4096, 8, hs::IoType::Read));
    sys.runAll();

    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0].id, 1u);
    EXPECT_EQ(order[1].id, 2u);
    EXPECT_LT(order[0].finish, order[1].finish);
    // Background media work for the write happened even though its
    // completion was reported long before.
    EXPECT_EQ(sys.disk(0).activity().completions, 2u);
    EXPECT_GT(order[1].responseTimeMs(), 0.05);
}

TEST(StorageSystem, ImmediateWriteReportCountsRaid5WritesOnce)
{
    auto cfg = arrayConfig(4, hs::RaidLevel::Raid5);
    cfg.immediateWriteReport = true;
    hs::StorageSystem sys(cfg);
    // A small RMW write plus a read; each logical request is counted
    // exactly once despite the write's two-phase sub-request fan-out.
    const auto metrics = sys.run({
        make(1, 0.0, 0, 8, hs::IoType::Write),
        make(2, 0.0, 1024, 8, hs::IoType::Read),
    });
    EXPECT_EQ(metrics.count(), 2u);
    EXPECT_EQ(sys.inflight(), 0u);
}
