/**
 * @file
 * Kernel-equivalence property tests: the SimKernel port of the four time
 * loops must be an observationally invisible refactor.  Three invariants
 * are pinned bit-for-bit:
 *
 *   1. Trace sinks are pure observers — attaching a ring buffer and a
 *      CSV sink to a co-simulation changes no result field, fault-free
 *      or faulted.
 *   2. Stepping is observation, not perturbation — driving a CoSimEngine
 *      with advanceTo() on an arbitrary (odd, non-commensurate) grid
 *      produces the same event history as run-to-completion.
 *   3. The fleet epoch domain is executor- and sink-agnostic — a traced
 *      single-thread fleet run equals an untraced two-thread run.
 */
#include <cmath>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "dtm/cosim.h"
#include "engine/trace.h"
#include "fault/fault_schedule.h"
#include "fleet/fleet_sim.h"

namespace hd = hddtherm::dtm;
namespace he = hddtherm::engine;
namespace hfa = hddtherm::fault;
namespace hf = hddtherm::fleet;
namespace hs = hddtherm::sim;

namespace {

hs::SystemConfig
smallSystem(double rpm)
{
    hs::SystemConfig cfg;
    cfg.disk.geometry.diameterInches = 2.6;
    cfg.disk.geometry.platters = 1;
    cfg.disk.tech = {500e3, 60e3};
    cfg.disk.rpm = rpm;
    cfg.disk.rpmChangeSecPerKrpm = 0.02;
    cfg.disks = 1;
    return cfg;
}

std::vector<hs::IoRequest>
randomWorkload(std::size_t n, std::int64_t space, double rate)
{
    std::vector<hs::IoRequest> out;
    out.reserve(n);
    double t = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        t += 1.0 / rate;
        hs::IoRequest r;
        r.id = i + 1;
        r.arrival = t;
        r.lba = std::int64_t(i * 7919 * 512) % (space - 64);
        r.sectors = 8;
        r.type = i % 4 ? hs::IoType::Read : hs::IoType::Write;
        out.push_back(r);
    }
    return out;
}

hfa::FaultEvent
event(double at, hfa::FaultKind kind, double value, double duration = 0.0,
      int target = -1)
{
    hfa::FaultEvent e;
    e.timeSec = at;
    e.kind = kind;
    e.value = value;
    e.durationSec = duration;
    e.target = target;
    return e;
}

/// A hot drive under GateRequests so the DTM loop actually acts.
hd::CoSimConfig
hotConfig()
{
    hd::CoSimConfig cfg;
    cfg.system = smallSystem(24534.0);
    cfg.policy = hd::DtmPolicy::GateRequests;
    return cfg;
}

/// A fault mix that exercises every co-sim fault path: ambient offsets,
/// sensor corruption, and a dropout long enough to trip the fail-safe.
hfa::FaultSchedule
stressFaults()
{
    return hfa::FaultSchedule(
        {event(0.5, hfa::FaultKind::AmbientStep, 4.0),
         event(1.0, hfa::FaultKind::AmbientSpike, 8.0, 2.0),
         event(1.5, hfa::FaultKind::SensorNoise, 0.4, 3.0),
         event(2.0, hfa::FaultKind::SensorDropout, 0.0, 2.5)},
        4242);
}

/// Every CoSimResult field, bit-for-bit.
void
expectIdentical(const hd::CoSimResult& a, const hd::CoSimResult& b)
{
    EXPECT_EQ(a.metrics.count(), b.metrics.count());
    EXPECT_EQ(a.metrics.meanMs(), b.metrics.meanMs());
    EXPECT_EQ(a.metrics.stats().variance(), b.metrics.stats().variance());
    EXPECT_EQ(a.metrics.histogram().bins(), b.metrics.histogram().bins());
    EXPECT_EQ(a.speedChanges, b.speedChanges);
    EXPECT_EQ(a.maxTempC, b.maxTempC);
    EXPECT_EQ(a.meanTempC, b.meanTempC);
    EXPECT_EQ(a.envelopeExceededSec, b.envelopeExceededSec);
    EXPECT_EQ(a.gatedSec, b.gatedSec);
    EXPECT_EQ(a.gateEvents, b.gateEvents);
    EXPECT_EQ(a.simulatedSec, b.simulatedSec);
    EXPECT_EQ(a.meanVcmDuty, b.meanVcmDuty);
    EXPECT_EQ(a.invalidReadings, b.invalidReadings);
    EXPECT_EQ(a.failSafeActivations, b.failSafeActivations);
    EXPECT_EQ(a.failSafeSec, b.failSafeSec);
}

/**
 * Event-history fields of a CoSimResult — everything except the three
 * means normalized by observed time (simulatedSec, meanTempC,
 * meanVcmDuty).  runUntil() advances the clock to its limit even after
 * the queue drains, so a stepped run legitimately *observes* a longer
 * span than run-to-completion while executing the exact same events.
 */
void
expectIdenticalHistory(const hd::CoSimResult& a, const hd::CoSimResult& b)
{
    EXPECT_EQ(a.metrics.count(), b.metrics.count());
    EXPECT_EQ(a.metrics.meanMs(), b.metrics.meanMs());
    EXPECT_EQ(a.metrics.stats().variance(), b.metrics.stats().variance());
    EXPECT_EQ(a.metrics.histogram().bins(), b.metrics.histogram().bins());
    EXPECT_EQ(a.speedChanges, b.speedChanges);
    EXPECT_EQ(a.maxTempC, b.maxTempC);
    EXPECT_EQ(a.envelopeExceededSec, b.envelopeExceededSec);
    EXPECT_EQ(a.gatedSec, b.gatedSec);
    EXPECT_EQ(a.gateEvents, b.gateEvents);
    EXPECT_EQ(a.invalidReadings, b.invalidReadings);
    EXPECT_EQ(a.failSafeActivations, b.failSafeActivations);
    EXPECT_EQ(a.failSafeSec, b.failSafeSec);
}

hf::FleetConfig
smallFleet()
{
    hf::FleetConfig cfg;
    cfg.racks = 1;
    cfg.rack.chassisCount = 2;
    cfg.chassis.bays = 2;
    cfg.bay.system = smallSystem(24534.0);
    cfg.bay.policy = hd::DtmPolicy::GateRequests;
    cfg.workload.requests = 120;
    cfg.workload.arrivalRatePerSec = 100.0;
    cfg.epochSec = 0.25;
    cfg.maxSimulatedSec = 600.0;
    cfg.seed = 7;
    return cfg;
}

/// Every FleetResult aggregate, bit-for-bit.
void
expectIdentical(const hf::FleetResult& a, const hf::FleetResult& b)
{
    EXPECT_EQ(a.metrics.count(), b.metrics.count());
    EXPECT_EQ(a.metrics.meanMs(), b.metrics.meanMs());
    EXPECT_EQ(a.metrics.stats().variance(), b.metrics.stats().variance());
    EXPECT_EQ(a.meanLatencyMs, b.meanLatencyMs);
    EXPECT_EQ(a.p95LatencyMs, b.p95LatencyMs);
    EXPECT_EQ(a.maxDriveTempC, b.maxDriveTempC);
    EXPECT_EQ(a.gateEvents, b.gateEvents);
    EXPECT_EQ(a.speedChanges, b.speedChanges);
    EXPECT_EQ(a.gatedSec, b.gatedSec);
    EXPECT_EQ(a.invalidReadings, b.invalidReadings);
    EXPECT_EQ(a.failSafeActivations, b.failSafeActivations);
    EXPECT_EQ(a.failSafeSec, b.failSafeSec);
    EXPECT_EQ(a.simulatedSec, b.simulatedSec);
    EXPECT_EQ(a.epochs, b.epochs);
    EXPECT_EQ(a.shards, b.shards);
    ASSERT_EQ(a.chassis.size(), b.chassis.size());
    for (std::size_t i = 0; i < a.chassis.size(); ++i) {
        EXPECT_EQ(a.chassis[i].peakDriveAmbientC,
                  b.chassis[i].peakDriveAmbientC);
        EXPECT_EQ(a.chassis[i].peakDriveTempC, b.chassis[i].peakDriveTempC);
        EXPECT_EQ(a.chassis[i].gateEvents, b.chassis[i].gateEvents);
        EXPECT_EQ(a.chassis[i].gatedSec, b.chassis[i].gatedSec);
    }
}

/// Run a co-simulation with ring-buffer and CSV sinks attached to the
/// shared kernel for the whole run.
hd::CoSimResult
tracedRun(const hd::CoSimConfig& cfg,
          const std::vector<hs::IoRequest>& workload, std::ostream& csv,
          std::size_t ring_capacity = 4096)
{
    hd::CoSimEngine engine(cfg);
    he::RingBufferTraceSink ring(ring_capacity);
    he::CsvTraceSink tee(csv);
    engine.system().events().setTraceSink(&ring);
    engine.start(workload);
    engine.advanceToCompletion();
    // Swap sinks mid-stream is legal too: the CSV sink sees nothing (the
    // run is over) but proves detach/attach never touches kernel state.
    engine.system().events().setTraceSink(&tee);
    engine.system().events().setTraceSink(nullptr);
    return engine.result();
}

} // namespace

TEST(KernelEquivalence, TraceSinksNeverPerturbFaultFreeCoSim)
{
    const auto cfg = hotConfig();
    const auto workload = randomWorkload(
        800, hs::StorageSystem(cfg.system).logicalSectors(), 120.0);

    const auto plain = hd::CoSimulation(cfg).run(workload);
    std::ostringstream csv;
    const auto traced = tracedRun(cfg, workload, csv);

    expectIdentical(plain, traced);
    // The run fires storage, client-facing, and thermal events alike;
    // the trace must actually have seen them.
    EXPECT_GT(plain.metrics.count(), 0u);
}

TEST(KernelEquivalence, TraceSinksNeverPerturbFaultedCoSim)
{
    auto cfg = hotConfig();
    cfg.faults = stressFaults();
    // The dropout parks the run on the fail-safe floor, so it ends at the
    // safety cap — keep the cap short and cover the cap path cheaply.
    cfg.maxSimulatedSec = 60.0;
    const auto workload = randomWorkload(
        800, hs::StorageSystem(cfg.system).logicalSectors(), 120.0);

    const auto plain = hd::CoSimulation(cfg).run(workload);
    std::ostringstream csv;
    const auto traced = tracedRun(cfg, workload, csv);

    expectIdentical(plain, traced);
    // The fault mix must actually have bitten for this to mean anything.
    EXPECT_GT(plain.invalidReadings, 0u);
    EXPECT_GT(plain.failSafeActivations, 0u);

    // Emergency summaries derive from the result, so they match too.
    const auto ra = hd::emergencyReport(plain);
    const auto rb = hd::emergencyReport(traced);
    EXPECT_EQ(ra.simulatedSec, rb.simulatedSec);
    EXPECT_EQ(ra.maxTempC, rb.maxTempC);
    EXPECT_EQ(ra.envelopeExceededSec, rb.envelopeExceededSec);
    EXPECT_EQ(ra.gateEvents, rb.gateEvents);
    EXPECT_EQ(ra.gatedSec, rb.gatedSec);
    EXPECT_EQ(ra.failSafeActivations, rb.failSafeActivations);
    EXPECT_EQ(ra.failSafeSec, rb.failSafeSec);
    EXPECT_EQ(ra.invalidReadings, rb.invalidReadings);
    EXPECT_EQ(ra.meanLatencyMs, rb.meanLatencyMs);
}

TEST(KernelEquivalence, SteppedEngineMatchesRunToCompletion)
{
    // Drive the engine on a 0.337 s grid — deliberately incommensurate
    // with the 1 s control interval and the thermal dt — and compare
    // against the classic one-shot run.  Identical event histories are
    // the port criterion; only the observation span may differ (the
    // stepped clock ends on a grid point past the last event).
    const auto cfg = hotConfig();
    const auto workload = randomWorkload(
        600, hs::StorageSystem(cfg.system).logicalSectors(), 120.0);

    const auto oneshot = hd::CoSimulation(cfg).run(workload);

    hd::CoSimEngine engine(cfg);
    engine.start(workload);
    double t = 0.0;
    while (!engine.finished()) {
        t += 0.337;
        engine.advanceTo(t);
    }
    const auto stepped = engine.result();

    expectIdenticalHistory(oneshot, stepped);
    // The stepped observation span covers the one-shot span and ends on
    // the stepping grid.
    EXPECT_GE(stepped.simulatedSec, oneshot.simulatedSec);
    EXPECT_LT(stepped.simulatedSec, oneshot.simulatedSec + 0.337 + 1e-9);
}

TEST(KernelEquivalence, SteppedEngineMatchesRunToCompletionUnderFaults)
{
    auto cfg = hotConfig();
    cfg.faults = stressFaults();
    cfg.maxSimulatedSec = 60.0;
    const auto workload = randomWorkload(
        600, hs::StorageSystem(cfg.system).logicalSectors(), 120.0);

    const auto oneshot = hd::CoSimulation(cfg).run(workload);

    hd::CoSimEngine engine(cfg);
    engine.start(workload);
    double t = 0.0;
    while (!engine.finished()) {
        t += 0.337;
        engine.advanceTo(t);
    }
    expectIdenticalHistory(oneshot, engine.result());
}

TEST(KernelEquivalence, FleetEpochTraceIsPureObservation)
{
    const auto cfg = smallFleet();

    he::RingBufferTraceSink epoch_trace(1 << 14);
    auto traced = hf::FleetSimulation(cfg).run(1, &epoch_trace);
    auto plain = hf::FleetSimulation(cfg).run(2, nullptr);

    expectIdentical(traced, plain);

    // One periodic task in the "fleet-epoch" domain: every barrier is a
    // Scheduled/Fired pair (the stopping fire schedules no successor).
    EXPECT_EQ(epoch_trace.observed(), 2 * traced.epochs);
    EXPECT_EQ(epoch_trace.dropped(), 0u);
    const auto events = epoch_trace.events();
    ASSERT_FALSE(events.empty());
    for (const auto& e : events)
        EXPECT_EQ(e.domainName, "fleet-epoch");
    // Barriers land on the epoch grid.
    const auto& last = events.back();
    EXPECT_EQ(last.kind, he::TraceKind::Fired);
    EXPECT_NEAR(std::fmod(last.time, cfg.epochSec), 0.0, 1e-9);
}

TEST(KernelEquivalence, FaultedFleetIsSinkAndExecutorAgnostic)
{
    auto cfg = smallFleet();
    cfg.faults = hfa::FaultSchedule(
        {event(1.0, hfa::FaultKind::AirflowDegrade, 0.6, 4.0, 0),
         event(1.0, hfa::FaultKind::SensorNoise, 0.3, 6.0),
         event(1.5, hfa::FaultKind::BayKill, 0.0, 0.0, 1),
         event(3.0, hfa::FaultKind::BayRestore, 0.0, 0.0, 1),
         event(1.0, hfa::FaultKind::SensorDropout, 0.0, 2.0, 2)},
        99);

    he::RingBufferTraceSink epoch_trace(1 << 14);
    auto traced = hf::FleetSimulation(cfg).run(1, &epoch_trace);
    auto plain = hf::FleetSimulation(cfg).run(2, nullptr);

    expectIdentical(traced, plain);
    EXPECT_GT(traced.invalidReadings, 0u);
    EXPECT_EQ(epoch_trace.observed(), 2 * traced.epochs);
}
