/**
 * @file
 * Tests of the thermal/performance co-simulation with DTM control.
 */
#include <gtest/gtest.h>

#include "dtm/cosim.h"
#include "util/error.h"

namespace hd = hddtherm::dtm;
namespace hs = hddtherm::sim;
namespace ht = hddtherm::thermal;
namespace hu = hddtherm::util;

namespace {

hs::SystemConfig
smallSystem(double rpm)
{
    hs::SystemConfig cfg;
    cfg.disk.geometry.diameterInches = 2.6;
    cfg.disk.geometry.platters = 1;
    cfg.disk.tech = {500e3, 60e3};
    cfg.disk.rpm = rpm;
    cfg.disk.rpmChangeSecPerKrpm = 0.02;
    cfg.disks = 1;
    return cfg;
}

std::vector<hs::IoRequest>
randomWorkload(std::size_t n, std::int64_t space, double rate)
{
    std::vector<hs::IoRequest> out;
    out.reserve(n);
    double t = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        t += 1.0 / rate;
        hs::IoRequest r;
        r.id = i + 1;
        r.arrival = t;
        r.lba = std::int64_t(i * 7919 * 512) % (space - 64);
        r.sectors = 8;
        r.type = i % 4 ? hs::IoType::Read : hs::IoType::Write;
        out.push_back(r);
    }
    return out;
}

std::int64_t
diskSpace(const hs::SystemConfig& cfg)
{
    return hs::StorageSystem(cfg).logicalSectors();
}

} // namespace

TEST(CoSim, CompletesWorkloadWithoutPolicy)
{
    hd::CoSimConfig cfg;
    cfg.system = smallSystem(15020.0);
    hd::CoSimulation cosim(cfg);
    const auto workload = randomWorkload(500, diskSpace(cfg.system), 100.0);
    const auto result = cosim.run(workload);
    EXPECT_EQ(result.metrics.count(), 500u);
    EXPECT_GT(result.simulatedSec, 4.0);
    EXPECT_GT(result.maxTempC, 0.0);
    EXPECT_GT(result.meanVcmDuty, 0.0);
    EXPECT_LE(result.meanVcmDuty, 1.0);
}

TEST(CoSim, EnvelopeDesignStaysWithinEnvelope)
{
    hd::CoSimConfig cfg;
    cfg.system = smallSystem(15020.0);
    cfg.policy = hd::DtmPolicy::None;
    hd::CoSimulation cosim(cfg);
    const auto workload = randomWorkload(500, diskSpace(cfg.system), 100.0);
    const auto result = cosim.run(workload);
    // Designed for worst case: partial duty keeps it at/below envelope.
    EXPECT_LE(result.maxTempC, ht::kThermalEnvelopeC + 0.05);
}

TEST(CoSim, UnguardedFastDriveViolatesGuardedDoesNot)
{
    const auto make = [](hd::DtmPolicy policy) {
        hd::CoSimConfig cfg;
        cfg.system = smallSystem(24534.0);
        cfg.policy = policy;
        return cfg;
    };
    const auto workload =
        randomWorkload(500, diskSpace(smallSystem(24534.0)), 100.0);

    hd::CoSimulation unguarded(make(hd::DtmPolicy::None));
    const auto bad = unguarded.run(workload);
    EXPECT_GT(bad.maxTempC, ht::kThermalEnvelopeC);
    EXPECT_GT(bad.envelopeExceededSec, 0.0);

    hd::CoSimulation guarded(make(hd::DtmPolicy::GateRequests));
    const auto good = guarded.run(workload);
    EXPECT_LE(good.maxTempC, ht::kThermalEnvelopeC + 0.1);
}

TEST(CoSim, HigherRpmImprovesResponseTimes)
{
    // Light load: the long-stride requests seek nearly full-stroke, so
    // the thermally sustainable VCM duty caps the arrival rate the DTM
    // guard can admit.
    const auto workload =
        randomWorkload(1000, diskSpace(smallSystem(15020.0)), 28.0);
    auto run_at = [&workload](double rpm) {
        hd::CoSimConfig cfg;
        cfg.system = smallSystem(rpm);
        cfg.policy = hd::DtmPolicy::GateRequests;
        hd::CoSimulation cosim(cfg);
        return cosim.run(workload).metrics.meanMs();
    };
    EXPECT_LT(run_at(24534.0), run_at(15020.0));
}

TEST(CoSim, SafetyCapReleasesGates)
{
    // An operating point whose cooling configuration cannot get below the
    // resume threshold thrashes; the cap must still terminate the run.
    hd::CoSimConfig cfg;
    cfg.system = smallSystem(37001.0);
    cfg.policy = hd::DtmPolicy::GateAndLowRpm;
    cfg.lowRpm = 22001.0;
    cfg.maxSimulatedSec = 30.0;
    hd::CoSimulation cosim(cfg);
    const auto workload =
        randomWorkload(2000, diskSpace(cfg.system), 400.0);
    const auto result = cosim.run(workload);
    EXPECT_EQ(result.metrics.count(), 2000u); // all complete eventually
    EXPECT_GT(result.gateEvents, 0u);
}

TEST(CoSim, RejectsInvalidConfig)
{
    hd::CoSimConfig cfg;
    cfg.system = smallSystem(20000.0);
    cfg.controlIntervalSec = 0.0;
    EXPECT_THROW({ hd::CoSimulation c(cfg); }, hu::ModelError);

    cfg = hd::CoSimConfig{};
    cfg.system = smallSystem(20000.0);
    cfg.gateThresholdC = 40.0;
    cfg.resumeThresholdC = 41.0; // inverted band
    EXPECT_THROW({ hd::CoSimulation c(cfg); }, hu::ModelError);

    cfg = hd::CoSimConfig{};
    cfg.system = smallSystem(20000.0);
    cfg.policy = hd::DtmPolicy::GateAndLowRpm;
    cfg.lowRpm = 25000.0; // above full speed
    EXPECT_THROW({ hd::CoSimulation c(cfg); }, hu::ModelError);
}

TEST(CoSim, EmptyWorkloadRejected)
{
    hd::CoSimConfig cfg;
    cfg.system = smallSystem(20000.0);
    hd::CoSimulation cosim(cfg);
    EXPECT_THROW(cosim.run({}), hu::ModelError);
}

TEST(CoSim, AmbientProfileDrivesTemperature)
{
    // A scheduled ambient drop must pull the drive's temperature down
    // relative to the constant-ambient run.  The run must be long enough
    // (minutes) for the slow case/base mode to respond.
    const auto workload =
        randomWorkload(2000, diskSpace(smallSystem(15020.0)), 10.0);

    hd::CoSimConfig warm;
    warm.system = smallSystem(15020.0);
    hd::CoSimulation warm_sim(warm);
    const auto warm_result = warm_sim.run(workload);

    hd::CoSimConfig cooled = warm;
    cooled.ambientProfile = {{0.0, 28.0}, {2.0, 18.0}};
    hd::CoSimulation cooled_sim(cooled);
    const auto cooled_result = cooled_sim.run(workload);

    EXPECT_LT(cooled_result.meanTempC, warm_result.meanTempC - 1.0);
}

TEST(CoSim, AmbientProfileClampsBeyondEnds)
{
    // A single-segment profile extends by clamping; the run must still
    // complete even when simulated time passes the last breakpoint.
    hd::CoSimConfig cfg;
    cfg.system = smallSystem(15020.0);
    cfg.ambientProfile = {{0.0, 28.0}, {1.0, 26.0}};
    hd::CoSimulation cosim(cfg);
    const auto workload =
        randomWorkload(300, diskSpace(cfg.system), 30.0);
    const auto result = cosim.run(workload);
    EXPECT_EQ(result.metrics.count(), 300u);
    EXPECT_GT(result.simulatedSec, 5.0);
}

TEST(CoSim, SetAmbientReportsProfilePrecedence)
{
    // Regression: setAmbient used to be silently ignored while an
    // ambientProfile was active; it must now report the rejection.
    const auto workload =
        randomWorkload(200, diskSpace(smallSystem(15020.0)), 50.0);

    hd::CoSimConfig scheduled;
    scheduled.system = smallSystem(15020.0);
    scheduled.ambientProfile = {{0.0, 28.0}, {10.0, 30.0}};
    hd::CoSimEngine owned(scheduled);
    owned.start(workload);
    owned.advanceTo(1.0);
    EXPECT_FALSE(owned.setAmbient(10.0)); // profile owns the ambient
    owned.advanceToCompletion();

    hd::CoSimConfig constant;
    constant.system = smallSystem(15020.0);
    hd::CoSimEngine free(constant);
    free.start(workload);
    free.advanceTo(1.0);
    EXPECT_TRUE(free.setAmbient(20.0)); // no profile: re-point applies
    free.advanceToCompletion();
}

TEST(CoSim, PolicyNames)
{
    EXPECT_STREQ(hd::dtmPolicyName(hd::DtmPolicy::None), "none");
    EXPECT_STREQ(hd::dtmPolicyName(hd::DtmPolicy::GateRequests),
                 "gate-vcm");
    EXPECT_STREQ(hd::dtmPolicyName(hd::DtmPolicy::GateAndLowRpm),
                 "gate-vcm+low-rpm");
}
