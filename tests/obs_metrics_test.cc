/**
 * @file
 * Unit + property tests of the obs metrics layer: registry uniqueness
 * and idempotent re-registration, the enable-flag gate, snapshot merge
 * associativity, exporter golden output (Prometheus text and the CSV
 * table), and the RunManifest provenance record.
 */
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/export.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "util/error.h"
#include "util/stats.h"

namespace ho = hddtherm::obs;
namespace hu = hddtherm::util;

namespace {

/// Restores the process-wide enable flag (tests must be shuffle-safe).
class ObsTest : public ::testing::Test
{
  protected:
    void SetUp() override { ho::setEnabled(false); }
    void TearDown() override { ho::setEnabled(false); }
};

std::string
slurp(const std::string& path)
{
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/// Field-exact snapshot equality (merge associativity checks).
void
expectEqual(const ho::Snapshot& a, const ho::Snapshot& b)
{
    ASSERT_EQ(a.counters.size(), b.counters.size());
    for (std::size_t i = 0; i < a.counters.size(); ++i) {
        EXPECT_EQ(a.counters[i].name, b.counters[i].name);
        EXPECT_EQ(a.counters[i].value, b.counters[i].value);
    }
    ASSERT_EQ(a.gauges.size(), b.gauges.size());
    for (std::size_t i = 0; i < a.gauges.size(); ++i) {
        EXPECT_EQ(a.gauges[i].name, b.gauges[i].name);
        EXPECT_EQ(a.gauges[i].value, b.gauges[i].value);
        EXPECT_EQ(a.gauges[i].max, b.gauges[i].max);
    }
    ASSERT_EQ(a.histograms.size(), b.histograms.size());
    for (std::size_t i = 0; i < a.histograms.size(); ++i) {
        EXPECT_EQ(a.histograms[i].name, b.histograms[i].name);
        EXPECT_EQ(a.histograms[i].edges, b.histograms[i].edges);
        EXPECT_EQ(a.histograms[i].counts, b.histograms[i].counts);
        EXPECT_EQ(a.histograms[i].sum, b.histograms[i].sum);
    }
}

} // namespace

TEST_F(ObsTest, RegistrationIsIdempotent)
{
    ho::MetricsRegistry reg;
    ho::Counter& c1 = reg.counter("a.count");
    ho::Counter& c2 = reg.counter("a.count");
    EXPECT_EQ(&c1, &c2);

    ho::Gauge& g1 = reg.gauge("a.depth");
    ho::Gauge& g2 = reg.gauge("a.depth");
    EXPECT_EQ(&g1, &g2);

    ho::HistogramMetric& h1 = reg.histogram("a.lat", {1.0, 2.0});
    ho::HistogramMetric& h2 = reg.histogram("a.lat", {1.0, 2.0});
    EXPECT_EQ(&h1, &h2);

    EXPECT_EQ(reg.size(), 3u);
    c1.add(5);
    EXPECT_EQ(c2.value(), 5u);
}

TEST_F(ObsTest, HandlesSurviveLaterRegistrations)
{
    // Node-stable storage: a cached reference must stay valid while the
    // registry grows well past any initial vector capacity.
    ho::MetricsRegistry reg;
    ho::Counter& first = reg.counter("first");
    for (int i = 0; i < 200; ++i)
        reg.counter("extra." + std::to_string(i)).add(1);
    first.add(3);
    EXPECT_EQ(reg.counter("first").value(), 3u);
    EXPECT_EQ(reg.size(), 201u);
}

TEST_F(ObsTest, RejectsKindCollisionsAndBadNames)
{
    ho::MetricsRegistry reg;
    reg.counter("x");
    EXPECT_THROW(reg.gauge("x"), hu::ModelError);
    EXPECT_THROW(reg.histogram("x", {1.0}), hu::ModelError);
    EXPECT_THROW(reg.counter(""), hu::ModelError);

    reg.histogram("h", {1.0, 2.0});
    EXPECT_THROW(reg.histogram("h", {1.0, 3.0}), hu::ModelError);
    EXPECT_THROW(reg.counter("h"), hu::ModelError);
    EXPECT_THROW(reg.histogram("bad", {}), hu::ModelError);
    EXPECT_THROW(reg.histogram("bad", {2.0, 1.0}), hu::ModelError);
}

TEST_F(ObsTest, ResetValuesKeepsRegistrationsAndHandles)
{
    ho::MetricsRegistry reg;
    ho::Counter& c = reg.counter("c");
    ho::Gauge& g = reg.gauge("g");
    ho::HistogramMetric& h = reg.histogram("h", {1.0});
    c.add(7);
    g.set(3.5);
    h.observe(0.5);

    reg.resetValues();
    EXPECT_EQ(reg.size(), 3u);
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(g.value(), 0.0);
    EXPECT_EQ(g.max(), 0.0);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0.0);
    // The old handle still records into the same registration.
    c.add(2);
    EXPECT_EQ(reg.counter("c").value(), 2u);
}

TEST_F(ObsTest, HistogramBinSemanticsMatchUtilHistogram)
{
    const std::vector<double> edges = {10.0, 20.0, 30.0};
    ho::MetricsRegistry reg;
    ho::HistogramMetric& m = reg.histogram("h", edges);
    hu::Histogram ref(edges);
    for (const double x : {1.0, 5.0, 10.0, 15.0, 25.0, 40.0}) {
        m.observe(x);
        ref.add(x);
    }
    ASSERT_EQ(m.count(), ref.count());
    for (std::size_t i = 0; i <= edges.size(); ++i)
        EXPECT_EQ(m.binCount(i), ref.binCount(i)) << "bin " << i;
    EXPECT_DOUBLE_EQ(m.sum(), 96.0);
}

TEST_F(ObsTest, EnableFlagGatesMacros)
{
    auto& global = ho::MetricsRegistry::global();

    // Disabled: the macro body never runs, so the name never registers.
    ho::setEnabled(false);
    const std::size_t before = global.size();
    for (int i = 0; i < 3; ++i)
        HDDTHERM_OBS_COUNT("obs_test.gated.count");
    HDDTHERM_OBS_GAUGE_SET("obs_test.gated.gauge", 9.0);
    EXPECT_EQ(global.size(), before);

    // Enabled: the site registers once and counts exactly.
    ho::setEnabled(true);
    for (int i = 0; i < 3; ++i)
        HDDTHERM_OBS_COUNT("obs_test.gated.count");
    HDDTHERM_OBS_ADD("obs_test.gated.count", 4);
    HDDTHERM_OBS_GAUGE_SET("obs_test.gated.gauge", 9.0);
    HDDTHERM_OBS_GAUGE_SET("obs_test.gated.gauge", 2.0);
    EXPECT_EQ(global.counter("obs_test.gated.count").value(), 7u);
    EXPECT_EQ(global.gauge("obs_test.gated.gauge").value(), 2.0);
    EXPECT_EQ(global.gauge("obs_test.gated.gauge").max(), 9.0);

    // Re-disabling stops recording through the cached handle.
    ho::setEnabled(false);
    HDDTHERM_OBS_COUNT("obs_test.gated.count");
    EXPECT_EQ(global.counter("obs_test.gated.count").value(), 7u);
}

TEST_F(ObsTest, ScopedTimerObservesOnlyWhenEnabled)
{
    ho::MetricsRegistry reg;
    ho::HistogramMetric& h = reg.histogram("t", {1e6});

    {
        ho::ScopedTimer off(h);
    }
    EXPECT_EQ(h.count(), 0u);

    ho::setEnabled(true);
    {
        ho::ScopedTimer on(h);
    }
    EXPECT_EQ(h.count(), 1u);
    // Any sane wall time lands below the huge single edge.
    EXPECT_EQ(h.binCount(0), 1u);
}

TEST_F(ObsTest, SnapshotIsNameSortedWithinKinds)
{
    ho::MetricsRegistry reg;
    reg.counter("z.last").add(1);
    reg.counter("a.first").add(2);
    reg.gauge("m.middle").set(1.0);
    const auto snap = reg.snapshot();
    ASSERT_EQ(snap.counters.size(), 2u);
    EXPECT_EQ(snap.counters[0].name, "a.first");
    EXPECT_EQ(snap.counters[1].name, "z.last");
    ASSERT_EQ(snap.gauges.size(), 1u);
    EXPECT_EQ(snap.gauges[0].name, "m.middle");
}

TEST_F(ObsTest, MergeIsAssociativeOnOverlappingSets)
{
    // Three snapshots with partial overlap in every kind.  Counter and
    // bin addition is integer, gauge max is max, so both association
    // orders must agree field-for-field (gauge.value is excluded from
    // the claim only when zeros are involved; use non-zero values).
    const auto snap = [](std::uint64_t c1, std::uint64_t c2, double g,
                         std::vector<std::uint64_t> bins, double sum) {
        ho::Snapshot s;
        s.counters = {{"c.only", c1}, {"c.shared", c2}};
        s.gauges = {{"g.shared", g, g}};
        s.histograms = {{"h.shared", {1.0, 2.0}, std::move(bins), sum}};
        return s;
    };
    const auto a = snap(1, 10, 2.0, {1, 0, 2}, 7.0);
    const auto b = snap(2, 20, 5.0, {0, 3, 1}, 6.0);
    const auto c = snap(3, 30, 3.0, {4, 1, 0}, 5.0);

    ho::Snapshot left = a;
    left.merge(b);
    left.merge(c);

    ho::Snapshot bc = b;
    bc.merge(c);
    ho::Snapshot right = a;
    right.merge(bc);

    expectEqual(left, right);
    EXPECT_EQ(left.counters[1].value, 60u); // c.shared
    EXPECT_EQ(left.gauges[0].max, 5.0);
    EXPECT_EQ(left.gauges[0].value, 3.0); // last writer
    EXPECT_EQ(left.histograms[0].counts,
              (std::vector<std::uint64_t>{5, 4, 3}));
    EXPECT_DOUBLE_EQ(left.histograms[0].sum, 18.0);
}

TEST_F(ObsTest, MergeAppendsDisjointMetricsSorted)
{
    ho::Snapshot a;
    a.counters = {{"b", 1}};
    ho::Snapshot b;
    b.counters = {{"a", 2}, {"c", 3}};
    a.merge(b);
    ASSERT_EQ(a.counters.size(), 3u);
    EXPECT_EQ(a.counters[0].name, "a");
    EXPECT_EQ(a.counters[1].name, "b");
    EXPECT_EQ(a.counters[2].name, "c");
}

TEST_F(ObsTest, MergeRejectsMismatchedHistogramEdges)
{
    ho::Snapshot a;
    a.histograms = {{"h", {1.0, 2.0}, {0, 0, 0}, 0.0}};
    ho::Snapshot b;
    b.histograms = {{"h", {1.0, 3.0}, {0, 0, 0}, 0.0}};
    EXPECT_THROW(a.merge(b), hu::ModelError);
}

TEST_F(ObsTest, PrometheusNameSanitizes)
{
    EXPECT_EQ(ho::prometheusName("sim.cache.read_hit"),
              "hddtherm_sim_cache_read_hit");
    EXPECT_EQ(ho::prometheusName("a-b c:d"), "hddtherm_a_b_c:d");
}

TEST_F(ObsTest, PrometheusExportGolden)
{
    ho::MetricsRegistry reg;
    reg.counter("sim.ops").add(42);
    reg.gauge("sim.depth").set(1.5);
    reg.gauge("sim.depth").set(0.5);
    auto& h = reg.histogram("sim.lat_ms", {1.0, 10.0});
    h.observe(0.25); // bin 0
    h.observe(5.0);  // bin 1
    h.observe(50.0); // overflow
    const std::string expected =
        "# TYPE hddtherm_sim_ops counter\n"
        "hddtherm_sim_ops 42\n"
        "# TYPE hddtherm_sim_depth gauge\n"
        "hddtherm_sim_depth 0.5\n"
        "# TYPE hddtherm_sim_depth_max gauge\n"
        "hddtherm_sim_depth_max 1.5\n"
        "# TYPE hddtherm_sim_lat_ms histogram\n"
        "hddtherm_sim_lat_ms_bucket{le=\"1\"} 1\n"
        "hddtherm_sim_lat_ms_bucket{le=\"10\"} 2\n"
        "hddtherm_sim_lat_ms_bucket{le=\"+Inf\"} 3\n"
        "hddtherm_sim_lat_ms_sum 55.25\n"
        "hddtherm_sim_lat_ms_count 3\n";
    EXPECT_EQ(ho::toPrometheusText(reg.snapshot()), expected);
}

TEST_F(ObsTest, CsvExportGolden)
{
    ho::MetricsRegistry reg;
    reg.counter("ops").add(7);
    reg.gauge("depth").set(2.5);
    reg.histogram("lat", {1.0}).observe(4.0);

    const std::string path = ::testing::TempDir() + "obs_metrics_gold.csv";
    ASSERT_TRUE(ho::toTable(reg.snapshot()).writeCsv(path));
    const std::string expected = "metric,kind,label,value\n"
                                 "ops,counter,,7\n"
                                 "depth,gauge,value,2.5\n"
                                 "depth,gauge,max,2.5\n"
                                 "lat,histogram,le=1,0\n"
                                 "lat,histogram,le=+Inf,1\n"
                                 "lat,histogram,sum,4\n"
                                 "lat,histogram,count,1\n";
    EXPECT_EQ(slurp(path), expected);
    std::remove(path.c_str());
}

TEST_F(ObsTest, ExportEqualSnapshotsByteIdentical)
{
    // Determinism property: two registries brought to the same state
    // export the same bytes regardless of registration order.
    ho::MetricsRegistry r1;
    r1.counter("a").add(1);
    r1.counter("b").add(2);
    r1.gauge("g").set(3.0);
    ho::MetricsRegistry r2;
    r2.gauge("g").set(3.0);
    r2.counter("b").add(2);
    r2.counter("a").add(1);
    EXPECT_EQ(ho::toPrometheusText(r1.snapshot()),
              ho::toPrometheusText(r2.snapshot()));
}

TEST_F(ObsTest, Fnv1a64KnownVectors)
{
    EXPECT_EQ(ho::fnv1a64(""), 14695981039346656037ull);
    EXPECT_EQ(ho::fnv1a64("a"), 0xaf63dc4c8601ec8cull);
    EXPECT_EQ(ho::fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST_F(ObsTest, ManifestJsonIsFlatAndStable)
{
    ho::RunManifest m;
    m.bench = "bench_x";
    m.gitSha = "abc123";
    m.command = "bench_x --csv \"out dir\"";
    m.seed = 42;
    m.config = "rpm=15000";
    m.configHash = ho::fnv1a64(m.config);
    m.wallSec = 1.5;
    m.startedUtc = "2026-01-01T00:00:00Z";
    const std::string json = ho::toJson(m);
    EXPECT_NE(json.find("\"bench\": \"bench_x\""), std::string::npos);
    EXPECT_NE(json.find("\"git_sha\": \"abc123\""), std::string::npos);
    // The quote inside the command must be escaped.
    EXPECT_NE(json.find("--csv \\\"out dir\\\""), std::string::npos);
    EXPECT_NE(json.find("\"seed\": 42"), std::string::npos);
    EXPECT_NE(json.find("\"config\": \"rpm=15000\""), std::string::npos);
    EXPECT_NE(json.find("\"wall_sec\": 1.5"), std::string::npos);
    EXPECT_NE(json.find("\"started_utc\": \"2026-01-01T00:00:00Z\""),
              std::string::npos);
    // Flat object: exactly one opening and one closing brace.
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'), 1);
    EXPECT_EQ(std::count(json.begin(), json.end(), '}'), 1);
}

TEST_F(ObsTest, BenchRunWritesArtifactTriple)
{
    const char* argv[] = {"bench_fake", "--csv", "somewhere"};
    ho::BenchRun run("bench_fake", 3, const_cast<char**>(argv));
    EXPECT_TRUE(ho::enabled()); // benches always collect
    run.setSeed(7);
    run.setConfig("drives=4");
    HDDTHERM_OBS_COUNT("obs_test.bench_run.tick");

    const auto m = run.manifest();
    EXPECT_EQ(m.bench, "bench_fake");
    EXPECT_EQ(m.command, "bench_fake --csv somewhere");
    EXPECT_EQ(m.seed, 7u);
    EXPECT_EQ(m.configHash, ho::fnv1a64("drives=4"));
    EXPECT_GE(m.wallSec, 0.0);
    EXPECT_EQ(m.gitSha, ho::buildGitSha());
    EXPECT_FALSE(m.startedUtc.empty());

    // Empty dir is the "no --csv" path: a successful no-op.
    EXPECT_TRUE(run.writeArtifacts(""));

    const std::string dir = ::testing::TempDir();
    ASSERT_TRUE(run.writeArtifacts(dir));
    const std::string manifest = slurp(dir + "/manifest.json");
    EXPECT_NE(manifest.find("\"git_sha\""), std::string::npos);
    EXPECT_NE(manifest.find("\"seed\": 7"), std::string::npos);
    const std::string prom = slurp(dir + "/metrics.prom");
    EXPECT_NE(prom.find("hddtherm_obs_test_bench_run_tick"),
              std::string::npos);
    const std::string csv = slurp(dir + "/metrics.csv");
    EXPECT_NE(csv.find("metric,kind,label,value"), std::string::npos);
    std::remove((dir + "/manifest.json").c_str());
    std::remove((dir + "/metrics.prom").c_str());
    std::remove((dir + "/metrics.csv").c_str());

    // Unwritable directory reports failure instead of silently dropping.
    EXPECT_FALSE(run.writeArtifacts("/nonexistent/obs_dir"));
}
